// Command dnsampdetect runs the complete offline detection pipeline of
// §4: selector-based misused-name discovery, threshold detection, and
// a per-day attack summary. Traffic comes from the synthetic campaign
// by default, or from a real capture: an sFlow v5 datagram log
// (-replay-sflow), a classic pcap file (-replay-pcap), or a persisted
// batch snapshot (-snapshot-in). -snapshot-out records whichever
// source the run streams into a snapshot file that a later process can
// serve with -snapshot-in; detection over the snapshot is byte-
// identical to detection over the live source.
//
// Usage:
//
//	dnsampdetect [-scale 0.05] [-seed 1] [-concurrency 0] [-cache-days 0]
//	             [-replay-sflow FILE | -replay-pcap FILE | -snapshot-in FILE]
//	             [-snapshot-out FILE] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// loadSource builds the replay source selected by the ingestion flags,
// nil when the run is synthetic.
func loadSource(sflowPath, pcapPath, snapPath string) (source.Source, error) {
	set := 0
	for _, p := range []string{sflowPath, pcapPath, snapPath} {
		if p != "" {
			set++
		}
	}
	if set == 0 {
		return nil, nil
	}
	if set > 1 {
		return nil, fmt.Errorf("-replay-sflow, -replay-pcap and -snapshot-in are mutually exclusive")
	}
	switch {
	case snapPath != "":
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return source.OpenSnapshot(f)
	case sflowPath != "":
		f, err := os.Open(sflowPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rep := source.NewReplay(nil)
		n, err := rep.IngestSFlowLog(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ingested %d sampled frames from %s (%d days)\n", n, sflowPath, len(rep.Days()))
		return rep, nil
	default:
		f, err := os.Open(pcapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rep := source.NewReplay(nil)
		n, err := rep.IngestPCAP(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "ingested %d frames from %s (%d days)\n", n, pcapPath, len(rep.Days()))
		return rep, nil
	}
}

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	seed := flag.Int64("seed", 1, "campaign seed")
	verbose := flag.Bool("v", false, "print every detection")
	concurrency := flag.Int("concurrency", 0, "pipeline worker count (0 = all cores, 1 = serial; results are identical)")
	cacheDays := flag.Int("cache-days", 0, "day-batch cache so pass 2 reuses pass-1 traffic (0 = off, -1 = all days, n = the oldest n days)")
	replaySFlow := flag.String("replay-sflow", "", "replay an sFlow v5 datagram log instead of synthesizing traffic")
	replayPCAP := flag.String("replay-pcap", "", "replay a classic pcap capture instead of synthesizing traffic")
	snapIn := flag.String("snapshot-in", "", "stream traffic from a persisted batch snapshot")
	snapOut := flag.String("snapshot-out", "", "record the traffic stream to a batch snapshot file before detecting")
	flag.Parse()

	start := time.Now()
	cfg := pipeline.DefaultConfig(*scale)
	cfg.Campaign.Seed = *seed
	cfg.ExtendedWindow = false // detection only needs the main window
	cfg.Concurrency = *concurrency
	cfg.CacheDays = *cacheDays

	// Drive the staged Runner explicitly to report per-stage timings;
	// the result is byte-identical to pipeline.Run(cfg).
	var r *pipeline.Runner
	src, err := loadSource(*replaySFlow, *replayPCAP, *snapIn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsampdetect:", err)
		os.Exit(1)
	}
	if src != nil {
		// The campaign still supplies ground truth, topology, and the
		// tracked zones; only the traffic stream is replaced.
		r = pipeline.NewRunnerWithSource(cfg, ecosystem.NewCampaign(cfg.Campaign), src)
	} else {
		r = pipeline.NewRunner(cfg)
	}
	if *snapOut != "" {
		t0 := time.Now()
		r.Plan()
		rec := source.Record(r.Src)
		f, err := os.Create(*snapOut)
		if err == nil {
			err = rec.WriteSnapshot(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsampdetect: writing snapshot:", err)
			os.Exit(1)
		}
		// The study streams the freshly recorded days instead of
		// regenerating them (identical results, guaranteed by
		// TestSnapshotStudyMatchesLive).
		r.Src = rec
		fmt.Fprintf(os.Stderr, "%-9s %s (%d days -> %s)\n", "snapshot", time.Since(t0).Round(time.Millisecond), len(rec.Days()), *snapOut)
	}
	for _, stage := range []struct {
		name string
		run  func() *pipeline.Runner
	}{
		{"plan", r.Plan}, {"aggregate", r.Aggregate}, {"select", r.Select},
		{"detect", r.Detect}, {"collect", r.Collect},
	} {
		t0 := time.Now()
		stage.run()
		fmt.Fprintf(os.Stderr, "%-9s %s\n", stage.name, time.Since(t0).Round(time.Millisecond))
	}
	st := r.Study()

	fmt.Printf("sanitized DNS samples: %d (%d dropped as malformed)\n",
		st.CaptureStats.Accepted, st.CaptureStats.Malformed)
	fmt.Printf("selector consensus: N=%d; final misused-name list: %d names\n",
		st.ConsensusN, len(st.NameList.Names))
	for _, n := range st.NameList.Sorted() {
		tag := ""
		if dnswire.TLD(n) == "gov" {
			tag = "  [.gov]"
		}
		fmt.Printf("  %s%s\n", n, tag)
	}

	fmt.Printf("\ndetected attacks: %d ((victim IP, day) pairs)\n", len(st.Detections))
	byDay := map[int]int{}
	for _, d := range st.Detections {
		byDay[d.Day]++
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)
	fmt.Println("\nday          attacks")
	for _, d := range days {
		fmt.Printf("%s %8d\n", (simclock.Time(d) * simclock.Time(simclock.Day)).Date(), byDay[d])
	}

	if *verbose {
		fmt.Println("\nvictim            day         packets  share")
		for _, d := range st.Detections {
			fmt.Printf("%-16v %s %8d  %.2f\n",
				fmt.Sprintf("%d.%d.%d.%d", d.Victim[0], d.Victim[1], d.Victim[2], d.Victim[3]),
				(simclock.Time(d.Day) * simclock.Time(simclock.Day)).Date(), d.Packets, d.Share)
		}
	}
	fmt.Fprintf(os.Stderr, "\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}
