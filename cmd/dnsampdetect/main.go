// Command dnsampdetect runs the complete offline detection pipeline of
// §4 over a synthetic campaign: selector-based misused-name discovery,
// threshold detection, and a per-day attack summary.
//
// Usage:
//
//	dnsampdetect [-scale 0.05] [-seed 1] [-concurrency 0] [-cache-days 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/simclock"
)

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	seed := flag.Int64("seed", 1, "campaign seed")
	verbose := flag.Bool("v", false, "print every detection")
	concurrency := flag.Int("concurrency", 0, "pipeline worker count (0 = all cores, 1 = serial; results are identical)")
	cacheDays := flag.Int("cache-days", 0, "day-batch cache so pass 2 reuses pass-1 traffic (0 = off, -1 = all days, n = the oldest n days)")
	flag.Parse()

	start := time.Now()
	cfg := pipeline.DefaultConfig(*scale)
	cfg.Campaign.Seed = *seed
	cfg.ExtendedWindow = false // detection only needs the main window
	cfg.Concurrency = *concurrency
	cfg.CacheDays = *cacheDays

	// Drive the staged Runner explicitly to report per-stage timings;
	// the result is byte-identical to pipeline.Run(cfg).
	r := pipeline.NewRunner(cfg)
	for _, stage := range []struct {
		name string
		run  func() *pipeline.Runner
	}{
		{"plan", r.Plan}, {"aggregate", r.Aggregate}, {"select", r.Select},
		{"detect", r.Detect}, {"collect", r.Collect},
	} {
		t0 := time.Now()
		stage.run()
		fmt.Fprintf(os.Stderr, "%-9s %s\n", stage.name, time.Since(t0).Round(time.Millisecond))
	}
	st := r.Study()

	fmt.Printf("sanitized DNS samples: %d (%d dropped as malformed)\n",
		st.CaptureStats.Accepted, st.CaptureStats.Malformed)
	fmt.Printf("selector consensus: N=%d; final misused-name list: %d names\n",
		st.ConsensusN, len(st.NameList.Names))
	for _, n := range st.NameList.Sorted() {
		tag := ""
		if dnswire.TLD(n) == "gov" {
			tag = "  [.gov]"
		}
		fmt.Printf("  %s%s\n", n, tag)
	}

	fmt.Printf("\ndetected attacks: %d ((victim IP, day) pairs)\n", len(st.Detections))
	byDay := map[int]int{}
	for _, d := range st.Detections {
		byDay[d.Day]++
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)
	fmt.Println("\nday          attacks")
	for _, d := range days {
		fmt.Printf("%s %8d\n", (simclock.Time(d) * simclock.Time(simclock.Day)).Date(), byDay[d])
	}

	if *verbose {
		fmt.Println("\nvictim            day         packets  share")
		for _, d := range st.Detections {
			fmt.Printf("%-16v %s %8d  %.2f\n",
				fmt.Sprintf("%d.%d.%d.%d", d.Victim[0], d.Victim[1], d.Victim[2], d.Victim[3]),
				(simclock.Time(d.Day) * simclock.Time(simclock.Day)).Date(), d.Packets, d.Share)
		}
	}
	fmt.Fprintf(os.Stderr, "\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}
