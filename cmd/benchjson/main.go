// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, for the committed benchmark baseline
// (BENCH_baseline.json) and CI trend tracking.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Output is the whole baseline file.
type Output struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	out := Output{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				out.Context[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		r := Result{Name: fields[0], Procs: 1}
		// The -N suffix encodes GOMAXPROCS; absent on single-proc runs.
		if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if r.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		out.Results = append(out.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
