// Command ixpmon is the live-monitoring side of §4.3. It runs in three
// modes:
//
// Batch monitor (default, and with -sflow): streams sampled IXP
// traffic through the online monitor, which refreshes the misused-name
// list periodically (at most 5 minutes of delay in the paper) and
// reports daily victim aggregates and name-list churn. Traffic comes
// from the synthetic campaign by default; with -sflow it is read from
// an sFlow v5 datagram log in arrival order the way a collector socket
// would deliver it. -follow keeps the monitor attached after the last
// complete entry, tailing the file for appended datagrams with a
// capped exponential backoff (a partially flushed write is picked up
// once complete, and a log truncated or rotated out from under the
// tail is reopened cleanly); interrupt it to get the summary,
// including time spent waiting in the per-stage timings.
//
// Service mode (-serve): an always-on daemon ingesting sFlow v5
// datagrams over UDP from any number of collectors — or tailing a
// datagram log with -tail — aggregating them in a sliding window, and
// serving /detections, /stages, /sources, /metrics, /window, and
// /healthz over HTTP. With repeatable -input flags (or an -inputs
// spec file) the daemon instead drives several heterogeneous sources
// concurrently — UDP listeners, log tails, replay files, pcap,
// synthetic fill — each under its own supervisor with restart/backoff
// and fault isolation, merged by the -policy scheduler (round-robin,
// backlog, or arrival-time merge-replay). With -state it checkpoints
// its running state periodically and at shutdown, and -resume
// continues from the newest valid checkpoint after a crash or restart
// without double-counting a sample — per-input cursors included.
// SIGINT/SIGTERM shuts it down gracefully (the backlog is drained,
// the day in progress finalized, detections reported). See
// docs/OPERATIONS.md for the full surface and the failure-handling
// semantics.
//
// Sender mode (-send): replays a recorded datagram log over UDP to a
// service-mode instance, carrying each entry's capture time in the
// datagram Uptime field (pair with -serve -timestamps uptime).
//
// Usage:
//
//	ixpmon [-scale 0.05] [-days 14] [-interval 5m] [-concurrency 0]
//	ixpmon -sflow FILE [-follow] [-interval 5m] [-names 29]
//	ixpmon -serve [-listen ADDR] [-http ADDR] [-window 7] [-timestamps wall|uptime]
//	       [-state DIR [-resume] [-checkpoint-every 1m]] [-tail FILE]
//	       [-input SPEC]... [-inputs FILE] [-policy round-robin|backlog|arrival]
//	ixpmon -send FILE -to ADDR [-burst 64] [-pause 2ms]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ingest"
	"dnsamp/internal/ixp"
	"dnsamp/internal/server"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// Tail backoff bounds: reset to min whenever data arrives, double up
// to max while the log is idle — a tailer of a quiet log costs a
// couple of wakeups per second instead of a constant busy-poll.
const (
	tailWaitMin = 50 * time.Millisecond
	tailWaitMax = 5 * time.Second
)

// tailLog feeds a datagram log through the monitor in arrival order,
// through sflow.Tailer — so a log that is truncated or rotated out
// from under the tail is reopened cleanly instead of wedging the
// monitor. With follow, end-of-input waits for the file to grow
// instead of finishing; a signal on stop ends the tail and flushes the
// summary. Wait and processing time accumulate in stages.
func tailLog(mon *core.Monitor, path string, follow bool, stop <-chan os.Signal, stages *server.Stages) error {
	tl, err := sflow.NewTailer(path, 0)
	if err != nil {
		return err
	}
	defer tl.Close()
	// No routing substrate for a raw capture: origin/peer stay
	// unmapped unless the flow sample carries an ingress port.
	cp := ixp.NewCapturePoint(nil, mon.Table())
	var last simclock.Time
	n, dayN := 0, 0
	curDay := simclock.Time(-1)
	wait := tailWaitMin
	var reopens uint64
	for {
		stopProcess := stages.Track("process")
		rec, input, err := tl.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			stopProcess()
			if follow {
				select {
				case sig := <-stop:
					fmt.Fprintf(os.Stderr, "ixpmon: %v: closing tail\n", sig)
				case <-time.After(wait):
					stages.Add("wait", wait)
					if wait *= 2; wait > tailWaitMax {
						wait = tailWaitMax
					}
					continue
				}
			} else if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("log truncated mid-entry after %d samples", n)
			}
			break
		}
		if err != nil {
			stopProcess()
			return err
		}
		wait = tailWaitMin // data arrived: the log is live again
		if r := tl.Reopens(); r != reopens {
			reopens = r
			fmt.Fprintf(os.Stderr, "ixpmon: %s truncated or rotated; reopened (offset %d)\n", path, tl.Offset())
		}
		if day := rec.Time.StartOfDay(); day != curDay {
			if curDay >= 0 {
				fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", curDay.Date(), dayN)
			}
			curDay, dayN = day, 0
		}
		if s, ok := cp.Process(rec); ok {
			if input != 0 {
				s.PeerAS = input
			}
			mon.Observe(&s)
			n++
			dayN++
		}
		last = rec.Time
		stopProcess()
	}
	if curDay >= 0 {
		fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", curDay.Date(), dayN)
	}
	fmt.Fprintf(os.Stderr, "%d DNS samples processed from %s (%d sampled frames)\n", n, path, cp.Stats.Frames)
	printStages(stages.Snapshot())
	if n > 0 {
		mon.Close(last.Add(simclock.Day))
	}
	return nil
}

// printStages writes accumulated per-stage timings to stderr.
func printStages(stages []server.StageTiming) {
	for _, st := range stages {
		fmt.Fprintf(os.Stderr, "stage %-8s %8d calls  total %-14v mean %-12v max %v\n",
			st.Stage, st.Count, st.Total.Round(time.Microsecond),
			st.Mean().Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
}

// validateServeFlags rejects flag combinations that would silently do
// nothing or contradict each other: multi-source flags outside -serve,
// multi-source ingest combined with the single-input modes it
// replaces, a scheduling policy with nothing to schedule, and uptime
// timestamps on durable inputs (their datagram logs carry capture
// time in the entry header; the Uptime field is zero there, so the
// combination would collapse every sample onto second 0).
func validateServeFlags(serve bool, inputs []ingest.Spec, inputsFile, tailPath, policy, timestamps string) error {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if !serve {
		for _, name := range []string{"input", "inputs", "policy"} {
			if explicit[name] {
				return fmt.Errorf("-%s has no effect without -serve", name)
			}
		}
		return nil
	}
	multi := len(inputs) > 0
	if inputsFile != "" && len(inputs) == 0 {
		return fmt.Errorf("-inputs %s configures no sources: the file is empty", inputsFile)
	}
	if multi && tailPath != "" {
		return fmt.Errorf("-input/-inputs and -tail are mutually exclusive: tail is the single-input mode; add tail:%s as an input instead", tailPath)
	}
	if multi && explicit["listen"] {
		return fmt.Errorf("-listen has no effect with -input/-inputs: add udp://ADDR as an input instead")
	}
	if !multi {
		if policy != "" {
			return fmt.Errorf("-policy needs -input or -inputs: there is nothing to schedule")
		}
		return nil
	}
	switch policy {
	case "", ingest.PolicyRoundRobin, ingest.PolicyBacklog, ingest.PolicyArrival:
	default:
		return fmt.Errorf("-policy %q: want %s, %s, or %s", policy, ingest.PolicyRoundRobin, ingest.PolicyBacklog, ingest.PolicyArrival)
	}
	if timestamps == "uptime" {
		for _, sp := range inputs {
			if sp.Durable() {
				return fmt.Errorf("-timestamps uptime contradicts durable input %s: file-backed sources carry capture time natively", sp.ID)
			}
		}
	}
	return nil
}

// runServe runs the always-on service until interrupted.
func runServe(cfg server.Config) error {
	svc := server.NewService(cfg)
	if err := svc.Start(); err != nil {
		return err
	}
	if from := svc.ResumedFrom(); from != "" {
		fmt.Fprintf(os.Stderr, "ixpmon: resumed from %s\n", from)
	}
	switch {
	case len(cfg.Inputs) > 0:
		pol := cfg.Policy
		if pol == "" {
			pol = ingest.PolicyRoundRobin
		}
		fmt.Fprintf(os.Stderr, "ixpmon: driving %d supervised sources (%s policy), control surface on http://%s (window %dd, refresh %v)\n",
			len(cfg.Inputs), pol, svc.HTTPAddr(), cfg.Window.Days, time.Duration(cfg.Window.Refresh)*time.Second)
		for _, sp := range cfg.Inputs {
			fmt.Fprintf(os.Stderr, "ixpmon:   input %s\n", sp.ID)
		}
	case cfg.TailLog != "":
		fmt.Fprintf(os.Stderr, "ixpmon: tailing %s, control surface on http://%s (window %dd, refresh %v)\n",
			cfg.TailLog, svc.HTTPAddr(), cfg.Window.Days, time.Duration(cfg.Window.Refresh)*time.Second)
	default:
		fmt.Fprintf(os.Stderr, "ixpmon: serving sflow on udp %s, control surface on http://%s (window %dd, refresh %v)\n",
			svc.Addr(), svc.HTTPAddr(), cfg.Window.Days, time.Duration(cfg.Window.Refresh)*time.Second)
	}
	if cfg.StateDir != "" {
		fmt.Fprintf(os.Stderr, "ixpmon: crash-safe state in %s (checkpoint every %v)\n", cfg.StateDir, cfg.CheckpointEvery)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	fmt.Fprintf(os.Stderr, "ixpmon: %v: shutting down\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}

	ws := svc.WindowSnapshot()
	fmt.Fprintf(os.Stderr, "ixpmon: %d datagrams received, %d consumed, %d shed; %d days closed, %d client-days evicted\n",
		svc.Received(), svc.Consumed(), svc.QueueDrops(), ws.ClosedDays, ws.Evicted)
	printStages(svc.StagesSnapshot())
	dets := svc.DetectionsSnapshot()
	fmt.Printf("detections: %d\n", len(dets))
	for _, d := range dets {
		fmt.Printf("  %s  %-15s %6d pkts  %5.1f%% misused\n", d.Date, d.Victim, d.Packets, 100*d.Share)
	}
	return nil
}

// runSend replays a datagram log over UDP.
func runSend(path, to string, burst int, pause time.Duration) error {
	conn, err := net.Dial("udp", to)
	if err != nil {
		return err
	}
	defer conn.Close()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := server.SendLog(conn, f, burst, pause)
	fmt.Fprintf(os.Stderr, "ixpmon: sent %d datagrams from %s to %s\n", n, path, to)
	return err
}

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	days := flag.Int("days", 14, "days of traffic to monitor")
	interval := flag.Duration("interval", 5*time.Minute, "name-list refresh interval")
	listSize := flag.Int("names", 29, "per-selector name list size")
	concurrency := flag.Int("concurrency", 0, "day-traffic prefetch width (0 = all cores, 1 = serial; output is identical)")
	sflowPath := flag.String("sflow", "", "monitor an sFlow v5 datagram log instead of synthesizing traffic")
	follow := flag.Bool("follow", false, "with -sflow: keep tailing the log for appended datagrams")

	serve := flag.Bool("serve", false, "run as an always-on UDP sFlow service")
	listen := flag.String("listen", "127.0.0.1:6343", "with -serve: UDP listen address for sFlow datagrams")
	httpAddr := flag.String("http", "127.0.0.1:8080", "with -serve: HTTP listen address for the control surface")
	windowDays := flag.Int("window", 7, "with -serve: sliding window width in days")
	timestamps := flag.String("timestamps", "wall", "with -serve: datagram time source, wall|uptime (uptime = replayed capture time)")
	stateDir := flag.String("state", "", "with -serve: directory for checkpoints and poison files (enables crash-safe state)")
	resume := flag.Bool("resume", false, "with -serve -state: resume from the newest valid checkpoint and continue mid-stream")
	ckptEvery := flag.Duration("checkpoint-every", time.Minute, "with -serve -state: periodic checkpoint cadence (<= 0 keeps only the shutdown checkpoint)")
	tailPath := flag.String("tail", "", "with -serve: tail an sFlow datagram log instead of listening on UDP")
	var inputSpecs []ingest.Spec
	flag.Func("input", "with -serve: add a supervised ingest source (udp://ADDR, tail:PATH, replay:PATH, pcap:PATH, synthetic:[k=v,...]); repeatable", func(v string) error {
		sp, err := ingest.ParseSpec(v)
		if err != nil {
			return err
		}
		inputSpecs = append(inputSpecs, sp)
		return nil
	})
	inputsFile := flag.String("inputs", "", "with -serve: read supervised ingest sources from FILE, one spec per line (#-comments allowed); combines with -input")
	policy := flag.String("policy", "", "with -serve -input/-inputs: source scheduling policy: round-robin (default), backlog, or arrival (capture-time merge-replay)")

	sendPath := flag.String("send", "", "replay a datagram log over UDP to a -serve instance and exit")
	sendTo := flag.String("to", "127.0.0.1:6343", "with -send: destination address")
	burst := flag.Int("burst", 64, "with -send: datagrams per pacing burst (<= 0 sends flat out)")
	pause := flag.Duration("pause", 2*time.Millisecond, "with -send: pause between bursts")
	flag.Parse()

	if *inputsFile != "" {
		fromFile, err := ingest.ParseSpecFile(*inputsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ixpmon: -inputs:", err)
			os.Exit(2)
		}
		inputSpecs = append(fromFile, inputSpecs...)
	}
	if err := validateServeFlags(*serve, inputSpecs, *inputsFile, *tailPath, *policy, *timestamps); err != nil {
		fmt.Fprintln(os.Stderr, "ixpmon:", err)
		os.Exit(2)
	}

	switch {
	case *serve:
		if *timestamps != "wall" && *timestamps != "uptime" {
			fmt.Fprintln(os.Stderr, "ixpmon: -timestamps must be wall or uptime")
			os.Exit(2)
		}
		if *resume && *stateDir == "" {
			fmt.Fprintln(os.Stderr, "ixpmon: -resume needs -state")
			os.Exit(2)
		}
		ce := *ckptEvery
		if ce <= 0 {
			ce = -1 // disable the timer; the shutdown checkpoint remains
		}
		err := runServe(server.Config{
			UDPAddr:        *listen,
			HTTPAddr:       *httpAddr,
			TimeFromUptime: *timestamps == "uptime",
			Window: server.WindowConfig{
				Days:     *windowDays,
				ListSize: *listSize,
				Refresh:  simclock.Duration(interval.Seconds()),
			},
			StateDir:        *stateDir,
			Resume:          *resume,
			CheckpointEvery: ce,
			TailLog:         *tailPath,
			Inputs:          inputSpecs,
			Policy:          *policy,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ixpmon:", err)
			os.Exit(1)
		}
		return
	case *sendPath != "":
		if err := runSend(*sendPath, *sendTo, *burst, *pause); err != nil {
			fmt.Fprintln(os.Stderr, "ixpmon:", err)
			os.Exit(1)
		}
		return
	}

	mon := core.NewMonitor(*listSize, simclock.Duration(interval.Seconds()), core.DefaultThresholds())
	if *sflowPath != "" {
		stop := make(chan os.Signal, 1)
		if *follow {
			signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		}
		if err := tailLog(mon, *sflowPath, *follow, stop, server.NewStages()); err != nil {
			fmt.Fprintln(os.Stderr, "ixpmon:", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "building campaign (scale %.2f)...\n", *scale)
		c := ecosystem.NewCampaign(ecosystem.DefaultCampaignConfig(*scale))
		window := simclock.Window{
			Start: simclock.MeasurementStart,
			End:   simclock.MeasurementStart.Add(simclock.Days(*days)),
		}
		src := source.NewSynthetic(ecosystem.NewGenerator(c, 11), window)

		// Monitor.Consume prefetches day traffic in parallel while the
		// (stateful, order-dependent) monitor consumes days in order.
		mon.Consume(src, c.Topo, *concurrency, func(day simclock.Time, n int) {
			fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", day.Date(), n)
		})
	}

	fmt.Println("day          victims  /24s  /16s  /8s   name-list Jaccard vs prev day")
	for _, d := range mon.Days() {
		fmt.Printf("%s %8d %5d %5d %4d   %.2f\n",
			d.Day.Date(), d.Victims, d.Prefixes24, d.Prefixes16, d.Prefixes8, d.NameListJaccard)
	}
	fmt.Printf("\nmean day-over-day name-list Jaccard: %.2f (paper: 0.96)\n", mon.MeanNameListJaccard())
	fmt.Printf("current list (%d names):\n", len(mon.CurrentNames))
	for _, n := range sortedKeys(mon.CurrentNames) {
		fmt.Println("  " + n)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
