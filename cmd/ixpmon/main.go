// Command ixpmon is the live-monitoring prototype of §4.3: it streams
// sampled IXP traffic day by day through the online monitor, which
// refreshes the misused-name list periodically (at most 5 minutes of
// delay in the paper) and reports daily victim aggregates and name-list
// churn.
//
// Usage:
//
//	ixpmon [-scale 0.05] [-days 14] [-interval 5m] [-concurrency 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	days := flag.Int("days", 14, "days of traffic to monitor")
	interval := flag.Duration("interval", 5*time.Minute, "name-list refresh interval")
	listSize := flag.Int("names", 29, "per-selector name list size")
	concurrency := flag.Int("concurrency", 0, "day-traffic prefetch width (0 = all cores, 1 = serial; output is identical)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building campaign (scale %.2f)...\n", *scale)
	c := ecosystem.NewCampaign(ecosystem.DefaultCampaignConfig(*scale))
	window := simclock.Window{
		Start: simclock.MeasurementStart,
		End:   simclock.MeasurementStart.Add(simclock.Days(*days)),
	}
	src := source.NewSynthetic(ecosystem.NewGenerator(c, 11), window)
	mon := core.NewMonitor(*listSize, simclock.Duration(interval.Seconds()), core.DefaultThresholds())

	// Monitor.Consume prefetches day traffic in parallel while the
	// (stateful, order-dependent) monitor consumes days in order.
	mon.Consume(src, c.Topo, *concurrency, func(day simclock.Time, n int) {
		fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", day.Date(), n)
	})

	fmt.Println("day          victims  /24s  /16s  /8s   name-list Jaccard vs prev day")
	for _, d := range mon.Days() {
		fmt.Printf("%s %8d %5d %5d %4d   %.2f\n",
			d.Day.Date(), d.Victims, d.Prefixes24, d.Prefixes16, d.Prefixes8, d.NameListJaccard)
	}
	fmt.Printf("\nmean day-over-day name-list Jaccard: %.2f (paper: 0.96)\n", mon.MeanNameListJaccard())
	fmt.Printf("current list (%d names):\n", len(mon.CurrentNames))
	for _, n := range sortedKeys(mon.CurrentNames) {
		fmt.Println("  " + n)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
