// Command ixpmon is the live-monitoring prototype of §4.3: it streams
// sampled IXP traffic day by day through the online monitor, which
// refreshes the misused-name list periodically (at most 5 minutes of
// delay in the paper) and reports daily victim aggregates and name-list
// churn.
//
// Usage:
//
//	ixpmon [-scale 0.05] [-days 14] [-interval 5m] [-concurrency 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	days := flag.Int("days", 14, "days of traffic to monitor")
	interval := flag.Duration("interval", 5*time.Minute, "name-list refresh interval")
	listSize := flag.Int("names", 29, "per-selector name list size")
	concurrency := flag.Int("concurrency", 0, "day-traffic prefetch width (0 = all cores, 1 = serial; output is identical)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building campaign (scale %.2f)...\n", *scale)
	c := ecosystem.NewCampaign(ecosystem.DefaultCampaignConfig(*scale))
	gen := ecosystem.NewGenerator(c, 11)
	mon := core.NewMonitor(*listSize, simclock.Duration(interval.Seconds()), core.DefaultThresholds())
	capture := ixp.NewCapturePoint(c.Topo, mon.Table())

	// The online monitor is stateful and must see traffic in day order,
	// so concurrency takes the form of a bounded prefetch: day traffic
	// materializes in parallel while the monitor consumes days in order.
	// A producer holds its semaphore token until the consumer has
	// processed its day, bounding resident day traffic (generating or
	// generated-but-unconsumed) to the worker count.
	workers := *concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	end := simclock.MeasurementStart.Add(simclock.Days(*days))
	var dayList []simclock.Time
	for day := simclock.MeasurementStart; day.Before(end); day = day.Add(simclock.Day) {
		dayList = append(dayList, day)
	}
	slots := make([]chan *ecosystem.DayTraffic, len(dayList))
	for i := range slots {
		slots[i] = make(chan *ecosystem.DayTraffic, 1)
	}
	// The launcher takes tokens in day order, so the in-flight window is
	// always the next `workers` unconsumed days and the consumer can
	// never be starved of the day it is waiting on.
	sem := make(chan struct{}, workers)
	go func() {
		for i, day := range dayList {
			sem <- struct{}{}
			go func(i int, day simclock.Time) {
				slots[i] <- gen.Day(day)
			}(i, day)
		}
	}()
	for i, day := range dayList {
		dt := <-slots[i]
		n := 0
		if dt.Batch != nil {
			n = dt.Batch.N
		}
		capture.ConsumeBatch(dt.Batch, mon.Observe)
		fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", day.Date(), n)
		<-sem
	}
	mon.Close(end)

	fmt.Println("day          victims  /24s  /16s  /8s   name-list Jaccard vs prev day")
	for _, d := range mon.Days() {
		fmt.Printf("%s %8d %5d %5d %4d   %.2f\n",
			d.Day.Date(), d.Victims, d.Prefixes24, d.Prefixes16, d.Prefixes8, d.NameListJaccard)
	}
	fmt.Printf("\nmean day-over-day name-list Jaccard: %.2f (paper: 0.96)\n", mon.MeanNameListJaccard())
	fmt.Printf("current list (%d names):\n", len(mon.CurrentNames))
	for _, n := range sortedKeys(mon.CurrentNames) {
		fmt.Println("  " + n)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
