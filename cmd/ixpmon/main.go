// Command ixpmon is the live-monitoring prototype of §4.3: it streams
// sampled IXP traffic through the online monitor, which refreshes the
// misused-name list periodically (at most 5 minutes of delay in the
// paper) and reports daily victim aggregates and name-list churn.
//
// Traffic comes from the synthetic campaign by default; with -sflow it
// is read from an sFlow v5 datagram log instead, in arrival order the
// way a collector socket would deliver it. -follow keeps the monitor
// attached after the last complete entry, tailing the file for
// appended datagrams (the log reader resumes mid-entry, so a partially
// flushed write is picked up once complete).
//
// Usage:
//
//	ixpmon [-scale 0.05] [-days 14] [-interval 5m] [-concurrency 0]
//	ixpmon -sflow FILE [-follow] [-interval 5m] [-names 29]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// tailLog feeds a datagram log through the monitor in arrival order.
// With follow, end-of-input waits for the file to grow instead of
// finishing.
func tailLog(mon *core.Monitor, path string, follow bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	lr, err := sflow.NewLogReader(f)
	if err != nil {
		return err
	}
	// No routing substrate for a raw capture: origin/peer stay
	// unmapped unless the flow sample carries an ingress port.
	cp := ixp.NewCapturePoint(nil, mon.Table())
	var last simclock.Time
	n, dayN := 0, 0
	curDay := simclock.Time(-1)
	for {
		rec, input, err := lr.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			if follow {
				time.Sleep(500 * time.Millisecond)
				continue
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("log truncated mid-entry after %d samples", n)
			}
			break
		}
		if err != nil {
			return err
		}
		if day := rec.Time.StartOfDay(); day != curDay {
			if curDay >= 0 {
				fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", curDay.Date(), dayN)
			}
			curDay, dayN = day, 0
		}
		if s, ok := cp.Process(rec); ok {
			if input != 0 {
				s.PeerAS = input
			}
			mon.Observe(&s)
			n++
			dayN++
		}
		last = rec.Time
	}
	if curDay >= 0 {
		fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", curDay.Date(), dayN)
	}
	fmt.Fprintf(os.Stderr, "%d DNS samples processed from %s (%d sampled frames)\n", n, path, cp.Stats.Frames)
	if n > 0 {
		mon.Close(last.Add(simclock.Day))
	}
	return nil
}

func main() {
	scale := flag.Float64("scale", 0.05, "campaign scale")
	days := flag.Int("days", 14, "days of traffic to monitor")
	interval := flag.Duration("interval", 5*time.Minute, "name-list refresh interval")
	listSize := flag.Int("names", 29, "per-selector name list size")
	concurrency := flag.Int("concurrency", 0, "day-traffic prefetch width (0 = all cores, 1 = serial; output is identical)")
	sflowPath := flag.String("sflow", "", "monitor an sFlow v5 datagram log instead of synthesizing traffic")
	follow := flag.Bool("follow", false, "with -sflow: keep tailing the log for appended datagrams")
	flag.Parse()

	mon := core.NewMonitor(*listSize, simclock.Duration(interval.Seconds()), core.DefaultThresholds())
	if *sflowPath != "" {
		if err := tailLog(mon, *sflowPath, *follow); err != nil {
			fmt.Fprintln(os.Stderr, "ixpmon:", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "building campaign (scale %.2f)...\n", *scale)
		c := ecosystem.NewCampaign(ecosystem.DefaultCampaignConfig(*scale))
		window := simclock.Window{
			Start: simclock.MeasurementStart,
			End:   simclock.MeasurementStart.Add(simclock.Days(*days)),
		}
		src := source.NewSynthetic(ecosystem.NewGenerator(c, 11), window)

		// Monitor.Consume prefetches day traffic in parallel while the
		// (stateful, order-dependent) monitor consumes days in order.
		mon.Consume(src, c.Topo, *concurrency, func(day simclock.Time, n int) {
			fmt.Fprintf(os.Stderr, "%s: %d samples processed\n", day.Date(), n)
		})
	}

	fmt.Println("day          victims  /24s  /16s  /8s   name-list Jaccard vs prev day")
	for _, d := range mon.Days() {
		fmt.Printf("%s %8d %5d %5d %4d   %.2f\n",
			d.Day.Date(), d.Victims, d.Prefixes24, d.Prefixes16, d.Prefixes8, d.NameListJaccard)
	}
	fmt.Printf("\nmean day-over-day name-list Jaccard: %.2f (paper: 0.96)\n", mon.MeanNameListJaccard())
	fmt.Printf("current list (%d names):\n", len(mon.CurrentNames))
	for _, n := range sortedKeys(mon.CurrentNames) {
		fmt.Println("  " + n)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
