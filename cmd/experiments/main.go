// Command experiments regenerates every table and figure of the paper's
// evaluation from a synthetic campaign and prints paper-vs-measured
// reports (the rows recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-scale 0.2] [-seed 1] [-run figure14] [-cache-days 0]
//
// Scale 0.2 takes a few minutes and ~2 GB; 0.05 finishes in well under a
// minute with slightly noisier shares.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnsamp/internal/experiments"
	"dnsamp/internal/pipeline"
)

func main() {
	scale := flag.Float64("scale", 0.2, "campaign scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "campaign seed")
	run := flag.String("run", "", "only experiments whose id contains this substring (e.g. figure14, table2, section5)")
	concurrency := flag.Int("concurrency", 0, "pipeline worker count (0 = all cores, 1 = serial; results are identical)")
	cacheDays := flag.Int("cache-days", 0, "day-batch cache so pass 2 reuses pass-1 traffic (0 = off, -1 = all days, n = the oldest n days; trades memory for time)")
	flag.Parse()

	start := time.Now()
	cfg := pipeline.DefaultConfig(*scale)
	cfg.Campaign.Seed = *seed
	cfg.Concurrency = *concurrency
	cfg.CacheDays = *cacheDays
	fmt.Fprintf(os.Stderr, "planning and materializing campaign at scale %.2f (seed %d)...\n", *scale, *seed)
	suite := experiments.NewSuiteWithConfig(cfg)
	fmt.Fprintf(os.Stderr, "pipeline complete in %s; running experiments\n\n", time.Since(start).Round(time.Second))

	reports := suite.Run(*run)
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *run)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Second))
}
