// Command attackgen plans a synthetic measurement campaign and dumps its
// ground truth: every attack event as JSON lines, plus a summary. Use it
// to inspect what the generative model produces, or to feed external
// tooling.
//
// With -sflow-out / -pcap-out it additionally materializes the first
// -wire-days days of sampled IXP traffic as wire captures — an sFlow v5
// datagram log and/or a classic pcap file — the inputs dnsampdetect
// replays (-replay-sflow / -replay-pcap) and ixpmon tails (-sflow).
//
// Usage:
//
//	attackgen [-scale 0.1] [-seed 1] [-out events.jsonl] [-summary]
//	          [-wire-days 3] [-traffic-seed 1] [-sflow-out FILE] [-pcap-out FILE]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/pcap"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// exportWire materializes wire days and writes the selected capture
// formats.
func exportWire(c *ecosystem.Campaign, trafficSeed int64, days int, sflowPath, pcapPath string) error {
	gen := ecosystem.NewGenerator(c, trafficSeed)
	var lw *sflow.LogWriter
	var pw *pcap.Writer
	var closers []func() error
	if sflowPath != "" {
		f, err := os.Create(sflowPath)
		if err != nil {
			return err
		}
		closers = append(closers, f.Close)
		bw := bufio.NewWriter(f)
		closers = append(closers, bw.Flush)
		if lw, err = sflow.NewLogWriter(bw, [4]byte{192, 0, 2, 1}, sflow.DefaultRate); err != nil {
			return err
		}
	}
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		closers = append(closers, f.Close)
		bw := bufio.NewWriter(f)
		closers = append(closers, bw.Flush)
		if pw, err = pcap.NewWriter(bw, sflow.DefaultSnaplen); err != nil {
			return err
		}
	}
	// Generation order is per-event, not chronological (and events
	// straddling midnight emit into the next day); a collector's log is
	// arrival-ordered, so sort the exported window by capture time.
	var recs []ecosystem.TaggedRecord
	day := simclock.MeasurementStart
	for d := 0; d < days; d++ {
		recs = append(recs, gen.WireDay(day).IXP...)
		day = day.Add(simclock.Day)
	}
	slices.SortStableFunc(recs, func(a, b ecosystem.TaggedRecord) int {
		return int(a.Rec.Time.Sub(b.Rec.Time))
	})
	for _, tr := range recs {
		if lw != nil {
			if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
				return err
			}
		}
		if pw != nil {
			if err := pw.WritePacket(tr.Rec.Time, 0, tr.Rec.FrameLen, tr.Rec.Frame); err != nil {
				return err
			}
		}
	}
	frames := len(recs)
	if lw != nil {
		if err := lw.Flush(); err != nil {
			return err
		}
	}
	// Flush writers innermost-last: closers were appended file-then-
	// buffer, so walk them in reverse.
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i](); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wire capture: %d sampled frames over %d days\n", frames, days)
	return nil
}

// eventJSON is the serialized ground-truth form.
type eventJSON struct {
	ID         int    `json:"id"`
	Attacker   string `json:"attacker"`
	Entity     bool   `json:"entity"`
	Victim     string `json:"victim"`
	VictimASN  uint32 `json:"victim_asn"`
	Start      string `json:"start"`
	DurationS  int64  `json:"duration_s"`
	QName      string `json:"qname"`
	QType      string `json:"qtype"`
	Amplifiers int    `json:"amplifiers"`
	Sensors    int    `json:"sensors"`
	ReqPerAmp  int    `json:"req_per_amp"`
	TXIDPool   int    `json:"txid_pool"`
	ViaIXP     bool   `json:"requests_via_ixp"`
	IngressAS  uint32 `json:"ingress_as"`
}

func main() {
	scale := flag.Float64("scale", 0.1, "campaign scale")
	seed := flag.Int64("seed", 1, "campaign seed")
	out := flag.String("out", "-", "output file for JSONL events (- = stdout)")
	summaryOnly := flag.Bool("summary", false, "print only the summary")
	wireDays := flag.Int("wire-days", 3, "days of sampled wire traffic to export with -sflow-out/-pcap-out")
	trafficSeed := flag.Int64("traffic-seed", 1, "traffic synthesis seed for the wire export")
	sflowOut := flag.String("sflow-out", "", "write the sampled traffic as an sFlow v5 datagram log")
	pcapOut := flag.String("pcap-out", "", "write the sampled traffic as a classic pcap file")
	flag.Parse()

	cfg := ecosystem.DefaultCampaignConfig(*scale)
	cfg.Seed = *seed
	c := ecosystem.NewCampaign(cfg)

	if !*summaryOnly {
		w := bufio.NewWriter(os.Stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		defer w.Flush()
		enc := json.NewEncoder(w)
		for _, ev := range c.Events {
			_ = enc.Encode(eventJSON{
				ID: ev.ID, Attacker: ev.Attacker, Entity: ev.IsEntity,
				Victim: ev.Victim.String(), VictimASN: ev.VictimASN,
				Start: ev.Start.String(), DurationS: int64(ev.Duration),
				QName: ev.QName, QType: ev.QType.String(),
				Amplifiers: len(ev.Amplifiers), Sensors: len(ev.Sensors),
				ReqPerAmp: ev.ReqPerAmp, TXIDPool: len(ev.TXIDs),
				ViaIXP: ev.RequestsViaIXP, IngressAS: ev.IngressAS,
			})
		}
	}

	entity, spray, vetted, other := 0, 0, 0, 0
	for _, ev := range c.Events {
		switch {
		case ev.IsEntity:
			entity++
		case len(ev.Attacker) >= 5 && ev.Attacker[:5] == "spray":
			spray++
		case len(ev.Attacker) >= 6 && ev.Attacker[:6] == "vetted":
			vetted++
		default:
			other++
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: scale %.2f seed %d\n", *scale, *seed)
	fmt.Fprintf(os.Stderr, "events: %d total (%d entity, %d spray, %d vetted, %d fixed-list)\n",
		len(c.Events), entity, spray, vetted, other)
	fmt.Fprintf(os.Stderr, "amplifier pool: %d endpoints; honeypot sensors: %d\n", c.Pool.Len(), len(c.Sensors))
	fmt.Fprintf(os.Stderr, "entity rotation:\n")
	for _, ten := range c.Entity.Tenures {
		fmt.Fprintf(os.Stderr, "  %-26s %s .. %s\n", ten.Name, ten.Start.Date(), ten.End.Date())
	}
	fmt.Fprintf(os.Stderr, "relocation 1: %s (ingress AS%d), relocation 2: %s (ingress AS%d)\n",
		c.Entity.Reloc1.Date(), c.Entity.Ingress1, c.Entity.Reloc2.Date(), c.Entity.Ingress2)
	_ = simclock.MainPeriod()

	if *sflowOut != "" || *pcapOut != "" {
		if err := exportWire(c, *trafficSeed, *wireDays, *sflowOut, *pcapOut); err != nil {
			fmt.Fprintln(os.Stderr, "attackgen: wire export:", err)
			os.Exit(1)
		}
	}
}
