// Command attackgen plans a synthetic measurement campaign and dumps its
// ground truth: every attack event as JSON lines, plus a summary. Use it
// to inspect what the generative model produces, or to feed external
// tooling.
//
// With -sflow-out / -pcap-out it additionally materializes the first
// -wire-days days of sampled IXP traffic as wire captures — an sFlow v5
// datagram log and/or a classic pcap file — the inputs dnsampdetect
// replays (-replay-sflow / -replay-pcap) and ixpmon tails (-sflow).
// With -scenario NAME the wire export carries a catalog scenario
// (internal/scenario) overlaid on the attack-free background instead of
// the campaign's own events; -list-scenarios enumerates the catalog.
//
// Usage:
//
//	attackgen [-scale 0.1] [-seed 1] [-out events.jsonl] [-summary]
//	          [-wire-days 3] [-traffic-seed 1] [-sflow-out FILE] [-pcap-out FILE]
//	          [-scenario pulse-wave] [-scenario-seed 42] [-list-scenarios]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/scenario"
)

// eventJSON is the serialized ground-truth form.
type eventJSON struct {
	ID         int    `json:"id"`
	Attacker   string `json:"attacker"`
	Entity     bool   `json:"entity"`
	Victim     string `json:"victim"`
	VictimASN  uint32 `json:"victim_asn"`
	Start      string `json:"start"`
	DurationS  int64  `json:"duration_s"`
	QName      string `json:"qname"`
	QType      string `json:"qtype"`
	Amplifiers int    `json:"amplifiers"`
	Sensors    int    `json:"sensors"`
	ReqPerAmp  int    `json:"req_per_amp"`
	TXIDPool   int    `json:"txid_pool"`
	ViaIXP     bool   `json:"requests_via_ixp"`
	IngressAS  uint32 `json:"ingress_as"`
}

func main() {
	scale := flag.Float64("scale", 0.1, "campaign scale")
	seed := flag.Int64("seed", 1, "campaign seed")
	out := flag.String("out", "-", "output file for JSONL events (- = stdout)")
	summaryOnly := flag.Bool("summary", false, "print only the summary")
	wireDays := flag.Int("wire-days", 3, "days of sampled wire traffic to export with -sflow-out/-pcap-out")
	trafficSeed := flag.Int64("traffic-seed", 1, "traffic synthesis seed for the wire export")
	sflowOut := flag.String("sflow-out", "", "write the sampled traffic as an sFlow v5 datagram log")
	pcapOut := flag.String("pcap-out", "", "write the sampled traffic as a classic pcap file")
	scenarioName := flag.String("scenario", "", "export a catalog scenario's wire stream instead of the campaign's events")
	scenarioSeed := flag.Int64("scenario-seed", 42, "scenario seed for -scenario")
	listScenarios := flag.Bool("list-scenarios", false, "list catalog scenarios and exit")
	flag.Parse()

	if *listScenarios {
		for _, sc := range scenario.Catalog() {
			fmt.Printf("%-18s %-7s %s\n", sc.Name, sc.Kind, sc.Description)
		}
		return
	}
	if err := validateFlags(*sflowOut, *pcapOut, *wireDays, *scenarioName); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		fmt.Fprintln(os.Stderr, "run with -h for usage")
		os.Exit(2)
	}

	wantWire := *sflowOut != "" || *pcapOut != ""

	if *scenarioName != "" {
		// Scenario export path: the campaign only supplies the benign
		// background substrate; ground-truth events JSON would describe
		// attacks the capture does not contain, so the JSONL dump is
		// skipped and the scenario's own labels are reported instead.
		sc, err := scenario.ByName(*scenarioName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attackgen:", err)
			os.Exit(2)
		}
		p := scenario.DefaultParams()
		p.Days = *wireDays
		p.Scale = *scale
		p.CampaignSeed = *seed
		p.TrafficSeed = *trafficSeed
		env := scenario.NewEnv(p)
		bt := env.Build(sc, *scenarioSeed)
		n, err := bt.ExportWire(*sflowOut, *pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attackgen: wire export:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "scenario %s (%s): %d sampled frames over %d days, %d ground-truth victim-days\n",
			sc.Name, sc.Kind, n, p.Days, len(bt.TruthSet))
		return
	}

	cfg := ecosystem.DefaultCampaignConfig(*scale)
	cfg.Seed = *seed
	c := ecosystem.NewCampaign(cfg)

	if !*summaryOnly {
		w := bufio.NewWriter(os.Stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		defer w.Flush()
		enc := json.NewEncoder(w)
		for _, ev := range c.Events {
			_ = enc.Encode(eventJSON{
				ID: ev.ID, Attacker: ev.Attacker, Entity: ev.IsEntity,
				Victim: ev.Victim.String(), VictimASN: ev.VictimASN,
				Start: ev.Start.String(), DurationS: int64(ev.Duration),
				QName: ev.QName, QType: ev.QType.String(),
				Amplifiers: len(ev.Amplifiers), Sensors: len(ev.Sensors),
				ReqPerAmp: ev.ReqPerAmp, TXIDPool: len(ev.TXIDs),
				ViaIXP: ev.RequestsViaIXP, IngressAS: ev.IngressAS,
			})
		}
	}

	entity, spray, vetted, other := 0, 0, 0, 0
	for _, ev := range c.Events {
		switch {
		case ev.IsEntity:
			entity++
		case len(ev.Attacker) >= 5 && ev.Attacker[:5] == "spray":
			spray++
		case len(ev.Attacker) >= 6 && ev.Attacker[:6] == "vetted":
			vetted++
		default:
			other++
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: scale %.2f seed %d\n", *scale, *seed)
	fmt.Fprintf(os.Stderr, "events: %d total (%d entity, %d spray, %d vetted, %d fixed-list)\n",
		len(c.Events), entity, spray, vetted, other)
	fmt.Fprintf(os.Stderr, "amplifier pool: %d endpoints; honeypot sensors: %d\n", c.Pool.Len(), len(c.Sensors))
	fmt.Fprintf(os.Stderr, "entity rotation:\n")
	for _, ten := range c.Entity.Tenures {
		fmt.Fprintf(os.Stderr, "  %-26s %s .. %s\n", ten.Name, ten.Start.Date(), ten.End.Date())
	}
	fmt.Fprintf(os.Stderr, "relocation 1: %s (ingress AS%d), relocation 2: %s (ingress AS%d)\n",
		c.Entity.Reloc1.Date(), c.Entity.Ingress1, c.Entity.Reloc2.Date(), c.Entity.Ingress2)

	if wantWire {
		recs := scenario.CampaignWireRecords(c, *trafficSeed, *wireDays)
		n, err := scenario.WriteWire(recs, *sflowOut, *pcapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attackgen: wire export:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wire capture: %d sampled frames over %d days\n", n, *wireDays)
	}
}

// validateFlags rejects flag combinations that would silently do
// nothing (or silently do less than asked): wire-export tuning without
// an output, outputs with a non-positive day count, scenarios without a
// capture to land in.
func validateFlags(sflowOut, pcapOut string, wireDays int, scenarioName string) error {
	wantWire := sflowOut != "" || pcapOut != ""
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if wantWire && wireDays < 1 {
		return fmt.Errorf("-sflow-out/-pcap-out need -wire-days >= 1 (got %d): nothing would be exported", wireDays)
	}
	if !wantWire {
		for _, name := range []string{"wire-days", "traffic-seed"} {
			if explicit[name] {
				return fmt.Errorf("-%s has no effect without -sflow-out or -pcap-out", name)
			}
		}
		if scenarioName != "" {
			return fmt.Errorf("-scenario needs -sflow-out and/or -pcap-out: a scenario export is a wire capture")
		}
		if explicit["scenario-seed"] {
			return fmt.Errorf("-scenario-seed has no effect without -scenario")
		}
	}
	if scenarioName == "" && explicit["scenario-seed"] {
		return fmt.Errorf("-scenario-seed has no effect without -scenario")
	}
	return nil
}
