// Command attackgen plans a synthetic measurement campaign and dumps its
// ground truth: every attack event as JSON lines, plus a summary. Use it
// to inspect what the generative model produces, or to feed external
// tooling.
//
// Usage:
//
//	attackgen [-scale 0.1] [-seed 1] [-out events.jsonl] [-summary]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
)

// eventJSON is the serialized ground-truth form.
type eventJSON struct {
	ID         int    `json:"id"`
	Attacker   string `json:"attacker"`
	Entity     bool   `json:"entity"`
	Victim     string `json:"victim"`
	VictimASN  uint32 `json:"victim_asn"`
	Start      string `json:"start"`
	DurationS  int64  `json:"duration_s"`
	QName      string `json:"qname"`
	QType      string `json:"qtype"`
	Amplifiers int    `json:"amplifiers"`
	Sensors    int    `json:"sensors"`
	ReqPerAmp  int    `json:"req_per_amp"`
	TXIDPool   int    `json:"txid_pool"`
	ViaIXP     bool   `json:"requests_via_ixp"`
	IngressAS  uint32 `json:"ingress_as"`
}

func main() {
	scale := flag.Float64("scale", 0.1, "campaign scale")
	seed := flag.Int64("seed", 1, "campaign seed")
	out := flag.String("out", "-", "output file for JSONL events (- = stdout)")
	summaryOnly := flag.Bool("summary", false, "print only the summary")
	flag.Parse()

	cfg := ecosystem.DefaultCampaignConfig(*scale)
	cfg.Seed = *seed
	c := ecosystem.NewCampaign(cfg)

	if !*summaryOnly {
		w := bufio.NewWriter(os.Stdout)
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		defer w.Flush()
		enc := json.NewEncoder(w)
		for _, ev := range c.Events {
			_ = enc.Encode(eventJSON{
				ID: ev.ID, Attacker: ev.Attacker, Entity: ev.IsEntity,
				Victim: ev.Victim.String(), VictimASN: ev.VictimASN,
				Start: ev.Start.String(), DurationS: int64(ev.Duration),
				QName: ev.QName, QType: ev.QType.String(),
				Amplifiers: len(ev.Amplifiers), Sensors: len(ev.Sensors),
				ReqPerAmp: ev.ReqPerAmp, TXIDPool: len(ev.TXIDs),
				ViaIXP: ev.RequestsViaIXP, IngressAS: ev.IngressAS,
			})
		}
	}

	entity, spray, vetted, other := 0, 0, 0, 0
	for _, ev := range c.Events {
		switch {
		case ev.IsEntity:
			entity++
		case len(ev.Attacker) >= 5 && ev.Attacker[:5] == "spray":
			spray++
		case len(ev.Attacker) >= 6 && ev.Attacker[:6] == "vetted":
			vetted++
		default:
			other++
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: scale %.2f seed %d\n", *scale, *seed)
	fmt.Fprintf(os.Stderr, "events: %d total (%d entity, %d spray, %d vetted, %d fixed-list)\n",
		len(c.Events), entity, spray, vetted, other)
	fmt.Fprintf(os.Stderr, "amplifier pool: %d endpoints; honeypot sensors: %d\n", c.Pool.Len(), len(c.Sensors))
	fmt.Fprintf(os.Stderr, "entity rotation:\n")
	for _, ten := range c.Entity.Tenures {
		fmt.Fprintf(os.Stderr, "  %-26s %s .. %s\n", ten.Name, ten.Start.Date(), ten.End.Date())
	}
	fmt.Fprintf(os.Stderr, "relocation 1: %s (ingress AS%d), relocation 2: %s (ingress AS%d)\n",
		c.Entity.Reloc1.Date(), c.Entity.Ingress1, c.Entity.Reloc2.Date(), c.Entity.Ingress2)
	_ = simclock.MainPeriod()
}
