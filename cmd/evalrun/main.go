// Command evalrun runs the adversarial scenario catalog through the
// detection pipeline and reports per-scenario precision/recall/F1/
// time-to-detect across a Thresholds grid.
//
// Each scenario overlays a parameterized attack (or benign confounder)
// on the synthetic IXP background, aggregates once through the staged
// pipeline, and re-Detects per grid point — so a full sweep costs one
// aggregation per scenario regardless of grid size.
//
// Usage:
//
//	evalrun [-days 8] [-scale 0.05] [-procedural-names 50000]
//	        [-campaign-seed 1] [-traffic-seed 11] [-seed 42]
//	        [-scenario pulse-wave,slow-drip] [-list]
//	        [-shares 0.5,0.9] [-minpkts 5,10,20]
//	        [-out -] [-json FILE] [-sflow-dir DIR] [-pcap-dir DIR]
//	        [-concurrency N]
//
// -sflow-dir / -pcap-dir additionally export every selected scenario's
// full wire stream (background + overlay) as <scenario>.sflowlog /
// <scenario>.pcap — captures that re-ingest (dnsampdetect -replay-sflow,
// ixpmon -sflow) to identical detection scores.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dnsamp/internal/eval"
	"dnsamp/internal/scenario"
)

func main() {
	days := flag.Int("days", 8, "scenario window length in days")
	scale := flag.Float64("scale", 0.05, "background campaign scale")
	procNames := flag.Int("procedural-names", 50_000, "procedural namespace size")
	campaignSeed := flag.Int64("campaign-seed", 1, "background campaign seed")
	trafficSeed := flag.Int64("traffic-seed", 11, "background traffic seed")
	seed := flag.Int64("seed", 42, "scenario seed")
	scenarios := flag.String("scenario", "", "comma-separated scenario names (empty = full catalog)")
	list := flag.Bool("list", false, "list catalog scenarios and exit")
	shares := flag.String("shares", "0.5,0.9", "comma-separated MinShare grid values")
	minpkts := flag.String("minpkts", "5,10,20", "comma-separated MinPackets grid values")
	out := flag.String("out", "-", "text table output (- = stdout)")
	jsonOut := flag.String("json", "", "also write the full result as JSON to this file (- = stdout)")
	sflowDir := flag.String("sflow-dir", "", "export each scenario's wire stream as an sFlow log into this directory")
	pcapDir := flag.String("pcap-dir", "", "export each scenario's wire stream as a pcap into this directory")
	conc := flag.Int("concurrency", 0, "pipeline worker width (0 = all cores)")
	flag.Parse()

	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	if *list {
		for _, sc := range scenario.Catalog() {
			fmt.Printf("%-18s %-7s %s\n", sc.Name, sc.Kind, sc.Description)
		}
		return
	}

	grid, err := parseGrid(*shares, *minpkts)
	if err != nil {
		fatal(err)
	}
	var names []string
	if *scenarios != "" {
		for _, n := range strings.Split(*scenarios, ",") {
			if n = strings.TrimSpace(n); n != "" {
				// Fail on unknown names before the expensive env build.
				if _, err := scenario.ByName(n); err != nil {
					fatal(err)
				}
				names = append(names, n)
			}
		}
	}
	for _, dir := range []string{*sflowDir, *pcapDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}

	p := scenario.Params{
		Days:            *days,
		Scale:           *scale,
		ProceduralNames: *procNames,
		CampaignSeed:    *campaignSeed,
		TrafficSeed:     *trafficSeed,
	}
	env := scenario.NewEnv(p)
	opt := eval.Options{Grid: grid, Concurrency: *conc}
	res := &eval.Result{Params: env.P, Seed: *seed, Grid: grid}

	cat := scenario.Catalog()
	if len(names) > 0 {
		cat = cat[:0:0]
		for _, n := range names {
			sc, _ := scenario.ByName(n)
			cat = append(cat, sc)
		}
	}
	for _, sc := range cat {
		bt := env.Build(sc, *seed)
		res.Scores = append(res.Scores, eval.EvalBuilt(bt, opt)...)
		if *sflowDir != "" || *pcapDir != "" {
			sp, pp := "", ""
			if *sflowDir != "" {
				sp = filepath.Join(*sflowDir, sc.Name+".sflowlog")
			}
			if *pcapDir != "" {
				pp = filepath.Join(*pcapDir, sc.Name+".pcap")
			}
			n, err := bt.ExportWire(sp, pp)
			if err != nil {
				fatal(fmt.Errorf("export %s: %w", sc.Name, err))
			}
			fmt.Fprintf(os.Stderr, "exported %s: %d sampled frames\n", sc.Name, n)
		}
	}

	if err := writeOut(*out, func(w *bufio.Writer) error {
		return eval.WriteTable(w, res)
	}); err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		if err := writeOut(*jsonOut, func(w *bufio.Writer) error {
			return eval.WriteJSON(w, res)
		}); err != nil {
			fatal(err)
		}
	}
}

// parseGrid parses the comma-separated share and packet lists.
func parseGrid(shares, minpkts string) (eval.Grid, error) {
	var g eval.Grid
	for _, f := range strings.Split(shares, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 || v > 1 {
			return g, fmt.Errorf("evalrun: bad -shares value %q (want 0 < share <= 1)", f)
		}
		g.Shares = append(g.Shares, v)
	}
	for _, f := range strings.Split(minpkts, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return g, fmt.Errorf("evalrun: bad -minpkts value %q (want >= 1)", f)
		}
		g.MinPackets = append(g.MinPackets, v)
	}
	if len(g.Shares) == 0 || len(g.MinPackets) == 0 {
		return g, fmt.Errorf("evalrun: empty thresholds grid (-shares %q -minpkts %q)", shares, minpkts)
	}
	return g, nil
}

// writeOut opens path (or stdout for "-"), runs fn over a buffered
// writer, and flushes.
func writeOut(path string, fn func(*bufio.Writer) error) error {
	f := os.Stdout
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		defer f.Close()
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		return err
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalrun:", err)
	os.Exit(1)
}
