#!/usr/bin/env bash
# Publish one benchmark trend point to the gh-pages branch.
#
#   bench_trend.sh HEAD_BENCH_TXT DELTA_TXT
#
# HEAD_BENCH_TXT is the raw `go test -bench` output of this commit;
# DELTA_TXT is the benchstat comparison against the committed
# BENCH_baseline.txt. The script appends a dated entry (newest first)
# to bench/index.md on gh-pages and archives the raw run under
# bench/data/, so the Pages site accumulates a browsable performance
# trend of main. Run from the repository root with push rights to
# gh-pages; the CI bench-trend job is the normal caller.
set -euo pipefail

head_txt=${1:?usage: bench_trend.sh HEAD_BENCH_TXT DELTA_TXT}
delta_txt=${2:?usage: bench_trend.sh HEAD_BENCH_TXT DELTA_TXT}

sha=$(git rev-parse --short HEAD)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
worktree=$(mktemp -d)
trap 'git worktree remove --force "$worktree" 2>/dev/null || rm -rf "$worktree"' EXIT

if git fetch origin gh-pages 2>/dev/null; then
    git worktree add "$worktree" -B gh-pages origin/gh-pages
else
    # First run: start gh-pages as an orphan branch with an empty tree.
    git worktree add --detach "$worktree"
    git -C "$worktree" checkout --orphan gh-pages
    git -C "$worktree" rm -rfq . 2>/dev/null || true
fi

mkdir -p "$worktree/bench/data"
cp "$head_txt" "$worktree/bench/data/${stamp}-${sha}.txt"

entry=$(mktemp)
{
    echo "## ${stamp} — \`${sha}\`"
    echo
    echo "Raw run: [bench/data/${stamp}-${sha}.txt](data/${stamp}-${sha}.txt)"
    echo
    echo '```'
    cat "$delta_txt"
    echo '```'
    echo
} > "$entry"

page="$worktree/bench/index.md"
merged=$(mktemp)
if [ -f "$page" ]; then
    # Keep the title block (first two lines), insert the newest entry
    # right under it.
    { head -n 2 "$page"; cat "$entry"; tail -n +3 "$page"; } > "$merged"
else
    { echo "# dnsamp benchmark trend"; echo; cat "$entry"; } > "$merged"
fi
mv "$merged" "$page"
rm -f "$entry"

git -C "$worktree" add bench
if git -C "$worktree" -c user.name="bench-trend" -c user.email="bench-trend@users.noreply.github.com" \
    commit -m "bench trend: ${stamp} (${sha})"; then
    git -C "$worktree" push origin gh-pages
else
    echo "bench_trend: nothing to publish"
fi
