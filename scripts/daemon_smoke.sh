#!/bin/sh
# Daemon smoke test: start ixpmon in service mode, replay a generated
# sFlow log into it over UDP, assert the control surface serves
# non-empty well-formed output, and check it shuts down cleanly on
# SIGTERM. Mirrored by the daemon-smoke CI job and `make daemon-smoke`.
set -eu

WORK="$(mktemp -d)"
UDP_PORT="${UDP_PORT:-16343}"
HTTP_PORT="${HTTP_PORT:-18080}"
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "daemon smoke: FAIL: $*" >&2
    [ -f "$WORK/serve.log" ] && sed 's/^/  serve: /' "$WORK/serve.log" >&2
    exit 1
}

echo "== building =="
go build -o "$WORK/ixpmon" ./cmd/ixpmon
go build -o "$WORK/attackgen" ./cmd/attackgen

echo "== generating 2 days of sampled wire traffic =="
"$WORK/attackgen" -scale 0.02 -wire-days 2 -sflow-out "$WORK/traffic.sflow" -summary >/dev/null 2>&1
[ -s "$WORK/traffic.sflow" ] || fail "attackgen produced no sFlow log"

echo "== starting service mode =="
"$WORK/ixpmon" -serve -listen "127.0.0.1:$UDP_PORT" -http "127.0.0.1:$HTTP_PORT" \
    -window 2 -timestamps uptime >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the control surface to come up.
i=0
until curl -fsS "http://127.0.0.1:$HTTP_PORT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "control surface never came up"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "service exited early"
    sleep 0.2
done

echo "== replaying the log over UDP =="
"$WORK/ixpmon" -send "$WORK/traffic.sflow" -to "127.0.0.1:$UDP_PORT" 2>&1

# Wait until every received datagram has been consumed into the window.
i=0
while :; do
    METRICS="$(curl -fsS "http://127.0.0.1:$HTTP_PORT/metrics")" || fail "scraping /metrics"
    RECEIVED="$(printf '%s\n' "$METRICS" | awk '$1 == "ixpmon_datagrams_received_total" {print $2}')"
    CONSUMED="$(printf '%s\n' "$METRICS" | awk '$1 == "ixpmon_datagrams_consumed_total" {print $2}')"
    [ "${RECEIVED:-0}" -gt 0 ] && [ "$RECEIVED" = "$CONSUMED" ] && break
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "consumer never drained (received=$RECEIVED consumed=$CONSUMED)"
    sleep 0.2
done
echo "   $RECEIVED datagrams received and consumed"

echo "== checking /metrics =="
printf '%s\n' "$METRICS" | grep -q '^# TYPE ixpmon_datagrams_received_total counter$' \
    || fail "/metrics is not well-formed Prometheus text"
printf '%s\n' "$METRICS" | grep -q '^ixpmon_source_datagrams_total{agent="192.0.2.1",subagent="0"} ' \
    || fail "/metrics lacks per-source counters"
printf '%s\n' "$METRICS" | grep -q '^ixpmon_stage_seconds_total{stage="observe"} ' \
    || fail "/metrics lacks per-stage timings"

echo "== checking /detections =="
DETS="$(curl -fsS "http://127.0.0.1:$HTTP_PORT/detections")" || fail "scraping /detections"
# Day 1 has closed (the log spans 2 days), so detections must be a
# non-empty JSON array with the expected fields.
printf '%s\n' "$DETS" | grep -q '"victim":' || fail "/detections empty or malformed: $DETS"
printf '%s\n' "$DETS" | grep -q '"share":' || fail "/detections rows lack share: $DETS"

echo "== checking /sources and /stages =="
curl -fsS "http://127.0.0.1:$HTTP_PORT/sources" | grep -q '"agent": "192.0.2.1"' \
    || fail "/sources lacks the replaying collector"
curl -fsS "http://127.0.0.1:$HTTP_PORT/stages" | grep -q '"stage": "observe"' \
    || fail "/stages lacks the observe stage"

echo "== SIGTERM: graceful shutdown =="
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "service did not exit after SIGTERM"
    sleep 0.2
done
wait "$SERVE_PID" 2>/dev/null || fail "service exited non-zero"
SERVE_PID=""

grep -q 'shutting down' "$WORK/serve.log" || fail "no shutdown log line"
grep -q '^detections: [1-9]' "$WORK/serve.log" || fail "shutdown summary reported no detections"

echo "daemon smoke: OK"
