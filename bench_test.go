// Package repro benchmarks every table and figure of the reproduction
// (one benchmark per paper artifact, as indexed in DESIGN.md §4) plus the
// ablation benches of DESIGN.md §5 and micro-benchmarks of the hot
// substrate paths.
//
// The per-figure benchmarks measure the analysis cost over a shared
// small-scale study (the expensive pipeline run happens once). Regenerate
// the actual paper-vs-measured numbers with cmd/experiments.
package repro

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"dnsamp/internal/analysis"
	"dnsamp/internal/cluster"
	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/experiments"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/ixp"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/openintel"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
	"dnsamp/internal/zonedb"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := pipeline.DefaultConfig(0.02)
		cfg.Campaign.Zones.ProceduralNames = 100_000
		cfg.Campaign.Topology = topology.Config{Members: 40, ASesPerClass: 80, Seed: 1}
		benchSuite = experiments.NewSuiteWithConfig(cfg)
	})
	return benchSuite
}

// --- one benchmark per paper artifact --------------------------------------

func BenchmarkTable2(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table2(s.MainRecords, s.Study.NameList.Names)
	}
}

func BenchmarkFigure3(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ConsensusPoint(70, s.Study.Sel1, s.Study.Sel2, s.Study.Sel3)
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Figure4()
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	th := []int{1, 2, 3, 5, 10, 20, 50, 100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.VisibilityCurve(s.Study.AggMain, s.Study.VisibleGroundTruth,
			s.Study.NameList.Names, 0.9, th)
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{10, 15, 20, 25, 29} {
			nl := core.BuildNameList(n, s.Study.Sel1, s.Study.Sel2, s.Study.Sel3)
			core.ValidateDetection(s.Study.AggMain, s.Study.VisibleGroundTruth, nl.Names, s.Study.Cfg.Thresholds)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Overlap(s.Study.Detections, s.Study.HoneypotAttacks)
	}
}

func BenchmarkFigure8a(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AnalyzeEntity(s.Study.Records, len(s.Study.Detections), analysis.DefaultFingerprint())
	}
}

func BenchmarkFigure8b(b *testing.B) {
	s := suite(b)
	feed := openintel.New(s.Study.Campaign.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range s.Study.Campaign.DB.EntityNames() {
			series := feed.ANYSizeSeries(n, simclock.EntityPeriod())
			openintel.RolloverPlateaus(series, 1500)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Figure9()
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := suite(b)
	ent := s.Entity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range ent.Records {
			analysis.ProfileTXIDs(r, 0.9)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Figure11()
	}
}

func BenchmarkFigure12(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Figure12()
	}
}

func BenchmarkFigure13(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AnalyzeAmplifiers(s.MainRecords, s.Feed, s.Scans)
	}
}

func BenchmarkFigure14(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ClusterAmplifierSets(s.MainRecords, 0.35, 4, 150)
	}
}

func BenchmarkFigure15(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Figure15()
	}
}

func BenchmarkFigure16(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AnalyzePotential(s.Feed, s.Study.NameList.Sorted(), s.MainRecords,
			simclock.MeasurementStart.Add(simclock.Days(45)), 100)
	}
}

func BenchmarkFigure17(b *testing.B) {
	s := suite(b)
	cfg := analysis.DefaultSnoopConfig()
	cfg.Resolvers, cfg.Forwarders = 200, 200
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.RunSnoopStudy(cfg, s.Study.Campaign.DB, s.Study.NameList.Sorted(), simclock.MeasurementEnd)
	}
}

func BenchmarkFigure18(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		honeypot.Convergence(s.Study.HoneypotAttacks, 80)
	}
}

func BenchmarkSection5Overlap(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Section5()
	}
}

func BenchmarkSection6Entity(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Section6()
	}
}

func BenchmarkSection7(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Section7()
	}
}

// --- ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkAblationSampling compares binomial flow thinning against
// per-packet sampling for a 1M-packet flow: statistically identical,
// ~10^5x cheaper.
func BenchmarkAblationSampling(b *testing.B) {
	b.Run("thinning", func(b *testing.B) {
		s := sflow.NewSampler(1)
		for i := 0; i < b.N; i++ {
			s.ThinFlow(1_000_000)
		}
	})
	b.Run("per-packet", func(b *testing.B) {
		s := sflow.NewSampler(1)
		frame := make([]byte, 100)
		for i := 0; i < b.N; i++ {
			for j := 0; j < 1_000_000; j++ {
				s.SamplePacket(0, frame)
			}
		}
	})
}

// BenchmarkAblationSelectorSize measures detection validation across
// selector list sizes (the Fig. 6 sweep).
func BenchmarkAblationSelectorSize(b *testing.B) {
	s := suite(b)
	for _, n := range []int{10, 20, 29, 50} {
		nl := core.BuildNameList(n, s.Study.Sel1, s.Study.Sel2, s.Study.Sel3)
		b.Run(bname("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ValidateDetection(s.Study.AggMain, s.Study.VisibleGroundTruth, nl.Names, s.Study.Cfg.Thresholds)
			}
		})
	}
}

// BenchmarkAblationTruncation compares decoding a full 4kB response
// frame against the 128-byte truncated capture; truncation loses the
// answer section but keeps the response size recoverable.
func BenchmarkAblationTruncation(b *testing.B) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 1000})
	z, _ := db.Zone("doj.gov")
	q := dnswire.NewQuery(7, "doj.gov", dnswire.TypeANY, 4096)
	resp := z.BuildANYResponse(q, simclock.MeasurementStart)
	payload := dnswire.Encode(resp)
	ip := netmodel.IPv4{TTL: 60, Src: netip.MustParseAddr("203.0.113.1"), Dst: netip.MustParseAddr("192.0.2.1")}
	udp := netmodel.UDP{SrcPort: 53, DstPort: 40000}
	full := netmodel.EncodeUDPPacket(netmodel.Ethernet{}, ip, udp, payload)
	trunc := netmodel.Truncate(full, 128)

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pkt, _ := netmodel.DecodeFrame(full)
			dnswire.Parse(pkt.Payload)
		}
	})
	b.Run("truncated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pkt, _ := netmodel.DecodeFrame(trunc)
			dnswire.Parse(pkt.Payload)
		}
	})
}

// BenchmarkAblationThresholds sweeps the detection threshold pair.
func BenchmarkAblationThresholds(b *testing.B) {
	s := suite(b)
	for _, th := range []core.Thresholds{
		{MinShare: 0.5, MinPackets: 1},
		{MinShare: 0.9, MinPackets: 1},
		{MinShare: 0.9, MinPackets: 10},
		{MinShare: 0.99, MinPackets: 50},
	} {
		b.Run(bname("p", th.MinPackets), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Detect(s.Study.AggMain, s.Study.NameList.Names, th)
			}
		})
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkDNSEncodeQuery(b *testing.B) {
	var enc dnswire.Encoder
	q := dnswire.NewQuery(7, "peacecorps.gov", dnswire.TypeANY, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Encode(q)
	}
}

func BenchmarkDNSEncodeANYResponse(b *testing.B) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 1000})
	z, _ := db.Zone("doj.gov")
	q := dnswire.NewQuery(7, "doj.gov", dnswire.TypeANY, 4096)
	resp := z.BuildANYResponse(q, simclock.MeasurementStart)
	var enc dnswire.Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(resp)
	}
}

func BenchmarkDNSParseTruncated(b *testing.B) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 1000})
	z, _ := db.Zone("doj.gov")
	q := dnswire.NewQuery(7, "doj.gov", dnswire.TypeANY, 4096)
	wire := dnswire.Encode(z.BuildANYResponse(q, simclock.MeasurementStart))[:86]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnswire.Parse(wire)
	}
}

func BenchmarkZoneANYSize(b *testing.B) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 1000})
	t := simclock.MeasurementStart
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ANYSize("doj.gov", t.Add(simclock.Duration(i%100)*simclock.Day))
	}
}

func BenchmarkProceduralANYSize(b *testing.B) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 100_000})
	t := simclock.MeasurementStart
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ANYSize(db.ProceduralName(i%100_000), t)
	}
}

func BenchmarkTrafficDay(b *testing.B) {
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	c := ecosystem.NewCampaign(cfg)
	g := ecosystem.NewGenerator(c, 7)
	day := simclock.MeasurementStart.Add(simclock.Days(10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Day(day.Add(simclock.Days(i % 30)))
	}
}

// BenchmarkTrafficDayWire measures the frame-materializing twin of
// BenchmarkTrafficDay; the gap between the two is what the columnar
// batch path buys per day of traffic.
func BenchmarkTrafficDayWire(b *testing.B) {
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	c := ecosystem.NewCampaign(cfg)
	g := ecosystem.NewGenerator(c, 7)
	day := simclock.MeasurementStart.Add(simclock.Days(10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WireDay(day.Add(simclock.Days(i % 30)))
	}
}

// BenchmarkBatchConsume measures the decode/aggregate side alone: one
// pre-built day batch replayed through a capture point into a warmed
// aggregator (the loop the parallel pass-1 workers spend their time in).
func BenchmarkBatchConsume(b *testing.B) {
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	c := ecosystem.NewCampaign(cfg)
	g := ecosystem.NewGenerator(c, 7)
	dt := g.Day(simclock.MeasurementStart.Add(simclock.Days(10)))
	cap := ixp.NewCapturePoint(c.Topo, g.Table())
	ag := core.NewAggregator(g.Table(), c.DB.ExplicitNames())
	observe := func(s *ixp.DNSSample) { ag.Observe(s) }
	cap.ConsumeBatch(dt.Batch, observe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cap.ConsumeBatch(dt.Batch, observe)
	}
}

// BenchmarkObserveBatch measures the batch-native pass-1 loop that
// replaced the per-sample callback path: RemapBatch (stats + routing
// coverage over the AS cache) feeding Aggregator.ObserveBatch directly.
// The delta against BenchmarkBatchConsume is what batch-native
// aggregation buys per day of traffic.
func BenchmarkObserveBatch(b *testing.B) {
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	c := ecosystem.NewCampaign(cfg)
	g := ecosystem.NewGenerator(c, 7)
	dt := g.Day(simclock.MeasurementStart.Add(simclock.Days(10)))
	cap := ixp.NewCapturePoint(c.Topo, g.Table())
	ag := core.NewAggregator(g.Table(), c.DB.ExplicitNames())
	ag.ObserveBatch(cap.RemapBatch(dt.Batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag.ObserveBatch(cap.RemapBatch(dt.Batch))
	}
}

// BenchmarkDetectColumnar measures the threshold scan over the flat
// client-day arena: candidate resolution into the dense mark column,
// the cand/total column fill, and the branch-light integer pass.
func BenchmarkDetectColumnar(b *testing.B) {
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	c := ecosystem.NewCampaign(cfg)
	g := ecosystem.NewGenerator(c, 7)
	cap := ixp.NewCapturePoint(c.Topo, g.Table())
	ag := core.NewAggregator(g.Table(), c.DB.ExplicitNames())
	for d := 0; d < 7; d++ {
		dt := g.Day(simclock.MeasurementStart.Add(simclock.Days(10 + d)))
		ag.ObserveBatch(cap.RemapBatch(dt.Batch))
	}
	ag.CanonicalizeClients()
	cands := map[string]bool{}
	for _, n := range c.DB.MisusedCandidates() {
		cands[n] = true
	}
	th := core.DefaultThresholds()
	if len(core.Detect(ag, cands, th)) == 0 {
		b.Fatal("benchmark sweep found no detections")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Detect(ag, cands, th)
	}
}

// benchPipelineConfig is the shared configuration of the serial/parallel
// pipeline pair; BENCH_*.json tracks their ratio as the sharding speedup.
func benchPipelineConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig(0.01)
	cfg.Campaign.Zones.ProceduralNames = 20_000
	cfg.Campaign.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	cfg.ExtendedWindow = false
	return cfg
}

func BenchmarkPipelineSerial(b *testing.B) {
	cfg := benchPipelineConfig()
	cfg.Concurrency = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Run(cfg)
	}
}

func BenchmarkPipelineParallel(b *testing.B) {
	cfg := benchPipelineConfig()
	cfg.Concurrency = 0 // all cores
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Run(cfg)
	}
}

// BenchmarkPipelineCached is BenchmarkPipelineParallel with the
// day-batch cache enabled (source.Cached, unbounded): pass 2 replays
// the batches pass 1 materialized instead of regenerating them. The
// delta against BenchmarkPipelineParallel is the pass-2 reuse win;
// results are byte-identical (TestRunnerMatchesRun).
func BenchmarkPipelineCached(b *testing.B) {
	cfg := benchPipelineConfig()
	cfg.Concurrency = 0 // all cores
	cfg.CacheDays = -1  // cache every day
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Run(cfg)
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	m := cluster.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.DBSCAN(m, 0.2, 4)
	}
}

func BenchmarkTSNE(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	m := cluster.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	cfg := cluster.DefaultTSNEConfig()
	cfg.Iterations = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.TSNE(m, cfg)
	}
}

func bname(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
