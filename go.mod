module dnsamp

go 1.24
