# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep: `make build test race bench fuzz fmt` is exactly what a PR runs.

GO ?= go

.PHONY: all build test race bench bench-baseline bench-compare fuzz fmt vet daemon-smoke chaos-smoke eval-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: every benchmark compiles and runs once, with allocation
# counts reported.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./...

# Record the benchmark baseline: full suite with -benchmem, kept both as
# benchstat-compatible text and as machine-readable JSON. Commit the two
# BENCH_baseline.* files so future PRs can post their delta.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s -timeout 40m . | tee BENCH_baseline.txt
	$(GO) run ./cmd/benchjson < BENCH_baseline.txt > BENCH_baseline.json

# Compare the working tree against the committed baseline (needs
# benchstat: go install golang.org/x/perf/cmd/benchstat@latest).
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s -timeout 40m . > /tmp/bench_head.txt
	benchstat BENCH_baseline.txt /tmp/bench_head.txt

# Fuzz smoke: short coverage-guided runs of the byte-level parsers
# (DNS wire format, sFlow v5 datagrams, pcap records).
fuzz:
	$(GO) test -run '^$$' -fuzz Fuzz -fuzztime 10s ./internal/dnswire
	$(GO) test -run '^$$' -fuzz FuzzParseDatagram -fuzztime 10s ./internal/sflow
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/pcap

# Daemon smoke: service-mode ixpmon fed a generated sFlow log over
# UDP must serve non-empty /metrics and /detections and exit cleanly
# on SIGTERM.
daemon-smoke:
	./scripts/daemon_smoke.sh

# Chaos smoke: the crash-recovery and fault-injection suite,
# race-enabled. Replay through deterministic faults (fixed seed) must
# match the clean run's detections; a lossy fault storm must leave
# every datagram accounted for and /healthz back at ok; and the
# multi-source scheduler must keep two healthy sources byte-exact
# while a third is corrupted, wedged, or panicking (three sources,
# one faulty, fixed seed), surviving checkpoint/resume and log
# rotation without double-counting a sample.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestServiceChaos|TestServiceCrashRecovery|TestTailServiceResume|TestMultiSource|TestTailRotateCheckpointResume' ./internal/server/ ./internal/faults/

# Eval smoke: the scenario-catalog evaluation at the fixed golden
# params/seed/grid must reproduce the committed score table byte for
# byte (internal/eval/testdata/golden_catalog.txt), and the semantic
# contrast expectations must hold. A detector change that shifts any
# precision/recall/time-to-detect cell fails the diff; regenerate the
# golden deliberately with `go test ./internal/eval -run Golden -update`.
eval-smoke:
	$(GO) run ./cmd/evalrun -days 6 -scale 0.03 -procedural-names 20000 \
		-campaign-seed 1 -traffic-seed 11 -seed 42 -out /tmp/eval_head.txt
	diff -u internal/eval/testdata/golden_catalog.txt /tmp/eval_head.txt
	$(GO) test -count=1 -run 'TestGoldenExpectations' ./internal/eval/

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build fmt vet test race fuzz bench daemon-smoke chaos-smoke eval-smoke
