# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep: `make build test race bench fuzz fmt` is exactly what a PR runs.

GO ?= go

.PHONY: all build test race bench fuzz fmt vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: every benchmark compiles and runs once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Fuzz smoke: a short coverage-guided run of the wire-parser target.
fuzz:
	$(GO) test -run '^$$' -fuzz Fuzz -fuzztime 10s ./internal/dnswire

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: build fmt vet test race fuzz bench
