package analysis

import (
	"net/netip"
	"slices"

	"dnsamp/internal/cluster"
	"dnsamp/internal/core"
	"dnsamp/internal/openintel"
	"dnsamp/internal/scanner"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// AmplifierEcosystem bundles the §7.1 analyses.
type AmplifierEcosystem struct {
	// TotalAmplifiers is the number of distinct abused amplifier
	// addresses observed at the IXP (paper: 45k).
	TotalAmplifiers int
	// AuthoritativeCount are amplifiers identified as authoritative
	// nameservers via the measurement feed (paper: 908, ~2%).
	AuthoritativeCount int
	// RootAuthShare vs NonRootAuthShare compare the authoritative share
	// of amplifiers in root-query attacks vs others (paper: 4×).
	RootAuthShare, NonRootAuthShare float64

	// AmpsPerAttack is the Fig. 13a distribution.
	AmpsPerAttack *stats.ECDF
	// AttacksPerAmp is the Fig. 13b distribution.
	AttacksPerAmp *stats.ECDF
	// MultiAttackShare is the share of amplifiers in >1 attack (paper:
	// 50%); TenPlusShare in >10 (paper: 23%).
	MultiAttackShare, TenPlusShare float64

	// ShodanKnownShare is the fraction of abused amplifiers the scan
	// feed ever indexed (paper: 95%).
	ShodanKnownShare float64
	// AbusedBeforeDiscovery counts amplifiers abused before their first
	// scan sighting (paper: ~850, 2%).
	AbusedBeforeDiscovery int
	// FirstSeenHist / LastSeenHist bucket scan first/last sightings by
	// half-year (Fig. 15); keys are half-year indices since 2016.
	FirstSeenHist, LastSeenHist map[int]int

	// DayOverlapMean is the mean share of day-i amplifiers reappearing
	// on day i+1 (paper: 45%).
	DayOverlapMean float64
	// FirstLastOverlap compares the first and last day of the period
	// (paper: 20%).
	FirstLastOverlap float64
}

// AnalyzeAmplifiers runs the §7.1 ecosystem analyses over main-window
// attack records.
func AnalyzeAmplifiers(records []*core.AttackRecord, feed *openintel.Feed, scans *scanner.Index) *AmplifierEcosystem {
	res := &AmplifierEcosystem{
		AmpsPerAttack: &stats.ECDF{},
		AttacksPerAmp: &stats.ECDF{},
		FirstSeenHist: make(map[int]int),
		LastSeenHist:  make(map[int]int),
	}

	attacksPerAmp := make(map[[4]byte]int)
	firstAbuse := make(map[[4]byte]simclock.Time)
	perDay := make(map[int]map[[4]byte]bool)
	rootAuth, rootAll, otherAuth, otherAll := 0, 0, 0, 0

	for _, r := range records {
		res.AmpsPerAttack.AddInt(len(r.Amplifiers))
		isRoot := r.DominantName() == "."
		for a := range r.Amplifiers {
			attacksPerAmp[a]++
			if t, ok := firstAbuse[a]; !ok || r.First.Before(t) {
				firstAbuse[a] = r.First
			}
			if perDay[r.Day] == nil {
				perDay[r.Day] = make(map[[4]byte]bool)
			}
			perDay[r.Day][a] = true

			addr := netip.AddrFrom4(a)
			isAuth := len(feed.AuthoritativeZonesFor(addr)) > 0
			if isRoot {
				rootAll++
				if isAuth {
					rootAuth++
				}
			} else {
				otherAll++
				if isAuth {
					otherAuth++
				}
			}
		}
	}

	res.TotalAmplifiers = len(attacksPerAmp)
	multi, tenPlus := 0, 0
	authSet := 0
	known := 0
	early := 0
	for a, n := range attacksPerAmp {
		res.AttacksPerAmp.AddInt(n)
		if n > 1 {
			multi++
		}
		if n > 10 {
			tenPlus++
		}
		addr := netip.AddrFrom4(a)
		if len(feed.AuthoritativeZonesFor(addr)) > 0 {
			authSet++
		}
		if h, ok := scans.Lookup(addr); ok {
			known++
			res.FirstSeenHist[halfYearIndex(h.FirstSeen)]++
			res.LastSeenHist[halfYearIndex(h.LastSeen)]++
			if firstAbuse[a].Before(h.FirstSeen) {
				early++
			}
		}
	}
	res.AuthoritativeCount = authSet
	if res.TotalAmplifiers > 0 {
		res.MultiAttackShare = float64(multi) / float64(res.TotalAmplifiers)
		res.TenPlusShare = float64(tenPlus) / float64(res.TotalAmplifiers)
		res.ShodanKnownShare = float64(known) / float64(res.TotalAmplifiers)
	}
	res.AbusedBeforeDiscovery = early
	if rootAll > 0 {
		res.RootAuthShare = float64(rootAuth) / float64(rootAll)
	}
	if otherAll > 0 {
		res.NonRootAuthShare = float64(otherAuth) / float64(otherAll)
	}

	// Day-over-day abused-amplifier overlap.
	days := make([]int, 0, len(perDay))
	for d := range perDay {
		days = append(days, d)
	}
	slices.Sort(days)
	var overlapSum float64
	overlapN := 0
	for i := 1; i < len(days); i++ {
		if days[i] != days[i-1]+1 {
			continue
		}
		prev, cur := perDay[days[i-1]], perDay[days[i]]
		if len(prev) == 0 {
			continue
		}
		inter := 0
		for a := range prev {
			if cur[a] {
				inter++
			}
		}
		overlapSum += float64(inter) / float64(len(prev))
		overlapN++
	}
	if overlapN > 0 {
		res.DayOverlapMean = overlapSum / float64(overlapN)
	}
	if len(days) >= 2 {
		first, last := perDay[days[0]], perDay[days[len(days)-1]]
		inter := 0
		for a := range first {
			if last[a] {
				inter++
			}
		}
		if len(first) > 0 {
			res.FirstLastOverlap = float64(inter) / float64(len(first))
		}
	}
	return res
}

// halfYearIndex buckets a time into half-years since 2016-01.
func halfYearIndex(t simclock.Time) int {
	std := t.Std()
	idx := (std.Year()-2016)*2 + int(std.Month()-1)/6
	return idx
}

// ClusteringResult is the Fig. 14 analysis outcome.
type ClusteringResult struct {
	// Points is the number of clustered attack events.
	Points int
	// Labels are the DBSCAN labels (cluster.Noise for outliers).
	Labels []int
	// NoiseShare (paper: ~92%).
	NoiseShare float64
	// Clusters is the number of DBSCAN clusters (paper: 67).
	Clusters int
	// FixedListShare is the share of events in clusters with >= 5
	// attacks and >= 5 amplifiers (paper: ~2%).
	FixedListShare float64
	// MostStatic describes the most static cluster (paper's α: 177
	// attacks / 40 days, zero change).
	MostStatic ClusterSummary
	// Largest describes the cluster with the largest amplifier sets
	// (paper's β: ~527 amplifiers with small drift).
	Largest ClusterSummary
	// Embedding is the 2D t-SNE layout (subsampled; may be nil when
	// disabled).
	Embedding []cluster.Point2
	// EmbeddingLabels aligns with Embedding when present.
	EmbeddingLabels []int
}

// ClusterSummary describes one DBSCAN cluster.
type ClusterSummary struct {
	ID int
	// Attacks is the member count.
	Attacks int
	// SpanDays is the time spread of the member attacks.
	SpanDays int
	// MeanAmplifiers is the mean amplifier-set size.
	MeanAmplifiers float64
	// MeanIntraDistance is the mean pairwise Jaccard distance within
	// the cluster (0 = perfectly static list).
	MeanIntraDistance float64
}

// ClusterAmplifierSets runs the bilateral clustering of §7.1 over the
// records' amplifier sets: DBSCAN for cluster structure and (optionally,
// on a subsample of maxEmbed points) t-SNE for the visual layout.
func ClusterAmplifierSets(records []*core.AttackRecord, eps float64, minPts, maxEmbed int) *ClusteringResult {
	// Only events with at least one amplifier are clusterable.
	var evs []*core.AttackRecord
	for _, r := range records {
		if len(r.Amplifiers) > 0 {
			evs = append(evs, r)
		}
	}
	n := len(evs)
	res := &ClusteringResult{Points: n}
	if n == 0 {
		return res
	}

	sets := make([]map[string]bool, n)
	for i, r := range evs {
		s := make(map[string]bool, len(r.Amplifiers))
		for a := range r.Amplifiers {
			s[string(a[:])] = true
		}
		sets[i] = s
	}
	m := cluster.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, stats.JaccardDistance(sets[i], sets[j]))
		}
	}
	res.Labels = cluster.DBSCAN(m, eps, minPts)
	res.NoiseShare = cluster.NoiseShare(res.Labels)
	res.Clusters = cluster.NumClusters(res.Labels)

	// Summarize clusters.
	inFixed := 0
	bestStatic := ClusterSummary{MeanIntraDistance: 2}
	largest := ClusterSummary{}
	for id := 0; id < res.Clusters; id++ {
		members := cluster.Members(res.Labels, id)
		if len(members) == 0 {
			continue
		}
		sum := ClusterSummary{ID: id, Attacks: len(members)}
		minDayV, maxDayV := 1<<60, -1
		var ampSum float64
		for _, i := range members {
			if evs[i].Day < minDayV {
				minDayV = evs[i].Day
			}
			if evs[i].Day > maxDayV {
				maxDayV = evs[i].Day
			}
			ampSum += float64(len(evs[i].Amplifiers))
		}
		sum.SpanDays = maxDayV - minDayV + 1
		sum.MeanAmplifiers = ampSum / float64(len(members))
		var dsum float64
		cnt := 0
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				dsum += m.Dist(members[a], members[b])
				cnt++
			}
		}
		if cnt > 0 {
			sum.MeanIntraDistance = dsum / float64(cnt)
		}
		if sum.Attacks >= 5 && sum.MeanAmplifiers >= 5 {
			inFixed += sum.Attacks
			if sum.MeanIntraDistance < bestStatic.MeanIntraDistance {
				bestStatic = sum
			}
			if sum.MeanAmplifiers > largest.MeanAmplifiers {
				largest = sum
			}
		}
	}
	res.FixedListShare = float64(inFixed) / float64(n)
	res.MostStatic = bestStatic
	res.Largest = largest

	// Optional t-SNE embedding on a subsample.
	if maxEmbed > 0 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		if n > maxEmbed {
			// Deterministic stride subsample keeping cluster members.
			var keep []int
			for i, l := range res.Labels {
				if l >= 0 {
					keep = append(keep, i)
				}
			}
			stride := n/maxEmbed + 1
			for i := 0; i < n && len(keep) < maxEmbed; i += stride {
				if res.Labels[i] < 0 {
					keep = append(keep, i)
				}
			}
			slices.Sort(keep)
			idx = keep
		}
		sub := cluster.NewDense(len(idx))
		for a := 0; a < len(idx); a++ {
			for b := a + 1; b < len(idx); b++ {
				sub.Set(a, b, m.Dist(idx[a], idx[b]))
			}
		}
		res.Embedding = cluster.TSNE(sub, cluster.DefaultTSNEConfig())
		res.EmbeddingLabels = make([]int, len(idx))
		for i, j := range idx {
			res.EmbeddingLabels[i] = res.Labels[j]
		}
	}
	return res
}
