package analysis

import (
	"dnsamp/internal/core"
	"dnsamp/internal/openintel"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// PotentialResult is the §7.2 amplification-potential study (Fig. 16).
type PotentialResult struct {
	// NamesMeasured is the number of names whose ANY size was
	// estimated (paper: 440 M).
	NamesMeasured int
	// MisusedMax is the largest estimated size among misused names.
	MisusedMax int
	// MisusedMin is the smallest (the red band of Fig. 16).
	MisusedMin int
	// AbovePotential counts names exceeding MisusedMax (paper: 9048).
	AbovePotential int
	// AboveEDNS counts names exceeding 4096 B (paper: ~92,000).
	AboveEDNS int
	// MaxEstimated is the largest estimated response (paper: 142,855).
	MaxEstimated int
	// Headroom is MaxEstimated / LargestObserved (paper: 14×).
	Headroom float64
	// LargestObserved is the biggest response size in attack traffic.
	LargestObserved int
	// CDF holds plot points of the estimated-size distribution.
	CDF []stats.Point
}

// AnalyzePotential estimates ANY response sizes for the full namespace
// and relates them to the misused names and to observed attack traffic.
func AnalyzePotential(feed *openintel.Feed, misused []string, records []*core.AttackRecord, t simclock.Time, cdfPoints int) *PotentialResult {
	res := &PotentialResult{}

	ecdf := &stats.ECDF{}
	feed.EachName(func(name string) {
		size := feed.ANYSize(name, t)
		ecdf.AddInt(size)
		res.NamesMeasured++
		if size > res.MaxEstimated {
			res.MaxEstimated = size
		}
	})

	res.MisusedMin = 1 << 30
	for _, n := range misused {
		s := feed.ANYSize(n, t)
		if s > res.MisusedMax {
			res.MisusedMax = s
		}
		if s < res.MisusedMin {
			res.MisusedMin = s
		}
	}
	res.AbovePotential = int((1 - ecdf.P(float64(res.MisusedMax))) * float64(ecdf.Len()))
	res.AboveEDNS = int((1 - ecdf.P(4096)) * float64(ecdf.Len()))

	for _, r := range records {
		for _, s := range r.Sizes {
			if s > res.LargestObserved {
				res.LargestObserved = s
			}
		}
	}
	if res.LargestObserved > 0 {
		res.Headroom = float64(res.MaxEstimated) / float64(res.LargestObserved)
	}
	res.CDF = ecdf.Points(cdfPoints)
	return res
}

// TrafficShares reports the attack-traffic shares of §7.2: attack
// packets/bytes relative to all DNS traffic, and the ANY-specific
// shares.
type TrafficShares struct {
	// AttackPacketShare (paper: 5%) and AttackByteShare (paper: 40%).
	AttackPacketShare, AttackByteShare float64
	// ANYAttackPacketShare (paper: 68%) and ANYAttackByteShare (paper:
	// 78%) are attack shares within ANY traffic.
	ANYAttackPacketShare, ANYAttackByteShare float64
}

// ComputeTrafficShares aggregates the shares from pass-1 data and the
// detected (victim, day) pairs.
func ComputeTrafficShares(ag *core.Aggregator, dets []*core.Detection) *TrafficShares {
	res := &TrafficShares{}
	var atkPkts, atkBytes, atkANYPkts, atkANYBytes int
	for _, d := range dets {
		ca := ag.ClientOf(core.ClientDay{Client: d.Victim, Day: d.Day})
		if ca == nil {
			continue
		}
		atkPkts += ca.Total
		atkBytes += ca.Bytes
		atkANYPkts += ca.ANYPackets
		atkANYBytes += ca.ANYBytes
	}
	if ag.Samples > 0 {
		res.AttackPacketShare = float64(atkPkts) / float64(ag.Samples)
	}
	if ag.TotalBytes > 0 {
		res.AttackByteShare = float64(atkBytes) / float64(ag.TotalBytes)
	}
	if ag.ANYPackets > 0 {
		res.ANYAttackPacketShare = float64(atkANYPkts) / float64(ag.ANYPackets)
	}
	if ag.ANYBytes > 0 {
		res.ANYAttackByteShare = float64(atkANYBytes) / float64(ag.ANYBytes)
	}
	return res
}

// NXNSCheck reports the NS-referral profile of attack responses (§4.2:
// no NXNS attacks — 70% of responses carry at most 1 NS record, 90% at
// most 10). It consumes the pass-1 name statistics indirectly via the
// records' stored sizes; the visible-NS profile is collected at capture
// time, so this helper takes the values directly.
type NXNSCheck struct {
	AtMost1Share  float64
	AtMost10Share float64
}

// AnalyzeNXNS summarizes visible-NS counts of response samples.
func AnalyzeNXNS(visibleNS []int) NXNSCheck {
	if len(visibleNS) == 0 {
		return NXNSCheck{}
	}
	le1, le10 := 0, 0
	for _, v := range visibleNS {
		if v <= 1 {
			le1++
		}
		if v <= 10 {
			le10++
		}
	}
	n := float64(len(visibleNS))
	return NXNSCheck{AtMost1Share: float64(le1) / n, AtMost10Share: float64(le10) / n}
}
