package analysis

import (
	"testing"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/topology"
)

func TestAnalyzeMitigation(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 20, ASesPerClass: 30, Seed: 1})
	pool := ecosystem.NewPool(ecosystem.PoolConfig{
		Size: 10_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2,
	}, topo)

	// Build records whose amplifiers are real pool endpoints.
	var fwd, rec2 []*ecosystem.Amplifier
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		if a.Upstream >= 0 {
			fwd = append(fwd, a)
		} else {
			rec2 = append(rec2, a)
		}
		if len(fwd) >= 40 && len(rec2) >= 5 {
			break
		}
	}
	if len(fwd) < 40 || len(rec2) < 2 {
		t.Fatalf("pool composition unexpected: %d forwarders, %d others", len(fwd), len(rec2))
	}

	r := &core.AttackRecord{
		Packets:    100,
		ANYPackets: 100,
		Names:      map[string]int{"doj.gov.": 100},
		Amplifiers: map[[4]byte]int{},
		TXIDs:      map[uint16]int{},
		ReqIngress: map[uint32]int{},
		ReqTTLs:    map[uint8]int{},
	}
	for _, a := range fwd[:40] {
		r.Amplifiers[a.Addr.As4()] = 2
	}
	for _, a := range rec2[:2] {
		r.Amplifiers[a.Addr.As4()] = 2
	}

	mit := AnalyzeMitigation([]*core.AttackRecord{r}, pool)
	if mit.ANYShare != 1 {
		t.Errorf("ANY share = %v, want 1", mit.ANYShare)
	}
	wantFwd := float64(40*2) / float64(42*2)
	if mit.ForwarderResponseShare < wantFwd-0.01 || mit.ForwarderResponseShare > wantFwd+0.01 {
		t.Errorf("forwarder share = %v, want %.2f", mit.ForwarderResponseShare, wantFwd)
	}
	if mit.Upstreams == 0 {
		t.Fatal("no upstreams identified")
	}
	// Coverage must be monotone, ending at 1.
	prev := 0.0
	for _, v := range mit.UpstreamCurve {
		if v < prev {
			t.Fatal("coverage curve not monotone")
		}
		prev = v
	}
	if prev < 0.999 {
		t.Errorf("full coverage = %v, want 1", prev)
	}
	if mit.CoverageAt(0) != 0 {
		t.Error("CoverageAt(0) should be 0")
	}
	if mit.CoverageAt(mit.Upstreams+10) < 0.999 {
		t.Error("CoverageAt beyond range should saturate")
	}
	if mit.TopUpstreamForwarders < 1 {
		t.Error("top upstream should serve at least one forwarder")
	}
}

func TestMitigationEmpty(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 10, ASesPerClass: 5, Seed: 1})
	pool := ecosystem.NewPool(ecosystem.PoolConfig{Size: 100, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2}, topo)
	mit := AnalyzeMitigation(nil, pool)
	if mit.ANYShare != 0 || mit.Upstreams != 0 {
		t.Errorf("empty input: %+v", mit)
	}
}
