package analysis

import (
	"slices"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
)

// Table2Row is one per-TLD row of Table 2: the distribution of attacks
// and attack traffic across misused names.
type Table2Row struct {
	TLD string
	// Names is the number of misused names under the TLD.
	Names int
	// PacketShare is the TLD's share of attack packets (percent).
	PacketShare float64
	// Attacks counts attack events whose traffic includes the TLD's
	// names.
	Attacks int
	// MaxSize is the largest observed response size (bytes).
	MaxSize int
}

// Table2 reproduces Table 2 from attack records and the candidate list.
func Table2(records []*core.AttackRecord, candidates map[string]bool) []Table2Row {
	type agg struct {
		names   map[string]bool
		packets int
		attacks int
		maxSize int
	}
	byTLD := make(map[string]*agg)
	total := 0
	for name := range candidates {
		tld := dnswire.TLD(name)
		if byTLD[tld] == nil {
			byTLD[tld] = &agg{names: make(map[string]bool)}
		}
	}
	for _, r := range records {
		// Per-record attribution: every TLD with traffic in the record
		// counts one attack; packets attribute per name.
		seen := make(map[string]bool)
		for name, pkts := range r.Names {
			tld := dnswire.TLD(name)
			a := byTLD[tld]
			if a == nil {
				a = &agg{names: make(map[string]bool)}
				byTLD[tld] = a
			}
			a.names[name] = true
			a.packets += pkts
			total += pkts
			if !seen[tld] {
				a.attacks++
				seen[tld] = true
			}
		}
		// Max observed size attributed to the dominant name's TLD.
		dom := dnswire.TLD(r.DominantName())
		if a := byTLD[dom]; a != nil {
			for _, s := range r.Sizes {
				if s > a.maxSize {
					a.maxSize = s
				}
			}
		}
	}
	var rows []Table2Row
	for tld, a := range byTLD {
		if len(a.names) == 0 && a.packets == 0 {
			continue
		}
		row := Table2Row{TLD: tld, Names: len(a.names), Attacks: a.attacks, MaxSize: a.maxSize}
		if total > 0 {
			row.PacketShare = 100 * float64(a.packets) / float64(total)
		}
		rows = append(rows, row)
	}
	slices.SortFunc(rows, func(a, b Table2Row) int { return b.Attacks - a.Attacks })
	return rows
}

// DurationQuartiles summarizes attack durations (§4.2: 25% < 7 min,
// 50% < 33 min). Durations are observed spans of sampled packets, which
// underestimate short attacks; the paper has the same limitation.
type DurationQuartiles struct {
	Q25, Q50, Q75 float64 // seconds
}

// AttackDurations computes quartiles over records.
func AttackDurations(records []*core.AttackRecord) DurationQuartiles {
	var xs []float64
	for _, r := range records {
		xs = append(xs, float64(r.Duration()))
	}
	if len(xs) == 0 {
		return DurationQuartiles{}
	}
	slices.Sort(xs)
	q := func(p float64) float64 {
		i := int(p * float64(len(xs)-1))
		return xs[i]
	}
	return DurationQuartiles{Q25: q(0.25), Q50: q(0.5), Q75: q(0.75)}
}

// VictimClassShare reports the share of attack traffic per victim AS
// class (§4.2: ISP networks 36%, content 24%).
func VictimClassShare(records []*core.AttackRecord, classOf func(uint32) string) map[string]float64 {
	byClass := make(map[string]int)
	total := 0
	for _, r := range records {
		cls := classOf(r.VictimASN)
		byClass[cls] += r.Packets
		total += r.Packets
	}
	out := make(map[string]float64, len(byClass))
	for cls, n := range byClass {
		if total > 0 {
			out[cls] = float64(n) / float64(total)
		}
	}
	return out
}
