package analysis

import (
	"slices"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

// EntityFingerprint holds the §6 criteria that link attack records to
// the major attack entity: misuse of .gov names combined with static DNS
// transaction-ID behaviour (a small ID pool with single-parity
// structure).
type EntityFingerprint struct {
	// MaxTXIDRatio is the maximum #TXIDs / #packets ratio (the paper
	// finds IDs 1–2 orders of magnitude below the packet count).
	MaxTXIDRatio float64
	// MinParityShare is the minimum share of packets whose TXID parity
	// matches the dominant parity (paper: 91% of events are pure; the
	// rest show a two-phase shift).
	MinParityShare float64
	// MinPackets guards against tiny records where parity is
	// uninformative.
	MinPackets int
}

// DefaultFingerprint returns the §6.1 configuration.
func DefaultFingerprint() EntityFingerprint {
	return EntityFingerprint{MaxTXIDRatio: 0.35, MinParityShare: 0.90, MinPackets: 9}
}

// TXIDProfile summarizes a record's transaction-ID structure.
type TXIDProfile struct {
	Packets int
	Unique  int
	// EvenShare is the fraction of packets with even TXIDs.
	EvenShare float64
	// Pure is true when one parity dominates at MinParityShare.
	Pure bool
	// TwoPhase is true when the IDs split into an even set and an odd
	// set of meaningful size (the straddling 9%).
	TwoPhase bool
	// DominantParity is 0 (even) or 1 (odd).
	DominantParity int
}

// ProfileTXIDs computes the TXID structure of a record.
func ProfileTXIDs(r *core.AttackRecord, minShare float64) TXIDProfile {
	p := TXIDProfile{Packets: r.Packets, Unique: len(r.TXIDs)}
	even := 0
	for id, c := range r.TXIDs {
		if id%2 == 0 {
			even += c
		}
	}
	if r.Packets > 0 {
		p.EvenShare = float64(even) / float64(r.Packets)
	}
	if p.EvenShare >= 0.5 {
		p.DominantParity = 0
	} else {
		p.DominantParity = 1
	}
	domShare := p.EvenShare
	if p.DominantParity == 1 {
		domShare = 1 - p.EvenShare
	}
	p.Pure = domShare >= minShare
	p.TwoPhase = !p.Pure && domShare >= 0.55 && domShare <= 0.95 ||
		(!p.Pure && p.EvenShare > 0.2 && p.EvenShare < 0.8)
	return p
}

// MatchEntity applies the fingerprint to one record.
func (f EntityFingerprint) MatchEntity(r *core.AttackRecord) bool {
	if r.Packets < f.MinPackets {
		return false
	}
	if dnswire.TLD(r.DominantName()) != "gov" {
		return false
	}
	if float64(len(r.TXIDs)) > f.MaxTXIDRatio*float64(r.Packets) {
		return false
	}
	p := ProfileTXIDs(r, f.MinParityShare)
	return p.Pure || p.TwoPhase
}

// EntityResult bundles the §6 analyses.
type EntityResult struct {
	// Records attributed to the entity.
	Records []*core.AttackRecord
	// ShareOfAttacks is |Records| / all main-window attacks (paper:
	// 59%).
	ShareOfAttacks float64
	// PureParityShare is the share of entity records with single-parity
	// TXIDs (paper: 91%).
	PureParityShare float64
	// ParityRhythmScore is the share of entity records whose dominant
	// parity matches the best 48-hour alternation pattern (≈1.0 means
	// a clean two-day rhythm).
	ParityRhythmScore float64
	// RhythmPhase is the detected phase (0 or 1) of the alternation.
	RhythmPhase int

	// NameSeries is the Fig. 8a data: sampled packets per (day, name).
	NameSeries map[string]map[int]int
	// Transitions are the detected name-transition days (first day a
	// new .gov name dominates).
	Transitions []simclock.Time

	// VictimSeries is Fig. 11: per day, unique victim IPs / /24s / ASNs.
	VictimSeries []VictimDay

	// AmplifierSeries is Fig. 12: per day, known vs new amplifiers.
	AmplifierSeries []AmplifierDay

	// TXIDScatter is Fig. 10: per record (packets, unique TXIDs).
	TXIDScatter []TXIDPoint

	// RequestShareByPhase tracks the request fraction of entity traffic
	// before/after the relocations (paper: ~0% then ~85%).
	RequestShareByPhase map[int]float64
	// Relocations are detected infrastructure moves: days where the
	// dominant request-ingress AS changes (or requests appear at all).
	Relocations []Relocation

	// SizesByName feeds Fig. 9: observed response sizes per name.
	SizesByName map[string][]int
}

// VictimDay is one day of Fig. 11.
type VictimDay struct {
	Day      simclock.Time
	IPs      int
	Prefixes int
	ASNs     int
}

// AmplifierDay is one day of Fig. 12.
type AmplifierDay struct {
	Day   simclock.Time
	Known int
	New   int
}

// TXIDPoint is one Fig. 10 scatter point.
type TXIDPoint struct {
	Packets int
	TXIDs   int
}

// Relocation is one detected topological move of the entity back-end.
type Relocation struct {
	Day simclock.Time
	// FromAS / ToAS are the dominant ingress member ASNs before and
	// after (0 = requests not visible).
	FromAS, ToAS uint32
}

// AnalyzeEntity runs the §6 analyses over all attack records (main +
// extended window).
func AnalyzeEntity(records []*core.AttackRecord, mainWindowAttacks int, f EntityFingerprint) *EntityResult {
	res := &EntityResult{
		NameSeries:          make(map[string]map[int]int),
		RequestShareByPhase: make(map[int]float64),
		SizesByName:         make(map[string][]int),
	}
	for _, r := range records {
		if f.MatchEntity(r) {
			res.Records = append(res.Records, r)
		}
	}
	slices.SortFunc(res.Records, func(a, b *core.AttackRecord) int { return a.Day - b.Day })

	mainCount := 0
	pure := 0
	for _, r := range res.Records {
		if simclock.MainPeriod().Contains(simclock.Time(r.Day) * simclock.Time(simclock.Day)) {
			mainCount++
		}
		p := ProfileTXIDs(r, f.MinParityShare)
		if p.Pure {
			pure++
		}
		res.TXIDScatter = append(res.TXIDScatter, TXIDPoint{Packets: r.Packets, TXIDs: len(r.TXIDs)})
		name := r.DominantName()
		if res.NameSeries[name] == nil {
			res.NameSeries[name] = make(map[int]int)
		}
		res.NameSeries[name][r.Day] += r.Packets
		res.SizesByName[name] = append(res.SizesByName[name], r.Sizes...)
	}
	if mainWindowAttacks > 0 {
		res.ShareOfAttacks = float64(mainCount) / float64(mainWindowAttacks)
	}
	if len(res.Records) > 0 {
		res.PureParityShare = float64(pure) / float64(len(res.Records))
	}

	res.analyzeRhythm(f)
	res.analyzeTransitions()
	res.analyzeVictims()
	res.analyzeAmplifiers()
	res.analyzeRelocations()
	return res
}

// analyzeRhythm scores the 48-hour parity alternation.
func (res *EntityResult) analyzeRhythm(f EntityFingerprint) {
	match := [2]int{}
	total := 0
	for _, r := range res.Records {
		p := ProfileTXIDs(r, f.MinParityShare)
		if !p.Pure {
			continue
		}
		total++
		for phase := 0; phase < 2; phase++ {
			want := (r.Day/2 + phase) % 2
			if p.DominantParity == want {
				match[phase]++
			}
		}
	}
	if total == 0 {
		return
	}
	if match[0] >= match[1] {
		res.ParityRhythmScore = float64(match[0]) / float64(total)
		res.RhythmPhase = 0
	} else {
		res.ParityRhythmScore = float64(match[1]) / float64(total)
		res.RhythmPhase = 1
	}
}

// analyzeTransitions finds the first day each name becomes the entity's
// daily dominant name.
func (res *EntityResult) analyzeTransitions() {
	// Dominant name per day.
	byDay := make(map[int]map[string]int)
	for name, days := range res.NameSeries {
		for d, pkts := range days {
			if byDay[d] == nil {
				byDay[d] = make(map[string]int)
			}
			byDay[d][name] += pkts
		}
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)
	prev := ""
	for _, d := range days {
		best, bestName := 0, ""
		for n, p := range byDay[d] {
			if p > best || (p == best && n < bestName) {
				best, bestName = p, n
			}
		}
		if bestName != prev && prev != "" {
			res.Transitions = append(res.Transitions, simclock.Time(d)*simclock.Time(simclock.Day))
		}
		prev = bestName
	}
}

// analyzeVictims builds Fig. 11.
func (res *EntityResult) analyzeVictims() {
	type daySets struct {
		ips  map[[4]byte]bool
		p24  map[[3]byte]bool
		asns map[uint32]bool
	}
	byDay := make(map[int]*daySets)
	for _, r := range res.Records {
		ds := byDay[r.Day]
		if ds == nil {
			ds = &daySets{ips: map[[4]byte]bool{}, p24: map[[3]byte]bool{}, asns: map[uint32]bool{}}
			byDay[r.Day] = ds
		}
		ds.ips[r.Victim] = true
		ds.p24[[3]byte{r.Victim[0], r.Victim[1], r.Victim[2]}] = true
		ds.asns[r.VictimASN] = true
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)
	for _, d := range days {
		ds := byDay[d]
		res.VictimSeries = append(res.VictimSeries, VictimDay{
			Day: simclock.Time(d) * simclock.Time(simclock.Day),
			IPs: len(ds.ips), Prefixes: len(ds.p24), ASNs: len(ds.asns),
		})
	}
}

// analyzeAmplifiers builds Fig. 12: per day, amplifiers already seen in
// earlier entity attacks vs first-time amplifiers.
func (res *EntityResult) analyzeAmplifiers() {
	byDay := make(map[int]map[[4]byte]bool)
	for _, r := range res.Records {
		m := byDay[r.Day]
		if m == nil {
			m = make(map[[4]byte]bool)
			byDay[r.Day] = m
		}
		for a := range r.Amplifiers {
			m[a] = true
		}
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)
	seen := make(map[[4]byte]bool)
	for _, d := range days {
		known, fresh := 0, 0
		for a := range byDay[d] {
			if seen[a] {
				known++
			} else {
				fresh++
				seen[a] = true
			}
		}
		res.AmplifierSeries = append(res.AmplifierSeries, AmplifierDay{
			Day: simclock.Time(d) * simclock.Time(simclock.Day), Known: known, New: fresh,
		})
	}
}

// analyzeRelocations detects infrastructure moves from the request-side
// observables: the request share of entity traffic and the dominant
// ingress member.
func (res *EntityResult) analyzeRelocations() {
	type dayReq struct {
		day      int
		requests int
		packets  int
		ingress  map[uint32]int
	}
	byDay := make(map[int]*dayReq)
	for _, r := range res.Records {
		dr := byDay[r.Day]
		if dr == nil {
			dr = &dayReq{day: r.Day, ingress: make(map[uint32]int)}
			byDay[r.Day] = dr
		}
		dr.requests += r.Requests
		dr.packets += r.Packets
		for as, c := range r.ReqIngress {
			dr.ingress[as] += c
		}
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	slices.Sort(days)

	// Phase request shares (0 = before first relocation).
	var phases []struct {
		packets, requests int
	}
	phases = append(phases, struct{ packets, requests int }{})

	prevAS := uint32(0)
	candidate := uint32(0)
	run := 0
	for _, d := range days {
		dr := byDay[d]
		domAS, domCnt := uint32(0), 0
		for as, c := range dr.ingress {
			if c > domCnt {
				domAS, domCnt = as, c
			}
		}
		// Require the dominant ingress to carry a meaningful request
		// share to count as "visible requests".
		if dr.requests*5 < dr.packets {
			domAS = 0
		}
		switch {
		case domAS == prevAS:
			run = 0
		case domAS == candidate:
			run++
			if run >= 2 { // two consistent days confirm a move
				res.Relocations = append(res.Relocations, Relocation{
					Day: simclock.Time(d-1) * simclock.Time(simclock.Day), FromAS: prevAS, ToAS: domAS,
				})
				prevAS = domAS
				run = 0
				phases = append(phases, struct{ packets, requests int }{})
			}
		default:
			candidate = domAS
			run = 1
		}
		cur := &phases[len(phases)-1]
		cur.packets += dr.packets
		cur.requests += dr.requests
	}
	for i, ph := range phases {
		if ph.packets > 0 {
			res.RequestShareByPhase[i] = float64(ph.requests) / float64(ph.packets)
		}
	}
}
