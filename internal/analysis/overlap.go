// Package analysis implements the paper's result analyses over the
// detection pipeline's outputs: the IXP/honeypot comparison (§5), the
// major-attack-entity fingerprinting (§6), the amplifier-ecosystem and
// amplification-potential studies (§7), and the cache-snooping check
// (§8 / Appendix C).
//
// Everything here works from observable data (attack records, honeypot
// events, scan feeds); ground-truth campaign events are used only to
// score attribution quality, never to produce results.
package analysis

import (
	"dnsamp/internal/core"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/stats"
)

// OverlapResult is the §5 comparison.
type OverlapResult struct {
	IXPAttacks      int
	HoneypotAttacks int
	Mutual          int
	// MutualShareIXP is Mutual / IXPAttacks (paper: 4.2%).
	MutualShareIXP float64
	// MutualShareHoneypot is Mutual / HoneypotAttacks (paper: 3.5%).
	MutualShareHoneypot float64
	// NewAtIXP counts IXP attacks invisible to the honeypot (paper:
	// 24.6k new attacks).
	NewAtIXP int
	// UniqueVictims counts distinct victim IPs among IXP attacks
	// (paper: 19k).
	UniqueVictims int

	// MeanDecileHoneypot / MeanDecileIXP are the mutual attacks' mean
	// intensity deciles in each ranking (paper: 7.7 vs 6.3, Fig. 7).
	MeanDecileHoneypot float64
	MeanDecileIXP      float64
	// DecileHistHoneypot / DecileHistIXP are the Fig. 7 distributions
	// (index 0 = decile 1).
	DecileHistHoneypot [10]float64
	DecileHistIXP      [10]float64
}

// Overlap computes the §5 comparison between IXP detections and
// honeypot attacks. A detection and a honeypot attack match when they
// target the same victim on overlapping days.
func Overlap(dets []*core.Detection, hps []*honeypot.Attack) *OverlapResult {
	res := &OverlapResult{IXPAttacks: len(dets), HoneypotAttacks: len(hps)}

	hpDays := make(map[core.ClientDay]*honeypot.Attack)
	for _, a := range hps {
		for d := a.Start.Day(); d <= a.End.Day(); d++ {
			hpDays[core.ClientDay{Client: a.VictimKey(), Day: d}] = a
		}
	}

	// Intensity rankings.
	ixpInt := stats.ECDF{}
	for _, d := range dets {
		ixpInt.AddInt(d.Packets)
	}
	hpInt := stats.ECDF{}
	for _, a := range hps {
		hpInt.AddInt(a.Requests)
	}

	victims := make(map[[4]byte]bool)
	matchedHP := make(map[*honeypot.Attack]bool)
	var sumHP, sumIXP float64
	for _, d := range dets {
		victims[d.Victim] = true
		a := hpDays[core.ClientDay{Client: d.Victim, Day: d.Day}]
		if a == nil {
			res.NewAtIXP++
			continue
		}
		res.Mutual++
		matchedHP[a] = true
		dh := hpInt.DecileRank(float64(a.Requests))
		di := ixpInt.DecileRank(float64(d.Packets))
		sumHP += float64(dh)
		sumIXP += float64(di)
		res.DecileHistHoneypot[dh-1]++
		res.DecileHistIXP[di-1]++
	}
	res.UniqueVictims = len(victims)
	if res.IXPAttacks > 0 {
		res.MutualShareIXP = float64(res.Mutual) / float64(res.IXPAttacks)
	}
	if res.HoneypotAttacks > 0 {
		res.MutualShareHoneypot = float64(len(matchedHP)) / float64(res.HoneypotAttacks)
	}
	if res.Mutual > 0 {
		res.MeanDecileHoneypot = sumHP / float64(res.Mutual)
		res.MeanDecileIXP = sumIXP / float64(res.Mutual)
		for i := range res.DecileHistHoneypot {
			res.DecileHistHoneypot[i] /= float64(res.Mutual)
			res.DecileHistIXP[i] /= float64(res.Mutual)
		}
	}
	return res
}
