package analysis

import (
	"slices"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
)

// MitigationImpact quantifies §8's operator recommendations against the
// observed attack traffic:
//
//   - Blocking or minimizing ANY (RFC 8482) removes the share of attack
//     traffic that is ANY-based.
//   - "Some few resolvers serve a significant amount of amplifiers
//     (i.e., forwarders), educating those first will have larger
//     impact": the cumulative share of abused-forwarder responses
//     covered by fixing the top-K shared upstream resolvers.
type MitigationImpact struct {
	// ANYShare is the fraction of attack packets that ANY handling
	// changes would remove (paper context: attack traffic is ~all ANY).
	ANYShare float64
	// ForwarderResponseShare is the share of attack responses emitted
	// by forwarders (vs recursives/authoritatives).
	ForwarderResponseShare float64
	// UpstreamCurve[k] is the cumulative share of forwarder-borne
	// attack responses eliminated by educating the k+1 largest shared
	// upstream resolvers.
	UpstreamCurve []float64
	// Upstreams is the number of distinct upstreams behind abused
	// forwarders.
	Upstreams int
	// TopUpstreamForwarders is the abused-forwarder count behind the
	// single largest upstream (the paper observes individual resolvers
	// serving up to 20k amplifiers).
	TopUpstreamForwarders int
}

// AnalyzeMitigation computes the impact estimates from attack records
// and the amplifier population.
func AnalyzeMitigation(records []*core.AttackRecord, pool *ecosystem.Pool) *MitigationImpact {
	res := &MitigationImpact{}

	byAddr := make(map[[4]byte]*ecosystem.Amplifier, pool.Len())
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		byAddr[a.Addr.As4()] = a
	}

	var totalPkts, anyPkts int
	var respTotal, respForwarder int
	upstreamResponses := make(map[int]int)
	upstreamForwarders := make(map[int]map[[4]byte]bool)

	for _, r := range records {
		totalPkts += r.Packets
		anyPkts += r.ANYPackets
		for addr, cnt := range r.Amplifiers {
			respTotal += cnt
			a := byAddr[addr]
			if a == nil {
				continue
			}
			if a.Upstream >= 0 {
				respForwarder += cnt
				upstreamResponses[a.Upstream] += cnt
				if upstreamForwarders[a.Upstream] == nil {
					upstreamForwarders[a.Upstream] = make(map[[4]byte]bool)
				}
				upstreamForwarders[a.Upstream][addr] = true
			}
		}
	}
	if totalPkts > 0 {
		res.ANYShare = float64(anyPkts) / float64(totalPkts)
	}
	if respTotal > 0 {
		res.ForwarderResponseShare = float64(respForwarder) / float64(respTotal)
	}
	res.Upstreams = len(upstreamResponses)

	counts := make([]int, 0, len(upstreamResponses))
	for up, c := range upstreamResponses {
		counts = append(counts, c)
		if n := len(upstreamForwarders[up]); n > res.TopUpstreamForwarders {
			res.TopUpstreamForwarders = n
		}
	}
	slices.SortFunc(counts, func(a, b int) int { return b - a })
	cum := 0
	res.UpstreamCurve = make([]float64, len(counts))
	for i, c := range counts {
		cum += c
		if respForwarder > 0 {
			res.UpstreamCurve[i] = float64(cum) / float64(respForwarder)
		}
	}
	return res
}

// CoverageAt returns the forwarder-response share removed by educating
// the top k upstreams.
func (m *MitigationImpact) CoverageAt(k int) float64 {
	if len(m.UpstreamCurve) == 0 {
		return 0
	}
	if k <= 0 {
		return 0
	}
	if k > len(m.UpstreamCurve) {
		k = len(m.UpstreamCurve)
	}
	return m.UpstreamCurve[k-1]
}
