package analysis

import (
	"net/netip"
	"testing"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

func det(client byte, day, packets int) *core.Detection {
	return &core.Detection{
		Victim:  [4]byte{11, 0, 0, client},
		Day:     simclock.MeasurementStart.Day() + day,
		Packets: packets,
		First:   simclock.MeasurementStart.Add(simclock.Days(day)),
		Last:    simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Hour),
	}
}

func hpAttack(client byte, day, requests int) *honeypot.Attack {
	start := simclock.MeasurementStart.Add(simclock.Days(day))
	return &honeypot.Attack{
		Victim:   netip.AddrFrom4([4]byte{11, 0, 0, client}),
		Start:    start,
		End:      start.Add(simclock.Hour),
		Requests: requests,
		Sensors:  []int{0, 1},
	}
}

func TestOverlapCounts(t *testing.T) {
	dets := []*core.Detection{det(1, 0, 100), det(2, 0, 50), det(3, 1, 80)}
	hps := []*honeypot.Attack{hpAttack(1, 0, 500), hpAttack(9, 0, 30)}
	ov := Overlap(dets, hps)
	if ov.IXPAttacks != 3 || ov.HoneypotAttacks != 2 {
		t.Fatalf("counts: %+v", ov)
	}
	if ov.Mutual != 1 {
		t.Fatalf("mutual = %d, want 1", ov.Mutual)
	}
	if ov.NewAtIXP != 2 {
		t.Errorf("new = %d, want 2", ov.NewAtIXP)
	}
	if ov.UniqueVictims != 3 {
		t.Errorf("victims = %d", ov.UniqueVictims)
	}
	if ov.MutualShareIXP < 0.3 || ov.MutualShareIXP > 0.34 {
		t.Errorf("IXP share = %v", ov.MutualShareIXP)
	}
	if ov.MutualShareHoneypot != 0.5 {
		t.Errorf("HP share = %v", ov.MutualShareHoneypot)
	}
}

func TestOverlapDeciles(t *testing.T) {
	// 10 IXP attacks with packets 10..100; the mutual one is the
	// largest -> decile 10.
	var dets []*core.Detection
	for i := 1; i <= 10; i++ {
		dets = append(dets, det(byte(i), 0, i*10))
	}
	hps := []*honeypot.Attack{hpAttack(10, 0, 500)}
	ov := Overlap(dets, hps)
	if ov.Mutual != 1 {
		t.Fatal("expected one mutual attack")
	}
	if ov.MeanDecileIXP != 10 {
		t.Errorf("IXP decile = %v, want 10", ov.MeanDecileIXP)
	}
}

func rec(victim byte, day int, name string, txids map[uint16]int, packets int) *core.AttackRecord {
	r := &core.AttackRecord{
		Victim:     [4]byte{11, 0, 0, victim},
		Day:        simclock.MeasurementStart.Day() + day,
		Packets:    packets,
		Names:      map[string]int{name: packets},
		TXIDs:      txids,
		Amplifiers: map[[4]byte]int{{203, 0, 113, victim}: packets},
		ReqIngress: map[uint32]int{},
		ReqTTLs:    map[uint8]int{},
		First:      simclock.MeasurementStart.Add(simclock.Days(day)),
		Last:       simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Hour),
	}
	return r
}

func evenIDs(n, count int) map[uint16]int {
	out := make(map[uint16]int)
	for i := 0; i < n; i++ {
		out[uint16(2*i)] = count / n
	}
	return out
}

func oddIDs(n, count int) map[uint16]int {
	out := make(map[uint16]int)
	for i := 0; i < n; i++ {
		out[uint16(2*i+1)] = count / n
	}
	return out
}

func TestProfileTXIDs(t *testing.T) {
	r := rec(1, 0, "doj.gov.", evenIDs(2, 100), 100)
	p := ProfileTXIDs(r, 0.9)
	if !p.Pure || p.DominantParity != 0 {
		t.Errorf("profile = %+v", p)
	}
	r = rec(1, 0, "doj.gov.", map[uint16]int{2: 50, 3: 50}, 100)
	p = ProfileTXIDs(r, 0.9)
	if p.Pure {
		t.Error("50/50 parity should not be pure")
	}
	if !p.TwoPhase {
		t.Error("50/50 should look two-phase")
	}
}

func TestMatchEntity(t *testing.T) {
	f := DefaultFingerprint()
	// Entity-like: .gov name, 2 even TXIDs across 100 packets.
	if !f.MatchEntity(rec(1, 0, "doj.gov.", evenIDs(2, 100), 100)) {
		t.Error("entity record rejected")
	}
	// Wrong TLD.
	if f.MatchEntity(rec(1, 0, "nic.cz.", evenIDs(2, 100), 100)) {
		t.Error("non-gov record accepted")
	}
	// High TXID entropy: 100 ids across 100 packets.
	if f.MatchEntity(rec(1, 0, "doj.gov.", evenIDs(80, 100), 100)) {
		t.Error("high-entropy record accepted")
	}
	// Too small.
	if f.MatchEntity(rec(1, 0, "doj.gov.", evenIDs(1, 5), 5)) {
		t.Error("tiny record accepted")
	}
}

func TestAnalyzeEntityRhythmAndSeries(t *testing.T) {
	var records []*core.AttackRecord
	// 20 days of entity attacks alternating parity every 48h; name
	// switches after day 9.
	day0 := simclock.MeasurementStart.Day()
	for d := 0; d < 20; d++ {
		name := "bja.gov."
		if d >= 10 {
			name = "cybercrime.gov."
		}
		parity := (day0 + d) / 2 % 2
		ids := evenIDs(3, 90)
		if parity == 1 {
			ids = oddIDs(3, 90)
		}
		for v := byte(0); v < 3; v++ {
			records = append(records, rec(v+byte(20*d), d, name, ids, 90))
		}
	}
	res := AnalyzeEntity(records, len(records), DefaultFingerprint())
	if len(res.Records) != len(records) {
		t.Fatalf("matched %d of %d", len(res.Records), len(records))
	}
	if res.PureParityShare != 1 {
		t.Errorf("pure share = %v", res.PureParityShare)
	}
	if res.ParityRhythmScore != 1 {
		t.Errorf("rhythm score = %v, want 1 (clean alternation)", res.ParityRhythmScore)
	}
	if len(res.Transitions) != 1 {
		t.Errorf("transitions = %d, want 1", len(res.Transitions))
	}
	if len(res.VictimSeries) != 20 {
		t.Errorf("victim days = %d", len(res.VictimSeries))
	}
	if res.VictimSeries[0].IPs != 3 {
		t.Errorf("victims day0 = %d", res.VictimSeries[0].IPs)
	}
	// Fig. 12: all amplifiers new on day 0, none new when repeated.
	if res.AmplifierSeries[0].New == 0 {
		t.Error("day-0 amplifiers should be new")
	}
}

func TestAnalyzeRelocations(t *testing.T) {
	var records []*core.AttackRecord
	for d := 0; d < 30; d++ {
		r := rec(byte(d), d, "doj.gov.", evenIDs(2, 100), 100)
		switch {
		case d < 10: // phase 0: responses only
			r.Requests = 0
			r.Responses = 100
		case d < 20: // phase 1: ingress AS 500
			r.Requests = 85
			r.Responses = 15
			r.ReqIngress = map[uint32]int{500: 85}
		default: // phase 2: ingress AS 600
			r.Requests = 85
			r.Responses = 15
			r.ReqIngress = map[uint32]int{600: 85}
		}
		records = append(records, r)
	}
	res := AnalyzeEntity(records, len(records), DefaultFingerprint())
	if len(res.Relocations) != 2 {
		t.Fatalf("relocations = %d, want 2: %+v", len(res.Relocations), res.Relocations)
	}
	if res.Relocations[0].ToAS != 500 || res.Relocations[1].ToAS != 600 {
		t.Errorf("relocation targets: %+v", res.Relocations)
	}
	if res.RequestShareByPhase[0] > 0.1 {
		t.Errorf("phase-0 request share = %v", res.RequestShareByPhase[0])
	}
	if res.RequestShareByPhase[1] < 0.7 {
		t.Errorf("phase-1 request share = %v", res.RequestShareByPhase[1])
	}
}

func TestTable2(t *testing.T) {
	records := []*core.AttackRecord{
		rec(1, 0, "doj.gov.", evenIDs(2, 100), 100),
		rec(2, 0, "doj.gov.", evenIDs(2, 50), 50),
		rec(3, 0, "nic.cz.", evenIDs(2, 30), 30),
	}
	records[0].Sizes = []int{6000}
	cands := map[string]bool{"doj.gov.": true, "nic.cz.": true}
	rows := Table2(records, cands)
	if len(rows) < 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].TLD != "gov" || rows[0].Attacks != 2 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[0].MaxSize != 6000 {
		t.Errorf("max size = %d", rows[0].MaxSize)
	}
	var total float64
	for _, r := range rows {
		total += r.PacketShare
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("packet shares sum to %v", total)
	}
}

func TestClusterAmplifierSets(t *testing.T) {
	mkRec := func(victim byte, day int, amps ...byte) *core.AttackRecord {
		r := rec(victim, day, "nask.pl.", evenIDs(2, 50), 50)
		r.Amplifiers = map[[4]byte]int{}
		for _, a := range amps {
			r.Amplifiers[[4]byte{203, 0, 113, a}] = 5
		}
		return r
	}
	var records []*core.AttackRecord
	// Static cluster: 8 attacks with identical 6-amp set.
	for i := 0; i < 8; i++ {
		records = append(records, mkRec(byte(i), i, 1, 2, 3, 4, 5, 6))
	}
	// Noise: disjoint sets.
	for i := 0; i < 20; i++ {
		records = append(records, mkRec(byte(100+i), i, byte(50+3*i), byte(51+3*i), byte(52+3*i), byte(150+3*i), byte(151+3*i)))
	}
	res := ClusterAmplifierSets(records, 0.35, 4, 0)
	if res.Clusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.Clusters)
	}
	if res.MostStatic.Attacks != 8 {
		t.Errorf("static cluster size = %d", res.MostStatic.Attacks)
	}
	if res.MostStatic.MeanIntraDistance != 0 {
		t.Errorf("static cluster distance = %v, want 0", res.MostStatic.MeanIntraDistance)
	}
	if res.NoiseShare < 0.6 {
		t.Errorf("noise share = %v", res.NoiseShare)
	}
	if res.FixedListShare <= 0 || res.FixedListShare > 0.4 {
		t.Errorf("fixed share = %v", res.FixedListShare)
	}
}

func TestClusterEmbedding(t *testing.T) {
	var records []*core.AttackRecord
	for i := 0; i < 12; i++ {
		r := rec(byte(i), i, "nask.pl.", evenIDs(2, 50), 50)
		r.Amplifiers = map[[4]byte]int{
			{203, 0, 113, byte(i)}: 5, {203, 0, 113, byte(i + 1)}: 5,
		}
		records = append(records, r)
	}
	res := ClusterAmplifierSets(records, 0.35, 4, 10)
	if len(res.Embedding) == 0 || len(res.Embedding) > 10 {
		t.Errorf("embedding size = %d", len(res.Embedding))
	}
	if len(res.EmbeddingLabels) != len(res.Embedding) {
		t.Error("labels misaligned")
	}
}

func TestComputeTrafficShares(t *testing.T) {
	ag := core.NewAggregator(nil, []string{"bad.test."})
	// Construct via public Observe path is exercised in core tests;
	// here we drive the share math directly through detections.
	// Simulate one attacked client and background by hand.
	// (Uses the core test helper pattern inline.)
	mk := func(client byte, name string, size int, any bool) {
		s := mkIxpSample(client, name, size, any)
		s.Name = ag.Table.Intern(name)
		ag.Observe(s)
	}
	for i := 0; i < 10; i++ {
		mk(1, "bad.test.", 4000, true)
	}
	for i := 0; i < 90; i++ {
		mk(2, "ok.test.", 100, false)
	}
	dets := core.Detect(ag, map[string]bool{"bad.test.": true}, core.DefaultThresholds())
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	sh := ComputeTrafficShares(ag, dets)
	if sh.AttackPacketShare != 0.1 {
		t.Errorf("packet share = %v, want 0.1", sh.AttackPacketShare)
	}
	want := 40000.0 / 49000.0
	if sh.AttackByteShare < want-0.01 || sh.AttackByteShare > want+0.01 {
		t.Errorf("byte share = %v, want %.2f", sh.AttackByteShare, want)
	}
	if sh.ANYAttackPacketShare != 1 {
		t.Errorf("ANY attack share = %v, want 1 (all ANY is attack here)", sh.ANYAttackPacketShare)
	}
}

func TestAnalyzeNXNS(t *testing.T) {
	nx := AnalyzeNXNS([]int{0, 0, 1, 1, 1, 2, 5, 11, 40, 1})
	if nx.AtMost1Share != 0.6 {
		t.Errorf("<=1 share = %v", nx.AtMost1Share)
	}
	if nx.AtMost10Share != 0.8 {
		t.Errorf("<=10 share = %v", nx.AtMost10Share)
	}
	empty := AnalyzeNXNS(nil)
	if empty.AtMost1Share != 0 {
		t.Error("empty input")
	}
}

func TestSnoopStudyAnchorsAndMisused(t *testing.T) {
	db := zonedb.New(zonedb.Config{ProceduralNames: 5_000})
	cfg := DefaultSnoopConfig()
	cfg.Resolvers = 300
	cfg.Forwarders = 300
	st := RunSnoopStudy(cfg, db, db.AttackedNames(), simclock.MeasurementEnd)
	if st.ResolversFound != 300 || st.ForwardersExcluded != 300 {
		t.Fatalf("phase 1: %d resolvers, %d forwarders", st.ResolversFound, st.ForwardersExcluded)
	}
	var anchorMax, misusedMin, popMax float64
	misusedMin = 1
	for _, r := range st.Results {
		switch {
		case r.Anchor:
			if r.HitRate() > anchorMax {
				anchorMax = r.HitRate()
			}
		case r.Misused && r.AlexaRank == 0:
			if r.HitRate() < misusedMin {
				misusedMin = r.HitRate()
			}
		case !r.Misused && r.AlexaRank > 100_000:
			if r.HitRate() > popMax {
				popMax = r.HitRate()
			}
		}
	}
	if anchorMax > 0.10 {
		t.Errorf("anchor hit rate = %v, want near error rate", anchorMax)
	}
	if misusedMin < 0.5 {
		t.Errorf("misused hit rate = %v, want high despite no rank", misusedMin)
	}
	if misusedMin <= popMax {
		t.Errorf("misused (%v) should out-hit low-popularity benign names (%v)", misusedMin, popMax)
	}
}

func TestAttackDurations(t *testing.T) {
	var records []*core.AttackRecord
	for i := 1; i <= 4; i++ {
		r := rec(byte(i), 0, "doj.gov.", evenIDs(2, 50), 50)
		r.Last = r.First.Add(simclock.Duration(i) * 10 * simclock.Minute)
		records = append(records, r)
	}
	q := AttackDurations(records)
	if q.Q25 >= q.Q50 || q.Q50 > q.Q75 {
		t.Errorf("quartiles not ordered: %+v", q)
	}
}

// mkIxpSample builds a minimal sample for share tests.
func mkIxpSample(client byte, name string, size int, any bool) *ixp.DNSSample {
	s := &ixp.DNSSample{
		Time:       simclock.MeasurementStart.Add(simclock.Hour),
		QName:      name,
		MsgSize:    size,
		IsResponse: true,
		Dst:        [4]byte{11, 0, 0, client},
		Src:        [4]byte{203, 0, 113, 1},
		QType:      dnswire.TypeA,
	}
	if any {
		s.QType = dnswire.TypeANY
	}
	return s
}
