package analysis

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

// SnoopConfig tunes the modified cache-snooping study of Appendix C.
type SnoopConfig struct {
	// Resolvers is the number of open recursive resolvers probed after
	// phase-1 classification.
	Resolvers int
	// Forwarders are additional endpoints that phase 1 must identify
	// and exclude (they inherit upstream TTLs and would bias results).
	Forwarders int
	// ErrorRate models mutual resolver caches and DNS optimizers that
	// produce residual cache hits even for fresh names.
	ErrorRate float64
	Seed      int64
}

// DefaultSnoopConfig returns study defaults.
func DefaultSnoopConfig() SnoopConfig {
	return SnoopConfig{Resolvers: 1500, Forwarders: 1500, ErrorRate: 0.015, Seed: 9}
}

// SnoopName describes one probed name.
type SnoopName struct {
	Name string
	// AlexaRank is the popularity rank (0 = unranked).
	AlexaRank int
	// Misused marks names from the detector's list.
	Misused bool
	// Anchor marks control names (fresh name, post-expiry scanner
	// name).
	Anchor bool
	// OrganicPopularity is the probability the name sits in a given
	// resolver cache due to organic use.
	OrganicPopularity float64
	// AttackDriven is the extra cache presence caused by ongoing abuse
	// through open resolvers.
	AttackDriven float64
}

// SnoopResult is one name's Fig. 17 bar.
type SnoopResult struct {
	SnoopName
	Responses int
	CacheHits int
	CacheMiss int
}

// HitRate returns hits / responses.
func (r *SnoopResult) HitRate() float64 {
	if r.Responses == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Responses)
}

// SnoopStudy runs both phases of Appendix C against simulated endpoints.
type SnoopStudy struct {
	Cfg SnoopConfig
	// ResolversFound / ForwardersExcluded are phase-1 outcomes.
	ResolversFound     int
	ForwardersExcluded int
	// Results hold one entry per probed name, sorted by rank.
	Results []*SnoopResult
}

// organicPopularity maps an Alexa-style rank to cache presence.
func organicPopularity(rank int) float64 {
	if rank <= 0 {
		return 0.01
	}
	// log10 falloff: rank 7 -> ~0.93, rank 200k -> ~0.30.
	p := 1.05 - 0.14*math.Log10(float64(rank))
	if p < 0.02 {
		p = 0.02
	}
	if p > 0.98 {
		p = 0.98
	}
	return p
}

// RunSnoopStudy executes phase 1 (resolver identification) and phase 2
// (ANY snooping) and returns per-name hit/miss counts.
func RunSnoopStudy(cfg SnoopConfig, db *zonedb.DB, misused []string, now simclock.Time) *SnoopStudy {
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &SnoopStudy{Cfg: cfg}

	// --- Phase 1: identify resolvers, exclude forwarders --------------
	// Our authoritative test server returns an A record carrying the
	// address of the resolver that contacted it; endpoints whose
	// response A record differs from the probed address are forwarders.
	var endpoints []*resolver.Resolver
	for i := 0; i < cfg.Resolvers; i++ {
		addr := netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)})
		endpoints = append(endpoints, resolver.New(addr, resolver.Recursive, db))
	}
	for i := 0; i < cfg.Forwarders; i++ {
		addr := netip.AddrFrom4([4]byte{100, 80, byte(i >> 8), byte(i)})
		fw := resolver.New(addr, resolver.Forwarder, db)
		// Forwarders share upstreams.
		up := endpoints[i%cfg.Resolvers]
		fw.Upstream = up
		endpoints = append(endpoints, fw)
	}
	var probed []*resolver.Resolver
	for _, ep := range endpoints {
		// The "which address asked my authoritative" test: a forwarder
		// relays through its upstream, whose address differs.
		contactAddr := ep.Addr
		if ep.Kind == resolver.Forwarder && ep.Upstream != nil {
			contactAddr = ep.Upstream.Addr
		}
		if contactAddr == ep.Addr {
			probed = append(probed, ep)
			st.ResolversFound++
		} else {
			st.ForwardersExcluded++
		}
	}

	// --- Cache population ----------------------------------------------
	names := snoopNameSet(db, misused)
	for _, ep := range probed {
		for _, n := range names {
			p := n.OrganicPopularity + n.AttackDriven
			if rng.Float64() < p {
				// Warmed at a random moment within the TTL window
				// before the scan, so remaining TTL < default.
				z, ok := db.Zone(n.Name)
				ttl := uint32(3600)
				if ok {
					ttl = z.TTL
				}
				back := simclock.Duration(1 + rng.Int63n(int64(ttl)-1))
				ep.Warm(n.Name, dnswire.TypeANY, now.Add(-back))
			}
		}
	}

	// --- Phase 2: snoop -------------------------------------------------
	for _, n := range names {
		res := &SnoopResult{SnoopName: n}
		for _, ep := range probed {
			r := ep.Handle(n.Name, dnswire.TypeANY, now)
			if !r.Answered || r.RCode != dnswire.RCodeNoError {
				continue // sanitization: drop REFUSED etc.
			}
			res.Responses++
			hit := r.CacheHit && r.TTL < r.DefaultTTL
			// Residual error: mutual caches / TTL manipulators.
			if !hit && rng.Float64() < cfg.ErrorRate {
				hit = true
			}
			if hit {
				res.CacheHits++
			} else {
				res.CacheMiss++
			}
		}
		st.Results = append(st.Results, res)
	}
	sort.Slice(st.Results, func(i, j int) bool {
		ri, rj := st.Results[i].AlexaRank, st.Results[j].AlexaRank
		if ri == 0 {
			ri = 1 << 30
		}
		if rj == 0 {
			rj = 1 << 30
		}
		if ri != rj {
			return ri < rj
		}
		return st.Results[i].Name < st.Results[j].Name
	})
	return st
}

// snoopNameSet assembles the probed names: popular references, misused
// names, and the two anchors.
func snoopNameSet(db *zonedb.DB, misused []string) []SnoopName {
	var out []SnoopName
	seen := make(map[string]bool)
	add := func(n SnoopName) {
		cn := dnswire.CanonicalName(n.Name)
		if seen[cn] {
			return
		}
		seen[cn] = true
		n.Name = cn
		out = append(out, n)
	}
	misusedSet := make(map[string]bool)
	for _, m := range misused {
		misusedSet[dnswire.CanonicalName(m)] = true
	}
	for _, name := range db.ExplicitNames() {
		z, _ := db.Zone(name)
		if z.PopularityRank == 0 && !misusedSet[name] {
			continue
		}
		n := SnoopName{
			Name:              name,
			AlexaRank:         z.PopularityRank,
			Misused:           misusedSet[name],
			OrganicPopularity: organicPopularity(z.PopularityRank),
		}
		if n.Misused {
			// Ongoing abuse keeps the name hot in open-resolver caches
			// regardless of web popularity — the Fig. 17 signal.
			n.AttackDriven = 0.80
			if n.OrganicPopularity+n.AttackDriven > 0.95 {
				n.AttackDriven = 0.95 - n.OrganicPopularity
			}
		}
		add(n)
	}
	// Anchor 1: a name created right before the scan — must miss.
	add(SnoopName{Name: "uncached-anchor.example.", Anchor: true, OrganicPopularity: 0})
	// Anchor 2: a scanner name probed after its documented daily TTL
	// expiry — must miss too.
	add(SnoopName{Name: "scan.shadowserver.org.", AlexaRank: 117_000, Anchor: true, OrganicPopularity: 0})
	return out
}
