package scenario

import (
	"bufio"
	"os"
	"slices"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/pcap"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// WireRecords materializes the built scenario's complete frame-level
// stream: the background generator's wire twin plus the scenario
// overlay, sorted stably by capture time (a collector's log is
// arrival-ordered; generation order is per-flow). Re-ingesting these
// frames (source.IngestSFlowLog / IngestPCAP) reproduces the Built's
// canonical batches as a row multiset, so detection scores are
// identical — the generator's Day/WireDay equivalence plus the pure
// per-day overlay guarantee it.
func (bt *Built) WireRecords() []ecosystem.TaggedRecord {
	var recs []ecosystem.TaggedRecord
	bt.Env.P.Window().EachDay(func(day simclock.Time) {
		recs = append(recs, bt.Env.Gen.WireDay(day).IXP...)
		recs = append(recs, bt.plan.DayFrames(day)...)
	})
	sortByTime(recs)
	return recs
}

// ExportWire writes the scenario's wire stream to an sFlow v5 datagram
// log and/or a classic pcap file (empty path = skip that format). It
// returns the number of sampled frames written.
func (bt *Built) ExportWire(sflowPath, pcapPath string) (int, error) {
	return WriteWire(bt.WireRecords(), sflowPath, pcapPath)
}

// CampaignWireRecords materializes the first `days` days of a full
// campaign (attack events included) as the time-sorted frame stream —
// the attackgen export path, shared here so the CLI stays a thin
// wrapper.
func CampaignWireRecords(c *ecosystem.Campaign, trafficSeed int64, days int) []ecosystem.TaggedRecord {
	gen := ecosystem.NewGenerator(c, trafficSeed)
	var recs []ecosystem.TaggedRecord
	day := simclock.MeasurementStart
	for d := 0; d < days; d++ {
		recs = append(recs, gen.WireDay(day).IXP...)
		day = day.Add(simclock.Day)
	}
	sortByTime(recs)
	return recs
}

func sortByTime(recs []ecosystem.TaggedRecord) {
	slices.SortStableFunc(recs, func(a, b ecosystem.TaggedRecord) int {
		return int(a.Rec.Time.Sub(b.Rec.Time))
	})
}

// WriteWire writes an already time-ordered record stream to the
// requested capture formats and returns the frame count. The sFlow log
// carries ingress-port annotations; classic pcap cannot (re-ingesting a
// pcap loses spoofed-ingress attribution, which does not affect
// detection scores).
func WriteWire(recs []ecosystem.TaggedRecord, sflowPath, pcapPath string) (int, error) {
	var lw *sflow.LogWriter
	var pw *pcap.Writer
	var closers []func() error
	finish := func() error {
		// Flush writers innermost-last: closers were appended
		// file-then-buffer, so walk them in reverse.
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil {
				return err
			}
		}
		return nil
	}
	if sflowPath != "" {
		f, err := os.Create(sflowPath)
		if err != nil {
			return 0, err
		}
		closers = append(closers, f.Close)
		bw := bufio.NewWriter(f)
		closers = append(closers, bw.Flush)
		if lw, err = sflow.NewLogWriter(bw, [4]byte{192, 0, 2, 1}, sflow.DefaultRate); err != nil {
			finish()
			return 0, err
		}
	}
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			finish()
			return 0, err
		}
		closers = append(closers, f.Close)
		bw := bufio.NewWriter(f)
		closers = append(closers, bw.Flush)
		if pw, err = pcap.NewWriter(bw, sflow.DefaultSnaplen); err != nil {
			finish()
			return 0, err
		}
	}
	for _, tr := range recs {
		if lw != nil {
			if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
				finish()
				return 0, err
			}
		}
		if pw != nil {
			if err := pw.WritePacket(tr.Rec.Time, 0, tr.Rec.FrameLen, tr.Rec.Frame); err != nil {
				finish()
				return 0, err
			}
		}
	}
	if lw != nil {
		if err := lw.Flush(); err != nil {
			finish()
			return 0, err
		}
	}
	return len(recs), finish()
}
