package scenario

import (
	"testing"

	"dnsamp/internal/simclock"
)

// tinyParams keeps env construction fast: two attack days, small
// background, small namespace.
func tinyParams() Params {
	return Params{Days: 3, Scale: 0.02, ProceduralNames: 20_000, CampaignSeed: 1, TrafficSeed: 11}
}

// TestCatalogShape pins the acceptance floor: at least six distinct
// scenarios, at least four attacks and two benign confounders, unique
// stable names, all resolvable via ByName.
func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog has %d scenarios, want >= 6", len(cat))
	}
	attack, benign := 0, 0
	seen := map[string]bool{}
	for _, sc := range cat {
		if sc.Name == "" || sc.Description == "" || sc.Prepare == nil {
			t.Errorf("scenario %q underspecified", sc.Name)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		switch sc.Kind {
		case Attack:
			attack++
		case Benign:
			benign++
		}
		got, err := ByName(sc.Name)
		if err != nil || got.Name != sc.Name || got.Kind != sc.Kind {
			t.Errorf("ByName(%q) = %v, %v", sc.Name, got, err)
		}
	}
	if attack < 4 || benign < 2 {
		t.Errorf("catalog mix = %d attack / %d benign, want >= 4 / >= 2", attack, benign)
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("ByName on unknown name did not error")
	}
}

// TestBuildGroundTruth checks every built scenario's labels: attack
// scenarios have non-empty truth entirely inside the window, benign
// scenarios have none, and TruthSet mirrors Truth.
func TestBuildGroundTruth(t *testing.T) {
	env := NewEnv(tinyParams())
	w := env.P.Window()
	for _, sc := range Catalog() {
		bt := env.Build(sc, 7)
		if sc.Kind == Benign {
			if len(bt.Truth) != 0 || len(bt.TruthSet) != 0 {
				t.Errorf("%s: benign scenario has ground truth", sc.Name)
			}
			continue
		}
		if len(bt.Truth) == 0 {
			t.Errorf("%s: attack scenario without ground truth", sc.Name)
			continue
		}
		n := 0
		for _, gt := range bt.Truth {
			if len(gt.Days) == 0 {
				t.Errorf("%s: truth victim without days", sc.Name)
			}
			for _, d := range gt.Days {
				n++
				day := simclock.Time(d) * simclock.Time(simclock.Day)
				if !w.Contains(day) {
					t.Errorf("%s: truth day %d outside window", sc.Name, d)
				}
			}
		}
		if n != len(bt.TruthSet) {
			t.Errorf("%s: TruthSet has %d keys, truth lists %d victim-days", sc.Name, len(bt.TruthSet), n)
		}
		if len(bt.Candidates) == 0 {
			t.Errorf("%s: no candidate names", sc.Name)
		}
	}
}

// TestBuildDeterministic builds the same scenario twice in independent
// envs with identical params and compares the composed batches column
// by column: a scenario must be a pure function of (params, seed).
func TestBuildDeterministic(t *testing.T) {
	p := tinyParams()
	sc, err := ByName("pulse-wave")
	if err != nil {
		t.Fatal(err)
	}
	b1 := NewEnv(p).Build(sc, 7)
	b2 := NewEnv(p).Build(sc, 7)
	days1, days2 := b1.Source.Days(), b2.Source.Days()
	if len(days1) != len(days2) || len(days1) != p.Days {
		t.Fatalf("day counts differ: %d vs %d (want %d)", len(days1), len(days2), p.Days)
	}
	for _, day := range days1 {
		x, y := b1.Source.Day(day), b2.Source.Day(day)
		if x.N != y.N {
			t.Fatalf("day %s: N %d vs %d", day.Date(), x.N, y.N)
		}
		for i := 0; i < x.N; i++ {
			if x.Time[i] != y.Time[i] || x.Src[i] != y.Src[i] || x.Dst[i] != y.Dst[i] ||
				x.TXID[i] != y.TXID[i] || x.MsgSize[i] != y.MsgSize[i] ||
				b1.Source.Table().Name(x.Name[i]) != b2.Source.Table().Name(y.Name[i]) {
				t.Fatalf("day %s row %d differs", day.Date(), i)
			}
		}
	}
}

// TestOverlayRidesBackground checks composition: a built scenario day
// contains strictly more records than the bare background day, and the
// batch's frame accounting stays consistent.
func TestOverlayRidesBackground(t *testing.T) {
	env := NewEnv(tinyParams())
	sc, _ := ByName("resolver-churn")
	bt := env.Build(sc, 7)
	attackDay := env.P.Window().Start.Add(simclock.Day)
	bg := env.Gen.Day(attackDay).Batch
	got := bt.Source.Day(attackDay)
	if got.N <= bg.N {
		t.Errorf("overlay day N=%d not larger than background N=%d", got.N, bg.N)
	}
	if got.N != got.Frames-got.NonUDP-got.NonDNS-got.Malformed {
		t.Errorf("frame accounting broken: N=%d Frames=%d NonUDP=%d NonDNS=%d Malformed=%d",
			got.N, got.Frames, got.NonUDP, got.NonDNS, got.Malformed)
	}
	if len(got.Time) != got.N || len(got.Name) != got.N || len(got.Ingress) != got.N {
		t.Errorf("column lengths inconsistent with N=%d", got.N)
	}
}

// TestSkipAttacksBackgroundOnly pins the generator flag the scenario
// substrate relies on: with SkipAttacks the campaign's attack events
// vanish from both the batch and the honeypot flows, while background
// traffic remains.
func TestSkipAttacksBackgroundOnly(t *testing.T) {
	env := NewEnv(tinyParams())
	day := env.P.Window().Start.Add(simclock.Day)
	dt := env.Gen.Day(day)
	if len(dt.Sensors) != 0 {
		t.Errorf("SkipAttacks day has %d sensor flows, want 0", len(dt.Sensors))
	}
	if dt.Batch == nil || dt.Batch.N == 0 {
		t.Fatal("SkipAttacks suppressed the background traffic too")
	}
	wt := env.Gen.WireDay(day)
	if len(wt.Sensors) != 0 {
		t.Errorf("SkipAttacks wire day has %d sensor flows, want 0", len(wt.Sensors))
	}
	if len(wt.IXP) == 0 {
		t.Error("SkipAttacks wire day has no background frames")
	}
}
