// Package scenario is the adversarial traffic catalog: parameterized
// attack and benign scenarios that stress the paper's detection method
// (candidate-domain consensus + share/packet thresholds) far beyond the
// single campaign shape the reproduction was validated against.
//
// Each scenario is a pure function of (Params, seed): it overlays
// deterministic sampled wire traffic — pulse-wave amplification,
// carpet-bombing, random-subdomain floods, slow drips under the
// detection thresholds, resolver churn, and benign confounders — on the
// organic background of an ecosystem.Generator (campaign attack events
// suppressed via Generator.SkipAttacks, so the scenario owns the
// complete ground truth). The result is a Built: a source.Replay the
// staged pipeline.Runner streams like any other source, labeled
// ground-truth (victim, day) pairs, and the candidate name list the
// detector should use.
//
// Scenario traffic is materialized twice-consistently, like the
// generator's Day/WireDay twins: the canonical batch form sanitizes the
// scenario's wire frames through ixp.CapturePoint.Process, and
// ExportWire writes those exact frames as an sFlow v5 datagram log
// and/or classic pcap, so export → re-ingest (source.IngestSFlowLog /
// IngestPCAP) reproduces identical detection scores — the round-trip
// property internal/eval's tests pin.
package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
	"dnsamp/internal/topology"
)

// Params are the catalog-wide knobs. Every scenario draws its window,
// background volume, and namespace from these; per-scenario shape
// parameters live in the Scenario definitions.
type Params struct {
	// Days is the scenario window length, anchored at
	// simclock.MeasurementStart (must stay inside the main period so
	// background traffic is generated).
	Days int
	// Scale is the background campaign scale (controls organic samples
	// per day and the client population).
	Scale float64
	// ProceduralNames bounds the synthetic namespace (tests use small
	// values; the CLI default is larger).
	ProceduralNames int
	// CampaignSeed / TrafficSeed seed the background campaign and its
	// traffic synthesis.
	CampaignSeed, TrafficSeed int64
}

// DefaultParams returns the catalog defaults used by evalrun and the
// golden tests: a 8-day window over a small-scale background.
func DefaultParams() Params {
	return Params{
		Days:            8,
		Scale:           0.05,
		ProceduralNames: 50_000,
		CampaignSeed:    1,
		TrafficSeed:     11,
	}
}

// Window returns the scenario window: Days days from the measurement
// start.
func (p Params) Window() simclock.Window {
	return simclock.Window{
		Start: simclock.MeasurementStart,
		End:   simclock.MeasurementStart.Add(simclock.Days(p.Days)),
	}
}

// Env is the shared substrate scenarios build on: one benign-background
// campaign and generator reused by every Build call. Construction is
// the expensive part (topology, zone DB, name interning), so callers
// build one Env and run the whole catalog against it.
//
// Builds intern scenario-specific names (e.g. random-subdomain labels)
// into the generator's table, so Env is NOT safe for concurrent Build
// calls; run builds sequentially. A finished Built is read-only and
// safe for concurrent streaming.
type Env struct {
	P   Params
	C   *ecosystem.Campaign
	Gen *ecosystem.Generator
}

// NewEnv plans the shared background substrate for the given params.
func NewEnv(p Params) *Env {
	if p.Days <= 0 {
		p.Days = DefaultParams().Days
	}
	if p.Scale <= 0 {
		p.Scale = DefaultParams().Scale
	}
	cfg := ecosystem.DefaultCampaignConfig(p.Scale)
	cfg.Seed = p.CampaignSeed
	if p.ProceduralNames > 0 {
		cfg.Zones.ProceduralNames = p.ProceduralNames
	}
	c := ecosystem.NewCampaign(cfg)
	gen := ecosystem.NewGenerator(c, p.TrafficSeed)
	gen.SkipAttacks = true
	return &Env{P: p, C: c, Gen: gen}
}

// Kind classifies a scenario's ground truth.
type Kind int

const (
	// Attack scenarios label real attack (victim, day) pairs; a miss is
	// a false negative.
	Attack Kind = iota
	// Benign scenarios have an empty truth set; any detection is a
	// false positive.
	Benign
)

func (k Kind) String() string {
	if k == Benign {
		return "benign"
	}
	return "attack"
}

// GroundTruth labels one attacked victim and the days it is under
// attack within the scenario window.
type GroundTruth struct {
	Victim [4]byte
	// Days are the day keys (simclock.Time.Day values) under attack,
	// ascending.
	Days []int
}

// Scenario is one catalog entry: a named, parameterized traffic shape.
// Prepare derives the per-seed plan (victims, amplifier sets, schedule)
// without materializing traffic; the plan's DayFrames is a pure
// function of the day, so days may be materialized in any order.
type Scenario struct {
	// Name is the catalog key (stable, kebab-case).
	Name string
	// Kind separates attack scenarios from benign confounders.
	Kind Kind
	// Description is the one-line operator-facing summary.
	Description string

	// Prepare plans the scenario over the shared env at the given seed.
	Prepare func(env *Env, seed int64) *Plan
}

// Plan is a prepared scenario: ground truth plus the per-day overlay
// frame synthesizer.
type Plan struct {
	// Truth holds the labeled attacks (empty for benign scenarios).
	Truth []GroundTruth
	// DayFrames emits the scenario's sampled overlay frames for one
	// day (already-sampled records, like the generator's wire path
	// after flow thinning). It must be a pure function of day.
	DayFrames func(day simclock.Time) []ecosystem.TaggedRecord
}

// Built is a fully materialized scenario, ready for the pipeline.
type Built struct {
	Scenario *Scenario
	Env      *Env
	Seed     int64

	// Source streams the composed traffic (background + overlay), one
	// batch per window day.
	Source *source.Replay
	// Truth is the labeled ground truth; TruthSet is its (victim, day)
	// key form used for scoring.
	Truth    []GroundTruth
	TruthSet map[core.ClientDay]bool
	// Candidates is the misused-name list the detector should be run
	// with (the zone DB's misused candidates — all of them tracked by
	// the pipeline's aggregator, so threshold shares resolve exactly).
	Candidates []string

	plan *Plan
}

// Build materializes one scenario: per window day, the background
// generator's columnar batch plus the scenario overlay frames sanitized
// through the capture-point path (exactly what re-ingesting the
// exported wire capture would produce).
func (env *Env) Build(sc *Scenario, seed int64) *Built {
	plan := sc.Prepare(env, seed)
	rep := source.NewReplay(env.Gen.Table())
	env.P.Window().EachDay(func(day simclock.Time) {
		// The generator hands back a freshly materialized batch each
		// call — nothing else references it, so appending the overlay
		// in place is safe.
		b := env.Gen.Day(day).Batch
		appendFrames(b, env.Gen.Table(), plan.DayFrames(day))
		rep.AddDay(day, b, nil)
	})
	bt := &Built{
		Scenario:   sc,
		Env:        env,
		Seed:       seed,
		Source:     rep,
		Truth:      plan.Truth,
		TruthSet:   make(map[core.ClientDay]bool),
		Candidates: slices.Clone(env.C.DB.MisusedCandidates()),
		plan:       plan,
	}
	for _, gt := range plan.Truth {
		for _, d := range gt.Days {
			bt.TruthSet[core.ClientDay{Client: gt.Victim, Day: d}] = true
		}
	}
	return bt
}

// appendFrames sanitizes sampled wire frames into the batch through the
// same capture-point decoding AddFrames uses, preserving ingress tags
// and accounting drops in the batch counters.
func appendFrames(b *ixp.SampleBatch, tab *names.Table, recs []ecosystem.TaggedRecord) {
	cp := ixp.NewCapturePoint(nil, tab)
	b.Grow(len(recs))
	for _, tr := range recs {
		s, ok := cp.Process(tr.Rec)
		if !ok {
			continue
		}
		b.AppendSample(&s, tr.Ingress)
	}
	b.Frames += cp.Stats.Frames
	b.NonUDP += cp.Stats.NonUDP
	b.NonDNS += cp.Stats.NonDNS
	b.Malformed += cp.Stats.Malformed
}

// scenarioSeed decorrelates per-scenario streams: same mixing shape as
// the generator's daySeed, salted with the scenario name.
func scenarioSeed(seed int64, name string) int64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return int64(h)
}

// daySeed derives the per-day stream of a prepared scenario.
func daySeed(scSeed int64, day simclock.Time) int64 {
	z := uint64(scSeed)*0x9e3779b97f4a7c15 + uint64(day.Day())*0xbf58476d1ce4e5b9
	z ^= z >> 31
	z *= 0x94d049bb133111eb
	z ^= z >> 29
	return int64(z)
}

// emitter synthesizes sampled overlay frames for one scenario day. It
// mirrors the generator's wire path: full frames with announced UDP
// lengths (amplified sizes survive snaplen truncation via the length
// field), truncated by the sampler to capture records.
type emitter struct {
	rng     *rand.Rand
	sampler *sflow.Sampler
	enc     dnswire.Encoder
	out     []ecosystem.TaggedRecord
}

func newEmitter(seed int64) *emitter {
	return &emitter{
		rng:     rand.New(rand.NewSource(seed)),
		sampler: sflow.NewSampler(seed ^ 0x5ce),
	}
}

// response emits one server->client DNS response record whose UDP
// length announces size bytes (the payload materializes only the
// encoded message prefix, like a truncated capture of a large answer).
func (e *emitter) response(t simclock.Time, src netip.Addr, srcASN uint32, dst netip.Addr, dstASN uint32, name string, qtype dnswire.Type, rcode dnswire.RCode, size int, ttl uint8) {
	txid := uint16(e.rng.Intn(1 << 16))
	q := dnswire.NewQuery(txid, name, qtype, 4096)
	resp := dnswire.NewResponse(q)
	resp.Header.RCode = rcode
	payload := e.enc.Encode(resp)
	if size < len(payload) {
		size = len(payload)
	}
	eth := netmodel.Ethernet{Src: macForAS(srcASN), Dst: macForAS(dstASN)}
	ip := netmodel.IPv4{TTL: ttl, ID: uint16(e.rng.Intn(1 << 16)), Src: src, Dst: dst}
	udp := netmodel.UDP{
		SrcPort: 53,
		DstPort: uint16(1024 + e.rng.Intn(60000)),
		Length:  uint16(netmodel.UDPHeaderLen + size),
	}
	frame := netmodel.EncodeUDPPacket(eth, ip, udp, payload)
	e.out = append(e.out, ecosystem.TaggedRecord{Rec: e.sampler.Take(t, frame)})
}

// query emits one client->server DNS query record; ingress carries the
// member-AS port attribution for spoofed sources (0 = derive from the
// source address).
func (e *emitter) query(t simclock.Time, src netip.Addr, srcASN uint32, dst netip.Addr, dstASN uint32, name string, qtype dnswire.Type, ttl uint8, ingress uint32) {
	txid := uint16(e.rng.Intn(1 << 16))
	q := dnswire.NewQuery(txid, name, qtype, 4096)
	payload := e.enc.Encode(q)
	eth := netmodel.Ethernet{Src: macForAS(srcASN), Dst: macForAS(dstASN)}
	ip := netmodel.IPv4{TTL: ttl, ID: uint16(e.rng.Intn(1 << 16)), Src: src, Dst: dst}
	udp := netmodel.UDP{SrcPort: uint16(1024 + e.rng.Intn(60000)), DstPort: 53}
	frame := netmodel.EncodeUDPPacket(eth, ip, udp, payload)
	e.out = append(e.out, ecosystem.TaggedRecord{Rec: e.sampler.Take(t, frame), Ingress: ingress})
}

// macForAS mirrors the generator's stable router-MAC derivation.
func macForAS(asn uint32) netmodel.MAC {
	return netmodel.MAC{0x02, 0x42, byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)}
}

// pickVictims draws n distinct victim addresses (with their origin
// ASNs) from the env topology's access networks.
func pickVictims(env *Env, rng *rand.Rand, n int) ([]netip.Addr, []uint32) {
	asns := env.C.Topo.ASesOfType(topology.ASAccess)
	addrs := make([]netip.Addr, 0, n)
	origins := make([]uint32, 0, n)
	seen := make(map[netip.Addr]bool, n)
	for len(addrs) < n {
		asn := asns[rng.Intn(len(asns))]
		a, ok := env.C.Topo.RandomAddrIn(rng, asn)
		if !ok || seen[a] {
			continue
		}
		seen[a] = true
		addrs = append(addrs, a)
		origins = append(origins, asn)
	}
	return addrs, origins
}

// pickAmplifiers samples k alive amplifier endpoints at t.
func pickAmplifiers(env *Env, rng *rand.Rand, t simclock.Time, k int) []*ecosystem.Amplifier {
	ids := env.C.Pool.SampleAlive(rng, t, k, nil)
	out := make([]*ecosystem.Amplifier, len(ids))
	for i, id := range ids {
		out[i] = env.C.Pool.Get(id)
	}
	return out
}

// truthDays enumerates the day keys of the window days [from, to)
// (window-relative indices).
func truthDays(env *Env, from, to int) []int {
	var out []int
	start := env.P.Window().Start
	for d := from; d < to; d++ {
		out = append(out, start.Add(simclock.Days(d)).Day())
	}
	return out
}

// ByName resolves a catalog scenario; the error lists valid names.
func ByName(name string) (*Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	var known []string
	for _, sc := range Catalog() {
		known = append(known, sc.Name)
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, known)
}
