package scenario

import (
	"fmt"
	"math/rand"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
)

// Catalog returns the scenario catalog in its stable report order:
// attack scenarios first, then the benign confounders. All counts below
// are *sampled* packets per day — the unit the detector's
// Thresholds.MinPackets operates on (one sampled record stands for
// ~16k wire packets at the default sFlow rate).
func Catalog() []*Scenario {
	return []*Scenario{
		PulseWave(),
		CarpetBomb(),
		RandomSubdomain(),
		SlowDrip(),
		ResolverChurn(),
		FlashCrowd(),
		ScannerBurst(),
	}
}

// attackSize is the announced UDP payload size of an amplified
// response; large enough that any reasonable amplification-factor
// heuristic counts it, small enough to stay within every EDNS cap.
const attackSize = 2900

// PulseWave is the on/off burst amplification attack: a quiet ramp day
// below MinPackets, then full-rate days delivered as short pulses with
// silent gaps (the attacker's duty cycling). Detection at default
// thresholds starts one day after the attack does — time-to-detect 1 —
// because the per-day aggregation integrates over the duty cycle.
func PulseWave() *Scenario {
	sc := &Scenario{
		Name: "pulse-wave",
		Kind: Attack,
		Description: "single victim; ramp day under MinPackets, then " +
			"48 pkts/day in on/off bursts",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		victims, origins := pickVictims(env, rng, 1)
		victim, victimAS := victims[0], origins[0]
		name := candidateName(env, rng)
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 24)
		days := env.P.Days
		return &Plan{
			Truth: []GroundTruth{{Victim: victim.As4(), Days: truthDays(env, 1, days)}},
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx < 1 || idx >= days {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				pkts := 48
				if idx == 1 {
					pkts = 6 // ramp: below DefaultThresholds.MinPackets
				}
				// Eight pulses of equal share, each a few minutes
				// wide, with silent gaps in between.
				for i := 0; i < pkts; i++ {
					pulse := i % 8
					off := simclock.Duration(pulse)*simclock.Hours(3) +
						simclock.Duration(e.rng.Int63n(int64(simclock.Minutes(5))))
					amp := amps[e.rng.Intn(len(amps))]
					e.response(day.Add(off), amp.Addr, amp.ASN, victim, victimAS,
						name, dnswire.TypeANY, dnswire.RCodeNoError, attackSize,
						amp.ObservedTTL())
				}
				return e.out
			},
		}
	}
	return sc
}

// CarpetBomb sprays a whole set of victims with a low per-victim rate:
// every victim-day sits below DefaultThresholds.MinPackets, so the
// attack is invisible at defaults and only appears when MinPackets is
// lowered — the recall/threshold trade-off the eval grid exposes.
func CarpetBomb() *Scenario {
	sc := &Scenario{
		Name: "carpet-bomb",
		Kind: Attack,
		Description: "36 victims x 6 pkts/day each, all under the " +
			"default MinPackets",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		const nVictims = 36
		victims, origins := pickVictims(env, rng, nVictims)
		name := candidateName(env, rng)
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 24)
		days := env.P.Days
		truth := make([]GroundTruth, nVictims)
		for i, v := range victims {
			truth[i] = GroundTruth{Victim: v.As4(), Days: truthDays(env, 1, days)}
		}
		return &Plan{
			Truth: truth,
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx < 1 || idx >= days {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				for vi, v := range victims {
					for i := 0; i < 6; i++ {
						amp := amps[e.rng.Intn(len(amps))]
						e.response(dayTime(e.rng, day), amp.Addr, amp.ASN,
							v, origins[vi], name, dnswire.TypeANY,
							dnswire.RCodeNoError, attackSize, amp.ObservedTTL())
					}
				}
				return e.out
			},
		}
	}
	return sc
}

// RandomSubdomain is the water-torture / NXDOMAIN flood: spoofed
// queries for unique random labels under a victim zone, answered
// NXDOMAIN. None of the random names are tracked candidates, so the
// candidate-share detector scores zero recall at every grid point —
// the catalog's documented blind spot (the paper's method targets
// amplification, not resolver exhaustion).
func RandomSubdomain() *Scenario {
	sc := &Scenario{
		Name: "random-subdomain",
		Kind: Attack,
		Description: "NXDOMAIN flood with unique random labels; " +
			"invisible to candidate-share detection",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		victims, origins := pickVictims(env, rng, 1)
		victim, victimAS := victims[0], origins[0]
		zone := candidateName(env, rng)
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 16)
		days := env.P.Days
		return &Plan{
			Truth: []GroundTruth{{Victim: victim.As4(), Days: truthDays(env, 1, days)}},
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx < 1 || idx >= days {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				for i := 0; i < 60; i++ {
					amp := amps[e.rng.Intn(len(amps))]
					label := fmt.Sprintf("r%08x.%s", e.rng.Uint32(), zone)
					t := dayTime(e.rng, day)
					// Spoofed query src=victim, then the resolver's
					// NXDOMAIN back at the victim.
					e.query(t, victim, victimAS, amp.Addr, amp.ASN,
						label, dnswire.TypeA, 244, 0)
					e.response(t.Add(simclock.Second), amp.Addr, amp.ASN,
						victim, victimAS, label, dnswire.TypeA,
						dnswire.RCodeNXDomain, 0, amp.ObservedTTL())
				}
				return e.out
			},
		}
	}
	return sc
}

// SlowDrip holds a victim at exactly MinPackets-1 candidate responses
// per day with a pure candidate share — tuned just under
// DefaultThresholds, so it is missed at defaults and found the moment
// MinPackets drops.
func SlowDrip() *Scenario {
	sc := &Scenario{
		Name: "slow-drip",
		Kind: Attack,
		Description: "9 pkts/day at share 1.0 — one packet under the " +
			"default MinPackets, every day",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		victims, origins := pickVictims(env, rng, 1)
		victim, victimAS := victims[0], origins[0]
		name := candidateName(env, rng)
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 12)
		days := env.P.Days
		return &Plan{
			Truth: []GroundTruth{{Victim: victim.As4(), Days: truthDays(env, 0, days)}},
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx < 0 || idx >= days {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				for i := 0; i < 9; i++ {
					amp := amps[e.rng.Intn(len(amps))]
					e.response(dayTime(e.rng, day), amp.Addr, amp.ASN,
						victim, victimAS, name, dnswire.TypeANY,
						dnswire.RCodeNoError, attackSize, amp.ObservedTTL())
				}
				return e.out
			},
		}
	}
	return sc
}

// ResolverChurn rotates the reflector set and the spoofed ingress every
// day (booter-style infrastructure churn): each day a fresh amplifier
// sample fires 30 responses, and the spoofed queries arrive through a
// different member port. Per-day aggregation makes churn irrelevant —
// detected at defaults every attack day.
func ResolverChurn() *Scenario {
	sc := &Scenario{
		Name: "resolver-churn",
		Kind: Attack,
		Description: "30 pkts/day with the amplifier set and spoofed " +
			"ingress rotating daily",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		victims, origins := pickVictims(env, rng, 1)
		victim, victimAS := victims[0], origins[0]
		name := candidateName(env, rng)
		days := env.P.Days
		return &Plan{
			Truth: []GroundTruth{{Victim: victim.As4(), Days: truthDays(env, 1, days)}},
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx < 1 || idx >= days {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				// Fresh reflector sample every day: the churn.
				amps := pickAmplifiers(env, e.rng, day, 10)
				ingress := amps[e.rng.Intn(len(amps))].ASN
				for i := 0; i < 30; i++ {
					amp := amps[e.rng.Intn(len(amps))]
					t := dayTime(e.rng, day)
					if i%3 == 0 {
						// Spoofed query src=victim through the day's
						// ingress port; counts toward the victim's
						// candidate share too (request attribution).
						e.query(t, victim, victimAS, amp.Addr, amp.ASN,
							name, dnswire.TypeANY, 241, ingress)
					}
					e.response(t.Add(simclock.Second), amp.Addr, amp.ASN,
						victim, victimAS, name, dnswire.TypeANY,
						dnswire.RCodeNoError, attackSize, amp.ObservedTTL())
				}
				return e.out
			},
		}
	}
	return sc
}

// FlashCrowd is a benign confounder: a legitimate popularity burst for
// a non-candidate name. Hundreds of clients suddenly receive response
// bursts — heavy client-days, but with zero candidate share, so a
// correct detector stays silent.
func FlashCrowd() *Scenario {
	sc := &Scenario{
		Name: "flash-crowd",
		Kind: Benign,
		Description: "popularity burst on a non-candidate name; " +
			"heavy clients, zero candidate share",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		const nClients = 80
		clients, origins := pickVictims(env, rng, nClients)
		name := env.C.DB.ProceduralName(rng.Intn(10_000))
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 16)
		days := env.P.Days
		return &Plan{
			Truth: nil,
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				// The crowd lasts two days mid-window.
				if idx != days/2 && idx != days/2+1 {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				for ci, cl := range clients {
					for i := 0; i < 15; i++ {
						srv := amps[e.rng.Intn(len(amps))]
						e.response(dayTime(e.rng, day), srv.Addr, srv.ASN,
							cl, origins[ci], name, dnswire.TypeA,
							dnswire.RCodeNoError, 220, srv.ObservedTTL())
					}
				}
				return e.out
			},
		}
	}
	return sc
}

// ScannerBurst is the adversarial benign confounder: a measurement
// scanner ANY-queries every misused candidate name in one day and
// receives the full large-RRset answers. Its client-day has a pure
// candidate share above MinPackets — a false positive at default
// thresholds, and the reason precision belongs in the eval table.
func ScannerBurst() *Scenario {
	sc := &Scenario{
		Name: "scanner-burst",
		Kind: Benign,
		Description: "one scanner ANY-queries all candidates in a day; " +
			"false positive at default thresholds",
	}
	sc.Prepare = func(env *Env, seed int64) *Plan {
		s := scenarioSeed(seed, sc.Name)
		rng := rand.New(rand.NewSource(s))
		scanners, origins := pickVictims(env, rng, 1)
		scanner, scannerAS := scanners[0], origins[0]
		amps := pickAmplifiers(env, rng, env.P.Window().Start, 8)
		names := env.C.DB.MisusedCandidates()
		days := env.P.Days
		return &Plan{
			Truth: nil,
			DayFrames: func(day simclock.Time) []ecosystem.TaggedRecord {
				idx := day.DayIndex(env.P.Window().Start)
				if idx != days/2 {
					return nil
				}
				e := newEmitter(daySeed(s, day))
				for _, name := range names {
					srv := amps[e.rng.Intn(len(amps))]
					t := dayTime(e.rng, day)
					e.query(t, scanner, scannerAS, srv.Addr, srv.ASN,
						name, dnswire.TypeANY, 52, 0)
					e.response(t.Add(simclock.Second), srv.Addr, srv.ASN,
						scanner, scannerAS, name, dnswire.TypeANY,
						dnswire.RCodeNoError, attackSize, srv.ObservedTTL())
				}
				return e.out
			},
		}
	}
	return sc
}

// candidateName draws one tracked misused name.
func candidateName(env *Env, rng *rand.Rand) string {
	cands := env.C.DB.MisusedCandidates()
	return cands[rng.Intn(len(cands))]
}

// dayTime draws a uniform instant within day.
func dayTime(rng *rand.Rand, day simclock.Time) simclock.Time {
	return day.Add(simclock.Duration(rng.Int63n(int64(simclock.Day))))
}
