package netmodel

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleFrame(payload []byte, udpLen uint16) []byte {
	eth := Ethernet{
		Dst: MAC{0x02, 0, 0, 0, 0, 1},
		Src: MAC{0x02, 0, 0, 0, 0, 2},
	}
	ip := IPv4{
		TTL: 64,
		ID:  0x1234,
		Src: netip.MustParseAddr("192.0.2.1"),
		Dst: netip.MustParseAddr("198.51.100.7"),
	}
	udp := UDP{SrcPort: 53, DstPort: 40000, Length: udpLen}
	return EncodeUDPPacket(eth, ip, udp, payload)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello dns world")
	frame := sampleFrame(payload, 0)
	p, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q, want %q", p.Payload, payload)
	}
	if p.Truncated {
		t.Error("untruncated frame reported truncated")
	}
	if p.IP.Src.String() != "192.0.2.1" || p.IP.Dst.String() != "198.51.100.7" {
		t.Errorf("addresses wrong: %v -> %v", p.IP.Src, p.IP.Dst)
	}
	if p.UDP.SrcPort != 53 || p.UDP.DstPort != 40000 {
		t.Errorf("ports wrong: %d -> %d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.DNSPayloadSize() != len(payload) {
		t.Errorf("DNSPayloadSize = %d, want %d", p.DNSPayloadSize(), len(payload))
	}
}

func TestTruncationPreservesUDPLength(t *testing.T) {
	// A 3000-byte response truncated at 128 bytes: the UDP length field
	// must still report the full datagram size (paper §3.1).
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	frame := sampleFrame(payload, 0)
	trunc := Truncate(frame, 128)
	if len(trunc) != 128 {
		t.Fatalf("truncated length = %d", len(trunc))
	}
	p, err := DecodeFrame(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Truncated {
		t.Error("expected Truncated flag")
	}
	if p.DNSPayloadSize() != 3000 {
		t.Errorf("recovered size = %d, want 3000", p.DNSPayloadSize())
	}
	avail := 128 - EthernetHeaderLen - IPv4HeaderLen - UDPHeaderLen
	if len(p.Payload) != avail {
		t.Errorf("available payload = %d, want %d", len(p.Payload), avail)
	}
}

func TestSynthesizedUDPLength(t *testing.T) {
	// The generator can claim a large datagram while materializing only
	// a prefix — the decoder must honour the UDP length field.
	prefix := make([]byte, 90)
	frame := sampleFrame(prefix, UDPHeaderLen+4096)
	p, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.DNSPayloadSize() != 4096 {
		t.Errorf("size = %d, want 4096", p.DNSPayloadSize())
	}
	if !p.Truncated {
		t.Error("expected truncated")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Error("nil frame should fail")
	}
	if _, err := DecodeFrame(make([]byte, 10)); err == nil {
		t.Error("short frame should fail")
	}
	// Non-IPv4 ethertype.
	frame := sampleFrame([]byte("x"), 0)
	frame[12], frame[13] = 0x86, 0xDD
	if _, err := DecodeFrame(frame); err == nil {
		t.Error("IPv6 ethertype should fail")
	}
	// Non-UDP protocol.
	frame = sampleFrame([]byte("x"), 0)
	frame[EthernetHeaderLen+9] = ProtoTCP
	if _, err := DecodeFrame(frame); err == nil {
		t.Error("TCP should be rejected")
	}
	// Bad IP version.
	frame = sampleFrame([]byte("x"), 0)
	frame[EthernetHeaderLen] = 0x60
	if _, err := DecodeFrame(frame); err == nil {
		t.Error("IPv6 version nibble should fail")
	}
}

func TestFragmentSkipped(t *testing.T) {
	frame := sampleFrame([]byte("payload"), 0)
	// Set a non-zero fragment offset.
	frame[EthernetHeaderLen+6] = 0x00
	frame[EthernetHeaderLen+7] = 0x10
	if _, err := DecodeFrame(frame); err == nil {
		t.Error("non-first fragment should be skipped")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: checksum of a buffer containing its
	// own checksum is 0.
	ip := IPv4{
		TTL: 64, Protocol: ProtoUDP, TotalLen: 40, ID: 7,
		Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("10.0.0.2"),
	}
	hdr := ip.AppendTo(nil)
	if got := checksum(hdr); got != 0 {
		t.Errorf("checksum over header incl. checksum = %#x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers pad with a zero byte.
	a := checksum([]byte{0x01, 0x02, 0x03})
	b := checksum([]byte{0x01, 0x02, 0x03, 0x00})
	if a != b {
		t.Errorf("odd-length checksum mismatch: %#x vs %#x", a, b)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String = %q", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{7, 8, 9, 10, 11, 12}, EtherType: EtherTypeIPv4}
	buf := e.AppendTo(nil)
	var d Ethernet
	rest, err := d.Decode(append(buf, 0xAA))
	if err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Errorf("decoded %+v, want %+v", d, e)
	}
	if len(rest) != 1 || rest[0] != 0xAA {
		t.Errorf("rest = %v", rest)
	}
}

func TestIPv4ClipsTrailingBytes(t *testing.T) {
	payload := []byte("abc")
	frame := sampleFrame(payload, 0)
	// Add trailing garbage (ethernet padding).
	frame = append(frame, 0xFF, 0xFF, 0xFF)
	p, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload with padding = %q, want %q", p.Payload, payload)
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(1200)
		payload := make([]byte, n)
		rng.Read(payload)
		var src, dst [4]byte
		r.Read(src[:])
		r.Read(dst[:])
		eth := Ethernet{}
		ip := IPv4{
			TTL: uint8(1 + r.Intn(255)), ID: uint16(r.Intn(65536)),
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst),
		}
		udp := UDP{SrcPort: uint16(r.Intn(65536)), DstPort: uint16(r.Intn(65536))}
		frame := EncodeUDPPacket(eth, ip, udp, payload)
		p, err := DecodeFrame(frame)
		if err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload) &&
			p.IP.Src == ip.Src && p.IP.Dst == ip.Dst &&
			p.UDP.SrcPort == udp.SrcPort && p.UDP.DstPort == udp.DstPort &&
			p.IP.TTL == ip.TTL && !p.Truncated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTruncateNoop(t *testing.T) {
	b := []byte{1, 2, 3}
	if got := Truncate(b, 10); len(got) != 3 {
		t.Error("Truncate should not extend")
	}
	if got := Truncate(b, 2); len(got) != 2 {
		t.Error("Truncate should clip")
	}
}
