// Package netmodel implements the wire formats the IXP capture pipeline
// operates on: Ethernet II, IPv4 and UDP, with real header encoding,
// decoding and checksumming.
//
// The design follows the layered style of packet libraries such as
// gopacket: each layer type can decode itself from bytes and serialize
// itself in front of a payload. Unlike gopacket we only implement the
// layers the paper's detection method needs, and we keep everything
// allocation-light because the attack generator produces millions of
// sampled frames per campaign.
package netmodel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("netmodel: packet truncated")
	ErrBadVersion  = errors.New("netmodel: unsupported IP version")
	ErrBadChecksum = errors.New("netmodel: header checksum mismatch")
	ErrBadLength   = errors.New("netmodel: inconsistent length field")
)

// EtherType values used by the simulation.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// EthernetHeaderLen is the length of an Ethernet II header.
const EthernetHeaderLen = 14

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// MAC is a 6-byte hardware address.
type MAC [6]byte

// String renders the MAC in the canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// Decode parses an Ethernet header and returns the payload slice.
func (e *Ethernet) Decode(b []byte) ([]byte, error) {
	if len(b) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return b[14:], nil
}

// AppendTo appends the serialized header to dst and returns the extended
// slice.
func (e *Ethernet) AppendTo(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, e.EtherType)
}

// IPv4 is an IPv4 header. Options are not modelled (IHL is always 5): the
// traffic the paper analyzes is plain DNS-over-UDP.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
}

// IPv4 flag bits.
const (
	IPv4DontFragment = 0b010
	IPv4MoreFrags    = 0b001
)

// Decode parses an IPv4 header from b and returns the payload slice. The
// payload is clipped to TotalLen when b carries trailing bytes, and is
// whatever remains when the frame was truncated below TotalLen (the
// 128-byte IXP truncation case).
func (ip *IPv4) Decode(b []byte) ([]byte, error) {
	if len(b) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	vihl := b[0]
	if vihl>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return nil, ErrBadLength
	}
	if len(b) < ihl {
		return nil, ErrTruncated
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	var src, dst [4]byte
	copy(src[:], b[12:16])
	copy(dst[:], b[16:20])
	ip.Src = netip.AddrFrom4(src)
	ip.Dst = netip.AddrFrom4(dst)
	if int(ip.TotalLen) < ihl {
		return nil, ErrBadLength
	}
	payload := b[ihl:]
	if want := int(ip.TotalLen) - ihl; len(payload) > want {
		payload = payload[:want]
	}
	return payload, nil
}

// AppendTo appends the serialized header to dst, computing the header
// checksum. TotalLen must already be set by the caller (EncodeUDPPacket
// does this).
func (ip *IPv4) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0x45, ip.TOS)
	dst = binary.BigEndian.AppendUint16(dst, ip.TotalLen)
	dst = binary.BigEndian.AppendUint16(dst, ip.ID)
	frag := uint16(ip.Flags)<<13 | ip.FragOff&0x1fff
	dst = binary.BigEndian.AppendUint16(dst, frag)
	dst = append(dst, ip.TTL, ip.Protocol, 0, 0) // checksum zeroed
	src4 := ip.Src.As4()
	dst4 := ip.Dst.As4()
	dst = append(dst, src4[:]...)
	dst = append(dst, dst4[:]...)
	sum := checksum(dst[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(dst[start+10:start+12], sum)
	ip.Checksum = sum
	return dst
}

// VerifyChecksum recomputes the header checksum over b (which must start
// at the IPv4 header) and compares with the stored value.
func (ip *IPv4) VerifyChecksum(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTruncated
	}
	if checksum(b[:IPv4HeaderLen]) != 0 && checksumWithZeroedField(b[:IPv4HeaderLen], 10) != ip.Checksum {
		return ErrBadChecksum
	}
	return nil
}

// UDP is a UDP header. Length covers header plus payload, which is what
// lets the detector recover the true DNS response size from a frame that
// was truncated at 128 bytes (§3.1 of the paper).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Decode parses a UDP header from b and returns the available payload.
// The payload may be shorter than Length-8 when the frame was truncated.
func (u *UDP) Decode(b []byte) ([]byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	if u.Length < UDPHeaderLen {
		return nil, ErrBadLength
	}
	payload := b[8:]
	if want := int(u.Length) - UDPHeaderLen; len(payload) > want {
		payload = payload[:want]
	}
	return payload, nil
}

// AppendTo appends the serialized header to dst. Length must be set.
// The checksum is left zero (legal for IPv4 UDP) unless already set.
func (u *UDP) AppendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, u.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, u.Length)
	return binary.BigEndian.AppendUint16(dst, u.Checksum)
}

// checksum computes the RFC 1071 Internet checksum of b.
func checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// checksumWithZeroedField computes the checksum of b with the 16-bit field
// at off treated as zero.
func checksumWithZeroedField(b []byte, off int) uint16 {
	tmp := make([]byte, len(b))
	copy(tmp, b)
	tmp[off], tmp[off+1] = 0, 0
	return checksum(tmp)
}

// EncodeUDPPacket builds a complete Ethernet/IPv4/UDP frame around
// payload. udpLen is the value written into the UDP length field; when it
// exceeds len(payload)+8 the frame describes a datagram larger than what
// is materialized — exactly the situation after IXP truncation, where the
// generator only materializes the bytes a 128-byte snaplen would keep.
func EncodeUDPPacket(eth Ethernet, ip IPv4, udp UDP, payload []byte) []byte {
	if udp.Length == 0 {
		udp.Length = uint16(UDPHeaderLen + len(payload))
	}
	ip.Protocol = ProtoUDP
	ip.TotalLen = uint16(IPv4HeaderLen) + udp.Length
	eth.EtherType = EtherTypeIPv4

	buf := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	buf = eth.AppendTo(buf)
	buf = ip.AppendTo(buf)
	buf = udp.AppendTo(buf)
	buf = append(buf, payload...)
	return buf
}

// Truncate clips a frame to snaplen bytes, the IXP capture behaviour.
// The result aliases frame: callers that retain it past a reuse of the
// underlying buffer must copy it (sflow.Sampler does at its take/ingest
// boundary).
func Truncate(frame []byte, snaplen int) []byte {
	if len(frame) <= snaplen {
		return frame
	}
	return frame[:snaplen]
}

// DecodedPacket is the result of decoding a (possibly truncated) frame.
type DecodedPacket struct {
	Eth        Ethernet
	IP         IPv4
	UDP        UDP
	Payload    []byte // available UDP payload bytes (may be truncated)
	FullUDPLen int    // datagram size per the UDP length field
	Truncated  bool   // payload shorter than the UDP length field promises
}

// DecodeFrame parses an Ethernet/IPv4/UDP frame. It tolerates truncation
// below the IP TotalLen (reporting Truncated) but rejects frames too short
// to carry the three headers, non-IPv4 frames, and non-UDP packets.
func DecodeFrame(frame []byte) (*DecodedPacket, error) {
	var p DecodedPacket
	rest, err := p.Eth.Decode(frame)
	if err != nil {
		return nil, err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		return nil, ErrBadVersion
	}
	rest, err = p.IP.Decode(rest)
	if err != nil {
		return nil, err
	}
	if p.IP.Protocol != ProtoUDP {
		return nil, fmt.Errorf("netmodel: not UDP (proto %d)", p.IP.Protocol)
	}
	if p.IP.FragOff != 0 {
		// Non-first fragments carry no UDP header; the capture pipeline
		// skips them (this also avoids double counting fragmented
		// answers, §3.1).
		return nil, ErrTruncated
	}
	p.Payload, err = p.UDP.Decode(rest)
	if err != nil {
		return nil, err
	}
	p.FullUDPLen = int(p.UDP.Length)
	p.Truncated = len(p.Payload) < p.FullUDPLen-UDPHeaderLen
	return &p, nil
}

// DNSPayloadSize returns the size in bytes of the DNS message carried by
// the datagram as recovered from the UDP length field, regardless of
// truncation.
func (p *DecodedPacket) DNSPayloadSize() int {
	if p.FullUDPLen < UDPHeaderLen {
		return 0
	}
	return p.FullUDPLen - UDPHeaderLen
}
