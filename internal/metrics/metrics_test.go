package metrics

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Register("svc_datagrams_total", "Datagrams received per source.", Counter, func(emit Emit) {
		emit(41, "agent", "192.0.2.1", "subagent", "0")
		emit(1.5, "agent", "192.0.2.2", "subagent", "1")
	})
	r.Register("svc_window_days", "Sliding window width.", Gauge, func(emit Emit) {
		emit(7)
	})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := `# HELP svc_datagrams_total Datagrams received per source.
# TYPE svc_datagrams_total counter
svc_datagrams_total{agent="192.0.2.1",subagent="0"} 41
svc_datagrams_total{agent="192.0.2.2",subagent="1"} 1.5
# HELP svc_window_days Sliding window width.
# TYPE svc_window_days gauge
svc_window_days 7
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestCollectAtScrape(t *testing.T) {
	n := 0.0
	r := NewRegistry()
	r.Register("live_value", "Reads current state at every render.", Gauge, func(emit Emit) {
		emit(n)
	})
	render := func() string {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return b.String()
	}
	if got := render(); !strings.Contains(got, "live_value 0\n") {
		t.Fatalf("first render missing zero sample:\n%s", got)
	}
	n = 3
	if got := render(); !strings.Contains(got, "live_value 3\n") {
		t.Fatalf("second render did not re-collect:\n%s", got)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.Register("esc", "help with \\ and\nnewline", Gauge, func(emit Emit) {
		emit(1, "k", "quote\" slash\\ nl\n")
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP esc help with \\ and\nnewline`,
		`esc{k="quote\" slash\\ nl\n"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Register("ok_name", "", Gauge, func(Emit) {})
	for _, tc := range []struct{ name, reason string }{
		{"ok_name", "duplicate"},
		{"9starts_with_digit", "bad first char"},
		{"has-dash", "bad char"},
		{"", "empty"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic (%s)", tc.name, tc.reason)
				}
			}()
			r.Register(tc.name, "", Gauge, func(Emit) {})
		}()
	}
}
