// Package metrics is a dependency-free Prometheus-text-format metric
// registry for the live service mode: the /metrics endpoint renders a
// Registry, scrapers consume it, and nothing here imports anything
// beyond the standard library.
//
// The design is collect-at-scrape: a metric family is registered once
// with a collector callback, and every render invokes the callbacks to
// emit the current samples. That keeps the instrumented code free of
// double bookkeeping — the service already maintains per-source and
// per-stage state under its own locks, and the collectors just read it
// — while still supporting dynamic label sets (collectors appear as
// traffic arrives; each scrape emits whatever exists right now).
//
// Output is deterministic: families render in registration order (the
// order the operator guide documents), samples within a family in the
// order the collector emits them, and values in Go's shortest-exact
// float formatting. The exposition format is the Prometheus text
// format, version 0.0.4:
//
//	# HELP name help text
//	# TYPE name counter|gauge
//	name{label="value",...} 1234
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Type is the metric family type in the exposition output.
type Type int

const (
	Counter Type = iota
	Gauge
)

// String returns the exposition-format type name.
func (t Type) String() string {
	if t == Counter {
		return "counter"
	}
	return "gauge"
}

// Emit publishes one sample of the family being collected. labels are
// alternating key, value pairs ("agent", "192.0.2.1", ...); an odd
// trailing key is ignored.
type Emit func(value float64, labels ...string)

// Collector produces the current samples of one family. It is invoked
// on every render, from the rendering goroutine; implementations must
// do their own locking around shared state.
type Collector func(emit Emit)

type family struct {
	name, help string
	typ        Type
	collect    Collector
}

// Registry is an ordered set of metric families. The zero value is not
// usable; construct with NewRegistry. Register and WriteText may be
// called concurrently.
type Registry struct {
	mu       sync.Mutex
	families []family
	byName   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

// Register adds a metric family rendered via the collector callback.
// Family names must be unique within the registry and match the
// Prometheus name grammar; violations panic (registration is wiring
// code, and a bad name should fail at startup, not at scrape time).
func (r *Registry) Register(name, help string, typ Type, collect Collector) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid family name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[name] {
		panic(fmt.Sprintf("metrics: duplicate family %q", name))
	}
	r.byName[name] = true
	r.families = append(r.families, family{name: name, help: help, typ: typ, collect: collect})
}

// WriteText renders every family in registration order in the
// Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(func(value float64, labels ...string) {
			b.WriteString(f.name)
			if len(labels) >= 2 {
				b.WriteByte('{')
				for i := 0; i+1 < len(labels); i += 2 {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(labels[i])
					b.WriteString(`="`)
					b.WriteString(escapeLabel(labels[i+1]))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
			b.WriteByte('\n')
		})
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// validName checks the Prometheus metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeHelp escapes backslashes and newlines (the HELP line escaping
// of the exposition format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, double quotes, and newlines (label
// value escaping).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
