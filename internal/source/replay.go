package source

import (
	"fmt"
	"slices"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// Replay serves pre-recorded traffic: day batches captured from another
// source (Record), batches handed in directly (AddDay), or raw sampled
// sflow frames sanitized at ingest time (AddFrames). It is the
// first non-synthetic workload: anything that can produce sampled
// frames — a pcap reader, an sFlow collector, a previous run's dump —
// feeds the detection pipeline through it.
//
// Populate a Replay fully before streaming from it: the Add methods are
// not safe concurrently with Day/DayFlows, but a populated Replay is
// read-only and safe for any number of concurrent readers.
type Replay struct {
	tab   *names.Table
	days  []simclock.Time
	byDay map[simclock.Time]*replayDay
}

type replayDay struct {
	batch   *ixp.SampleBatch
	sensors []ecosystem.SensorFlow
	// owned marks batches built by AddFrames: only those may be
	// appended to on repeated ingestion — AddDay batches are shared
	// with their producer (Record does not copy) and must stay
	// immutable.
	owned bool
}

// NewReplay creates an empty replay source interning names into tab
// (a fresh table when nil).
func NewReplay(tab *names.Table) *Replay {
	if tab == nil {
		tab = names.NewTable()
	}
	return &Replay{tab: tab, byDay: make(map[simclock.Time]*replayDay)}
}

// Record materializes every day of src into a Replay: a snapshot that
// can be streamed any number of times without regenerating (batches are
// shared with src, not copied).
func Record(src Source) *Replay {
	r := NewReplay(src.Table())
	for _, day := range src.Days() {
		b, flows := src.DayFlows(day)
		r.AddDay(day, b, flows)
	}
	return r
}

// AddDay stores one recorded day. The batch's table need not be the
// replay table: consumers remap through ixp.CapturePoint.ConsumeBatch.
// Adding the same day twice replaces it wholesale — batch, counters,
// and sensors (use AddFrames to accumulate into an existing day).
func (r *Replay) AddDay(day simclock.Time, batch *ixp.SampleBatch, sensors []ecosystem.SensorFlow) {
	day = day.StartOfDay()
	if _, ok := r.byDay[day]; !ok {
		r.days = append(r.days, day)
		slices.Sort(r.days)
	}
	r.byDay[day] = &replayDay{batch: batch, sensors: sensors}
}

// AddFrames sanitizes raw sampled frames into one day's batch: each
// frame runs through the capture-point decoding and well-formedness
// checks of §3.1 (drops accounted in the batch counters), survivors are
// appended in arrival order with their ingress-port tags preserved.
// AS annotation is not baked in — it happens at consumption time, so a
// recorded day can be replayed against any routing substrate.
//
// Ingesting the same day again accumulates: the new frames append to
// the existing batch and the sanitization counters and sensor flows
// add up, so a day arriving in several reads (chunked logs, tailing a
// live capture) loses nothing. The one rejected case is a day whose
// batch came in through AddDay: those batches are shared with their
// producer (Record does not copy), so appending would mutate state the
// replay does not own.
func (r *Replay) AddFrames(day simclock.Time, recs []ecosystem.TaggedRecord, sensors []ecosystem.SensorFlow) error {
	day = day.StartOfDay()
	rd, ok := r.byDay[day]
	if !ok {
		rd = &replayDay{batch: &ixp.SampleBatch{Table: r.tab}, owned: true}
		r.byDay[day] = rd
		r.days = append(r.days, day)
		slices.Sort(r.days)
	}
	if !rd.owned {
		return fmt.Errorf("source: day %s holds a batch recorded via AddDay (shared with its producer); cannot ingest frames into it", day.Date())
	}
	b := rd.batch
	cp := ixp.NewCapturePoint(nil, r.tab)
	b.Grow(len(recs))
	for _, tr := range recs {
		s, ok := cp.Process(tr.Rec)
		if !ok {
			continue
		}
		b.AppendSample(&s, tr.Ingress)
	}
	b.Frames += cp.Stats.Frames
	b.NonUDP += cp.Stats.NonUDP
	b.NonDNS += cp.Stats.NonDNS
	b.Malformed += cp.Stats.Malformed
	rd.sensors = append(rd.sensors, sensors...)
	return nil
}

// Table returns the replay's interning space.
func (r *Replay) Table() *names.Table { return r.tab }

// Days lists the recorded days in chronological order.
func (r *Replay) Days() []simclock.Time { return r.days }

// Day returns the recorded batch for day, nil when the day was never
// recorded.
func (r *Replay) Day(day simclock.Time) *ixp.SampleBatch {
	b, _ := r.DayFlows(day)
	return b
}

// DayFlows returns the recorded batch and sensor flows for day.
func (r *Replay) DayFlows(day simclock.Time) (*ixp.SampleBatch, []ecosystem.SensorFlow) {
	rd, ok := r.byDay[day.StartOfDay()]
	if !ok {
		return nil, nil
	}
	return rd.batch, rd.sensors
}

// compile-time interface checks for all three adapters.
var (
	_ Source = (*Synthetic)(nil)
	_ Source = (*Cached)(nil)
	_ Source = (*Replay)(nil)
)
