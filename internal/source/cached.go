package source

import (
	"container/list"
	"sync"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// Cached wraps a Source with a bounded day-batch cache so multi-pass
// consumers stop regenerating days: the pipeline's pass 2 revisits the
// days pass 1 already materialized, and with an unbounded cache its day
// generation disappears entirely.
//
// When bounded, the cache evicts the most recently touched resident day
// rather than the least recent: the dominant access pattern is repeated
// ascending scans (pass 1 then pass 2), where LRU degenerates to
// sequential flooding — every day is evicted long before the next pass
// revisits it, yielding zero hits at any capacity below the day count.
// Keeping the oldest resident days instead gives the next ascending
// scan roughly one reused day per slot of capacity.
//
// Batches are immutable, so a cache hit returns the very batch (and
// sensor-flow slice) the inner source produced — results are
// byte-identical with and without the cache at every concurrency level.
// Concurrent misses on distinct days materialize in parallel; concurrent
// requests for the same day share one materialization (the inner source
// is asked once per resident day).
type Cached struct {
	src Source
	// capacity bounds resident days; <= 0 means unbounded.
	capacity int

	mu      sync.Mutex
	entries map[simclock.Time]*list.Element
	order   *list.List // front = most recently touched; holds *cacheEntry

	// stats (guarded by mu).
	hits, misses, evictions int
}

// cacheEntry is one resident day. ready is closed once batch/sensors
// are filled; waiters block on it outside the cache lock so one slow
// materialization never serializes the others.
type cacheEntry struct {
	day     simclock.Time
	ready   chan struct{}
	batch   *ixp.SampleBatch
	sensors []ecosystem.SensorFlow
}

// NewCached wraps src with a cache holding at most capacity days
// (bounded mode retains the oldest resident days; see the type
// comment); capacity <= 0 means unbounded (every day generated at most
// once).
func NewCached(src Source, capacity int) *Cached {
	return &Cached{
		src:      src,
		capacity: capacity,
		entries:  make(map[simclock.Time]*list.Element),
		order:    list.New(),
	}
}

// Table forwards to the inner source.
func (c *Cached) Table() *names.Table { return c.src.Table() }

// Days forwards to the inner source.
func (c *Cached) Days() []simclock.Time { return c.src.Days() }

// Day returns the day's batch, serving repeats from the cache.
func (c *Cached) Day(day simclock.Time) *ixp.SampleBatch {
	b, _ := c.DayFlows(day)
	return b
}

// DayFlows returns the day's batch and sensor flows, serving repeats
// from the cache.
func (c *Cached) DayFlows(day simclock.Time) (*ixp.SampleBatch, []ecosystem.SensorFlow) {
	day = day.StartOfDay()
	c.mu.Lock()
	if el, ok := c.entries[day]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.batch, e.sensors
	}
	e := &cacheEntry{day: day, ready: make(chan struct{})}
	c.entries[day] = c.order.PushFront(e)
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	e.batch, e.sensors = c.src.DayFlows(day)
	close(e.ready)
	return e.batch, e.sensors
}

// evictLocked trims the cache to capacity by dropping the most recently
// touched ready entries (front of the recency order; see the type
// comment for why not LRU). Entries still being materialized are
// skipped — their waiters hold references — so the overshoot is bounded
// by the number of concurrent misses.
func (c *Cached) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for el := c.order.Front(); el != nil && c.order.Len() > c.capacity; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			c.order.Remove(el)
			delete(c.entries, e.day)
			c.evictions++
		default: // still materializing; keep
		}
		el = next
	}
}

// Stats reports cache effectiveness counters: hits, misses (= inner
// generations), and evictions.
func (c *Cached) Stats() (hits, misses, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
