package source_test

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/pcap"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// batchesEqual compares two replays' day batches column by column
// (tables are compared by content, not pointer).
func batchesEqual(t *testing.T, label string, a, b *source.Replay) {
	t.Helper()
	if !reflect.DeepEqual(a.Days(), b.Days()) {
		t.Fatalf("%s: day lists differ: %v vs %v", label, a.Days(), b.Days())
	}
	if !reflect.DeepEqual(a.Table(), b.Table()) {
		t.Fatalf("%s: interning tables differ", label)
	}
	for _, day := range a.Days() {
		ab, bb := a.Day(day), b.Day(day)
		av, bv := reflect.ValueOf(*ab), reflect.ValueOf(*bb)
		typ := av.Type()
		for f := 0; f < typ.NumField(); f++ {
			if typ.Field(f).Name == "Table" {
				continue
			}
			if !reflect.DeepEqual(av.Field(f).Interface(), bv.Field(f).Interface()) {
				t.Fatalf("%s: day %s column %s differs", label, day.Date(), typ.Field(f).Name)
			}
		}
	}
}

// TestIngestSFlowLogMatchesDirect is the ingestion acceptance test: a
// wire day encoded as an sFlow v5 datagram log and re-ingested through
// the log reader (which reuses one read buffer — the aliasing
// regression path) must yield sample-for-sample identical batches to
// AddFrames over the original in-memory frames.
func TestIngestSFlowLogMatchesDirect(t *testing.T) {
	c := tinyCampaign(t)
	gen := ecosystem.NewGenerator(c, 7)
	days := testWindow()

	direct := source.NewReplay(nil)
	var buf bytes.Buffer
	lw, err := sflow.NewLogWriter(&buf, [4]byte{192, 0, 2, 9}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, day := range source.DaysOf(days) {
		wd := gen.WireDay(day)
		if err := direct.AddFrames(day, wd.IXP, nil); err != nil {
			t.Fatalf("direct AddFrames: %v", err)
		}
		for _, tr := range wd.IXP {
			if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
				t.Fatalf("log Add: %v", err)
			}
			total++
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	ingested := source.NewReplay(nil)
	n, err := ingested.IngestSFlowLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("IngestSFlowLog: %v", err)
	}
	if n != total {
		t.Fatalf("ingested %d frames, wrote %d", n, total)
	}
	batchesEqual(t, "sflow-log", direct, ingested)
}

// TestIngestPCAPMatchesDirect: the same equivalence through the pcap
// path (no ingress metadata there, so the direct side drops it too).
func TestIngestPCAPMatchesDirect(t *testing.T) {
	c := tinyCampaign(t)
	gen := ecosystem.NewGenerator(c, 7)

	direct := source.NewReplay(nil)
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf, sflow.DefaultSnaplen)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, day := range source.DaysOf(testWindow()) {
		wd := gen.WireDay(day)
		recs := make([]ecosystem.TaggedRecord, len(wd.IXP))
		for i, tr := range wd.IXP {
			recs[i] = ecosystem.TaggedRecord{Rec: tr.Rec} // ingress lost in pcap
			if err := pw.WritePacket(tr.Rec.Time, 0, tr.Rec.FrameLen, tr.Rec.Frame); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := direct.AddFrames(day, recs, nil); err != nil {
			t.Fatal(err)
		}
	}

	ingested := source.NewReplay(nil)
	n, err := ingested.IngestPCAP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("IngestPCAP: %v", err)
	}
	if n != total {
		t.Fatalf("ingested %d frames, wrote %d", n, total)
	}
	batchesEqual(t, "pcap", direct, ingested)
}

// syntheticLogRecords builds count valid DNS-over-UDP records spread
// over a few days — enough volume to cross the ingestion chunk
// boundary without a full campaign.
func syntheticLogRecords(count int) []ecosystem.TaggedRecord {
	eth := netmodel.Ethernet{Dst: netmodel.MAC{2, 0, 0, 0, 0, 1}, Src: netmodel.MAC{2, 0, 0, 0, 0, 2}}
	var recs []ecosystem.TaggedRecord
	for i := 0; i < count; i++ {
		q := dnswire.NewQuery(uint16(i), "example.org.", dnswire.TypeA, 4096)
		ip := netmodel.IPv4{
			TTL: 64,
			Src: netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst: netip.AddrFrom4([4]byte{203, 0, 113, 53}),
		}
		udp := netmodel.UDP{SrcPort: uint16(1024 + i%60000), DstPort: 53}
		frame := netmodel.EncodeUDPPacket(eth, ip, udp, dnswire.Encode(q))
		t := simclock.MeasurementStart.Add(simclock.Duration(i) * 3) // ~3s apart, spills across days
		recs = append(recs, ecosystem.TaggedRecord{Rec: sflow.Record{
			Time: t, Frame: frame, FrameLen: len(frame), Seq: uint64(i + 1),
		}})
	}
	return recs
}

// TestIngestChunkedFlushMatchesWholeDay forces the ingestion loop
// across its chunk boundary (>64k records): per-day chunked AddFrames
// accumulation must produce batches identical to one whole-day call.
func TestIngestChunkedFlushMatchesWholeDay(t *testing.T) {
	recs := syntheticLogRecords(70_000)
	var buf bytes.Buffer
	lw, err := sflow.NewLogWriter(&buf, [4]byte{192, 0, 2, 3}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	byDay := make(map[simclock.Time][]ecosystem.TaggedRecord)
	var dayOrder []simclock.Time
	for _, tr := range recs {
		if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
			t.Fatal(err)
		}
		day := tr.Rec.Time.StartOfDay()
		if _, ok := byDay[day]; !ok {
			dayOrder = append(dayOrder, day)
		}
		byDay[day] = append(byDay[day], tr)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	direct := source.NewReplay(nil)
	for _, day := range dayOrder {
		if err := direct.AddFrames(day, byDay[day], nil); err != nil {
			t.Fatal(err)
		}
	}
	ingested := source.NewReplay(nil)
	n, err := ingested.IngestSFlowLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("IngestSFlowLog: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("ingested %d of %d frames", n, len(recs))
	}
	if len(ingested.Days()) < 3 {
		t.Fatalf("expected the record set to span several days, got %d", len(ingested.Days()))
	}
	batchesEqual(t, "chunked", direct, ingested)
}

// TestIngestTruncatedLog pins the partial-stream contract: a log that
// stops mid-entry ingests every complete entry, reports the kept
// count, and surfaces io.ErrUnexpectedEOF.
func TestIngestTruncatedLog(t *testing.T) {
	recs := syntheticLogRecords(500)
	var buf bytes.Buffer
	lw, err := sflow.NewLogWriter(&buf, [4]byte{192, 0, 2, 3}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range recs {
		if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() - 41 // mid-entry

	rep := source.NewReplay(nil)
	n, err := rep.IngestSFlowLog(bytes.NewReader(buf.Bytes()[:cut]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if n == 0 || n >= len(recs) {
		t.Fatalf("kept %d of %d records; cut should drop some but not all", n, len(recs))
	}
	kept := 0
	for _, day := range rep.Days() {
		kept += rep.Day(day).Frames
	}
	if kept != n {
		t.Fatalf("reported %d ingested frames but batches hold %d", n, kept)
	}
}

// TestAddFramesAccumulates is the double-ingestion regression test:
// the same day arriving in two AddFrames calls must keep the first
// call's samples, sanitization counters, and sensor flows (the second
// call used to replace the day's batch wholesale).
func TestAddFramesAccumulates(t *testing.T) {
	c := tinyCampaign(t)
	gen := ecosystem.NewGenerator(c, 7)
	day := source.DaysOf(testWindow())[0]
	wd := gen.WireDay(day)
	if len(wd.IXP) < 4 {
		t.Fatalf("wire day too small to split: %d frames", len(wd.IXP))
	}
	mid := len(wd.IXP) / 2
	sMid := len(wd.Sensors) / 2

	whole := source.NewReplay(nil)
	if err := whole.AddFrames(day, wd.IXP, wd.Sensors); err != nil {
		t.Fatal(err)
	}
	split := source.NewReplay(nil)
	if err := split.AddFrames(day, wd.IXP[:mid], wd.Sensors[:sMid]); err != nil {
		t.Fatal(err)
	}
	if err := split.AddFrames(day, wd.IXP[mid:], wd.Sensors[sMid:]); err != nil {
		t.Fatal(err)
	}

	batchesEqual(t, "split-ingest", whole, split)
	wb, sb := whole.Day(day), split.Day(day)
	if wb.Frames != sb.Frames || wb.NonUDP != sb.NonUDP || wb.NonDNS != sb.NonDNS || wb.Malformed != sb.Malformed {
		t.Fatalf("sanitization counters lost: %+v vs %+v",
			[4]int{wb.Frames, wb.NonUDP, wb.NonDNS, wb.Malformed},
			[4]int{sb.Frames, sb.NonUDP, sb.NonDNS, sb.Malformed})
	}
	_, wFlows := whole.DayFlows(day)
	_, sFlows := split.DayFlows(day)
	if !reflect.DeepEqual(wFlows, sFlows) {
		t.Fatal("sensor flows lost across split ingestion")
	}
}

// TestAddFramesRejectsSharedDay: a day recorded via AddDay shares its
// batch with the producer; appending frames to it must error, not
// silently mutate (or drop) the shared batch.
func TestAddFramesRejectsSharedDay(t *testing.T) {
	c := tinyCampaign(t)
	gen := ecosystem.NewGenerator(c, 7)
	day := source.DaysOf(testWindow())[0]
	dt := gen.Day(day)

	r := source.NewReplay(gen.Table())
	r.AddDay(day, dt.Batch, dt.Sensors)
	nBefore := dt.Batch.N
	wd := gen.WireDay(day)
	if err := r.AddFrames(day, wd.IXP, nil); err == nil {
		t.Fatal("AddFrames into an AddDay-shared batch must error")
	}
	if dt.Batch.N != nBefore {
		t.Fatalf("shared batch mutated: N %d -> %d", nBefore, dt.Batch.N)
	}
}
