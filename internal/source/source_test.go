package source_test

import (
	"reflect"
	"sync"
	"testing"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
	"dnsamp/internal/topology"
)

// tinyCampaign builds a small deterministic campaign for source tests.
func tinyCampaign(t *testing.T) *ecosystem.Campaign {
	t.Helper()
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	return ecosystem.NewCampaign(cfg)
}

func testWindow() simclock.Window {
	return simclock.Window{
		Start: simclock.MeasurementStart,
		End:   simclock.MeasurementStart.Add(simclock.Days(5)),
	}
}

// drain consumes a batch through a fresh capture point, returning the
// annotated samples (the stream the detection pipeline sees).
func drain(c *ecosystem.Campaign, b *ixp.SampleBatch) ([]ixp.DNSSample, ixp.CaptureStats) {
	cp := ixp.NewCapturePoint(c.Topo, nil)
	var out []ixp.DNSSample
	cp.ConsumeBatch(b, func(s *ixp.DNSSample) { out = append(out, *s) })
	return out, cp.Stats
}

// TestSyntheticSource checks the generator adapter: day listing from
// the window, and batches identical to direct generator output.
func TestSyntheticSource(t *testing.T) {
	c := tinyCampaign(t)
	w := testWindow()
	src := source.NewSynthetic(ecosystem.NewGenerator(c, 7), w)
	gen := ecosystem.NewGenerator(c, 7)

	days := src.Days()
	if len(days) != w.Days() {
		t.Fatalf("Days() = %d entries, want %d", len(days), w.Days())
	}
	if src.Table() == nil || src.Table() != src.Gen.Table() {
		t.Fatal("Table() must expose the generator's frozen table")
	}
	for _, day := range days {
		want := gen.Day(day)
		batch, flows := src.DayFlows(day)
		if !reflect.DeepEqual(want.Batch, batch) {
			t.Fatalf("day %s: DayFlows batch differs from Generator.Day", day.Date())
		}
		if !reflect.DeepEqual(want.Sensors, flows) {
			t.Fatalf("day %s: sensor flows differ", day.Date())
		}
		if !reflect.DeepEqual(want.Batch, src.Day(day)) {
			t.Fatalf("day %s: Day batch differs", day.Date())
		}
	}
}

// TestCachedEvictionAndDeterminism drives the bounded cache through
// hits, misses and evictions — the policy drops the most recently
// touched resident day, keeping the oldest days so a second ascending
// scan still reuses them — and checks that cached batches are the
// uncached ones: pointer-identical on a hit, value-identical after
// re-generation.
func TestCachedEvictionAndDeterminism(t *testing.T) {
	c := tinyCampaign(t)
	w := testWindow()
	cached := source.NewCached(source.NewSynthetic(ecosystem.NewGenerator(c, 7), w), 2)
	ref := source.NewSynthetic(ecosystem.NewGenerator(c, 7), w)
	days := cached.Days()

	d0 := cached.Day(days[0])
	d1 := cached.Day(days[1])
	if h, m, e := cached.Stats(); h != 0 || m != 2 || e != 0 {
		t.Fatalf("after two cold reads: hits=%d misses=%d evictions=%d", h, m, e)
	}
	if got := cached.Day(days[0]); got != d0 {
		t.Fatal("hit must return the resident batch, not regenerate")
	}
	if h, _, _ := cached.Stats(); h != 1 {
		t.Fatal("repeat read did not count as a hit")
	}
	// days[0] is now the most recently touched resident day; overflowing
	// must evict it — not the older days[1] — so an ascending re-scan
	// keeps its head.
	d2 := cached.Day(days[2])
	if _, m, e := cached.Stats(); m != 3 || e != 1 {
		t.Fatalf("after overflow: misses=%d evictions=%d, want 3/1", m, e)
	}
	if got := cached.Day(days[1]); got != d1 {
		t.Fatal("oldest resident day must survive the overflow")
	}
	d0again := cached.Day(days[0])
	if d0again == d0 {
		t.Fatal("evicted day served from cache")
	}
	if h, m, e := cached.Stats(); h != 2 || m != 4 || e != 2 {
		t.Fatalf("final stats: hits=%d misses=%d evictions=%d, want 2/4/2", h, m, e)
	}
	// Every batch — cached, evicted-and-regenerated, or fresh — must be
	// value-identical to the uncached source's output.
	for i, b := range []*ixp.SampleBatch{d0again, d1, d2} {
		day := days[i]
		wantS, wantStats := drain(c, ref.Day(day))
		gotS, gotStats := drain(c, b)
		if !reflect.DeepEqual(wantS, gotS) || wantStats != gotStats {
			t.Fatalf("day %s: cached stream differs from uncached", day.Date())
		}
	}
}

// TestCachedBoundedReuse is the sequential-flooding regression guard: a
// bounded cache far smaller than the day count must still serve hits to
// a second ascending scan (roughly one per slot of capacity), which an
// LRU policy would reduce to zero.
func TestCachedBoundedReuse(t *testing.T) {
	c := tinyCampaign(t)
	w := simclock.Window{
		Start: simclock.MeasurementStart,
		End:   simclock.MeasurementStart.Add(simclock.Days(12)),
	}
	cached := source.NewCached(source.NewSynthetic(ecosystem.NewGenerator(c, 7), w), 4)
	for pass := 0; pass < 2; pass++ {
		for _, day := range cached.Days() {
			cached.Day(day)
		}
	}
	if h, _, _ := cached.Stats(); h < 3 {
		h, m, e := cached.Stats()
		t.Fatalf("second ascending pass reused %d days (misses=%d evictions=%d); want >= capacity-1", h, m, e)
	}
}

// TestCachedConcurrent hammers one Cached source from many goroutines
// (run under -race in CI): same-day requests must share one
// materialization.
func TestCachedConcurrent(t *testing.T) {
	c := tinyCampaign(t)
	cached := source.NewCached(source.NewSynthetic(ecosystem.NewGenerator(c, 7), testWindow()), 0)
	days := cached.Days()

	got := make([][]*ixp.SampleBatch, 4)
	var wg sync.WaitGroup
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, day := range days {
				got[g] = append(got[g], cached.Day(day))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(got); g++ {
		for i := range days {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d day %d: distinct batch for the same day", g, i)
			}
		}
	}
	if _, m, _ := cached.Stats(); m != len(days) {
		t.Fatalf("misses = %d, want one per day (%d)", m, len(days))
	}
}

// TestReplayMatchesSynthetic is the non-synthetic-workload proof: a
// Replay fed recorded wire frames (sanitized at ingest) must stream
// sample-for-sample exactly what the Synthetic source streams, and a
// Record snapshot must serve the very same batches.
func TestReplayMatchesSynthetic(t *testing.T) {
	c := tinyCampaign(t)
	w := testWindow()
	syn := source.NewSynthetic(ecosystem.NewGenerator(c, 7), w)
	wireGen := ecosystem.NewGenerator(c, 7)

	replay := source.NewReplay(nil)
	for _, day := range syn.Days() {
		wd := wireGen.WireDay(day)
		replay.AddFrames(day, wd.IXP, wd.Sensors)
	}
	if !reflect.DeepEqual(replay.Days(), syn.Days()) {
		t.Fatal("replay day list differs")
	}
	for _, day := range syn.Days() {
		sb, sFlows := syn.DayFlows(day)
		rb, rFlows := replay.DayFlows(day)
		wantS, wantStats := drain(c, sb)
		gotS, gotStats := drain(c, rb)
		if len(wantS) != len(gotS) {
			t.Fatalf("day %s: %d synthetic samples vs %d replayed", day.Date(), len(wantS), len(gotS))
		}
		for i := range wantS {
			if !reflect.DeepEqual(wantS[i], gotS[i]) {
				t.Fatalf("day %s sample %d differs:\nsynthetic: %+v\nreplay:    %+v",
					day.Date(), i, wantS[i], gotS[i])
			}
		}
		if wantStats != gotStats {
			t.Errorf("day %s: capture stats differ: %+v vs %+v", day.Date(), wantStats, gotStats)
		}
		if !reflect.DeepEqual(sFlows, rFlows) {
			t.Errorf("day %s: sensor flows differ", day.Date())
		}
	}

	// Record: a snapshot of another source shares its batches.
	rec := source.Record(syn)
	for _, day := range syn.Days() {
		if b := rec.Day(day); b == nil || b.N != syn.Day(day).N {
			t.Fatalf("day %s: recorded batch missing or truncated", day.Date())
		}
	}
	if rec.Table() != syn.Table() {
		t.Error("Record must keep the source's interning table")
	}
	// Unknown days are absent, not invented.
	if b := rec.Day(w.End.Add(simclock.Days(3))); b != nil {
		t.Error("unrecorded day must return a nil batch")
	}
}
