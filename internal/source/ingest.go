// Real-capture ingestion: adapters that stream wire-format captures —
// an sFlow v5 datagram log or a classic pcap file — into a Replay's
// day batches through the same AddFrames sanitization path the
// synthetic wire tests use.
package source

import (
	"errors"
	"fmt"
	"io"
	"slices"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/pcap"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// IngestSFlowLog reads an entire sFlow datagram log (sflow.LogWriter's
// format) into the replay, grouping records by capture day. It returns
// the number of sampled frames ingested (before sanitization drops).
//
// A log that stops mid-entry (e.g. a partially flushed final write)
// ingests every complete entry and then reports an
// io.ErrUnexpectedEOF-wrapped error alongside the count of what was
// kept. Do not re-ingest the same log into the same Replay after such
// an error — days accumulate, so the retry would double-count; tail a
// live log with sflow.LogReader directly (as cmd/ixpmon -follow does)
// instead.
func (r *Replay) IngestSFlowLog(rd io.Reader) (int, error) {
	lr, err := sflow.NewLogReader(rd)
	if err != nil {
		return 0, err
	}
	return r.ingestFrames(func() (ecosystem.TaggedRecord, error) {
		rec, input, err := lr.Next()
		return ecosystem.TaggedRecord{Rec: rec, Ingress: input}, err
	})
}

// IngestPCAP reads a classic pcap capture into the replay, grouping
// frames by capture day. pcap carries no ingress-port metadata, so
// every record's ingress attribution is derived from its source
// address at consumption time. Returns the number of frames ingested.
func (r *Replay) IngestPCAP(rd io.Reader) (int, error) {
	pr, err := pcap.NewReader(rd)
	if err != nil {
		return 0, err
	}
	seq := uint64(0)
	return r.ingestFrames(func() (ecosystem.TaggedRecord, error) {
		p, err := pr.Next()
		if err != nil {
			return ecosystem.TaggedRecord{}, err
		}
		seq++
		return ecosystem.TaggedRecord{Rec: sflow.Record{
			Time:     p.Time,
			Frame:    p.Data,
			FrameLen: p.Orig,
			Seq:      seq,
		}}, nil
	})
}

// ingestChunk bounds how many records buffer between AddFrames
// flushes, so ingesting an arbitrarily large capture holds one chunk
// of owned frames plus the growing batches — not the whole file.
const ingestChunk = 1 << 16

// ingestFrames drains next until the stream ends, buffering records
// per capture day and flushing each day through AddFrames every
// ingestChunk records. Records may arrive in any day order and a day
// may flush in several chunks — AddFrames accumulates, and per-day
// record order is preserved, so the resulting batches are identical to
// a single whole-day call. Returns the number of frames ingested; a
// stream that ends in an error still flushes everything read before
// reporting it.
func (r *Replay) ingestFrames(next func() (ecosystem.TaggedRecord, error)) (int, error) {
	byDay := make(map[simclock.Time][]ecosystem.TaggedRecord)
	n, buffered := 0, 0
	flush := func() error {
		days := make([]simclock.Time, 0, len(byDay))
		for day := range byDay {
			days = append(days, day)
		}
		slices.Sort(days)
		for _, day := range days {
			if err := r.AddFrames(day, byDay[day], nil); err != nil {
				return fmt.Errorf("ingesting day %s: %w", day.Date(), err)
			}
			n += len(byDay[day])
			delete(byDay, day)
		}
		buffered = 0
		return nil
	}
	var streamErr error
	for {
		tr, err := next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				streamErr = err
			}
			break
		}
		day := tr.Rec.Time.StartOfDay()
		byDay[day] = append(byDay[day], tr)
		if buffered++; buffered >= ingestChunk {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
	if err := flush(); err != nil {
		return n, err
	}
	return n, streamErr
}
