// Package source decouples traffic acquisition from detection: the §4
// pipeline is source-agnostic — it consumes sampled IXP flows wherever
// they come from — so every consumer (the offline study engine, the
// live monitor, the CLI binaries) streams day batches through the
// Source interface instead of hardwiring ecosystem.Generator.
//
// Three adapters cover the current workloads:
//
//   - Synthetic wraps the campaign traffic generator, preserving its
//     purity contract (each day a pure function of (campaign, seed,
//     day), safe for concurrent materialization).
//   - Cached wraps any Source with a bounded day-batch cache so
//     multi-pass consumers (the pipeline's pass 2) stop regenerating
//     days.
//   - Replay serves pre-recorded day batches or sanitized sflow frames,
//     the first non-synthetic workload.
//
// Sources hand out immutable batches: consumers feed them to the
// batch-native observers (core.Aggregator.ObserveBatch and
// core.Collector.ObserveBatch, with ixp.CapturePoint.RemapBatch
// translating foreign table spaces) or replay them per sample through
// ixp.CapturePoint.ConsumeBatch — none of which write to a batch — so
// one materialized day may be shared by any number of passes and
// workers.
package source

import (
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// Source is a stream of daily sampled IXP traffic plus the honeypot-side
// sensor flows of the same simulated days.
//
// Implementations must be safe for concurrent Day/DayFlows calls on
// distinct or identical days: the pipeline's worker pool materializes
// many days at once.
type Source interface {
	// Table is the name-interning space of every batch the source
	// emits (SampleBatch.Table). Consumers that aggregate directly in
	// this space skip per-sample remapping entirely.
	Table() *names.Table

	// Days lists the start-of-day times this source can materialize,
	// in chronological order.
	Days() []simclock.Time

	// Day materializes one day's sampled IXP traffic. The returned
	// batch is immutable and may be shared; it is nil (or empty) for
	// days the source has nothing for.
	Day(day simclock.Time) *ixp.SampleBatch

	// DayFlows materializes one day's batch together with its honeypot
	// sensor flows. For synthetic sources both are drawn from the same
	// per-day RNG stream, so consumers needing both must use this
	// method rather than pairing Day with a second generation.
	DayFlows(day simclock.Time) (*ixp.SampleBatch, []ecosystem.SensorFlow)
}

// DaysOf collects the start-of-day times of a window, the canonical
// Days() value for window-shaped sources.
func DaysOf(w simclock.Window) []simclock.Time {
	days := make([]simclock.Time, 0, w.Days())
	w.EachDay(func(day simclock.Time) { days = append(days, day) })
	return days
}

// Synthetic adapts ecosystem.Generator to the Source interface over a
// fixed simulated window. It adds no state of its own: every call
// forwards to the generator, whose day synthesis is a pure function of
// (campaign, seed, day), so Synthetic inherits the generator's
// determinism and concurrency contract.
type Synthetic struct {
	Gen    *ecosystem.Generator
	window simclock.Window
	days   []simclock.Time
}

// NewSynthetic wraps a generator as a Source streaming the days of w.
func NewSynthetic(gen *ecosystem.Generator, w simclock.Window) *Synthetic {
	return &Synthetic{Gen: gen, window: w, days: DaysOf(w)}
}

// Table returns the generator's frozen interning table.
func (s *Synthetic) Table() *names.Table { return s.Gen.Table() }

// Window returns the simulated window the source streams.
func (s *Synthetic) Window() simclock.Window { return s.window }

// Days lists the start-of-day times of the source's window.
func (s *Synthetic) Days() []simclock.Time { return s.days }

// Day materializes one day's sampled IXP batch.
func (s *Synthetic) Day(day simclock.Time) *ixp.SampleBatch {
	return s.Gen.Day(day).Batch
}

// DayFlows materializes one day's batch and sensor flows from a single
// generation (one per-day RNG stream).
func (s *Synthetic) DayFlows(day simclock.Time) (*ixp.SampleBatch, []ecosystem.SensorFlow) {
	dt := s.Gen.Day(day)
	return dt.Batch, dt.Sensors
}
