// Persisted batch snapshots: a versioned, little-endian, columnar dump
// of a Replay — interning table, per-day ixp.SampleBatch columns with
// their sanitization counters, and the honeypot sensor flows — so a
// source.Record snapshot can be written by one process and served from
// disk by another, byte-identically.
//
// Layout (all integers little-endian):
//
//	magic "dnsampSS" | u32 version
//	table:   u32 count, then per name u32 len + bytes (ID order)
//	days:    u32 count, then per day:
//	  i64 day | u8 hasBatch
//	  batch:  i64 frames/nonUDP/nonDNS/malformed | u32 N | columns,
//	          each written wholesale in declaration order
//	  sensors: u32 count, then per flow its fields (addresses as
//	          len-prefixed netip bytes, names len-prefixed)
//
// Everything serialized is already deterministic (table in ID order,
// days chronological, columns positional), so write → read → write
// reproduces the exact file bytes — the property the cross-process
// golden test pins.
package source

import (
	"errors"
	"fmt"
	"io"

	"dnsamp/internal/binenc"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

var snapMagic = [8]byte{'d', 'n', 's', 'a', 'm', 'p', 'S', 'S'}

const snapVersion = 1

// ErrSnapshot is wrapped by every OpenSnapshot failure: truncation,
// corruption, or a version this build does not speak.
var ErrSnapshot = errors.New("source: invalid snapshot")

// WriteSnapshot serializes the replay — table, day batches, sensor
// flows — to w. Every day's batch must live in the replay's interning
// table (true for Record snapshots and AddFrames ingestion; a foreign
// AddDay batch is reported as an error rather than written with
// dangling name IDs).
func (r *Replay) WriteSnapshot(w io.Writer) error {
	for _, day := range r.days {
		if b := r.byDay[day].batch; b != nil && b.Table != r.tab {
			return fmt.Errorf("source: day %s batch uses a foreign interning table; snapshot would dangle its name IDs", day.Date())
		}
	}
	e := binenc.NewEncoder(w)
	e.Raw(snapMagic[:])
	e.U32(snapVersion)

	strs := r.tab.Names()
	e.U32(uint32(len(strs)))
	for _, s := range strs {
		e.Str(s)
	}

	e.U32(uint32(len(r.days)))
	for _, day := range r.days {
		rd := r.byDay[day]
		e.I64(int64(day))
		if b := rd.batch; b == nil {
			e.U8(0)
		} else {
			e.U8(1)
			e.I64(int64(b.Frames))
			e.I64(int64(b.NonUDP))
			e.I64(int64(b.NonDNS))
			e.I64(int64(b.Malformed))
			e.U32(uint32(b.N))
			for i := 0; i < b.N; i++ {
				e.I64(int64(b.Time[i]))
			}
			for i := 0; i < b.N; i++ {
				e.Raw(b.Src[i][:])
			}
			for i := 0; i < b.N; i++ {
				e.Raw(b.Dst[i][:])
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.SrcPort[i])
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.DstPort[i])
			}
			for i := 0; i < b.N; i++ {
				e.U8(b.IPTTL[i])
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.IPID[i])
			}
			for i := 0; i < b.N; i++ {
				e.Bool(b.Resp[i])
			}
			for i := 0; i < b.N; i++ {
				e.U32(b.Name[i])
			}
			for i := 0; i < b.N; i++ {
				e.U16(uint16(b.QType[i]))
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.TXID[i])
			}
			for i := 0; i < b.N; i++ {
				e.U32(uint32(b.MsgSize[i]))
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.ANCount[i])
			}
			for i := 0; i < b.N; i++ {
				e.U16(b.VisibleNS[i])
			}
			for i := 0; i < b.N; i++ {
				e.U32(b.Ingress[i])
			}
		}
		e.U32(uint32(len(rd.sensors)))
		for _, sf := range rd.sensors {
			e.I64(int64(sf.Sensor))
			e.Addr(sf.Victim)
			e.I64(int64(sf.Start))
			e.I64(int64(sf.Duration))
			e.I64(int64(sf.Count))
			e.Str(sf.QName)
			e.U16(uint16(sf.QType))
			e.U16(sf.TXID)
			e.I64(int64(sf.EventID))
		}
	}
	return e.Flush()
}

// allocCap bounds the up-front capacity of a snapshot column or table:
// a claimed element count only guides preallocation up to this limit,
// and larger claims grow by append as elements actually arrive off the
// stream — so a corrupt count costs at most the bytes the input really
// contains, never the memory it promises.
const allocCap = 1 << 16

// cappedCap is the initial capacity for a slice expecting n elements.
func cappedCap(n int) int {
	if n > allocCap {
		return allocCap
	}
	return n
}

// OpenSnapshot reads a snapshot produced by WriteSnapshot and rebuilds
// the Replay: a fresh interning table with the recorded ID order, and
// per-day batches the replay owns. The input is decoded as a stream —
// a multi-gigabyte snapshot is never buffered wholesale — and malformed
// input (truncation, a bad magic, inconsistent counts) yields an
// ErrSnapshot-wrapped error, never a panic.
func OpenSnapshot(rd io.Reader) (*Replay, error) {
	d := binenc.NewStreamDecoder(rd, ErrSnapshot)
	var magic [8]byte
	d.RawInto(magic[:])
	if d.Err() == nil && magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	if v := d.U32(); d.Err() == nil && v != snapVersion {
		return nil, fmt.Errorf("%w: version %d (this build speaks %d)", ErrSnapshot, v, snapVersion)
	}

	nNames := d.Count(4) // a name costs at least its u32 length prefix
	tab := names.NewTable()
	tab.Reserve(cappedCap(nNames))
	for i := 0; i < nNames && d.Err() == nil; i++ {
		s := d.Str()
		if d.Err() != nil {
			break
		}
		if id := tab.Intern(s); int(id) != i {
			return nil, fmt.Errorf("%w: duplicate table name at ID %d", ErrSnapshot, i)
		}
	}

	r := NewReplay(tab)
	nDays := d.Count(13)
	for i := 0; i < nDays && d.Err() == nil; i++ {
		day := simclock.Time(d.I64())
		var b *ixp.SampleBatch
		if d.U8() == 1 {
			b = &ixp.SampleBatch{Table: tab}
			b.Frames = int(d.I64())
			b.NonUDP = int(d.I64())
			b.NonDNS = int(d.I64())
			b.Malformed = int(d.I64())
			// A record costs 44 bytes across all columns (8 time, 4+4
			// addresses, 2+2 ports, 1 TTL, 2 IPID, 1 resp, 4 name,
			// 2 qtype, 2 txid, 4 size, 2 ancount, 2 visibleNS,
			// 4 ingress).
			n := d.Count(44)
			if d.Err() != nil {
				break
			}
			b.N = n
			b.Time = make([]simclock.Time, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.Time = append(b.Time, simclock.Time(d.I64()))
			}
			b.Src = make([][4]byte, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				var a [4]byte
				d.RawInto(a[:])
				b.Src = append(b.Src, a)
			}
			b.Dst = make([][4]byte, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				var a [4]byte
				d.RawInto(a[:])
				b.Dst = append(b.Dst, a)
			}
			b.SrcPort = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.SrcPort = append(b.SrcPort, d.U16())
			}
			b.DstPort = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.DstPort = append(b.DstPort, d.U16())
			}
			b.IPTTL = make([]uint8, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.IPTTL = append(b.IPTTL, d.U8())
			}
			b.IPID = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.IPID = append(b.IPID, d.U16())
			}
			b.Resp = make([]bool, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.Resp = append(b.Resp, d.Bool())
			}
			b.Name = make([]uint32, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				id := d.U32()
				if d.Err() == nil && int(id) >= tab.Len() {
					return nil, fmt.Errorf("%w: name ID %d outside the %d-entry table", ErrSnapshot, id, tab.Len())
				}
				b.Name = append(b.Name, id)
			}
			b.QType = make([]dnswire.Type, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.QType = append(b.QType, dnswire.Type(d.U16()))
			}
			b.TXID = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.TXID = append(b.TXID, d.U16())
			}
			b.MsgSize = make([]int32, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.MsgSize = append(b.MsgSize, int32(d.U32()))
			}
			b.ANCount = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.ANCount = append(b.ANCount, d.U16())
			}
			b.VisibleNS = make([]uint16, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.VisibleNS = append(b.VisibleNS, d.U16())
			}
			b.Ingress = make([]uint32, 0, cappedCap(n))
			for j := 0; j < n && d.Err() == nil; j++ {
				b.Ingress = append(b.Ingress, d.U32())
			}
		}
		// A sensor flow costs at least 49 bytes (8 sensor, 1 addr tag,
		// 8+8 start/duration, 8 count, 4 qname prefix, 2+2 qtype/txid,
		// 8 event ID).
		nSens := d.Count(49)
		var sensors []ecosystem.SensorFlow
		if nSens > 0 {
			sensors = make([]ecosystem.SensorFlow, 0, cappedCap(nSens))
		}
		for j := 0; j < nSens && d.Err() == nil; j++ {
			var sf ecosystem.SensorFlow
			sf.Sensor = int(d.I64())
			sf.Victim = d.Addr()
			sf.Start = simclock.Time(d.I64())
			sf.Duration = simclock.Duration(d.I64())
			sf.Count = int(d.I64())
			sf.QName = d.Str()
			sf.QType = dnswire.Type(d.U16())
			sf.TXID = d.U16()
			sf.EventID = int(d.I64())
			sensors = append(sensors, sf)
		}
		if d.Err() != nil {
			break
		}
		if _, dup := r.byDay[day.StartOfDay()]; dup {
			return nil, fmt.Errorf("%w: duplicate day %s", ErrSnapshot, day.Date())
		}
		r.AddDay(day, b, sensors)
		// Snapshot batches are rebuilt in the replay's own table, so a
		// later AddFrames may keep accumulating into them.
		r.byDay[day.StartOfDay()].owned = b != nil
	}
	d.ExpectEOF()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return r, nil
}
