// Persisted batch snapshots: a versioned, little-endian, columnar dump
// of a Replay — interning table, per-day ixp.SampleBatch columns with
// their sanitization counters, and the honeypot sensor flows — so a
// source.Record snapshot can be written by one process and served from
// disk by another, byte-identically.
//
// Layout (all integers little-endian):
//
//	magic "dnsampSS" | u32 version
//	table:   u32 count, then per name u32 len + bytes (ID order)
//	days:    u32 count, then per day:
//	  i64 day | u8 hasBatch
//	  batch:  i64 frames/nonUDP/nonDNS/malformed | u32 N | columns,
//	          each written wholesale in declaration order
//	  sensors: u32 count, then per flow its fields (addresses as
//	          len-prefixed netip bytes, names len-prefixed)
//
// Everything serialized is already deterministic (table in ID order,
// days chronological, columns positional), so write → read → write
// reproduces the exact file bytes — the property the cross-process
// golden test pins.
package source

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

var snapMagic = [8]byte{'d', 'n', 's', 'a', 'm', 'p', 'S', 'S'}

const snapVersion = 1

// ErrSnapshot is wrapped by every OpenSnapshot failure: truncation,
// corruption, or a version this build does not speak.
var ErrSnapshot = errors.New("source: invalid snapshot")

// WriteSnapshot serializes the replay — table, day batches, sensor
// flows — to w. Every day's batch must live in the replay's interning
// table (true for Record snapshots and AddFrames ingestion; a foreign
// AddDay batch is reported as an error rather than written with
// dangling name IDs).
func (r *Replay) WriteSnapshot(w io.Writer) error {
	for _, day := range r.days {
		if b := r.byDay[day].batch; b != nil && b.Table != r.tab {
			return fmt.Errorf("source: day %s batch uses a foreign interning table; snapshot would dangle its name IDs", day.Date())
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &snapEncoder{w: bw}
	e.raw(snapMagic[:])
	e.u32(snapVersion)

	strs := r.tab.Names()
	e.u32(uint32(len(strs)))
	for _, s := range strs {
		e.str(s)
	}

	e.u32(uint32(len(r.days)))
	for _, day := range r.days {
		rd := r.byDay[day]
		e.i64(int64(day))
		if b := rd.batch; b == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.i64(int64(b.Frames))
			e.i64(int64(b.NonUDP))
			e.i64(int64(b.NonDNS))
			e.i64(int64(b.Malformed))
			e.u32(uint32(b.N))
			for i := 0; i < b.N; i++ {
				e.i64(int64(b.Time[i]))
			}
			for i := 0; i < b.N; i++ {
				e.raw(b.Src[i][:])
			}
			for i := 0; i < b.N; i++ {
				e.raw(b.Dst[i][:])
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.SrcPort[i])
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.DstPort[i])
			}
			for i := 0; i < b.N; i++ {
				e.u8(b.IPTTL[i])
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.IPID[i])
			}
			for i := 0; i < b.N; i++ {
				e.bool(b.Resp[i])
			}
			for i := 0; i < b.N; i++ {
				e.u32(b.Name[i])
			}
			for i := 0; i < b.N; i++ {
				e.u16(uint16(b.QType[i]))
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.TXID[i])
			}
			for i := 0; i < b.N; i++ {
				e.u32(uint32(b.MsgSize[i]))
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.ANCount[i])
			}
			for i := 0; i < b.N; i++ {
				e.u16(b.VisibleNS[i])
			}
			for i := 0; i < b.N; i++ {
				e.u32(b.Ingress[i])
			}
		}
		e.u32(uint32(len(rd.sensors)))
		for _, sf := range rd.sensors {
			e.i64(int64(sf.Sensor))
			e.addr(sf.Victim)
			e.i64(int64(sf.Start))
			e.i64(int64(sf.Duration))
			e.i64(int64(sf.Count))
			e.str(sf.QName)
			e.u16(uint16(sf.QType))
			e.u16(sf.TXID)
			e.i64(int64(sf.EventID))
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// OpenSnapshot reads a snapshot produced by WriteSnapshot and rebuilds
// the Replay: a fresh interning table with the recorded ID order, and
// per-day batches the replay owns. Malformed input — truncation, a bad
// magic, inconsistent counts — yields an ErrSnapshot-wrapped error,
// never a panic.
func OpenSnapshot(rd io.Reader) (*Replay, error) {
	raw, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	d := &snapDecoder{b: raw}
	var magic [8]byte
	copy(magic[:], d.raw(8))
	if d.err == nil && magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	if v := d.u32(); d.err == nil && v != snapVersion {
		return nil, fmt.Errorf("%w: version %d (this build speaks %d)", ErrSnapshot, v, snapVersion)
	}

	nNames := d.count(4) // a name costs at least its u32 length prefix
	tab := names.NewTable()
	tab.Reserve(nNames)
	for i := 0; i < nNames && d.err == nil; i++ {
		if id := tab.Intern(d.str()); int(id) != i {
			return nil, fmt.Errorf("%w: duplicate table name at ID %d", ErrSnapshot, i)
		}
	}

	r := NewReplay(tab)
	nDays := d.count(13)
	for i := 0; i < nDays && d.err == nil; i++ {
		day := simclock.Time(d.i64())
		var b *ixp.SampleBatch
		if d.u8() == 1 {
			b = &ixp.SampleBatch{Table: tab}
			b.Frames = int(d.i64())
			b.NonUDP = int(d.i64())
			b.NonDNS = int(d.i64())
			b.Malformed = int(d.i64())
			// A record costs 44 bytes across all columns (8 time, 4+4
			// addresses, 2+2 ports, 1 TTL, 2 IPID, 1 resp, 4 name,
			// 2 qtype, 2 txid, 4 size, 2 ancount, 2 visibleNS,
			// 4 ingress).
			n := d.countAt(int(d.u32()), 44)
			b.N = n
			if d.err != nil {
				break
			}
			b.Time = make([]simclock.Time, n)
			for j := range b.Time {
				b.Time[j] = simclock.Time(d.i64())
			}
			b.Src = make([][4]byte, n)
			for j := range b.Src {
				copy(b.Src[j][:], d.raw(4))
			}
			b.Dst = make([][4]byte, n)
			for j := range b.Dst {
				copy(b.Dst[j][:], d.raw(4))
			}
			b.SrcPort = make([]uint16, n)
			for j := range b.SrcPort {
				b.SrcPort[j] = d.u16()
			}
			b.DstPort = make([]uint16, n)
			for j := range b.DstPort {
				b.DstPort[j] = d.u16()
			}
			b.IPTTL = make([]uint8, n)
			for j := range b.IPTTL {
				b.IPTTL[j] = d.u8()
			}
			b.IPID = make([]uint16, n)
			for j := range b.IPID {
				b.IPID[j] = d.u16()
			}
			b.Resp = make([]bool, n)
			for j := range b.Resp {
				b.Resp[j] = d.bool()
			}
			b.Name = make([]uint32, n)
			for j := range b.Name {
				b.Name[j] = d.u32()
				if d.err == nil && int(b.Name[j]) >= tab.Len() {
					return nil, fmt.Errorf("%w: name ID %d outside the %d-entry table", ErrSnapshot, b.Name[j], tab.Len())
				}
			}
			b.QType = make([]dnswire.Type, n)
			for j := range b.QType {
				b.QType[j] = dnswire.Type(d.u16())
			}
			b.TXID = make([]uint16, n)
			for j := range b.TXID {
				b.TXID[j] = d.u16()
			}
			b.MsgSize = make([]int32, n)
			for j := range b.MsgSize {
				b.MsgSize[j] = int32(d.u32())
			}
			b.ANCount = make([]uint16, n)
			for j := range b.ANCount {
				b.ANCount[j] = d.u16()
			}
			b.VisibleNS = make([]uint16, n)
			for j := range b.VisibleNS {
				b.VisibleNS[j] = d.u16()
			}
			b.Ingress = make([]uint32, n)
			for j := range b.Ingress {
				b.Ingress[j] = d.u32()
			}
		}
		// A sensor flow costs at least 49 bytes (8 sensor, 1 addr tag,
		// 8+8 start/duration, 8 count, 4 qname prefix, 2+2 qtype/txid,
		// 8 event ID).
		nSens := d.count(49)
		var sensors []ecosystem.SensorFlow
		if nSens > 0 {
			sensors = make([]ecosystem.SensorFlow, 0, nSens)
		}
		for j := 0; j < nSens && d.err == nil; j++ {
			var sf ecosystem.SensorFlow
			sf.Sensor = int(d.i64())
			sf.Victim = d.addr()
			sf.Start = simclock.Time(d.i64())
			sf.Duration = simclock.Duration(d.i64())
			sf.Count = int(d.i64())
			sf.QName = d.str()
			sf.QType = dnswire.Type(d.u16())
			sf.TXID = d.u16()
			sf.EventID = int(d.i64())
			sensors = append(sensors, sf)
		}
		if d.err != nil {
			break
		}
		if _, dup := r.byDay[day.StartOfDay()]; dup {
			return nil, fmt.Errorf("%w: duplicate day %s", ErrSnapshot, day.Date())
		}
		r.AddDay(day, b, sensors)
		// Snapshot batches are rebuilt in the replay's own table, so a
		// later AddFrames may keep accumulating into them.
		r.byDay[day.StartOfDay()].owned = b != nil
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, len(d.b)-d.off)
	}
	return r, nil
}

// snapEncoder writes fixed-layout little-endian values, latching the
// first write error.
type snapEncoder struct {
	w   *bufio.Writer
	err error
	tmp [8]byte
}

func (e *snapEncoder) raw(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *snapEncoder) u8(v uint8) {
	if e.err == nil {
		e.err = e.w.WriteByte(v)
	}
}

func (e *snapEncoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *snapEncoder) u16(v uint16) {
	binary.LittleEndian.PutUint16(e.tmp[:2], v)
	e.raw(e.tmp[:2])
}

func (e *snapEncoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.tmp[:4], v)
	e.raw(e.tmp[:4])
}

func (e *snapEncoder) i64(v int64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], uint64(v))
	e.raw(e.tmp[:8])
}

func (e *snapEncoder) str(s string) {
	e.u32(uint32(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// addr writes a netip.Addr as a length-prefixed byte form (0 for the
// zero Addr, 4 for IPv4, 16 for IPv6).
func (e *snapEncoder) addr(a netip.Addr) {
	switch {
	case !a.IsValid():
		e.u8(0)
	case a.Is4():
		b := a.As4()
		e.u8(4)
		e.raw(b[:])
	default:
		b := a.As16()
		e.u8(16)
		e.raw(b[:])
	}
}

// snapDecoder reads the same layout back out of one buffer with
// saturating bounds checks: the first short read poisons the decoder.
type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrSnapshot, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *snapDecoder) raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < 0 {
		d.fail("truncated (want %d bytes)", n)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *snapDecoder) u8() uint8 {
	if v := d.raw(1); v != nil {
		return v[0]
	}
	return 0
}

func (d *snapDecoder) bool() bool { return d.u8() != 0 }

func (d *snapDecoder) u16() uint16 {
	if v := d.raw(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

func (d *snapDecoder) u32() uint32 {
	if v := d.raw(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

func (d *snapDecoder) i64() int64 {
	if v := d.raw(8); v != nil {
		return int64(binary.LittleEndian.Uint64(v))
	}
	return 0
}

func (d *snapDecoder) str() string {
	n := int(d.u32())
	if d.err == nil && n > len(d.b)-d.off {
		d.fail("%d-byte string exceeds input", n)
		return ""
	}
	return string(d.raw(n))
}

// count reads a u32 element count and validates it against the bytes
// remaining at minBytes per element, so corrupt counts fail instead of
// allocating unbounded memory.
func (d *snapDecoder) count(minBytes int) int {
	return d.countAt(int(d.u32()), minBytes)
}

func (d *snapDecoder) countAt(n, minBytes int) int {
	if d.err != nil {
		return 0
	}
	if n < 0 || n > (len(d.b)-d.off)/minBytes {
		d.fail("count %d exceeds remaining input", n)
		return 0
	}
	return n
}

// addr reads the length-prefixed netip.Addr form.
func (d *snapDecoder) addr() netip.Addr {
	switch n := d.u8(); n {
	case 0:
		return netip.Addr{}
	case 4:
		var b [4]byte
		copy(b[:], d.raw(4))
		return netip.AddrFrom4(b)
	case 16:
		var b [16]byte
		copy(b[:], d.raw(16))
		return netip.AddrFrom16(b)
	default:
		d.fail("address length %d", n)
		return netip.Addr{}
	}
}
