package source_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// randomReplay builds a replay with randomized batches, counters, and
// sensor flows — the round-trip suite's input space.
func randomReplay(rng *rand.Rand) *source.Replay {
	tab := names.NewTable()
	nNames := 1 + rng.Intn(40)
	for i := 0; i < nNames; i++ {
		buf := make([]byte, 3+rng.Intn(20))
		for j := range buf {
			buf[j] = 'a' + byte(rng.Intn(26))
		}
		tab.Intern(string(buf) + ".")
	}
	r := source.NewReplay(tab)
	days := 1 + rng.Intn(4)
	for d := 0; d < days; d++ {
		day := simclock.MeasurementStart.Add(simclock.Days(d))
		var b *ixp.SampleBatch
		if rng.Intn(8) != 0 { // occasionally a batch-less day
			b = &ixp.SampleBatch{Table: tab}
			n := rng.Intn(200)
			b.Grow(n)
			for i := 0; i < n; i++ {
				b.Append(ixp.BatchRecord{
					Time:      day.Add(simclock.Duration(rng.Intn(86400))),
					Src:       [4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
					Dst:       [4]byte{198, 51, 100, byte(rng.Intn(256))},
					SrcPort:   uint16(rng.Intn(1 << 16)),
					DstPort:   53,
					IPTTL:     uint8(rng.Intn(256)),
					IPID:      uint16(rng.Intn(1 << 16)),
					Resp:      rng.Intn(2) == 0,
					Name:      uint32(rng.Intn(tab.Len())),
					QType:     dnswire.Type(rng.Intn(260)),
					TXID:      uint16(rng.Intn(1 << 16)),
					MsgSize:   int32(rng.Intn(5000)),
					ANCount:   uint16(rng.Intn(40)),
					VisibleNS: uint16(rng.Intn(20)),
					Ingress:   uint32(rng.Intn(3)) * 64500,
				})
			}
			b.NonUDP = rng.Intn(10)
			b.NonDNS = rng.Intn(10)
			b.Malformed = rng.Intn(10)
			b.Frames = b.N + b.NonUDP + b.NonDNS + b.Malformed
		}
		var sensors []ecosystem.SensorFlow
		for i := rng.Intn(5); i > 0; i-- {
			sensors = append(sensors, ecosystem.SensorFlow{
				Sensor:   rng.Intn(30),
				Victim:   netip.AddrFrom4([4]byte{203, 0, 113, byte(rng.Intn(256))}),
				Start:    day.Add(simclock.Duration(rng.Intn(86400))),
				Duration: simclock.Duration(rng.Intn(3600)),
				Count:    rng.Intn(100000),
				QName:    tab.Name(uint32(rng.Intn(tab.Len()))),
				QType:    dnswire.TypeANY,
				TXID:     uint16(rng.Intn(1 << 16)),
				EventID:  rng.Intn(1000),
			})
		}
		r.AddDay(day, b, sensors)
	}
	return r
}

// TestSnapshotRoundTrip is the randomized round-trip suite: write →
// read must reproduce the batch columns, counters, sensor flows, and
// interning table exactly, and a second write must produce the same
// bytes (the cross-process byte-identity contract).
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		orig := randomReplay(rng)
		var buf bytes.Buffer
		if err := orig.WriteSnapshot(&buf); err != nil {
			t.Fatalf("trial %d: WriteSnapshot: %v", trial, err)
		}
		loaded, err := source.OpenSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: OpenSnapshot: %v", trial, err)
		}
		if !reflect.DeepEqual(orig.Days(), loaded.Days()) {
			t.Fatalf("trial %d: day lists differ", trial)
		}
		if !reflect.DeepEqual(orig.Table(), loaded.Table()) {
			t.Fatalf("trial %d: interning tables differ", trial)
		}
		for _, day := range orig.Days() {
			ob, oFlows := orig.DayFlows(day)
			lb, lFlows := loaded.DayFlows(day)
			if (ob == nil) != (lb == nil) {
				t.Fatalf("trial %d day %s: batch presence differs", trial, day.Date())
			}
			if ob != nil {
				// Column-by-column comparison so failures name the field.
				ov, lv := reflect.ValueOf(*ob), reflect.ValueOf(*lb)
				typ := ov.Type()
				for f := 0; f < typ.NumField(); f++ {
					if typ.Field(f).Name == "Table" {
						continue // compared above; pointers differ by design
					}
					if !reflect.DeepEqual(ov.Field(f).Interface(), lv.Field(f).Interface()) {
						t.Fatalf("trial %d day %s: column %s differs", trial, day.Date(), typ.Field(f).Name)
					}
				}
				if lb.Table != loaded.Table() {
					t.Fatalf("trial %d: loaded batch not in the loaded table space", trial)
				}
			}
			if !reflect.DeepEqual(oFlows, lFlows) {
				t.Fatalf("trial %d day %s: sensor flows differ", trial, day.Date())
			}
		}
		var again bytes.Buffer
		if err := loaded.WriteSnapshot(&again); err != nil {
			t.Fatalf("trial %d: re-WriteSnapshot: %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("trial %d: write→read→write not byte-identical (%d vs %d bytes)",
				trial, buf.Len(), again.Len())
		}
	}
}

// TestSnapshotCorruption asserts every truncation point and a sweep of
// byte flips yield a clean ErrSnapshot (or a semantically valid
// alternate parse) — never a panic or runaway allocation.
func TestSnapshotCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := randomReplay(rng)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut += 1 + cut/16 {
		if _, err := source.OpenSnapshot(bytes.NewReader(full[:cut])); !errors.Is(err, source.ErrSnapshot) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrSnapshot", cut, len(full), err)
		}
	}
	// Trailing garbage is corruption too, not silently ignored.
	if _, err := source.OpenSnapshot(bytes.NewReader(append(append([]byte{}, full...), 0xff))); !errors.Is(err, source.ErrSnapshot) {
		t.Fatalf("trailing byte: err = %v, want ErrSnapshot", err)
	}
	// Byte flips: decoding must terminate with either a clean error or
	// a structurally valid replay (flips in column data are legal).
	for i := 0; i < len(full); i += 1 + i/8 {
		mut := append([]byte{}, full...)
		mut[i] ^= 0x80
		r, err := source.OpenSnapshot(bytes.NewReader(mut))
		if err == nil && r == nil {
			t.Fatalf("flip at %d: nil replay without error", i)
		}
	}
	// An absurd count field must fail before allocating.
	mut := append([]byte{}, full...)
	copy(mut[8+4:], []byte{0xff, 0xff, 0xff, 0xff}) // name count
	if _, err := source.OpenSnapshot(bytes.NewReader(mut)); !errors.Is(err, source.ErrSnapshot) {
		t.Fatalf("absurd count: err = %v, want ErrSnapshot", err)
	}
}

// TestSnapshotRejectsForeignTable pins the write-side guard: a day
// whose batch lives in another interning table would serialize
// dangling name IDs and must be refused.
func TestSnapshotRejectsForeignTable(t *testing.T) {
	other := names.NewTable()
	other.Intern("elsewhere.example.")
	b := &ixp.SampleBatch{Table: other}
	b.Append(ixp.BatchRecord{Name: 0})
	r := source.NewReplay(nil)
	r.AddDay(simclock.MeasurementStart, b, nil)
	if err := r.WriteSnapshot(io.Discard); err == nil {
		t.Fatal("WriteSnapshot accepted a foreign-table batch")
	}
}
