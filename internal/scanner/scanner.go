// Package scanner simulates the Shodan-style Internet-wide scanning
// feed of §3.2: daily IPv4 scans discovering open DNS services, with a
// per-IP history (first seen / last seen) retrievable via historic
// lookup (§7.1, Fig. 15).
//
// The scanner is imperfect on purpose: each alive amplifier is detected
// per scan day with a fixed probability, so recently appeared reflectors
// may be abused before the scanner first records them — the paper's "2%
// of amplifiers are abused before they show up in public scan data".
package scanner

import (
	"math/rand"
	"net/netip"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
)

// Config tunes the scan simulation.
type Config struct {
	// DailyDetectionProb is the chance one daily scan observes an alive
	// open resolver.
	DailyDetectionProb float64
	// CoverageProb is the chance an amplifier is scannable at all
	// (Shodan "omits transparent DNS forwarders"; still ~95% of abused
	// amplifiers appear in its index).
	CoverageProb float64
	Seed         int64
}

// DefaultConfig matches the paper's observed coverage.
func DefaultConfig() Config {
	return Config{DailyDetectionProb: 0.9, CoverageProb: 0.95, Seed: 3}
}

// History is one address's scan record.
type History struct {
	FirstSeen simclock.Time
	LastSeen  simclock.Time
	// Kind as classified by the scanner.
	Kind resolver.Kind
}

// Index is the full simulated scan database.
type Index struct {
	cfg  Config
	hist map[netip.Addr]History
}

// Build runs the simulated daily scans over the amplifier pool across
// the given window and returns the index. Scanning runs from the history
// horizon (2016) so that first-seen dates predate the campaign.
func Build(cfg Config, pool *ecosystem.Pool, window simclock.Window) *Index {
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := &Index{cfg: cfg, hist: make(map[netip.Addr]History, pool.Len())}
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		if rng.Float64() >= cfg.CoverageProb {
			continue // never indexed (e.g. transparent forwarder)
		}
		// Instead of simulating every scan day, draw the discovery lag
		// and the last successful scan directly: discovery is the first
		// success of a daily Bernoulli(p) process after Born, i.e.
		// geometric; the last success is symmetric before min(Died,
		// window end).
		lag := geometricDays(rng, cfg.DailyDetectionProb)
		first := a.Born.Add(simclock.Days(lag))
		end := a.Died
		if end.After(window.End) {
			end = window.End
		}
		backLag := geometricDays(rng, cfg.DailyDetectionProb)
		last := end.Add(-simclock.Days(backLag + 1))
		if last.Before(first) {
			// The service lived too briefly for a second observation.
			last = first
		}
		if first.After(end) {
			continue // died before any scan caught it
		}
		// Histories are per IP address: if an address hosted several
		// occupants over time, the scan record spans them all.
		if prev, ok := idx.hist[a.Addr]; ok {
			if prev.FirstSeen.Before(first) {
				first = prev.FirstSeen
			}
			if prev.LastSeen.After(last) {
				last = prev.LastSeen
			}
		}
		idx.hist[a.Addr] = History{FirstSeen: first, LastSeen: last, Kind: a.Kind}
	}
	return idx
}

// geometricDays draws the number of failure days before the first
// success of a Bernoulli(p) process.
func geometricDays(rng *rand.Rand, p float64) int {
	if p >= 1 {
		return 0
	}
	n := 0
	for rng.Float64() >= p && n < 3650 {
		n++
	}
	return n
}

// Lookup returns the scan history of an address.
func (idx *Index) Lookup(addr netip.Addr) (History, bool) {
	h, ok := idx.hist[addr]
	return h, ok
}

// Known reports whether the address appears in the index at all.
func (idx *Index) Known(addr netip.Addr) bool {
	_, ok := idx.hist[addr]
	return ok
}

// KnownBefore reports whether the address was first seen strictly before
// t — the "abused before discovery" test of §7.1.
func (idx *Index) KnownBefore(addr netip.Addr, t simclock.Time) bool {
	h, ok := idx.hist[addr]
	return ok && h.FirstSeen.Before(t)
}

// Size returns the number of indexed addresses.
func (idx *Index) Size() int { return len(idx.hist) }
