package scanner

import (
	"testing"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

func testPool() *ecosystem.Pool {
	topo := topology.Generate(topology.Config{Members: 20, ASesPerClass: 30, Seed: 1})
	return ecosystem.NewPool(ecosystem.PoolConfig{
		Size: 20_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2,
	}, topo)
}

func TestCoverage(t *testing.T) {
	pool := testPool()
	idx := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	share := float64(idx.Size()) / float64(pool.Len())
	// CoverageProb 0.95 minus short-lived endpoints that died before
	// any scan caught them.
	if share < 0.80 || share > 0.96 {
		t.Errorf("indexed share = %.2f", share)
	}
}

func TestHistoryBounds(t *testing.T) {
	pool := testPool()
	w := simclock.EntityPeriod()
	idx := Build(DefaultConfig(), pool, w)
	checked := 0
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		h, ok := idx.Lookup(a.Addr)
		if !ok {
			continue
		}
		checked++
		if h.FirstSeen.Before(a.Born) {
			t.Fatalf("amp %d first seen %s before born %s", i, h.FirstSeen.Date(), a.Born.Date())
		}
		if h.LastSeen.After(a.Died) {
			t.Fatalf("amp %d last seen %s after died %s", i, h.LastSeen.Date(), a.Died.Date())
		}
		if h.LastSeen.Before(h.FirstSeen) {
			t.Fatalf("amp %d last < first", i)
		}
		if h.Kind != a.Kind {
			t.Fatalf("kind mismatch")
		}
	}
	if checked < 1000 {
		t.Fatalf("too few indexed: %d", checked)
	}
}

func TestDiscoveryLag(t *testing.T) {
	pool := testPool()
	idx := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	// Mean discovery lag should reflect the detection probability
	// (geometric with p=0.9 -> mean ~0.11 days).
	var lagSum, n float64
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		if h, ok := idx.Lookup(a.Addr); ok {
			lagSum += float64(h.FirstSeen.Sub(a.Born) / simclock.Day)
			n++
		}
	}
	mean := lagSum / n
	if mean > 0.5 {
		t.Errorf("mean discovery lag = %.2f days, want < 0.5", mean)
	}
}

func TestKnownBefore(t *testing.T) {
	pool := testPool()
	idx := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	var addrFound bool
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		h, ok := idx.Lookup(a.Addr)
		if !ok {
			continue
		}
		addrFound = true
		if !idx.KnownBefore(a.Addr, h.FirstSeen.Add(simclock.Day)) {
			t.Fatal("KnownBefore false right after first sighting")
		}
		if idx.KnownBefore(a.Addr, h.FirstSeen) {
			t.Fatal("KnownBefore true at the first-sighting instant")
		}
		break
	}
	if !addrFound {
		t.Fatal("no indexed amplifier found")
	}
}

func TestDeterminism(t *testing.T) {
	pool := testPool()
	a := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	b := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	if a.Size() != b.Size() {
		t.Fatal("index sizes differ")
	}
	for i := 0; i < pool.Len(); i++ {
		addr := pool.Get(i).Addr
		ha, oka := a.Lookup(addr)
		hb, okb := b.Lookup(addr)
		if oka != okb || ha != hb {
			t.Fatal("histories differ between equal-seed builds")
		}
	}
}

func TestUnknownAddr(t *testing.T) {
	pool := testPool()
	idx := Build(DefaultConfig(), pool, simclock.EntityPeriod())
	if idx.Known(pool.Get(0).Addr) == false {
		// fine — may be uncovered; just exercise the path for a
		// definitely-unknown address:
		_ = idx
	}
	var unknown = [4]byte{9, 9, 9, 9}
	if idx.Known(ecosystem.AddrFromKey(unknown)) {
		t.Error("out-of-pool address should be unknown")
	}
}
