// Package dnssec models DNSSEC signing material and ZSK rollover schemes.
//
// The paper's Fig. 8b shows that the ANY response size of misused .gov
// names plateaus for two weeks at a time because their operators run
// automated double-signature ZSK rollovers: during a rollover the zone
// carries an extra DNSKEY record and a second, redundant RRSIG per RRset,
// inflating every signed response. This package reproduces exactly that
// mechanism — response sizes are computed from the actual DNSKEY/RRSIG
// record sets in force at a given simulated time, not hard-coded.
package dnssec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

// Scheme selects the ZSK rollover discipline of RFC 6781.
type Scheme int

// Rollover schemes.
const (
	// PrePublish introduces the new ZSK in stand-by (published but not
	// signing): one extra DNSKEY during the rollover, signature count
	// unchanged. Best practice (§6.1).
	PrePublish Scheme = iota
	// DoubleSignature keeps both ZSKs actively signing: one extra
	// DNSKEY and a doubled RRSIG set during the rollover. This is the
	// scheme the paper observes on the misused .gov names.
	DoubleSignature
)

// String names the scheme.
func (s Scheme) String() string {
	if s == DoubleSignature {
		return "double-signature"
	}
	return "pre-publish"
}

// Key material sizes (bytes of DNSKEY public-key rdata / RRSIG signature).
const (
	RSA2048KeyLen = 260 // 4-byte exponent header + 256-byte modulus
	RSA2048SigLen = 256
	RSA1024KeyLen = 132
	RSA1024SigLen = 128
	ECDSAKeyLen   = 64
	ECDSASigLen   = 64
)

// KeyLen returns the public-key rdata size for an algorithm.
func KeyLen(alg uint8) int {
	if alg == dnswire.AlgECDSAP256SHA256 {
		return ECDSAKeyLen
	}
	return RSA2048KeyLen
}

// SigLen returns the signature size for an algorithm.
func SigLen(alg uint8) int {
	if alg == dnswire.AlgECDSAP256SHA256 {
		return ECDSASigLen
	}
	return RSA2048SigLen
}

// Signer holds the signing configuration of one zone.
type Signer struct {
	Zone      string
	Algorithm uint8
	Scheme    Scheme
	// Interval is the time between consecutive rollover starts.
	Interval simclock.Duration
	// Overlap is how long old and new ZSK coexist ("plateaus ... last
	// two weeks", §6.1).
	Overlap simclock.Duration
	// Phase shifts the rollover schedule so that different zones roll
	// at different times.
	Phase simclock.Duration
	// KSKs are long-lived; we model a single static KSK.
	kskTag uint16
}

// NewSigner builds a signer with the paper-typical cadence: rollovers
// every interval days with a 14-day overlap.
func NewSigner(zone string, alg uint8, scheme Scheme, intervalDays int, phase simclock.Duration) *Signer {
	return &Signer{
		Zone:      dnswire.CanonicalName(zone),
		Algorithm: alg,
		Scheme:    scheme,
		Interval:  simclock.Days(intervalDays),
		Overlap:   simclock.Days(14),
		Phase:     phase,
		kskTag:    keyTag(zone, 0, true),
	}
}

// State is the signing material in force at one instant.
type State struct {
	// ZSKTags lists the ZSK key tags published in the DNSKEY RRset
	// (one normally, two during a rollover).
	ZSKTags []uint16
	// KSKTag is the (static) key-signing key.
	KSKTag uint16
	// SigsPerRRset is how many RRSIGs cover each authoritative RRset:
	// 1 normally; 2 during a double-signature rollover.
	SigsPerRRset int
	// InRollover reports whether a rollover overlap is in progress.
	InRollover bool
	// Generation is the index of the current (oldest active) ZSK.
	Generation int
}

// At computes the signing state at time t. Generations advance every
// Interval; during the first Overlap of each generation the previous key
// is still present.
func (s *Signer) At(t simclock.Time) State {
	if s.Interval <= 0 {
		return State{ZSKTags: []uint16{keyTag(s.Zone, 0, false)}, KSKTag: s.kskTag, SigsPerRRset: 1}
	}
	rel := int64(t) + int64(s.Phase)
	gen := int(rel / int64(s.Interval))
	if rel < 0 {
		gen--
	}
	into := rel - int64(gen)*int64(s.Interval)
	st := State{
		KSKTag:       s.kskTag,
		SigsPerRRset: 1,
		Generation:   gen,
	}
	cur := keyTag(s.Zone, gen, false)
	if into < int64(s.Overlap) && gen > 0 {
		prev := keyTag(s.Zone, gen-1, false)
		st.InRollover = true
		switch s.Scheme {
		case DoubleSignature:
			// Both keys sign: two DNSKEYs, two RRSIGs per set.
			st.ZSKTags = []uint16{prev, cur}
			st.SigsPerRRset = 2
		default: // PrePublish
			// New key published in stand-by; old key still signs alone.
			st.ZSKTags = []uint16{prev, cur}
			st.SigsPerRRset = 1
		}
	} else {
		st.ZSKTags = []uint16{cur}
	}
	return st
}

// DNSKEYRecords materializes the DNSKEY RRset at time t.
func (s *Signer) DNSKEYRecords(t simclock.Time, ttl uint32) []dnswire.RR {
	st := s.At(t)
	out := make([]dnswire.RR, 0, len(st.ZSKTags)+1)
	for _, tag := range st.ZSKTags {
		out = append(out, dnswire.RR{
			Name: s.Zone, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN, TTL: ttl,
			Data: dnswire.DNSKEYData{
				Flags: dnswire.DNSKEYFlagZSK, Protocol: 3, Algorithm: s.Algorithm,
				PublicKey: syntheticKeyMaterial(s.Zone, tag, KeyLen(s.Algorithm)),
			},
		})
	}
	out = append(out, dnswire.RR{
		Name: s.Zone, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.DNSKEYData{
			Flags: dnswire.DNSKEYFlagKSK, Protocol: 3, Algorithm: s.Algorithm,
			PublicKey: syntheticKeyMaterial(s.Zone, st.KSKTag, KeyLen(s.Algorithm)),
		},
	})
	return out
}

// Sign produces the RRSIG records covering an RRset of the given type at
// time t — one per actively signing ZSK (two during a double-signature
// rollover), except DNSKEY RRsets, which the KSK signs.
func (s *Signer) Sign(t simclock.Time, owner string, covered dnswire.Type, ttl uint32) []dnswire.RR {
	st := s.At(t)
	labels := uint8(countLabels(owner))
	mk := func(tag uint16) dnswire.RR {
		return dnswire.RR{
			Name: dnswire.CanonicalName(owner), Type: dnswire.TypeRRSIG, Class: dnswire.ClassIN, TTL: ttl,
			Data: dnswire.RRSIGData{
				TypeCovered: covered,
				Algorithm:   s.Algorithm,
				Labels:      labels,
				OriginalTTL: ttl,
				Expiration:  uint32(t.Add(simclock.Days(14))),
				Inception:   uint32(t.Add(-simclock.Days(1))),
				KeyTag:      tag,
				SignerName:  s.Zone,
				Signature:   syntheticKeyMaterial(s.Zone, tag^uint16(covered), SigLen(s.Algorithm)),
			},
		}
	}
	if covered == dnswire.TypeDNSKEY {
		sigs := []dnswire.RR{mk(st.KSKTag)}
		// During double-signature rollovers some signers also emit a
		// ZSK signature over DNSKEY; we keep the conservative single
		// KSK signature.
		return sigs
	}
	var out []dnswire.RR
	if st.SigsPerRRset >= 2 && len(st.ZSKTags) >= 2 {
		out = append(out, mk(st.ZSKTags[0]), mk(st.ZSKTags[1]))
	} else {
		// The newest key signs (pre-publish: old key until swap).
		out = append(out, mk(st.ZSKTags[0]))
	}
	return out
}

// SignatureOverheadAt returns the extra bytes that DNSSEC adds to an ANY
// response containing nRRsets authoritative RRsets at time t: the DNSKEY
// RRset itself plus all RRSIGs. This is the quantity whose time series
// produces the Fig. 8b plateaus.
func (s *Signer) SignatureOverheadAt(t simclock.Time, owner string, nRRsets int, ttl uint32) int {
	total := 0
	for _, rr := range s.DNSKEYRecords(t, ttl) {
		total += rrWireLen(rr)
	}
	for _, rr := range s.Sign(t, s.Zone, dnswire.TypeDNSKEY, ttl) {
		total += rrWireLen(rr)
	}
	perSet := s.Sign(t, owner, dnswire.TypeA, ttl) // representative covered type
	setLen := 0
	for _, rr := range perSet {
		setLen += rrWireLen(rr)
	}
	return total + nRRsets*setLen
}

// rrWireLen is the uncompressed wire length of one RR.
func rrWireLen(rr dnswire.RR) int {
	return dnswire.EncodedNameLen(rr.Name) + 10 + rr.Data.WireLen()
}

// keyTag derives a stable synthetic key tag for (zone, generation, ksk).
func keyTag(zone string, gen int, ksk bool) uint16 {
	h := sha256.New()
	h.Write([]byte(zone))
	var b [9]byte
	binary.BigEndian.PutUint64(b[:8], uint64(int64(gen)))
	if ksk {
		b[8] = 1
	}
	h.Write(b[:])
	sum := h.Sum(nil)
	tag := binary.BigEndian.Uint16(sum[:2])
	if tag == 0 {
		tag = 1
	}
	return tag
}

// syntheticKeyMaterial produces deterministic pseudo-random bytes of the
// requested length; only the size matters for amplification analysis.
func syntheticKeyMaterial(zone string, tag uint16, n int) []byte {
	out := make([]byte, 0, n)
	var ctr uint32
	for len(out) < n {
		h := sha256.New()
		fmt.Fprintf(h, "%s/%d/%d", zone, tag, ctr)
		out = h.Sum(out)
		ctr++
	}
	return out[:n]
}

func countLabels(name string) int {
	name = dnswire.CanonicalName(name)
	if name == "." {
		return 0
	}
	n := 0
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			n++
		}
	}
	return n
}
