package dnssec

import (
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

func TestSteadyState(t *testing.T) {
	s := NewSigner("example.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	// Pick a time safely outside any overlap: just before a generation
	// boundary.
	tm := simclock.Time(int64(s.Interval) - 1)
	st := s.At(tm)
	if st.InRollover {
		t.Fatal("unexpected rollover")
	}
	if len(st.ZSKTags) != 1 {
		t.Fatalf("ZSKs = %d, want 1", len(st.ZSKTags))
	}
	if st.SigsPerRRset != 1 {
		t.Fatalf("sigs per rrset = %d, want 1", st.SigsPerRRset)
	}
}

func TestDoubleSignatureRollover(t *testing.T) {
	s := NewSigner("example.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	// Time just inside generation 1's overlap.
	tm := simclock.Time(int64(s.Interval) + int64(simclock.Days(1)))
	st := s.At(tm)
	if !st.InRollover {
		t.Fatal("expected rollover")
	}
	if len(st.ZSKTags) != 2 {
		t.Fatalf("ZSKs = %d, want 2", len(st.ZSKTags))
	}
	if st.SigsPerRRset != 2 {
		t.Fatalf("sigs per rrset = %d, want 2 (double-signature)", st.SigsPerRRset)
	}
}

func TestPrePublishRollover(t *testing.T) {
	s := NewSigner("example.org", dnswire.AlgRSASHA256, PrePublish, 47, 0)
	tm := simclock.Time(int64(s.Interval) + int64(simclock.Days(1)))
	st := s.At(tm)
	if !st.InRollover {
		t.Fatal("expected rollover")
	}
	if len(st.ZSKTags) != 2 {
		t.Fatalf("ZSKs = %d, want 2 (stand-by key published)", len(st.ZSKTags))
	}
	if st.SigsPerRRset != 1 {
		t.Fatalf("sigs per rrset = %d, want 1 (pre-publish does not double-sign)", st.SigsPerRRset)
	}
}

func TestOverlapDuration(t *testing.T) {
	s := NewSigner("example.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	// Count rollover days in generation 1: must equal the 14-day overlap.
	days := 0
	for d := 0; d < 47; d++ {
		tm := simclock.Time(int64(s.Interval) + int64(simclock.Days(d)))
		if s.At(tm).InRollover {
			days++
		}
	}
	if days != 14 {
		t.Errorf("rollover days = %d, want 14", days)
	}
}

func TestGenerationAdvances(t *testing.T) {
	s := NewSigner("example.gov", dnswire.AlgRSASHA256, DoubleSignature, 30, 0)
	g0 := s.At(simclock.Time(1)).Generation
	g1 := s.At(simclock.Time(int64(simclock.Days(31)))).Generation
	g2 := s.At(simclock.Time(int64(simclock.Days(61)))).Generation
	if g1 != g0+1 || g2 != g0+2 {
		t.Errorf("generations: %d %d %d", g0, g1, g2)
	}
}

func TestKeyTagsStableAndDistinct(t *testing.T) {
	s := NewSigner("example.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	tm := simclock.Time(int64(s.Interval) + 1)
	a := s.At(tm)
	b := s.At(tm)
	if a.ZSKTags[0] != b.ZSKTags[0] || a.ZSKTags[1] != b.ZSKTags[1] {
		t.Error("key tags not stable")
	}
	if a.ZSKTags[0] == a.ZSKTags[1] {
		t.Error("old and new ZSK share a tag")
	}
	if a.KSKTag == a.ZSKTags[0] {
		t.Error("KSK and ZSK share a tag")
	}
}

func TestDNSKEYRecords(t *testing.T) {
	s := NewSigner("doj.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	steady := simclock.Time(int64(s.Interval) - 1)
	recs := s.DNSKEYRecords(steady, 3600)
	if len(recs) != 2 { // 1 ZSK + 1 KSK
		t.Fatalf("steady DNSKEYs = %d, want 2", len(recs))
	}
	roll := simclock.Time(int64(s.Interval) + 1)
	recs = s.DNSKEYRecords(roll, 3600)
	if len(recs) != 3 { // 2 ZSKs + 1 KSK
		t.Fatalf("rollover DNSKEYs = %d, want 3", len(recs))
	}
	zsk := 0
	for _, r := range recs {
		if r.Type != dnswire.TypeDNSKEY {
			t.Fatalf("wrong type %v", r.Type)
		}
		d := r.Data.(dnswire.DNSKEYData)
		if len(d.PublicKey) != RSA2048KeyLen {
			t.Errorf("key len = %d, want %d", len(d.PublicKey), RSA2048KeyLen)
		}
		if d.IsZSK() {
			zsk++
		}
	}
	if zsk != 2 {
		t.Errorf("ZSK records = %d, want 2", zsk)
	}
}

func TestSignCounts(t *testing.T) {
	s := NewSigner("doj.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	steady := simclock.Time(int64(s.Interval) - 1)
	roll := simclock.Time(int64(s.Interval) + 1)
	if got := len(s.Sign(steady, "doj.gov", dnswire.TypeA, 300)); got != 1 {
		t.Errorf("steady sigs = %d, want 1", got)
	}
	if got := len(s.Sign(roll, "doj.gov", dnswire.TypeA, 300)); got != 2 {
		t.Errorf("rollover sigs = %d, want 2", got)
	}
	// DNSKEY RRset is KSK-signed once, regardless of rollover.
	if got := len(s.Sign(roll, "doj.gov", dnswire.TypeDNSKEY, 3600)); got != 1 {
		t.Errorf("DNSKEY sigs = %d, want 1", got)
	}
	sig := s.Sign(steady, "doj.gov", dnswire.TypeA, 300)[0].Data.(dnswire.RRSIGData)
	if len(sig.Signature) != RSA2048SigLen {
		t.Errorf("sig len = %d, want %d", len(sig.Signature), RSA2048SigLen)
	}
	if sig.SignerName != "doj.gov." {
		t.Errorf("signer = %q", sig.SignerName)
	}
	if sig.TypeCovered != dnswire.TypeA {
		t.Errorf("covered = %v", sig.TypeCovered)
	}
}

func TestSignatureOverheadPlateaus(t *testing.T) {
	s := NewSigner("nsf.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	steady := simclock.Time(int64(s.Interval) - 1)
	roll := simclock.Time(int64(s.Interval) + 1)
	base := s.SignatureOverheadAt(steady, "nsf.gov", 7, 3600)
	peak := s.SignatureOverheadAt(roll, "nsf.gov", 7, 3600)
	if peak <= base {
		t.Fatalf("rollover overhead %d not above steady %d", peak, base)
	}
	// Extra = 1 DNSKEY (~270 B) + 7 extra RRSIGs (~280 B each): ≥ 2 kB.
	if peak-base < 2000 {
		t.Errorf("rollover delta = %d B, want >= 2000", peak-base)
	}
}

func TestECDSASizes(t *testing.T) {
	if KeyLen(dnswire.AlgECDSAP256SHA256) != 64 || SigLen(dnswire.AlgECDSAP256SHA256) != 64 {
		t.Error("ECDSA sizes wrong")
	}
	if KeyLen(dnswire.AlgRSASHA256) != 260 || SigLen(dnswire.AlgRSASHA256) != 256 {
		t.Error("RSA sizes wrong")
	}
	s := NewSigner("small.example", dnswire.AlgECDSAP256SHA256, PrePublish, 47, 0)
	sig := s.Sign(1, "small.example", dnswire.TypeA, 300)[0].Data.(dnswire.RRSIGData)
	if len(sig.Signature) != 64 {
		t.Errorf("ECDSA sig len = %d", len(sig.Signature))
	}
}

func TestPhaseShiftsSchedule(t *testing.T) {
	a := NewSigner("x.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	b := NewSigner("x.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, simclock.Days(20))
	tm := simclock.Time(int64(simclock.Days(47)) + 1)
	if a.At(tm).InRollover == b.At(tm).InRollover {
		// With a 20-day phase shift and 14-day overlap they cannot both
		// be rolling at the generation boundary of a.
		t.Error("phase shift had no effect")
	}
}

func TestSchemeString(t *testing.T) {
	if PrePublish.String() != "pre-publish" || DoubleSignature.String() != "double-signature" {
		t.Error("scheme names wrong")
	}
}

func TestZeroIntervalSafe(t *testing.T) {
	s := &Signer{Zone: "static.example.", Algorithm: dnswire.AlgRSASHA256}
	st := s.At(simclock.MeasurementStart)
	if len(st.ZSKTags) != 1 || st.InRollover {
		t.Errorf("zero-interval state = %+v", st)
	}
}

func TestRecordsParseable(t *testing.T) {
	// DNSKEY/RRSIG records produced by the signer must survive a wire
	// round trip through the dnswire codec.
	s := NewSigner("doj.gov", dnswire.AlgRSASHA256, DoubleSignature, 47, 0)
	roll := simclock.Time(int64(s.Interval) + 1)
	m := &dnswire.Message{
		Header:    dnswire.Header{QR: true},
		Questions: []dnswire.Question{{Name: "doj.gov.", Type: dnswire.TypeANY, Class: dnswire.ClassIN}},
	}
	m.Answers = append(m.Answers, s.DNSKEYRecords(roll, 3600)...)
	m.Answers = append(m.Answers, s.Sign(roll, "doj.gov", dnswire.TypeA, 300)...)
	res, err := dnswire.Parse(dnswire.Encode(m))
	if err != nil || !res.Complete {
		t.Fatalf("parse: %v complete=%v", err, res != nil && res.Complete)
	}
	if len(res.Msg.Answers) != len(m.Answers) {
		t.Fatalf("answers = %d, want %d", len(res.Msg.Answers), len(m.Answers))
	}
}
