package ixp

import (
	"net/netip"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

func buildFrame(t *testing.T, src, dst string, srcPort, dstPort uint16, msg *dnswire.Message, udpLen uint16) sflow.Record {
	t.Helper()
	payload := dnswire.Encode(msg)
	ip := netmodel.IPv4{
		TTL: 60, Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
	}
	udp := netmodel.UDP{SrcPort: srcPort, DstPort: dstPort, Length: udpLen}
	frame := netmodel.EncodeUDPPacket(netmodel.Ethernet{}, ip, udp, payload)
	return sflow.Record{Time: simclock.MeasurementStart, Frame: netmodel.Truncate(frame, 128), FrameLen: len(frame)}
}

func TestProcessQuery(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 10, ASesPerClass: 10, Seed: 1})
	cp := NewCapturePoint(topo, nil)
	q := dnswire.NewQuery(0x1234, "doj.gov", dnswire.TypeANY, 4096)
	rec := buildFrame(t, "192.0.2.7", "198.51.100.9", 40000, 53, q, 0)
	s, ok := cp.Process(rec)
	if !ok {
		t.Fatal("query rejected")
	}
	if s.IsResponse {
		t.Error("query flagged as response")
	}
	if s.QName != "doj.gov." || s.QType != dnswire.TypeANY || s.TXID != 0x1234 {
		t.Errorf("fields wrong: %+v", s)
	}
	if s.ClientAddr() != s.Src {
		t.Error("client of a query is its source")
	}
	if cp.Stats.Accepted != 1 {
		t.Errorf("stats: %+v", cp.Stats)
	}
}

func TestProcessResponseRecoversSize(t *testing.T) {
	cp := NewCapturePoint(nil, nil)
	q := dnswire.NewQuery(7, "nsf.gov", dnswire.TypeANY, 4096)
	resp := dnswire.NewResponse(q)
	resp.Header.ANCount = 40 // announced but not materialized
	// Claim a 5000-byte datagram while materializing only the header.
	rec := buildFrame(t, "203.0.113.5", "192.0.2.9", 53, 41000, resp, uint16(netmodel.UDPHeaderLen+5000))
	s, ok := cp.Process(rec)
	if !ok {
		t.Fatal("response rejected")
	}
	if !s.IsResponse {
		t.Error("response not flagged")
	}
	if s.MsgSize != 5000 {
		t.Errorf("MsgSize = %d, want 5000 (UDP length field)", s.MsgSize)
	}
	if s.ClientAddr() != s.Dst {
		t.Error("client of a response is its destination")
	}
}

func TestProcessRejectsNonDNSPort(t *testing.T) {
	cp := NewCapturePoint(nil, nil)
	q := dnswire.NewQuery(1, "x.test", dnswire.TypeA, 0)
	rec := buildFrame(t, "192.0.2.7", "198.51.100.9", 1234, 4321, q, 0)
	if _, ok := cp.Process(rec); ok {
		t.Error("non-53 ports should be rejected")
	}
	if cp.Stats.NonDNS != 1 {
		t.Errorf("stats: %+v", cp.Stats)
	}
}

func TestProcessRejectsMalformedName(t *testing.T) {
	cp := NewCapturePoint(nil, nil)
	q := dnswire.NewQuery(1, "bad name.test", dnswire.TypeA, 0)
	q.Questions[0].Name = "bad name.test." // bypass canonicalization
	rec := buildFrame(t, "192.0.2.7", "198.51.100.9", 4000, 53, q, 0)
	if _, ok := cp.Process(rec); ok {
		t.Error("malformed name should be dropped (sanitization)")
	}
	if cp.Stats.Malformed != 1 {
		t.Errorf("stats: %+v", cp.Stats)
	}
}

func TestProcessRejectsGarbage(t *testing.T) {
	cp := NewCapturePoint(nil, nil)
	rec := sflow.Record{Frame: []byte{1, 2, 3}}
	if _, ok := cp.Process(rec); ok {
		t.Error("garbage accepted")
	}
	if cp.Stats.NonUDP != 1 {
		t.Errorf("stats: %+v", cp.Stats)
	}
}

func TestOriginAndPeerAnnotation(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 10, ASesPerClass: 10, Seed: 1})
	cp := NewCapturePoint(topo, nil)
	// Use a real topology address as source.
	var srcAddr string
	var wantASN uint32
	for asn, as := range topo.ASes {
		if !as.IXPMember && len(as.Prefixes) > 0 {
			a := as.Prefixes[0].Addr().As4()
			a[3] = 5
			srcAddr = netip.AddrFrom4(a).String()
			wantASN = asn
			break
		}
	}
	q := dnswire.NewQuery(1, "doj.gov", dnswire.TypeANY, 0)
	rec := buildFrame(t, srcAddr, "198.51.100.9", 4000, 53, q, 0)
	s, ok := cp.Process(rec)
	if !ok {
		t.Fatal("rejected")
	}
	if s.OriginAS != wantASN {
		t.Errorf("origin AS = %d, want %d", s.OriginAS, wantASN)
	}
	if s.PeerAS != topo.MemberFor(wantASN) {
		t.Errorf("peer AS = %d, want %d", s.PeerAS, topo.MemberFor(wantASN))
	}
}

func TestVisibleNSCount(t *testing.T) {
	cp := NewCapturePoint(nil, nil)
	q := dnswire.NewQuery(7, "nsf.gov", dnswire.TypeNS, 0)
	resp := dnswire.NewResponse(q)
	for i := 0; i < 3; i++ {
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: "nsf.gov.", Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.NameData{Target: "ns1.nsf.gov."},
		})
	}
	rec := buildFrame(t, "203.0.113.5", "192.0.2.9", 53, 41000, resp, 0)
	s, ok := cp.Process(rec)
	if !ok {
		t.Fatal("rejected")
	}
	// The 128-byte snaplen clips the third record: the capture sees
	// roughly two resource records per truncated response, exactly the
	// paper's observation (§3.1).
	if s.VisibleNS != 2 {
		t.Errorf("VisibleNS = %d, want 2 (truncation)", s.VisibleNS)
	}
	if s.ANCount != 3 {
		t.Errorf("announced ANCount = %d, want 3", s.ANCount)
	}
}
