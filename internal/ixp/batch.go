package ixp

import (
	"dnsamp/internal/dnswire"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// SampleBatch is one day of sampled DNS traffic in columnar
// (struct-of-arrays) form: one slice per field, indexed 0..N-1, with
// query names as IDs into Table. The traffic generator emits batches
// instead of per-packet frame records, so the steady-state synthesis
// and consumption loops allocate nothing per packet.
//
// Every record in a batch is already well-formed DNS-over-UDP: the
// generator performs the wire-level sanitization (frame arithmetic,
// truncation, parseability of the materialized prefix) at emission time
// and accounts rejected packets in Frames/NonUDP/NonDNS, so a batch
// replays through CapturePoint.ConsumeBatch exactly as its frame-level
// twin would through Process.
type SampleBatch struct {
	// Table is the interning space of the Name column. It is typically
	// the generator's frozen table, shared by every batch of a run.
	Table *names.Table

	// N is the record count; every column has length N.
	N int

	Time      []simclock.Time
	Src, Dst  [][4]byte
	SrcPort   []uint16
	DstPort   []uint16
	IPTTL     []uint8
	IPID      []uint16
	Resp      []bool
	Name      []uint32
	QType     []dnswire.Type
	TXID      []uint16
	MsgSize   []int32
	ANCount   []uint16
	VisibleNS []uint16
	// Ingress is the member ASN whose port carried the packet, for
	// spoofed packets that cannot be attributed by source address
	// (0 = derive from the source address).
	Ingress []uint32

	// Frames counts the sampled frames behind this batch including
	// packets the wire-level sanitization would have dropped; NonUDP,
	// NonDNS and Malformed count those drops
	// (N = Frames - NonUDP - NonDNS - Malformed).
	Frames, NonUDP, NonDNS, Malformed int
}

// Grow preallocates all columns for n additional records.
func (b *SampleBatch) Grow(n int) {
	if n <= 0 {
		return
	}
	want := b.N + n
	if cap(b.Time) >= want {
		return
	}
	grow := func() int { return want }
	b.Time = append(make([]simclock.Time, 0, grow()), b.Time...)
	b.Src = append(make([][4]byte, 0, grow()), b.Src...)
	b.Dst = append(make([][4]byte, 0, grow()), b.Dst...)
	b.SrcPort = append(make([]uint16, 0, grow()), b.SrcPort...)
	b.DstPort = append(make([]uint16, 0, grow()), b.DstPort...)
	b.IPTTL = append(make([]uint8, 0, grow()), b.IPTTL...)
	b.IPID = append(make([]uint16, 0, grow()), b.IPID...)
	b.Resp = append(make([]bool, 0, grow()), b.Resp...)
	b.Name = append(make([]uint32, 0, grow()), b.Name...)
	b.QType = append(make([]dnswire.Type, 0, grow()), b.QType...)
	b.TXID = append(make([]uint16, 0, grow()), b.TXID...)
	b.MsgSize = append(make([]int32, 0, grow()), b.MsgSize...)
	b.ANCount = append(make([]uint16, 0, grow()), b.ANCount...)
	b.VisibleNS = append(make([]uint16, 0, grow()), b.VisibleNS...)
	b.Ingress = append(make([]uint32, 0, grow()), b.Ingress...)
}

// BatchRecord is the row view used to append one record to a batch.
type BatchRecord struct {
	Time      simclock.Time
	Src, Dst  [4]byte
	SrcPort   uint16
	DstPort   uint16
	IPTTL     uint8
	IPID      uint16
	Resp      bool
	Name      uint32
	QType     dnswire.Type
	TXID      uint16
	MsgSize   int32
	ANCount   uint16
	VisibleNS uint16
	Ingress   uint32
}

// Append adds one record to the batch.
func (b *SampleBatch) Append(r BatchRecord) {
	b.Time = append(b.Time, r.Time)
	b.Src = append(b.Src, r.Src)
	b.Dst = append(b.Dst, r.Dst)
	b.SrcPort = append(b.SrcPort, r.SrcPort)
	b.DstPort = append(b.DstPort, r.DstPort)
	b.IPTTL = append(b.IPTTL, r.IPTTL)
	b.IPID = append(b.IPID, r.IPID)
	b.Resp = append(b.Resp, r.Resp)
	b.Name = append(b.Name, r.Name)
	b.QType = append(b.QType, r.QType)
	b.TXID = append(b.TXID, r.TXID)
	b.MsgSize = append(b.MsgSize, r.MsgSize)
	b.ANCount = append(b.ANCount, r.ANCount)
	b.VisibleNS = append(b.VisibleNS, r.VisibleNS)
	b.Ingress = append(b.Ingress, r.Ingress)
	b.N++
}

// AppendSample appends one sanitized sample — as produced by
// CapturePoint.Process — to the batch. The sample's Name ID must live
// in the batch's Table (i.e. the producing capture point interned into
// it). ingress carries the port metadata of spoofed packets whose
// source address cannot be attributed (0 = derive at consumption time);
// AS annotations are not stored: ConsumeBatch recomputes them against
// the consumer's routing substrate.
func (b *SampleBatch) AppendSample(s *DNSSample, ingress uint32) {
	b.Append(BatchRecord{
		Time:      s.Time,
		Src:       s.Src,
		Dst:       s.Dst,
		SrcPort:   s.SrcPort,
		DstPort:   s.DstPort,
		IPTTL:     s.IPTTL,
		IPID:      s.IPID,
		Resp:      s.IsResponse,
		Name:      s.Name,
		QType:     s.QType,
		TXID:      s.TXID,
		MsgSize:   int32(s.MsgSize),
		ANCount:   s.ANCount,
		VisibleNS: uint16(s.VisibleNS),
		Ingress:   ingress,
	})
}

// RemapBatch prepares a columnar batch for batch-native consumers
// (core.Aggregator.ObserveBatch, core.Collector.ObserveBatch): it
// accumulates the batch's sanitization counters and the routing-
// coverage stats (origin/peer mapping, through the per-address AS
// cache) exactly as a full ConsumeBatch replay would, and returns a
// batch view whose Name column lives in the capture point's table
// space. Batches already carrying the capture table — the pipeline's
// steady state, where source, aggregator, and capture point share one
// frozen table — are returned as-is; foreign-table batches materialize
// a remapped Name column into a scratch view that is only valid until
// the next RemapBatch or ConsumeBatch call.
func (c *CapturePoint) RemapBatch(b *SampleBatch) *SampleBatch {
	if b == nil {
		return nil
	}
	c.Stats.Frames += b.Frames
	c.Stats.NonUDP += b.NonUDP
	c.Stats.NonDNS += b.NonDNS
	c.Stats.Malformed += b.Malformed
	c.Stats.Accepted += b.N
	if b.N == 0 {
		return b
	}
	if c.Topo != nil {
		for _, src := range b.Src[:b.N] {
			origin, peer := c.originPeer(src)
			if origin != 0 {
				c.Stats.OriginMapped++
			}
			if peer != 0 {
				c.Stats.PeerMapped++
			}
		}
	}
	if b.Table == c.Table {
		return b
	}
	if c.remapTab != b.Table {
		c.remapTab = b.Table
		c.remap = c.remap[:0]
	}
	ids := c.remapNames[:0]
	for _, id := range b.Name[:b.N] {
		ids = append(ids, c.translate(b.Table, id))
	}
	c.remapNames = ids
	c.remapView = *b
	c.remapView.Table = c.Table
	c.remapView.Name = ids
	return &c.remapView
}

// ConsumeBatch replays a columnar batch through the capture point:
// remapping batch-table name IDs into the capture point's table,
// annotating origin/peer ASNs from the routing substrate, applying
// ingress-port overrides, and accumulating sanitization stats exactly
// as the frame-level Process would. It is the per-sample compatibility
// path — kept for consumers that need one callback per packet (the
// live monitor's arrival-order processing, Replay/frame-level
// ingestion); the detection pipeline feeds RemapBatch output to the
// batch-native Observe paths instead.
//
// fn receives a reused *DNSSample — it must not be retained across
// calls. The steady-state loop performs zero allocations per record:
// the name remap cache is filled once per distinct name, and the
// sample struct is scratch storage.
func (c *CapturePoint) ConsumeBatch(b *SampleBatch, fn func(*DNSSample)) {
	rb := c.RemapBatch(b)
	if rb == nil || rb.N == 0 {
		return
	}
	b = rb
	s := &c.scratch
	for i := 0; i < b.N; i++ {
		*s = DNSSample{
			Time:       b.Time[i],
			Src:        b.Src[i],
			Dst:        b.Dst[i],
			SrcPort:    b.SrcPort[i],
			DstPort:    b.DstPort[i],
			IPTTL:      b.IPTTL[i],
			IPID:       b.IPID[i],
			IsResponse: b.Resp[i],
			Name:       b.Name[i],
			QName:      c.Table.Name(b.Name[i]),
			QType:      b.QType[i],
			TXID:       b.TXID[i],
			MsgSize:    int(b.MsgSize[i]),
			ANCount:    b.ANCount[i],
			VisibleNS:  int(b.VisibleNS[i]),
		}
		if c.Topo != nil {
			s.OriginAS, s.PeerAS = c.originPeer(b.Src[i])
		}
		if b.Ingress[i] != 0 {
			s.PeerAS = b.Ingress[i]
		}
		fn(s)
	}
}

// translate maps a batch-table name ID into the capture table through
// the lazy per-name remap cache.
func (c *CapturePoint) translate(tab *names.Table, id uint32) uint32 {
	if tab == c.Table {
		return id
	}
	for len(c.remap) <= int(id) {
		c.remap = append(c.remap, names.None)
	}
	out := c.remap[id]
	if out == names.None {
		out = c.Table.Intern(tab.Name(id))
		c.remap[id] = out
	}
	return out
}
