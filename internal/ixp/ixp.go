// Package ixp models the IXP capture point: it decodes sampled frames,
// keeps only well-formed DNS-over-UDP packets (the sanitization step of
// §3.1), and annotates each record with the origin AS and the peering-hop
// AS using the routing substrate — the metadata the paper derives from
// RIPE RIS data and IXP member information.
package ixp

import (
	"dnsamp/internal/dnswire"
	"dnsamp/internal/names"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// DNSSample is one sanitized, annotated DNS packet sample. This is the
// unit the detection pipeline consumes.
type DNSSample struct {
	Time simclock.Time

	// Addresses and ports from the IP/UDP headers.
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
	IPTTL            uint8
	IPID             uint16

	// IsResponse is the DNS QR flag. The "client" of a transaction is
	// the source of queries and the destination of responses.
	IsResponse bool
	// Name is the interned ID of the canonical first question name in
	// the capture point's names.Table. The detection hot path operates
	// on IDs only; QName carries the string for report boundaries.
	Name uint32
	// QName is the canonical first question name. It aliases the
	// interning table's storage, so assigning it never allocates.
	QName string
	// QType is the first question type.
	QType dnswire.Type
	// TXID is the DNS transaction ID.
	TXID uint16
	// MsgSize is the DNS message size recovered from the UDP length
	// field — valid even for truncated captures.
	MsgSize int
	// ANCount is the answer count announced in the header.
	ANCount uint16
	// VisibleNS counts NS records decodable from the truncated capture
	// (used for the NXNS check, §4.2).
	VisibleNS int
	// RCode of the message.
	RCode dnswire.RCode

	// OriginAS is the AS originating the source address (99% coverage
	// in the paper; 0 when unmapped).
	OriginAS uint32
	// PeerAS is the IXP member whose port carried the packet (96%
	// coverage; 0 when unmapped).
	PeerAS uint32
}

// ClientAddr returns the client side of the transaction: the source of a
// query or the destination of a response.
func (s *DNSSample) ClientAddr() [4]byte {
	if s.IsResponse {
		return s.Dst
	}
	return s.Src
}

// ServerAddr returns the server (amplifier) side of the transaction.
func (s *DNSSample) ServerAddr() [4]byte {
	if s.IsResponse {
		return s.Src
	}
	return s.Dst
}

// CapturePoint turns raw sampled frames into annotated DNS samples.
type CapturePoint struct {
	Topo *topology.Topology

	// Table is the capture point's name-interning space: every sample
	// it emits carries a Name ID of this table. Consumers sharing the
	// capture point (aggregator, collector, monitor) must use the same
	// table.
	Table *names.Table

	// Stats accumulates sanitization counters.
	Stats CaptureStats

	// scratch is the sample reused by ConsumeBatch.
	scratch DNSSample
	// remap lazily translates batch-table IDs into Table IDs; it is
	// keyed by the identity of the last batch table seen (generator
	// tables are frozen, so one cache survives across days).
	remap    []uint32
	remapTab *names.Table
}

// CaptureStats counts the sanitization pipeline outcomes.
type CaptureStats struct {
	Frames       int // sampled frames seen
	NonUDP       int // dropped: not IPv4/UDP or fragment continuation
	NonDNS       int // dropped: UDP but not port 53 / unparseable DNS
	Malformed    int // dropped: DNS but ill-formed names/types (§3.1's 3%)
	Accepted     int
	OriginMapped int
	PeerMapped   int
}

// Add accumulates another capture point's counters, combining the stats
// of per-worker capture points after a parallel pass.
func (s *CaptureStats) Add(other CaptureStats) {
	s.Frames += other.Frames
	s.NonUDP += other.NonUDP
	s.NonDNS += other.NonDNS
	s.Malformed += other.Malformed
	s.Accepted += other.Accepted
	s.OriginMapped += other.OriginMapped
	s.PeerMapped += other.PeerMapped
}

// NewCapturePoint builds a capture point over the routing substrate,
// interning names into tab (a fresh table when nil).
func NewCapturePoint(topo *topology.Topology, tab *names.Table) *CapturePoint {
	if tab == nil {
		tab = names.NewTable()
	}
	return &CapturePoint{Topo: topo, Table: tab}
}

// Process sanitizes one sampled record. ok is false when the record is
// not a well-formed DNS-over-UDP packet.
func (c *CapturePoint) Process(rec sflow.Record) (DNSSample, bool) {
	c.Stats.Frames++
	pkt, err := netmodel.DecodeFrame(rec.Frame)
	if err != nil {
		c.Stats.NonUDP++
		return DNSSample{}, false
	}
	if pkt.UDP.SrcPort != 53 && pkt.UDP.DstPort != 53 {
		c.Stats.NonDNS++
		return DNSSample{}, false
	}
	res, err := dnswire.Parse(pkt.Payload)
	if err != nil {
		c.Stats.NonDNS++
		return DNSSample{}, false
	}
	m := res.Msg
	qname := m.QName()
	if !dnswire.ValidName(qname) || m.QType() == dnswire.TypeNone {
		c.Stats.Malformed++
		return DNSSample{}, false
	}
	id := c.Table.Intern(dnswire.CanonicalName(qname))
	s := DNSSample{
		Time:       rec.Time,
		Src:        pkt.IP.Src.As4(),
		Dst:        pkt.IP.Dst.As4(),
		SrcPort:    pkt.UDP.SrcPort,
		DstPort:    pkt.UDP.DstPort,
		IPTTL:      pkt.IP.TTL,
		IPID:       pkt.IP.ID,
		IsResponse: m.Header.QR,
		Name:       id,
		QName:      c.Table.Name(id),
		QType:      m.QType(),
		TXID:       m.Header.ID,
		MsgSize:    pkt.DNSPayloadSize(),
		ANCount:    m.Header.ANCount,
		RCode:      m.Header.RCode,
	}
	for _, rr := range m.Answers {
		if rr.Type == dnswire.TypeNS {
			s.VisibleNS++
		}
	}
	for _, rr := range m.Authority {
		if rr.Type == dnswire.TypeNS {
			s.VisibleNS++
		}
	}
	if c.Topo != nil {
		src := pkt.IP.Src
		s.OriginAS = c.Topo.OriginAS(src)
		s.PeerAS = c.Topo.PeerHopAS(src)
		if s.OriginAS != 0 {
			c.Stats.OriginMapped++
		}
		if s.PeerAS != 0 {
			c.Stats.PeerMapped++
		}
	}
	c.Stats.Accepted++
	return s, true
}
