// Package ixp models the IXP capture point: it decodes sampled frames,
// keeps only well-formed DNS-over-UDP packets (the sanitization step of
// §3.1), and annotates each record with the origin AS and the peering-hop
// AS using the routing substrate — the metadata the paper derives from
// RIPE RIS data and IXP member information.
package ixp

import (
	"net/netip"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/names"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// DNSSample is one sanitized, annotated DNS packet sample. This is the
// unit the detection pipeline consumes.
type DNSSample struct {
	Time simclock.Time

	// Addresses and ports from the IP/UDP headers.
	Src, Dst         [4]byte
	SrcPort, DstPort uint16
	IPTTL            uint8
	IPID             uint16

	// IsResponse is the DNS QR flag. The "client" of a transaction is
	// the source of queries and the destination of responses.
	IsResponse bool
	// Name is the interned ID of the canonical first question name in
	// the capture point's names.Table. The detection hot path operates
	// on IDs only; QName carries the string for report boundaries.
	Name uint32
	// QName is the canonical first question name. It aliases the
	// interning table's storage, so assigning it never allocates.
	QName string
	// QType is the first question type.
	QType dnswire.Type
	// TXID is the DNS transaction ID.
	TXID uint16
	// MsgSize is the DNS message size recovered from the UDP length
	// field — valid even for truncated captures.
	MsgSize int
	// ANCount is the answer count announced in the header.
	ANCount uint16
	// VisibleNS counts NS records decodable from the truncated capture
	// (used for the NXNS check, §4.2).
	VisibleNS int
	// RCode of the message.
	RCode dnswire.RCode

	// OriginAS is the AS originating the source address (99% coverage
	// in the paper; 0 when unmapped).
	OriginAS uint32
	// PeerAS is the IXP member whose port carried the packet (96%
	// coverage; 0 when unmapped).
	PeerAS uint32
}

// ClientAddr returns the client side of the transaction: the source of a
// query or the destination of a response.
func (s *DNSSample) ClientAddr() [4]byte {
	if s.IsResponse {
		return s.Dst
	}
	return s.Src
}

// ServerAddr returns the server (amplifier) side of the transaction.
func (s *DNSSample) ServerAddr() [4]byte {
	if s.IsResponse {
		return s.Src
	}
	return s.Dst
}

// CapturePoint turns raw sampled frames into annotated DNS samples.
type CapturePoint struct {
	Topo *topology.Topology

	// Table is the capture point's name-interning space: every sample
	// it emits carries a Name ID of this table. Consumers sharing the
	// capture point (aggregator, collector, monitor) must use the same
	// table.
	Table *names.Table

	// Stats accumulates sanitization counters.
	Stats CaptureStats

	// scratch is the sample reused by ConsumeBatch.
	scratch DNSSample
	// remap lazily translates batch-table IDs into Table IDs; it is
	// keyed by the identity of the last batch table seen (generator
	// tables are frozen, so one cache survives across days).
	remap    []uint32
	remapTab *names.Table
	// remapView and remapNames back the batch view RemapBatch returns
	// for foreign-table batches (reused across calls).
	remapView  SampleBatch
	remapNames []uint32
	// asCache memoizes (origin AS, peer-hop AS) per source address:
	// client populations repeat heavily, so routing resolution drops
	// from two longest-prefix walks per packet to one cache probe.
	asCache addrASCache
}

// addrASCache is a small open-addressed cache from IPv4 source address
// to its packed (origin AS, peer-hop AS) pair. Entries are never
// evicted, but insertion stops at addrASCacheMax entries: synthetic
// campaigns stay far below it, while replayed or live traffic with
// high-cardinality spoofed sources (scans, carpet bombing) degrades to
// direct routing lookups instead of growing without bound.
type addrASCache struct {
	keys []uint32
	vals []uint64 // origin | peer<<32
	used []bool
	mask uint32
	n    int
}

// addrASCacheMax bounds the cache at 2^20 entries (2^21 slots at the
// 3/4 load bound, ~27 MB): far above any synthetic client population,
// far below an address-sweep's reach.
const addrASCacheMax = 1 << 20

func (c *addrASCache) get(key uint32) (uint64, bool) {
	if c.n == 0 {
		return 0, false
	}
	i := hashAddr(key) & c.mask
	for {
		if !c.used[i] {
			return 0, false
		}
		if c.keys[i] == key {
			return c.vals[i], true
		}
		i = (i + 1) & c.mask
	}
}

func (c *addrASCache) put(key uint32, val uint64) {
	if c.n >= addrASCacheMax {
		return
	}
	if c.keys == nil {
		c.grow(256)
	} else if (c.n+1)*4 > len(c.keys)*3 {
		c.grow(len(c.keys) * 2)
	}
	i := hashAddr(key) & c.mask
	for c.used[i] {
		if c.keys[i] == key {
			c.vals[i] = val
			return
		}
		i = (i + 1) & c.mask
	}
	c.used[i], c.keys[i], c.vals[i] = true, key, val
	c.n++
}

func (c *addrASCache) grow(size int) {
	ok, ov, ou := c.keys, c.vals, c.used
	c.keys = make([]uint32, size)
	c.vals = make([]uint64, size)
	c.used = make([]bool, size)
	c.mask = uint32(size - 1)
	for i, u := range ou {
		if u {
			j := hashAddr(ok[i]) & c.mask
			for c.used[j] {
				j = (j + 1) & c.mask
			}
			c.used[j], c.keys[j], c.vals[j] = true, ok[i], ov[i]
		}
	}
}

func hashAddr(v uint32) uint32 {
	x := uint64(v) * 0x9e3779b97f4a7c15
	return uint32(x >> 32)
}

// originPeer resolves the origin AS and peer-hop member AS of a source
// address through the per-address cache.
func (c *CapturePoint) originPeer(addr [4]byte) (origin, peer uint32) {
	key := uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
	if v, ok := c.asCache.get(key); ok {
		return uint32(v), uint32(v >> 32)
	}
	origin = c.Topo.OriginAS(netip.AddrFrom4(addr))
	peer = c.Topo.MemberFor(origin)
	c.asCache.put(key, uint64(origin)|uint64(peer)<<32)
	return origin, peer
}

// CaptureStats counts the sanitization pipeline outcomes.
type CaptureStats struct {
	Frames       int // sampled frames seen
	NonUDP       int // dropped: not IPv4/UDP or fragment continuation
	NonDNS       int // dropped: UDP but not port 53 / unparseable DNS
	Malformed    int // dropped: DNS but ill-formed names/types (§3.1's 3%)
	Accepted     int
	OriginMapped int
	PeerMapped   int
}

// Add accumulates another capture point's counters, combining the stats
// of per-worker capture points after a parallel pass.
func (s *CaptureStats) Add(other CaptureStats) {
	s.Frames += other.Frames
	s.NonUDP += other.NonUDP
	s.NonDNS += other.NonDNS
	s.Malformed += other.Malformed
	s.Accepted += other.Accepted
	s.OriginMapped += other.OriginMapped
	s.PeerMapped += other.PeerMapped
}

// NewCapturePoint builds a capture point over the routing substrate,
// interning names into tab (a fresh table when nil).
func NewCapturePoint(topo *topology.Topology, tab *names.Table) *CapturePoint {
	if tab == nil {
		tab = names.NewTable()
	}
	return &CapturePoint{Topo: topo, Table: tab}
}

// Process sanitizes one sampled record. ok is false when the record is
// not a well-formed DNS-over-UDP packet.
func (c *CapturePoint) Process(rec sflow.Record) (DNSSample, bool) {
	c.Stats.Frames++
	pkt, err := netmodel.DecodeFrame(rec.Frame)
	if err != nil {
		c.Stats.NonUDP++
		return DNSSample{}, false
	}
	if pkt.UDP.SrcPort != 53 && pkt.UDP.DstPort != 53 {
		c.Stats.NonDNS++
		return DNSSample{}, false
	}
	res, err := dnswire.Parse(pkt.Payload)
	if err != nil {
		c.Stats.NonDNS++
		return DNSSample{}, false
	}
	m := res.Msg
	qname := m.QName()
	if !dnswire.ValidName(qname) || m.QType() == dnswire.TypeNone {
		c.Stats.Malformed++
		return DNSSample{}, false
	}
	id := c.Table.Intern(dnswire.CanonicalName(qname))
	s := DNSSample{
		Time:       rec.Time,
		Src:        pkt.IP.Src.As4(),
		Dst:        pkt.IP.Dst.As4(),
		SrcPort:    pkt.UDP.SrcPort,
		DstPort:    pkt.UDP.DstPort,
		IPTTL:      pkt.IP.TTL,
		IPID:       pkt.IP.ID,
		IsResponse: m.Header.QR,
		Name:       id,
		QName:      c.Table.Name(id),
		QType:      m.QType(),
		TXID:       m.Header.ID,
		MsgSize:    pkt.DNSPayloadSize(),
		ANCount:    m.Header.ANCount,
		RCode:      m.Header.RCode,
	}
	for _, rr := range m.Answers {
		if rr.Type == dnswire.TypeNS {
			s.VisibleNS++
		}
	}
	for _, rr := range m.Authority {
		if rr.Type == dnswire.TypeNS {
			s.VisibleNS++
		}
	}
	if c.Topo != nil {
		s.OriginAS, s.PeerAS = c.originPeer(pkt.IP.Src.As4())
		if s.OriginAS != 0 {
			c.Stats.OriginMapped++
		}
		if s.PeerAS != 0 {
			c.Stats.PeerMapped++
		}
	}
	c.Stats.Accepted++
	return s, true
}
