//go:build !race

// The AllocsPerRun guards are compiled out under the race detector:
// race instrumentation adds its own allocations, which is noise, not a
// hot-path regression. CI runs them in the non-race build job.

package ixp_test

import (
	"testing"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// TestConsumeBatchZeroAllocSteadyState guards the decode/consume hot
// path end to end: replaying a warmed day batch through the capture
// point into a warmed aggregator must not allocate per packet — this is
// the loop the parallel pipeline spends its life in.
func TestConsumeBatchZeroAllocSteadyState(t *testing.T) {
	cfg := ecosystem.DefaultCampaignConfig(0.002)
	cfg.Zones.ProceduralNames = 5000
	cfg.Topology = topology.Config{Members: 12, ASesPerClass: 20, Seed: 1}
	c := ecosystem.NewCampaign(cfg)
	gen := ecosystem.NewGenerator(c, 7)
	dt := gen.Day(simclock.MeasurementStart.Add(simclock.Days(3)))
	if dt.Batch == nil || dt.Batch.N == 0 {
		t.Fatal("no batch records")
	}

	cap := ixp.NewCapturePoint(c.Topo, gen.Table())
	ag := core.NewAggregator(gen.Table(), c.DB.ExplicitNames())
	observe := func(s *ixp.DNSSample) { ag.Observe(s) }
	// Warm pass: creates every (client, day) profile and name slot.
	cap.ConsumeBatch(dt.Batch, observe)

	allocs := testing.AllocsPerRun(3, func() {
		cap.ConsumeBatch(dt.Batch, observe)
	})
	perPacket := allocs / float64(dt.Batch.N)
	if perPacket > 0.001 {
		t.Errorf("ConsumeBatch+Observe steady state: %.4f allocs/packet over %d packets, want 0",
			perPacket, dt.Batch.N)
	}
}

// TestObserveBatchZeroAllocSteadyState guards the batch-native pass-1
// loop end to end: RemapBatch (stats + routing-coverage counting over
// the warmed per-address AS cache, identity table view) feeding
// Aggregator.ObserveBatch must not allocate per batch once the name
// slots and client-day arena exist — this is the loop the pipeline's
// Aggregate stage now spends its life in.
func TestObserveBatchZeroAllocSteadyState(t *testing.T) {
	cfg := ecosystem.DefaultCampaignConfig(0.002)
	cfg.Zones.ProceduralNames = 5000
	cfg.Topology = topology.Config{Members: 12, ASesPerClass: 20, Seed: 1}
	c := ecosystem.NewCampaign(cfg)
	gen := ecosystem.NewGenerator(c, 7)
	dt := gen.Day(simclock.MeasurementStart.Add(simclock.Days(3)))
	if dt.Batch == nil || dt.Batch.N == 0 {
		t.Fatal("no batch records")
	}

	cap := ixp.NewCapturePoint(c.Topo, gen.Table())
	ag := core.NewAggregator(gen.Table(), c.DB.ExplicitNames())
	// Warm pass: fills the AS cache and creates every aggregation slot.
	ag.ObserveBatch(cap.RemapBatch(dt.Batch))

	allocs := testing.AllocsPerRun(3, func() {
		ag.ObserveBatch(cap.RemapBatch(dt.Batch))
	})
	perPacket := allocs / float64(dt.Batch.N)
	if perPacket > 0.001 {
		t.Errorf("RemapBatch+ObserveBatch steady state: %.4f allocs/packet over %d packets, want 0",
			perPacket, dt.Batch.N)
	}
}

// TestDayGenerationAllocBound guards the synthesis side: materializing
// a full day must stay far under one allocation per packet (templates,
// sensor flows, and the batch columns themselves are amortized).
func TestDayGenerationAllocBound(t *testing.T) {
	cfg := ecosystem.DefaultCampaignConfig(0.002)
	cfg.Zones.ProceduralNames = 5000
	cfg.Topology = topology.Config{Members: 12, ASesPerClass: 20, Seed: 1}
	c := ecosystem.NewCampaign(cfg)
	gen := ecosystem.NewGenerator(c, 7)
	day := simclock.MeasurementStart.Add(simclock.Days(3))
	dt := gen.Day(day)
	if dt.Batch == nil || dt.Batch.N == 0 {
		t.Fatal("no batch records")
	}

	allocs := testing.AllocsPerRun(3, func() { gen.Day(day) })
	perPacket := allocs / float64(dt.Batch.N)
	if perPacket > 0.5 {
		t.Errorf("Day generation: %.3f allocs/packet over %d packets, want < 0.5",
			perPacket, dt.Batch.N)
	}
}
