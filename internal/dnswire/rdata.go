package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"
	"strings"
)

// AData is an IPv4 address record.
type AData struct{ Addr netip.Addr }

// WireLen implements RData.
func (AData) WireLen() int { return 4 }

func (d AData) appendTo(dst []byte) []byte {
	a := d.Addr.As4()
	return append(dst, a[:]...)
}

// AAAAData is an IPv6 address record.
type AAAAData struct{ Addr netip.Addr }

// WireLen implements RData.
func (AAAAData) WireLen() int { return 16 }

func (d AAAAData) appendTo(dst []byte) []byte {
	a := d.Addr.As16()
	return append(dst, a[:]...)
}

// NameData is the rdata of NS, CNAME and PTR records: a single domain name.
type NameData struct{ Target string }

// WireLen implements RData.
func (d NameData) WireLen() int { return EncodedNameLen(d.Target) }

func (d NameData) appendTo(dst []byte) []byte { return appendName(dst, d.Target) }

// SOAData is an SOA record.
type SOAData struct {
	MName, RName                        string
	Serial, Refresh, Retry, Expire, Min uint32
}

// WireLen implements RData.
func (d SOAData) WireLen() int {
	return EncodedNameLen(d.MName) + EncodedNameLen(d.RName) + 20
}

func (d SOAData) appendTo(dst []byte) []byte {
	dst = appendName(dst, d.MName)
	dst = appendName(dst, d.RName)
	dst = binary.BigEndian.AppendUint32(dst, d.Serial)
	dst = binary.BigEndian.AppendUint32(dst, d.Refresh)
	dst = binary.BigEndian.AppendUint32(dst, d.Retry)
	dst = binary.BigEndian.AppendUint32(dst, d.Expire)
	return binary.BigEndian.AppendUint32(dst, d.Min)
}

// MXData is an MX record.
type MXData struct {
	Pref uint16
	Host string
}

// WireLen implements RData.
func (d MXData) WireLen() int { return 2 + EncodedNameLen(d.Host) }

func (d MXData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.Pref)
	return appendName(dst, d.Host)
}

// TXTData is a TXT (or SPF) record: one or more character-strings.
type TXTData struct{ Strings []string }

// WireLen implements RData.
func (d TXTData) WireLen() int {
	n := 0
	for _, s := range d.Strings {
		// Each character-string is a length octet plus up to 255 bytes;
		// longer strings are split into 255-byte chunks.
		l := len(s)
		for l > 255 {
			n += 256
			l -= 255
		}
		n += 1 + l
	}
	if len(d.Strings) == 0 {
		n = 1 // empty character-string
	}
	return n
}

func (d TXTData) appendTo(dst []byte) []byte {
	if len(d.Strings) == 0 {
		return append(dst, 0)
	}
	for _, s := range d.Strings {
		for len(s) > 255 {
			dst = append(dst, 255)
			dst = append(dst, s[:255]...)
			s = s[255:]
		}
		dst = append(dst, byte(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// SRVData is an SRV record.
type SRVData struct {
	Priority, Weight, Port uint16
	Target                 string
}

// WireLen implements RData.
func (d SRVData) WireLen() int { return 6 + EncodedNameLen(d.Target) }

func (d SRVData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.Priority)
	dst = binary.BigEndian.AppendUint16(dst, d.Weight)
	dst = binary.BigEndian.AppendUint16(dst, d.Port)
	return appendName(dst, d.Target)
}

// URIData is a URI record (RFC 7553).
type URIData struct {
	Priority, Weight uint16
	Target           string
}

// WireLen implements RData.
func (d URIData) WireLen() int { return 4 + len(d.Target) }

func (d URIData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.Priority)
	dst = binary.BigEndian.AppendUint16(dst, d.Weight)
	return append(dst, d.Target...)
}

// CAAData is a CAA record.
type CAAData struct {
	Flags uint8
	Tag   string
	Value string
}

// WireLen implements RData.
func (d CAAData) WireLen() int { return 2 + len(d.Tag) + len(d.Value) }

func (d CAAData) appendTo(dst []byte) []byte {
	dst = append(dst, d.Flags, byte(len(d.Tag)))
	dst = append(dst, d.Tag...)
	return append(dst, d.Value...)
}

// DNSKEY algorithm identifiers (RFC 8624 common subset).
const (
	AlgRSASHA256       uint8 = 8
	AlgECDSAP256SHA256 uint8 = 13
)

// DNSKEYData is a DNSKEY record. Key sizes drive the amplification
// analysis: an RSA-2048 ZSK public key is 260 bytes of key material, an
// ECDSA P-256 key 64 bytes.
type DNSKEYData struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK
	Protocol  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

// DNSKEY flag values.
const (
	DNSKEYFlagZSK uint16 = 256
	DNSKEYFlagKSK uint16 = 257
)

// WireLen implements RData.
func (d DNSKEYData) WireLen() int { return 4 + len(d.PublicKey) }

func (d DNSKEYData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.Flags)
	dst = append(dst, d.Protocol, d.Algorithm)
	return append(dst, d.PublicKey...)
}

// IsZSK reports whether the key is a zone-signing key (SEP flag clear).
func (d DNSKEYData) IsZSK() bool { return d.Flags&1 == 0 }

// RRSIGData is an RRSIG record. Signature sizes: RSA-2048 produces a
// 256-byte signature, ECDSA P-256 a 64-byte one.
type RRSIGData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// WireLen implements RData.
func (d RRSIGData) WireLen() int {
	return 18 + EncodedNameLen(d.SignerName) + len(d.Signature)
}

func (d RRSIGData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(d.TypeCovered))
	dst = append(dst, d.Algorithm, d.Labels)
	dst = binary.BigEndian.AppendUint32(dst, d.OriginalTTL)
	dst = binary.BigEndian.AppendUint32(dst, d.Expiration)
	dst = binary.BigEndian.AppendUint32(dst, d.Inception)
	dst = binary.BigEndian.AppendUint16(dst, d.KeyTag)
	dst = appendName(dst, d.SignerName)
	return append(dst, d.Signature...)
}

// DSData is a DS record.
type DSData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// WireLen implements RData.
func (d DSData) WireLen() int { return 4 + len(d.Digest) }

func (d DSData) appendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.KeyTag)
	dst = append(dst, d.Algorithm, d.DigestType)
	return append(dst, d.Digest...)
}

// NSECData is an NSEC record with a type bitmap.
type NSECData struct {
	NextName string
	Types    []Type
}

// WireLen implements RData.
func (d NSECData) WireLen() int {
	return EncodedNameLen(d.NextName) + len(encodeTypeBitmap(d.Types))
}

func (d NSECData) appendTo(dst []byte) []byte {
	dst = appendName(dst, d.NextName)
	return append(dst, encodeTypeBitmap(d.Types)...)
}

// encodeTypeBitmap builds the NSEC window-block type bitmap.
func encodeTypeBitmap(types []Type) []byte {
	if len(types) == 0 {
		return nil
	}
	sorted := append([]Type(nil), types...)
	slices.Sort(sorted)
	var out []byte
	window := -1
	var bitmap []byte
	flush := func() {
		if window >= 0 && len(bitmap) > 0 {
			out = append(out, byte(window), byte(len(bitmap)))
			out = append(out, bitmap...)
		}
	}
	for _, t := range sorted {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
			bitmap = nil
		}
		lo := int(t & 0xff)
		byteIdx := lo / 8
		for len(bitmap) <= byteIdx {
			bitmap = append(bitmap, 0)
		}
		bitmap[byteIdx] |= 0x80 >> (lo % 8)
	}
	flush()
	return out
}

// decodeTypeBitmap parses an NSEC window-block type bitmap back into a
// sorted type list.
func decodeTypeBitmap(b []byte) ([]Type, error) {
	var types []Type
	for i := 0; i < len(b); {
		if i+2 > len(b) {
			return nil, ErrTruncatedRData
		}
		window := int(b[i])
		blen := int(b[i+1])
		i += 2
		if blen == 0 || blen > 32 || i+blen > len(b) {
			return nil, ErrTruncatedRData
		}
		for j := 0; j < blen; j++ {
			for bit := 0; bit < 8; bit++ {
				if b[i+j]&(0x80>>bit) != 0 {
					types = append(types, Type(window<<8|j*8+bit))
				}
			}
		}
		i += blen
	}
	return types, nil
}

// OPTData is the EDNS0 OPT pseudo-record rdata (options only; the UDP
// payload size lives in the RR class field and the extended rcode/flags
// in the TTL field).
type OPTData struct {
	Options []EDNSOption
}

// EDNSOption is a single EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// WireLen implements RData.
func (d OPTData) WireLen() int {
	n := 0
	for _, o := range d.Options {
		n += 4 + len(o.Data)
	}
	return n
}

func (d OPTData) appendTo(dst []byte) []byte {
	for _, o := range d.Options {
		dst = binary.BigEndian.AppendUint16(dst, o.Code)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(o.Data)))
		dst = append(dst, o.Data...)
	}
	return dst
}

// RawData carries rdata of types without a decoded representation.
type RawData struct{ Bytes []byte }

// WireLen implements RData.
func (d RawData) WireLen() int { return len(d.Bytes) }

func (d RawData) appendTo(dst []byte) []byte { return append(dst, d.Bytes...) }

// EncodedNameLen returns the wire length of a domain name encoded without
// compression: one length octet per label, the label bytes, and the root
// terminator.
func EncodedNameLen(name string) int {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return 1
	}
	n := 1 // trailing root octet
	for _, label := range strings.Split(name, ".") {
		n += 1 + len(label)
	}
	return n
}

// appendName appends the uncompressed wire encoding of name.
func appendName(dst []byte, name string) []byte {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(dst, 0)
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) > 63 {
			label = label[:63]
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0)
}

// ValidName reports whether name is a well-formed domain name: non-empty
// labels of at most 63 bytes, total encoded length within 255, and only
// the LDH character set plus underscore (common in SRV owner names). The
// root name "." is valid. The detector uses this to sanitize traffic
// (§3.1: "well-formed values for ... DNS query types and names").
func ValidName(name string) bool {
	if name == "." || name == "" {
		return name == "."
	}
	trimmed := strings.TrimSuffix(name, ".")
	if EncodedNameLen(trimmed) > 255 {
		return false
	}
	for _, label := range strings.Split(trimmed, ".") {
		if len(label) == 0 || len(label) > 63 {
			return false
		}
		for i := 0; i < len(label); i++ {
			c := label[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
				c >= '0' && c <= '9', c == '-', c == '_':
			default:
				return false
			}
		}
	}
	return true
}

// CanonicalName lowercases and ensures a trailing dot, the canonical form
// used as map keys throughout the pipeline.
func CanonicalName(name string) string {
	if isCanonical(name) {
		return name
	}
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if name == "" {
		return "."
	}
	return name + "."
}

// isCanonical reports whether CanonicalName(name) == name, so the hot
// path can skip the lowering/trimming allocation for names that are
// already canonical (the overwhelmingly common case inside the
// pipeline, where names come from interning tables).
func isCanonical(name string) bool {
	if len(name) == 0 || name[len(name)-1] != '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c >= 'A' && c <= 'Z' {
			return false
		}
	}
	return true
}

// TLD returns the rightmost label of a canonical name, or "." for the
// root. "doj.gov." -> "gov".
func TLD(name string) string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return "."
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func (d AData) String() string    { return d.Addr.String() }
func (d AAAAData) String() string { return d.Addr.String() }
func (d NameData) String() string { return d.Target }
func (d TXTData) String() string  { return fmt.Sprintf("%q", d.Strings) }
