package dnswire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds random and mutated-valid byte strings to
// the parser: it must always return cleanly (an error or a partial
// result), never panic or loop — the capture point processes untrusted
// wire data.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %x: %v", data, r)
			}
		}()
		res, err := Parse(data)
		// Either outcome is fine; a success must carry a message.
		return err != nil || res.Msg != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseMutatedMessages flips bytes of valid messages — the parser
// must stay total and the question name, when decoded, must stay valid
// enough to canonicalize.
func TestParseMutatedMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := Encode(NewQuery(7, "peacecorps.gov", TypeANY, 4096))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %x: %v", mut, r)
				}
			}()
			res, err := Parse(mut)
			if err == nil && res.Msg == nil {
				t.Fatal("nil message without error")
			}
		}()
	}
}

// TestParseTruncationSweep parses a large response at every possible
// truncation point: no panics, and once the question is readable the
// name must be stable.
func TestParseTruncationSweep(t *testing.T) {
	wire := Encode(bigResponse())
	wantName := "nsf.gov."
	for cut := 0; cut <= len(wire); cut++ {
		res, err := Parse(wire[:cut])
		if err != nil {
			continue
		}
		if res.Msg.QName() != wantName {
			t.Fatalf("cut %d: qname %q", cut, res.Msg.QName())
		}
	}
	// The full message must parse completely.
	res, err := Parse(wire)
	if err != nil || !res.Complete {
		t.Fatal("full message must parse completely")
	}
}

// TestEncodeParseIdempotent re-encodes a parsed message and parses it
// again: the second round trip must agree with the first.
func TestEncodeParseIdempotent(t *testing.T) {
	wire1 := Encode(bigResponse())
	res1, err := Parse(wire1)
	if err != nil || !res1.Complete {
		t.Fatal(err)
	}
	wire2 := Encode(res1.Msg)
	res2, err := Parse(wire2)
	if err != nil || !res2.Complete {
		t.Fatal(err)
	}
	if len(res2.Msg.Answers) != len(res1.Msg.Answers) {
		t.Fatalf("answers %d vs %d", len(res2.Msg.Answers), len(res1.Msg.Answers))
	}
	for i := range res1.Msg.Answers {
		a, b := res1.Msg.Answers[i], res2.Msg.Answers[i]
		if a.Type != b.Type || a.Name != b.Name || a.TTL != b.TTL {
			t.Fatalf("answer %d differs: %+v vs %+v", i, a, b)
		}
		if a.Data.WireLen() != b.Data.WireLen() {
			t.Fatalf("answer %d rdata size differs", i)
		}
	}
}

// FuzzParse is the native coverage-guided fuzz target over the wire
// parser (CI runs a short -fuzztime smoke on every PR). It enforces the
// same totality invariants as the quick-check tests above: Parse must
// return cleanly on arbitrary input, a nil error implies a message, and
// re-encoding a parsed message must parse again.
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add(Encode(NewQuery(0x1234, "doj.gov.", TypeANY, 4096)))
	f.Add(Encode(bigResponse()))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Parse(data)
		if err != nil {
			return
		}
		if res.Msg == nil {
			t.Fatal("nil message without error")
		}
		if !res.Complete {
			return
		}
		// A completely parsed message must survive a re-encode round
		// trip.
		wire := Encode(res.Msg)
		res2, err := Parse(wire)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %v", err)
		}
		if !res2.Complete {
			t.Fatal("re-encoded message parsed incompletely")
		}
	})
}
