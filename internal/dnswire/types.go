// Package dnswire implements a DNS message codec: header, question and
// resource-record encoding and decoding with name compression, the record
// types relevant to amplification analysis (including the DNSSEC records
// DNSKEY, RRSIG, DS and NSEC and the EDNS0 OPT pseudo-record), plus
// wire-size estimation used by the OpenINTEL-style response size model.
//
// The decoder is deliberately tolerant of truncation: the IXP pipeline
// sees frames cut at 128 bytes, which always preserves the DNS header and
// (for realistic names) the first question, but rarely the full answer
// section. Parse reports how far it got instead of failing outright.
package dnswire

import "fmt"

// Type is a DNS RR type (or QTYPE).
type Type uint16

// Record and query types used by the simulation and the detector.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeSRV    Type = 33
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeOPT    Type = 41
	TypeSPF    Type = 99
	TypeCAA    Type = 257
	TypeURI    Type = 256
	TypeANY    Type = 255
	TypeAXFR   Type = 252
)

var typeNames = map[Type]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
	TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA",
	TypeSRV: "SRV", TypeDS: "DS", TypeRRSIG: "RRSIG", TypeNSEC: "NSEC",
	TypeDNSKEY: "DNSKEY", TypeOPT: "OPT", TypeSPF: "SPF", TypeCAA: "CAA",
	TypeURI: "URI", TypeANY: "ANY", TypeAXFR: "AXFR",
}

// String returns the mnemonic for t, or TYPE<n> for unknown types.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to a Type; ok is false for unknown names.
func ParseType(s string) (Type, bool) {
	for t, n := range typeNames {
		if n == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS class.
type Class uint16

// Classes. Only IN matters here; OPT abuses the class field for the UDP
// payload size.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError: "NOERROR", RCodeFormErr: "FORMERR", RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN", RCodeNotImp: "NOTIMP", RCodeRefused: "REFUSED",
}

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	if s, ok := rcodeNames[rc]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// OpCode is a DNS opcode.
type OpCode uint8

// Opcodes.
const (
	OpQuery  OpCode = 0
	OpNotify OpCode = 4
	OpUpdate OpCode = 5
)

// Header is the fixed 12-byte DNS header.
type Header struct {
	ID      uint16
	QR      bool // response flag
	OpCode  OpCode
	AA      bool // authoritative answer
	TC      bool // truncated
	RD      bool // recursion desired
	RA      bool // recursion available
	AD      bool // authenticated data (DNSSEC)
	CD      bool // checking disabled
	RCode   RCode
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// HeaderLen is the wire size of the DNS header.
const HeaderLen = 12

// Question is a DNS question entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a decoded resource record. Data holds the type-specific rdata in
// decoded form; for types without a dedicated representation RawData
// carries the raw rdata bytes.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// RData is implemented by all decoded rdata representations.
type RData interface {
	// WireLen returns the rdata length in bytes when encoded without
	// name compression (names in rdata are never compressed by our
	// encoder, matching modern server behaviour for DNSSEC types).
	WireLen() int
	// appendTo appends the encoded rdata.
	appendTo(dst []byte) []byte
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// IsQuery reports whether m is a query (QR clear).
func (m *Message) IsQuery() bool { return !m.Header.QR }

// QName returns the first question name, or "".
func (m *Message) QName() string {
	if len(m.Questions) == 0 {
		return ""
	}
	return m.Questions[0].Name
}

// QType returns the first question type, or TypeNone.
func (m *Message) QType() Type {
	if len(m.Questions) == 0 {
		return TypeNone
	}
	return m.Questions[0].Type
}

// EDNSPayloadSize returns the advertised EDNS0 UDP payload size from the
// OPT record in the additional section, or 512 (classic DNS) when absent.
func (m *Message) EDNSPayloadSize() int {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			return int(rr.Class)
		}
	}
	return 512
}

// RecommendedEDNSLimit is the EDNS payload size RFC 6891 recommends
// (4096 bytes); the paper uses it as the reference line in Fig. 8b.
const RecommendedEDNSLimit = 4096
