package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Decode errors.
var (
	ErrShortMessage   = errors.New("dnswire: message shorter than header")
	ErrBadName        = errors.New("dnswire: malformed name")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrTruncatedRData = errors.New("dnswire: truncated rdata")
)

// Encoder serializes DNS messages with owner-name compression. The zero
// value is ready to use; Reset allows reuse across messages.
type Encoder struct {
	buf     []byte
	offsets map[string]int
}

// Reset clears the encoder for reuse, keeping the buffer capacity and
// the offsets map's buckets.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	clear(e.offsets)
}

// Encode serializes m and returns the wire bytes. The returned slice is
// owned by the encoder until the next Encode/Reset; copy it if retained.
func (e *Encoder) Encode(m *Message) []byte {
	if e.offsets == nil {
		e.offsets = make(map[string]int)
	}
	e.Reset()
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))
	e.buf = appendHeader(e.buf, &h)
	for _, q := range m.Questions {
		e.appendCompressedName(q.Name)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(q.Type))
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(q.Class))
	}
	for _, rr := range m.Answers {
		e.appendRR(rr)
	}
	for _, rr := range m.Authority {
		e.appendRR(rr)
	}
	for _, rr := range m.Additional {
		e.appendRR(rr)
	}
	return e.buf
}

// Encode is a convenience wrapper around a one-shot Encoder. The result is
// freshly allocated.
func Encode(m *Message) []byte {
	var e Encoder
	return append([]byte(nil), e.Encode(m)...)
}

func appendHeader(dst []byte, h *Header) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.ID)
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.OpCode&0xf) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	if h.AD {
		flags |= 1 << 5
	}
	if h.CD {
		flags |= 1 << 4
	}
	flags |= uint16(h.RCode & 0xf)
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, h.QDCount)
	dst = binary.BigEndian.AppendUint16(dst, h.ANCount)
	dst = binary.BigEndian.AppendUint16(dst, h.NSCount)
	return binary.BigEndian.AppendUint16(dst, h.ARCount)
}

// appendCompressedName writes name using a compression pointer when any
// suffix of the name was written before within pointer range.
func (e *Encoder) appendCompressedName(name string) {
	name = strings.TrimSuffix(CanonicalName(name), ".")
	for name != "" {
		if off, ok := e.offsets[name]; ok && off < 0x3fff {
			e.buf = binary.BigEndian.AppendUint16(e.buf, 0xc000|uint16(off))
			return
		}
		if len(e.buf) < 0x3fff {
			e.offsets[name] = len(e.buf)
		}
		label := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
		} else {
			name = ""
		}
		if label == "" {
			// Empty labels (leading/consecutive dots, as produced when a
			// decoded wire label itself contains a '.' byte) have no wire
			// form: a zero length octet would terminate the name early
			// and shift every following record.
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
}

func (e *Encoder) appendRR(rr RR) {
	e.appendCompressedName(rr.Name)
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(rr.Type))
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(rr.Class))
	e.buf = binary.BigEndian.AppendUint32(e.buf, rr.TTL)
	lenOff := len(e.buf)
	e.buf = append(e.buf, 0, 0)
	if rr.Data != nil {
		e.buf = rr.Data.appendTo(e.buf)
	}
	binary.BigEndian.PutUint16(e.buf[lenOff:], uint16(len(e.buf)-lenOff-2))
}

// ParseResult reports how much of a message the tolerant parser decoded.
type ParseResult struct {
	Msg *Message
	// Complete is true when every record announced by the header was
	// decoded. False typically means the input was truncated (IXP
	// 128-byte snaplen).
	Complete bool
	// DecodedAnswers etc. count fully decoded records per section.
	DecodedAnswers, DecodedAuthority, DecodedAdditional int
}

// Parse decodes as much of b as possible. It fails only when the header
// or the first question is unreadable; truncated record sections yield a
// partial result with Complete=false — matching the paper's observation
// that the first 128 bytes always suffice to analyze queries and to see
// roughly two resource records of answers.
func Parse(b []byte) (*ParseResult, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortMessage
	}
	var m Message
	m.Header = decodeHeader(b)
	off := HeaderLen
	for i := 0; i < int(m.Header.QDCount); i++ {
		q, n, err := decodeQuestion(b, off)
		if err != nil {
			if i == 0 {
				return nil, err
			}
			return &ParseResult{Msg: &m}, nil
		}
		m.Questions = append(m.Questions, q)
		off = n
	}
	res := &ParseResult{Msg: &m}
	sections := []struct {
		count uint16
		dst   *[]RR
		done  *int
	}{
		{m.Header.ANCount, &m.Answers, &res.DecodedAnswers},
		{m.Header.NSCount, &m.Authority, &res.DecodedAuthority},
		{m.Header.ARCount, &m.Additional, &res.DecodedAdditional},
	}
	for _, sec := range sections {
		for i := 0; i < int(sec.count); i++ {
			rr, n, err := decodeRR(b, off)
			if err != nil {
				return res, nil
			}
			*sec.dst = append(*sec.dst, rr)
			*sec.done++
			off = n
		}
	}
	res.Complete = true
	return res, nil
}

func decodeHeader(b []byte) Header {
	var h Header
	h.ID = binary.BigEndian.Uint16(b[0:2])
	flags := binary.BigEndian.Uint16(b[2:4])
	h.QR = flags&(1<<15) != 0
	h.OpCode = OpCode(flags >> 11 & 0xf)
	h.AA = flags&(1<<10) != 0
	h.TC = flags&(1<<9) != 0
	h.RD = flags&(1<<8) != 0
	h.RA = flags&(1<<7) != 0
	h.AD = flags&(1<<5) != 0
	h.CD = flags&(1<<4) != 0
	h.RCode = RCode(flags & 0xf)
	h.QDCount = binary.BigEndian.Uint16(b[4:6])
	h.ANCount = binary.BigEndian.Uint16(b[6:8])
	h.NSCount = binary.BigEndian.Uint16(b[8:10])
	h.ARCount = binary.BigEndian.Uint16(b[10:12])
	return h
}

func decodeQuestion(b []byte, off int) (Question, int, error) {
	name, off, err := decodeName(b, off)
	if err != nil {
		return Question{}, 0, err
	}
	if off+4 > len(b) {
		return Question{}, 0, ErrTruncatedRData
	}
	q := Question{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(b[off : off+2])),
		Class: Class(binary.BigEndian.Uint16(b[off+2 : off+4])),
	}
	return q, off + 4, nil
}

func decodeRR(b []byte, off int) (RR, int, error) {
	name, off, err := decodeName(b, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(b) {
		return RR{}, 0, ErrTruncatedRData
	}
	rr := RR{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(b[off : off+2])),
		Class: Class(binary.BigEndian.Uint16(b[off+2 : off+4])),
		TTL:   binary.BigEndian.Uint32(b[off+4 : off+8]),
	}
	rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
	off += 10
	if off+rdlen > len(b) {
		return RR{}, 0, ErrTruncatedRData
	}
	rdata := b[off : off+rdlen]
	rr.Data, err = decodeRData(rr.Type, b, off, rdata)
	if err != nil {
		return RR{}, 0, err
	}
	return rr, off + rdlen, nil
}

// decodeRData decodes rdata; msg and absOff are needed because rdata of
// NS/CNAME/SOA/... may contain compression pointers into the message.
func decodeRData(t Type, msg []byte, absOff int, rdata []byte) (RData, error) {
	switch t {
	case TypeA:
		if len(rdata) != 4 {
			return nil, ErrTruncatedRData
		}
		var a [4]byte
		copy(a[:], rdata)
		return AData{netip.AddrFrom4(a)}, nil
	case TypeAAAA:
		if len(rdata) != 16 {
			return nil, ErrTruncatedRData
		}
		var a [16]byte
		copy(a[:], rdata)
		return AAAAData{netip.AddrFrom16(a)}, nil
	case TypeNS, TypeCNAME, TypePTR:
		name, _, err := decodeName(msg, absOff)
		if err != nil {
			return nil, err
		}
		return NameData{name}, nil
	case TypeSOA:
		mname, off, err := decodeName(msg, absOff)
		if err != nil {
			return nil, err
		}
		rname, off, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		if off+20 > len(msg) {
			return nil, ErrTruncatedRData
		}
		return SOAData{
			MName: mname, RName: rname,
			Serial:  binary.BigEndian.Uint32(msg[off : off+4]),
			Refresh: binary.BigEndian.Uint32(msg[off+4 : off+8]),
			Retry:   binary.BigEndian.Uint32(msg[off+8 : off+12]),
			Expire:  binary.BigEndian.Uint32(msg[off+12 : off+16]),
			Min:     binary.BigEndian.Uint32(msg[off+16 : off+20]),
		}, nil
	case TypeMX:
		if len(rdata) < 3 {
			return nil, ErrTruncatedRData
		}
		host, _, err := decodeName(msg, absOff+2)
		if err != nil {
			return nil, err
		}
		return MXData{Pref: binary.BigEndian.Uint16(rdata[:2]), Host: host}, nil
	case TypeTXT, TypeSPF:
		var strs []string
		for i := 0; i < len(rdata); {
			l := int(rdata[i])
			i++
			if i+l > len(rdata) {
				return nil, ErrTruncatedRData
			}
			strs = append(strs, string(rdata[i:i+l]))
			i += l
		}
		return TXTData{strs}, nil
	case TypeSRV:
		if len(rdata) < 7 {
			return nil, ErrTruncatedRData
		}
		target, _, err := decodeName(msg, absOff+6)
		if err != nil {
			return nil, err
		}
		return SRVData{
			Priority: binary.BigEndian.Uint16(rdata[0:2]),
			Weight:   binary.BigEndian.Uint16(rdata[2:4]),
			Port:     binary.BigEndian.Uint16(rdata[4:6]),
			Target:   target,
		}, nil
	case TypeURI:
		if len(rdata) < 4 {
			return nil, ErrTruncatedRData
		}
		return URIData{
			Priority: binary.BigEndian.Uint16(rdata[0:2]),
			Weight:   binary.BigEndian.Uint16(rdata[2:4]),
			Target:   string(rdata[4:]),
		}, nil
	case TypeDNSKEY:
		if len(rdata) < 4 {
			return nil, ErrTruncatedRData
		}
		return DNSKEYData{
			Flags:     binary.BigEndian.Uint16(rdata[0:2]),
			Protocol:  rdata[2],
			Algorithm: rdata[3],
			PublicKey: append([]byte(nil), rdata[4:]...),
		}, nil
	case TypeRRSIG:
		if len(rdata) < 19 {
			return nil, ErrTruncatedRData
		}
		signer, off, err := decodeName(msg, absOff+18)
		if err != nil {
			return nil, err
		}
		sigStart := off - absOff
		if sigStart > len(rdata) {
			return nil, ErrTruncatedRData
		}
		return RRSIGData{
			TypeCovered: Type(binary.BigEndian.Uint16(rdata[0:2])),
			Algorithm:   rdata[2],
			Labels:      rdata[3],
			OriginalTTL: binary.BigEndian.Uint32(rdata[4:8]),
			Expiration:  binary.BigEndian.Uint32(rdata[8:12]),
			Inception:   binary.BigEndian.Uint32(rdata[12:16]),
			KeyTag:      binary.BigEndian.Uint16(rdata[16:18]),
			SignerName:  signer,
			Signature:   append([]byte(nil), rdata[sigStart:]...),
		}, nil
	case TypeCAA:
		if len(rdata) < 2 {
			return nil, ErrTruncatedRData
		}
		tagLen := int(rdata[1])
		if 2+tagLen > len(rdata) {
			return nil, ErrTruncatedRData
		}
		return CAAData{
			Flags: rdata[0],
			Tag:   string(rdata[2 : 2+tagLen]),
			Value: string(rdata[2+tagLen:]),
		}, nil
	case TypeNSEC:
		next, off, err := decodeName(msg, absOff)
		if err != nil {
			return nil, err
		}
		bitmapStart := off - absOff
		if bitmapStart > len(rdata) {
			return nil, ErrTruncatedRData
		}
		types, err := decodeTypeBitmap(rdata[bitmapStart:])
		if err != nil {
			return nil, err
		}
		return NSECData{NextName: next, Types: types}, nil
	case TypeDS:
		if len(rdata) < 4 {
			return nil, ErrTruncatedRData
		}
		return DSData{
			KeyTag:     binary.BigEndian.Uint16(rdata[0:2]),
			Algorithm:  rdata[2],
			DigestType: rdata[3],
			Digest:     append([]byte(nil), rdata[4:]...),
		}, nil
	case TypeOPT:
		var opts []EDNSOption
		for i := 0; i+4 <= len(rdata); {
			code := binary.BigEndian.Uint16(rdata[i : i+2])
			l := int(binary.BigEndian.Uint16(rdata[i+2 : i+4]))
			i += 4
			if i+l > len(rdata) {
				return nil, ErrTruncatedRData
			}
			opts = append(opts, EDNSOption{Code: code, Data: append([]byte(nil), rdata[i:i+l]...)})
			i += l
		}
		return OPTData{opts}, nil
	default:
		return RawData{append([]byte(nil), rdata...)}, nil
	}
}

// decodeName reads a possibly-compressed name starting at off and returns
// the canonical name plus the offset just past the name in the original
// (non-pointer) position.
func decodeName(b []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // offset after the name at the original position
	jumps := 0
	for {
		if off >= len(b) {
			return "", 0, ErrTruncatedRData
		}
		c := int(b[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return strings.ToLower(name), end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, ErrTruncatedRData
			}
			if end < 0 {
				end = off + 2
			}
			ptr := (c&0x3f)<<8 | int(b[off+1])
			if ptr >= off {
				return "", 0, ErrPointerLoop
			}
			off = ptr
			jumps++
			if jumps > 64 {
				return "", 0, ErrPointerLoop
			}
		case c&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+c > len(b) {
				return "", 0, ErrTruncatedRData
			}
			sb.Write(b[off+1 : off+1+c])
			sb.WriteByte('.')
			off += 1 + c
		}
	}
}

// WireSize returns the encoded size of m in bytes without retaining the
// encoding.
func WireSize(m *Message) int {
	var e Encoder
	return len(e.Encode(m))
}

// NewQuery builds a standard recursive query for (name, type) with the
// given transaction ID, optionally advertising an EDNS0 payload size.
func NewQuery(id uint16, name string, qtype Type, ednsSize uint16) *Message {
	m := &Message{
		Header:    Header{ID: id, RD: true, OpCode: OpQuery},
		Questions: []Question{{Name: CanonicalName(name), Type: qtype, Class: ClassIN}},
	}
	if ednsSize > 0 {
		m.Additional = append(m.Additional, RR{
			Name:  ".",
			Type:  TypeOPT,
			Class: Class(ednsSize),
			Data:  OPTData{},
		})
	}
	return m
}

// NewResponse builds a response message skeleton mirroring query q.
func NewResponse(q *Message) *Message {
	m := &Message{
		Header: Header{
			ID: q.Header.ID, QR: true, OpCode: q.Header.OpCode,
			RD: q.Header.RD, RA: true,
		},
		Questions: append([]Question(nil), q.Questions...),
	}
	return m
}

// String summarizes a message for logs and examples.
func (m *Message) String() string {
	kind := "query"
	if m.Header.QR {
		kind = "response"
	}
	return fmt.Sprintf("%s id=%d %s %s an=%d ns=%d ar=%d rcode=%s",
		kind, m.Header.ID, m.QName(), m.QType(), len(m.Answers),
		len(m.Authority), len(m.Additional), m.Header.RCode)
}
