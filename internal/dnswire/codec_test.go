package dnswire

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0xBEEF, "doj.gov", TypeANY, 4096)
	wire := Encode(q)
	res, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("complete message reported incomplete")
	}
	m := res.Msg
	if m.Header.ID != 0xBEEF {
		t.Errorf("id = %#x", m.Header.ID)
	}
	if !m.IsQuery() {
		t.Error("query flagged as response")
	}
	if m.QName() != "doj.gov." {
		t.Errorf("qname = %q", m.QName())
	}
	if m.QType() != TypeANY {
		t.Errorf("qtype = %v", m.QType())
	}
	if m.EDNSPayloadSize() != 4096 {
		t.Errorf("edns size = %d", m.EDNSPayloadSize())
	}
	if !m.Header.RD {
		t.Error("RD not set")
	}
}

func TestEDNSDefault(t *testing.T) {
	q := NewQuery(1, "example.com", TypeA, 0)
	if q.EDNSPayloadSize() != 512 {
		t.Errorf("no-OPT payload size = %d, want 512", q.EDNSPayloadSize())
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func bigResponse() *Message {
	q := NewQuery(7, "nsf.gov", TypeANY, 4096)
	r := NewResponse(q)
	r.Header.AA = true
	key := make([]byte, 260)
	sig := make([]byte, 256)
	r.Answers = []RR{
		{Name: "nsf.gov.", Type: TypeA, Class: ClassIN, TTL: 300, Data: AData{mustAddr("192.0.2.10")}},
		{Name: "nsf.gov.", Type: TypeAAAA, Class: ClassIN, TTL: 300, Data: AAAAData{mustAddr("2001:db8::10")}},
		{Name: "nsf.gov.", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: NameData{"ns1.nsf.gov."}},
		{Name: "nsf.gov.", Type: TypeNS, Class: ClassIN, TTL: 3600, Data: NameData{"ns2.nsf.gov."}},
		{Name: "nsf.gov.", Type: TypeSOA, Class: ClassIN, TTL: 3600, Data: SOAData{MName: "ns1.nsf.gov.", RName: "hostmaster.nsf.gov.", Serial: 2019060100, Refresh: 7200, Retry: 3600, Expire: 1209600, Min: 300}},
		{Name: "nsf.gov.", Type: TypeMX, Class: ClassIN, TTL: 3600, Data: MXData{Pref: 10, Host: "mail.nsf.gov."}},
		{Name: "nsf.gov.", Type: TypeTXT, Class: ClassIN, TTL: 300, Data: TXTData{[]string{"v=spf1 include:_spf.nsf.gov ~all"}}},
		{Name: "nsf.gov.", Type: TypeDNSKEY, Class: ClassIN, TTL: 3600, Data: DNSKEYData{Flags: DNSKEYFlagZSK, Protocol: 3, Algorithm: AlgRSASHA256, PublicKey: key}},
		{Name: "nsf.gov.", Type: TypeDNSKEY, Class: ClassIN, TTL: 3600, Data: DNSKEYData{Flags: DNSKEYFlagKSK, Protocol: 3, Algorithm: AlgRSASHA256, PublicKey: key}},
		{Name: "nsf.gov.", Type: TypeRRSIG, Class: ClassIN, TTL: 3600, Data: RRSIGData{TypeCovered: TypeDNSKEY, Algorithm: AlgRSASHA256, Labels: 2, OriginalTTL: 3600, Expiration: 1567296000, Inception: 1559347200, KeyTag: 12345, SignerName: "nsf.gov.", Signature: sig}},
		{Name: "nsf.gov.", Type: TypeNSEC, Class: ClassIN, TTL: 300, Data: NSECData{NextName: "a.nsf.gov.", Types: []Type{TypeA, TypeNS, TypeSOA, TypeRRSIG, TypeNSEC, TypeDNSKEY}}},
		{Name: "nsf.gov.", Type: TypeSRV, Class: ClassIN, TTL: 300, Data: SRVData{Priority: 1, Weight: 5, Port: 443, Target: "www.nsf.gov."}},
		{Name: "nsf.gov.", Type: TypeURI, Class: ClassIN, TTL: 300, Data: URIData{Priority: 1, Weight: 1, Target: "https://www.nsf.gov/"}},
		{Name: "nsf.gov.", Type: TypeCAA, Class: ClassIN, TTL: 300, Data: CAAData{Flags: 0, Tag: "issue", Value: "letsencrypt.org"}},
		{Name: "nsf.gov.", Type: TypeDS, Class: ClassIN, TTL: 3600, Data: DSData{KeyTag: 99, Algorithm: AlgRSASHA256, DigestType: 2, Digest: make([]byte, 32)}},
		{Name: "nsf.gov.", Type: TypePTR, Class: ClassIN, TTL: 300, Data: NameData{"host.nsf.gov."}},
	}
	return r
}

func TestFullResponseRoundTrip(t *testing.T) {
	r := bigResponse()
	wire := Encode(r)
	res, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("expected complete parse")
	}
	m := res.Msg
	if len(m.Answers) != len(r.Answers) {
		t.Fatalf("answers = %d, want %d", len(m.Answers), len(r.Answers))
	}
	for i, rr := range m.Answers {
		if rr.Type != r.Answers[i].Type {
			t.Errorf("answer %d type = %v, want %v", i, rr.Type, r.Answers[i].Type)
		}
		if rr.Name != "nsf.gov." {
			t.Errorf("answer %d name = %q", i, rr.Name)
		}
	}
	// Spot-check a few decoded rdata values.
	if a := m.Answers[0].Data.(AData); a.Addr.String() != "192.0.2.10" {
		t.Errorf("A = %v", a.Addr)
	}
	if ns := m.Answers[2].Data.(NameData); ns.Target != "ns1.nsf.gov." {
		t.Errorf("NS = %q", ns.Target)
	}
	soa := m.Answers[4].Data.(SOAData)
	if soa.Serial != 2019060100 || soa.MName != "ns1.nsf.gov." {
		t.Errorf("SOA = %+v", soa)
	}
	dk := m.Answers[7].Data.(DNSKEYData)
	if len(dk.PublicKey) != 260 || !dk.IsZSK() {
		t.Errorf("DNSKEY = flags %d, keylen %d", dk.Flags, len(dk.PublicKey))
	}
	ksk := m.Answers[8].Data.(DNSKEYData)
	if ksk.IsZSK() {
		t.Error("KSK misclassified as ZSK")
	}
	sig := m.Answers[9].Data.(RRSIGData)
	if sig.TypeCovered != TypeDNSKEY || len(sig.Signature) != 256 || sig.SignerName != "nsf.gov." {
		t.Errorf("RRSIG = %+v", sig)
	}
	srv := m.Answers[11].Data.(SRVData)
	if srv.Port != 443 || srv.Target != "www.nsf.gov." {
		t.Errorf("SRV = %+v", srv)
	}
	uri := m.Answers[12].Data.(URIData)
	if uri.Target != "https://www.nsf.gov/" {
		t.Errorf("URI = %+v", uri)
	}
	caa := m.Answers[13].Data.(CAAData)
	if caa.Tag != "issue" || caa.Value != "letsencrypt.org" {
		t.Errorf("CAA = %+v", caa)
	}
}

func TestTruncatedParsePartial(t *testing.T) {
	r := bigResponse()
	wire := Encode(r)
	if len(wire) < 200 {
		t.Fatalf("test response too small: %d bytes", len(wire))
	}
	// Cut at the 128-byte IXP snaplen (minus the 42 bytes of L2-L4
	// headers the IXP frame would carry, DNS sees ~86 bytes; use 86).
	res, err := Parse(wire[:86])
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("truncated message reported complete")
	}
	if res.Msg.QName() != "nsf.gov." {
		t.Errorf("truncated qname = %q", res.Msg.QName())
	}
	if res.Msg.Header.ANCount != uint16(len(r.Answers)) {
		t.Errorf("header ANCount lost: %d", res.Msg.Header.ANCount)
	}
	// The paper observes ~2 RRs visible per truncated response.
	if res.DecodedAnswers == 0 {
		t.Error("expected at least one decodable answer in first 86 bytes")
	}
}

func TestParseHeaderOnlyFails(t *testing.T) {
	if _, err := Parse([]byte{0, 1, 2}); err == nil {
		t.Error("short message should fail")
	}
	// Header claims a question but there is none.
	q := NewQuery(1, "example.com", TypeA, 0)
	wire := Encode(q)
	if _, err := Parse(wire[:HeaderLen+1]); err == nil {
		t.Error("unreadable first question should fail")
	}
}

func TestNameCompression(t *testing.T) {
	// Multiple records sharing a suffix must compress.
	m := &Message{
		Header:    Header{ID: 1, QR: true},
		Questions: []Question{{Name: "a.example.com.", Type: TypeA, Class: ClassIN}},
	}
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "a.example.com.", Type: TypeA, Class: ClassIN, TTL: 60,
			Data: AData{mustAddr("192.0.2.1")},
		})
	}
	wire := Encode(m)
	// Uncompressed: each answer name costs 15 bytes; compressed: 2.
	uncompressed := HeaderLen + (15 + 4) + 10*(15+10+4)
	if len(wire) >= uncompressed {
		t.Errorf("no compression: %d bytes >= %d", len(wire), uncompressed)
	}
	res, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Msg.Answers) != 10 {
		t.Fatalf("compressed parse incomplete: %+v", res)
	}
	for _, rr := range res.Msg.Answers {
		if rr.Name != "a.example.com." {
			t.Errorf("decompressed name = %q", rr.Name)
		}
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Craft a message whose name is a self-pointer.
	b := make([]byte, HeaderLen+4)
	b[5] = 1 // QDCount = 1
	b[HeaderLen] = 0xc0
	b[HeaderLen+1] = byte(HeaderLen) // points at itself
	if _, err := Parse(b); err == nil {
		t.Error("self-pointing name should fail")
	}
}

func TestEncodedNameLen(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{".", 1},
		{"", 1},
		{"gov", 5},
		{"gov.", 5},
		{"doj.gov.", 9},
		{"a.b.c.", 7},
	}
	for _, c := range cases {
		if got := EncodedNameLen(c.name); got != c.want {
			t.Errorf("EncodedNameLen(%q) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWireSizeMatchesEncodedLen(t *testing.T) {
	r := bigResponse()
	if WireSize(r) != len(Encode(r)) {
		t.Error("WireSize disagrees with Encode length")
	}
}

func TestValidName(t *testing.T) {
	valid := []string{".", "gov.", "doj.gov.", "a-b.example.com.", "_sip._tcp.example.com.", "x123.io"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "..", "a..b.", "exa mple.com.", "bad\x00name.", strings.Repeat("a", 64) + ".com.", strings.Repeat("abcdefgh.", 32)}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := [][2]string{
		{"DOJ.GOV", "doj.gov."},
		{"doj.gov.", "doj.gov."},
		{"", "."},
		{".", "."},
	}
	for _, c := range cases {
		if got := CanonicalName(c[0]); got != c[1] {
			t.Errorf("CanonicalName(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestTLD(t *testing.T) {
	cases := [][2]string{
		{"doj.gov.", "gov"},
		{"example.co.za.", "za"},
		{".", "."},
		{"com.", "com"},
	}
	for _, c := range cases {
		if got := TLD(c[0]); got != c[1] {
			t.Errorf("TLD(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeANY.String() != "ANY" || TypeRRSIG.String() != "RRSIG" {
		t.Error("type names wrong")
	}
	if Type(9999).String() != "TYPE9999" {
		t.Error("unknown type string wrong")
	}
	if tt, ok := ParseType("DNSKEY"); !ok || tt != TypeDNSKEY {
		t.Error("ParseType failed")
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("rcode name wrong")
	}
	if RCode(15).String() != "RCODE15" {
		t.Error("unknown rcode string wrong")
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, qr, aa, tc, rd, ra, ad, cd bool, op, rc uint8) bool {
		h := Header{
			ID: id, QR: qr, AA: aa, TC: tc, RD: rd, RA: ra, AD: ad, CD: cd,
			OpCode: OpCode(op & 0xf), RCode: RCode(rc & 0xf),
		}
		m := &Message{Header: h, Questions: []Question{{Name: "x.test.", Type: TypeA, Class: ClassIN}}}
		res, err := Parse(Encode(m))
		if err != nil {
			return false
		}
		g := res.Msg.Header
		return g.ID == h.ID && g.QR == h.QR && g.AA == h.AA && g.TC == h.TC &&
			g.RD == h.RD && g.RA == h.RA && g.AD == h.AD && g.CD == h.CD &&
			g.OpCode == h.OpCode && g.RCode == h.RCode
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomNameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	letters := "abcdefghijklmnopqrstuvwxyz0123456789-"
	randName := func() string {
		labels := 1 + rng.Intn(4)
		parts := make([]string, labels)
		for i := range parts {
			n := 1 + rng.Intn(12)
			b := make([]byte, n)
			for j := range b {
				b[j] = letters[rng.Intn(len(letters)-1)] // avoid leading '-' mostly irrelevant
			}
			parts[i] = string(b)
		}
		return strings.Join(parts, ".") + "."
	}
	for i := 0; i < 300; i++ {
		name := randName()
		q := NewQuery(uint16(i), name, TypeTXT, 0)
		res, err := Parse(Encode(q))
		if err != nil {
			t.Fatalf("name %q: %v", name, err)
		}
		if res.Msg.QName() != name {
			t.Fatalf("round trip %q -> %q", name, res.Msg.QName())
		}
	}
}

func TestTXTDataWireLen(t *testing.T) {
	long := strings.Repeat("x", 600)
	d := TXTData{[]string{long}}
	enc := d.appendTo(nil)
	if len(enc) != d.WireLen() {
		t.Errorf("TXT WireLen %d != encoded %d", d.WireLen(), len(enc))
	}
	empty := TXTData{}
	if empty.WireLen() != 1 {
		t.Errorf("empty TXT WireLen = %d, want 1", empty.WireLen())
	}
}

func TestAllRDataWireLenMatchesEncoding(t *testing.T) {
	r := bigResponse()
	for i, rr := range r.Answers {
		enc := rr.Data.appendTo(nil)
		if len(enc) != rr.Data.WireLen() {
			t.Errorf("answer %d (%v): WireLen %d != encoded %d", i, rr.Type, rr.Data.WireLen(), len(enc))
		}
	}
}

func TestNSECBitmap(t *testing.T) {
	d := NSECData{NextName: "b.example.", Types: []Type{TypeA, TypeCAA}}
	enc := d.appendTo(nil)
	if len(enc) != d.WireLen() {
		t.Fatalf("NSEC WireLen mismatch: %d vs %d", d.WireLen(), len(enc))
	}
	// Two windows: 0 (A) and 1 (CAA=257).
	m := &Message{
		Header:    Header{QR: true},
		Questions: []Question{{Name: "a.example.", Type: TypeNSEC, Class: ClassIN}},
		Answers:   []RR{{Name: "a.example.", Type: TypeNSEC, Class: ClassIN, TTL: 60, Data: d}},
	}
	res, err := Parse(Encode(m))
	if err != nil || !res.Complete {
		t.Fatalf("NSEC parse: %v", err)
	}
}

func TestMessageString(t *testing.T) {
	q := NewQuery(5, "doj.gov", TypeANY, 4096)
	s := q.String()
	if !strings.Contains(s, "doj.gov.") || !strings.Contains(s, "ANY") {
		t.Errorf("String = %q", s)
	}
}

func TestRecommendedEDNSLimit(t *testing.T) {
	if RecommendedEDNSLimit != 4096 {
		t.Error("EDNS limit constant changed")
	}
}
