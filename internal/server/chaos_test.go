package server

import (
	"io"
	"net"
	"net/http"
	"testing"

	"dnsamp/internal/faults"
	"dnsamp/internal/simclock"
)

// faultyListen wraps the service's ingest socket in a fault injector —
// the Config.ListenPacket seam.
func faultyListen(inj *faults.Injector) func(addr string) (net.PacketConn, error) {
	return func(addr string) (net.PacketConn, error) {
		c, err := net.ListenPacket("udp", addr)
		if err != nil {
			return nil, err
		}
		if uc, ok := c.(*net.UDPConn); ok {
			_ = uc.SetReadBuffer(1 << 20) // best-effort, as listenPacket does
		}
		return inj.PacketConn(c), nil
	}
}

func healthzGet(t *testing.T, svc *Service) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + svc.HTTPAddr().String() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// assertConservation checks that every received datagram is accounted
// for exactly once: parse-failed, replay-skipped, shed by a tier, or
// consumed. Call only when the queue is drained.
func assertConservation(t *testing.T, svc *Service) {
	t.Helper()
	received := svc.Received()
	parse, replay := svc.parseErrors.Load(), svc.ReplaySkipped()
	sampled, shed, drops := svc.SampledOut(), svc.ShedAll(), svc.QueueDrops()
	consumed := svc.Consumed()
	if received != parse+replay+sampled+shed+drops+consumed {
		t.Fatalf("accounting leak: received %d != parse %d + replay %d + sampled %d + shedAll %d + drops %d + consumed %d",
			received, parse, replay, sampled, shed, drops, consumed)
	}
}

// TestServiceChaosGolden: a replay run through lossless faults —
// transient read errors on the service's own socket — must retry its
// way to detections identical to a clean run, ending healthy.
func TestServiceChaosGolden(t *testing.T) {
	const days, listN = 3, 29
	dgs := logDatagrams(t, wireLog(t, days).Bytes())
	wcfg := WindowConfig{Days: 2, ListSize: listN, Refresh: simclock.Hour}

	ref := startService(t, Config{TimeFromUptime: true, Window: wcfg})
	sendPaced(t, ref, dialService(t, ref), dgs)
	waitUntil(t, "clean run drained", func() bool { return ref.Consumed() == uint64(len(dgs)) })
	shutdownSvc(t, ref)
	wantDets, wantSamples := finalState(ref)
	if len(wantDets) == 0 {
		t.Fatal("clean run found no detections; the chaos comparison would be vacuous")
	}

	inj := faults.New(faults.Plan{Seed: 42, ReadErr: 0.02})
	svc := startService(t, Config{
		TimeFromUptime: true, Window: wcfg,
		ListenPacket: faultyListen(inj),
	})
	sendPaced(t, svc, dialService(t, svc), dgs)
	waitUntil(t, "faulted run drained", func() bool { return svc.Consumed() == uint64(len(dgs)) })
	if svc.readRetries.Load() == 0 || inj.Stats().ReadErrs == 0 {
		t.Fatalf("no read faults fired (retries %d, injected %d); the chaos run was a clean run",
			svc.readRetries.Load(), inj.Stats().ReadErrs)
	}
	if status, body := healthzGet(t, svc); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz after lossless faults = %d %q, want 200 ok", status, body)
	}
	shutdownSvc(t, svc)

	gotDets, gotSamples := finalState(svc)
	if gotSamples != wantSamples {
		t.Errorf("samples under lossless faults: %d, clean %d", gotSamples, wantSamples)
	}
	if len(gotDets) != len(wantDets) {
		t.Fatalf("detections: faulted %d, clean %d", len(gotDets), len(wantDets))
	}
	for i := range gotDets {
		if *gotDets[i] != *wantDets[i] {
			t.Errorf("detection %d: faulted %+v, clean %+v", i, *gotDets[i], *wantDets[i])
		}
	}
	assertConservation(t, svc)
}

// TestServiceChaosSoak: a lossy fault storm — drops, duplicates,
// reordering, corruption on the sender; transient read errors on the
// receiver — against a stalled consumer. Every datagram that reaches
// the service must be accounted for exactly once through the overload
// tiers, and once the storm passes the state machine must walk back
// to ok.
func TestServiceChaosSoak(t *testing.T) {
	const burst = 2000
	recvInj := faults.New(faults.Plan{Seed: 7, ReadErr: 0.01})
	svc := NewService(Config{
		Window:   WindowConfig{Days: 2},
		QueueLen: 64, PerSourceQueue: 64,
		ListenPacket: faultyListen(recvInj),
	})
	svc.gate = make(chan struct{})
	gateOpen := false
	openGate := func() {
		if !gateOpen {
			gateOpen = true
			close(svc.gate)
		}
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		openGate()
		shutdownSvc(t, svc)
	})

	sender, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sendInj := faults.New(faults.Plan{Seed: 11, Drop: 0.05, Dup: 0.05, Reorder: 0.05, Corrupt: 0.05})
	fconn := sendInj.PacketConn(sender)
	addr := svc.Addr()

	// The storm: a flat-out burst into a stalled consumer. Pacing bounds
	// in-flight datagrams so the kernel socket buffer never drops — the
	// conservation check needs every delivered datagram to be received.
	for i := 1; i <= burst; i++ {
		if _, err := fconn.WriteTo(miniDatagram(uint32(i)), addr); err != nil {
			t.Fatalf("sending datagram %d: %v", i, err)
		}
		if i%64 == 0 {
			st := sendInj.Stats()
			floor := uint64(i) - st.Drops + st.Dups
			if floor > 65 { // one held reorder datagram + the pacing window
				floor -= 65
			} else {
				floor = 0
			}
			waitUntil(t, "receiver to keep up", func() bool { return svc.Received() >= floor })
		}
	}
	if err := fconn.Close(); err != nil { // releases a held reorder datagram
		t.Fatal(err)
	}
	st := sendInj.Stats()
	delivered := uint64(burst) - st.Drops + st.Dups
	if st.Drops == 0 || st.Dups == 0 || st.Reorders == 0 || st.Corruptions == 0 {
		t.Fatalf("fault storm too quiet: %+v", st)
	}
	waitUntil(t, "every delivered datagram received", func() bool { return svc.Received() == delivered })

	// The stalled queue crossed the shedding tiers: degraded, 503.
	if got := svc.Health(); got != HealthDegraded {
		t.Fatalf("health after the storm = %v, want degraded", got)
	}
	if status, body := healthzGet(t, svc); status != http.StatusServiceUnavailable || body != "degraded\n" {
		t.Errorf("/healthz while degraded = %d %q, want 503 degraded", status, body)
	}
	if svc.ShedAll() == 0 || svc.SampledOut() == 0 {
		t.Errorf("overload tiers never engaged: sampledOut %d, shedAll %d", svc.SampledOut(), svc.ShedAll())
	}

	// The storm passes: drain the backlog, then feed clean traffic until
	// the hold elapses and the state machine returns to ok.
	openGate()
	waitUntil(t, "backlog drained", func() bool {
		return svc.Consumed() == svc.Received()-svc.parseErrors.Load()-svc.SampledOut()-svc.ShedAll()-svc.QueueDrops()-svc.ReplaySkipped()
	})
	assertConservation(t, svc)

	clean := dialService(t, svc)
	seq := uint32(burst)
	waitUntil(t, "service to recover", func() bool {
		if svc.Health() == HealthOK {
			return true
		}
		seq++
		clean.Write(miniDatagram(seq)) //nolint:errcheck // retried by the poll
		return false
	})
	waitUntil(t, "recovery traffic drained", func() bool {
		return svc.Consumed() == svc.Received()-svc.parseErrors.Load()-svc.SampledOut()-svc.ShedAll()-svc.QueueDrops()-svc.ReplaySkipped()
	})
	assertConservation(t, svc)
	if status, body := healthzGet(t, svc); status != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz after recovery = %d %q, want 200 ok", status, body)
	}
}
