package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dnsamp/internal/core"
	"dnsamp/internal/ingest"
	"dnsamp/internal/metrics"
)

// Detection is the JSON form of a core.Detection served by
// /detections: addresses dotted, days dated, timestamps RFC 3339.
type Detection struct {
	Victim           string  `json:"victim"`
	Day              int     `json:"day"`
	Date             string  `json:"date"`
	Packets          int     `json:"packets"`
	CandidatePackets int     `json:"candidatePackets"`
	Share            float64 `json:"share"`
	First            string  `json:"first"`
	Last             string  `json:"last"`
}

func newDetection(d *core.Detection) *Detection {
	return &Detection{
		Victim:           fmt.Sprintf("%d.%d.%d.%d", d.Victim[0], d.Victim[1], d.Victim[2], d.Victim[3]),
		Day:              d.Day,
		Date:             d.First.Date(),
		Packets:          d.Packets,
		CandidatePackets: d.CandidatePackets,
		Share:            d.Share,
		First:            d.First.String(),
		Last:             d.Last.String(),
	}
}

// SourcesPayload is the /sources response: per-collector accounting
// rows (one per observed sFlow agent, scoped by input in multi-source
// mode) plus per-input supervisor state (empty outside multi-source
// ingest mode).
type SourcesPayload struct {
	Collectors []SourceStats            `json:"collectors"`
	Inputs     []ingest.SupervisorStats `json:"inputs,omitempty"`
}

// stageJSON is the /stages row: durations human-readable, mean
// precomputed.
type stageJSON struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	Total string `json:"total"`
	Mean  string `json:"mean"`
	Max   string `json:"max"`
}

// handler builds the control-surface mux.
func (s *Service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := s.Health()
		if st == HealthDegraded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, st)
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		path, err := s.Checkpoint()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]string{"checkpoint": path})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WriteText(w)
	})
	mux.HandleFunc("/detections", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.DetectionsSnapshot())
	})
	mux.HandleFunc("/sources", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, SourcesPayload{
			Collectors: s.SourcesSnapshot(),
			Inputs:     s.InputsSnapshot(),
		})
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, r *http.Request) {
		snap := s.StagesSnapshot()
		rows := make([]stageJSON, len(snap))
		for i, st := range snap {
			rows[i] = stageJSON{
				Stage: st.Stage,
				Count: st.Count,
				Total: st.Total.String(),
				Mean:  st.Mean().String(),
				Max:   st.Max.String(),
			}
		}
		writeJSON(w, rows)
	})
	mux.HandleFunc("/window", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.WindowSnapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// registerMetrics wires every exported family. Collectors read live
// service state under the service locks at scrape time; the family
// set and order here is what docs/OPERATIONS.md documents.
func (s *Service) registerMetrics() {
	counter := func(name, help string, c metrics.Collector) { s.reg.Register(name, help, metrics.Counter, c) }
	gauge := func(name, help string, c metrics.Collector) { s.reg.Register(name, help, metrics.Gauge, c) }

	counter("ixpmon_datagrams_received_total", "sFlow datagrams read off the UDP socket.", func(emit metrics.Emit) {
		emit(float64(s.received.Load()))
	})
	counter("ixpmon_parse_errors_total", "Datagrams that failed sFlow v5 parsing.", func(emit metrics.Emit) {
		emit(float64(s.parseErrors.Load()))
	})
	counter("ixpmon_datagrams_consumed_total", "Datagrams fully drained into the window.", func(emit metrics.Emit) {
		emit(float64(s.consumed.Load()))
	})
	counter("ixpmon_queue_drops_total", "Datagrams shed by per-source backpressure.", func(emit metrics.Emit) {
		emit(float64(s.queueDrops.Load()))
	})

	// Robustness families: overload state machine, global sheds, resume
	// accounting, ingest retries, panic isolation, checkpoints.
	gauge("ixpmon_health_state", "Overload state: 0 ok, 1 recovering, 2 degraded.", func(emit metrics.Emit) {
		emit(float64(s.Health()))
	})
	counter("ixpmon_degraded_total", "Transitions into the degraded state.", func(emit metrics.Emit) {
		emit(float64(s.health.degradations.Load()))
	})
	counter("ixpmon_sampled_out_total", "Datagrams shed by tier-2 global sampling-down (1-in-2 above 3/4 queue).", func(emit metrics.Emit) {
		emit(float64(s.health.sampledOut.Load()))
	})
	counter("ixpmon_shed_all_total", "Datagrams shed by tier-3 detection-only mode (above 7/8 queue).", func(emit metrics.Emit) {
		emit(float64(s.health.shedAll.Load()))
	})
	counter("ixpmon_replay_skipped_total", "Post-resume datagrams skipped at or below the checkpointed cursor.", func(emit metrics.Emit) {
		emit(float64(s.replaySkipped.Load()))
	})
	counter("ixpmon_read_retries_total", "Transient ingest read errors retried with backoff.", func(emit metrics.Emit) {
		emit(float64(s.readRetries.Load()))
	})
	counter("ixpmon_socket_rebinds_total", "Ingest sockets rebound after dying mid-run.", func(emit metrics.Emit) {
		emit(float64(s.rebinds.Load()))
	})
	counter("ixpmon_consumer_panics_total", "Consumer panics isolated (datagram quarantined, drain continued).", func(emit metrics.Emit) {
		emit(float64(s.panics.Load()))
	})
	counter("ixpmon_checkpoints_total", "Checkpoints written successfully.", func(emit metrics.Emit) {
		emit(float64(s.ckpts.Load()))
	})
	counter("ixpmon_checkpoint_errors_total", "Checkpoint attempts that failed after retries.", func(emit metrics.Emit) {
		emit(float64(s.ckptErrors.Load()))
	})
	gauge("ixpmon_checkpoint_bytes", "Size of the newest checkpoint file.", func(emit metrics.Emit) {
		emit(float64(s.ckptBytes.Load()))
	})
	counter("ixpmon_tail_reopens_total", "Tail-log reopens after truncation or rotation.", func(emit metrics.Emit) {
		emit(float64(s.tailReopens.Load()))
	})
	gauge("ixpmon_tail_offset_bytes", "Tail-log byte offset drained into the window.", func(emit metrics.Emit) {
		emit(float64(s.TailOffset()))
	})

	// Per-source families share one snapshot-per-scrape walk.
	perSource := func(f func(st *SourceStats) float64) metrics.Collector {
		return func(emit metrics.Emit) {
			for _, st := range s.SourcesSnapshot() {
				st := st
				emit(f(&st), "agent", st.Agent, "subagent", fmt.Sprint(st.SubAgent))
			}
		}
	}
	counter("ixpmon_source_datagrams_total", "Datagrams received per collector.", perSource(func(st *SourceStats) float64 { return float64(st.Datagrams) }))
	counter("ixpmon_source_samples_total", "Flow samples received per collector.", perSource(func(st *SourceStats) float64 { return float64(st.Samples) }))
	counter("ixpmon_source_sequence_lost_total", "Datagrams presumed lost in flight (sequence gaps, net of late arrivals).", perSource(func(st *SourceStats) float64 { return float64(st.Lost) }))
	counter("ixpmon_source_out_of_order_total", "Datagrams arriving late, reordered, or duplicated.", perSource(func(st *SourceStats) float64 { return float64(st.OutOfOrder) }))
	counter("ixpmon_source_queue_drops_total", "Datagrams shed because this collector exceeded its queue share.", perSource(func(st *SourceStats) float64 { return float64(st.QueueDrops) }))
	counter("ixpmon_source_replay_skipped_total", "Post-resume datagrams skipped per collector (already consumed before the checkpoint).", perSource(func(st *SourceStats) float64 { return float64(st.ReplaySkipped) }))
	gauge("ixpmon_source_sampling_rate", "Current sampling denominator N (1-in-N) per collector.", perSource(func(st *SourceStats) float64 { return float64(st.Rate) }))
	counter("ixpmon_source_rate_changes_total", "Observed sampling-rate switches per collector.", perSource(func(st *SourceStats) float64 { return float64(st.RateChanges) }))
	gauge("ixpmon_source_agent_drops", "Agent-reported cumulative sample drops (flow-sample drops field).", perSource(func(st *SourceStats) float64 { return float64(st.AgentDrops) }))

	// Per-input supervisor families (multi-source ingest mode only: the
	// snapshot is empty otherwise, so the families emit no samples).
	perInput := func(f func(st *ingest.SupervisorStats) float64) metrics.Collector {
		return func(emit metrics.Emit) {
			for _, st := range s.InputsSnapshot() {
				st := st
				emit(f(&st), "input", st.ID)
			}
		}
	}
	stateCode := map[string]float64{"starting": 0, "healthy": 1, "backoff": 2, "quarantined": 3, "done": 4, "stopped": 5}
	gauge("ixpmon_input_state", "Supervisor state per input: 0 starting, 1 healthy, 2 backoff, 3 quarantined, 4 done, 5 stopped.", perInput(func(st *ingest.SupervisorStats) float64 { return stateCode[st.State] }))
	counter("ixpmon_input_datagrams_total", "Datagrams read per input (before parsing).", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Received) }))
	counter("ixpmon_input_parse_errors_total", "Datagrams that failed parsing per input.", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.ParseErrors) }))
	counter("ixpmon_input_emitted_total", "Datagrams delivered into the shared window queue per input.", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Emitted) }))
	counter("ixpmon_input_restarts_total", "Supervisor restarts per input (failure or stall).", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Restarts) }))
	counter("ixpmon_input_stalls_total", "Watchdog-detected stalls per input.", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Stalls) }))
	counter("ixpmon_input_panics_total", "Delivery panics contained per input (datagram quarantined).", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Panics) }))
	gauge("ixpmon_input_buffered", "Datagrams parked in the input's reorder buffer awaiting the merge policy.", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Buffered) }))
	gauge("ixpmon_input_cursor", "Resume cursor of the newest datagram emitted per input (bytes or records; kind-specific).", perInput(func(st *ingest.SupervisorStats) float64 { return float64(st.Cursor) }))

	window := func(f func(ws *WindowStats) float64) metrics.Collector {
		return func(emit metrics.Emit) {
			ws := s.WindowSnapshot()
			emit(f(&ws))
		}
	}
	gauge("ixpmon_window_current_day", "Day currently accumulating (days since the unix epoch; -1 before data).", window(func(ws *WindowStats) float64 { return float64(ws.CurDay) }))
	gauge("ixpmon_window_client_days", "Live client-day profiles in the window aggregate.", window(func(ws *WindowStats) float64 { return float64(ws.ClientDays) }))
	gauge("ixpmon_window_arena_cap", "Aggregate arena capacity (recycled-slot bound).", window(func(ws *WindowStats) float64 { return float64(ws.ArenaCap) }))
	gauge("ixpmon_window_names", "Interned DNS name universe size.", window(func(ws *WindowStats) float64 { return float64(ws.Names) }))
	gauge("ixpmon_window_list_names", "Current misused-name list size.", window(func(ws *WindowStats) float64 { return float64(ws.ListNames) }))
	counter("ixpmon_window_refreshes_total", "Name-list refreshes.", window(func(ws *WindowStats) float64 { return float64(ws.Refreshes) }))
	counter("ixpmon_window_closed_days_total", "Day-close detection sweeps.", window(func(ws *WindowStats) float64 { return float64(ws.ClosedDays) }))
	counter("ixpmon_window_evicted_total", "Client-day profiles evicted after falling out of the window.", window(func(ws *WindowStats) float64 { return float64(ws.Evicted) }))
	counter("ixpmon_window_late_samples_total", "Samples dropped for arriving older than the window.", window(func(ws *WindowStats) float64 { return float64(ws.LateSamples) }))
	counter("ixpmon_detections_total", "Detections emitted (retained plus shed to the cap).", window(func(ws *WindowStats) float64 {
		return float64(uint64(ws.Detections) + ws.DetectionsDropped)
	}))

	counter("ixpmon_stage_seconds_total", "Wall-clock seconds spent per processing stage.", func(emit metrics.Emit) {
		for _, st := range s.stages.Snapshot() {
			emit(st.Total.Seconds(), "stage", st.Stage)
		}
	})
	counter("ixpmon_stage_invocations_total", "Invocations per processing stage.", func(emit metrics.Emit) {
		for _, st := range s.stages.Snapshot() {
			emit(float64(st.Count), "stage", st.Stage)
		}
	})
	gauge("ixpmon_stage_max_seconds", "Longest single invocation per processing stage.", func(emit metrics.Emit) {
		for _, st := range s.stages.Snapshot() {
			emit(st.Max.Seconds(), "stage", st.Stage)
		}
	})
}
