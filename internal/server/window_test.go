package server

import (
	"testing"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// winSample builds a sanitized response sample at an explicit stream
// time, interned into the window's table space.
func winSample(w *Window, at simclock.Time, client byte, name string, qt dnswire.Type, size int) *ixp.DNSSample {
	tab := w.Capture().Table
	id := tab.Intern(dnswire.CanonicalName(name))
	return &ixp.DNSSample{
		Time:       at,
		Src:        [4]byte{203, 0, 113, 1},
		Dst:        [4]byte{11, 0, 0, client},
		IsResponse: true,
		Name:       id,
		QName:      tab.Name(id),
		QType:      qt,
		MsgSize:    size,
	}
}

func dayTime(day int) simclock.Time {
	return simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Hour)
}

// feedDay pushes one day of traffic: 20 amplification responses to the
// victim client (when victim != 0) and 5 benign responses to client 9.
func feedDay(w *Window, day int, victim byte) {
	at := dayTime(day)
	if victim != 0 {
		for i := 0; i < 20; i++ {
			w.Observe(winSample(w, at, victim, "amp.test", dnswire.TypeANY, 4000))
		}
	}
	for i := 0; i < 5; i++ {
		w.Observe(winSample(w, at, 9, "ok.test", dnswire.TypeA, 100))
	}
}

func TestWindowSlidesAndDetects(t *testing.T) {
	w := NewWindow(WindowConfig{Days: 2, ListSize: 1}, NewStages())

	feedDay(w, 0, 1) // victim 11.0.0.1
	if got := w.Stats(); got.ClosedDays != 0 || got.CurDay != simclock.MeasurementStart.Day() {
		t.Fatalf("before first close: %+v", got)
	}

	feedDay(w, 1, 2) // first day-1 sample closes day 0
	st := w.Stats()
	if st.ClosedDays != 1 || st.Detections != 1 {
		t.Fatalf("after day 0 close: %+v", st)
	}
	if st.Evicted != 0 {
		t.Fatalf("nothing should leave a 2-day window yet: %+v", st)
	}

	feedDay(w, 2, 0) // closes day 1, evicts day 0 (clients 1 and 9)
	st = w.Stats()
	if st.ClosedDays != 2 || st.Detections != 2 {
		t.Fatalf("after day 1 close: %+v", st)
	}
	if st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2 (day-0 clients)", st.Evicted)
	}

	// A straggler from an evicted day is dropped, not resurrected.
	before := w.Stats().ClientDays
	w.Observe(winSample(w, dayTime(0), 1, "amp.test", dnswire.TypeANY, 4000))
	st = w.Stats()
	if st.LateSamples != 1 {
		t.Fatalf("late samples = %d, want 1", st.LateSamples)
	}
	if st.ClientDays != before {
		t.Fatalf("late sample changed the aggregate: %d -> %d", before, st.ClientDays)
	}

	w.Close() // finalizes day 2 (benign only: no new detection)
	st = w.Stats()
	if st.ClosedDays != 3 || st.Detections != 2 {
		t.Fatalf("after Close: %+v", st)
	}

	dets := w.Detections()
	d0, d1 := simclock.MeasurementStart.Day(), simclock.MeasurementStart.Day()+1
	if dets[0].Day != d0 || dets[0].Victim != [4]byte{11, 0, 0, 1} {
		t.Errorf("detection 0 = %+v", dets[0])
	}
	if dets[1].Day != d1 || dets[1].Victim != [4]byte{11, 0, 0, 2} {
		t.Errorf("detection 1 = %+v", dets[1])
	}
	for _, d := range dets {
		if d.Share != 1.0 || d.Packets != 20 {
			t.Errorf("detection profile = %+v", d)
		}
	}
	if names := w.CurrentNames(); len(names) != 1 || names[0] != "amp.test." {
		t.Errorf("name list = %v", names)
	}
}

// TestWindowMatchesBatch is the in-process golden: the evicting
// streaming window must report exactly the detections of a cumulative
// batch pass with the same day-close semantics over the same samples.
func TestWindowMatchesBatch(t *testing.T) {
	const days, listN = 6, 2
	w := NewWindow(WindowConfig{Days: 2, ListSize: listN}, nil)

	// Batch reference: cumulative aggregator, per-day close-out. It
	// shares the window's interning table, so winSample IDs are valid
	// in both.
	ref := core.NewAggregator(w.Capture().Table, nil)
	ref.SetTrackAll(true)
	th := core.DefaultThresholds()
	var want []*core.Detection

	victims := []byte{1, 2, 0, 3, 0, 4}
	for day := 0; day < days; day++ {
		feedDay(w, day, victims[day])

		at := dayTime(day)
		if victims[day] != 0 {
			for i := 0; i < 20; i++ {
				ref.Observe(winSample(w, at, victims[day], "amp.test", dnswire.TypeANY, 4000))
			}
		}
		for i := 0; i < 5; i++ {
			ref.Observe(winSample(w, at, 9, "ok.test", dnswire.TypeA, 100))
		}
		nl := core.BuildNameList(listN, core.Selector1MaxSize(ref), core.Selector2ANYCount(ref))
		for _, det := range core.Detect(ref, nl.Names, th) {
			if det.Day == at.Day() {
				want = append(want, det)
			}
		}
	}
	w.Close()

	got := w.Detections()
	if len(got) != len(want) {
		t.Fatalf("detections: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if *got[i] != *want[i] {
			t.Errorf("detection %d: got %+v, want %+v", i, *got[i], *want[i])
		}
	}
	if st := w.Stats(); st.Evicted == 0 {
		t.Fatalf("6 days through a 2-day window must evict: %+v", st)
	}
}

func TestWindowIntervalRefresh(t *testing.T) {
	w := NewWindow(WindowConfig{}, nil) // default 5-minute cadence
	at := dayTime(0)
	w.Observe(winSample(w, at, 1, "a.test", dnswire.TypeA, 100))
	if got := w.Stats().Refreshes; got != 0 {
		t.Fatalf("refreshes after first sample = %d, want 0", got)
	}
	w.Observe(winSample(w, at.Add(6*simclock.Minute), 1, "a.test", dnswire.TypeA, 100))
	if got := w.Stats().Refreshes; got != 1 {
		t.Fatalf("refreshes after 6 minutes = %d, want 1", got)
	}
}
