// Multi-source ingest golden and chaos tests: the supervised scheduler
// feeding the service must reproduce the batch study exactly under
// merge-replay, keep healthy sources unaffected by a faulty neighbour,
// and survive a checkpoint/resume cycle over several active inputs
// with overlapping re-sends and zero double-counted samples.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ingest"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// splitWire writes recs round-robin across n datagram logs — each file
// time-sorted, all attributed to the same sFlow agent, so the global
// order is only recoverable by merging on capture timestamps — and
// returns the replay specs, per-file entry counts, and the total.
func splitWire(t *testing.T, dir string, recs []ecosystem.TaggedRecord, n int) ([]ingest.Spec, []int, int) {
	t.Helper()
	specs := make([]ingest.Spec, n)
	counts := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		var part []ecosystem.TaggedRecord
		for j := i; j < len(recs); j += n {
			part = append(part, recs[j])
		}
		path := filepath.Join(dir, fmt.Sprintf("part%d.sflowlog", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		encodeWire(t, f, part)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		counts[i] = countEntries(t, path)
		total += counts[i]
		sp, err := ingest.ParseSpec("replay:" + path)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = sp
	}
	return specs, counts, total
}

// countEntries re-reads a finished log and counts its datagram entries.
func countEntries(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lr, err := sflow.NewLogReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, _, err := lr.NextEntry(); err != nil {
			if err == io.EOF {
				return n
			}
			t.Fatalf("counting %s: entry %d: %v", path, n, err)
		}
		n++
	}
}

// frames reports the capture point's processed-record count: every
// sample drained into the window increments it exactly once, in any
// arrival order and regardless of timestamps — the double-counting
// meter the resume tests assert on.
func frames(svc *Service) int {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return svc.win.cp.Stats.Frames
}

// consumeCursor reads one source row's consumed datagram-seq cursor.
func consumeCursor(svc *Service, sid string, agent [4]byte, sub uint32) uint32 {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	svc.smu.Lock()
	defer svc.smu.Unlock()
	src := svc.sources[sourceKey{src: sid, agent: agent, subAgent: sub}]
	if src == nil {
		return 0
	}
	return src.cursor
}

func inputByID(stats []ingest.SupervisorStats, id string) *ingest.SupervisorStats {
	for i := range stats {
		if stats[i].ID == id {
			return &stats[i]
		}
	}
	return nil
}

func inputState(svc *Service, id string) string {
	if st := inputByID(svc.InputsSnapshot(), id); st != nil {
		return st.State
	}
	return ""
}

func allInputsDone(svc *Service, ids ...string) bool {
	for _, id := range ids {
		if inputState(svc, id) != "done" {
			return false
		}
	}
	return true
}

// assertInputConservation checks the per-source accounting identity every
// supervisor maintains: nothing read from an input vanishes untracked.
func assertInputConservation(t *testing.T, st *ingest.SupervisorStats) {
	t.Helper()
	if st.Received != st.ParseErrors+st.Panics+st.Emitted {
		t.Errorf("input %s: received %d != parseErrors %d + panics %d + emitted %d",
			st.ID, st.Received, st.ParseErrors, st.Panics, st.Emitted)
	}
}

func shutdownService(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestMultiSourceMergeGolden is the tentpole acceptance test: a 5-day
// recording split round-robin across three replay sources, merged back
// by the arrival-time policy, must produce detections byte-identical
// to the batch study over the unsplit recording — the merge must
// reconstruct the global arrival order exactly, across sources that
// all carry the same sFlow agent.
func TestMultiSourceMergeGolden(t *testing.T) {
	const days, listN = 5, 29
	recs := wireRecs(t, days)
	want := batchReference(t, wireLog(t, days).Bytes(), listN)

	dir := t.TempDir()
	specs, _, total := splitWire(t, dir, recs, 3)
	svc := startService(t, Config{
		Inputs: specs,
		Policy: ingest.PolicyArrival,
		Window: WindowConfig{Days: 2, ListSize: listN, Refresh: simclock.Hour},
	})

	ids := []string{specs[0].ID, specs[1].ID, specs[2].ID}
	waitUntil(t, "split replay consumed", func() bool {
		return svc.Consumed() == uint64(total) && allInputsDone(svc, ids...)
	})
	if drops := svc.QueueDrops(); drops != 0 {
		t.Fatalf("durable ingest shed %d datagrams", drops)
	}

	// Control surface: three supervisor rows all done and conserving,
	// three collector rows scoped by input (same agent in every file),
	// per-input metric families present.
	var payload SourcesPayload
	if err := json.Unmarshal(getBody(t, svc, "/sources"), &payload); err != nil {
		t.Fatalf("/sources: %v", err)
	}
	if len(payload.Inputs) != 3 {
		t.Fatalf("/sources inputs = %+v, want 3", payload.Inputs)
	}
	for i := range payload.Inputs {
		st := &payload.Inputs[i]
		if st.State != "done" || st.Emitted == 0 {
			t.Errorf("input %s = %+v, want done with emits", st.ID, st)
		}
		assertInputConservation(t, st)
	}
	if len(payload.Collectors) != 3 {
		t.Fatalf("/sources collectors = %+v, want one row per input", payload.Collectors)
	}
	for _, row := range payload.Collectors {
		if row.Agent != "192.0.2.1" || row.Input == "" {
			t.Errorf("collector row = %+v, want agent 192.0.2.1 scoped by input", row)
		}
	}
	metricsText := string(getBody(t, svc, "/metrics"))
	for _, family := range []string{"ixpmon_input_state", "ixpmon_input_emitted_total", "ixpmon_input_restarts_total"} {
		if !strings.Contains(metricsText, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(metricsText, fmt.Sprintf(`ixpmon_input_state{input=%q} 4`, specs[0].ID)) {
		t.Errorf("/metrics missing done-state sample for %s:\n%.800s", specs[0].ID, metricsText)
	}

	shutdownService(t, svc)
	svc.mu.Lock()
	got := svc.win.Detections()
	svc.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("detections: merged %d, batch %d\nmerged: %+v\nbatch: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("detection %d: merged %+v, batch %+v", i, *got[i], *want[i])
		}
	}
}

// blockingReader wedges every Read until the test releases it — the
// stalled-source fault.
type blockingReader struct{ release chan struct{} }

func (b blockingReader) Read([]byte) (int, error) {
	<-b.release
	return 0, io.EOF
}

// isolationTuning makes supervision decisions fast enough to observe:
// millisecond backoff, a 60 ms stall deadline, quarantine after 3
// fruitless restarts.
var isolationTuning = ingest.Tuning{
	BackoffMin:  time.Millisecond,
	BackoffMax:  5 * time.Millisecond,
	StallAfter:  60 * time.Millisecond,
	MaxRestarts: 3,
}

// assertIsolated checks the invariants every fault leg shares: both
// healthy sources drained completely and conserve their accounting,
// nothing was shed, and the service reports healthy throughout.
func assertIsolated(t *testing.T, svc *Service, good []ingest.Spec, counts []int, total int) {
	t.Helper()
	waitUntil(t, "healthy sources drained", func() bool {
		return svc.Consumed() >= uint64(total) && allInputsDone(svc, good[0].ID, good[1].ID)
	})
	snap := svc.InputsSnapshot()
	for i, sp := range good {
		st := inputByID(snap, sp.ID)
		if st == nil {
			t.Fatalf("input %s missing from snapshot %+v", sp.ID, snap)
		}
		if st.Emitted != uint64(counts[i]) || st.ParseErrors != 0 || st.Restarts != 0 {
			t.Errorf("healthy input %s disturbed: %+v, want %d clean emits", sp.ID, st, counts[i])
		}
		assertInputConservation(t, st)
	}
	if drops := svc.QueueDrops(); drops != 0 {
		t.Errorf("isolation run shed %d datagrams", drops)
	}
	if body := getBody(t, svc, "/healthz"); string(body) != "ok\n" {
		t.Errorf("/healthz = %q with one faulty source; isolation must keep the service healthy", body)
	}
}

// TestMultiSourceIsolation: one faulty source per leg — unrecoverable
// framing corruption, a wedged read, per-datagram delivery panics —
// must end up quarantined (or drained, for contained panics) while the
// two healthy sources are completely unaffected.
func TestMultiSourceIsolation(t *testing.T) {
	recs := wireRecs(t, 2)

	t.Run("corrupt-framing", func(t *testing.T) {
		dir := t.TempDir()
		good, counts, total := splitWire(t, dir, recs, 2)
		// Valid log header, then framing garbage: no resync point exists,
		// so every restart re-reads the same poison and fails again.
		badPath := filepath.Join(dir, "bad.sflowlog")
		var bad bytes.Buffer
		encodeWire(t, &bad, nil)
		if err := os.WriteFile(badPath, append(bad.Bytes(), bytes.Repeat([]byte{0xff}, 64)...), 0o644); err != nil {
			t.Fatal(err)
		}
		badSpec, err := ingest.ParseSpec("replay:" + badPath)
		if err != nil {
			t.Fatal(err)
		}
		svc := startService(t, Config{
			Inputs:       append(good[:2:2], badSpec),
			IngestTuning: isolationTuning,
			Window:       WindowConfig{Days: 2},
		})
		waitUntil(t, "corrupt source quarantined", func() bool {
			return inputState(svc, badSpec.ID) == "quarantined"
		})
		assertIsolated(t, svc, good, counts, total)

		st := inputByID(svc.InputsSnapshot(), badSpec.ID)
		if st.QuarantineReason == "" || st.Restarts < uint64(isolationTuning.MaxRestarts) {
			t.Errorf("quarantined input = %+v, want a reason after %d restarts", st, isolationTuning.MaxRestarts)
		}
		if !strings.Contains(string(getBody(t, svc, "/metrics")),
			fmt.Sprintf(`ixpmon_input_state{input=%q} 3`, badSpec.ID)) {
			t.Errorf("/metrics missing quarantined state for %s", badSpec.ID)
		}
	})

	t.Run("stall", func(t *testing.T) {
		dir := t.TempDir()
		good, counts, total := splitWire(t, dir, recs, 2)
		// A structurally fine log whose reads never return: only the
		// watchdog can notice this one.
		badPath := filepath.Join(dir, "wedged.sflowlog")
		var bad bytes.Buffer
		encodeWire(t, &bad, recs[:32])
		if err := os.WriteFile(badPath, bad.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		badSpec, err := ingest.ParseSpec("replay:" + badPath)
		if err != nil {
			t.Fatal(err)
		}
		release := make(chan struct{})
		t.Cleanup(func() { close(release) })
		svc := startService(t, Config{
			Inputs:       append(good[:2:2], badSpec),
			IngestTuning: isolationTuning,
			Window:       WindowConfig{Days: 2},
			WrapReader: func(id string, r io.Reader) io.Reader {
				if id == badSpec.ID {
					return blockingReader{release}
				}
				return r
			},
		})
		waitUntil(t, "wedged source quarantined", func() bool {
			return inputState(svc, badSpec.ID) == "quarantined"
		})
		assertIsolated(t, svc, good, counts, total)

		st := inputByID(svc.InputsSnapshot(), badSpec.ID)
		if st.Stalls == 0 || st.Emitted != 0 || st.QuarantineReason == "" {
			t.Errorf("wedged input = %+v, want watchdog stalls and no emits", st)
		}
	})

	t.Run("delivery-panic", func(t *testing.T) {
		dir := t.TempDir()
		good, counts, total := splitWire(t, dir, recs, 2)
		badPath := filepath.Join(dir, "panicky.sflowlog")
		f, err := os.Create(badPath)
		if err != nil {
			t.Fatal(err)
		}
		encodeWire(t, f, recs[:300])
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		badEntries := countEntries(t, badPath)
		badSpec, err := ingest.ParseSpec("replay:" + badPath)
		if err != nil {
			t.Fatal(err)
		}
		stateDir := filepath.Join(dir, "state")
		svc := startService(t, Config{
			Inputs:          append(good[:2:2], badSpec),
			IngestTuning:    isolationTuning,
			Window:          WindowConfig{Days: 2},
			StateDir:        stateDir,
			CheckpointEvery: -1,
			IngestFaultPanic: func(id string, dg *sflow.Datagram) bool {
				return id == badSpec.ID
			},
		})
		waitUntil(t, "panicking source drained", func() bool {
			return inputState(svc, badSpec.ID) == "done"
		})
		assertIsolated(t, svc, good, counts, total)

		// Containment, not death: every delivery panicked, every datagram
		// was quarantined to a source-named poison file, and the source
		// still ran its input to completion.
		st := inputByID(svc.InputsSnapshot(), badSpec.ID)
		if st.Panics != uint64(badEntries) || st.Emitted != 0 {
			t.Errorf("panicking input = %+v, want %d contained panics and no emits", st, badEntries)
		}
		poisons, _ := filepath.Glob(filepath.Join(stateDir, "poison-replay_*.sflow"))
		if len(poisons) != badEntries {
			t.Errorf("poison files = %d, want %d source-scoped files", len(poisons), badEntries)
		}
	})
}

// sendSeq sends one single-sample datagram and waits until the
// consumer has drained it (verified through the row's consume cursor),
// making lossy-transport sends deterministic.
func sendSeq(t *testing.T, svc *Service, conn net.Conn, sid string, agent [4]byte, seq uint32) {
	t.Helper()
	dg := sflow.EncodeDatagram(&sflow.Datagram{
		Agent: agent, Seq: seq,
		Samples: []sflow.FlowSample{{Seq: seq, Rate: 2048, FrameLen: 64, Header: []byte{9, 9, byte(seq >> 8), byte(seq)}}},
	})
	waitUntil(t, fmt.Sprintf("datagram %d consumed", seq), func() bool {
		if consumeCursor(svc, sid, agent, 0) >= seq {
			return true
		}
		conn.Write(dg) //nolint:errcheck // re-sent until consumed
		time.Sleep(time.Millisecond)
		return false
	})
}

// appendEntries appends hand-encoded one-sample entries to a datagram
// log, bypassing LogWriter: an appender must not re-emit the file
// header, and the tests control datagram sequence numbers directly (a
// rotated real-world writer keeps counting where a fresh LogWriter
// would restart).
func appendEntries(t *testing.T, path string, agent [4]byte, firstSeq uint32, start simclock.Time, n int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		seq := firstSeq + uint32(i)
		body := sflow.EncodeDatagram(&sflow.Datagram{
			Agent: agent, Seq: seq,
			Samples: []sflow.FlowSample{{Seq: seq, Rate: sflow.DefaultRate, FrameLen: 64, Header: []byte{0xde, 0xad, byte(seq >> 8), byte(seq)}}},
		})
		var hdr [12]byte
		binary.LittleEndian.PutUint64(hdr[:8], uint64(start.Add(simclock.Duration(i))))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(body)))
		if _, err := f.Write(append(hdr[:], body...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiSourceResumeRoundTrip: a checkpointed service over three
// active inputs — two replay files and a UDP listener — is restarted;
// the replay files have grown and the UDP sender re-sends its entire
// overlapping window. The resumed service must consume exactly the new
// data: restored per-input cursors skip everything the replay files
// already delivered, and the sequence barrier skips every re-sent UDP
// datagram, with not one sample double-counted.
func TestMultiSourceResumeRoundTrip(t *testing.T) {
	recs := wireRecs(t, 2)
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	replays, _, total := splitWire(t, dir, recs, 2)
	udpSpec, err := ingest.ParseSpec("udp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inputs := append(replays[:2:2], udpSpec)
	cfg := func(resume bool) Config {
		return Config{
			Inputs: inputs, Window: WindowConfig{Days: 2},
			StateDir: stateDir, CheckpointEvery: -1, Resume: resume,
		}
	}
	agent := [4]byte{203, 0, 113, 5}
	dialInput := func(svc *Service) net.Conn {
		var addr string
		waitUntil(t, "udp source bound", func() bool {
			addr = svc.Ingest().Addr(udpSpec.ID)
			return addr != ""
		})
		conn, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}

	// Run 1: drain both replay files, take 30 UDP datagrams, shut down
	// (the shutdown checkpoint carries all three inputs' cursors).
	svc1 := startService(t, cfg(false))
	waitUntil(t, "replays drained", func() bool {
		return svc1.Consumed() >= uint64(total) && allInputsDone(svc1, replays[0].ID, replays[1].ID)
	})
	conn := dialInput(svc1)
	for seq := uint32(1); seq <= 30; seq++ {
		sendSeq(t, svc1, conn, udpSpec.ID, agent, seq)
	}
	shutdownService(t, svc1)
	for _, sp := range replays {
		if c := svc1.InputCursor(sp.ID); c <= 0 {
			t.Fatalf("input %s cursor = %d after drain, want positive", sp.ID, c)
		}
	}

	// The inputs move on while the service is down: each replay file
	// grows by 10 entries (sequence numbers far above the old ones —
	// cursor resume, not sequence matching, must place the read).
	grown := simclock.MeasurementStart.Add(simclock.Days(2))
	for _, sp := range replays {
		appendEntries(t, sp.Path, [4]byte{192, 0, 2, 1}, 1000, grown, 10)
	}

	// Run 2: resume. The replays must deliver exactly the 10 appended
	// entries each; the re-sent UDP window 1..30 must be skipped by the
	// restored barrier; 20 genuinely new datagrams follow.
	svc2 := startService(t, cfg(true))
	if svc2.ResumedFrom() == "" {
		t.Fatal("run 2 did not resume from a checkpoint")
	}
	waitUntil(t, "appended entries consumed", func() bool {
		return allInputsDone(svc2, replays[0].ID, replays[1].ID) && frames(svc2) >= len(recs)+30+20
	})
	conn2 := dialInput(svc2)
	for seq := uint32(1); seq <= 30; seq++ {
		if _, err := conn2.Write(sflow.EncodeDatagram(&sflow.Datagram{
			Agent: agent, Seq: seq,
			Samples: []sflow.FlowSample{{Seq: seq, Rate: 2048, FrameLen: 64, Header: []byte{9, 9, 0, byte(seq)}}},
		})); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "overlap skipped", func() bool { return svc2.ReplaySkipped() >= 30 })
	for seq := uint32(31); seq <= 50; seq++ {
		sendSeq(t, svc2, conn2, udpSpec.ID, agent, seq)
	}
	shutdownService(t, svc2)

	// Exactly-once, across the whole round trip: every generated record,
	// every appended entry, every distinct UDP datagram — once.
	wantFrames := len(recs) + 2*10 + 50
	if got := frames(svc2); got != wantFrames {
		t.Errorf("samples processed = %d, want exactly %d (double-counting or loss)", got, wantFrames)
	}
	if skipped := svc2.ReplaySkipped(); skipped != 30 {
		t.Errorf("replay barrier skipped %d datagrams, want the 30 re-sent", skipped)
	}
	if drops := svc2.QueueDrops(); drops != 0 {
		t.Errorf("resume run shed %d datagrams", drops)
	}
	for _, sp := range replays {
		fi, err := os.Stat(sp.Path)
		if err != nil {
			t.Fatal(err)
		}
		if c := svc2.InputCursor(sp.ID); c != fi.Size() {
			t.Errorf("input %s cursor = %d, want full file %d", sp.ID, c, fi.Size())
		}
	}
}

// TestTailRotateCheckpointResume: the single-input tail mode survives
// log rotation concurrent with checkpointing. After a rotation the
// consumed offset must track the new file's (smaller) offset space —
// not keep the dead file's larger one — so a resume seeks the right
// place; and entries appended after the restart are consumed even when
// the rotated writer's sequence numbers dipped below the consumed
// sequence cursor.
func TestTailRotateCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wire.sflowlog")
	stateDir := filepath.Join(dir, "state")
	agent := [4]byte{198, 51, 100, 7}
	start := simclock.MeasurementStart

	writeLog := func(path string, firstSeq uint32, at simclock.Time, n int) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [12]byte
		copy(hdr[:8], []byte("sFlowLog"))
		binary.LittleEndian.PutUint32(hdr[8:], 1)
		if _, err := f.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		appendEntries(t, path, agent, firstSeq, at, n)
	}

	writeLog(logPath, 1, start, 40)
	svcCfg := func(resume bool) Config {
		return Config{
			TailLog: logPath, Window: WindowConfig{Days: 2},
			StateDir: stateDir, CheckpointEvery: 25 * time.Millisecond, Resume: resume,
		}
	}
	svc1 := startService(t, svcCfg(false))
	waitUntil(t, "initial file consumed", func() bool { return svc1.Consumed() == 40 })

	// Rotate mid-run, with the checkpointer racing the reopen: a fresh
	// 30-entry file replaces the path atomically. The rotated writer
	// restarts its sequence numbers at 1, as a new LogWriter would.
	tmp := logPath + ".next"
	writeLog(tmp, 1, start.Add(40), 30)
	if err := os.Rename(tmp, logPath); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "rotated file consumed", func() bool {
		return svc1.Consumed() == 70 && svc1.TailReopens() == 1
	})
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if off := svc1.TailOffset(); off != fi.Size() {
		t.Fatalf("tail offset after rotation = %d, want the new file's %d (stale pre-rotation cursor)", off, fi.Size())
	}
	shutdownService(t, svc1)

	// The log grows while the service is down, continuing the rotated
	// writer's count: sequences 31..50, the first ten at or below the
	// consumed sequence cursor (40). A durable input resumes by byte
	// offset; none of these may be mistaken for replayed duplicates.
	appendEntries(t, logPath, agent, 31, start.Add(70), 20)

	svc2 := startService(t, svcCfg(true))
	if svc2.ResumedFrom() == "" {
		t.Fatal("tail service did not resume from a checkpoint")
	}
	waitUntil(t, "appended entries consumed", func() bool { return svc2.Consumed() == 90 })
	if skipped := svc2.ReplaySkipped(); skipped != 0 {
		t.Errorf("resume skipped %d appended entries as replays; tail resume is offset-exact", skipped)
	}
	fi, err = os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "tail offset at end of file", func() bool { return svc2.TailOffset() == fi.Size() })
	shutdownService(t, svc2)
	if got := frames(svc2); got != 90 {
		t.Errorf("samples processed = %d, want exactly 90 across rotation and resume", got)
	}
}
