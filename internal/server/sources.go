package server

import (
	"fmt"
	"sync/atomic"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// sourceKey identifies one sampling process: an sFlow agent address
// plus its sub-agent ID. Real IXP deployments run one agent per
// collector box, often several sub-agents per chassis; each gets its
// own sequence space and its own accounting row. In multi-source
// ingest mode the key is additionally scoped by the configured input
// it arrived through (src, the ingest.Spec ID; "" in the legacy
// single-input modes): two replay files carrying the same recorded
// agent are separate sequence spaces with separate resume barriers,
// so one input's checkpointed cursor can never skip another's data.
type sourceKey struct {
	src      string
	agent    [4]byte
	subAgent uint32
}

func (k sourceKey) String() string {
	base := fmt.Sprintf("%d.%d.%d.%d/%d", k.agent[0], k.agent[1], k.agent[2], k.agent[3], k.subAgent)
	if k.src == "" {
		return base
	}
	return k.src + "|" + base
}

// SourceStats is the externally visible per-collector accounting row:
// what /sources serializes and the per-source metrics export.
type SourceStats struct {
	// Input is the configured ingest source this collector's datagrams
	// arrived through (the ingest.Spec ID; empty in the legacy
	// single-input modes).
	Input string `json:"input,omitempty"`
	// Agent is the dotted agent address; SubAgent the sub-agent ID.
	Agent    string `json:"agent"`
	SubAgent uint32 `json:"subAgent"`

	// Datagrams and Samples count what arrived (before any queueing).
	Datagrams uint64 `json:"datagrams"`
	Samples   uint64 `json:"samples"`

	// FirstSeq/LastSeq bound the observed datagram sequence numbers.
	FirstSeq uint32 `json:"firstSeq"`
	LastSeq  uint32 `json:"lastSeq"`
	// Lost counts datagrams presumed dropped in flight: the sum of
	// forward sequence gaps, decremented when a late datagram arrives
	// after all. UDP gives no stronger signal than the sequence stream.
	Lost uint64 `json:"lost"`
	// OutOfOrder counts datagrams arriving with a sequence number at or
	// below the last one seen — late reordered delivery and duplicates
	// (indistinguishable without per-sequence history).
	OutOfOrder uint64 `json:"outOfOrder"`

	// AgentDrops is the agent's own cumulative drop counter (the flow
	// sample `drops` field): samples the agent discarded before they
	// ever reached the wire.
	AgentDrops uint32 `json:"agentDrops"`
	// Rate is the sampling denominator of the most recent flow sample
	// (1-in-Rate); RateChanges counts observed rate switches.
	Rate        uint32 `json:"rate"`
	RateChanges uint64 `json:"rateChanges"`

	// QueueDrops counts datagrams this service dropped because the
	// source exceeded its ingest-queue share (backpressure: a stalled or
	// flooding collector sheds its own datagrams, never its neighbours').
	QueueDrops uint64 `json:"queueDrops"`

	// ReplaySkipped counts datagrams skipped after a resume because
	// their sequence number was at or below the checkpointed cursor —
	// already in the restored window, so consuming them again would
	// double-count.
	ReplaySkipped uint64 `json:"replaySkipped"`

	// LastArrival is the arrival timestamp of the newest datagram.
	LastArrival simclock.Time `json:"lastArrival"`
}

// sourceState is the internal accounting row. Fields other than
// pending are written only by the reader goroutine under Service.smu;
// pending is shared with the consumer goroutine and atomic.
type sourceState struct {
	key     sourceKey
	stats   SourceStats
	started bool // FirstSeq recorded
	// pending is the number of this source's datagrams sitting in the
	// ingest queue — the per-source backpressure meter.
	pending atomic.Int64

	// cursor is the highest datagram sequence number the consumer has
	// fully drained into the window. Written by the consumer under
	// Service.mu, read by the checkpointer under the same lock — so a
	// checkpoint's cursors are exactly consistent with its window state.
	cursor uint32

	// resuming/resumeSeq implement the post-restore replay barrier: while
	// resuming, datagrams with Seq <= resumeSeq are already inside the
	// restored window and are skipped (counted in ReplaySkipped). The
	// first newer datagram lowers the barrier; later low sequence numbers
	// are genuine reordering again. Reader-goroutine state.
	resuming  bool
	resumeSeq uint32
}

// account folds one arrived datagram into the row. Called by the
// reader with the source registry locked.
func (s *sourceState) account(dg *sflow.Datagram, at simclock.Time) {
	st := &s.stats
	st.Datagrams++
	st.Samples += uint64(len(dg.Samples))
	st.LastArrival = at
	if !s.started {
		s.started = true
		st.FirstSeq, st.LastSeq = dg.Seq, dg.Seq
	} else {
		expected := st.LastSeq + 1
		switch {
		case dg.Seq == expected:
			st.LastSeq = dg.Seq
		case dg.Seq > expected:
			st.Lost += uint64(dg.Seq - expected)
			st.LastSeq = dg.Seq
		default: // late, reordered, or duplicated
			st.OutOfOrder++
			if st.Lost > 0 {
				st.Lost-- // a datagram counted lost arrived after all
			}
		}
	}
	for i := range dg.Samples {
		fs := &dg.Samples[i]
		if fs.Rate != 0 && fs.Rate != st.Rate {
			if st.Rate != 0 {
				st.RateChanges++
			}
			st.Rate = fs.Rate
		}
		if fs.Drops > st.AgentDrops {
			st.AgentDrops = fs.Drops
		}
	}
}
