package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// logDatagrams decodes a wireLog into send-ready datagram bytes, each
// with its recorded arrival second stamped into Uptime (the replay
// convention TimeFromUptime consumes).
func logDatagrams(t *testing.T, logBytes []byte) [][]byte {
	t.Helper()
	lr, err := sflow.NewLogReader(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for {
		at, dgm, err := lr.NextEntry()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dgm.Uptime = uint32(at)
		out = append(out, sflow.EncodeDatagram(dgm))
	}
	return out
}

// sendPaced writes datagrams over UDP, pacing against the service's
// receive counter so the in-flight window stays under the socket
// buffer. Pacing on Received (not Consumed) keeps it correct when some
// datagrams are expected to be shed or replay-skipped.
func sendPaced(t *testing.T, svc *Service, conn *net.UDPConn, dgs [][]byte) {
	t.Helper()
	rcv0 := svc.Received()
	for i, b := range dgs {
		if _, err := conn.Write(b); err != nil {
			t.Fatalf("sending datagram %d: %v", i, err)
		}
		if (i+1)%64 == 0 {
			n := rcv0 + uint64(i+1) - 64
			waitUntil(t, "receiver to catch up", func() bool { return svc.Received() >= n })
		}
	}
	want := rcv0 + uint64(len(dgs))
	waitUntil(t, "all sent datagrams received", func() bool { return svc.Received() == want })
}

func shutdownSvc(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// finalState reads the finalized window: retained detections and the
// total samples folded into the aggregate.
func finalState(svc *Service) ([]*core.Detection, int) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return svc.win.Detections(), svc.win.agg.Samples
}

// miniDatagram builds a one-sample datagram from a fixed agent; the
// frame is garbage (sheds at the capture point) so tests that only
// exercise the datagram path stay small.
func miniDatagram(seq uint32) []byte {
	return sflow.EncodeDatagram(&sflow.Datagram{
		Agent: [4]byte{198, 51, 100, 9}, SubAgent: 1, Seq: seq,
		Samples: []sflow.FlowSample{{
			Seq: seq, Rate: 2048, FrameLen: 64, Header: []byte{1, 2, 3, 4},
		}},
	})
}

// TestServiceCrashRecovery is the tentpole golden: a service killed
// mid-study and resumed from its checkpoint must end with detections
// byte-identical to an uninterrupted run — including when the sender
// replays an overlapping window of already-consumed datagrams, which
// the resume barrier must skip without double-counting a single
// sample.
func TestServiceCrashRecovery(t *testing.T) {
	const days, listN = 4, 29
	dgs := logDatagrams(t, wireLog(t, days).Bytes())
	wcfg := WindowConfig{Days: 2, ListSize: listN, Refresh: simclock.Hour}

	// Uninterrupted reference run.
	ref := startService(t, Config{TimeFromUptime: true, Window: wcfg})
	sendPaced(t, ref, dialService(t, ref), dgs)
	waitUntil(t, "reference drained", func() bool { return ref.Consumed() == uint64(len(dgs)) })
	shutdownSvc(t, ref)
	wantDets, wantSamples := finalState(ref)
	if len(wantDets) == 0 {
		t.Fatal("reference run found no detections; the golden comparison would be vacuous")
	}

	// Interrupted run, phase 1: two thirds of the stream, then die.
	dir := t.TempDir()
	cut := len(dgs) * 2 / 3
	const overlap = 32
	base := Config{
		TimeFromUptime: true, Window: wcfg,
		StateDir: dir, CheckpointEvery: -1,
	}
	svc1 := startService(t, base)
	sendPaced(t, svc1, dialService(t, svc1), dgs[:cut])
	waitUntil(t, "phase 1 drained", func() bool { return svc1.Consumed() == uint64(cut) })

	// The control surface can force a checkpoint (POST only).
	resp, err := http.Post("http://"+svc1.HTTPAddr().String()+"/checkpoint", "", nil)
	if err != nil {
		t.Fatalf("POST /checkpoint: %v", err)
	}
	var ck struct {
		Checkpoint string `json:"checkpoint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil || resp.StatusCode != http.StatusOK || ck.Checkpoint == "" {
		t.Fatalf("POST /checkpoint: status %d, body %+v, err %v", resp.StatusCode, ck, err)
	}
	resp.Body.Close()
	if resp, err := http.Get("http://" + svc1.HTTPAddr().String() + "/checkpoint"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /checkpoint: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
	shutdownSvc(t, svc1)

	// Phase 2: resume from the checkpoint and replay the tail of the
	// stream with an overlap into already-consumed territory.
	cfg2 := base
	cfg2.Resume = true
	svc2 := startService(t, cfg2)
	if svc2.ResumedFrom() == "" {
		t.Fatal("resumed service loaded no checkpoint")
	}
	sendPaced(t, svc2, dialService(t, svc2), dgs[cut-overlap:])
	waitUntil(t, "phase 2 drained", func() bool { return svc2.Consumed() == uint64(len(dgs)) })
	if got := svc2.ReplaySkipped(); got != overlap {
		t.Errorf("replay barrier skipped %d datagrams, want %d", got, overlap)
	}
	if drops := ref.QueueDrops() + svc1.QueueDrops() + svc2.QueueDrops(); drops != 0 {
		t.Fatalf("backpressure shed %d datagrams of a paced replay", drops)
	}
	shutdownSvc(t, svc2)

	gotDets, gotSamples := finalState(svc2)
	if gotSamples != wantSamples {
		t.Errorf("samples across the crash boundary: resumed %d, uninterrupted %d", gotSamples, wantSamples)
	}
	if len(gotDets) != len(wantDets) {
		t.Fatalf("detections: resumed %d, uninterrupted %d\nresumed: %+v\nuninterrupted: %+v",
			len(gotDets), len(wantDets), gotDets, wantDets)
	}
	for i := range gotDets {
		if !reflect.DeepEqual(gotDets[i], wantDets[i]) {
			t.Errorf("detection %d: resumed %+v, uninterrupted %+v", i, *gotDets[i], *wantDets[i])
		}
	}

	svc2.mu.Lock()
	st2 := svc2.win.Stats()
	svc2.mu.Unlock()
	ref.mu.Lock()
	stRef := ref.win.Stats()
	ref.mu.Unlock()
	if st2.ClosedDays != stRef.ClosedDays || st2.Evicted != stRef.Evicted || st2.LateSamples != stRef.LateSamples {
		t.Errorf("window counters diverged across the crash: resumed %+v, uninterrupted %+v", st2, stRef)
	}
}

// TestShutdownDrainsBacklog: SIGTERM with a backlogged queue must
// observe every queued datagram and finalize the day in progress
// before the service exits.
func TestShutdownDrainsBacklog(t *testing.T) {
	dgs := logDatagrams(t, wireLog(t, 1).Bytes())
	if len(dgs) > 48 {
		dgs = dgs[:48]
	}
	svc := NewService(Config{
		TimeFromUptime: true,
		Window:         WindowConfig{Days: 2},
		QueueLen:       64, PerSourceQueue: 64,
	})
	svc.gate = make(chan struct{})
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	conn := dialService(t, svc)
	for i, b := range dgs {
		if _, err := conn.Write(b); err != nil {
			t.Fatalf("sending datagram %d: %v", i, err)
		}
	}
	waitUntil(t, "backlog received", func() bool { return svc.Received() == uint64(len(dgs)) })
	if got := svc.Consumed(); got != 0 {
		t.Fatalf("consumer ran %d datagrams past a closed gate", got)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- svc.Shutdown(ctx)
	}()
	waitUntil(t, "shutdown to begin", func() bool { return svc.closing.Load() })
	close(svc.gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	if got := svc.Consumed(); got != uint64(len(dgs)) {
		t.Errorf("shutdown drained %d of %d backlogged datagrams", got, len(dgs))
	}
	if drops := svc.QueueDrops(); drops != 0 {
		t.Errorf("backlog within the queue bound shed %d datagrams", drops)
	}
	svc.mu.Lock()
	st := svc.win.Stats()
	samples := svc.win.agg.Samples
	svc.mu.Unlock()
	if samples == 0 {
		t.Error("no samples observed from the drained backlog")
	}
	if st.ClosedDays == 0 {
		t.Errorf("shutdown did not finalize the day in progress: %+v", st)
	}
}

// TestSocketRebind: when the ingest socket dies under the reader (not
// a shutdown), the reader rebinds to the same address and keeps
// ingesting.
func TestSocketRebind(t *testing.T) {
	var mu sync.Mutex
	var conns []net.PacketConn
	cfg := Config{Window: WindowConfig{Days: 2}}
	cfg.ListenPacket = func(addr string) (net.PacketConn, error) {
		c, err := net.ListenPacket("udp", addr)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	svc := startService(t, cfg)
	conn := dialService(t, svc)

	if _, err := conn.Write(miniDatagram(1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first datagram received", func() bool { return svc.Received() == 1 })

	mu.Lock()
	first := conns[0]
	mu.Unlock()
	first.Close() // the socket dies out from under the reader
	waitUntil(t, "socket rebound", func() bool { return svc.rebinds.Load() == 1 })

	// The rebound socket serves the same address; sends may race the
	// rebind, so retry until one lands.
	waitUntil(t, "ingest after rebind", func() bool {
		conn.Write(miniDatagram(2)) //nolint:errcheck // ICMP-refused sends are expected mid-rebind
		return svc.Received() >= 2
	})
}

// TestConsumerPanicQuarantine: a datagram that panics the consumer is
// quarantined to a poison file; the drain continues and the service
// stays healthy.
func TestConsumerPanicQuarantine(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(Config{
		Window:   WindowConfig{Days: 2},
		StateDir: dir, CheckpointEvery: -1,
	})
	svc.faultPanic = func(dg *sflow.Datagram) bool { return dg.Seq == 2 }
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { shutdownSvc(t, svc) })
	conn := dialService(t, svc)

	for seq := uint32(1); seq <= 4; seq++ {
		if _, err := conn.Write(miniDatagram(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "all datagrams consumed past the panic", func() bool { return svc.Consumed() == 4 })
	if got := svc.Panics(); got != 1 {
		t.Fatalf("panics isolated = %d, want 1", got)
	}
	if svc.Health() != HealthOK {
		t.Errorf("health = %v after an isolated panic, want ok", svc.Health())
	}

	poisons, _ := filepath.Glob(filepath.Join(dir, "poison-*.sflow"))
	if len(poisons) != 1 {
		t.Fatalf("poison files = %v, want exactly 1", poisons)
	}
	// Single-input modes slug their source ID as "main" in the name.
	if base := filepath.Base(poisons[0]); !strings.HasPrefix(base, "poison-main-") {
		t.Errorf("poison file name = %q, want poison-main-* (source-scoped)", base)
	}
	raw, err := os.ReadFile(poisons[0])
	if err != nil {
		t.Fatal(err)
	}
	rest := raw
	if rest[0] != '#' {
		t.Fatalf("poison file meta header malformed: %q", raw)
	}
	for len(rest) > 0 && rest[0] == '#' { // '#' meta lines precede the datagram
		j := bytes.IndexByte(rest, '\n')
		if j < 0 {
			t.Fatalf("poison file meta header malformed: %q", raw)
		}
		rest = rest[j+1:]
	}
	dg, err := sflow.ParseDatagram(rest)
	if err != nil {
		t.Fatalf("poison file datagram: %v", err)
	}
	if dg.Seq != 2 || dg.Agent != [4]byte{198, 51, 100, 9} {
		t.Errorf("quarantined datagram = agent %v seq %d, want the panicking one (seq 2)", dg.Agent, dg.Seq)
	}
}

// TestCheckpointCorruptFallback: resume skips a corrupt newest
// checkpoint, falls back to the newest valid one, restores cursors
// from it, and continues the write sequence without overwriting
// history. With every file corrupt, Start refuses to run.
func TestCheckpointCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		Window:   WindowConfig{Days: 2},
		StateDir: dir, CheckpointEvery: -1,
	}
	svc1 := startService(t, base)
	conn := dialService(t, svc1)
	for seq := uint32(1); seq <= 8; seq++ {
		if _, err := conn.Write(miniDatagram(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "first batch consumed", func() bool { return svc1.Consumed() == 8 })
	p1, err := svc1.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for seq := uint32(9); seq <= 12; seq++ {
		if _, err := conn.Write(miniDatagram(seq)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "second batch consumed", func() bool { return svc1.Consumed() == 12 })
	shutdownSvc(t, svc1) // writes the newest checkpoint

	corrupt := func(path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths := listCheckpoints(dir)
	if len(paths) != 2 || paths[0] != p1 {
		t.Fatalf("checkpoints = %v, want [%s <shutdown>]", paths, p1)
	}
	p2 := paths[1]
	corrupt(p2)

	cfg2 := base
	cfg2.Resume = true
	svc2 := startService(t, cfg2)
	if got := svc2.ResumedFrom(); got != p1 {
		t.Fatalf("resumed from %q, want fallback to %q", got, p1)
	}
	svc2.smu.Lock()
	src := svc2.sources[sourceKey{agent: [4]byte{198, 51, 100, 9}, subAgent: 1}]
	svc2.smu.Unlock()
	if src == nil || src.cursor != 8 || !src.resuming || src.resumeSeq != 8 {
		t.Fatalf("restored source = %+v, want cursor 8 with the replay barrier armed", src)
	}
	shutdownSvc(t, svc2)

	paths = listCheckpoints(dir)
	newest := paths[len(paths)-1]
	if filepath.Base(newest) <= filepath.Base(p2) {
		t.Errorf("resumed service wrote %s, not past the corrupt %s", newest, p2)
	}

	// Every checkpoint corrupt: files exist but none are loadable, and
	// silently cold-starting would throw state away — refuse to start.
	// (Truncation, not a second flip: re-flipping p2 would restore it.)
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	svc3 := NewService(cfg2)
	if err := svc3.Start(); err == nil {
		shutdownSvc(t, svc3)
		t.Fatal("Start resumed from a directory of corrupt checkpoints")
	}
}

// TestCheckpointRetention: the retention count bounds how many
// checkpoint files accumulate.
func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	svc := startService(t, Config{
		Window:   WindowConfig{Days: 2},
		StateDir: dir, CheckpointEvery: -1, CheckpointRetain: 2,
	})
	for i := 0; i < 5; i++ {
		if _, err := svc.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	paths := listCheckpoints(dir)
	if len(paths) != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", len(paths), paths)
	}
	if filepath.Base(paths[1]) != ckptName(4) {
		t.Errorf("newest = %s, want %s", paths[1], ckptName(4))
	}
}

// TestHealthStateMachine walks the overload state machine directly:
// ok → degraded on overload, degraded → recovering below the
// low-water mark, recovering → ok only after the hold, with any
// above-low-water observation resetting the streak.
func TestHealthStateMachine(t *testing.T) {
	var h health
	if h.State() != HealthOK {
		t.Fatalf("initial state = %v", h.State())
	}
	h.noteDepth(100, 100) // depth observations are no-ops while ok
	if h.State() != HealthOK {
		t.Fatalf("ok flapped on a depth observation: %v", h.State())
	}
	h.noteOverload()
	if h.State() != HealthDegraded || h.degradations.Load() != 1 {
		t.Fatalf("after overload: %v, %d transitions", h.State(), h.degradations.Load())
	}
	h.noteOverload() // still degraded: not a second transition
	if h.degradations.Load() != 1 {
		t.Fatalf("re-overload counted %d transitions", h.degradations.Load())
	}
	h.noteDepth(50, 100) // above low water: no recovery yet
	if h.State() != HealthDegraded {
		t.Fatalf("recovered above the low-water mark: %v", h.State())
	}
	h.noteDepth(10, 100) // below: recovery starts
	if h.State() != HealthRecovering {
		t.Fatalf("below low water: %v, want recovering", h.State())
	}
	h.noteDepth(30, 100) // a bounce resets the streak but not the state
	if h.State() != HealthRecovering {
		t.Fatalf("bounce: %v, want recovering", h.State())
	}
	for i := 0; i < recoverHold-1; i++ {
		h.noteDepth(0, 100)
	}
	if h.State() != HealthRecovering {
		t.Fatalf("recovered before the hold elapsed: %v", h.State())
	}
	h.noteDepth(0, 100)
	if h.State() != HealthOK {
		t.Fatalf("after the hold: %v, want ok", h.State())
	}
}

// TestTailServiceResume: tail-log ingest consumed up to a checkpointed
// byte offset resumes exactly there — re-reading nothing — and ends
// with the same window an uninterrupted tail run produces.
func TestTailServiceResume(t *testing.T) {
	logBytes := wireLog(t, 2).Bytes()

	// Index the entry boundaries with a throwaway tailer.
	full := filepath.Join(t.TempDir(), "full.log")
	if err := os.WriteFile(full, logBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := sflow.NewTailer(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for {
		if _, _, err := tl.NextEntry(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
		offs = append(offs, tl.Offset())
	}
	tl.Close()
	total := len(offs)
	k := total * 3 / 5
	cut := offs[k-1]

	dir := t.TempDir()
	feed := filepath.Join(t.TempDir(), "feed.log")
	if err := os.WriteFile(feed, logBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	wcfg := WindowConfig{Days: 2, ListSize: 29, Refresh: simclock.Hour}
	base := Config{
		Window: wcfg, TailLog: feed,
		StateDir: dir, CheckpointEvery: -1,
	}
	svc1 := startService(t, base)
	waitUntil(t, "truncated log drained", func() bool {
		return svc1.Consumed() == uint64(k) && svc1.TailOffset() == cut
	})
	shutdownSvc(t, svc1)

	f, err := os.OpenFile(feed, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(logBytes[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg2 := base
	cfg2.Resume = true
	svc2 := startService(t, cfg2)
	if svc2.ResumedFrom() == "" {
		t.Fatal("resumed tail service loaded no checkpoint")
	}
	waitUntil(t, "appended log drained", func() bool {
		return svc2.Consumed() == uint64(total) && svc2.TailOffset() == int64(len(logBytes))
	})
	if got := svc2.ReplaySkipped(); got != 0 {
		t.Errorf("offset resume replay-skipped %d entries; it should re-read nothing", got)
	}
	shutdownSvc(t, svc2)
	gotDets, gotSamples := finalState(svc2)

	// Uninterrupted reference: one service tails the complete log.
	ref := startService(t, Config{Window: wcfg, TailLog: full})
	waitUntil(t, "reference log drained", func() bool { return ref.Consumed() == uint64(total) })
	shutdownSvc(t, ref)
	wantDets, wantSamples := finalState(ref)

	if gotSamples != wantSamples {
		t.Errorf("samples across the tail resume: %d, uninterrupted %d", gotSamples, wantSamples)
	}
	if !reflect.DeepEqual(gotDets, wantDets) {
		t.Errorf("detections: resumed %+v, uninterrupted %+v", gotDets, wantDets)
	}
}
