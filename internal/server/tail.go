// Tail-log ingest: the service's second intake. Instead of a UDP
// socket, the producer goroutine follows an sFlow datagram log through
// sflow.Tailer — surviving rotation and truncation — and feeds entries
// into the same accounting and window path the UDP reader uses. Unlike
// UDP, tail ingest never sheds: the log is durable, so a full queue
// pauses the tailer instead of dropping data (enqueueTail). Each
// queued entry carries its byte offset; the consumer
// records the offset of the newest drained entry under the window
// lock, so checkpoints carry an exact resume cursor and a resumed
// service re-reads nothing it already consumed.
package server

import (
	"errors"
	"io"
	"time"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// tailLoop is the producer in tail-log mode. End of input backs off
// with a capped poll interval (growth, rotation, and truncation are
// the Tailer's job to notice); a corrupt datagram body costs one parse
// error and one entry; corrupt framing ends ingest — the log is not a
// stream anymore — while the window and control surface keep serving.
func (s *Service) tailLoop() {
	defer close(s.readerDone)
	defer close(s.queue)

	var t *sflow.Tailer
	backoff := tailBackoffMin
	for !s.closing.Load() {
		var err error
		if t, err = sflow.NewTailer(s.cfg.TailLog, s.tailResumeAt); err == nil {
			break
		}
		// Not there yet (writer starts later) or unreadable: retry.
		s.readRetries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > tailBackoffMax {
			backoff = tailBackoffMax
		}
	}
	if t == nil {
		return
	}
	defer t.Close()

	backoff = tailBackoffMin
	for !s.closing.Load() {
		at, dg, err := t.NextEntry()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				time.Sleep(backoff)
				if backoff *= 2; backoff > tailBackoffMax {
					backoff = tailBackoffMax
				}
				continue
			}
			s.parseErrors.Add(1)
			if errors.Is(err, sflow.ErrLog) {
				return // framing gone: no resync point exists
			}
			continue // one bad datagram body; the tailer resynced
		}
		backoff = tailBackoffMin
		s.tailReopens.Store(t.Reopens())
		s.received.Add(1)
		if s.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		}
		if !s.enqueueDurable("", dg, at, t.Offset(), t.Reopens()) {
			return
		}
	}
}

// TailOffset reports the byte offset of the newest tail-log entry
// drained into the window (0 when not tailing).
func (s *Service) TailOffset() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tailOffConsumed
}

// TailReopens reports tail-log reopens after truncation or rotation.
func (s *Service) TailReopens() uint64 { return s.tailReopens.Load() }
