package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"reflect"
	"slices"
	"strings"
	"testing"
	"time"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/ixp"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
	"dnsamp/internal/topology"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// startService builds and starts a service; shutdown runs in cleanup.
func startService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc := NewService(cfg)
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return svc
}

func dialService(t *testing.T, svc *Service) *net.UDPConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, svc.Addr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("dialing service: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// wireRecs generates a deterministic multi-day campaign's sampled IXP
// traffic in global arrival order — the record stream wireLog and the
// multi-source split helpers encode. Memoized per day count: several
// golden tests share one generation.
func wireRecs(t *testing.T, days int) []ecosystem.TaggedRecord {
	t.Helper()
	if recs, ok := wireRecsCache[days]; ok {
		return recs
	}
	cfg := ecosystem.DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	c := ecosystem.NewCampaign(cfg)
	gen := ecosystem.NewGenerator(c, 7)

	var recs []ecosystem.TaggedRecord
	day := simclock.MeasurementStart
	for d := 0; d < days; d++ {
		recs = append(recs, gen.WireDay(day).IXP...)
		day = day.Add(simclock.Day)
	}
	slices.SortStableFunc(recs, func(a, b ecosystem.TaggedRecord) int {
		return int(a.Rec.Time.Sub(b.Rec.Time))
	})
	wireRecsCache[days] = recs
	return recs
}

var wireRecsCache = map[int][]ecosystem.TaggedRecord{}

// encodeWire encodes records as an sFlow datagram log attributed to
// the canonical test agent 192.0.2.1.
func encodeWire(t *testing.T, w io.Writer, recs []ecosystem.TaggedRecord) {
	t.Helper()
	lw, err := sflow.NewLogWriter(w, [4]byte{192, 0, 2, 1}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range recs {
		if err := lw.Add(tr.Rec, tr.Ingress); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// wireLog generates a deterministic multi-day campaign and encodes its
// sampled IXP traffic as an arrival-ordered sFlow datagram log.
func wireLog(t *testing.T, days int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	encodeWire(t, &buf, wireRecs(t, days))
	return &buf
}

// batchReference runs the offline study pipeline over a recorded log —
// whole-day columnar ingestion, cumulative selector state, per-day
// close-out — and returns its detections: the golden reference any
// service-mode run over the same recording must reproduce exactly.
func batchReference(t *testing.T, logBytes []byte, listN int) []*core.Detection {
	t.Helper()
	rep := source.NewReplay(nil)
	if _, err := rep.IngestSFlowLog(bytes.NewReader(logBytes)); err != nil {
		t.Fatalf("IngestSFlowLog: %v", err)
	}
	tab := rep.Table()
	ref := core.NewAggregator(tab, nil)
	ref.SetTrackAll(true)
	cp := ixp.NewCapturePoint(nil, tab)
	th := core.DefaultThresholds()
	var want []*core.Detection
	for _, day := range rep.Days() {
		ref.ObserveBatch(cp.RemapBatch(rep.Day(day)))
		nl := core.BuildNameList(listN, core.Selector1MaxSize(ref), core.Selector2ANYCount(ref))
		for _, det := range core.Detect(ref, nl.Names, th) {
			if det.Day == day.Day() {
				want = append(want, det)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("batch reference found no detections; the golden comparison would be vacuous")
	}
	return want
}

func getBody(t *testing.T, svc *Service, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + svc.HTTPAddr().String() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return body
}

// TestServiceGoldenReplay is the acceptance test of the service mode:
// a daemonized service fed a recorded datagram stream over UDP must
// report detections equal to a batch study over the same recording —
// while it is evicting expired client-days (window narrower than the
// recording) and exposing per-source and per-stage state over HTTP.
func TestServiceGoldenReplay(t *testing.T) {
	const days, listN = 5, 29
	logBuf := wireLog(t, days)
	logBytes := logBuf.Bytes()

	// Batch reference over the same recording: no UDP, no eviction —
	// the study pipeline's semantics.
	want := batchReference(t, logBytes, listN)

	// The daemon: 2-day window over a 5-day recording, so eviction and
	// slot recycling run during the replay. Timestamps ride the Uptime
	// field (the replay convention).
	svc := startService(t, Config{
		TimeFromUptime: true,
		Window:         WindowConfig{Days: 2, ListSize: listN, Refresh: simclock.Hour},
	})
	conn := dialService(t, svc)

	lr, err := sflow.NewLogReader(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	sent, scraped := 0, false
	for {
		at, dgm, err := lr.NextEntry()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dgm.Uptime = uint32(at)
		if _, err := conn.Write(sflow.EncodeDatagram(dgm)); err != nil {
			t.Fatalf("sending datagram %d: %v", sent, err)
		}
		sent++
		// Flow control: UDP has none, so pace against the consumer to
		// keep the in-flight window under the socket buffer.
		if sent%64 == 0 {
			n := uint64(sent - 64)
			waitUntil(t, "consumer to catch up", func() bool { return svc.Consumed() >= n })
		}
		if !scraped && svc.Consumed() > uint64(sent/2) && sent > 128 {
			scraped = true
			assertControlSurface(t, svc, true)
		}
	}
	waitUntil(t, "all datagrams consumed", func() bool { return svc.Consumed() == uint64(sent) })
	if drops := svc.QueueDrops(); drops != 0 {
		t.Fatalf("backpressure shed %d datagrams of a paced replay", drops)
	}

	// Mid-run scrape again with full per-source state, then finalize.
	assertControlSurface(t, svc, scraped)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	svc.mu.Lock()
	got := svc.win.Detections()
	st := svc.win.Stats()
	svc.mu.Unlock()
	if st.Evicted == 0 {
		t.Fatalf("a 2-day window over %d days must evict: %+v", days, st)
	}
	if len(got) != len(want) {
		t.Fatalf("detections: daemon %d, batch %d\ndaemon: %+v\nbatch: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("detection %d: daemon %+v, batch %+v", i, *got[i], *want[i])
		}
	}
}

// assertControlSurface checks every endpoint is live and well-formed
// while the daemon runs; withSources additionally requires per-source
// accounting rows to be present in /sources and /metrics.
func assertControlSurface(t *testing.T, svc *Service, withSources bool) {
	t.Helper()

	metricsText := string(getBody(t, svc, "/metrics"))
	for _, family := range []string{
		"ixpmon_datagrams_received_total",
		"ixpmon_stage_seconds_total",
		"ixpmon_window_client_days",
	} {
		if !strings.Contains(metricsText, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s:\n%.500s", family, metricsText)
		}
	}
	if withSources && !strings.Contains(metricsText, `ixpmon_source_datagrams_total{agent="192.0.2.1",subagent="0"}`) {
		t.Errorf("/metrics missing per-source sample:\n%.500s", metricsText)
	}

	var stages []stageJSON
	if err := json.Unmarshal(getBody(t, svc, "/stages"), &stages); err != nil {
		t.Fatalf("/stages: %v", err)
	}
	if withSources {
		names := make(map[string]bool)
		for _, st := range stages {
			names[st.Stage] = true
		}
		if !names["parse"] || !names["observe"] {
			t.Errorf("/stages missing core stages: %+v", stages)
		}
	}

	var srcPayload SourcesPayload
	if err := json.Unmarshal(getBody(t, svc, "/sources"), &srcPayload); err != nil {
		t.Fatalf("/sources: %v", err)
	}
	sources := srcPayload.Collectors
	if withSources {
		if len(sources) != 1 || sources[0].Agent != "192.0.2.1" || sources[0].Datagrams == 0 {
			t.Errorf("/sources = %+v", sources)
		}
		if sources[0].Rate != sflow.DefaultRate {
			t.Errorf("source rate = %d, want %d", sources[0].Rate, sflow.DefaultRate)
		}
	}

	var dets []Detection
	if err := json.Unmarshal(getBody(t, svc, "/detections"), &dets); err != nil {
		t.Fatalf("/detections: %v", err)
	}
	var ws WindowStats
	if err := json.Unmarshal(getBody(t, svc, "/window"), &ws); err != nil {
		t.Fatalf("/window: %v", err)
	}
	if body := getBody(t, svc, "/healthz"); string(body) != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
}

// TestServiceMultiSource: concurrent collectors with different
// sampling rates, loss, and reordering are accounted independently.
func TestServiceMultiSource(t *testing.T) {
	svc := startService(t, Config{})
	conn := dialService(t, svc)

	mk := func(agent byte, sub, seq, rate uint32) []byte {
		return sflow.EncodeDatagram(&sflow.Datagram{
			Agent:    [4]byte{10, 0, 0, agent},
			SubAgent: sub,
			Seq:      seq,
			Samples: []sflow.FlowSample{{
				Seq: seq, Rate: rate, FrameLen: 64, Header: []byte{1, 2, 3, 4},
			}},
		})
	}
	// Source A: a gap (3 lost), then one lost datagram arriving late.
	// Source B (different sub-agent space): clean sequence, rate switch.
	for _, d := range [][]byte{
		mk(1, 0, 1, 16384),
		mk(1, 0, 2, 16384),
		mk(2, 7, 100, 8192),
		mk(1, 0, 6, 16384),
		mk(2, 7, 101, 4096),
		mk(1, 0, 4, 16384),
	} {
		if _, err := conn.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "6 datagrams received", func() bool { return svc.Received() == 6 })

	rows := svc.SourcesSnapshot()
	if len(rows) != 2 {
		t.Fatalf("sources = %+v", rows)
	}
	a, b := rows[0], rows[1]
	if a.Agent != "10.0.0.1" || a.SubAgent != 0 || b.Agent != "10.0.0.2" || b.SubAgent != 7 {
		t.Fatalf("row identity/order: %+v", rows)
	}
	if a.Datagrams != 4 || a.Lost != 2 || a.OutOfOrder != 1 || a.Rate != 16384 {
		t.Errorf("source A = %+v", a)
	}
	if b.Datagrams != 2 || b.Lost != 0 || b.Rate != 4096 || b.RateChanges != 1 {
		t.Errorf("source B = %+v", b)
	}

	// Garbage is a parse error, not a source row.
	if _, err := conn.Write([]byte("not sflow")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "garbage received", func() bool { return svc.Received() == 7 })
	waitUntil(t, "parse error counted", func() bool { return svc.parseErrors.Load() == 1 })
	if got := len(svc.SourcesSnapshot()); got != 2 {
		t.Errorf("garbage created a source row: %d", got)
	}
}

// TestServiceBackpressure: with the consumer stalled, a flooding
// source exceeds its queue share and sheds its own datagrams — while a
// quiet neighbour's datagram is still accepted.
func TestServiceBackpressure(t *testing.T) {
	svc := NewService(Config{QueueLen: 4, PerSourceQueue: 2})
	svc.gate = make(chan struct{})
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	gateOpen := false
	openGate := func() {
		if !gateOpen {
			gateOpen = true
			close(svc.gate)
		}
	}
	t.Cleanup(func() {
		openGate()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	conn := dialService(t, svc)

	mk := func(agent byte, seq uint32) []byte {
		return sflow.EncodeDatagram(&sflow.Datagram{
			Agent: [4]byte{10, 0, 0, agent}, Seq: seq,
			Samples: []sflow.FlowSample{{Seq: seq, Rate: 16384, FrameLen: 64, Header: []byte{1}}},
		})
	}
	for seq := uint32(1); seq <= 10; seq++ { // source A floods
		if _, err := conn.Write(mk(1, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(mk(2, 1)); err != nil { // source B: one datagram
		t.Fatal(err)
	}
	waitUntil(t, "11 datagrams received", func() bool { return svc.Received() == 11 })

	rows := svc.SourcesSnapshot()
	if len(rows) != 2 {
		t.Fatalf("sources = %+v", rows)
	}
	a, b := rows[0], rows[1]
	if a.QueueDrops != 8 {
		t.Errorf("flooding source drops = %d, want 8 (2 of 10 fit its share)", a.QueueDrops)
	}
	if b.QueueDrops != 0 {
		t.Errorf("quiet source shed %d datagrams; backpressure must be per-source", b.QueueDrops)
	}
	if svc.QueueDrops() != 8 {
		t.Errorf("total drops = %d", svc.QueueDrops())
	}

	openGate()
	waitUntil(t, "accepted datagrams consumed", func() bool { return svc.Consumed() == 3 })
}

// TestSendLogRewritesUptime: the replay sender stamps each datagram's
// recorded arrival second into the Uptime field, in log order.
func TestSendLogRewritesUptime(t *testing.T) {
	var buf bytes.Buffer
	lw, err := sflow.NewLogWriter(&buf, [4]byte{192, 0, 2, 1}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0xaa, 0xbb, 0xcc}
	times := []simclock.Time{
		simclock.MeasurementStart,
		simclock.MeasurementStart.Add(2),
		simclock.MeasurementStart.Add(simclock.Hour),
	}
	for i, at := range times {
		if err := lw.Add(sflow.Record{Time: at, Frame: frame, FrameLen: 64, Seq: uint64(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}

	var wrote [][]byte
	sink := writerFunc(func(p []byte) (int, error) {
		wrote = append(wrote, append([]byte(nil), p...))
		return len(p), nil
	})
	sent, err := SendLog(sink, bytes.NewReader(buf.Bytes()), 2, time.Microsecond)
	if err != nil {
		t.Fatalf("SendLog: %v", err)
	}
	if sent != len(wrote) || sent != len(times) {
		t.Fatalf("sent %d datagrams, wrote %d, want %d", sent, len(wrote), len(times))
	}
	for i, p := range wrote {
		dgm, err := sflow.ParseDatagram(p)
		if err != nil {
			t.Fatalf("datagram %d: %v", i, err)
		}
		if simclock.Time(dgm.Uptime) != times[i] {
			t.Errorf("datagram %d uptime = %d, want %d", i, dgm.Uptime, times[i])
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
