package server

import (
	"fmt"
	"io"
	"time"

	"dnsamp/internal/sflow"
)

// SendLog replays a recorded sFlow datagram log (sflow.LogWriter's
// format) over a datagram writer — typically a connected UDP socket
// pointed at a Service. Each log entry's datagram is re-encoded with
// its Uptime field rewritten to the entry's recorded arrival time as a
// unix second (the TimeFromUptime convention: UDP transport carries no
// per-datagram timestamp, so the capture time rides in the one header
// field the batch study never reads; a uint32 of unix seconds holds
// until 2106).
//
// UDP has no flow control, so an unpaced replay of a large log
// overruns the receiver's socket buffer. burst > 0 inserts a pause
// after every burst datagrams; burst <= 0 sends flat out (fine for
// small logs and paced tests that gate on Service.Consumed).
//
// Returns the number of datagrams written. A log that stops mid-entry
// sends every complete entry and then reports the read error.
func SendLog(dst io.Writer, src io.Reader, burst int, pause time.Duration) (int, error) {
	lr, err := sflow.NewLogReader(src)
	if err != nil {
		return 0, err
	}
	sent := 0
	for {
		at, dg, err := lr.NextEntry()
		if err != nil {
			if err == io.EOF {
				return sent, nil
			}
			return sent, err
		}
		dg.Uptime = uint32(at)
		if _, err := dst.Write(sflow.EncodeDatagram(dg)); err != nil {
			return sent, fmt.Errorf("server: sending datagram %d: %w", sent, err)
		}
		sent++
		if burst > 0 && sent%burst == 0 {
			time.Sleep(pause)
		}
	}
}
