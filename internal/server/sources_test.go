package server

import (
	"testing"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// dg builds a one-sample datagram with the given sequence number.
func dg(seq uint32, rate uint32, drops uint32) *sflow.Datagram {
	return &sflow.Datagram{
		Agent:    [4]byte{10, 0, 0, 1},
		SubAgent: 0,
		Seq:      seq,
		Samples: []sflow.FlowSample{{
			Seq: seq, Rate: rate, Drops: drops,
			FrameLen: 64, Header: []byte{0xde, 0xad},
		}},
	}
}

func TestAccountSequenceRules(t *testing.T) {
	src := &sourceState{}
	at := simclock.MeasurementStart

	// In-order start.
	src.account(dg(10, 16384, 0), at)
	src.account(dg(11, 16384, 0), at+1)
	st := src.stats
	if st.FirstSeq != 10 || st.LastSeq != 11 || st.Lost != 0 || st.OutOfOrder != 0 {
		t.Fatalf("in-order: %+v", st)
	}

	// Forward gap: 12 and 13 presumed lost.
	src.account(dg(14, 16384, 0), at+2)
	if st = src.stats; st.Lost != 2 || st.LastSeq != 14 {
		t.Fatalf("gap: %+v", st)
	}

	// One of them shows up late: reordering, not loss.
	src.account(dg(12, 16384, 0), at+3)
	if st = src.stats; st.Lost != 1 || st.OutOfOrder != 1 {
		t.Fatalf("late arrival: %+v", st)
	}

	// A duplicate of an already-seen datagram: out-of-order again, and
	// the loss estimate keeps decrementing while it is positive.
	src.account(dg(12, 16384, 0), at+4)
	src.account(dg(12, 16384, 0), at+5)
	if st = src.stats; st.Lost != 0 || st.OutOfOrder != 3 {
		t.Fatalf("duplicates: %+v", st)
	}

	// Resume in order from the highest seen.
	src.account(dg(15, 16384, 0), at+6)
	if st = src.stats; st.Lost != 0 || st.OutOfOrder != 3 || st.LastSeq != 15 {
		t.Fatalf("resume: %+v", st)
	}
	if st.Datagrams != 7 || st.Samples != 7 {
		t.Fatalf("counts: %+v", st)
	}
	if st.LastArrival != at+6 {
		t.Fatalf("last arrival = %v, want %v", st.LastArrival, at+6)
	}
}

func TestAccountRateAndAgentDrops(t *testing.T) {
	src := &sourceState{}
	at := simclock.MeasurementStart
	src.account(dg(1, 16384, 0), at)
	src.account(dg(2, 16384, 3), at)
	src.account(dg(3, 8192, 5), at) // rate switch
	src.account(dg(4, 8192, 4), at) // drops counter is cumulative: max wins

	st := src.stats
	if st.Rate != 8192 || st.RateChanges != 1 {
		t.Fatalf("rate: %+v", st)
	}
	if st.AgentDrops != 5 {
		t.Fatalf("agent drops = %d, want 5", st.AgentDrops)
	}
}

func TestSourceKeyString(t *testing.T) {
	k := sourceKey{agent: [4]byte{192, 0, 2, 7}, subAgent: 3}
	if got := k.String(); got != "192.0.2.7/3" {
		t.Fatalf("key string = %q", got)
	}
}
