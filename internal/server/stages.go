package server

import (
	"sync"
	"time"
)

// Stages accumulates named wall-clock stage timings — the live
// counterpart of the per-stage prints cmd/dnsampdetect emits for the
// batch Runner. The daemon records its processing stages (parse,
// observe, refresh, detect, evict) and its idle time (wait) here; the
// /stages endpoint and the stage metrics render snapshots. The batch
// binaries reuse it for one-shot runs (cmd/ixpmon's tail loop surfaces
// its backoff wait time through the same type).
//
// Stages is safe for concurrent use.
type Stages struct {
	mu    sync.Mutex
	order []string
	stats map[string]*StageTiming
}

// StageTiming is the accumulated cost of one stage.
type StageTiming struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total"`
	Max   time.Duration `json:"max"`
}

// Mean returns the average duration per invocation.
func (s StageTiming) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// NewStages returns an empty accumulator.
func NewStages() *Stages {
	return &Stages{stats: make(map[string]*StageTiming)}
}

// Add records one invocation of stage taking d.
func (st *Stages) Add(stage string, d time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats[stage]
	if s == nil {
		s = &StageTiming{Stage: stage}
		st.stats[stage] = s
		st.order = append(st.order, stage)
	}
	s.Count++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
}

// Track starts timing one invocation of stage and returns the function
// that stops it: `defer st.Track("observe")()`.
func (st *Stages) Track(stage string) func() {
	t0 := time.Now()
	return func() { st.Add(stage, time.Since(t0)) }
}

// Snapshot returns the accumulated timings in first-seen stage order.
func (st *Stages) Snapshot() []StageTiming {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]StageTiming, 0, len(st.order))
	for _, name := range st.order {
		out = append(out, *st.stats[name])
	}
	return out
}
