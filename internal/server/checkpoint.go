// Crash-safe service state: the running window — aggregator arena,
// interning table, name list, retained detections — plus per-source
// consume cursors, per-input ingest cursors (keyed by stable source
// ID), and the tail-log offset, serialized to one checksummed file. Checkpoints are written atomically (temp file +
// rename) on a timer and during shutdown; `-resume` loads the newest
// valid one and continues mid-stream, with a per-source replay barrier
// skipping datagrams the restored window already contains, so a
// kill/restart cycle double-counts nothing.
//
// Consistency model: the consumer advances each source's cursor under
// the same lock that guards the window, and the checkpointer encodes
// both under that lock — a checkpoint is always an exact (window,
// cursors) pair. Datagrams sitting in the ingest queue at checkpoint
// time are not in the pair; after a crash they are re-sent (or re-read
// from the tail log) past the cursor, and after a drained shutdown
// there are none.
package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dnsamp/internal/binenc"
	"dnsamp/internal/core"
	"dnsamp/internal/simclock"
)

// ErrCheckpoint is wrapped by all checkpoint decode failures.
var ErrCheckpoint = errors.New("server: malformed checkpoint")

var ckptMagic = [8]byte{'d', 'n', 'a', 'm', 'p', 'C', 'k', 'p'}

const (
	// Version history: 1 = single-input (PR 7); 2 adds the per-row
	// input-source ID and the per-input cursor section for supervised
	// multi-source ingest.
	ckptVersion = 2
	// ckptOverhead is the fixed envelope: magic + version up front, an
	// FNV-1a checksum of the payload at the end.
	ckptHeaderLen = 12
	ckptSumLen    = 8
)

// writeSnapshot serializes the window: interning table, aggregator,
// scalar cursors, the live misused-name list, retained detections, and
// capture-point counters.
func (w *Window) writeSnapshot(e *binenc.Encoder) {
	strs := w.agg.Table.Names()
	e.U32(uint32(len(strs)))
	for _, s := range strs {
		e.Str(s)
	}
	w.agg.WriteSnapshot(e)

	e.I64(int64(w.curDay))
	e.I64(int64(w.lastSeen))
	e.I64(int64(w.lastRefresh))
	e.I64(int64(w.refreshN))
	e.F64(w.jaccard)
	e.I64(int64(w.closedDays))
	e.U64(w.evicted)
	e.U64(w.lateSamples)
	e.U64(w.detDropped)

	e.U32(uint32(len(w.names)))
	for n := range w.names {
		e.Str(n)
	}

	e.U32(uint32(len(w.detections)))
	for _, d := range w.detections {
		e.Raw(d.Victim[:])
		e.I64(int64(d.Day))
		e.I64(int64(d.Packets))
		e.I64(int64(d.CandidatePackets))
		e.F64(d.Share)
		e.I64(int64(d.First))
		e.I64(int64(d.Last))
	}

	st := &w.cp.Stats
	for _, v := range []int{st.Frames, st.NonUDP, st.NonDNS, st.Malformed, st.Accepted, st.OriginMapped, st.PeerMapped} {
		e.I64(int64(v))
	}
}

// readSnapshot restores writeSnapshot's state into a freshly
// constructed window.
func (w *Window) readSnapshot(d *binenc.Decoder) error {
	nStrs := d.Count(4)
	w.agg.Table.Reserve(nStrs)
	for i := 0; i < nStrs && d.Err() == nil; i++ {
		// A fresh table interns sequentially, so IDs are reproduced
		// exactly and the aggregator snapshot's name IDs stay valid.
		w.agg.Table.Intern(d.Str())
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := w.agg.ReadSnapshot(d); err != nil {
		return err
	}

	w.curDay = int(d.I64())
	w.lastSeen = simclock.Time(d.I64())
	w.lastRefresh = simclock.Time(d.I64())
	w.refreshN = int(d.I64())
	w.jaccard = d.F64()
	w.closedDays = int(d.I64())
	w.evicted = d.U64()
	w.lateSamples = d.U64()
	w.detDropped = d.U64()

	nList := d.Count(4)
	w.names = make(map[string]bool, nList)
	for i := 0; i < nList && d.Err() == nil; i++ {
		w.names[d.Str()] = true
	}

	// A detection entry costs 4 + 6×8 + 8 = 60 bytes.
	nDet := d.Count(60)
	w.detections = make([]*core.Detection, 0, nDet)
	for i := 0; i < nDet && d.Err() == nil; i++ {
		det := &core.Detection{}
		copy(det.Victim[:], d.Raw(4))
		det.Day = int(d.I64())
		det.Packets = int(d.I64())
		det.CandidatePackets = int(d.I64())
		det.Share = d.F64()
		det.First = simclock.Time(d.I64())
		det.Last = simclock.Time(d.I64())
		w.detections = append(w.detections, det)
	}

	st := &w.cp.Stats
	for _, p := range []*int{&st.Frames, &st.NonUDP, &st.NonDNS, &st.Malformed, &st.Accepted, &st.OriginMapped, &st.PeerMapped} {
		*p = int(d.I64())
	}
	return d.Err()
}

// encodeCheckpoint serializes the whole service state. Caller holds
// s.mu and s.smu.
func (s *Service) encodeCheckpoint() ([]byte, error) {
	var buf bytes.Buffer
	e := binenc.NewEncoder(&buf)
	e.Raw(ckptMagic[:])
	e.U32(ckptVersion)

	s.win.writeSnapshot(e)

	rows := make([]*sourceState, 0, len(s.sources))
	for _, src := range s.sources {
		rows = append(rows, src)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].key, rows[j].key
		if a.src != b.src {
			return a.src < b.src
		}
		if a.agent != b.agent {
			return string(a.agent[:]) < string(b.agent[:])
		}
		return a.subAgent < b.subAgent
	})
	e.U32(uint32(len(rows)))
	for _, src := range rows {
		st := &src.stats
		e.Str(src.key.src)
		e.Raw(src.key.agent[:])
		e.U32(src.key.subAgent)
		e.Bool(src.started)
		e.U64(st.Datagrams)
		e.U64(st.Samples)
		e.U32(st.FirstSeq)
		e.U32(st.LastSeq)
		e.U64(st.Lost)
		e.U64(st.OutOfOrder)
		e.U32(st.AgentDrops)
		e.U32(st.Rate)
		e.U64(st.RateChanges)
		e.U64(st.QueueDrops)
		e.U64(st.ReplaySkipped)
		e.I64(int64(st.LastArrival))
		e.U32(src.cursor)
	}

	// Per-input consumed cursors for supervised multi-source ingest,
	// keyed by the stable ingest.Spec ID. Only the offset persists: an
	// epoch orders offsets within one process lifetime; across a
	// restart each source adapter revalidates the offset against
	// whatever the input looks like now (Tailer resumeAt semantics).
	ids := make([]string, 0, len(s.inputCursors))
	for id := range s.inputCursors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.Str(id)
		e.I64(s.inputCursors[id].off)
	}

	e.U64(s.received.Load())
	e.U64(s.parseErrors.Load())
	e.U64(s.consumed.Load())
	e.U64(s.queueDrops.Load())
	e.I64(s.tailOffConsumed)

	if err := e.Flush(); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	h := fnv.New64a()
	h.Write(raw[ckptHeaderLen:])
	var sum [ckptSumLen]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return append(raw, sum[:]...), nil
}

// decodeCheckpoint validates the envelope and restores the state into
// this (unstarted, freshly constructed) service.
func (s *Service) decodeCheckpoint(raw []byte) error {
	if len(raw) < ckptHeaderLen+ckptSumLen {
		return fmt.Errorf("%w: %d bytes", ErrCheckpoint, len(raw))
	}
	body, sum := raw[:len(raw)-ckptSumLen], raw[len(raw)-ckptSumLen:]
	h := fnv.New64a()
	h.Write(body[ckptHeaderLen:])
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return fmt.Errorf("%w: checksum mismatch", ErrCheckpoint)
	}
	d := binenc.NewDecoder(body, ErrCheckpoint)
	if [8]byte(d.Raw(8)) != ckptMagic {
		return fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	if v := d.U32(); v != ckptVersion {
		return fmt.Errorf("%w: version %d", ErrCheckpoint, v)
	}

	if err := s.win.readSnapshot(d); err != nil {
		return err
	}

	// A source row costs at least 4+4+4+1 + 8×6 + 4×4 + 8 = 89 bytes
	// (the input-ID string adds its length on top).
	nSrc := d.Count(89)
	for i := 0; i < nSrc && d.Err() == nil; i++ {
		src := &sourceState{}
		src.key.src = d.Str()
		copy(src.key.agent[:], d.Raw(4))
		src.key.subAgent = d.U32()
		src.started = d.Bool()
		st := &src.stats
		st.Input = src.key.src
		st.Agent = fmt.Sprintf("%d.%d.%d.%d", src.key.agent[0], src.key.agent[1], src.key.agent[2], src.key.agent[3])
		st.SubAgent = src.key.subAgent
		st.Datagrams = d.U64()
		st.Samples = d.U64()
		st.FirstSeq = d.U32()
		st.LastSeq = d.U32()
		st.Lost = d.U64()
		st.OutOfOrder = d.U64()
		st.AgentDrops = d.U32()
		st.Rate = d.U32()
		st.RateChanges = d.U64()
		st.QueueDrops = d.U64()
		st.ReplaySkipped = d.U64()
		st.LastArrival = simclock.Time(d.I64())
		src.cursor = d.U32()
		// The replay barrier: anything at or below the consumed cursor is
		// already in the restored window. Received-side state between
		// cursor and LastSeq was queued but never consumed; rewind LastSeq
		// to the cursor so re-sent datagrams continue the sequence stream
		// instead of reading as reordered duplicates.
		src.resuming, src.resumeSeq = true, src.cursor
		st.LastSeq = src.cursor
		if d.Err() == nil {
			s.sources[src.key] = src
		}
	}

	// A cursor entry costs at least 4 + 8 = 12 bytes.
	nCur := d.Count(12)
	for i := 0; i < nCur && d.Err() == nil; i++ {
		id := d.Str()
		off := d.I64()
		if d.Err() == nil {
			s.inputCursors[id] = srcCursor{off: off}
			s.schedResume[id] = off
		}
	}

	s.received.Store(d.U64())
	s.parseErrors.Store(d.U64())
	s.consumed.Store(d.U64())
	s.queueDrops.Store(d.U64())
	s.tailOffConsumed = d.I64()
	s.tailResumeAt = s.tailOffConsumed
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, d.Remaining())
	}
	return nil
}

// ckptName formats the n-th checkpoint file name; the zero-padded
// sequence makes lexical order chronological.
func ckptName(n uint64) string { return fmt.Sprintf("checkpoint-%010d.ckpt", n) }

// listCheckpoints returns the checkpoint files in dir, newest last.
func listCheckpoints(dir string) []string {
	paths, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	sort.Strings(paths)
	return paths
}

// Checkpoint serializes the current service state and writes it
// atomically (temp file + rename) into Config.StateDir, pruning old
// checkpoints beyond the retention count. Transient write failures are
// retried a few times with backoff before giving up; a failed attempt
// never leaves a partial checkpoint visible.
func (s *Service) Checkpoint() (string, error) {
	if s.cfg.StateDir == "" {
		return "", errors.New("server: no StateDir configured")
	}
	s.mu.Lock()
	s.smu.Lock()
	raw, err := s.encodeCheckpoint()
	seq := s.ckptSeq
	s.ckptSeq++
	s.smu.Unlock()
	s.mu.Unlock()
	if err != nil {
		s.ckptErrors.Add(1)
		return "", err
	}

	path := filepath.Join(s.cfg.StateDir, ckptName(seq))
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err = atomicWriteFile(path, raw)
		if err == nil {
			break
		}
		if attempt >= 2 {
			s.ckptErrors.Add(1)
			return "", fmt.Errorf("server: writing checkpoint: %w", err)
		}
		time.Sleep(backoff)
		backoff *= 4
	}
	s.ckpts.Add(1)
	s.ckptBytes.Store(uint64(len(raw)))

	if paths := listCheckpoints(s.cfg.StateDir); len(paths) > s.cfg.CheckpointRetain {
		for _, old := range paths[:len(paths)-s.cfg.CheckpointRetain] {
			os.Remove(old)
		}
	}
	return path, nil
}

// atomicWriteFile writes data next to path and renames it into place,
// so readers only ever see absent or complete files.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// resume loads the newest valid checkpoint in StateDir into this
// unstarted service. Corrupt or truncated files are skipped, falling
// back to older ones; an empty directory is a clean cold start. Called
// from Start before any goroutine exists, so no locking.
func (s *Service) resume() error {
	paths := listCheckpoints(s.cfg.StateDir)
	s.ckptSeq = nextCkptSeq(paths)
	for i := len(paths) - 1; i >= 0; i-- {
		raw, err := os.ReadFile(paths[i])
		if err != nil {
			continue
		}
		if err := s.decodeCheckpoint(raw); err != nil {
			// Reset whatever half-state the failed decode left and try the
			// next older file.
			s.win = NewWindow(s.cfg.Window, s.stages)
			s.sources = make(map[sourceKey]*sourceState)
			s.inputCursors = make(map[string]srcCursor)
			s.schedResume = make(map[string]int64)
			s.tailOffConsumed, s.tailResumeAt = 0, 0
			continue
		}
		s.resumedFrom = paths[i]
		return nil
	}
	if len(paths) > 0 {
		return fmt.Errorf("server: %d checkpoint files, none valid", len(paths))
	}
	return nil
}

// nextCkptSeq picks the write sequence following the newest existing
// checkpoint, so resumed services never overwrite history.
func nextCkptSeq(paths []string) uint64 {
	var next uint64
	for _, p := range paths {
		var n uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "checkpoint-%d.ckpt", &n); err == nil && n+1 > next {
			next = n + 1
		}
	}
	return next
}

// ResumedFrom reports the checkpoint path the service restored at
// Start ("" for a cold start).
func (s *Service) ResumedFrom() string { return s.resumedFrom }

// checkpointLoop writes checkpoints on the configured cadence until
// shutdown. Failures are counted and retried next tick; the newest
// valid older checkpoint stays in place throughout.
func (s *Service) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			s.Checkpoint() //nolint:errcheck // counted in ckptErrors
		}
	}
}
