// Graceful degradation: a tiered overload response with an explicit
// state machine surfaced on /healthz and /metrics.
//
// Tier 1 is the always-on per-source backpressure (sources.go): a
// flooding collector sheds only its own datagrams. When the *shared*
// queue still fills — every source hot at once, or a stalled consumer
// — tier 2 samples ingest down 1-in-2 with explicit accounting, and at
// tier 3 the service goes detection-only: ingest sheds everything,
// while the window, detections, and the control surface keep serving.
// Both global tiers mark the service degraded; as the queue drains the
// state machine walks degraded → recovering → ok, with a hold period
// so a single drained scrape cannot flap the state back to healthy
// mid-overload.
package server

import "sync/atomic"

// HealthState is the service's overload state.
type HealthState int32

const (
	// HealthOK: ingest is keeping up; no global shedding active.
	HealthOK HealthState = iota
	// HealthRecovering: the queue has drained below the low-water mark
	// after an overload; full health returns after the hold period.
	HealthRecovering
	// HealthDegraded: the shared queue crossed the sampling-down
	// threshold; ingest is being shed globally. /healthz serves 503.
	HealthDegraded
)

func (h HealthState) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthRecovering:
		return "recovering"
	default:
		return "degraded"
	}
}

// Overload thresholds, as fractions of the shared queue capacity, and
// the recovery hold in healthy observations.
const (
	// sampleDownAt: above ¾ full, keep 1 datagram in 2 (tier 2).
	sampleDownNum, sampleDownDen = 3, 4
	// shedAllAt: above ⅞ full, detection-only — shed all ingest (tier 3).
	shedAllNum, shedAllDen = 7, 8
	// lowWaterAt: below ¼ full counts as a healthy observation.
	lowWaterNum, lowWaterDen = 1, 4
	// recoverHold is how many consecutive healthy observations
	// recovering must accumulate before the state returns to ok.
	recoverHold = 64
)

// health is the shared-overload state machine. Reader and consumer
// both feed it observations; /healthz and /metrics read it. All fields
// are atomics — observations happen on the ingest hot path.
type health struct {
	state    atomic.Int32
	okStreak atomic.Int32

	degradations atomic.Uint64 // transitions into degraded
	sampledOut   atomic.Uint64 // tier-2 sheds (1-in-2 sampling)
	shedAll      atomic.Uint64 // tier-3 sheds (detection-only)
}

// State returns the current overload state.
func (h *health) State() HealthState { return HealthState(h.state.Load()) }

// noteOverload records that a global shedding tier engaged.
func (h *health) noteOverload() {
	h.okStreak.Store(0)
	if h.state.Swap(int32(HealthDegraded)) != int32(HealthDegraded) {
		h.degradations.Add(1)
	}
}

// noteDepth feeds one queue-depth observation (taken at enqueue or
// dequeue). Draining below the low-water mark moves degraded to
// recovering; recoverHold consecutive low-water observations complete
// the recovery. Observations between the marks reset the streak
// without changing state.
func (h *health) noteDepth(depth, capacity int) {
	if HealthState(h.state.Load()) == HealthOK {
		return
	}
	if depth*lowWaterDen >= capacity*lowWaterNum {
		h.okStreak.Store(0)
		return
	}
	h.state.CompareAndSwap(int32(HealthDegraded), int32(HealthRecovering))
	if h.okStreak.Add(1) >= recoverHold {
		h.state.CompareAndSwap(int32(HealthRecovering), int32(HealthOK))
	}
}

// Health returns the service's overload state.
func (s *Service) Health() HealthState { return s.health.State() }
