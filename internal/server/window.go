package server

import (
	"dnsamp/internal/core"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// WindowConfig sizes the sliding-window detector.
type WindowConfig struct {
	// Days is the window width in days: a closed day is evicted from the
	// aggregate once it falls more than Days-1 days behind the current
	// day. Minimum (and default) 1 — current-day-only, the live
	// monitor's historical behaviour.
	Days int
	// ListSize is the per-selector name-list size N (the paper keeps 29).
	ListSize int
	// Refresh is the name-list refresh cadence in stream time (the paper
	// allows at most 5 minutes of delay).
	Refresh simclock.Duration
	// Thresholds are the §4.2 detection thresholds.
	Thresholds core.Thresholds
	// MaxDetections bounds the retained detection log (0 = default
	// 65536). When full, the oldest detections are dropped and counted.
	MaxDetections int
}

// withDefaults normalizes zero fields.
func (c WindowConfig) withDefaults() WindowConfig {
	if c.Days < 1 {
		c.Days = 1
	}
	if c.ListSize <= 0 {
		c.ListSize = 29
	}
	if c.Refresh <= 0 {
		c.Refresh = 5 * simclock.Minute
	}
	if c.Thresholds == (core.Thresholds{}) {
		c.Thresholds = core.DefaultThresholds()
	}
	if c.MaxDetections <= 0 {
		c.MaxDetections = 1 << 16
	}
	return c
}

// Window is the sliding-window incremental detector: the always-on
// generalization of core.Monitor. It ingests sanitized samples in
// arrival order, keeps the last WindowConfig.Days days of client-day
// profiles in one core.Aggregator (expired days evicted in place, arena
// slots recycled), refreshes the misused-name list every Refresh of
// stream time, and emits detections for each day as it closes — so
// results stream out with bounded memory instead of arriving at the end
// of a study.
//
// Day close happens when a sample of a newer day arrives (UDP transport
// may reorder within a day; whole-day reordering closes days in arrival
// order) or at Close. Detection for the closing day runs against a
// freshly refreshed name list over the window aggregate, exactly the
// batch semantics: per-name selector state is cumulative since start,
// per-client threshold state is the closing day's own profiles, so a
// batch pass over the same stream yields the same detections (the
// golden equivalence the server tests pin).
//
// Window is not safe for concurrent use; Service serializes access.
type Window struct {
	cfg WindowConfig

	agg *core.Aggregator
	cp  *ixp.CapturePoint

	curDay      int // day being accumulated; -1 before first sample
	lastSeen    simclock.Time
	lastRefresh simclock.Time

	names    map[string]bool
	refreshN int
	jaccard  float64 // vs previous refresh

	detections []*core.Detection
	detDropped uint64 // detections dropped to MaxDetections

	closedDays  int
	evicted     uint64
	lateSamples uint64 // samples older than the window, dropped

	stages *Stages
}

// NewWindow builds a sliding-window detector. The capture point that
// sanitizes samples for it must share its interning table (Capture
// returns one wired up); stages, when non-nil, receives refresh /
// detect / evict timings.
func NewWindow(cfg WindowConfig, stages *Stages) *Window {
	w := &Window{
		cfg:    cfg.withDefaults(),
		curDay: -1,
		names:  make(map[string]bool),
		stages: stages,
	}
	w.agg = core.NewAggregator(nil, nil)
	// Track every name per client: the window retains only cfg.Days days
	// of client state, so trackAll stays affordable (the live monitor's
	// trade, extended from one day to the window).
	w.agg.SetTrackAll(true)
	w.cp = ixp.NewCapturePoint(nil, w.agg.Table)
	return w
}

// Capture returns the capture point feeding the window: it shares the
// window's interning table, so samples it emits carry window name IDs.
func (w *Window) Capture() *ixp.CapturePoint { return w.cp }

// Observe ingests one sanitized sample in arrival order. The sample's
// Name ID must be in the window's table space (come from Capture).
func (w *Window) Observe(s *ixp.DNSSample) {
	d := s.Time.Day()
	if w.curDay == -1 {
		w.curDay = d
		w.lastRefresh = s.Time
	}
	if d > w.curDay {
		w.advanceTo(d, s.Time)
	}
	if d <= w.curDay-w.cfg.Days {
		// Older than the window: its day is already evicted (or would be
		// immediately); late stragglers are dropped, not resurrected.
		w.lateSamples++
		return
	}
	w.agg.Observe(s)
	if s.Time.After(w.lastSeen) {
		w.lastSeen = s.Time
	}
	if s.Time.Sub(w.lastRefresh) >= w.cfg.Refresh {
		w.refresh(s.Time)
	}
}

// advanceTo closes every day before newDay and slides the window.
func (w *Window) advanceTo(newDay int, now simclock.Time) {
	for w.curDay < newDay {
		w.closeDay(now)
		w.curDay++
	}
	w.evict()
}

// closeDay refreshes the name list and detects over the closing day.
func (w *Window) closeDay(now simclock.Time) {
	w.refresh(now)
	var stop func()
	if w.stages != nil {
		stop = w.stages.Track("detect")
	}
	dets := core.Detect(w.agg, w.names, w.cfg.Thresholds)
	for _, det := range dets {
		if det.Day == w.curDay {
			w.detections = append(w.detections, det)
		}
	}
	if over := len(w.detections) - w.cfg.MaxDetections; over > 0 {
		w.detDropped += uint64(over)
		w.detections = append(w.detections[:0], w.detections[over:]...)
	}
	w.closedDays++
	if stop != nil {
		stop()
	}
}

// evict drops every day that has fallen out of the window.
func (w *Window) evict() {
	var stop func()
	if w.stages != nil {
		stop = w.stages.Track("evict")
	}
	w.evicted += uint64(w.agg.EvictDaysBefore(w.curDay - w.cfg.Days + 1))
	if stop != nil {
		stop()
	}
}

// refresh recomputes the misused-name list from the window aggregate.
func (w *Window) refresh(now simclock.Time) {
	var stop func()
	if w.stages != nil {
		stop = w.stages.Track("refresh")
	}
	s1 := core.Selector1MaxSize(w.agg)
	s2 := core.Selector2ANYCount(w.agg)
	nl := core.BuildNameList(w.cfg.ListSize, s1, s2)
	w.jaccard = stats.Jaccard(w.names, nl.Names)
	w.names = nl.Names
	w.refreshN++
	w.lastRefresh = now
	if stop != nil {
		stop()
	}
}

// Close finalizes the day currently accumulating (detecting over it)
// without evicting it. Call once when the stream ends; observing newer
// samples afterwards reopens the stream consistently.
func (w *Window) Close() {
	if w.curDay == -1 {
		return
	}
	w.closeDay(w.lastSeen)
	w.curDay++
	w.evict()
}

// Detections returns a snapshot of the retained closed-day detections
// in emission order.
func (w *Window) Detections() []*core.Detection {
	return append([]*core.Detection(nil), w.detections...)
}

// CurrentNames returns a snapshot of the current misused-name list.
func (w *Window) CurrentNames() []string {
	out := make([]string, 0, len(w.names))
	for n := range w.names {
		out = append(out, n)
	}
	return out
}

// WindowStats is the observable window state (for /metrics and tests).
type WindowStats struct {
	// CurDay is the day currently accumulating (-1 before any sample);
	// ClosedDays counts day-close detection sweeps.
	CurDay     int `json:"curDay"`
	ClosedDays int `json:"closedDays"`
	// ClientDays / ArenaCap describe the aggregate arena: live profiles
	// and the recycled-slot capacity bound.
	ClientDays int `json:"clientDays"`
	ArenaCap   int `json:"arenaCap"`
	// Names is the interned-name universe size; ListNames the current
	// misused-name list length; Refreshes the refresh count; Jaccard the
	// similarity of the last two lists.
	Names     int     `json:"names"`
	ListNames int     `json:"listNames"`
	Refreshes int     `json:"refreshes"`
	Jaccard   float64 `json:"jaccard"`
	// Evicted counts evicted client-day profiles; LateSamples the
	// samples dropped for arriving older than the window; Detections the
	// retained detections; DetectionsDropped those shed to the cap.
	Evicted           uint64 `json:"evicted"`
	LateSamples       uint64 `json:"lateSamples"`
	Detections        int    `json:"detections"`
	DetectionsDropped uint64 `json:"detectionsDropped"`
}

// Stats snapshots the window state.
func (w *Window) Stats() WindowStats {
	return WindowStats{
		CurDay:            w.curDay,
		ClosedDays:        w.closedDays,
		ClientDays:        w.agg.NumClients(),
		ArenaCap:          w.agg.ArenaCap(),
		Names:             w.agg.Table.Len(),
		ListNames:         len(w.names),
		Refreshes:         w.refreshN,
		Jaccard:           w.jaccard,
		Evicted:           w.evicted,
		LateSamples:       w.lateSamples,
		Detections:        len(w.detections),
		DetectionsDropped: w.detDropped,
	}
}
