// Package server is the live multi-collector service mode: an
// always-on daemon that ingests sFlow v5 datagrams over UDP from many
// concurrent collectors, sanitizes their samples through the same
// capture-point pipeline the batch study uses, folds them into a
// sliding-window incremental aggregate (window-expired client-days
// evicted in place, arena slots recycled), and serves results and
// operational state over HTTP.
//
// Layering: internal/sflow parses datagrams, internal/ixp sanitizes
// frames into DNS samples, internal/core aggregates and detects;
// this package adds what a daemon needs on top — per-source
// sequence/drop accounting (sources.go), the sliding window
// (window.go), stage timings (stages.go), datagram replay over UDP
// (replay.go), crash-safe checkpoint/resume (checkpoint.go), tiered
// overload response (health.go), tail-log ingest (tail.go), and the
// Service that wires a UDP reader, a consumer, and an HTTP control
// surface together (this file, http.go).
//
// Concurrency model: one producer goroutine owns ingest — reading the
// UDP socket (or tailing a datagram log), parsing, accounting each
// datagram to its (agent, sub-agent) source row, and enqueuing on a
// single bounded queue — and one consumer goroutine drains the queue
// into the window. Backpressure is tiered: per source first (a stalled
// or flooding collector sheds only its own traffic), then global
// sampling-down and detection-only shedding when the shared queue
// fills (health.go). The producer survives transient socket errors
// with capped backoff and rebinds a dead socket; a consumer panic
// quarantines the offending datagram to a poison file instead of
// killing the drain. HTTP handlers take read snapshots under the same
// locks, so scrapes never block the hot path for long.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsamp/internal/metrics"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// Config configures a Service. Zero fields take the documented
// defaults.
type Config struct {
	// UDPAddr is the sFlow listen address (default "127.0.0.1:0").
	UDPAddr string
	// HTTPAddr is the control-surface listen address (default
	// "127.0.0.1:0").
	HTTPAddr string

	// Window configures the sliding-window detector.
	Window WindowConfig

	// TimeFromUptime, when set, takes each datagram's timestamp from its
	// Uptime field interpreted as a unix second — the replay convention
	// SendLog writes (recorded logs carry their original capture
	// timestamps there). When unset, datagrams are stamped with the
	// daemon's wall clock on arrival — the live deployment mode.
	TimeFromUptime bool

	// QueueLen is the shared ingest queue capacity in datagrams
	// (default 1024). PerSourceQueue caps one source's share of it
	// (default QueueLen/4): a source with that many datagrams already
	// pending has new ones dropped and counted against it.
	QueueLen       int
	PerSourceQueue int
	// ReadBuffer is the requested kernel receive buffer size in bytes
	// (default 1 MiB; best-effort).
	ReadBuffer int

	// StateDir, when set, enables crash-safe state: periodic checkpoints
	// (and a final one at shutdown) are written there atomically, and
	// consumer-panic datagrams are quarantined there as poison files.
	StateDir string
	// CheckpointEvery is the periodic checkpoint cadence (default 1m;
	// < 0 disables the timer, keeping only the shutdown checkpoint).
	CheckpointEvery time.Duration
	// CheckpointRetain is how many checkpoint files to keep (default 3).
	CheckpointRetain int
	// Resume, with StateDir set, loads the newest valid checkpoint at
	// Start and continues mid-stream: the window picks up exactly where
	// it stopped, and re-sent datagrams at or below each source's
	// checkpointed cursor are skipped, not double-counted.
	Resume bool

	// TailLog, when set, replaces UDP ingest with tailing the given
	// sFlow datagram log (the LogWriter format): entries are consumed as
	// they are appended, rotation and truncation are survived, and the
	// consumed byte offset rides in checkpoints so Resume continues from
	// the right entry.
	TailLog string

	// ListenPacket, when set, binds the ingest socket (initially and on
	// rebind) instead of net.ListenUDP — the fault-injection seam.
	ListenPacket func(addr string) (net.PacketConn, error)
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.PerSourceQueue <= 0 {
		c.PerSourceQueue = c.QueueLen / 4
		if c.PerSourceQueue < 1 {
			c.PerSourceQueue = 1
		}
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 1 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = time.Minute
	}
	if c.CheckpointRetain <= 0 {
		c.CheckpointRetain = 3
	}
	return c
}

// Ingest retry/backoff bounds (transient read errors, socket rebinds,
// tail-log polls).
const (
	readBackoffMin = 50 * time.Millisecond
	readBackoffMax = 5 * time.Second
	tailBackoffMin = 20 * time.Millisecond
	tailBackoffMax = 500 * time.Millisecond
)

// item is one parsed datagram in flight from producer to consumer. off
// is the tail-log offset just past its entry (0 on the UDP path).
type item struct {
	src *sourceState
	dg  *sflow.Datagram
	at  simclock.Time
	off int64
}

// Service is the running daemon. Construct with NewService, start with
// Start, stop with Shutdown.
type Service struct {
	cfg    Config
	stages *Stages
	reg    *metrics.Registry

	// mu serializes window access (consumer vs HTTP snapshots vs
	// checkpointer); it also guards the consumer-side resume cursors
	// (sourceState.cursor, tailOffConsumed) so checkpoints are exact
	// (window, cursor) pairs.
	mu              sync.Mutex
	win             *Window
	tailOffConsumed int64

	// smu guards the source registry; row fields other than pending and
	// cursor are written only by the producer under it.
	smu     sync.Mutex
	sources map[sourceKey]*sourceState

	queue chan item

	// cmu guards conn, which the producer may swap on rebind.
	cmu  sync.Mutex
	conn net.PacketConn

	httpLn  net.Listener
	httpSrv *http.Server

	readerDone   chan struct{}
	consumerDone chan struct{}
	ckptStop     chan struct{}
	ckptDone     chan struct{}
	started      bool
	closing      atomic.Bool
	shutdownOnce sync.Once
	shutdownErr  error

	health health

	// Checkpoint/resume state: write sequence, resume source, tail
	// resume offset (set by decodeCheckpoint before Start).
	ckptSeq      uint64
	resumedFrom  string
	tailResumeAt int64

	// sampleTick drives tier-2 1-in-2 sampling; producer-owned.
	sampleTick uint64

	// gate, when non-nil, stalls the consumer until it is closed —
	// a test hook simulating a consumer that cannot keep up.
	gate chan struct{}
	// faultPanic, when non-nil, panics the consumer on matching
	// datagrams — the test hook for the panic-isolation path.
	faultPanic func(*sflow.Datagram) bool

	received      atomic.Uint64 // datagrams read off the socket / log
	parseErrors   atomic.Uint64
	consumed      atomic.Uint64 // datagrams drained into the window
	queueDrops    atomic.Uint64 // per-source backpressure, across sources
	replaySkipped atomic.Uint64 // resume-barrier skips, across sources
	readRetries   atomic.Uint64 // transient ReadFrom errors retried
	rebinds       atomic.Uint64 // successful socket rebinds
	panics        atomic.Uint64 // consumer panics isolated
	poisoned      atomic.Uint64 // datagrams quarantined to poison files
	ckpts         atomic.Uint64 // checkpoints written
	ckptErrors    atomic.Uint64 // checkpoint attempts failed
	ckptBytes     atomic.Uint64 // size of the newest checkpoint
	tailReopens   atomic.Uint64 // tail-log truncation/rotation reopens
}

// NewService builds an unstarted service.
func NewService(cfg Config) *Service {
	s := &Service{
		cfg:          cfg.withDefaults(),
		stages:       NewStages(),
		reg:          metrics.NewRegistry(),
		sources:      make(map[sourceKey]*sourceState),
		readerDone:   make(chan struct{}),
		consumerDone: make(chan struct{}),
		ckptStop:     make(chan struct{}),
		ckptDone:     make(chan struct{}),
	}
	s.win = NewWindow(s.cfg.Window, s.stages)
	s.queue = make(chan item, s.cfg.QueueLen)
	s.registerMetrics()
	return s
}

// listenPacket binds the ingest socket at addr, through the configured
// seam when one is set.
func (s *Service) listenPacket(addr string) (net.PacketConn, error) {
	if s.cfg.ListenPacket != nil {
		return s.cfg.ListenPacket(addr)
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: resolving UDP addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(s.cfg.ReadBuffer) // best-effort
	return conn, nil
}

// Start binds the listeners, restores a checkpoint when resuming, and
// launches the producer, consumer, checkpointer, and HTTP goroutines.
func (s *Service) Start() error {
	if s.started {
		return errors.New("server: already started")
	}
	if s.cfg.StateDir != "" {
		if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
			return fmt.Errorf("server: creating state dir: %w", err)
		}
		if s.cfg.Resume {
			if err := s.resume(); err != nil {
				return err
			}
		} else {
			s.ckptSeq = nextCkptSeq(listCheckpoints(s.cfg.StateDir))
		}
	}
	if s.cfg.TailLog == "" {
		conn, err := s.listenPacket(s.cfg.UDPAddr)
		if err != nil {
			return fmt.Errorf("server: listening UDP: %w", err)
		}
		s.conn = conn
	}
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		if s.conn != nil {
			s.conn.Close()
		}
		return fmt.Errorf("server: listening HTTP: %w", err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.handler()}
	s.started = true
	if s.cfg.TailLog == "" {
		go s.readLoop()
	} else {
		go s.tailLoop()
	}
	go s.consumeLoop()
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	if s.cfg.StateDir != "" && s.cfg.CheckpointEvery > 0 {
		go s.checkpointLoop()
	} else {
		close(s.ckptDone)
	}
	return nil
}

// Addr returns the bound UDP listen address (after Start; nil in
// tail-log mode).
func (s *Service) Addr() net.Addr {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// HTTPAddr returns the bound HTTP listen address (after Start).
func (s *Service) HTTPAddr() net.Addr { return s.httpLn.Addr() }

// Shutdown stops the service in dependency order: close the socket so
// the producer exits and closes the queue, wait for the consumer to
// drain everything already accepted, write the final checkpoint (the
// drained, pre-finalize state a resumed service continues from),
// finalize the window (detecting over the day in progress), then stop
// the HTTP server — so a final scrape after the data path stops still
// sees the complete state.
func (s *Service) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	s.shutdownOnce.Do(func() {
		s.closing.Store(true)
		s.cmu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.cmu.Unlock()
		<-s.readerDone
		<-s.consumerDone
		close(s.ckptStop)
		<-s.ckptDone
		var ckptErr error
		if s.cfg.StateDir != "" {
			_, ckptErr = s.Checkpoint()
		}
		s.mu.Lock()
		s.win.Close()
		s.mu.Unlock()
		err := s.httpSrv.Shutdown(ctx)
		if ckptErr != nil {
			err = ckptErr
		}
		s.shutdownErr = err
	})
	return s.shutdownErr
}

// currentConn fetches the producer's socket (it may have been swapped
// by a rebind).
func (s *Service) currentConn() net.PacketConn {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.conn
}

// rebind replaces a dead socket with a fresh one bound to the same
// address, retrying with capped backoff until shutdown. Reports
// whether a new socket is in place.
func (s *Service) rebind() bool {
	old := s.currentConn()
	if old == nil {
		return false
	}
	addr := old.LocalAddr().String()
	backoff := readBackoffMin
	for !s.closing.Load() {
		conn, err := s.listenPacket(addr)
		if err == nil {
			s.cmu.Lock()
			if s.closing.Load() {
				s.cmu.Unlock()
				conn.Close()
				return false
			}
			s.conn = conn
			s.cmu.Unlock()
			s.rebinds.Add(1)
			return true
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > readBackoffMax {
			backoff = readBackoffMax
		}
	}
	return false
}

// readLoop owns the socket: read, parse, account, enqueue-or-shed.
// Transient read errors are retried with capped backoff; a closed
// socket (when not shutting down) is rebound.
func (s *Service) readLoop() {
	defer close(s.readerDone)
	defer close(s.queue)
	buf := make([]byte, 1<<16)
	backoff := readBackoffMin
	for {
		conn := s.currentConn()
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if s.closing.Load() {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				// The socket died under us (not Shutdown): rebind it.
				if !s.rebind() {
					return
				}
				continue
			}
			s.readRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > readBackoffMax {
				backoff = readBackoffMax
			}
			continue
		}
		backoff = readBackoffMin
		s.received.Add(1)
		stop := s.stages.Track("parse")
		dg, perr := sflow.ParseDatagram(buf[:n])
		stop()
		if perr != nil {
			s.parseErrors.Add(1)
			continue
		}
		var at simclock.Time
		if s.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		} else {
			at = simclock.Time(time.Now().Unix())
		}
		s.enqueueParsed(dg, at)
	}
}

// accountLocked runs the resume barrier and per-source accounting for
// one parsed datagram, creating the source row on first sight. Returns
// nil when the replay barrier skipped the datagram. Producer-goroutine
// only; caller holds smu.
func (s *Service) accountLocked(dg *sflow.Datagram, at simclock.Time) *sourceState {
	key := sourceKey{agent: dg.Agent, subAgent: dg.SubAgent}
	src := s.sources[key]
	if src == nil {
		src = &sourceState{key: key}
		src.stats.Agent = fmt.Sprintf("%d.%d.%d.%d", key.agent[0], key.agent[1], key.agent[2], key.agent[3])
		src.stats.SubAgent = key.subAgent
		s.sources[key] = src
	}
	if src.resuming {
		if dg.Seq <= src.resumeSeq && dg.Seq >= src.stats.FirstSeq {
			// Already inside the restored window: consuming it again would
			// double-count, so it is skipped before any accounting.
			src.stats.ReplaySkipped++
			s.replaySkipped.Add(1)
			return nil
		}
		src.resuming = false
	}
	src.account(dg, at)
	return src
}

// enqueueParsed accounts one parsed UDP datagram to its source and
// either enqueues it for the consumer or sheds it: the resume barrier
// first (already-consumed replays), then the global overload tiers,
// then per-source backpressure. Producer-goroutine only.
func (s *Service) enqueueParsed(dg *sflow.Datagram, at simclock.Time) {
	s.smu.Lock()
	defer s.smu.Unlock()
	src := s.accountLocked(dg, at)
	if src == nil {
		return
	}

	// Global overload tiers (the per-source tier is below, unchanged):
	// above ⅞ full shed everything, above ¾ keep 1-in-2.
	depth, capacity := len(s.queue), s.cfg.QueueLen
	if depth*shedAllDen >= capacity*shedAllNum {
		s.health.noteOverload()
		s.health.shedAll.Add(1)
		return
	}
	if depth*sampleDownDen >= capacity*sampleDownNum {
		s.health.noteOverload()
		if s.sampleTick++; s.sampleTick%2 == 1 {
			s.health.sampledOut.Add(1)
			return
		}
	}
	s.health.noteDepth(depth, capacity)

	shed := src.pending.Load() >= int64(s.cfg.PerSourceQueue)
	if !shed {
		select {
		case s.queue <- item{src: src, dg: dg, at: at}:
			src.pending.Add(1)
		default:
			shed = true // shared queue full
		}
	}
	if shed {
		src.stats.QueueDrops++
		s.queueDrops.Add(1)
	}
}

// enqueueTail accounts one tail-log entry and enqueues it, blocking
// while the queue is full. Tail ingest never sheds: the log is durable
// on disk, so backpressure is flow control — the tailer pauses — not
// loss, and the overload tiers stay out of it. Reports false when
// shutdown interrupted the wait; the entry was not enqueued and its
// offset never advanced, so a resume re-reads it.
func (s *Service) enqueueTail(dg *sflow.Datagram, at simclock.Time, off int64) bool {
	s.smu.Lock()
	src := s.accountLocked(dg, at)
	s.smu.Unlock()
	if src == nil {
		return true
	}
	it := item{src: src, dg: dg, at: at, off: off}
	for {
		select {
		case s.queue <- it:
			src.pending.Add(1)
			return true
		default:
		}
		if s.closing.Load() {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// consumeLoop drains the queue into the window. A panic while
// processing one datagram is isolated: the datagram is quarantined to
// a poison file and the loop moves on.
func (s *Service) consumeLoop() {
	defer close(s.consumerDone)
	for it := range s.queue {
		if s.gate != nil {
			<-s.gate
		}
		it.src.pending.Add(-1)
		s.consumeOne(it)
		s.consumed.Add(1)
		s.health.noteDepth(len(s.queue), s.cfg.QueueLen)
	}
}

// consumeOne observes one datagram's samples into the window and
// advances the source's consume cursor. Panics unwind through the
// deferred recover into quarantine; the lock and stage timer unwind
// with them.
func (s *Service) consumeOne(it item) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.quarantine(it.dg, r)
		}
	}()
	stop := s.stages.Track("observe")
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faultPanic != nil && s.faultPanic(it.dg) {
		panic(fmt.Sprintf("injected consumer fault on seq %d", it.dg.Seq))
	}
	cp := s.win.Capture()
	for i := range it.dg.Samples {
		fs := &it.dg.Samples[i]
		smp, ok := cp.Process(sflow.Record{
			Time:     it.at,
			Frame:    fs.Header,
			FrameLen: int(fs.FrameLen),
			Seq:      uint64(fs.Seq),
		})
		if !ok {
			continue
		}
		if smp.PeerAS == 0 && fs.Input != 0 {
			// The replay convention: ingress member ASN rides the
			// Input interface field when no topology is wired up.
			smp.PeerAS = fs.Input
		}
		s.win.Observe(&smp)
	}
	// Cursor advance is the last locked step: a panicking datagram never
	// moves the cursor, so after a resume it is re-sent, re-quarantined,
	// and still never half-counted.
	if it.dg.Seq > it.src.cursor {
		it.src.cursor = it.dg.Seq
	}
	if it.off > s.tailOffConsumed {
		s.tailOffConsumed = it.off
	}
}

// quarantine writes the datagram that broke the consumer to a poison
// file for offline triage. Without a StateDir the event is only
// counted.
func (s *Service) quarantine(dg *sflow.Datagram, cause any) {
	if s.cfg.StateDir == "" {
		return
	}
	n := s.poisoned.Add(1)
	body := sflow.EncodeDatagram(dg)
	meta := fmt.Sprintf("# consumer panic: %v\n# agent %d.%d.%d.%d/%d seq %d\n",
		cause, dg.Agent[0], dg.Agent[1], dg.Agent[2], dg.Agent[3], dg.SubAgent, dg.Seq)
	path := filepath.Join(s.cfg.StateDir, fmt.Sprintf("poison-%06d.sflow", n))
	_ = atomicWriteFile(path, append([]byte(meta), body...))
}

// Received reports datagrams read off the socket so far.
func (s *Service) Received() uint64 { return s.received.Load() }

// Consumed reports datagrams fully drained into the window so far.
// Tests pace senders against it: once Consumed matches what was sent,
// every accepted sample is in the window.
func (s *Service) Consumed() uint64 { return s.consumed.Load() }

// QueueDrops reports datagrams shed by per-source backpressure across
// all sources.
func (s *Service) QueueDrops() uint64 { return s.queueDrops.Load() }

// ReplaySkipped reports datagrams skipped by the post-resume replay
// barrier across all sources.
func (s *Service) ReplaySkipped() uint64 { return s.replaySkipped.Load() }

// SampledOut reports datagrams shed by tier-2 global sampling-down.
func (s *Service) SampledOut() uint64 { return s.health.sampledOut.Load() }

// ShedAll reports datagrams shed by tier-3 detection-only mode.
func (s *Service) ShedAll() uint64 { return s.health.shedAll.Load() }

// Panics reports consumer panics isolated so far.
func (s *Service) Panics() uint64 { return s.panics.Load() }

// WindowSnapshot returns the window's observable state.
func (s *Service) WindowSnapshot() WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Stats()
}

// DetectionsSnapshot returns the retained detections.
func (s *Service) DetectionsSnapshot() []*Detection {
	s.mu.Lock()
	dets := s.win.Detections()
	s.mu.Unlock()
	out := make([]*Detection, len(dets))
	for i, d := range dets {
		out[i] = newDetection(d)
	}
	return out
}

// SourcesSnapshot returns per-collector accounting rows sorted by
// (agent, sub-agent).
func (s *Service) SourcesSnapshot() []SourceStats {
	s.smu.Lock()
	out := make([]SourceStats, 0, len(s.sources))
	for _, src := range s.sources {
		out = append(out, src.stats)
	}
	s.smu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agent != out[j].Agent {
			return out[i].Agent < out[j].Agent
		}
		return out[i].SubAgent < out[j].SubAgent
	})
	return out
}

// StagesSnapshot returns accumulated per-stage timings.
func (s *Service) StagesSnapshot() []StageTiming { return s.stages.Snapshot() }

// Registry exposes the metric registry (the /metrics content).
func (s *Service) Registry() *metrics.Registry { return s.reg }
