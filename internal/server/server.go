// Package server is the live multi-collector service mode: an
// always-on daemon that ingests sFlow v5 datagrams over UDP from many
// concurrent collectors, sanitizes their samples through the same
// capture-point pipeline the batch study uses, folds them into a
// sliding-window incremental aggregate (window-expired client-days
// evicted in place, arena slots recycled), and serves results and
// operational state over HTTP.
//
// Layering: internal/sflow parses datagrams, internal/ixp sanitizes
// frames into DNS samples, internal/core aggregates and detects;
// this package adds what a daemon needs on top — per-source
// sequence/drop accounting (sources.go), the sliding window
// (window.go), stage timings (stages.go), datagram replay over UDP
// (replay.go), and the Service that wires a UDP reader, a consumer,
// and an HTTP control surface together (this file, http.go).
//
// Concurrency model: one reader goroutine owns the UDP socket, parses
// each datagram, accounts it to its (agent, sub-agent) source row, and
// enqueues it on a single bounded queue shared by all sources; one
// consumer goroutine drains the queue into the window. Backpressure is
// per source: each source has a pending-datagram meter, and when a
// source exceeds its queue share (or the shared queue is full) the
// reader drops that source's datagram and counts it — a stalled or
// flooding collector sheds only its own traffic and can never wedge
// ingest for its neighbours. HTTP handlers take read snapshots under
// the same locks, so scrapes never block the hot path for long.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsamp/internal/metrics"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// Config configures a Service. Zero fields take the documented
// defaults.
type Config struct {
	// UDPAddr is the sFlow listen address (default "127.0.0.1:0").
	UDPAddr string
	// HTTPAddr is the control-surface listen address (default
	// "127.0.0.1:0").
	HTTPAddr string

	// Window configures the sliding-window detector.
	Window WindowConfig

	// TimeFromUptime, when set, takes each datagram's timestamp from its
	// Uptime field interpreted as a unix second — the replay convention
	// SendLog writes (recorded logs carry their original capture
	// timestamps there). When unset, datagrams are stamped with the
	// daemon's wall clock on arrival — the live deployment mode.
	TimeFromUptime bool

	// QueueLen is the shared ingest queue capacity in datagrams
	// (default 1024). PerSourceQueue caps one source's share of it
	// (default QueueLen/4): a source with that many datagrams already
	// pending has new ones dropped and counted against it.
	QueueLen       int
	PerSourceQueue int
	// ReadBuffer is the requested kernel receive buffer size in bytes
	// (default 1 MiB; best-effort).
	ReadBuffer int
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.PerSourceQueue <= 0 {
		c.PerSourceQueue = c.QueueLen / 4
		if c.PerSourceQueue < 1 {
			c.PerSourceQueue = 1
		}
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 1 << 20
	}
	return c
}

// item is one parsed datagram in flight from reader to consumer.
type item struct {
	src *sourceState
	dg  *sflow.Datagram
	at  simclock.Time
}

// Service is the running daemon. Construct with NewService, start with
// Start, stop with Shutdown.
type Service struct {
	cfg    Config
	stages *Stages
	reg    *metrics.Registry

	// mu serializes window access (consumer vs HTTP snapshots).
	mu  sync.Mutex
	win *Window

	// smu guards the source registry; row fields other than pending are
	// written only by the reader under it.
	smu     sync.Mutex
	sources map[sourceKey]*sourceState

	queue chan item

	conn    *net.UDPConn
	httpLn  net.Listener
	httpSrv *http.Server

	readerDone   chan struct{}
	consumerDone chan struct{}
	started      bool

	// gate, when non-nil, stalls the consumer until it is closed —
	// a test hook simulating a consumer that cannot keep up.
	gate chan struct{}

	received    atomic.Uint64 // datagrams read off the socket
	parseErrors atomic.Uint64
	consumed    atomic.Uint64 // datagrams drained into the window
	queueDrops  atomic.Uint64 // total, across sources
}

// NewService builds an unstarted service.
func NewService(cfg Config) *Service {
	s := &Service{
		cfg:          cfg.withDefaults(),
		stages:       NewStages(),
		reg:          metrics.NewRegistry(),
		sources:      make(map[sourceKey]*sourceState),
		readerDone:   make(chan struct{}),
		consumerDone: make(chan struct{}),
	}
	s.win = NewWindow(s.cfg.Window, s.stages)
	s.queue = make(chan item, s.cfg.QueueLen)
	s.registerMetrics()
	return s
}

// Start binds the UDP and HTTP listeners and launches the reader,
// consumer, and HTTP serving goroutines.
func (s *Service) Start() error {
	if s.started {
		return errors.New("server: already started")
	}
	uaddr, err := net.ResolveUDPAddr("udp", s.cfg.UDPAddr)
	if err != nil {
		return fmt.Errorf("server: resolving UDP addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return fmt.Errorf("server: listening UDP: %w", err)
	}
	_ = conn.SetReadBuffer(s.cfg.ReadBuffer) // best-effort
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		conn.Close()
		return fmt.Errorf("server: listening HTTP: %w", err)
	}
	s.conn = conn
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.handler()}
	s.started = true
	go s.readLoop()
	go s.consumeLoop()
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound UDP listen address (after Start).
func (s *Service) Addr() net.Addr { return s.conn.LocalAddr() }

// HTTPAddr returns the bound HTTP listen address (after Start).
func (s *Service) HTTPAddr() net.Addr { return s.httpLn.Addr() }

// Shutdown stops the service in dependency order: close the socket so
// the reader exits and closes the queue, wait for the consumer to
// drain everything already accepted, finalize the window (detecting
// over the day in progress), then stop the HTTP server — so a final
// scrape after the data path stops still sees the complete state.
func (s *Service) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	s.conn.Close()
	<-s.readerDone
	<-s.consumerDone
	s.mu.Lock()
	s.win.Close()
	s.mu.Unlock()
	return s.httpSrv.Shutdown(ctx)
}

// readLoop owns the socket: read, parse, account, enqueue-or-shed.
func (s *Service) readLoop() {
	defer close(s.readerDone)
	defer close(s.queue)
	buf := make([]byte, 1<<16)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			// Closed during Shutdown (or a fatal socket error — either
			// way the data path winds down).
			return
		}
		s.received.Add(1)
		stop := s.stages.Track("parse")
		dg, err := sflow.ParseDatagram(buf[:n])
		stop()
		if err != nil {
			s.parseErrors.Add(1)
			continue
		}
		var at simclock.Time
		if s.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		} else {
			at = simclock.Time(time.Now().Unix())
		}
		key := sourceKey{agent: dg.Agent, subAgent: dg.SubAgent}
		s.smu.Lock()
		src := s.sources[key]
		if src == nil {
			src = &sourceState{key: key}
			src.stats.Agent = fmt.Sprintf("%d.%d.%d.%d", key.agent[0], key.agent[1], key.agent[2], key.agent[3])
			src.stats.SubAgent = key.subAgent
			s.sources[key] = src
		}
		src.account(dg, at)
		shed := src.pending.Load() >= int64(s.cfg.PerSourceQueue)
		if !shed {
			select {
			case s.queue <- item{src: src, dg: dg, at: at}:
				src.pending.Add(1)
			default:
				shed = true // shared queue full
			}
		}
		if shed {
			src.stats.QueueDrops++
			s.queueDrops.Add(1)
		}
		s.smu.Unlock()
	}
}

// consumeLoop drains the queue into the window.
func (s *Service) consumeLoop() {
	defer close(s.consumerDone)
	for it := range s.queue {
		if s.gate != nil {
			<-s.gate
		}
		it.src.pending.Add(-1)
		stop := s.stages.Track("observe")
		s.mu.Lock()
		cp := s.win.Capture()
		for i := range it.dg.Samples {
			fs := &it.dg.Samples[i]
			smp, ok := cp.Process(sflow.Record{
				Time:     it.at,
				Frame:    fs.Header,
				FrameLen: int(fs.FrameLen),
				Seq:      uint64(fs.Seq),
			})
			if !ok {
				continue
			}
			if smp.PeerAS == 0 && fs.Input != 0 {
				// The replay convention: ingress member ASN rides the
				// Input interface field when no topology is wired up.
				smp.PeerAS = fs.Input
			}
			s.win.Observe(&smp)
		}
		s.mu.Unlock()
		stop()
		s.consumed.Add(1)
	}
}

// Received reports datagrams read off the socket so far.
func (s *Service) Received() uint64 { return s.received.Load() }

// Consumed reports datagrams fully drained into the window so far.
// Tests pace senders against it: once Consumed matches what was sent,
// every accepted sample is in the window.
func (s *Service) Consumed() uint64 { return s.consumed.Load() }

// QueueDrops reports datagrams shed by backpressure across all
// sources.
func (s *Service) QueueDrops() uint64 { return s.queueDrops.Load() }

// WindowSnapshot returns the window's observable state.
func (s *Service) WindowSnapshot() WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Stats()
}

// DetectionsSnapshot returns the retained detections.
func (s *Service) DetectionsSnapshot() []*Detection {
	s.mu.Lock()
	dets := s.win.Detections()
	s.mu.Unlock()
	out := make([]*Detection, len(dets))
	for i, d := range dets {
		out[i] = newDetection(d)
	}
	return out
}

// SourcesSnapshot returns per-collector accounting rows sorted by
// (agent, sub-agent).
func (s *Service) SourcesSnapshot() []SourceStats {
	s.smu.Lock()
	out := make([]SourceStats, 0, len(s.sources))
	for _, src := range s.sources {
		out = append(out, src.stats)
	}
	s.smu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agent != out[j].Agent {
			return out[i].Agent < out[j].Agent
		}
		return out[i].SubAgent < out[j].SubAgent
	})
	return out
}

// StagesSnapshot returns accumulated per-stage timings.
func (s *Service) StagesSnapshot() []StageTiming { return s.stages.Snapshot() }

// Registry exposes the metric registry (the /metrics content).
func (s *Service) Registry() *metrics.Registry { return s.reg }
