// Package server is the live multi-collector service mode: an
// always-on daemon that ingests sFlow v5 datagrams over UDP from many
// concurrent collectors, sanitizes their samples through the same
// capture-point pipeline the batch study uses, folds them into a
// sliding-window incremental aggregate (window-expired client-days
// evicted in place, arena slots recycled), and serves results and
// operational state over HTTP.
//
// Layering: internal/sflow parses datagrams, internal/ixp sanitizes
// frames into DNS samples, internal/core aggregates and detects;
// this package adds what a daemon needs on top — per-source
// sequence/drop accounting (sources.go), the sliding window
// (window.go), stage timings (stages.go), datagram replay over UDP
// (replay.go), crash-safe checkpoint/resume (checkpoint.go), tiered
// overload response (health.go), tail-log ingest (tail.go), and the
// Service that wires a UDP reader, a consumer, and an HTTP control
// surface together (this file, http.go).
//
// Concurrency model: one producer goroutine owns ingest — reading the
// UDP socket (or tailing a datagram log), parsing, accounting each
// datagram to its (agent, sub-agent) source row, and enqueuing on a
// single bounded queue — and one consumer goroutine drains the queue
// into the window. Backpressure is tiered: per source first (a stalled
// or flooding collector sheds only its own traffic), then global
// sampling-down and detection-only shedding when the shared queue
// fills (health.go). The producer survives transient socket errors
// with capped backoff and rebinds a dead socket; a consumer panic
// quarantines the offending datagram to a poison file instead of
// killing the drain. HTTP handlers take read snapshots under the same
// locks, so scrapes never block the hot path for long.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnsamp/internal/ingest"
	"dnsamp/internal/metrics"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// Config configures a Service. Zero fields take the documented
// defaults.
type Config struct {
	// UDPAddr is the sFlow listen address (default "127.0.0.1:0").
	UDPAddr string
	// HTTPAddr is the control-surface listen address (default
	// "127.0.0.1:0").
	HTTPAddr string

	// Window configures the sliding-window detector.
	Window WindowConfig

	// TimeFromUptime, when set, takes each datagram's timestamp from its
	// Uptime field interpreted as a unix second — the replay convention
	// SendLog writes (recorded logs carry their original capture
	// timestamps there). When unset, datagrams are stamped with the
	// daemon's wall clock on arrival — the live deployment mode.
	TimeFromUptime bool

	// QueueLen is the shared ingest queue capacity in datagrams
	// (default 1024). PerSourceQueue caps one source's share of it
	// (default QueueLen/4): a source with that many datagrams already
	// pending has new ones dropped and counted against it.
	QueueLen       int
	PerSourceQueue int
	// ReadBuffer is the requested kernel receive buffer size in bytes
	// (default 1 MiB; best-effort).
	ReadBuffer int

	// StateDir, when set, enables crash-safe state: periodic checkpoints
	// (and a final one at shutdown) are written there atomically, and
	// consumer-panic datagrams are quarantined there as poison files.
	StateDir string
	// CheckpointEvery is the periodic checkpoint cadence (default 1m;
	// < 0 disables the timer, keeping only the shutdown checkpoint).
	CheckpointEvery time.Duration
	// CheckpointRetain is how many checkpoint files to keep (default 3).
	CheckpointRetain int
	// Resume, with StateDir set, loads the newest valid checkpoint at
	// Start and continues mid-stream: the window picks up exactly where
	// it stopped, and re-sent datagrams at or below each source's
	// checkpointed cursor are skipped, not double-counted.
	Resume bool

	// TailLog, when set, replaces UDP ingest with tailing the given
	// sFlow datagram log (the LogWriter format): entries are consumed as
	// they are appended, rotation and truncation are survived, and the
	// consumed byte offset rides in checkpoints so Resume continues from
	// the right entry.
	TailLog string

	// Inputs, when non-empty, replaces the single-input modes with
	// supervised multi-source ingest: every configured source (UDP
	// listeners, tailed logs, replay files, pcap captures, synthetic
	// fill) runs under its own supervisor in internal/ingest and feeds
	// the shared queue in the order Policy picks. Mutually exclusive
	// with UDPAddr/TailLog single-input operation; per-input resume
	// cursors ride in checkpoints keyed by the stable Spec ID.
	Inputs []ingest.Spec
	// Policy is the ingest scheduling policy (ingest.PolicyRoundRobin,
	// ingest.PolicyBacklog, or ingest.PolicyArrival; default
	// round-robin). Only meaningful with Inputs.
	Policy string
	// IngestTuning overrides the supervision knobs (buffer depth,
	// restart backoff, stall deadline, quarantine threshold). Zero
	// fields take the ingest defaults.
	IngestTuning ingest.Tuning

	// ListenPacket, when set, binds the ingest socket (initially and on
	// rebind) instead of net.ListenUDP — the fault-injection seam. With
	// Inputs it also binds every UDP source's socket.
	ListenPacket func(addr string) (net.PacketConn, error)
	// WrapReader, when set, wraps every file-backed ingest stream — the
	// stream-fault seam (faults.Injector.Reader). Only used with Inputs.
	WrapReader func(id string, r io.Reader) io.Reader
	// IngestFaultPanic, when set, panics per-source datagram delivery on
	// matching datagrams — the test hook for ingest-level panic
	// containment. Only used with Inputs.
	IngestFaultPanic func(id string, dg *sflow.Datagram) bool
}

func (c Config) withDefaults() Config {
	if c.UDPAddr == "" {
		c.UDPAddr = "127.0.0.1:0"
	}
	if c.HTTPAddr == "" {
		c.HTTPAddr = "127.0.0.1:0"
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.PerSourceQueue <= 0 {
		c.PerSourceQueue = c.QueueLen / 4
		if c.PerSourceQueue < 1 {
			c.PerSourceQueue = 1
		}
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 1 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = time.Minute
	}
	if c.CheckpointRetain <= 0 {
		c.CheckpointRetain = 3
	}
	return c
}

// Ingest retry/backoff bounds (transient read errors, socket rebinds,
// tail-log polls).
const (
	readBackoffMin = 50 * time.Millisecond
	readBackoffMax = 5 * time.Second
	tailBackoffMin = 20 * time.Millisecond
	tailBackoffMax = 500 * time.Millisecond
)

// item is one parsed datagram in flight from producer to consumer. off
// is the durable-input cursor just past its entry (a tail-log byte
// offset or an ingest count cursor; 0 on UDP paths), and epoch tells
// the consumer when cursors stopped being comparable (a tailed file
// was reopened after rotation/truncation, or the source restarted).
type item struct {
	src   *sourceState
	dg    *sflow.Datagram
	at    simclock.Time
	off   int64
	epoch uint64
}

// srcCursor is the consumed position of one durable ingest input:
// the newest (epoch, offset) the consumer drained into the window.
// Epochs order incomparable offset spaces; only the offset persists
// in checkpoints (it is what the source adapter can seek to).
type srcCursor struct {
	epoch uint64
	off   int64
}

// Service is the running daemon. Construct with NewService, start with
// Start, stop with Shutdown.
type Service struct {
	cfg    Config
	stages *Stages
	reg    *metrics.Registry

	// mu serializes window access (consumer vs HTTP snapshots vs
	// checkpointer); it also guards the consumer-side resume cursors
	// (sourceState.cursor, tailOffConsumed, inputCursors) so
	// checkpoints are exact (window, cursor) pairs.
	mu                sync.Mutex
	win               *Window
	tailOffConsumed   int64
	tailEpochConsumed uint64
	inputCursors      map[string]srcCursor

	// smu guards the source registry; row fields other than pending and
	// cursor are written only by the producer under it.
	smu     sync.Mutex
	sources map[sourceKey]*sourceState

	queue chan item

	// cmu guards conn, which the producer may swap on rebind.
	cmu  sync.Mutex
	conn net.PacketConn

	// sched drives multi-source ingest (nil in the single-input modes);
	// schedResume carries per-input cursors from a restored checkpoint
	// into its construction.
	sched       *ingest.Scheduler
	schedResume map[string]int64

	httpLn  net.Listener
	httpSrv *http.Server

	readerDone   chan struct{}
	consumerDone chan struct{}
	ckptStop     chan struct{}
	ckptDone     chan struct{}
	started      bool
	closing      atomic.Bool
	shutdownOnce sync.Once
	shutdownErr  error

	health health

	// Checkpoint/resume state: write sequence, resume source, tail
	// resume offset (set by decodeCheckpoint before Start).
	ckptSeq      uint64
	resumedFrom  string
	tailResumeAt int64

	// sampleTick drives tier-2 1-in-2 sampling; producer-owned.
	sampleTick uint64

	// gate, when non-nil, stalls the consumer until it is closed —
	// a test hook simulating a consumer that cannot keep up.
	gate chan struct{}
	// faultPanic, when non-nil, panics the consumer on matching
	// datagrams — the test hook for the panic-isolation path.
	faultPanic func(*sflow.Datagram) bool

	received      atomic.Uint64 // datagrams read off the socket / log
	parseErrors   atomic.Uint64
	consumed      atomic.Uint64 // datagrams drained into the window
	queueDrops    atomic.Uint64 // per-source backpressure, across sources
	replaySkipped atomic.Uint64 // resume-barrier skips, across sources
	readRetries   atomic.Uint64 // transient ReadFrom errors retried
	rebinds       atomic.Uint64 // successful socket rebinds
	panics        atomic.Uint64 // consumer panics isolated
	poisoned      atomic.Uint64 // datagrams quarantined to poison files
	ckpts         atomic.Uint64 // checkpoints written
	ckptErrors    atomic.Uint64 // checkpoint attempts failed
	ckptBytes     atomic.Uint64 // size of the newest checkpoint
	tailReopens   atomic.Uint64 // tail-log truncation/rotation reopens
}

// NewService builds an unstarted service.
func NewService(cfg Config) *Service {
	s := &Service{
		cfg:          cfg.withDefaults(),
		stages:       NewStages(),
		reg:          metrics.NewRegistry(),
		sources:      make(map[sourceKey]*sourceState),
		inputCursors: make(map[string]srcCursor),
		schedResume:  make(map[string]int64),
		readerDone:   make(chan struct{}),
		consumerDone: make(chan struct{}),
		ckptStop:     make(chan struct{}),
		ckptDone:     make(chan struct{}),
	}
	s.win = NewWindow(s.cfg.Window, s.stages)
	s.queue = make(chan item, s.cfg.QueueLen)
	s.registerMetrics()
	return s
}

// listenPacket binds the ingest socket at addr, through the configured
// seam when one is set.
func (s *Service) listenPacket(addr string) (net.PacketConn, error) {
	if s.cfg.ListenPacket != nil {
		return s.cfg.ListenPacket(addr)
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: resolving UDP addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetReadBuffer(s.cfg.ReadBuffer) // best-effort
	return conn, nil
}

// Start binds the listeners, restores a checkpoint when resuming, and
// launches the producer, consumer, checkpointer, and HTTP goroutines.
func (s *Service) Start() error {
	if s.started {
		return errors.New("server: already started")
	}
	if len(s.cfg.Inputs) > 0 && s.cfg.TailLog != "" {
		return errors.New("server: Inputs and TailLog are mutually exclusive")
	}
	if s.cfg.StateDir != "" {
		if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
			return fmt.Errorf("server: creating state dir: %w", err)
		}
		if s.cfg.Resume {
			if err := s.resume(); err != nil {
				return err
			}
		} else {
			s.ckptSeq = nextCkptSeq(listCheckpoints(s.cfg.StateDir))
		}
	}
	switch {
	case len(s.cfg.Inputs) > 0:
		sched, err := ingest.New(ingest.Config{
			Specs:          s.cfg.Inputs,
			Policy:         s.cfg.Policy,
			Cursors:        s.schedResume,
			TimeFromUptime: s.cfg.TimeFromUptime,
			Tuning:         s.cfg.IngestTuning,
			ListenPacket:   s.cfg.ListenPacket,
			WrapReader:     s.cfg.WrapReader,
			FaultPanic:     s.cfg.IngestFaultPanic,
			Poison: func(id string, dg *sflow.Datagram, cause any) {
				s.panics.Add(1)
				s.quarantine(id, dg, cause)
			},
		})
		if err != nil {
			return fmt.Errorf("server: configuring ingest: %w", err)
		}
		s.sched = sched
	case s.cfg.TailLog == "":
		conn, err := s.listenPacket(s.cfg.UDPAddr)
		if err != nil {
			return fmt.Errorf("server: listening UDP: %w", err)
		}
		s.conn = conn
	}
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		if s.conn != nil {
			s.conn.Close()
		}
		return fmt.Errorf("server: listening HTTP: %w", err)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.handler()}
	s.started = true
	switch {
	case s.sched != nil:
		s.sched.Start()
		go s.schedLoop()
	case s.cfg.TailLog == "":
		go s.readLoop()
	default:
		go s.tailLoop()
	}
	go s.consumeLoop()
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	if s.cfg.StateDir != "" && s.cfg.CheckpointEvery > 0 {
		go s.checkpointLoop()
	} else {
		close(s.ckptDone)
	}
	return nil
}

// Addr returns the bound UDP listen address (after Start; nil in
// tail-log mode).
func (s *Service) Addr() net.Addr {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// HTTPAddr returns the bound HTTP listen address (after Start).
func (s *Service) HTTPAddr() net.Addr { return s.httpLn.Addr() }

// Shutdown stops the service in dependency order: close the socket so
// the producer exits and closes the queue, wait for the consumer to
// drain everything already accepted, write the final checkpoint (the
// drained, pre-finalize state a resumed service continues from),
// finalize the window (detecting over the day in progress), then stop
// the HTTP server — so a final scrape after the data path stops still
// sees the complete state.
func (s *Service) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	s.shutdownOnce.Do(func() {
		s.closing.Store(true)
		s.cmu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.cmu.Unlock()
		if s.sched != nil {
			s.sched.Stop()
		}
		<-s.readerDone
		<-s.consumerDone
		close(s.ckptStop)
		<-s.ckptDone
		var ckptErr error
		if s.cfg.StateDir != "" {
			_, ckptErr = s.Checkpoint()
		}
		s.mu.Lock()
		s.win.Close()
		s.mu.Unlock()
		err := s.httpSrv.Shutdown(ctx)
		if ckptErr != nil {
			err = ckptErr
		}
		s.shutdownErr = err
	})
	return s.shutdownErr
}

// currentConn fetches the producer's socket (it may have been swapped
// by a rebind).
func (s *Service) currentConn() net.PacketConn {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.conn
}

// rebind replaces a dead socket with a fresh one bound to the same
// address, retrying with capped backoff until shutdown. Reports
// whether a new socket is in place.
func (s *Service) rebind() bool {
	old := s.currentConn()
	if old == nil {
		return false
	}
	addr := old.LocalAddr().String()
	backoff := readBackoffMin
	for !s.closing.Load() {
		conn, err := s.listenPacket(addr)
		if err == nil {
			s.cmu.Lock()
			if s.closing.Load() {
				s.cmu.Unlock()
				conn.Close()
				return false
			}
			s.conn = conn
			s.cmu.Unlock()
			s.rebinds.Add(1)
			return true
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > readBackoffMax {
			backoff = readBackoffMax
		}
	}
	return false
}

// readLoop owns the socket: read, parse, account, enqueue-or-shed.
// Transient read errors are retried with capped backoff; a closed
// socket (when not shutting down) is rebound.
func (s *Service) readLoop() {
	defer close(s.readerDone)
	defer close(s.queue)
	buf := make([]byte, 1<<16)
	backoff := readBackoffMin
	for {
		conn := s.currentConn()
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if s.closing.Load() {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				// The socket died under us (not Shutdown): rebind it.
				if !s.rebind() {
					return
				}
				continue
			}
			s.readRetries.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > readBackoffMax {
				backoff = readBackoffMax
			}
			continue
		}
		backoff = readBackoffMin
		s.received.Add(1)
		stop := s.stages.Track("parse")
		dg, perr := sflow.ParseDatagram(buf[:n])
		stop()
		if perr != nil {
			s.parseErrors.Add(1)
			continue
		}
		var at simclock.Time
		if s.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		} else {
			at = simclock.Time(time.Now().Unix())
		}
		s.enqueueParsed("", dg, at)
	}
}

// schedLoop is the producer in multi-source ingest mode: it drains the
// scheduler's merged stream into the shared queue. Items from durable
// sources are flow-controlled (never shed — their cursors make loss
// unnecessary); UDP items go through the regular shed tiers. The
// scheduler already parsed, timestamped, and per-source-buffered
// everything, so this loop is just accounting plus queue admission.
func (s *Service) schedLoop() {
	defer close(s.readerDone)
	defer close(s.queue)
	for it := range s.sched.Items() {
		s.received.Add(1)
		if it.Durable {
			if !s.enqueueDurable(it.SourceID, it.Dg, it.At, it.Cursor, it.Epoch) {
				return
			}
		} else {
			s.enqueueParsed(it.SourceID, it.Dg, it.At)
		}
	}
}

// accountLocked runs the resume barrier and per-source accounting for
// one parsed datagram, creating the source row on first sight. sid
// scopes the row to the configured ingest input it arrived through
// ("" in the single-input modes). Returns nil when the replay barrier
// skipped the datagram. Producer-goroutine only; caller holds smu.
func (s *Service) accountLocked(sid string, dg *sflow.Datagram, at simclock.Time, durable bool) *sourceState {
	key := sourceKey{src: sid, agent: dg.Agent, subAgent: dg.SubAgent}
	src := s.sources[key]
	if src == nil {
		src = &sourceState{key: key}
		src.stats.Input = sid
		src.stats.Agent = fmt.Sprintf("%d.%d.%d.%d", key.agent[0], key.agent[1], key.agent[2], key.agent[3])
		src.stats.SubAgent = key.subAgent
		s.sources[key] = src
	}
	if src.resuming {
		switch {
		case durable:
			// A durable input resumes by byte/record cursor: its adapter
			// re-reads exactly what was never consumed, so the sequence
			// barrier adds nothing — and misfires after a rotation reset
			// the writer's sequence numbers below the consumed cursor.
			src.resuming = false
		case dg.Seq <= src.resumeSeq && dg.Seq >= src.stats.FirstSeq:
			// Already inside the restored window: consuming it again would
			// double-count, so it is skipped before any accounting.
			src.stats.ReplaySkipped++
			s.replaySkipped.Add(1)
			return nil
		default:
			src.resuming = false
		}
	}
	src.account(dg, at)
	return src
}

// enqueueParsed accounts one parsed UDP datagram to its source and
// either enqueues it for the consumer or sheds it: the resume barrier
// first (already-consumed replays), then the global overload tiers,
// then per-source backpressure. Producer-goroutine only.
func (s *Service) enqueueParsed(sid string, dg *sflow.Datagram, at simclock.Time) {
	s.smu.Lock()
	defer s.smu.Unlock()
	src := s.accountLocked(sid, dg, at, false)
	if src == nil {
		return
	}

	// Global overload tiers (the per-source tier is below, unchanged):
	// above ⅞ full shed everything, above ¾ keep 1-in-2.
	depth, capacity := len(s.queue), s.cfg.QueueLen
	if depth*shedAllDen >= capacity*shedAllNum {
		s.health.noteOverload()
		s.health.shedAll.Add(1)
		return
	}
	if depth*sampleDownDen >= capacity*sampleDownNum {
		s.health.noteOverload()
		if s.sampleTick++; s.sampleTick%2 == 1 {
			s.health.sampledOut.Add(1)
			return
		}
	}
	s.health.noteDepth(depth, capacity)

	shed := src.pending.Load() >= int64(s.cfg.PerSourceQueue)
	if !shed {
		select {
		case s.queue <- item{src: src, dg: dg, at: at}:
			src.pending.Add(1)
		default:
			shed = true // shared queue full
		}
	}
	if shed {
		src.stats.QueueDrops++
		s.queueDrops.Add(1)
	}
}

// enqueueDurable accounts one durable-input entry (tail log, replay
// file, pcap, synthetic) and enqueues it, blocking while the queue is
// full. Durable ingest never sheds: the input survives on its own, so
// backpressure is flow control — the producer pauses — not loss, and
// the overload tiers stay out of it. Reports false when shutdown
// interrupted the wait; the entry was not enqueued and its offset
// never advanced, so a resume re-reads it.
func (s *Service) enqueueDurable(sid string, dg *sflow.Datagram, at simclock.Time, off int64, epoch uint64) bool {
	s.smu.Lock()
	src := s.accountLocked(sid, dg, at, true)
	s.smu.Unlock()
	if src == nil {
		return true
	}
	it := item{src: src, dg: dg, at: at, off: off, epoch: epoch}
	for {
		select {
		case s.queue <- it:
			src.pending.Add(1)
			return true
		default:
		}
		if s.closing.Load() {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// consumeLoop drains the queue into the window. A panic while
// processing one datagram is isolated: the datagram is quarantined to
// a poison file and the loop moves on.
func (s *Service) consumeLoop() {
	defer close(s.consumerDone)
	for it := range s.queue {
		if s.gate != nil {
			<-s.gate
		}
		it.src.pending.Add(-1)
		s.consumeOne(it)
		s.consumed.Add(1)
		s.health.noteDepth(len(s.queue), s.cfg.QueueLen)
	}
}

// consumeOne observes one datagram's samples into the window and
// advances the source's consume cursor. Panics unwind through the
// deferred recover into quarantine; the lock and stage timer unwind
// with them.
func (s *Service) consumeOne(it item) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.quarantine(it.src.key.src, it.dg, r)
		}
	}()
	stop := s.stages.Track("observe")
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faultPanic != nil && s.faultPanic(it.dg) {
		panic(fmt.Sprintf("injected consumer fault on seq %d", it.dg.Seq))
	}
	cp := s.win.Capture()
	for i := range it.dg.Samples {
		fs := &it.dg.Samples[i]
		smp, ok := cp.Process(sflow.Record{
			Time:     it.at,
			Frame:    fs.Header,
			FrameLen: int(fs.FrameLen),
			Seq:      uint64(fs.Seq),
		})
		if !ok {
			continue
		}
		if smp.PeerAS == 0 && fs.Input != 0 {
			// The replay convention: ingress member ASN rides the
			// Input interface field when no topology is wired up.
			smp.PeerAS = fs.Input
		}
		s.win.Observe(&smp)
	}
	// Cursor advance is the last locked step: a panicking datagram never
	// moves the cursor, so after a resume it is re-sent, re-quarantined,
	// and still never half-counted. Offsets compare within an epoch
	// only: after a rotation/truncation reopen (or a supervised-source
	// restart) offsets start over in a new, smaller space, and a newer
	// epoch always supersedes — without this, a post-rotation checkpoint
	// would carry the dead file's large stale offset.
	if it.dg.Seq > it.src.cursor {
		it.src.cursor = it.dg.Seq
	}
	if it.off > 0 {
		if sid := it.src.key.src; sid != "" {
			c := s.inputCursors[sid]
			if it.epoch > c.epoch || (it.epoch == c.epoch && it.off > c.off) {
				s.inputCursors[sid] = srcCursor{epoch: it.epoch, off: it.off}
			}
		} else if it.epoch > s.tailEpochConsumed || (it.epoch == s.tailEpochConsumed && it.off > s.tailOffConsumed) {
			s.tailEpochConsumed, s.tailOffConsumed = it.epoch, it.off
		}
	}
}

// quarantine writes the datagram that broke the consumer to a poison
// file for offline triage, named with the source it arrived through so
// two sources' poison in the same instant can never collide or point
// triage at the wrong feed. Without a StateDir the event is only
// counted.
func (s *Service) quarantine(sid string, dg *sflow.Datagram, cause any) {
	if s.cfg.StateDir == "" {
		return
	}
	n := s.poisoned.Add(1)
	body := sflow.EncodeDatagram(dg)
	meta := fmt.Sprintf("# consumer panic: %v\n# source %s\n# agent %d.%d.%d.%d/%d seq %d\n",
		cause, sourceSlug(sid), dg.Agent[0], dg.Agent[1], dg.Agent[2], dg.Agent[3], dg.SubAgent, dg.Seq)
	path := filepath.Join(s.cfg.StateDir, fmt.Sprintf("poison-%s-%06d.sflow", sourceSlug(sid), n))
	_ = atomicWriteFile(path, append([]byte(meta), body...))
}

// sourceSlug renders an ingest source ID as a filesystem-safe name
// fragment. The single-input modes ("" ID) slug as "main".
func sourceSlug(sid string) string {
	if sid == "" {
		return "main"
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, sid)
	if len(slug) > 48 {
		slug = slug[:48]
	}
	return slug
}

// Received reports datagrams read off the socket so far.
func (s *Service) Received() uint64 { return s.received.Load() }

// Consumed reports datagrams fully drained into the window so far.
// Tests pace senders against it: once Consumed matches what was sent,
// every accepted sample is in the window.
func (s *Service) Consumed() uint64 { return s.consumed.Load() }

// QueueDrops reports datagrams shed by per-source backpressure across
// all sources.
func (s *Service) QueueDrops() uint64 { return s.queueDrops.Load() }

// ReplaySkipped reports datagrams skipped by the post-resume replay
// barrier across all sources.
func (s *Service) ReplaySkipped() uint64 { return s.replaySkipped.Load() }

// SampledOut reports datagrams shed by tier-2 global sampling-down.
func (s *Service) SampledOut() uint64 { return s.health.sampledOut.Load() }

// ShedAll reports datagrams shed by tier-3 detection-only mode.
func (s *Service) ShedAll() uint64 { return s.health.shedAll.Load() }

// Panics reports consumer panics isolated so far.
func (s *Service) Panics() uint64 { return s.panics.Load() }

// WindowSnapshot returns the window's observable state.
func (s *Service) WindowSnapshot() WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Stats()
}

// DetectionsSnapshot returns the retained detections.
func (s *Service) DetectionsSnapshot() []*Detection {
	s.mu.Lock()
	dets := s.win.Detections()
	s.mu.Unlock()
	out := make([]*Detection, len(dets))
	for i, d := range dets {
		out[i] = newDetection(d)
	}
	return out
}

// SourcesSnapshot returns per-collector accounting rows sorted by
// (input, agent, sub-agent).
func (s *Service) SourcesSnapshot() []SourceStats {
	s.smu.Lock()
	out := make([]SourceStats, 0, len(s.sources))
	for _, src := range s.sources {
		out = append(out, src.stats)
	}
	s.smu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Input != out[j].Input {
			return out[i].Input < out[j].Input
		}
		if out[i].Agent != out[j].Agent {
			return out[i].Agent < out[j].Agent
		}
		return out[i].SubAgent < out[j].SubAgent
	})
	return out
}

// InputsSnapshot returns per-input supervisor rows in configuration
// order (nil outside multi-source ingest mode).
func (s *Service) InputsSnapshot() []ingest.SupervisorStats {
	if s.sched == nil {
		return nil
	}
	return s.sched.Snapshot()
}

// Ingest exposes the multi-source scheduler (nil in the single-input
// modes) — bound UDP addresses and supervisor state for tests and the
// CLI.
func (s *Service) Ingest() *ingest.Scheduler { return s.sched }

// InputCursor reports the consumed resume cursor of one configured
// ingest input (0 before anything of it was consumed).
func (s *Service) InputCursor(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inputCursors[id].off
}

// StagesSnapshot returns accumulated per-stage timings.
func (s *Service) StagesSnapshot() []StageTiming { return s.stages.Snapshot() }

// Registry exposes the metric registry (the /metrics content).
func (s *Service) Registry() *metrics.Registry { return s.reg }
