package ecosystem

import (
	"reflect"
	"testing"

	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// TestDayBatchMatchesWire is the equivalence proof behind the columnar
// fast path: for every day, the batch emitted by Day — replayed through
// CapturePoint.ConsumeBatch — must yield exactly the samples and
// sanitization stats that WireDay's materialized frames yield through
// the frame-level CapturePoint.Process. Both paths consume their
// per-day RNG stream identically, so this holds field-by-field.
func TestDayBatchMatchesWire(t *testing.T) {
	c := tinyCampaign(t)
	gw := NewGenerator(c, 7)
	gb := NewGenerator(c, 7)

	days := []simclock.Time{
		simclock.MeasurementStart,
		simclock.MeasurementStart.Add(simclock.Days(3)),
		simclock.MeasurementStart.Add(simclock.Days(10)),
		c.Entity.Reloc1.Add(simclock.Days(3)), // ingress-tagged requests
		simclock.MeasurementEnd.Add(simclock.Days(5)),
	}
	for _, day := range days {
		wire := gw.WireDay(day)
		batch := gb.Day(day)

		capW := ixp.NewCapturePoint(c.Topo, nil)
		var wSamples []ixp.DNSSample
		for _, tr := range wire.IXP {
			s, ok := capW.Process(tr.Rec)
			if !ok {
				continue
			}
			if tr.Ingress != 0 {
				s.PeerAS = tr.Ingress
			}
			wSamples = append(wSamples, s)
		}

		capB := ixp.NewCapturePoint(c.Topo, nil)
		var bSamples []ixp.DNSSample
		capB.ConsumeBatch(batch.Batch, func(s *ixp.DNSSample) {
			bSamples = append(bSamples, *s)
		})

		if len(wSamples) != len(bSamples) {
			t.Fatalf("day %s: %d wire samples vs %d batch samples",
				day.Date(), len(wSamples), len(bSamples))
		}
		for i := range wSamples {
			if !reflect.DeepEqual(wSamples[i], bSamples[i]) {
				t.Fatalf("day %s sample %d differs:\nwire:  %+v\nbatch: %+v",
					day.Date(), i, wSamples[i], bSamples[i])
			}
		}
		if capW.Stats != capB.Stats {
			t.Errorf("day %s stats differ:\nwire:  %+v\nbatch: %+v",
				day.Date(), capW.Stats, capB.Stats)
		}
		if !reflect.DeepEqual(wire.Sensors, batch.Sensors) {
			t.Errorf("day %s sensor flows differ", day.Date())
		}
	}
}

// TestBatchColumnsConsistent checks the structural invariants of an
// emitted batch: equal column lengths and frame accounting.
func TestBatchColumnsConsistent(t *testing.T) {
	c := tinyCampaign(t)
	g := NewGenerator(c, 7)
	dt := g.Day(simclock.MeasurementStart.Add(simclock.Days(3)))
	b := dt.Batch
	if b == nil || b.N == 0 {
		t.Fatal("no batch records")
	}
	for name, l := range map[string]int{
		"Time": len(b.Time), "Src": len(b.Src), "Dst": len(b.Dst),
		"SrcPort": len(b.SrcPort), "DstPort": len(b.DstPort),
		"IPTTL": len(b.IPTTL), "IPID": len(b.IPID), "Resp": len(b.Resp),
		"Name": len(b.Name), "QType": len(b.QType), "TXID": len(b.TXID),
		"MsgSize": len(b.MsgSize), "ANCount": len(b.ANCount),
		"VisibleNS": len(b.VisibleNS), "Ingress": len(b.Ingress),
	} {
		if l != b.N {
			t.Errorf("column %s has %d entries, want %d", name, l, b.N)
		}
	}
	if b.Frames != b.N+b.NonUDP+b.NonDNS+b.Malformed {
		t.Errorf("frame accounting: %d != %d+%d+%d+%d",
			b.Frames, b.N, b.NonUDP, b.NonDNS, b.Malformed)
	}
	for _, id := range b.Name {
		if int(id) >= b.Table.Len() {
			t.Fatalf("name ID %d out of table range %d", id, b.Table.Len())
		}
	}
}
