package ecosystem

import (
	"math"
	"math/rand"
	"slices"

	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/zonedb"
)

// EntityConfig tunes the major attack entity.
type EntityConfig struct {
	// ListSize is the amplifier working set the entity maintains per
	// day (Fig. 12: a few thousand at paper scale).
	ListSize int
	// BaseEventsPerDay before the mid-August escalation.
	BaseEventsPerDay float64
	// BoostFactor multiplies the event rate after the escalation.
	BoostFactor float64
	// DailyDropRate is the share of the working set replaced each day
	// (continuous churn handling).
	DailyDropRate float64
	// TransitionDropRate is the share replaced on a name-transition day
	// ("periods with significantly more new amplifiers usually follow
	// name transitions", Fig. 12).
	TransitionDropRate float64
	// SensorLeakProb is the per-event chance that honeypot sensors leak
	// into the list (the entity excludes honeypots almost perfectly:
	// visible in <= 0.6% of honeypot attacks, §6.1).
	SensorLeakProb float64
	// ToleranceDays is how long the entity tolerates a deflated size
	// signal before moving to the next name.
	ToleranceDays int
	// DeclineRatio triggers a transition when today's expected size
	// falls below this fraction of the tenure maximum.
	DeclineRatio float64
}

// DefaultEntityConfig returns paper-scale defaults (caller scales).
func DefaultEntityConfig() EntityConfig {
	return EntityConfig{
		ListSize:           3600,
		BaseEventsPerDay:   77,
		BoostFactor:        8,
		DailyDropRate:      0.12,
		TransitionDropRate: 0.45,
		SensorLeakProb:     0.01,
		ToleranceDays:      5,
		DeclineRatio:       0.85,
	}
}

// Tenure is one contiguous span during which the entity misuses a name.
type Tenure struct {
	NameIdx    int
	Name       string
	Start, End simclock.Time // [Start, End)
	// OverlapNext marks tenures whose final OverlapDays overlap with
	// the next name ("few weeks in which two names were used
	// concurrently").
	OverlapDays int
}

// Entity is the major attack entity: rotation schedule, relocations, and
// daily amplifier-list evolution.
type Entity struct {
	Cfg     EntityConfig
	Names   []string // rotation order (lexicographic .gov list)
	Tenures []Tenure
	// Reloc1 is the day the back-end moved into an IXP member's
	// customer cone (requests become visible, ~85% of traffic).
	Reloc1 simclock.Time
	// Reloc2 is the second relocation (another member's cone).
	Reloc2 simclock.Time
	// Ingress1, Ingress2 are the member ASNs carrying the entity's
	// spoofed requests in phases 1 and 2.
	Ingress1, Ingress2 uint32
	// BoostStart is when the event rate and victim count jump (~an
	// order of magnitude, Fig. 11) — coincides with Reloc1.
	BoostStart simclock.Time

	window simclock.Window
	rng    *rand.Rand
	pool   *Pool

	// day state
	list     []int // current amplifier working set (pool ids)
	inList   map[int]bool
	newToday int
	curDay   int
}

// NewEntity plans the entity's behaviour over window. The rotation
// schedule is derived from the size signal the zones actually emit: the
// entity "observes < 4096 byte responses and then transitions to the
// next name" (§6.1).
func NewEntity(cfg EntityConfig, db *zonedb.DB, pool *Pool, window simclock.Window, ingress1, ingress2 uint32, rng *rand.Rand) *Entity {
	e := &Entity{
		Cfg:      cfg,
		Names:    db.EntityNames(),
		Ingress1: ingress1,
		Ingress2: ingress2,
		window:   window,
		rng:      rng,
		pool:     pool,
		inList:   make(map[int]bool),
		curDay:   -1,
	}
	e.planRotation(db)
	return e
}

// planRotation walks the window day by day applying the entity's
// decision rule to the expected ANY sizes.
func (e *Entity) planRotation(db *zonedb.DB) {
	idx := 0
	tenureStart := e.window.Start
	tenureMax := 0
	lowDays := 0
	overlapBudget := 1 // one concurrent-use episode, as in Fig. 8a

	e.window.EachDay(func(day simclock.Time) {
		if idx >= len(e.Names) {
			return
		}
		size := db.ANYSize(e.Names[idx], day)
		if size > tenureMax {
			tenureMax = size
		}
		if float64(size) < e.Cfg.DeclineRatio*float64(tenureMax) {
			lowDays++
		} else {
			lowDays = 0
		}
		if lowDays >= e.Cfg.ToleranceDays && idx < len(e.Names)-1 {
			t := Tenure{NameIdx: idx, Name: e.Names[idx], Start: tenureStart, End: day.Add(simclock.Day)}
			if overlapBudget > 0 && idx == 2 {
				t.OverlapDays = 10
				overlapBudget--
			}
			e.Tenures = append(e.Tenures, t)
			idx++
			tenureStart = day.Add(simclock.Day)
			tenureMax = 0
			lowDays = 0
		}
	})
	e.Tenures = append(e.Tenures, Tenure{
		NameIdx: idx, Name: e.Names[idx], Start: tenureStart, End: e.window.End,
	})

	// Relocation 1 / escalation: the transition into the name active at
	// the end of the main period; relocation 2 two tenures later.
	e.Reloc1 = e.window.Start.Add(simclock.Days(76))
	e.Reloc2 = e.window.Start.Add(simclock.Days(133))
	for _, t := range e.Tenures {
		if t.Start.After(e.window.Start) && !t.Start.After(simclock.MeasurementEnd) {
			e.Reloc1 = t.Start
		}
	}
	for _, t := range e.Tenures {
		if t.Start.Sub(e.Reloc1) >= simclock.Days(50) {
			e.Reloc2 = t.Start
			break
		}
	}
	e.BoostStart = e.Reloc1
}

// NameAt returns the name(s) the entity misuses on a given day — two
// during a concurrent-use episode.
func (e *Entity) NameAt(day simclock.Time) []string {
	for i, t := range e.Tenures {
		if !day.Before(t.Start) && day.Before(t.End) {
			if t.OverlapDays > 0 && i+1 < len(e.Tenures) &&
				t.End.Sub(day) <= simclock.Days(t.OverlapDays) {
				return []string{t.Name, e.Tenures[i+1].Name}
			}
			return []string{t.Name}
		}
	}
	return nil
}

// TransitionDays returns the start days of every tenure after the first.
func (e *Entity) TransitionDays() []simclock.Time {
	var out []simclock.Time
	for _, t := range e.Tenures[1:] {
		out = append(out, t.Start)
	}
	return out
}

// Phase returns the relocation phase at t: 0 before Reloc1, 1 between,
// 2 after Reloc2.
func (e *Entity) Phase(t simclock.Time) int {
	switch {
	case t.Before(e.Reloc1):
		return 0
	case t.Before(e.Reloc2):
		return 1
	default:
		return 2
	}
}

// IngressAt returns the IXP member carrying the entity's requests at t
// (0 in phase 0, when requests do not cross the IXP).
func (e *Entity) IngressAt(t simclock.Time) uint32 {
	switch e.Phase(t) {
	case 1:
		return e.Ingress1
	case 2:
		return e.Ingress2
	default:
		return 0
	}
}

// EventRate returns the expected events per day at t.
func (e *Entity) EventRate(t simclock.Time) float64 {
	if t.Before(e.BoostStart) {
		return e.Cfg.BaseEventsPerDay
	}
	return e.Cfg.BaseEventsPerDay * e.Cfg.BoostFactor
}

// TXIDParity returns 0 for even-ID days, 1 for odd-ID days: the tool
// alternates every 48 hours ("a two-day rhythm, alternating between odd
// and even DNS transaction IDs every 48 hours", §6.1).
func (e *Entity) TXIDParity(t simclock.Time) int {
	return (t.Day() / 2) % 2
}

// isTransitionDay reports whether day starts a new tenure.
func (e *Entity) isTransitionDay(day simclock.Time) bool {
	for _, t := range e.Tenures[1:] {
		if t.Start == day.StartOfDay() {
			return true
		}
	}
	return false
}

// AdvanceTo brings the amplifier working set to the given day, applying
// churn-driven and transition-driven replacement. It returns the list
// and the number of amplifiers that are new today.
func (e *Entity) AdvanceTo(day simclock.Time) (list []int, newCount int) {
	d := day.Day()
	if d == e.curDay {
		return e.list, e.newToday
	}
	e.curDay = d
	e.newToday = 0

	drop := e.Cfg.DailyDropRate
	if e.isTransitionDay(day) {
		drop = e.Cfg.TransitionDropRate
	}

	// Remove dead amplifiers and a random replacement share.
	kept := e.list[:0]
	for _, id := range e.list {
		a := e.pool.Get(id)
		if !a.AliveAt(day) || e.rng.Float64() < drop {
			delete(e.inList, id)
			continue
		}
		kept = append(kept, id)
	}
	e.list = kept

	// Top up with fresh, vetted amplifiers: the entity skips RFC 8482
	// endpoints (useless for ANY) — it evidently tests its reflectors.
	want := e.Cfg.ListSize - len(e.list)
	if want > 0 {
		fresh := e.pool.SampleAlive(e.rng, day, want*2, func(a *Amplifier) bool {
			return !a.MinimalANY && !e.inList[a.ID]
		})
		for _, id := range fresh {
			if len(e.list) >= e.Cfg.ListSize {
				break
			}
			e.list = append(e.list, id)
			e.inList[id] = true
			e.newToday++
		}
	}
	slices.Sort(e.list)
	return e.list, e.newToday
}

// PickEventAmplifiers draws the per-event subset: "random subsets are
// selected per attack event" (§6.2). Sizes follow Fig. 13a: ~80% of
// events abuse 10–100 amplifiers.
func (e *Entity) PickEventAmplifiers(day simclock.Time) []int {
	list, _ := e.AdvanceTo(day)
	n := eventAmplifierCount(e.rng)
	if n > len(list) {
		n = len(list)
	}
	return stats.SampleWithoutReplacement(e.rng, list, n)
}

// eventAmplifierCount draws the per-event amplifier count. Ground-truth
// lists are sized so that the *sampled-visible* subsets land at the
// paper's Fig. 13a distribution (~80% of events show 10-100 amplifiers
// at the IXP; sampling and routing hide roughly a third of a list).
func eventAmplifierCount(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.02:
		return 5 + rng.Intn(5)
	case u < 0.82:
		return int(10 * pow10(rng.Float64()))
	default:
		return int(100 * pow10(rng.Float64()))
	}
}

// pow10 returns 10^x.
func pow10(x float64) float64 { return math.Pow(10, x) }

// DailySeries describes the entity's working set evolution for Fig. 12.
type DailySeries struct {
	Day        simclock.Time
	ListSize   int
	NewCount   int
	Transition bool
}

// ResponseEfficiency is the fraction of spoofed requests that produce a
// response after the escalation: the entity overdrives its reflectors,
// so the absolute response volume stays flat while requests soar (§6.2:
// "~85% of attack traffic consists of requests").
func (e *Entity) ResponseEfficiency(t simclock.Time) float64 {
	if t.Before(e.BoostStart) {
		return 0.95
	}
	return 0.18
}

// Vetted reports whether the entity would keep an amplifier on its list.
func (e *Entity) Vetted(a *Amplifier) bool { return !a.MinimalANY }
