package ecosystem

import (
	"reflect"
	"sync"
	"testing"

	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// TestDayIndependentOfCallOrder is the foundation of the parallel
// pipeline: a day's traffic depends only on (campaign, seed, day), not
// on which days were generated before it.
func TestDayIndependentOfCallOrder(t *testing.T) {
	c := tinyCampaign(t)
	d3 := simclock.MeasurementStart.Add(simclock.Days(3))
	d5 := simclock.MeasurementStart.Add(simclock.Days(5))

	seq := NewGenerator(c, 7)
	seq.Day(d3) // consume a prior day first
	got := seq.Day(d5)
	fresh := NewGenerator(c, 7).Day(d5)
	if !reflect.DeepEqual(got, fresh) {
		t.Error("day 5 traffic differs when day 3 is generated first")
	}
	if !reflect.DeepEqual(seq.Day(d3), NewGenerator(c, 7).Day(d3)) {
		t.Error("regenerating day 3 differs from a fresh generator")
	}
}

// TestDayConcurrentGeneration drives one generator from many goroutines
// and checks the output against a serial replay (run with -race).
func TestDayConcurrentGeneration(t *testing.T) {
	c := tinyCampaign(t)
	gen := NewGenerator(c, 7)
	const n = 6
	days := make([]simclock.Time, n)
	for i := range days {
		days[i] = simclock.MeasurementStart.Add(simclock.Days(i))
	}
	out := make([]*DayTraffic, n)
	var wg sync.WaitGroup
	for i := range days {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = gen.Day(days[i])
		}(i)
	}
	wg.Wait()
	serial := NewGenerator(c, 7)
	for i := range days {
		if !reflect.DeepEqual(out[i], serial.Day(days[i])) {
			t.Errorf("day %d: concurrent generation differs from serial", i)
		}
	}
}

func TestNameAtConcurrentEpisode(t *testing.T) {
	c := tinyCampaign(t)
	e := c.Entity
	// Tenure index 2 carries the 10-day concurrent-use episode.
	ten := e.Tenures[2]
	if ten.OverlapDays == 0 {
		t.Fatal("tenure 2 should carry the overlap episode")
	}
	early := e.NameAt(ten.Start)
	if len(early) != 1 || early[0] != ten.Name {
		t.Errorf("early tenure names = %v", early)
	}
	lateDay := ten.End.Add(-simclock.Days(2))
	late := e.NameAt(lateDay)
	if len(late) != 2 {
		t.Fatalf("overlap window names = %v, want 2", late)
	}
	if late[0] != ten.Name || late[1] != e.Tenures[3].Name {
		t.Errorf("overlap names = %v", late)
	}
	// Outside the window entirely.
	if got := e.NameAt(simclock.FromDate(2030, 1, 1)); got != nil {
		t.Errorf("out-of-window names = %v", got)
	}
}

func TestSkipIXPSensorsOnly(t *testing.T) {
	c := tinyCampaign(t)
	full := NewGenerator(c, 7)
	skip := NewGenerator(c, 7)
	skip.SkipIXP = true
	day := simclock.MeasurementStart.Add(simclock.Days(5))
	dtFull := full.Day(day)
	dtSkip := skip.Day(day)
	if dtSkip.Batch != nil {
		t.Fatalf("SkipIXP produced an IXP batch (%d records)", dtSkip.Batch.N)
	}
	if len(dtSkip.Sensors) != len(dtFull.Sensors) {
		t.Fatalf("sensor flows %d vs %d — must be identical in count", len(dtSkip.Sensors), len(dtFull.Sensors))
	}
	for i := range dtSkip.Sensors {
		a, b := dtSkip.Sensors[i], dtFull.Sensors[i]
		if a.Sensor != b.Sensor || a.Victim != b.Victim || a.Count != b.Count || a.EventID != b.EventID {
			t.Fatalf("sensor flow %d differs beyond TXID: %+v vs %+v", i, a, b)
		}
	}
}

func TestEntityRequestsTaggedWithIngress(t *testing.T) {
	c := tinyCampaign(t)
	g := NewGenerator(c, 7)
	// A post-relocation day must yield ingress-tagged request records.
	day := c.Entity.Reloc1.Add(simclock.Days(3))
	dt := g.Day(day)
	tagged := 0
	for _, in := range dt.Batch.Ingress {
		if in != 0 {
			tagged++
			if in != c.Entity.Ingress1 {
				t.Fatalf("ingress %d, want %d", in, c.Entity.Ingress1)
			}
		}
	}
	if tagged == 0 {
		t.Fatal("no ingress-tagged requests after relocation 1")
	}
	// And a pre-relocation day must not.
	dt0 := g.Day(simclock.MeasurementStart.Add(simclock.Days(2)))
	for _, in := range dt0.Batch.Ingress {
		if in != 0 {
			t.Fatal("ingress tag before relocation 1")
		}
	}
}

func TestBackgroundOnlyInMainWindow(t *testing.T) {
	c := tinyCampaign(t)
	g := NewGenerator(c, 7)
	after := simclock.MeasurementEnd.Add(simclock.Days(30))
	dt := g.Day(after)
	// Post-window days carry only (entity) attack traffic, which is
	// far sparser than a background day.
	mainDay := NewGenerator(c, 7).Day(simclock.MeasurementStart.Add(simclock.Days(3)))
	if dt.Batch.N >= mainDay.Batch.N {
		t.Errorf("extended-window day (%d records) should be sparser than main-window day (%d)",
			dt.Batch.N, mainDay.Batch.N)
	}
}

func TestRootEventsPreferAuthoritative(t *testing.T) {
	cfg := DefaultCampaignConfig(0.05)
	cfg.Zones.ProceduralNames = 20_000
	cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	c := NewCampaign(cfg)
	authShare := func(amps []int) float64 {
		auth := 0
		for _, id := range amps {
			if c.Pool.Get(id).Kind == resolverAuthoritative {
				auth++
			}
		}
		if len(amps) == 0 {
			return 0
		}
		return float64(auth) / float64(len(amps))
	}
	var rootSum, otherSum float64
	var rootN, otherN int
	for _, ev := range c.Events {
		if ev.IsEntity {
			continue
		}
		if ev.QName == "." {
			rootSum += authShare(ev.Amplifiers)
			rootN++
		} else {
			otherSum += authShare(ev.Amplifiers)
			otherN++
		}
	}
	if rootN == 0 {
		t.Skip("no root events at this scale")
	}
	if rootSum/float64(rootN) <= otherSum/float64(otherN) {
		t.Errorf("root events should prefer authoritative amplifiers: %.3f vs %.3f",
			rootSum/float64(rootN), otherSum/float64(otherN))
	}
}

func TestSensorRequestIntensity(t *testing.T) {
	c := tinyCampaign(t)
	for _, ev := range c.Events {
		if len(ev.Sensors) == 0 {
			continue
		}
		if ev.ReqPerSensor < 5 {
			t.Fatalf("event %d sensor count %d below CCC threshold floor", ev.ID, ev.ReqPerSensor)
		}
	}
}
