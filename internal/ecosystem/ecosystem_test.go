package ecosystem

import (
	"math/rand"
	"strings"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
	"dnsamp/internal/zonedb"
)

// tinyCampaign builds a small deterministic campaign for tests.
func tinyCampaign(t *testing.T) *Campaign {
	t.Helper()
	cfg := DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	return NewCampaign(cfg)
}

func TestPoolComposition(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 24, ASesPerClass: 40, Seed: 1})
	pool := NewPool(PoolConfig{Size: 30_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2}, topo)
	if pool.Len() != 30_000 {
		t.Fatalf("pool size = %d", pool.Len())
	}
	alive := pool.AliveIDs(simclock.MeasurementStart.Add(simclock.Days(30)))
	if len(alive) < 200 {
		t.Fatalf("alive amplifiers = %d, want hundreds", len(alive))
	}
	kinds := map[resolver.Kind]int{}
	for _, id := range alive {
		kinds[pool.Get(id).Kind]++
	}
	fw := float64(kinds[resolver.Forwarder]) / float64(len(alive))
	auth := float64(kinds[resolver.Authoritative]) / float64(len(alive))
	if fw < 0.75 {
		t.Errorf("alive forwarder share = %.2f, want ~0.9", fw)
	}
	if auth > 0.10 {
		t.Errorf("alive authoritative share = %.2f, want ~0.02", auth)
	}
}

func TestPoolBirthRecency(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 24, ASesPerClass: 40, Seed: 1})
	pool := NewPool(PoolConfig{Size: 20_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2}, topo)
	recent := 0
	cut := simclock.MeasurementStart.Add(-simclock.Days(183))
	for i := 0; i < pool.Len(); i++ {
		if !pool.Get(i).Born.Before(cut) {
			recent++
		}
	}
	share := float64(recent) / float64(pool.Len())
	if share < 0.35 || share > 0.55 {
		t.Errorf("recent-birth share = %.2f, want ~0.45 (Fig. 15)", share)
	}
}

func TestSampleAliveRespectsPredicate(t *testing.T) {
	topo := topology.Generate(topology.Config{Members: 24, ASesPerClass: 40, Seed: 1})
	pool := NewPool(PoolConfig{Size: 20_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2}, topo)
	rng := rand.New(rand.NewSource(5))
	day := simclock.MeasurementStart
	got := pool.SampleAlive(rng, day, 50, func(a *Amplifier) bool { return !a.MinimalANY })
	seen := map[int]bool{}
	for _, id := range got {
		a := pool.Get(id)
		if !a.AliveAt(day) {
			t.Fatalf("amplifier %d not alive", id)
		}
		if a.MinimalANY {
			t.Fatalf("predicate violated for %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestEntityRotationSchedule(t *testing.T) {
	c := tinyCampaign(t)
	e := c.Entity
	if len(e.Tenures) != 10 {
		t.Fatalf("tenures = %d, want 10 names", len(e.Tenures))
	}
	// Tenures must be contiguous, ordered, and follow the rotation list.
	for i, ten := range e.Tenures {
		if ten.NameIdx != i {
			t.Errorf("tenure %d uses name %d", i, ten.NameIdx)
		}
		if i > 0 && ten.Start != e.Tenures[i-1].End {
			t.Errorf("gap between tenures %d and %d", i-1, i)
		}
		if !ten.Start.Before(ten.End) {
			t.Errorf("tenure %d empty", i)
		}
	}
	// First four-plus tenures fall inside the main window (§6.1: the
	// main period sees several names).
	inMain := 0
	for _, ten := range e.Tenures {
		if simclock.MainPeriod().Contains(ten.Start) || ten.Start == simclock.MeasurementStart {
			inMain++
		}
	}
	if inMain < 3 || inMain > 7 {
		t.Errorf("tenures starting in main window = %d", inMain)
	}
}

func TestEntityRelocationsOrdered(t *testing.T) {
	c := tinyCampaign(t)
	e := c.Entity
	if !e.Reloc1.Before(e.Reloc2) {
		t.Fatal("relocations out of order")
	}
	if !simclock.MainPeriod().Contains(e.Reloc1) {
		t.Error("relocation 1 should fall in the main window (mid-August)")
	}
	if e.Ingress1 == e.Ingress2 {
		t.Error("relocations should use different ingress members")
	}
	if e.Phase(e.Reloc1.Add(-1)) != 0 || e.Phase(e.Reloc1) != 1 || e.Phase(e.Reloc2) != 2 {
		t.Error("phase boundaries wrong")
	}
	if e.IngressAt(e.Reloc1.Add(-1)) != 0 {
		t.Error("phase-0 ingress should be 0 (requests invisible)")
	}
}

func TestEntityTXIDParityRhythm(t *testing.T) {
	c := tinyCampaign(t)
	e := c.Entity
	day0 := simclock.MeasurementStart
	p0 := e.TXIDParity(day0)
	if e.TXIDParity(day0.Add(simclock.Day)) != p0 {
		t.Error("parity should be stable within a 48h window")
	}
	if e.TXIDParity(day0.Add(2*simclock.Day)) == p0 {
		t.Error("parity should flip every 48h")
	}
}

func TestEntityEventsParityMatchesDay(t *testing.T) {
	c := tinyCampaign(t)
	checked := 0
	for _, ev := range c.Events {
		if !ev.IsEntity || len(ev.TXIDs) == 0 {
			continue
		}
		want := uint16(c.Entity.TXIDParity(ev.Start))
		for _, id := range ev.TXIDs {
			if id&1 != want {
				t.Fatalf("event %d TXID %#x parity != %d", ev.ID, id, want)
			}
		}
		if len(ev.TXIDs2) > 0 {
			for _, id := range ev.TXIDs2 {
				if id&1 == want {
					t.Fatalf("phase-2 pool must flip parity")
				}
			}
		}
		if len(ev.TXIDs) > 16 {
			t.Fatalf("entity pool too large: %d", len(ev.TXIDs))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no entity events with TXID pools")
	}
}

func TestEntityAdvanceChurn(t *testing.T) {
	c := tinyCampaign(t)
	e := c.Entity
	day := simclock.MeasurementStart.Add(simclock.Days(10))
	l1, _ := e.AdvanceTo(day)
	size1 := len(l1)
	snapshot := append([]int(nil), l1...)
	l2, n2 := e.AdvanceTo(day.Add(simclock.Day))
	if n2 == 0 {
		t.Error("expected new amplifiers daily (Fig. 12)")
	}
	if len(l2) == 0 || size1 == 0 {
		t.Fatal("empty lists")
	}
	// Same-day advance is idempotent.
	l3, _ := e.AdvanceTo(day.Add(simclock.Day))
	if len(l3) != len(l2) {
		t.Error("AdvanceTo not idempotent within a day")
	}
	// Substantial overlap with previous day, but not identical.
	prev := map[int]bool{}
	for _, id := range snapshot {
		prev[id] = true
	}
	inter := 0
	for _, id := range l2 {
		if prev[id] {
			inter++
		}
	}
	if inter == 0 {
		t.Error("no overlap day-over-day — churn too aggressive")
	}
	if inter == len(l2) && len(l2) == size1 {
		t.Error("identical lists day-over-day — churn missing")
	}
}

func TestEventCountsScale(t *testing.T) {
	c := tinyCampaign(t)
	var entity, spray, vetted, fixed int
	for _, ev := range c.Events {
		switch {
		case ev.IsEntity:
			entity++
		case strings.HasPrefix(ev.Attacker, "spray"):
			spray++
		case strings.HasPrefix(ev.Attacker, "vetted"):
			vetted++
		default:
			fixed++
		}
	}
	if entity == 0 || spray == 0 || vetted == 0 || fixed == 0 {
		t.Fatalf("missing population: entity=%d spray=%d vetted=%d fixed=%d", entity, spray, vetted, fixed)
	}
	// Spray events carry sensors, vetted do not.
	for _, ev := range c.Events {
		if strings.HasPrefix(ev.Attacker, "vetted") && len(ev.Sensors) > 0 {
			t.Fatal("vetted attacker leaked sensors")
		}
		if strings.HasPrefix(ev.Attacker, "spray") && len(ev.Sensors) == 0 {
			t.Fatal("spray attacker without sensors")
		}
	}
}

func TestAlphaClusterStatic(t *testing.T) {
	c := tinyCampaign(t)
	var lists [][]int
	for _, ev := range c.Events {
		if ev.Attacker == "alpha" {
			lists = append(lists, ev.Amplifiers)
		}
	}
	if len(lists) < 2 {
		t.Skip("not enough alpha events at this scale")
	}
	for _, l := range lists[1:] {
		if len(l) != len(lists[0]) {
			t.Fatal("alpha list size changed")
		}
		for i := range l {
			if l[i] != lists[0][i] {
				t.Fatal("alpha list changed between attacks — must be static")
			}
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := DefaultCampaignConfig(0.01)
	cfg.Zones.ProceduralNames = 20_000
	cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	a := NewCampaign(cfg)
	b := NewCampaign(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Victim != eb.Victim || ea.Start != eb.Start || ea.QName != eb.QName ||
			len(ea.Amplifiers) != len(eb.Amplifiers) {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	c := tinyCampaign(t)
	day := simclock.MeasurementStart.Add(simclock.Days(5))
	d1 := NewGenerator(c, 7).WireDay(day)
	d2 := NewGenerator(c, 7).WireDay(day)
	if len(d1.IXP) != len(d2.IXP) {
		t.Fatalf("IXP record counts differ: %d vs %d", len(d1.IXP), len(d2.IXP))
	}
	for i := range d1.IXP {
		if string(d1.IXP[i].Rec.Frame) != string(d2.IXP[i].Rec.Frame) {
			t.Fatalf("frame %d differs between equal-seed generators", i)
		}
	}
}

func TestGeneratedFramesDecode(t *testing.T) {
	c := tinyCampaign(t)
	g := NewGenerator(c, 7)
	day := simclock.MeasurementStart.Add(simclock.Days(3))
	dt := g.WireDay(day)
	if len(dt.IXP) == 0 {
		t.Fatal("no IXP records")
	}
	decoded := 0
	for _, tr := range dt.IXP {
		pkt, err := netmodel.DecodeFrame(tr.Rec.Frame)
		if err != nil {
			t.Fatalf("frame decode: %v", err)
		}
		if pkt.UDP.SrcPort != 53 && pkt.UDP.DstPort != 53 {
			t.Fatal("non-DNS ports in generated traffic")
		}
		res, err := dnswire.Parse(pkt.Payload)
		if err != nil {
			t.Fatalf("DNS parse: %v", err)
		}
		if res.Msg.QName() == "" {
			t.Fatal("empty qname")
		}
		decoded++
	}
	if len(dt.IXP) > 0 && decoded != len(dt.IXP) {
		t.Errorf("decoded %d of %d", decoded, len(dt.IXP))
	}
	// Frames are truncated to the snaplen.
	for _, tr := range dt.IXP {
		if len(tr.Rec.Frame) > 128 {
			t.Fatalf("frame exceeds snaplen: %d", len(tr.Rec.Frame))
		}
	}
}

func TestResponseSizeRecoverable(t *testing.T) {
	// A misused-name attack response must advertise its full DNS size
	// in the UDP length field even though the frame is truncated.
	c := tinyCampaign(t)
	g := NewGenerator(c, 7)
	found := false
	for d := 0; d < 20 && !found; d++ {
		dt := g.WireDay(simclock.MeasurementStart.Add(simclock.Days(d)))
		for _, tr := range dt.IXP {
			pkt, err := netmodel.DecodeFrame(tr.Rec.Frame)
			if err != nil {
				continue
			}
			if pkt.UDP.SrcPort == 53 && pkt.DNSPayloadSize() > 3000 {
				found = true
				if !pkt.Truncated {
					t.Error("large response should be truncated at snaplen")
				}
				break
			}
		}
	}
	if !found {
		t.Error("no large attack response found in 20 days of traffic")
	}
}

func TestRouteViaIXPProperties(t *testing.T) {
	c := tinyCampaign(t)
	if c.RouteViaIXP(0, 5) || c.RouteViaIXP(5, 0) || c.RouteViaIXP(7, 7) {
		t.Error("degenerate pairs must not route via IXP")
	}
	// Determinism.
	for i := 0; i < 50; i++ {
		a, b := uint32(100+i), uint32(300+i)
		if c.RouteViaIXP(a, b) != c.RouteViaIXP(a, b) {
			t.Fatal("RouteViaIXP not deterministic")
		}
	}
}

func TestSensorsPlacement(t *testing.T) {
	c := tinyCampaign(t)
	if len(c.Sensors) != c.Cfg.NumSensors {
		t.Fatalf("sensors = %d", len(c.Sensors))
	}
	prefixes := map[string]bool{}
	for _, s := range c.Sensors {
		prefixes[topology.Prefix24(s).String()] = true
	}
	if len(prefixes) < c.Cfg.SensorPrefixes/2 {
		t.Errorf("sensor prefixes = %d, want diversity", len(prefixes))
	}
}

func TestVictimsAreRoutable(t *testing.T) {
	c := tinyCampaign(t)
	for _, ev := range c.Events[:min(200, len(c.Events))] {
		if got := c.Topo.OriginAS(ev.Victim); got != ev.VictimASN {
			t.Fatalf("victim %v maps to AS%d, event says AS%d", ev.Victim, got, ev.VictimASN)
		}
	}
}

func TestDurationQuartiles(t *testing.T) {
	c := tinyCampaign(t)
	var short7, short33, n int
	for _, ev := range c.Events {
		n++
		if ev.Duration < 7*simclock.Minute {
			short7++
		}
		if ev.Duration < 33*simclock.Minute {
			short33++
		}
	}
	p7 := float64(short7) / float64(n)
	p33 := float64(short33) / float64(n)
	if p7 < 0.10 || p7 > 0.40 {
		t.Errorf("share under 7m = %.2f, want ~0.25", p7)
	}
	if p33 < 0.35 || p33 > 0.65 {
		t.Errorf("share under 33m = %.2f, want ~0.50", p33)
	}
}

func TestZonedbIntegration(t *testing.T) {
	// The campaign's attacked names must all be explicit zones with
	// ANY enabled.
	c := tinyCampaign(t)
	for _, ev := range c.Events[:min(500, len(c.Events))] {
		z, ok := c.DB.Zone(ev.QName)
		if !ok {
			t.Fatalf("event name %q has no zone", ev.QName)
		}
		if !z.AllowANY {
			t.Fatalf("attacked zone %q blocks ANY", ev.QName)
		}
	}
	_ = zonedb.DefaultConfig()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
