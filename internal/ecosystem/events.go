package ecosystem

import (
	"net/netip"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

// AttackEvent is one reflection/amplification attack against a victim —
// ground truth the vantage points observe only partially.
type AttackEvent struct {
	ID int
	// Attacker labels the originating entity ("entity", "vetted-3",
	// "spray-17", "alpha", "beta", "cluster-2", ...).
	Attacker string
	// IsEntity marks the major attack entity's events.
	IsEntity bool

	Victim    netip.Addr
	VictimASN uint32

	Start    simclock.Time
	Duration simclock.Duration

	QName string
	QType dnswire.Type

	// Amplifiers are pool ids abused in this event.
	Amplifiers []int
	// Sensors are honeypot sensor indices the attacker's list included
	// (it believed them to be amplifiers).
	Sensors []int

	// ReqPerAmp is the number of spoofed requests sent to each
	// amplifier over the event.
	ReqPerAmp int
	// ReqPerSensor is the number of spoofed requests per included
	// honeypot sensor.
	ReqPerSensor int

	// TXIDs is the attack tool's transaction-ID pool for this event —
	// pre-built queries reuse a small set (Fig. 10). Empty means fully
	// random IDs.
	TXIDs []uint16
	// TXIDs2 is the second-phase pool for events straddling the
	// entity's 48-hour parity shift (~9% of entity events).
	TXIDs2 []uint16

	// RequestsViaIXP marks events whose spoofed queries traverse the
	// IXP (the entity after relocation 1).
	RequestsViaIXP bool
	// IngressAS is the IXP member port the requests enter through.
	IngressAS uint32
	// ReqIPTTL is the IP TTL of requests as seen at the IXP (the
	// entity's constant 250).
	ReqIPTTL uint8
	// SrcPort is the spoofed source port used for this victim.
	SrcPort uint16
}

// End returns the exclusive end time.
func (e *AttackEvent) End() simclock.Time { return e.Start.Add(e.Duration) }

// Day returns the start-of-day of the event's begin.
func (e *AttackEvent) Day() simclock.Time { return e.Start.StartOfDay() }

// TotalRequests is the unsampled request volume toward amplifiers.
func (e *AttackEvent) TotalRequests() int { return e.ReqPerAmp * len(e.Amplifiers) }

// VictimKey returns the victim address as a map key.
func (e *AttackEvent) VictimKey() [4]byte { return e.Victim.As4() }

// HoneypotRequest is one spoofed query arriving at a honeypot sensor.
type HoneypotRequest struct {
	Time   simclock.Time
	Sensor int
	Victim netip.Addr
	QName  string
	QType  dnswire.Type
	TXID   uint16
	// EventID links back to ground truth (not available to the
	// honeypot inference, which works from the wire signal only).
	EventID int
}
