// Package ecosystem is the generative model of the DNS amplification
// attack ecosystem: the amplifier population with its churn, the major
// attack entity with its name rotation and attack-tool quirks, the long
// tail of independent attackers, and the materialization of all traffic
// the four vantage points observe (IXP samples, honeypot requests).
//
// Nothing in this package "knows" the analysis results: the paper's
// findings (TXID structure, relocations, amplifier-set clusters, ...)
// must emerge from the mechanics encoded here and be re-derived by the
// detection and analysis pipeline.
package ecosystem

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"slices"
	"sort"
	"time"

	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/topology"
)

// Amplifier is one abusable DNS endpoint.
type Amplifier struct {
	ID   int
	Addr netip.Addr
	ASN  uint32
	Kind resolver.Kind
	// Born and Died bound the reachability window: outside it the
	// address no longer answers (dynamic re-addressing, closed
	// resolver, ...). Died may lie beyond the observation horizon.
	Born, Died simclock.Time
	// EDNSCap is the largest UDP response the endpoint emits (0 means
	// unbounded within the message size).
	EDNSCap int
	// MinimalANY marks RFC 8482 endpoints: useless for ANY attacks.
	MinimalANY bool
	// RRL marks endpoints with response rate limiting.
	RRL bool
	// Upstream is the shared recursive resolver index for forwarders
	// (-1 otherwise). Individual upstreams serve up to tens of
	// thousands of forwarders (§8).
	Upstream int
	// InitTTL is the initial IP TTL of its OS (64/128/255).
	InitTTL uint8
	// PathLen is the hop count from the amplifier to the IXP.
	PathLen uint8
}

// AliveAt reports whether the amplifier answers at t.
func (a *Amplifier) AliveAt(t simclock.Time) bool {
	return !t.Before(a.Born) && t.Before(a.Died)
}

// ObservedTTL is the IP TTL its responses carry at the IXP.
func (a *Amplifier) ObservedTTL() uint8 { return a.InitTTL - a.PathLen }

// PoolConfig controls amplifier population synthesis.
type PoolConfig struct {
	// Size is the total number of amplifiers ever existing across the
	// scan-history horizon (2016-2020).
	Size int
	// AuthoritativeShare is the fraction of authoritative servers
	// (paper: ~2% of abused amplifiers, §7.1).
	AuthoritativeShare float64
	// ForwarderShare of the non-authoritative part (paper: 98% of open
	// amplifiers are forwarders).
	ForwarderShare float64
	Seed           int64
}

// DefaultPoolConfig sizes the pool so that the alive population during
// the main period comfortably exceeds the abused set (at paper scale:
// ~2M reachable open resolvers vs 45k abused).
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{Size: 280_000, AuthoritativeShare: 0.02, ForwarderShare: 0.98, Seed: 2}
}

// Pool is the amplifier population.
type Pool struct {
	Amps []Amplifier
	// byBirth is sorted by Born for windowed queries.
	byBirth []int
	// upstreams is the number of distinct shared recursive resolvers.
	upstreams int
}

// historyStart is the beginning of the scan-history horizon (Fig. 15's
// x-axis starts in 2016).
var historyStart = simclock.FromDate(2016, time.January, 1)

// NewPool synthesizes the amplifier population over topo's access-heavy
// address space.
func NewPool(cfg PoolConfig, topo *topology.Topology) *Pool {
	rng := rand.New(rand.NewSource(cfg.Seed))
	access := topo.ASesOfType(topology.ASAccess)
	hosting := topo.ASesOfType(topology.ASHosting)
	education := topo.ASesOfType(topology.ASEducation)
	p := &Pool{upstreams: 1 + cfg.Size/1500}

	horizon := simclock.EntityTrackingEnd
	recentStart := simclock.MeasurementStart.Add(-simclock.Days(183)) // 6 months before

	// Kind selection must produce the target mix among *alive*
	// endpoints, not among births: long-lived servers accumulate while
	// short-lived home-gateway forwarders churn away, so birth shares
	// are weighted by the inverse mean lifetime. Target alive mix:
	// ~90% forwarders, ~8% open recursives, ~2% authoritative (§7.1).
	const (
		meanForwarderLife = 30.0 // days (heavy-tailed Pareto below)
		meanServerLife    = 510.0
	)
	// The ×4 / ×3 factors correct for servers whose lifetime extends
	// beyond the simulated horizon (their effective alive time is
	// shorter than the nominal mean), calibrated against the abused-
	// amplifier composition of §7.1.
	wF := (1 - cfg.AuthoritativeShare) * cfg.ForwarderShare / meanForwarderLife
	wR := (1 - cfg.AuthoritativeShare) * (1 - cfg.ForwarderShare) * 4 / meanServerLife
	wA := cfg.AuthoritativeShare * 3 / meanServerLife
	wSum := wF + wR + wA

	usedAddrs := make(map[netip.Addr]bool, cfg.Size)

	for i := 0; i < cfg.Size; i++ {
		var a Amplifier
		a.ID = i
		switch r := rng.Float64() * wSum; {
		case r < wA:
			a.Kind = resolver.Authoritative
			a.Upstream = -1
		case r < wA+wR:
			a.Kind = resolver.Recursive
			a.Upstream = -1
		default:
			a.Kind = resolver.Forwarder
			a.Upstream = rng.Intn(p.upstreams)
		}

		// Placement: forwarders live in access networks (home CPE);
		// recursives and authoritatives in hosting/education space.
		var asn uint32
		switch a.Kind {
		case resolver.Forwarder:
			asn = stats.Pick(rng, access)
		case resolver.Recursive:
			if rng.Float64() < 0.6 {
				asn = stats.Pick(rng, hosting)
			} else {
				asn = stats.Pick(rng, education)
			}
		default:
			asn = stats.Pick(rng, hosting)
		}
		a.ASN = asn
		// Addresses are unique across the pool: each Amplifier models
		// one (IP, occupancy-period); re-draw on collision.
		for {
			addr, _ := topo.RandomAddrIn(rng, asn)
			if !usedAddrs[addr] {
				usedAddrs[addr] = true
				a.Addr = addr
				break
			}
		}

		// Birth: ~45% appear within the six months preceding the main
		// period ("attackers mostly use amplifiers that are not older
		// than six months", Fig. 15); the rest spread back to 2016.
		if rng.Float64() < 0.45 {
			span := int(simclock.MeasurementEnd.Sub(recentStart) / simclock.Day)
			a.Born = recentStart.Add(simclock.Days(rng.Intn(span)))
		} else {
			span := int(simclock.MeasurementStart.Sub(historyStart) / simclock.Day)
			a.Born = historyStart.Add(simclock.Days(rng.Intn(span)))
		}

		// Lifetime: home-gateway forwarders churn within days to
		// months (24 h DHCP leases, §7.1); servers live much longer.
		var lifetimeDays int
		if a.Kind == resolver.Forwarder {
			lifetimeDays = int(stats.Pareto(rng, 2, 400, 0.7))
		} else {
			lifetimeDays = 60 + rng.Intn(900)
		}
		a.Died = a.Born.Add(simclock.Days(lifetimeDays))
		if a.Died.After(horizon) {
			a.Died = horizon
		}

		// Response behaviour mix. The EDNS caps produce the bi- and
		// tri-modal observed size distributions of Fig. 9.
		switch r := rng.Float64(); {
		case r < 0.60:
			a.EDNSCap = 0 // effectively unbounded
		case r < 0.85:
			a.EDNSCap = 4096
		case r < 0.95:
			a.EDNSCap = 1232
		default:
			a.EDNSCap = 512
		}
		a.MinimalANY = rng.Float64() < 0.03
		a.RRL = rng.Float64() < 0.04

		switch rng.Intn(3) {
		case 0:
			a.InitTTL = 64
		case 1:
			a.InitTTL = 128
		default:
			a.InitTTL = 255
		}
		a.PathLen = uint8(4 + rng.Intn(16))

		p.Amps = append(p.Amps, a)
	}

	p.byBirth = make([]int, len(p.Amps))
	for i := range p.byBirth {
		p.byBirth[i] = i
	}
	sort.Slice(p.byBirth, func(i, j int) bool {
		return p.Amps[p.byBirth[i]].Born < p.Amps[p.byBirth[j]].Born
	})
	return p
}

// Get returns the amplifier with the given id.
func (p *Pool) Get(id int) *Amplifier { return &p.Amps[id] }

// Len is the population size.
func (p *Pool) Len() int { return len(p.Amps) }

// Upstreams returns the number of distinct shared recursive resolvers
// behind the forwarder population.
func (p *Pool) Upstreams() int { return p.upstreams }

// AliveIDs returns the ids of all amplifiers alive at t, ascending.
func (p *Pool) AliveIDs(t simclock.Time) []int {
	var out []int
	for _, id := range p.byBirth {
		a := &p.Amps[id]
		if a.Born.After(t) {
			break
		}
		if a.AliveAt(t) {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// SampleAlive draws up to k distinct alive amplifiers at t, optionally
// filtered by pred. It scans from a random offset to stay O(k) amortized.
func (p *Pool) SampleAlive(rng *rand.Rand, t simclock.Time, k int, pred func(*Amplifier) bool) []int {
	out := make([]int, 0, k)
	n := len(p.Amps)
	if n == 0 || k <= 0 {
		return out
	}
	start := rng.Intn(n)
	stride := 7919 // prime stride for spread; ensure it is co-prime to n
	for n%stride == 0 {
		stride += 2
	}
	seen := 0
	for i := 0; i < n && len(out) < k; i++ {
		id := (start + i*stride) % n
		a := &p.Amps[id]
		if !a.AliveAt(t) {
			continue
		}
		if pred != nil && !pred(a) {
			continue
		}
		out = append(out, id)
		seen++
	}
	return out
}

// AddrKey converts an address to the fixed array key used in maps.
func AddrKey(a netip.Addr) [4]byte { return a.As4() }

// AddrFromKey converts back.
func AddrFromKey(k [4]byte) netip.Addr { return netip.AddrFrom4(k) }

// hashCoin returns a deterministic pseudo-random bit for a pair of
// values, used for stable routing decisions (does the (amplifier AS,
// victim AS) path cross the IXP?).
func hashCoin(a, b uint32, p float64, salt uint32) bool {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], a)
	binary.BigEndian.PutUint32(buf[4:8], b)
	binary.BigEndian.PutUint32(buf[8:12], salt)
	h := fnv64(buf[:])
	return float64(h>>11)/float64(1<<53) < p
}

// fnv64 is a tiny inline FNV-1a.
func fnv64(b []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}
