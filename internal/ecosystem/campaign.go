package ecosystem

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"slices"
	"sort"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/topology"
	"dnsamp/internal/zonedb"
)

// resolverAuthoritative aliases the resolver kind used in the root-query
// amplifier preference.
const resolverAuthoritative = resolver.Authoritative

// CampaignConfig controls a full synthetic measurement campaign.
type CampaignConfig struct {
	Seed int64
	// Scale multiplies every event count (not per-event volumes, which
	// must stay paper-faithful for the sampling thresholds to behave
	// identically). 1.0 reproduces paper scale; the default harness
	// uses 0.2.
	Scale float64

	Topology topology.Config
	Pool     PoolConfig
	Zones    zonedb.Config
	Entity   EntityConfig

	// NumSensors is the honeypot platform size (paper: 80 sensors in
	// 62 prefixes and 15 ASes).
	NumSensors     int
	SensorPrefixes int
	SensorASes     int

	// VettedEvents / SprayEvents are the paper-scale independent event
	// counts (scaled by Scale).
	VettedEvents int
	SprayEvents  int
	// VettedAttackers / SprayAttackers partition those events.
	VettedAttackers int
	SprayAttackers  int

	// PathViaIXPProb is the chance a given (source AS, destination AS)
	// pair routes across the IXP.
	PathViaIXPProb float64
}

// DefaultCampaignConfig returns the standard configuration at the given
// scale.
func DefaultCampaignConfig(scale float64) CampaignConfig {
	return CampaignConfig{
		Seed:            1,
		Scale:           scale,
		Topology:        topology.DefaultConfig(),
		Pool:            DefaultPoolConfig(),
		Zones:           zonedb.DefaultConfig(),
		Entity:          DefaultEntityConfig(),
		NumSensors:      80,
		SensorPrefixes:  62,
		SensorASes:      15,
		VettedEvents:    9400,
		SprayEvents:     37000,
		VettedAttackers: 28,
		SprayAttackers:  60,
		PathViaIXPProb:  0.75,
	}
}

// Campaign is a fully planned synthetic measurement campaign: ground
// truth events plus the substrate needed to materialize traffic.
type Campaign struct {
	Cfg  CampaignConfig
	Topo *topology.Topology
	DB   *zonedb.DB
	Pool *Pool

	Entity *Entity
	// Events holds every attack event (entity + independents), sorted
	// by start time. Entity events cover the extended window; all
	// others the main window.
	Events []*AttackEvent

	// Sensors are the honeypot sensor addresses.
	Sensors []netip.Addr
	// SensorASNs are the ASes hosting sensors.
	SensorASNs []uint32

	rng *rand.Rand
	// eventsByDay indexes Events by day for traffic generation.
	eventsByDay map[int][]*AttackEvent
}

// NewCampaign plans a campaign. Materialize traffic with a Generator.
func NewCampaign(cfg CampaignConfig) *Campaign {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Campaign{Cfg: cfg, rng: rng, eventsByDay: make(map[int][]*AttackEvent)}
	c.Topo = topology.Generate(cfg.Topology)
	c.DB = zonedb.New(cfg.Zones)

	poolCfg := cfg.Pool
	poolCfg.Size = scaleInt(poolCfg.Size, cfg.Scale)
	c.Pool = NewPool(poolCfg, c.Topo)

	c.placeSensors()

	// The entity's back-end relocates into two different transit
	// members' cones; pick the two largest cones.
	in1, in2 := c.largestTransitMembers()
	entCfg := cfg.Entity
	entCfg.ListSize = scaleInt(entCfg.ListSize, cfg.Scale)
	entCfg.BaseEventsPerDay *= cfg.Scale
	c.Entity = NewEntity(entCfg, c.DB, c.Pool, simclock.EntityPeriod(), in1, in2, rng)

	c.generateEntityEvents()
	c.generateVettedEvents()
	c.generateSprayEvents()
	c.generateFixedListEvents()

	sort.SliceStable(c.Events, func(i, j int) bool { return c.Events[i].Start < c.Events[j].Start })
	for i, ev := range c.Events {
		ev.ID = i
		c.eventsByDay[ev.Day().Day()] = append(c.eventsByDay[ev.Day().Day()], ev)
	}
	return c
}

func scaleInt(v int, s float64) int {
	n := int(math.Round(float64(v) * s))
	if n < 1 {
		n = 1
	}
	return n
}

// placeSensors distributes honeypot sensors across prefixes and ASes for
// topological diversity (§3.2).
func (c *Campaign) placeSensors() {
	access := c.Topo.ASesOfType(topology.ASAccess)
	edu := c.Topo.ASesOfType(topology.ASEducation)
	hostASes := append(append([]uint32{}, access[:10]...), edu[:5]...)
	c.SensorASNs = hostASes
	prefixes := make([]netip.Prefix, 0, c.Cfg.SensorPrefixes)
	for len(prefixes) < c.Cfg.SensorPrefixes {
		asn := hostASes[len(prefixes)%len(hostASes)]
		addr, _ := c.Topo.RandomAddrIn(c.rng, asn)
		p := topology.Prefix24(addr)
		dup := false
		for _, q := range prefixes {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			prefixes = append(prefixes, p)
		}
	}
	for i := 0; i < c.Cfg.NumSensors; i++ {
		p := prefixes[i%len(prefixes)]
		base := p.Addr().As4()
		base[3] = byte(10 + i%200)
		c.Sensors = append(c.Sensors, netip.AddrFrom4(base))
	}
}

// largestTransitMembers returns the two transit members with the biggest
// customer cones.
func (c *Campaign) largestTransitMembers() (uint32, uint32) {
	type mc struct {
		asn  uint32
		cone int
	}
	var list []mc
	for _, m := range c.Topo.Members {
		if c.Topo.ASes[m].Type == topology.ASTransit {
			list = append(list, mc{m, c.Topo.ConeSize(m)})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].cone != list[j].cone {
			return list[i].cone > list[j].cone
		}
		return list[i].asn < list[j].asn
	})
	if len(list) < 2 {
		return c.Topo.Members[0], c.Topo.Members[len(c.Topo.Members)-1]
	}
	return list[0].asn, list[1].asn
}

// victimClassWeights drive victim selection so that ISP (access)
// networks receive the largest share of attack traffic (36%), followed
// by content (24%) (§4.2).
var victimClassWeights = []struct {
	typ topology.ASType
	w   float64
}{
	{topology.ASAccess, 0.38},
	{topology.ASContent, 0.23},
	{topology.ASHosting, 0.14},
	{topology.ASEnterprise, 0.11},
	{topology.ASEducation, 0.08},
	{topology.ASGovernment, 0.06},
}

// pickVictim draws a victim address.
func (c *Campaign) pickVictim() (netip.Addr, uint32) {
	u := c.rng.Float64()
	var typ topology.ASType = topology.ASAccess
	acc := 0.0
	for _, cw := range victimClassWeights {
		acc += cw.w
		if u < acc {
			typ = cw.typ
			break
		}
	}
	asns := c.Topo.ASesOfType(typ)
	asn := stats.Pick(c.rng, asns)
	addr, _ := c.Topo.RandomAddrIn(c.rng, asn)
	return addr, asn
}

// attackDuration draws a duration matching the reported quartiles (25%
// < 7 min, 50% < 33 min, §4.2) via a lognormal.
func (c *Campaign) attackDuration() simclock.Duration {
	const mu, sigma = 7.59, 2.0 // ln-seconds
	d := math.Exp(mu + sigma*c.rng.NormFloat64())
	if d < 30 {
		d = 30
	}
	if d > 86400 {
		d = 86400
	}
	return simclock.Duration(d)
}

// eventVolume draws the unsampled request volume of a detect-grade event
// (entity and vetted attackers): bounded Pareto with a heavy tail.
func (c *Campaign) eventVolume() int {
	return int(stats.Pareto(c.rng, 2.5e5, 3e7, 1.05))
}

// fixedListVolume draws the volume of the scripted fixed-list attackers;
// high enough that nearly every list member becomes visible in sampled
// data, which is what lets the clustering recover the static lists.
func (c *Campaign) fixedListVolume() int {
	return int(stats.Pareto(c.rng, 3e6, 3e7, 1.2))
}

// sprayVolume draws the volume of a spray event: mostly small (below
// IXP detectability), with ~3.5% of events at detect-grade volume —
// these become the mutual attacks of §5, which rank high in the
// honeypot's intensity scale but only medium at the IXP (Fig. 7).
func (c *Campaign) sprayVolume() int {
	if c.rng.Float64() < 0.035 {
		return c.eventVolume()
	}
	return int(stats.Pareto(c.rng, 500, 1.6e5, 0.8))
}

// txidPool builds a transaction-ID pool of n IDs with the given parity
// (-1 = unconstrained).
func txidPool(rng *rand.Rand, n, parity int) []uint16 {
	if n < 1 {
		n = 1
	}
	out := make([]uint16, n)
	for i := range out {
		v := uint16(rng.Intn(1 << 16))
		if parity >= 0 {
			v = v&^1 | uint16(parity)
		}
		out[i] = v
	}
	return out
}

// entityTXIDPoolSize sizes the entity tool's pre-built query set: a
// handful of templates per event, so unique IDs stay 1–2 orders of
// magnitude below even the *sampled* packet count (Fig. 10).
func entityTXIDPoolSize(vol int) int {
	n := vol / 2_000_000
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// independentTXIDPoolSize sizes other tools' pools: pre-built but large,
// so no detectable structure survives sampling.
func independentTXIDPoolSize(rng *rand.Rand, vol int) int {
	n := vol / (30 + rng.Intn(200))
	if n < 1 {
		n = 1
	}
	if n > 2048 {
		n = 2048
	}
	return n
}

// generateEntityEvents schedules the major entity's attacks across the
// extended window.
func (c *Campaign) generateEntityEvents() {
	e := c.Entity
	simclock.EntityPeriod().EachDay(func(day simclock.Time) {
		rate := e.EventRate(day)
		n := poisson(c.rng, rate)
		names := e.NameAt(day)
		if len(names) == 0 {
			return
		}
		parity := e.TXIDParity(day)
		for i := 0; i < n; i++ {
			victim, vASN := c.pickVictim()
			start := day.Add(simclock.Duration(c.rng.Intn(int(simclock.Day))))
			dur := c.attackDuration()
			amps := e.PickEventAmplifiers(day)
			vol := c.eventVolume()
			name := names[c.rng.Intn(len(names))]

			ev := &AttackEvent{
				Attacker:   "entity",
				IsEntity:   true,
				Victim:     victim,
				VictimASN:  vASN,
				Start:      start,
				Duration:   dur,
				QName:      name,
				QType:      dnswire.TypeANY,
				Amplifiers: amps,
				ReqPerAmp:  maxInt(1, vol/maxInt(1, len(amps))),
				ReqIPTTL:   250,
				SrcPort:    uint16(1024 + c.rng.Intn(60000)),
			}
			ev.TXIDs = txidPool(c.rng, entityTXIDPoolSize(vol), parity)
			// ~9% of entity events straddle the 48 h parity shift: two
			// phases with a distinct switch (§6.1).
			if c.rng.Float64() < 0.09 {
				ev.TXIDs2 = txidPool(c.rng, entityTXIDPoolSize(vol), 1-parity)
			}
			if phase := e.Phase(start); phase >= 1 {
				ev.RequestsViaIXP = true
				ev.IngressAS = e.IngressAt(start)
			}
			// Near-perfect honeypot avoidance.
			if c.rng.Float64() < e.Cfg.SensorLeakProb {
				ns := 1 + c.rng.Intn(3)
				for j := 0; j < ns; j++ {
					ev.Sensors = append(ev.Sensors, c.rng.Intn(len(c.Sensors)))
				}
				ev.ReqPerSensor = 5 + c.rng.Intn(20)
			}
			c.Events = append(c.Events, ev)
		}
	})
}

// independentNameWeights approximates Table 2's per-TLD attack counts
// for non-entity attackers.
func (c *Campaign) independentNameWeights() ([]string, []float64) {
	var names []string
	var weights []float64
	for _, n := range c.DB.AttackedNames() {
		w := 1.0
		switch dnswire.TLD(n) {
		case "gov":
			w = 0.45 // split across 17 names
		case "za", "cc", "pl", "cz":
			w = 3.8
		case "com", "org":
			w = 1.7
		case "se":
			w = 2.6
		case "eu":
			w = 2.3
		case "be":
			w = 1.5
		case ".":
			w = 1.1
		case "br":
			w = 0.18
		case "ru":
			w = 0.002
		}
		names = append(names, n)
		weights = append(weights, w)
	}
	return names, weights
}

func weightedPick(rng *rand.Rand, names []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return names[i]
		}
	}
	return names[len(names)-1]
}

// independentAttacker is shared state for one non-entity attacker.
type independentAttacker struct {
	label      string
	names      []string
	list       []int
	refreshDay int
	listSize   int
}

// generateVettedEvents creates the IXP-visible independent attacks:
// attackers that curate amplifier lists (no honeypot sensors) and push
// detect-grade volumes.
func (c *Campaign) generateVettedEvents() {
	total := scaleInt(c.Cfg.VettedEvents, c.Cfg.Scale)
	names, weights := c.independentNameWeights()
	attackers := make([]*independentAttacker, c.Cfg.VettedAttackers)
	for i := range attackers {
		nn := 1 + c.rng.Intn(4)
		own := make([]string, 0, nn)
		for j := 0; j < nn; j++ {
			own = append(own, weightedPick(c.rng, names, weights))
		}
		attackers[i] = &independentAttacker{
			label:    labelf("vetted-%d", i),
			names:    own,
			listSize: 150 + c.rng.Intn(1200),
		}
	}
	c.scheduleIndependent(attackers, total, simclock.MainPeriod(), false)
}

// generateSprayEvents creates the honeypot-visible long tail: attackers
// using huge public reflector lists that include the sensors.
func (c *Campaign) generateSprayEvents() {
	total := scaleInt(c.Cfg.SprayEvents, c.Cfg.Scale)
	names, weights := c.independentNameWeights()
	attackers := make([]*independentAttacker, c.Cfg.SprayAttackers)
	for i := range attackers {
		nn := 1 + c.rng.Intn(3)
		own := make([]string, 0, nn)
		for j := 0; j < nn; j++ {
			own = append(own, weightedPick(c.rng, names, weights))
		}
		attackers[i] = &independentAttacker{
			label:    labelf("spray-%d", i),
			names:    own,
			listSize: 400 + c.rng.Intn(4000),
		}
	}
	c.scheduleIndependent(attackers, total, simclock.MainPeriod(), true)
}

// scheduleIndependent distributes events across attackers and days.
func (c *Campaign) scheduleIndependent(attackers []*independentAttacker, total int, window simclock.Window, spray bool) {
	days := window.Days()
	for i := 0; i < total; i++ {
		a := attackers[c.rng.Intn(len(attackers))]
		day := window.Start.Add(simclock.Days(c.rng.Intn(days)))
		c.refreshList(a, day)

		victim, vASN := c.pickVictim()
		start := day.Add(simclock.Duration(c.rng.Intn(int(simclock.Day))))
		n := eventAmplifierCount(c.rng)
		if n > len(a.list) {
			n = len(a.list)
		}
		qname := a.names[c.rng.Intn(len(a.names))]
		var amps []int
		if qname == "." {
			// Root-query attacks exploit misconfigured root hint files
			// and reach authoritative nameservers ~4x more often
			// (§7.1).
			amps = c.Pool.SampleAlive(c.rng, day, n, func(am *Amplifier) bool {
				if am.Kind == resolverAuthoritative {
					return true
				}
				return c.rng.Float64() < 0.12
			})
		} else {
			amps = stats.SampleWithoutReplacement(c.rng, a.list, n)
		}

		var vol int
		if spray {
			vol = int(float64(c.sprayVolume()))
		} else {
			vol = c.eventVolume()
		}
		ev := &AttackEvent{
			Attacker:   a.label,
			Victim:     victim,
			VictimASN:  vASN,
			Start:      start,
			Duration:   c.attackDuration(),
			QName:      qname,
			QType:      dnswire.TypeANY,
			Amplifiers: amps,
			ReqPerAmp:  maxInt(1, vol/maxInt(1, n)),
			ReqIPTTL:   uint8(40 + c.rng.Intn(200)),
			SrcPort:    uint16(1024 + c.rng.Intn(60000)),
		}
		// Half the independent tools also ship pre-built queries, but
		// without the entity's parity structure.
		if c.rng.Float64() < 0.5 {
			ev.TXIDs = txidPool(c.rng, independentTXIDPoolSize(c.rng, vol), -1)
		}
		if spray {
			// Public lists contain the sensors: nearly every event
			// reaches most of them, which is what makes the honeypot
			// converge with a handful of sensors (Fig. 18).
			var ns int
			if c.rng.Float64() < 0.97 {
				ns = 50 + c.rng.Intn(len(c.Sensors)-49)
			} else {
				ns = 5 + c.rng.Intn(15)
			}
			perm := c.rng.Perm(len(c.Sensors))[:ns]
			slices.Sort(perm)
			ev.Sensors = perm
			ev.ReqPerSensor = clampInt(vol/10, 40, 8000)
		}
		c.Events = append(c.Events, ev)
	}
}

// refreshList rebuilds an independent attacker's amplifier list at most
// once per day, mixing carried-over and new reflectors.
func (c *Campaign) refreshList(a *independentAttacker, day simclock.Time) {
	d := day.Day()
	if a.refreshDay == d && len(a.list) > 0 {
		return
	}
	a.refreshDay = d
	kept := a.list[:0]
	for _, id := range a.list {
		if c.Pool.Get(id).AliveAt(day) && c.rng.Float64() < 0.75 {
			kept = append(kept, id)
		}
	}
	a.list = kept
	want := a.listSize - len(a.list)
	if want > 0 {
		a.list = append(a.list, c.Pool.SampleAlive(c.rng, day, want, nil)...)
	}
}

// generateFixedListEvents adds the scripted static-list attackers that
// produce the dense DBSCAN clusters of Fig. 14: cluster α reuses one
// 30-amplifier list for 177 attacks over 40 days; cluster β uses ~527
// amplifiers with a small steady drift; a handful of smaller clusters
// round out the picture. Together they are ~2% of attack events (§7.1).
func (c *Campaign) generateFixedListEvents() {
	window := simclock.MainPeriod()

	// α: perfectly static list, long-lived amplifiers only.
	alphaStart := window.Start.Add(simclock.Days(20))
	alphaList := c.Pool.SampleAlive(c.rng, alphaStart, 30, func(a *Amplifier) bool {
		return a.Died.Sub(alphaStart) > simclock.Days(45)
	})
	nAlpha := scaleInt(177, c.Cfg.Scale)
	for i := 0; i < nAlpha; i++ {
		day := alphaStart.Add(simclock.Days(c.rng.Intn(40)))
		victim, vASN := c.pickVictim()
		c.Events = append(c.Events, &AttackEvent{
			Attacker: "alpha", Victim: victim, VictimASN: vASN,
			Start:    day.Add(simclock.Duration(c.rng.Intn(int(simclock.Day)))),
			Duration: c.attackDuration(),
			QName:    "nask.pl.", QType: dnswire.TypeANY,
			Amplifiers: append([]int(nil), alphaList...),
			ReqPerAmp:  maxInt(1, c.fixedListVolume()/30),
			ReqIPTTL:   120, SrcPort: uint16(1024 + c.rng.Intn(60000)),
		})
	}

	// β: large list with a small steady change per attack.
	betaSize := scaleInt(527, math.Max(c.Cfg.Scale, 0.3))
	betaList := c.Pool.SampleAlive(c.rng, window.Start, betaSize, nil)
	nBeta := scaleInt(120, c.Cfg.Scale)
	for i := 0; i < nBeta; i++ {
		day := window.Start.Add(simclock.Days(c.rng.Intn(window.Days())))
		// Replace ~2% of the list each attack.
		for j := 0; j < len(betaList)/50+1; j++ {
			idx := c.rng.Intn(len(betaList))
			if repl := c.Pool.SampleAlive(c.rng, day, 1, nil); len(repl) == 1 {
				betaList[idx] = repl[0]
			}
		}
		victim, vASN := c.pickVictim()
		c.Events = append(c.Events, &AttackEvent{
			Attacker: "beta", Victim: victim, VictimASN: vASN,
			Start:    day.Add(simclock.Duration(c.rng.Intn(int(simclock.Day)))),
			Duration: c.attackDuration(),
			QName:    "nic.cz.", QType: dnswire.TypeANY,
			Amplifiers: append([]int(nil), betaList...),
			ReqPerAmp:  maxInt(1, c.fixedListVolume()/len(betaList)),
			ReqIPTTL:   110, SrcPort: uint16(1024 + c.rng.Intn(60000)),
		})
	}

	// Smaller fixed-list clusters.
	nClusters := 6
	for k := 0; k < nClusters; k++ {
		size := 8 + c.rng.Intn(40)
		cstart := window.Start.Add(simclock.Days(c.rng.Intn(60)))
		list := c.Pool.SampleAlive(c.rng, cstart, size, func(a *Amplifier) bool {
			return a.Died.Sub(cstart) > simclock.Days(30)
		})
		names, weights := c.independentNameWeights()
		name := weightedPick(c.rng, names, weights)
		nEv := scaleInt(4+c.rng.Intn(9), math.Max(c.Cfg.Scale, 0.5))
		for i := 0; i < nEv; i++ {
			day := cstart.Add(simclock.Days(c.rng.Intn(25)))
			victim, vASN := c.pickVictim()
			c.Events = append(c.Events, &AttackEvent{
				Attacker: labelf("cluster-%d", k), Victim: victim, VictimASN: vASN,
				Start:    day.Add(simclock.Duration(c.rng.Intn(int(simclock.Day)))),
				Duration: c.attackDuration(),
				QName:    name, QType: dnswire.TypeANY,
				Amplifiers: append([]int(nil), list...),
				ReqPerAmp:  maxInt(1, c.fixedListVolume()/maxInt(1, len(list))),
				ReqIPTTL:   uint8(40 + c.rng.Intn(200)),
				SrcPort:    uint16(1024 + c.rng.Intn(60000)),
			})
		}
	}
}

// EventsOnDay returns the events whose start falls on the given day.
func (c *Campaign) EventsOnDay(day simclock.Time) []*AttackEvent {
	return c.eventsByDay[day.StartOfDay().Day()]
}

// RouteViaIXP reports whether traffic between two ASNs crosses the IXP.
// The decision is deterministic and dominated by the source side:
// whether a reflector's outbound traffic traverses this IXP is mostly a
// property of its network's routing policy, with only a small
// destination-dependent component. (A strongly pair-dependent rule would
// break the observed stability of fixed amplifier lists across victims,
// which the paper's Fig. 14 clusters demonstrate.)
func (c *Campaign) RouteViaIXP(srcASN, dstASN uint32) bool {
	if srcASN == 0 || dstASN == 0 || srcASN == dstASN {
		return false
	}
	if c.Topo.MemberFor(srcASN) == c.Topo.MemberFor(dstASN) {
		return false // stays inside one member's cone
	}
	if !hashCoin(srcASN, 0, c.Cfg.PathViaIXPProb+0.1, uint32(c.Cfg.Seed)) {
		return false
	}
	return hashCoin(srcASN, dstASN, 0.9, uint32(c.Cfg.Seed)+1)
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		// Normal approximation.
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
