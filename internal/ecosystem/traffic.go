package ecosystem

import (
	"math/rand"
	"net/netip"
	"slices"
	"sync/atomic"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/topology"
)

// TaggedRecord is one sampled IXP frame plus the ingress-port metadata
// the fabric knows (needed because spoofed packets cannot be attributed
// by source address). The frame-level path (WireDay) exists for wire
// fidelity tests and pcap-style consumers; the detection pipeline
// consumes the columnar batch form.
type TaggedRecord struct {
	Rec sflow.Record
	// Ingress is the member ASN whose port the packet entered through;
	// 0 lets the capture point derive it from the source address.
	Ingress uint32
}

// SensorFlow aggregates the spoofed queries one honeypot sensor receives
// from one attack event. The honeypot package applies the CCC inference
// thresholds to these flows.
type SensorFlow struct {
	Sensor   int
	Victim   netip.Addr
	Start    simclock.Time
	Duration simclock.Duration
	Count    int
	QName    string
	QType    dnswire.Type
	TXID     uint16
	EventID  int
}

// BackgroundConfig tunes legitimate traffic synthesis.
type BackgroundConfig struct {
	// SamplesPerDay is the expected sampled background packets per day
	// (paper scale: ~340k/day so that attack traffic lands at ~5% of
	// DNS packets).
	SamplesPerDay int
	// Clients is the background client population size.
	Clients int
	// ResponseShare is the response fraction (paper: 60% requests).
	ResponseShare float64
	// RootShare is the share of background packets for the root name —
	// the reason some clients show low misused-name ratios in Fig. 4.
	RootShare float64
	// MisusedShare is the tiny share of organic traffic for misused
	// names (monitoring, research scanners).
	MisusedShare float64
	// ANYShare of background queries (debugging tools etc.); calibrated
	// so that ~68% of ANY packets belong to attacks.
	ANYShare float64
}

// DefaultBackgroundConfig returns paper-scale defaults (caller scales
// SamplesPerDay and Clients).
func DefaultBackgroundConfig() BackgroundConfig {
	return BackgroundConfig{
		SamplesPerDay: 340_000,
		Clients:       120_000,
		ResponseShare: 0.40,
		RootShare:     0.015,
		MisusedShare:  0.0004,
		ANYShare:      0.025,
	}
}

// DayTraffic is everything one simulated day produces, with the sampled
// IXP traffic in columnar batch form (name IDs into the generator's
// frozen interning table — see Generator.Table).
type DayTraffic struct {
	Day simclock.Time
	// Batch holds the sampled, sanitized IXP records (unordered within
	// the day); nil when SkipIXP is set.
	Batch *ixp.SampleBatch
	// Sensors holds the honeypot-side flows.
	Sensors []SensorFlow
}

// WireDayTraffic is the frame-level twin of DayTraffic: the same
// sampled packets materialized as truncated Ethernet/IPv4/UDP frames.
type WireDayTraffic struct {
	Day simclock.Time
	// IXP holds the sampled, truncated frames (unordered).
	IXP []TaggedRecord
	// Sensors holds the honeypot-side flows.
	Sensors []SensorFlow
}

// Generator materializes traffic for a campaign.
//
// Traffic is generated one day at a time, and each day is a pure
// function of (campaign, seed, day): Day derives a fresh per-day RNG
// stream, so materializing days out of order — or concurrently from
// several goroutines — yields exactly the traffic of a sequential
// day-by-day replay. All state shared across days (campaign, client
// population, Zipf tables, the name-interning table) is read-only after
// construction.
//
// Day (columnar batches) and WireDay (materialized frames) consume
// their per-day RNG stream identically: for every day,
// WireDay(d) processed through ixp.CapturePoint.Process yields exactly
// the samples of Day(d) through ConsumeBatch. TestDayBatchMatchesWire
// holds this equivalence.
//
// Consumers normally do not call Day directly: source.Synthetic adapts
// a Generator to the streaming source.Source interface the detection
// pipeline and the live monitor consume (and source.Cached adds
// cross-pass batch reuse on top).
type Generator struct {
	C          *Campaign
	Background BackgroundConfig
	// SkipIXP suppresses IXP record materialization, producing only the
	// honeypot-side sensor flows. Used by analyses that re-run the
	// honeypot inference under different thresholds (Appendix B). Note
	// that skipping changes per-day RNG consumption, so per-flow TXIDs
	// differ from a full run; counts and timing do not.
	SkipIXP bool
	// SkipAttacks suppresses the campaign's attack-event traffic (both
	// the IXP records and the honeypot sensor flows), leaving only the
	// organic background. The scenario library composes its own attack
	// overlays on top of this benign baseline so campaign events never
	// pollute a scenario's ground-truth labels. As with SkipIXP,
	// skipping changes per-day RNG consumption relative to a full run;
	// the background traffic itself stays deterministic for fixed
	// (campaign, seed, day, SkipAttacks).
	SkipAttacks bool

	seed int64

	// table is the frozen name-interning space: every name the
	// generator can emit (root, explicit zones, procedural namespace,
	// event names) is interned at construction, so day synthesis never
	// writes to it and batches from concurrent Day calls share it.
	table   *names.Table
	rootID  uint32
	procIDs []uint32 // procedural index -> table ID
	misIDs  []uint32 // MisusedCandidates index -> table ID

	// isExplicit flags table IDs backed by an explicit zone, replacing
	// the per-packet zones-map lookup.
	isExplicit []bool
	// wireLens caches nameWireLen per table ID, so the background hot
	// path sizes queries and response skeletons from a flat int column
	// instead of dereferencing the interned string per packet.
	wireLens []int32
	// sizeCache memoizes the procedural response size per (qtype slot,
	// name ID). Sizes of bulk names are pure functions of (name, qtype)
	// but cost two SHA-256 hashes to derive; concurrent Day slices fill
	// the cache racelessly with atomics (every writer stores the same
	// deterministic value). Slot 0 is ANY; 0 means "not yet computed"
	// (no response is 0 bytes).
	sizeCache []sizeCacheCol

	// bgClients is the background client population.
	bgClients []netip.Addr
	bgZipf    *stats.Zipf
	nameZipf  *stats.Zipf
	servers   []netip.Addr
}

// Table exposes the generator's frozen interning table (read-only).
func (g *Generator) Table() *names.Table { return g.table }

// dayGen carries the mutable per-day state: the day's RNG stream, its
// sampler, the wire encoder, the response-template cache, and the
// emission target (columnar batch or wire frames). One dayGen lives for
// exactly one Day/WireDay call, which is what makes both safe for
// concurrent use.
type dayGen struct {
	*Generator
	rng      *rand.Rand
	sampler  *sflow.Sampler
	enc      dnswire.Encoder
	respTmpl map[tmplKey]*respTemplate

	// Exactly one of batch/frames is non-nil in IXP-producing mode.
	batch  *ixp.SampleBatch
	frames *[]TaggedRecord
}

// daySeed mixes the generator seed with the day ordinal (splitmix64
// finalizer) so per-day streams are decorrelated.
func daySeed(seed int64, day int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(day)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// slice opens the per-day generation state for one day.
func (g *Generator) slice(day simclock.Time) *dayGen {
	h := daySeed(g.seed, day.Day())
	return &dayGen{
		Generator: g,
		rng:       rand.New(rand.NewSource(h)),
		sampler:   sflow.NewSampler(h ^ 0x5a3c9d1),
		respTmpl:  make(map[tmplKey]*respTemplate),
	}
}

type tmplKey struct {
	name string
	day  int
}

type respTemplate struct {
	nameID  uint32
	prefix  []byte // first snaplen-42 bytes of the DNS payload
	fullLen int    // full DNS message size
	anCount uint16 // announced answer count (from the prefix header)
	// meta caches, per parse-window length, what the capture point's
	// tolerant parser recovers from the truncated prefix.
	meta map[int]tmplMeta
}

type tmplMeta struct {
	visibleNS uint16
	drop      uint8 // dropKind; 0 when the window parses cleanly
}

// drop kinds, matching the capture point's sanitization counters.
const (
	dropNone = iota
	dropNonUDP
	dropNonDNS
	dropMalformed
)

// NewGenerator builds a traffic generator. The background volume scales
// with the campaign's Scale.
func NewGenerator(c *Campaign, seed int64) *Generator {
	g := &Generator{
		C:          c,
		Background: DefaultBackgroundConfig(),
		seed:       seed,
	}
	g.Background.SamplesPerDay = scaleInt(g.Background.SamplesPerDay, c.Cfg.Scale)
	g.Background.Clients = scaleInt(g.Background.Clients, c.Cfg.Scale)

	// Background clients across all ASes; servers in hosting space.
	// This population is drawn once from a construction-time stream and
	// shared read-only by every day slice.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	asns := make([]uint32, 0, len(c.Topo.ASes))
	for asn := range c.Topo.ASes {
		asns = append(asns, asn)
	}
	slices.Sort(asns)
	for i := 0; i < g.Background.Clients; i++ {
		asn := asns[rng.Intn(len(asns))]
		addr, _ := c.Topo.RandomAddrIn(rng, asn)
		g.bgClients = append(g.bgClients, addr)
	}
	hosting := c.Topo.ASesOfType(topology.ASHosting)
	for i := 0; i < 400; i++ {
		addr, _ := c.Topo.RandomAddrIn(rng, hosting[rng.Intn(len(hosting))])
		g.servers = append(g.servers, addr)
	}
	g.bgZipf = stats.NewZipf(len(g.bgClients), 1.05)
	g.nameZipf = stats.NewZipf(200_000, 1.0)

	// Freeze the interning table over the full emittable namespace.
	g.table = names.NewTable()
	g.table.Reserve(g.nameZipf.N() + len(c.DB.ExplicitNames()) + len(c.Events) + 64)
	g.rootID = g.table.Intern(".")
	for _, n := range c.DB.ExplicitNames() {
		g.table.Intern(dnswire.CanonicalName(n))
	}
	for _, ev := range c.Events {
		g.table.Intern(dnswire.CanonicalName(ev.QName))
	}
	mis := c.DB.MisusedCandidates()
	g.misIDs = make([]uint32, len(mis))
	for i, n := range mis {
		g.misIDs[i] = g.table.Intern(dnswire.CanonicalName(n))
	}
	// The background name Zipf spans a fixed 200k-rank namespace that
	// may exceed the DB's procedural count, so freeze the union.
	np := c.DB.NumProceduralNames()
	if np < g.nameZipf.N() {
		np = g.nameZipf.N()
	}
	g.procIDs = make([]uint32, np)
	for i := 0; i < np; i++ {
		g.procIDs[i] = g.table.Intern(c.DB.ProceduralName(i))
	}

	g.isExplicit = make([]bool, g.table.Len())
	g.wireLens = make([]int32, g.table.Len())
	for id, name := range g.table.Names() {
		if _, ok := c.DB.Zone(name); ok {
			g.isExplicit[id] = true
		}
		g.wireLens[id] = int32(nameWireLen(name))
	}
	g.sizeCache = make([]sizeCacheCol, len(qtypeSlots))
	for i := range g.sizeCache {
		g.sizeCache[i] = make(sizeCacheCol, g.table.Len())
	}
	return g
}

// sizeCacheCol is one qtype's response-size column, indexed by name ID.
type sizeCacheCol []atomic.Int32

// qtypeSlots maps the background query types to size-cache columns
// (slot 0 is ANY).
var qtypeSlots = []dnswire.Type{
	dnswire.TypeANY, dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypePTR,
	dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeNS, dnswire.TypeSOA,
	dnswire.TypeSRV, dnswire.TypeDNSKEY,
}

func qtypeSlot(qtype dnswire.Type) int {
	for i, t := range qtypeSlots {
		if t == qtype {
			return i
		}
	}
	return -1
}

// responseSizeFor returns DB.ResponseSize(name, qtype, t), serving bulk
// names from the per-ID cache (their sizes are time-independent pure
// functions, but cost two SHA-256 hashes to derive). The name string is
// only materialized on the slow paths; cache hits never touch it.
func (g *Generator) responseSizeFor(nameID uint32, qtype dnswire.Type, t simclock.Time) int {
	if g.isExplicit[nameID] {
		return g.C.DB.ResponseSize(g.table.Name(nameID), qtype, t)
	}
	slot := qtypeSlot(qtype)
	if slot < 0 {
		return g.C.DB.ResponseSize(g.table.Name(nameID), qtype, t)
	}
	if v := g.sizeCache[slot][nameID].Load(); v != 0 {
		return int(v)
	}
	v := g.C.DB.ResponseSize(g.table.Name(nameID), qtype, t)
	g.sizeCache[slot][nameID].Store(int32(v))
	return v
}

// Day materializes all traffic of one simulated day in columnar batch
// form. Each day's output depends only on (campaign, seed, day), so Day
// may be called from multiple goroutines concurrently and in any day
// order.
func (g *Generator) Day(day simclock.Time) *DayTraffic {
	day = day.StartOfDay()
	dg := g.slice(day)
	dt := &DayTraffic{Day: day}
	if !g.SkipIXP {
		dg.batch = &ixp.SampleBatch{Table: g.table}
		if simclock.MainPeriod().Contains(day) {
			dg.batch.Grow(g.Background.SamplesPerDay + 256)
		}
	}
	if !g.SkipAttacks {
		for _, ev := range g.C.EventsOnDay(day) {
			dg.attackTraffic(&dt.Sensors, ev)
		}
	}
	if !g.SkipIXP && simclock.MainPeriod().Contains(day) {
		dg.backgroundTraffic(day)
	}
	dt.Batch = dg.batch
	return dt
}

// WireDay materializes the same traffic as Day, as truncated wire
// frames (the capture-fidelity path).
func (g *Generator) WireDay(day simclock.Time) *WireDayTraffic {
	day = day.StartOfDay()
	dg := g.slice(day)
	dt := &WireDayTraffic{Day: day}
	if !g.SkipIXP {
		dg.frames = &dt.IXP
	}
	if !g.SkipAttacks {
		for _, ev := range g.C.EventsOnDay(day) {
			dg.attackTraffic(&dt.Sensors, ev)
		}
	}
	if !g.SkipIXP && simclock.MainPeriod().Contains(day) {
		dg.backgroundTraffic(day)
	}
	return dt
}

// nameWireLen returns the uncompressed wire length of a canonical name
// without allocating: one length octet per label (replacing each dot)
// plus the terminating root octet.
func nameWireLen(name string) int {
	if name == "." {
		return 1
	}
	return len(name) + 1
}

// querySize is the encoded size of dnswire.NewQuery(_, name, _, 4096):
// header, one question, one OPT RR. querySizeWL is its twin over a
// precomputed wire length (Generator.wireLens).
func querySize(name string) int {
	return querySizeWL(nameWireLen(name))
}

func querySizeWL(wireLen int) int {
	return dnswire.HeaderLen + wireLen + 4 + 11
}

// bgResponseSizeWL is the encoded size of the one-answer background
// response skeleton over a precomputed name wire length: header, echoed
// question, and an A record whose owner is a compression pointer to the
// question name (or the root's single octet — the only name with wire
// length 1).
func bgResponseSizeWL(wireLen int) int {
	ans := 2 + 14 // pointer + fixed RR tail + 4-byte A rdata
	if wireLen == 1 {
		ans = 1 + 14
	}
	return dnswire.HeaderLen + wireLen + 4 + ans
}

// frameWindow emulates the capture point's frame decoding for a frame
// that materializes payloadLen bytes of a DNS message whose UDP length
// field announces trueSize bytes: it returns the parser's input window
// and the recovered message size, mirroring netmodel.DecodeFrame on the
// 128-byte-truncated frame (including the uint16 wrap behaviour of the
// length fields).
func frameWindow(payloadLen, trueSize int) (parseLen, msgSize int, drop uint8) {
	udpLen := uint16(netmodel.UDPHeaderLen + trueSize)
	totalLen := uint16(netmodel.IPv4HeaderLen) + udpLen
	if int(totalLen) < netmodel.IPv4HeaderLen {
		return 0, 0, dropNonUDP
	}
	// UDP header + payload available after Ethernet/IP headers and the
	// 128-byte truncation, clipped to the IP TotalLen.
	avail := payloadLen + netmodel.UDPHeaderLen
	if max := sflow.DefaultSnaplen - netmodel.EthernetHeaderLen - netmodel.IPv4HeaderLen; avail > max {
		avail = max
	}
	if want := int(totalLen) - netmodel.IPv4HeaderLen; avail > want {
		avail = want
	}
	if avail < netmodel.UDPHeaderLen || udpLen < netmodel.UDPHeaderLen {
		return 0, 0, dropNonDNS
	}
	parseLen = avail - netmodel.UDPHeaderLen
	if want := int(udpLen) - netmodel.UDPHeaderLen; parseLen > want {
		parseLen = want
	}
	return parseLen, int(udpLen) - netmodel.UDPHeaderLen, dropNone
}

// emitSimple emits one query or one-answer background response, whose
// parse outcome is fully determined by the question (of the given name
// wire length) fitting the parse window (such messages never carry NS
// records).
func (g *dayGen) emitSimple(r ixp.BatchRecord, wireLen, payloadLen, trueSize int) {
	g.batch.Frames++
	parseLen, msgSize, drop := frameWindow(payloadLen, trueSize)
	if drop == dropNone && parseLen < dnswire.HeaderLen+wireLen+4 {
		drop = dropNonDNS // header or first question unreadable
	}
	switch drop {
	case dropNonUDP:
		g.batch.NonUDP++
		return
	case dropNonDNS:
		g.batch.NonDNS++
		return
	}
	r.MsgSize = int32(msgSize)
	g.batch.Append(r)
}

// attackTraffic materializes one event's sampled IXP records and
// honeypot flows.
func (g *dayGen) attackTraffic(sensors *[]SensorFlow, ev *AttackEvent) {
	c := g.C
	end := ev.End()
	if g.SkipIXP {
		g.sensorFlows(sensors, ev)
		return
	}

	// Responses: amplifier -> victim.
	for _, id := range ev.Amplifiers {
		amp := c.Pool.Get(id)
		if !amp.AliveAt(ev.Start) {
			continue
		}
		if !c.RouteViaIXP(amp.ASN, ev.VictimASN) {
			continue
		}
		eff := 0.95
		if amp.RRL {
			eff = 0.15
		}
		if ev.IsEntity {
			eff *= c.Entity.ResponseEfficiency(ev.Start)
		}
		n := int(float64(ev.ReqPerAmp) * eff)
		k := g.sampler.ThinFlow(n)
		if k == 0 {
			continue
		}
		tmpl := g.responseTemplate(ev.QName, ev.Start)
		for i := 0; i < k; i++ {
			t := ev.Start.Add(simclock.Duration(g.rng.Int63n(int64(ev.Duration) + 1)))
			g.emitAttackResponse(amp, ev, tmpl, t, end)
		}
	}

	// Requests: attacker -> amplifiers, visible only when the back-end
	// sits inside a member's cone (entity phases 1-2).
	if ev.RequestsViaIXP {
		evName := dnswire.CanonicalName(ev.QName)
		evNameID, _ := g.table.Lookup(evName)
		for _, id := range ev.Amplifiers {
			amp := c.Pool.Get(id)
			if c.Topo.MemberFor(amp.ASN) == ev.IngressAS {
				continue // stays inside the ingress cone
			}
			k := g.sampler.ThinFlow(ev.ReqPerAmp)
			for i := 0; i < k; i++ {
				t := ev.Start.Add(simclock.Duration(g.rng.Int63n(int64(ev.Duration) + 1)))
				g.emitAttackRequest(amp, ev, evName, evNameID, t, end)
			}
		}
	}

	g.sensorFlows(sensors, ev)
}

// emitAttackResponse draws and emits one amplifier->victim response,
// applying the amplifier's EDNS cap.
func (g *dayGen) emitAttackResponse(amp *Amplifier, ev *AttackEvent, tmpl *respTemplate, t, end simclock.Time) {
	size := tmpl.fullLen
	if amp.MinimalANY {
		size = 60
	} else if amp.EDNSCap > 0 && size > amp.EDNSCap {
		size = amp.EDNSCap
	}
	txid := g.pickTXID(ev, t, end)
	ipID := uint16(g.rng.Intn(1 << 16))
	dstPort := uint16(1024 + g.rng.Intn(60000))

	if g.frames != nil {
		payload := tmpl.prefix
		if len(payload) > size {
			payload = payload[:size]
		}
		buf := make([]byte, len(payload))
		copy(buf, payload)
		if len(buf) >= 2 {
			buf[0], buf[1] = byte(txid>>8), byte(txid)
		}
		eth := netmodel.Ethernet{Src: macForAS(amp.ASN), Dst: macForAS(ev.VictimASN)}
		ip := netmodel.IPv4{TTL: amp.ObservedTTL(), ID: ipID, Src: amp.Addr, Dst: ev.Victim}
		udp := netmodel.UDP{
			SrcPort: 53,
			DstPort: dstPort,
			Length:  uint16(netmodel.UDPHeaderLen + size),
		}
		frame := netmodel.EncodeUDPPacket(eth, ip, udp, buf)
		*g.frames = append(*g.frames, TaggedRecord{Rec: g.sampler.Take(t, frame)})
		return
	}

	payloadLen := len(tmpl.prefix)
	if payloadLen > size {
		payloadLen = size
	}
	g.batch.Frames++
	parseLen, msgSize, drop := frameWindow(payloadLen, size)
	var meta tmplMeta
	if drop == dropNone {
		meta = tmpl.metaFor(parseLen)
		drop = meta.drop
	}
	switch drop {
	case dropNonUDP:
		g.batch.NonUDP++
		return
	case dropNonDNS:
		g.batch.NonDNS++
		return
	case dropMalformed:
		g.batch.Malformed++
		return
	}
	g.batch.Append(ixp.BatchRecord{
		Time:      t,
		Src:       amp.Addr.As4(),
		Dst:       ev.Victim.As4(),
		SrcPort:   53,
		DstPort:   dstPort,
		IPTTL:     amp.ObservedTTL(),
		IPID:      ipID,
		Resp:      true,
		Name:      tmpl.nameID,
		QType:     dnswire.TypeANY,
		TXID:      txid,
		MsgSize:   int32(msgSize),
		ANCount:   tmpl.anCount,
		VisibleNS: meta.visibleNS,
	})
}

// emitAttackRequest draws and emits one spoofed attacker->amplifier
// query.
func (g *dayGen) emitAttackRequest(amp *Amplifier, ev *AttackEvent, evName string, evNameID uint32, t, end simclock.Time) {
	txid := g.pickTXID(ev, t, end)
	ipID := uint16(g.rng.Intn(1 << 16))
	srcPort := uint16(1024 + g.rng.Intn(60000))

	if g.frames != nil {
		q := dnswire.NewQuery(txid, ev.QName, ev.QType, 4096)
		payload := g.enc.Encode(q)
		eth := netmodel.Ethernet{Src: macForAS(ev.IngressAS), Dst: macForAS(amp.ASN)}
		ip := netmodel.IPv4{
			TTL: ev.ReqIPTTL,
			ID:  ipID,
			Src: ev.Victim, // spoofed
			Dst: amp.Addr,
		}
		udp := netmodel.UDP{SrcPort: srcPort, DstPort: 53}
		frame := netmodel.EncodeUDPPacket(eth, ip, udp, payload)
		*g.frames = append(*g.frames, TaggedRecord{Rec: g.sampler.Take(t, frame), Ingress: ev.IngressAS})
		return
	}

	qlen := querySize(evName)
	g.emitSimple(ixp.BatchRecord{
		Time:    t,
		Src:     ev.Victim.As4(), // spoofed
		Dst:     amp.Addr.As4(),
		SrcPort: srcPort,
		DstPort: 53,
		IPTTL:   ev.ReqIPTTL,
		IPID:    ipID,
		Name:    evNameID,
		QType:   ev.QType,
		TXID:    txid,
		Ingress: ev.IngressAS,
	}, nameWireLen(evName), qlen, qlen)
}

// sensorFlows emits the honeypot-side flows of one event.
func (g *dayGen) sensorFlows(sensors *[]SensorFlow, ev *AttackEvent) {
	for _, sensor := range ev.Sensors {
		*sensors = append(*sensors, SensorFlow{
			Sensor:   sensor,
			Victim:   ev.Victim,
			Start:    ev.Start,
			Duration: ev.Duration,
			Count:    ev.ReqPerSensor,
			QName:    ev.QName,
			QType:    ev.QType,
			TXID:     g.pickTXID(ev, ev.Start, ev.End()),
			EventID:  ev.ID,
		})
	}
}

// pickTXID draws a transaction ID honouring the event's pools and the
// phase split of straddling events.
func (g *dayGen) pickTXID(ev *AttackEvent, t, end simclock.Time) uint16 {
	pool := ev.TXIDs
	if len(ev.TXIDs2) > 0 {
		// The shift happens at the event's temporal midpoint.
		mid := ev.Start.Add(ev.Duration / 2)
		if !t.Before(mid) {
			pool = ev.TXIDs2
		}
	}
	if len(pool) == 0 {
		return uint16(g.rng.Intn(1 << 16))
	}
	return pool[g.rng.Intn(len(pool))]
}

// responseTemplate returns (building if needed) the encoded ANY response
// for a misused name on a given day, as an uncapped amplifier would emit
// it; per-amplifier EDNS caps are applied at emission time.
func (g *dayGen) responseTemplate(name string, t simclock.Time) *respTemplate {
	key := tmplKey{name, t.Day()}
	tmpl, ok := g.respTmpl[key]
	if !ok {
		tmpl = g.buildTemplate(name, t)
		g.respTmpl[key] = tmpl
	}
	return tmpl
}

func (g *dayGen) buildTemplate(name string, t simclock.Time) *respTemplate {
	cn := dnswire.CanonicalName(name)
	nameID, _ := g.table.Lookup(cn)
	z, ok := g.C.DB.Zone(name)
	var tmpl *respTemplate
	if !ok {
		// Procedural name: small synthetic answer.
		q := dnswire.NewQuery(0, name, dnswire.TypeANY, 4096)
		resp := dnswire.NewResponse(q)
		wire := dnswire.Encode(resp)
		tmpl = &respTemplate{nameID: nameID, prefix: clone(wire), fullLen: g.C.DB.ANYSize(name, t)}
	} else {
		q := dnswire.NewQuery(0, name, dnswire.TypeANY, 4096)
		resp := z.BuildANYResponse(q, t)
		wire := g.enc.Encode(resp)
		pLen := sflow.DefaultSnaplen - netmodel.EthernetHeaderLen - netmodel.IPv4HeaderLen - netmodel.UDPHeaderLen
		if pLen > len(wire) {
			pLen = len(wire)
		}
		tmpl = &respTemplate{nameID: nameID, prefix: clone(wire[:pLen]), fullLen: len(wire)}
	}
	if len(tmpl.prefix) >= dnswire.HeaderLen {
		tmpl.anCount = uint16(tmpl.prefix[6])<<8 | uint16(tmpl.prefix[7])
	}
	tmpl.meta = make(map[int]tmplMeta, 4)
	return tmpl
}

// metaFor reports what the capture point's tolerant parser would
// recover from the first n prefix bytes, caching per window length (the
// handful of distinct EDNS caps a template meets).
func (tmpl *respTemplate) metaFor(n int) tmplMeta {
	if n > len(tmpl.prefix) {
		n = len(tmpl.prefix)
	}
	if m, ok := tmpl.meta[n]; ok {
		return m
	}
	var m tmplMeta
	res, err := dnswire.Parse(tmpl.prefix[:n])
	switch {
	case err != nil:
		m.drop = dropNonDNS
	case !dnswire.ValidName(res.Msg.QName()) || res.Msg.QType() == dnswire.TypeNone:
		m.drop = dropMalformed
	default:
		ns := 0
		for _, rr := range res.Msg.Answers {
			if rr.Type == dnswire.TypeNS {
				ns++
			}
		}
		for _, rr := range res.Msg.Authority {
			if rr.Type == dnswire.TypeNS {
				ns++
			}
		}
		m.visibleNS = uint16(ns)
	}
	tmpl.meta[n] = m
	return m
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// backgroundQTypes is the organic query-type mix (§3.1: A 57%, AAAA 13%).
var backgroundQTypes = []struct {
	t dnswire.Type
	w float64
}{
	{dnswire.TypeA, 0.57},
	{dnswire.TypeAAAA, 0.13},
	{dnswire.TypePTR, 0.09},
	{dnswire.TypeMX, 0.05},
	{dnswire.TypeTXT, 0.05},
	{dnswire.TypeNS, 0.03},
	{dnswire.TypeSOA, 0.03},
	{dnswire.TypeSRV, 0.02},
	{dnswire.TypeDNSKEY, 0.01},
}

// backgroundTraffic synthesizes the day's organic sampled DNS packets.
func (g *dayGen) backgroundTraffic(day simclock.Time) {
	// Weekly pattern: small dip on weekends (§3.1).
	n := g.Background.SamplesPerDay
	if wd := day.Std().Weekday(); wd == 0 || wd == 6 {
		n = n * 88 / 100
	}
	misused := g.C.DB.MisusedCandidates()
	for i := 0; i < n; i++ {
		client := g.bgClients[g.bgZipf.Draw(g.rng)-1]
		server := g.servers[g.rng.Intn(len(g.servers))]
		t := day.Add(simclock.Duration(g.rng.Int63n(int64(simclock.Day))))

		// Name and type selection.
		var nameID uint32
		qtype := dnswire.TypeA
		u := g.rng.Float64()
		switch {
		case u < g.Background.RootShare:
			// Root priming and monitoring traffic: the root name is a
			// misused name AND a common legitimate query (§4.2's low-
			// share clients).
			nameID = g.rootID
			if g.rng.Float64() < 0.05 {
				qtype = dnswire.TypeANY
			} else if g.rng.Float64() < 0.7 {
				qtype = dnswire.TypeNS
			}
		case u < g.Background.RootShare+g.Background.MisusedShare:
			// Research scanners and monitoring probes against
			// amplification-prone names — these often use ANY.
			nameID = g.misIDs[g.rng.Intn(len(misused))]
			if g.rng.Float64() < 0.5 {
				qtype = dnswire.TypeANY
			}
		case g.rng.Float64() < g.Background.ANYShare:
			// Organic ANY (debugging tools): spread uniformly across
			// the bulk namespace rather than by popularity.
			nameID = g.procIDs[g.rng.Intn(g.C.DB.NumProceduralNames())]
			qtype = dnswire.TypeANY
		default:
			nameID = g.procIDs[g.nameZipf.Draw(g.rng)-1]
			v := g.rng.Float64()
			acc := 0.0
			for _, tw := range backgroundQTypes {
				acc += tw.w
				if v < acc {
					qtype = tw.t
					break
				}
			}
		}
		if g.rng.Float64() < g.Background.ResponseShare {
			g.emitBackgroundResponse(server, client, nameID, qtype, t)
		} else {
			g.emitBackgroundQuery(client, server, nameID, qtype, t)
		}
	}
}

// emitBackgroundQuery draws and emits one organic client->server query.
// The batch path never materializes the name string; sizes come from
// the per-ID wire-length column.
func (g *dayGen) emitBackgroundQuery(client, server netip.Addr, nameID uint32, qtype dnswire.Type, t simclock.Time) {
	txid := uint16(g.rng.Intn(1 << 16))
	ttl := uint8(32 + g.rng.Intn(200))
	ipID := uint16(g.rng.Intn(1 << 16))
	srcPort := uint16(1024 + g.rng.Intn(60000))

	if g.frames != nil {
		q := dnswire.NewQuery(txid, g.table.Name(nameID), qtype, 4096)
		payload := g.enc.Encode(q)
		ip := netmodel.IPv4{TTL: ttl, ID: ipID, Src: client, Dst: server}
		udp := netmodel.UDP{SrcPort: srcPort, DstPort: 53}
		frame := netmodel.EncodeUDPPacket(netmodel.Ethernet{}, ip, udp, payload)
		*g.frames = append(*g.frames, TaggedRecord{Rec: g.sampler.Take(t, frame)})
		return
	}

	wl := int(g.wireLens[nameID])
	qlen := querySizeWL(wl)
	g.emitSimple(ixp.BatchRecord{
		Time:    t,
		Src:     client.As4(),
		Dst:     server.As4(),
		SrcPort: srcPort,
		DstPort: 53,
		IPTTL:   ttl,
		IPID:    ipID,
		Name:    nameID,
		QType:   qtype,
		TXID:    txid,
	}, wl, qlen, qlen)
}

// emitBackgroundResponse draws and emits one organic server->client
// response.
func (g *dayGen) emitBackgroundResponse(server, client netip.Addr, nameID uint32, qtype dnswire.Type, t simclock.Time) {
	size := g.responseSizeFor(nameID, qtype, t)
	// Organic jitter: caches, case randomization, EDNS variations.
	size += g.rng.Intn(24)
	if !g.isExplicit[nameID] && size > 4096 {
		// Recursive resolvers answering organic queries for bulk names
		// cap at the common EDNS buffer; only the misused-name zones
		// (queried at their authoritatives or via uncapped resolvers)
		// show larger answers in practice.
		size = 4096
	}
	txid := uint16(g.rng.Intn(1 << 16))
	ttl := uint8(32 + g.rng.Intn(200))
	ipID := uint16(g.rng.Intn(1 << 16))
	dstPort := uint16(1024 + g.rng.Intn(60000))

	if g.frames != nil {
		name := g.table.Name(nameID)
		q := dnswire.NewQuery(txid, name, qtype, 4096)
		resp := dnswire.NewResponse(q)
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 300, Data: dnswire.AData{Addr: server},
		})
		payload := g.enc.Encode(resp)
		if size < len(payload) {
			size = len(payload)
		}
		ip := netmodel.IPv4{TTL: ttl, ID: ipID, Src: server, Dst: client}
		udp := netmodel.UDP{
			SrcPort: 53,
			DstPort: dstPort,
			Length:  uint16(netmodel.UDPHeaderLen + size),
		}
		frame := netmodel.EncodeUDPPacket(netmodel.Ethernet{}, ip, udp, payload)
		*g.frames = append(*g.frames, TaggedRecord{Rec: g.sampler.Take(t, frame)})
		return
	}

	wl := int(g.wireLens[nameID])
	respLen := bgResponseSizeWL(wl)
	if size < respLen {
		size = respLen
	}
	g.emitSimple(ixp.BatchRecord{
		Time:    t,
		Src:     server.As4(),
		Dst:     client.As4(),
		SrcPort: 53,
		DstPort: dstPort,
		IPTTL:   ttl,
		IPID:    ipID,
		Resp:    true,
		Name:    nameID,
		QType:   qtype,
		TXID:    txid,
		ANCount: 1,
	}, wl, respLen, size)
}

// macForAS derives a stable router MAC for a member/AS.
func macForAS(asn uint32) netmodel.MAC {
	return netmodel.MAC{0x02, 0x42, byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)}
}
