package ecosystem

import (
	"math/rand"
	"net/netip"
	"sort"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/topology"
)

// TaggedRecord is one sampled IXP frame plus the ingress-port metadata
// the fabric knows (needed because spoofed packets cannot be attributed
// by source address).
type TaggedRecord struct {
	Rec sflow.Record
	// Ingress is the member ASN whose port the packet entered through;
	// 0 lets the capture point derive it from the source address.
	Ingress uint32
}

// SensorFlow aggregates the spoofed queries one honeypot sensor receives
// from one attack event. The honeypot package applies the CCC inference
// thresholds to these flows.
type SensorFlow struct {
	Sensor   int
	Victim   netip.Addr
	Start    simclock.Time
	Duration simclock.Duration
	Count    int
	QName    string
	QType    dnswire.Type
	TXID     uint16
	EventID  int
}

// BackgroundConfig tunes legitimate traffic synthesis.
type BackgroundConfig struct {
	// SamplesPerDay is the expected sampled background packets per day
	// (paper scale: ~340k/day so that attack traffic lands at ~5% of
	// DNS packets).
	SamplesPerDay int
	// Clients is the background client population size.
	Clients int
	// ResponseShare is the response fraction (paper: 60% requests).
	ResponseShare float64
	// RootShare is the share of background packets for the root name —
	// the reason some clients show low misused-name ratios in Fig. 4.
	RootShare float64
	// MisusedShare is the tiny share of organic traffic for misused
	// names (monitoring, research scanners).
	MisusedShare float64
	// ANYShare of background queries (debugging tools etc.); calibrated
	// so that ~68% of ANY packets belong to attacks.
	ANYShare float64
}

// DefaultBackgroundConfig returns paper-scale defaults (caller scales
// SamplesPerDay and Clients).
func DefaultBackgroundConfig() BackgroundConfig {
	return BackgroundConfig{
		SamplesPerDay: 340_000,
		Clients:       120_000,
		ResponseShare: 0.40,
		RootShare:     0.015,
		MisusedShare:  0.0004,
		ANYShare:      0.025,
	}
}

// DayTraffic is everything one simulated day produces.
type DayTraffic struct {
	Day simclock.Time
	// IXP holds the sampled, truncated frames (unordered).
	IXP []TaggedRecord
	// Sensors holds the honeypot-side flows.
	Sensors []SensorFlow
}

// Generator materializes traffic for a campaign.
//
// Traffic is generated one day at a time, and each day is a pure
// function of (campaign, seed, day): Day derives a fresh per-day RNG
// stream, so materializing days out of order — or concurrently from
// several goroutines — yields exactly the traffic of a sequential
// day-by-day replay. All state shared across days (campaign, client
// population, Zipf tables) is read-only after construction.
type Generator struct {
	C          *Campaign
	Background BackgroundConfig
	// SkipIXP suppresses IXP frame materialization, producing only the
	// honeypot-side sensor flows. Used by analyses that re-run the
	// honeypot inference under different thresholds (Appendix B). Note
	// that skipping changes per-day RNG consumption, so per-flow TXIDs
	// differ from a full run; counts and timing do not.
	SkipIXP bool

	seed int64

	// bgClients is the background client population.
	bgClients []netip.Addr
	bgZipf    *stats.Zipf
	nameZipf  *stats.Zipf
	servers   []netip.Addr
}

// dayGen carries the mutable per-day state: the day's RNG stream, its
// sampler, the wire encoder, and the response-template cache. One
// dayGen lives for exactly one Day call, which is what makes Day safe
// for concurrent use.
type dayGen struct {
	*Generator
	rng      *rand.Rand
	sampler  *sflow.Sampler
	enc      dnswire.Encoder
	respTmpl map[tmplKey]*respTemplate
}

// daySeed mixes the generator seed with the day ordinal (splitmix64
// finalizer) so per-day streams are decorrelated.
func daySeed(seed int64, day int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(day)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// slice opens the per-day generation state for one day.
func (g *Generator) slice(day simclock.Time) *dayGen {
	h := daySeed(g.seed, day.Day())
	return &dayGen{
		Generator: g,
		rng:       rand.New(rand.NewSource(h)),
		sampler:   sflow.NewSampler(h ^ 0x5a3c9d1),
		respTmpl:  make(map[tmplKey]*respTemplate),
	}
}

type tmplKey struct {
	name string
	day  int
}

type respTemplate struct {
	prefix  []byte // first snaplen-42 bytes of the DNS payload
	fullLen int    // full DNS message size
}

// NewGenerator builds a traffic generator. The background volume scales
// with the campaign's Scale.
func NewGenerator(c *Campaign, seed int64) *Generator {
	g := &Generator{
		C:          c,
		Background: DefaultBackgroundConfig(),
		seed:       seed,
	}
	g.Background.SamplesPerDay = scaleInt(g.Background.SamplesPerDay, c.Cfg.Scale)
	g.Background.Clients = scaleInt(g.Background.Clients, c.Cfg.Scale)

	// Background clients across all ASes; servers in hosting space.
	// This population is drawn once from a construction-time stream and
	// shared read-only by every day slice.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	asns := make([]uint32, 0, len(c.Topo.ASes))
	for asn := range c.Topo.ASes {
		asns = append(asns, asn)
	}
	sortUint32(asns)
	for i := 0; i < g.Background.Clients; i++ {
		asn := asns[rng.Intn(len(asns))]
		addr, _ := c.Topo.RandomAddrIn(rng, asn)
		g.bgClients = append(g.bgClients, addr)
	}
	hosting := c.Topo.ASesOfType(topology.ASHosting)
	for i := 0; i < 400; i++ {
		addr, _ := c.Topo.RandomAddrIn(rng, hosting[rng.Intn(len(hosting))])
		g.servers = append(g.servers, addr)
	}
	g.bgZipf = stats.NewZipf(len(g.bgClients), 1.05)
	g.nameZipf = stats.NewZipf(200_000, 1.0)
	return g
}

// Day materializes all traffic of one simulated day. Each day's output
// depends only on (campaign, seed, day), so Day may be called from
// multiple goroutines concurrently and in any day order.
func (g *Generator) Day(day simclock.Time) *DayTraffic {
	day = day.StartOfDay()
	dg := g.slice(day)
	dt := &DayTraffic{Day: day}
	for _, ev := range g.C.EventsOnDay(day) {
		dg.attackTraffic(dt, ev)
	}
	if !g.SkipIXP && simclock.MainPeriod().Contains(day) {
		dg.backgroundTraffic(dt, day)
	}
	return dt
}

// attackTraffic materializes one event's sampled IXP frames and honeypot
// flows.
func (g *dayGen) attackTraffic(dt *DayTraffic, ev *AttackEvent) {
	c := g.C
	end := ev.End()
	if g.SkipIXP {
		g.sensorFlows(dt, ev)
		return
	}

	// Responses: amplifier -> victim.
	for _, id := range ev.Amplifiers {
		amp := c.Pool.Get(id)
		if !amp.AliveAt(ev.Start) {
			continue
		}
		if !c.RouteViaIXP(amp.ASN, ev.VictimASN) {
			continue
		}
		eff := 0.95
		if amp.RRL {
			eff = 0.15
		}
		if ev.IsEntity {
			eff *= c.Entity.ResponseEfficiency(ev.Start)
		}
		n := int(float64(ev.ReqPerAmp) * eff)
		k := g.sampler.ThinFlow(n)
		if k == 0 {
			continue
		}
		tmpl := g.responseTemplate(ev.QName, ev.Start)
		for i := 0; i < k; i++ {
			t := ev.Start.Add(simclock.Duration(g.rng.Int63n(int64(ev.Duration) + 1)))
			frame := g.buildResponseFrame(amp, ev, tmpl, t, end)
			dt.IXP = append(dt.IXP, TaggedRecord{Rec: g.sampler.Take(t, frame)})
		}
	}

	// Requests: attacker -> amplifiers, visible only when the back-end
	// sits inside a member's cone (entity phases 1-2).
	if ev.RequestsViaIXP {
		for _, id := range ev.Amplifiers {
			amp := c.Pool.Get(id)
			if c.Topo.MemberFor(amp.ASN) == ev.IngressAS {
				continue // stays inside the ingress cone
			}
			k := g.sampler.ThinFlow(ev.ReqPerAmp)
			for i := 0; i < k; i++ {
				t := ev.Start.Add(simclock.Duration(g.rng.Int63n(int64(ev.Duration) + 1)))
				frame := g.buildRequestFrame(amp, ev, t, end)
				dt.IXP = append(dt.IXP, TaggedRecord{Rec: g.sampler.Take(t, frame), Ingress: ev.IngressAS})
			}
		}
	}

	g.sensorFlows(dt, ev)
}

// sensorFlows emits the honeypot-side flows of one event.
func (g *dayGen) sensorFlows(dt *DayTraffic, ev *AttackEvent) {
	for _, sensor := range ev.Sensors {
		dt.Sensors = append(dt.Sensors, SensorFlow{
			Sensor:   sensor,
			Victim:   ev.Victim,
			Start:    ev.Start,
			Duration: ev.Duration,
			Count:    ev.ReqPerSensor,
			QName:    ev.QName,
			QType:    ev.QType,
			TXID:     g.pickTXID(ev, ev.Start, ev.End()),
			EventID:  ev.ID,
		})
	}
}

// pickTXID draws a transaction ID honouring the event's pools and the
// phase split of straddling events.
func (g *dayGen) pickTXID(ev *AttackEvent, t, end simclock.Time) uint16 {
	pool := ev.TXIDs
	if len(ev.TXIDs2) > 0 {
		// The shift happens at the event's temporal midpoint.
		mid := ev.Start.Add(ev.Duration / 2)
		if !t.Before(mid) {
			pool = ev.TXIDs2
		}
	}
	if len(pool) == 0 {
		return uint16(g.rng.Intn(1 << 16))
	}
	return pool[g.rng.Intn(len(pool))]
}

// responseTemplate returns (building if needed) the encoded ANY response
// for a misused name on a given day, as an uncapped amplifier would emit
// it; per-amplifier EDNS caps are applied at frame-build time.
func (g *dayGen) responseTemplate(name string, t simclock.Time) *respTemplate {
	key := tmplKey{name, t.Day()}
	tmpl, ok := g.respTmpl[key]
	if !ok {
		tmpl = g.buildTemplate(name, t)
		g.respTmpl[key] = tmpl
	}
	return tmpl
}

func (g *dayGen) buildTemplate(name string, t simclock.Time) *respTemplate {
	z, ok := g.C.DB.Zone(name)
	if !ok {
		// Procedural name: small synthetic answer.
		q := dnswire.NewQuery(0, name, dnswire.TypeANY, 4096)
		resp := dnswire.NewResponse(q)
		wire := dnswire.Encode(resp)
		return &respTemplate{prefix: clone(wire), fullLen: g.C.DB.ANYSize(name, t)}
	}
	q := dnswire.NewQuery(0, name, dnswire.TypeANY, 4096)
	resp := z.BuildANYResponse(q, t)
	wire := g.enc.Encode(resp)
	pLen := sflow.DefaultSnaplen - netmodel.EthernetHeaderLen - netmodel.IPv4HeaderLen - netmodel.UDPHeaderLen
	if pLen > len(wire) {
		pLen = len(wire)
	}
	return &respTemplate{prefix: clone(wire[:pLen]), fullLen: len(wire)}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// buildResponseFrame assembles one amplifier->victim response frame,
// applying the amplifier's EDNS cap and patching the transaction ID.
func (g *dayGen) buildResponseFrame(amp *Amplifier, ev *AttackEvent, tmpl *respTemplate, t, end simclock.Time) []byte {
	size := tmpl.fullLen
	if amp.MinimalANY {
		size = 60
	} else if amp.EDNSCap > 0 && size > amp.EDNSCap {
		size = amp.EDNSCap
	}
	payload := tmpl.prefix
	if len(payload) > size {
		payload = payload[:size]
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	txid := g.pickTXID(ev, t, end)
	if len(buf) >= 2 {
		buf[0], buf[1] = byte(txid>>8), byte(txid)
	}
	eth := netmodel.Ethernet{Src: macForAS(amp.ASN), Dst: macForAS(ev.VictimASN)}
	ip := netmodel.IPv4{
		TTL: amp.ObservedTTL(),
		ID:  uint16(g.rng.Intn(1 << 16)),
		Src: amp.Addr,
		Dst: ev.Victim,
	}
	udp := netmodel.UDP{
		SrcPort: 53,
		DstPort: uint16(1024 + g.rng.Intn(60000)),
		Length:  uint16(netmodel.UDPHeaderLen + size),
	}
	return netmodel.EncodeUDPPacket(eth, ip, udp, buf)
}

// buildRequestFrame assembles one spoofed attacker->amplifier query.
func (g *dayGen) buildRequestFrame(amp *Amplifier, ev *AttackEvent, t, end simclock.Time) []byte {
	q := dnswire.NewQuery(g.pickTXID(ev, t, end), ev.QName, ev.QType, 4096)
	payload := g.enc.Encode(q)
	eth := netmodel.Ethernet{Src: macForAS(ev.IngressAS), Dst: macForAS(amp.ASN)}
	ip := netmodel.IPv4{
		TTL: ev.ReqIPTTL,
		ID:  uint16(g.rng.Intn(1 << 16)),
		Src: ev.Victim, // spoofed
		Dst: amp.Addr,
	}
	udp := netmodel.UDP{
		SrcPort: uint16(1024 + g.rng.Intn(60000)),
		DstPort: 53,
	}
	return netmodel.EncodeUDPPacket(eth, ip, udp, payload)
}

// backgroundQTypes is the organic query-type mix (§3.1: A 57%, AAAA 13%).
var backgroundQTypes = []struct {
	t dnswire.Type
	w float64
}{
	{dnswire.TypeA, 0.57},
	{dnswire.TypeAAAA, 0.13},
	{dnswire.TypePTR, 0.09},
	{dnswire.TypeMX, 0.05},
	{dnswire.TypeTXT, 0.05},
	{dnswire.TypeNS, 0.03},
	{dnswire.TypeSOA, 0.03},
	{dnswire.TypeSRV, 0.02},
	{dnswire.TypeDNSKEY, 0.01},
}

// backgroundTraffic synthesizes the day's organic sampled DNS packets.
func (g *dayGen) backgroundTraffic(dt *DayTraffic, day simclock.Time) {
	// Weekly pattern: small dip on weekends (§3.1).
	n := g.Background.SamplesPerDay
	if wd := day.Std().Weekday(); wd == 0 || wd == 6 {
		n = n * 88 / 100
	}
	misused := g.C.DB.MisusedCandidates()
	for i := 0; i < n; i++ {
		client := g.bgClients[g.bgZipf.Draw(g.rng)-1]
		server := g.servers[g.rng.Intn(len(g.servers))]
		t := day.Add(simclock.Duration(g.rng.Int63n(int64(simclock.Day))))

		// Name and type selection.
		var name string
		qtype := dnswire.TypeA
		u := g.rng.Float64()
		switch {
		case u < g.Background.RootShare:
			// Root priming and monitoring traffic: the root name is a
			// misused name AND a common legitimate query (§4.2's low-
			// share clients).
			name = "."
			if g.rng.Float64() < 0.05 {
				qtype = dnswire.TypeANY
			} else if g.rng.Float64() < 0.7 {
				qtype = dnswire.TypeNS
			}
		case u < g.Background.RootShare+g.Background.MisusedShare:
			// Research scanners and monitoring probes against
			// amplification-prone names — these often use ANY.
			name = misused[g.rng.Intn(len(misused))]
			if g.rng.Float64() < 0.5 {
				qtype = dnswire.TypeANY
			}
		case g.rng.Float64() < g.Background.ANYShare:
			// Organic ANY (debugging tools): spread uniformly across
			// the bulk namespace rather than by popularity.
			name = g.C.DB.ProceduralName(g.rng.Intn(g.C.DB.NumProceduralNames()))
			qtype = dnswire.TypeANY
		default:
			name = g.C.DB.ProceduralName(g.nameZipf.Draw(g.rng) - 1)
			v := g.rng.Float64()
			acc := 0.0
			for _, tw := range backgroundQTypes {
				acc += tw.w
				if v < acc {
					qtype = tw.t
					break
				}
			}
		}

		isResponse := g.rng.Float64() < g.Background.ResponseShare
		var frame []byte
		if isResponse {
			frame = g.buildBackgroundResponse(server, client, name, qtype, t)
		} else {
			frame = g.buildBackgroundQuery(client, server, name, qtype)
		}
		dt.IXP = append(dt.IXP, TaggedRecord{Rec: g.sampler.Take(t, frame)})
	}
}

func (g *dayGen) buildBackgroundQuery(client, server netip.Addr, name string, qtype dnswire.Type) []byte {
	q := dnswire.NewQuery(uint16(g.rng.Intn(1<<16)), name, qtype, 4096)
	payload := g.enc.Encode(q)
	eth := netmodel.Ethernet{}
	ip := netmodel.IPv4{TTL: uint8(32 + g.rng.Intn(200)), ID: uint16(g.rng.Intn(1 << 16)), Src: client, Dst: server}
	udp := netmodel.UDP{SrcPort: uint16(1024 + g.rng.Intn(60000)), DstPort: 53}
	return netmodel.EncodeUDPPacket(eth, ip, udp, payload)
}

func (g *dayGen) buildBackgroundResponse(server, client netip.Addr, name string, qtype dnswire.Type, t simclock.Time) []byte {
	size := g.C.DB.ResponseSize(name, qtype, t)
	// Organic jitter: caches, case randomization, EDNS variations.
	size += g.rng.Intn(24)
	if _, explicit := g.C.DB.Zone(name); !explicit && size > 4096 {
		// Recursive resolvers answering organic queries for bulk names
		// cap at the common EDNS buffer; only the misused-name zones
		// (queried at their authoritatives or via uncapped resolvers)
		// show larger answers in practice.
		size = 4096
	}
	q := dnswire.NewQuery(uint16(g.rng.Intn(1<<16)), name, qtype, 4096)
	resp := dnswire.NewResponse(q)
	resp.Answers = append(resp.Answers, dnswire.RR{
		Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, Data: dnswire.AData{Addr: server},
	})
	payload := g.enc.Encode(resp)
	if size < len(payload) {
		size = len(payload)
	}
	eth := netmodel.Ethernet{}
	ip := netmodel.IPv4{TTL: uint8(32 + g.rng.Intn(200)), ID: uint16(g.rng.Intn(1 << 16)), Src: server, Dst: client}
	udp := netmodel.UDP{
		SrcPort: 53,
		DstPort: uint16(1024 + g.rng.Intn(60000)),
		Length:  uint16(netmodel.UDPHeaderLen + size),
	}
	return netmodel.EncodeUDPPacket(eth, ip, udp, payload)
}

// macForAS derives a stable router MAC for a member/AS.
func macForAS(asn uint32) netmodel.MAC {
	return netmodel.MAC{0x02, 0x42, byte(asn >> 24), byte(asn >> 16), byte(asn >> 8), byte(asn)}
}

func sortUint32(xs []uint32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
