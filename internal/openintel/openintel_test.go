package openintel

import (
	"net/netip"
	"testing"

	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

var db = zonedb.New(zonedb.Config{ProceduralNames: 50_000})

func TestANYSizeSeriesPlateaus(t *testing.T) {
	f := New(db)
	series := f.ANYSizeSeries("bja.gov", simclock.MainPeriod())
	if len(series) != 92 {
		t.Fatalf("series length = %d, want 92", len(series))
	}
	plateaus := RolloverPlateaus(series, 1500)
	if len(plateaus) < 1 {
		t.Fatal("no rollover plateau found in 92 days")
	}
	for _, p := range plateaus {
		if p.Days() < 1 || p.Days() > 14 {
			t.Errorf("plateau length = %d days, want <= 14", p.Days())
		}
	}
	// Full-period series over the entity window sees ~every-47-days
	// rollovers: at least 5 plateaus.
	full := f.ANYSizeSeries("bja.gov", simclock.EntityPeriod())
	if got := len(RolloverPlateaus(full, 1500)); got < 5 {
		t.Errorf("full-window plateaus = %d, want >= 5", got)
	}
}

func TestPlateauFourteenDays(t *testing.T) {
	f := New(db)
	full := f.ANYSizeSeries("doj.gov", simclock.EntityPeriod())
	complete := 0
	for _, p := range RolloverPlateaus(full, 1500) {
		if p.Days() == 14 {
			complete++
		}
	}
	if complete < 4 {
		t.Errorf("14-day plateaus = %d, want several (two-week rollovers)", complete)
	}
}

func TestEachNameCount(t *testing.T) {
	f := New(db)
	count := 0
	f.EachName(func(string) { count++ })
	if count != f.NumNames() {
		t.Fatalf("EachName visited %d, NumNames says %d", count, f.NumNames())
	}
	if count < 50_000 {
		t.Errorf("names = %d", count)
	}
}

func TestNSMapping(t *testing.T) {
	f := New(db)
	z, _ := db.Zone("doj.gov")
	zones := f.AuthoritativeZonesFor(z.NSAddrs[0])
	found := false
	for _, zn := range zones {
		if zn == "doj.gov." {
			found = true
		}
	}
	if !found {
		t.Errorf("NS address not mapped to its zone: %v", zones)
	}
	// Unknown address maps to nothing.
	if got := f.AuthoritativeZonesFor(netip.MustParseAddr("198.18.255.254")); len(got) != 0 {
		t.Skip("address collided with a synthetic NS — acceptable")
	}
}

func TestRegisterNS(t *testing.T) {
	f := New(db)
	addr := netip.MustParseAddr("100.66.1.1")
	before := f.NSAddrCount()
	f.RegisterNS(addr, "zone-x.example.")
	if f.NSAddrCount() != before+1 {
		t.Error("RegisterNS did not add")
	}
	if got := f.AuthoritativeZonesFor(addr); len(got) != 1 || got[0] != "zone-x.example." {
		t.Errorf("mapping = %v", got)
	}
}

func TestSizesMatchDB(t *testing.T) {
	f := New(db)
	tm := simclock.MeasurementStart.Add(simclock.Days(20))
	for _, n := range []string{"doj.gov", "bigcorp.com", db.ProceduralName(7)} {
		if f.ANYSize(n, tm) != db.ANYSize(n, tm) {
			t.Errorf("feed size diverges from namespace for %q", n)
		}
	}
}

func TestRolloverPlateausEmpty(t *testing.T) {
	if got := RolloverPlateaus(nil, 100); got != nil {
		t.Error("empty series should yield no plateaus")
	}
	flat := []SizePoint{{Day: 0, Size: 100}, {Day: simclock.Time(simclock.Day), Size: 100}}
	if got := RolloverPlateaus(flat, 100); len(got) != 0 {
		t.Error("flat series should yield no plateaus")
	}
}
