// Package openintel simulates the OpenINTEL active DNS measurement feed
// of §3.2: daily measurements of a large share of the global namespace,
// from which the analyses derive (i) historical ANY response-size series
// per name (Fig. 8b), (ii) the amplification-potential CDF over all
// names (Fig. 16), and (iii) the mapping from amplifier IP addresses to
// authoritative nameservers (§7.1).
package openintel

import (
	"net/netip"

	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

// Feed is the simulated measurement archive. It is a thin, read-only
// view over the namespace database: OpenINTEL measures what the DNS
// stores, and so does this feed.
type Feed struct {
	db *zonedb.DB
	// nsAddrs maps authoritative nameserver addresses to the zones they
	// serve (built from the same records OpenINTEL collects as NS/A
	// glue).
	nsAddrs map[netip.Addr][]string
}

// New builds the feed over the namespace.
func New(db *zonedb.DB) *Feed {
	f := &Feed{db: db, nsAddrs: make(map[netip.Addr][]string)}
	for _, name := range db.ExplicitNames() {
		z, _ := db.Zone(name)
		for _, a := range z.NSAddrs {
			f.nsAddrs[a] = append(f.nsAddrs[a], name)
		}
	}
	return f
}

// ANYSizeSeries returns the daily estimated ANY response size of a name
// across the window — the series whose plateaus reveal DNSSEC key
// rollovers (Fig. 8b).
func (f *Feed) ANYSizeSeries(name string, w simclock.Window) []SizePoint {
	var out []SizePoint
	w.EachDay(func(day simclock.Time) {
		out = append(out, SizePoint{Day: day, Size: f.db.ANYSize(name, day)})
	})
	return out
}

// SizePoint is one day's measurement.
type SizePoint struct {
	Day  simclock.Time
	Size int
}

// ANYSize returns the estimated ANY response size of any measured name
// at t.
func (f *Feed) ANYSize(name string, t simclock.Time) int { return f.db.ANYSize(name, t) }

// NumNames returns the total number of measured names (explicit +
// procedural bulk).
func (f *Feed) NumNames() int {
	return f.db.NumProceduralNames() + len(f.db.ExplicitNames())
}

// EachName iterates over every measured name. The bulk namespace is
// procedural, so iteration is cheap in memory even at 4.4 M names.
func (f *Feed) EachName(fn func(name string)) {
	for _, n := range f.db.ExplicitNames() {
		fn(n)
	}
	for i := 0; i < f.db.NumProceduralNames(); i++ {
		fn(f.db.ProceduralName(i))
	}
}

// AuthoritativeZonesFor maps an amplifier address to the zones it is an
// authoritative nameserver for (empty for open resolvers/forwarders) —
// the classification step of §7.1 ("we use these data to associate
// amplifier IP addresses with authoritative nameservers").
func (f *Feed) AuthoritativeZonesFor(addr netip.Addr) []string {
	return f.nsAddrs[addr]
}

// RegisterNS adds an NS-address mapping. The real OpenINTEL learns
// these from NS and glue records across its 1200+ zonefiles; the
// simulated feed registers the synthetic authoritative population the
// same way.
func (f *Feed) RegisterNS(addr netip.Addr, zone string) {
	f.nsAddrs[addr] = append(f.nsAddrs[addr], zone)
}

// NSAddrCount returns the number of distinct nameserver addresses known.
func (f *Feed) NSAddrCount() int { return len(f.nsAddrs) }

// RolloverPlateaus extracts the rollover plateaus from a size series: a
// plateau is a maximal run of days whose size exceeds the series
// baseline (minimum) by at least minDelta bytes.
func RolloverPlateaus(series []SizePoint, minDelta int) []Plateau {
	if len(series) == 0 {
		return nil
	}
	base := series[0].Size
	for _, p := range series {
		if p.Size < base {
			base = p.Size
		}
	}
	var out []Plateau
	var cur *Plateau
	for _, p := range series {
		if p.Size >= base+minDelta {
			if cur == nil {
				out = append(out, Plateau{Start: p.Day, End: p.Day.Add(simclock.Day), Size: p.Size})
				cur = &out[len(out)-1]
			} else {
				cur.End = p.Day.Add(simclock.Day)
				if p.Size > cur.Size {
					cur.Size = p.Size
				}
			}
		} else {
			cur = nil
		}
	}
	return out
}

// Plateau is one elevated-size span (a rollover overlap).
type Plateau struct {
	Start, End simclock.Time
	Size       int
}

// Days returns the plateau length in days.
func (p Plateau) Days() int { return p.End.DayIndex(p.Start) }
