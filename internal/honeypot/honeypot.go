// Package honeypot models the CCC honeypot platform of §3.2: ~80
// distributed sensors emulating open DNS resolvers, plus the attack
// inference the Cambridge Cybercrime Centre applies — at least 5 requests
// per sensor with no gap larger than 900 seconds (Appendix B).
package honeypot

import (
	"net/netip"
	"slices"
	"sort"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
)

// InferenceConfig holds the CCC thresholds (Appendix B). Related
// platforms use stricter settings (AmpPot: 100 packets / 3600 s gap;
// Noroozian et al.: 600 s gap), which the ablation bench compares.
type InferenceConfig struct {
	MinRequests int
	MaxGap      simclock.Duration
}

// CCCThresholds returns the platform's sensitive defaults.
func CCCThresholds() InferenceConfig {
	return InferenceConfig{MinRequests: 5, MaxGap: 900 * simclock.Second}
}

// AmpPotThresholds returns the stricter AmpPot-style settings used for
// comparison in Appendix B.
func AmpPotThresholds() InferenceConfig {
	return InferenceConfig{MinRequests: 100, MaxGap: 3600 * simclock.Second}
}

// Attack is one honeypot-inferred attack event.
type Attack struct {
	Victim netip.Addr
	Start  simclock.Time
	End    simclock.Time
	// Sensors lists the sensor indices that observed the attack.
	Sensors []int
	// Requests is the total request count across sensors.
	Requests int
	// QNames are the query names observed (the paper deliberately does
	// not use them for Selector 3, but they are in the data).
	QNames map[string]bool
	// QType is the dominant query type.
	QType dnswire.Type
	// EventIDs are ground-truth links for validation only.
	EventIDs map[int]bool
}

// Day returns the attack's start day.
func (a *Attack) Day() simclock.Time { return a.Start.StartOfDay() }

// VictimKey returns the victim as a map key.
func (a *Attack) VictimKey() [4]byte { return a.Victim.As4() }

// Platform accumulates sensor flows and infers attacks.
type Platform struct {
	Cfg        InferenceConfig
	NumSensors int

	// perVictim accumulates qualifying sensor observations keyed by
	// victim; merged into attacks at Finalize.
	obs map[[4]byte][]*sensorObs
}

type sensorObs struct {
	sensor   int
	start    simclock.Time
	end      simclock.Time
	requests int
	qname    string
	qtype    dnswire.Type
	eventID  int
}

// NewPlatform creates a platform with the given inference thresholds.
func NewPlatform(cfg InferenceConfig, numSensors int) *Platform {
	return &Platform{Cfg: cfg, NumSensors: numSensors, obs: make(map[[4]byte][]*sensorObs)}
}

// Observe ingests one sensor flow. Flows below the per-sensor threshold
// or with request gaps above MaxGap are ignored — exactly the CCC rule
// ("5 requests per sensor with no gap of more than 900 seconds").
func (p *Platform) Observe(f ecosystem.SensorFlow) {
	if f.Count < p.Cfg.MinRequests {
		return
	}
	// Requests are spread across the flow; the largest inter-request
	// gap under even spacing is Duration/(Count-1).
	if f.Count > 1 {
		gap := f.Duration / simclock.Duration(f.Count-1)
		if gap > p.Cfg.MaxGap {
			return
		}
	}
	key := f.Victim.As4()
	p.obs[key] = append(p.obs[key], &sensorObs{
		sensor:   f.Sensor,
		start:    f.Start,
		end:      f.Start.Add(f.Duration),
		requests: f.Count,
		qname:    f.QName,
		qtype:    f.QType,
		eventID:  f.EventID,
	})
}

// Finalize merges per-victim observations into attacks: observations
// against the same victim that overlap or follow within MaxGap belong to
// one attack.
func (p *Platform) Finalize() []*Attack {
	var out []*Attack
	for victim, obs := range p.obs {
		slices.SortFunc(obs, func(a, b *sensorObs) int { return int(a.start - b.start) })
		var cur *Attack
		for _, o := range obs {
			if cur == nil || o.start.Sub(cur.End) > p.Cfg.MaxGap {
				cur = &Attack{
					Victim:   netip.AddrFrom4(victim),
					Start:    o.start,
					End:      o.end,
					QNames:   make(map[string]bool),
					QType:    o.qtype,
					EventIDs: make(map[int]bool),
				}
				out = append(out, cur)
			}
			if o.end.After(cur.End) {
				cur.End = o.end
			}
			cur.Sensors = appendUnique(cur.Sensors, o.sensor)
			cur.Requests += o.requests
			cur.QNames[o.qname] = true
			cur.EventIDs[o.eventID] = true
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Victim.Less(out[j].Victim)
	})
	return out
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

// Convergence computes the sensor-convergence curve of Fig. 18: sensors
// sorted descending by detected victims, cumulative victim coverage.
func Convergence(attacks []*Attack, numSensors int) []float64 {
	victimsBySensor := make([]map[[4]byte]bool, numSensors)
	for i := range victimsBySensor {
		victimsBySensor[i] = make(map[[4]byte]bool)
	}
	all := make(map[[4]byte]bool)
	for _, a := range attacks {
		k := a.VictimKey()
		all[k] = true
		for _, s := range a.Sensors {
			if s >= 0 && s < numSensors {
				victimsBySensor[s][k] = true
			}
		}
	}
	order := make([]int, numSensors)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return len(victimsBySensor[order[i]]) > len(victimsBySensor[order[j]])
	})
	seen := make(map[[4]byte]bool)
	curve := make([]float64, numSensors)
	for i, s := range order {
		for k := range victimsBySensor[s] {
			seen[k] = true
		}
		if len(all) > 0 {
			curve[i] = float64(len(seen)) / float64(len(all))
		} else {
			curve[i] = 1
		}
	}
	return curve
}
