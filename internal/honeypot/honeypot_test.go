package honeypot

import (
	"net/netip"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
)

func flow(sensor int, victim string, start simclock.Time, dur simclock.Duration, count int) ecosystem.SensorFlow {
	return ecosystem.SensorFlow{
		Sensor: sensor, Victim: netip.MustParseAddr(victim),
		Start: start, Duration: dur, Count: count,
		QName: "doj.gov.", QType: dnswire.TypeANY,
	}
}

func TestThresholdMinRequests(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	p.Observe(flow(1, "11.0.0.1", t0, 600, 4)) // below 5 requests
	p.Observe(flow(2, "11.0.0.2", t0, 600, 5)) // at threshold
	attacks := p.Finalize()
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d, want 1", len(attacks))
	}
	if attacks[0].Victim.String() != "11.0.0.2" {
		t.Errorf("wrong victim: %v", attacks[0].Victim)
	}
}

func TestThresholdMaxGap(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	// 10 requests over 3 hours: gap = 10800/9 = 1200s > 900s -> drop.
	p.Observe(flow(1, "11.0.0.1", t0, 3*simclock.Hour, 10))
	// 10 requests over 1 hour: gap 400s -> keep.
	p.Observe(flow(2, "11.0.0.2", t0, simclock.Hour, 10))
	attacks := p.Finalize()
	if len(attacks) != 1 || attacks[0].Victim.String() != "11.0.0.2" {
		t.Fatalf("gap rule failed: %+v", attacks)
	}
}

func TestAmpPotThresholdsStricter(t *testing.T) {
	ccc := NewPlatform(CCCThresholds(), 80)
	amp := NewPlatform(AmpPotThresholds(), 80)
	t0 := simclock.MeasurementStart
	f := flow(1, "11.0.0.1", t0, simclock.Hour, 50) // 50 requests
	ccc.Observe(f)
	amp.Observe(f)
	if len(ccc.Finalize()) != 1 {
		t.Error("CCC should detect 50 requests")
	}
	if len(amp.Finalize()) != 0 {
		t.Error("AmpPot (min 100) should not detect 50 requests")
	}
}

func TestMergeAcrossSensors(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	for s := 0; s < 10; s++ {
		p.Observe(flow(s, "11.0.0.1", t0, simclock.Hour, 20))
	}
	attacks := p.Finalize()
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d, want 1 merged", len(attacks))
	}
	a := attacks[0]
	if len(a.Sensors) != 10 {
		t.Errorf("sensors = %d, want 10", len(a.Sensors))
	}
	if a.Requests != 200 {
		t.Errorf("requests = %d, want 200", a.Requests)
	}
}

func TestSplitByGap(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	p.Observe(flow(1, "11.0.0.1", t0, simclock.Hour, 20))
	// Second burst 2 hours after the first ends: separate attack.
	p.Observe(flow(1, "11.0.0.1", t0.Add(3*simclock.Hour), simclock.Hour, 20))
	attacks := p.Finalize()
	if len(attacks) != 2 {
		t.Fatalf("attacks = %d, want 2 (split by gap)", len(attacks))
	}
}

func TestMergeOverlapping(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	p.Observe(flow(1, "11.0.0.1", t0, simclock.Hour, 20))
	p.Observe(flow(2, "11.0.0.1", t0.Add(30*simclock.Minute), simclock.Hour, 20))
	attacks := p.Finalize()
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d, want 1 (overlapping)", len(attacks))
	}
	if attacks[0].End.Sub(attacks[0].Start) != 90*simclock.Minute {
		t.Errorf("merged span = %v", attacks[0].End.Sub(attacks[0].Start))
	}
}

func TestFinalizeDeterministicOrder(t *testing.T) {
	build := func() []*Attack {
		p := NewPlatform(CCCThresholds(), 80)
		t0 := simclock.MeasurementStart
		p.Observe(flow(1, "11.0.0.9", t0.Add(simclock.Hour), simclock.Hour, 20))
		p.Observe(flow(1, "11.0.0.1", t0, simclock.Hour, 20))
		p.Observe(flow(1, "11.0.0.5", t0, simclock.Hour, 20))
		return p.Finalize()
	}
	a := build()
	b := build()
	if len(a) != 3 || len(b) != 3 {
		t.Fatal("expected 3 attacks")
	}
	for i := range a {
		if a[i].Victim != b[i].Victim || a[i].Start != b[i].Start {
			t.Fatal("Finalize order not deterministic")
		}
	}
	if a[0].Victim.String() != "11.0.0.1" {
		t.Errorf("order wrong: %v", a[0].Victim)
	}
}

func TestConvergenceCurve(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 10)
	t0 := simclock.MeasurementStart
	// 10 victims, each visible on all sensors: one sensor suffices.
	for v := 0; v < 10; v++ {
		victim := netip.AddrFrom4([4]byte{11, 0, 1, byte(v)})
		for s := 0; s < 10; s++ {
			p.Observe(ecosystem.SensorFlow{
				Sensor: s, Victim: victim, Start: t0, Duration: simclock.Hour,
				Count: 20, QName: "doj.gov.",
			})
		}
	}
	attacks := p.Finalize()
	curve := Convergence(attacks, 10)
	if curve[0] != 1 {
		t.Errorf("full-coverage convergence[0] = %v, want 1", curve[0])
	}
	// Partial coverage: victim seen by one sensor only.
	p2 := NewPlatform(CCCThresholds(), 4)
	for s := 0; s < 4; s++ {
		victim := netip.AddrFrom4([4]byte{11, 0, 2, byte(s)})
		p2.Observe(ecosystem.SensorFlow{
			Sensor: s, Victim: victim, Start: t0, Duration: simclock.Hour,
			Count: 20, QName: "doj.gov.",
		})
	}
	curve2 := Convergence(p2.Finalize(), 4)
	if curve2[0] != 0.25 || curve2[3] != 1 {
		t.Errorf("disjoint convergence = %v", curve2)
	}
}

func TestConvergenceEmpty(t *testing.T) {
	curve := Convergence(nil, 5)
	for _, v := range curve {
		if v != 1 {
			t.Error("empty attack set should read as fully converged")
		}
	}
}

func TestQNamesRecorded(t *testing.T) {
	p := NewPlatform(CCCThresholds(), 80)
	t0 := simclock.MeasurementStart
	f := flow(1, "11.0.0.1", t0, simclock.Hour, 20)
	f.QName = "peacecorps.gov."
	p.Observe(f)
	attacks := p.Finalize()
	if len(attacks) != 1 || !attacks[0].QNames["peacecorps.gov."] {
		t.Error("query names not recorded")
	}
}
