// Package names implements deterministic string interning for DNS
// names: a Table maps canonical names to dense uint32 IDs so that the
// per-packet hot path (traffic synthesis, capture, aggregation) never
// hashes or allocates strings.
//
// Tables are designed for the pipeline's single-writer sharding model:
// each worker interns into its own local Table (no locks), and local
// tables are folded into a global table at the stage barrier with Remap.
// Because a post-merge Canonicalize orders IDs lexicographically, the
// final ID assignment is independent of worker count and interleaving —
// the property the pipeline's serial/parallel equivalence proof relies
// on.
package names

import "slices"

// None is the sentinel for "no ID" (e.g. an un-interned name in a remap
// cache). It is never returned by Intern.
const None = ^uint32(0)

// Table maps canonical DNS names to dense IDs 0..Len()-1. The zero
// Table is not ready; use NewTable. A Table is not safe for concurrent
// mutation; concurrent read-only use (Lookup/Name) is safe.
type Table struct {
	ids  map[string]uint32
	strs []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: make(map[string]uint32)}
}

// Reserve pre-sizes the table for about n names, avoiding rehashing
// during bulk interning (e.g. freezing a generator's name universe).
func (t *Table) Reserve(n int) {
	if n <= len(t.strs) {
		return
	}
	ids := make(map[string]uint32, n)
	for k, v := range t.ids {
		ids[k] = v
	}
	t.ids = ids
	strs := make([]string, len(t.strs), n)
	copy(strs, t.strs)
	t.strs = strs
}

// Len returns the number of interned names.
func (t *Table) Len() int { return len(t.strs) }

// Intern returns the ID of name, assigning the next dense ID on first
// sight. The caller must pass canonical names (dnswire.CanonicalName);
// the table does not normalize.
func (t *Table) Intern(name string) uint32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, name)
	t.ids[name] = id
	return id
}

// InternBytes is Intern for a byte view of the name. When the name is
// already interned no string is allocated (the map lookup uses the
// compiler's string(b) optimization).
func (t *Table) InternBytes(b []byte) uint32 {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	return t.Intern(string(b))
}

// Lookup returns the ID of name without interning.
func (t *Table) Lookup(name string) (uint32, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the interned string for id. The returned string is the
// table's shared storage: assigning it allocates nothing.
func (t *Table) Name(id uint32) string { return t.strs[id] }

// Names returns the id-ordered name slice. Callers must not modify it.
func (t *Table) Names() []string { return t.strs }

// Remap interns every name of from (in from's ID order) and returns the
// translation slice: remap[fromID] is the corresponding ID in t. Passing
// t itself returns nil, meaning the identity mapping. Remap is the stage
// barrier primitive: worker-local tables fold into a global table, and
// per-ID state is carried across with one slice indexing per entry.
func (t *Table) Remap(from *Table) []uint32 {
	if from == nil || from == t {
		return nil
	}
	out := make([]uint32, from.Len())
	for id, name := range from.strs {
		out[id] = t.Intern(name)
	}
	return out
}

// Canonicalize builds the canonical (lexicographically ID-ordered) table
// over the names selected by keep, plus the translation slice from t's
// IDs (None for dropped names). Canonical tables are equal for any
// insertion order of the same name set, which makes downstream state
// byte-identical across worker counts.
func (t *Table) Canonicalize(keep func(id uint32) bool) (*Table, []uint32) {
	kept := make([]string, 0, len(t.strs))
	for id, name := range t.strs {
		if keep == nil || keep(uint32(id)) {
			kept = append(kept, name)
		}
	}
	slices.Sort(kept)
	ct := &Table{ids: make(map[string]uint32, len(kept)), strs: kept}
	for id, name := range kept {
		ct.ids[name] = uint32(id)
	}
	remap := make([]uint32, len(t.strs))
	for id, name := range t.strs {
		if nid, ok := ct.ids[name]; ok && (keep == nil || keep(uint32(id))) {
			remap[id] = nid
		} else {
			remap[id] = None
		}
	}
	return ct, remap
}
