package names

import (
	"reflect"
	"sync"
	"testing"
)

func TestInternLookupRoundTrip(t *testing.T) {
	tab := NewTable()
	in := []string{"doj.gov.", ".", "nsf.gov.", "doj.gov.", "a.b.c."}
	ids := make([]uint32, len(in))
	for i, n := range in {
		ids[i] = tab.Intern(n)
	}
	if ids[0] != ids[3] {
		t.Errorf("re-intern changed ID: %d vs %d", ids[0], ids[3])
	}
	if tab.Len() != 4 {
		t.Fatalf("len = %d, want 4", tab.Len())
	}
	for i, n := range in {
		if got := tab.Name(ids[i]); got != n {
			t.Errorf("Name(%d) = %q, want %q", ids[i], got, n)
		}
		id, ok := tab.Lookup(n)
		if !ok || id != ids[i] {
			t.Errorf("Lookup(%q) = %d,%v", n, id, ok)
		}
	}
	if _, ok := tab.Lookup("missing."); ok {
		t.Error("Lookup of un-interned name succeeded")
	}
	if id := tab.InternBytes([]byte("nsf.gov.")); id != ids[2] {
		t.Errorf("InternBytes = %d, want %d", id, ids[2])
	}
}

func TestInternDenseIDs(t *testing.T) {
	tab := NewTable()
	for i, n := range []string{"a.", "b.", "c."} {
		if id := tab.Intern(n); id != uint32(i) {
			t.Errorf("Intern(%q) = %d, want %d", n, id, i)
		}
	}
}

func TestRemapIdentity(t *testing.T) {
	tab := NewTable()
	tab.Intern("a.")
	if r := tab.Remap(tab); r != nil {
		t.Errorf("self remap = %v, want nil identity", r)
	}
	if r := tab.Remap(nil); r != nil {
		t.Errorf("nil remap = %v, want nil", r)
	}
}

// TestRemapMergeDeterministic interns shard-locally in different orders
// (disjoint and overlapping) and checks the canonicalized global tables
// come out identical — the stage-barrier property the parallel pipeline
// relies on.
func TestRemapMergeDeterministic(t *testing.T) {
	shardsA := [][]string{{"x.", "y."}, {"z.", "w."}}             // disjoint
	shardsB := [][]string{{"z.", "x.", "w."}, {"w.", "y.", "x."}} // overlapping
	for _, shards := range [][][]string{shardsA, shardsB} {
		var tables []*Table
		for _, names := range shards {
			tab := NewTable()
			for _, n := range names {
				tab.Intern(n)
			}
			tables = append(tables, tab)
		}
		// Merge in both shard orders.
		var canon []*Table
		for _, order := range [][]int{{0, 1}, {1, 0}} {
			global := NewTable()
			for _, i := range order {
				remap := global.Remap(tables[i])
				if len(remap) != tables[i].Len() {
					t.Fatalf("remap len %d, want %d", len(remap), tables[i].Len())
				}
				for fromID, toID := range remap {
					if global.Name(toID) != tables[i].Name(uint32(fromID)) {
						t.Fatalf("remap broke name identity")
					}
				}
			}
			ct, _ := global.Canonicalize(nil)
			canon = append(canon, ct)
		}
		if !reflect.DeepEqual(canon[0], canon[1]) {
			t.Errorf("canonical tables differ across merge orders:\n%v\n%v",
				canon[0].Names(), canon[1].Names())
		}
	}
}

func TestCanonicalizeKeep(t *testing.T) {
	tab := NewTable()
	b := tab.Intern("b.")
	a := tab.Intern("a.")
	tab.Intern("dropped.")
	ct, remap := tab.Canonicalize(func(id uint32) bool { return id == a || id == b })
	if ct.Len() != 2 || ct.Name(0) != "a." || ct.Name(1) != "b." {
		t.Fatalf("canonical = %v", ct.Names())
	}
	if remap[a] != 0 || remap[b] != 1 {
		t.Errorf("remap = %v", remap)
	}
	if remap[2] != None {
		t.Errorf("dropped name remap = %d, want None", remap[2])
	}
}

// TestShardedInternRace mirrors internal/core/merge_test.go's sharding
// model under the race detector: workers intern into private tables
// concurrently, the barrier folds them into one global table, and the
// canonical result is independent of scheduling.
func TestShardedInternRace(t *testing.T) {
	names := []string{"doj.gov.", "nsf.gov.", ".", "nic.cz.", "nask.pl."}
	run := func(workers int) *Table {
		tables := make([]*Table, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tab := NewTable()
				for i := 0; i < 2000; i++ {
					tab.Intern(names[(i*7+w)%len(names)])
				}
				tables[w] = tab
			}(w)
		}
		wg.Wait()
		global := NewTable()
		for _, tab := range tables {
			global.Remap(tab)
		}
		ct, _ := global.Canonicalize(nil)
		return ct
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d canonical table differs: %v vs %v", workers, got.Names(), want.Names())
		}
	}
}
