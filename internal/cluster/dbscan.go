// Package cluster implements the two clustering algorithms the paper
// uses for the bilateral amplifier-set analysis of §7.1 (Fig. 14):
// DBSCAN (Ester et al., KDD 1996) and t-SNE (van der Maaten & Hinton,
// JMLR 2008), both from scratch over precomputed distance matrices.
package cluster

// Noise is the label DBSCAN assigns to non-classifiable points.
const Noise = -1

// DistanceMatrix is a symmetric pairwise distance lookup.
type DistanceMatrix interface {
	Len() int
	Dist(i, j int) float64
}

// Dense is an in-memory DistanceMatrix.
type Dense struct {
	N int
	D []float64 // row-major N×N
}

// NewDense allocates an N×N matrix.
func NewDense(n int) *Dense { return &Dense{N: n, D: make([]float64, n*n)} }

// Set stores a symmetric distance.
func (m *Dense) Set(i, j int, d float64) {
	m.D[i*m.N+j] = d
	m.D[j*m.N+i] = d
}

// Len implements DistanceMatrix.
func (m *Dense) Len() int { return m.N }

// Dist implements DistanceMatrix.
func (m *Dense) Dist(i, j int) float64 { return m.D[i*m.N+j] }

// DBSCAN clusters points by density: a core point has at least minPts
// neighbours within eps; clusters are maximal sets of density-connected
// points. Labels are 0..k-1, or Noise. The implementation is the
// classic region-growing formulation with an explicit seed queue.
func DBSCAN(m DistanceMatrix, eps float64, minPts int) []int {
	n := m.Len()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	neighbours := func(p int) []int {
		var out []int
		for q := 0; q < n; q++ {
			if q != p && m.Dist(p, q) <= eps {
				out = append(out, q)
			}
		}
		return out
	}
	next := 0
	for p := 0; p < n; p++ {
		if labels[p] != -2 {
			continue
		}
		nb := neighbours(p)
		if len(nb)+1 < minPts {
			labels[p] = Noise
			continue
		}
		cid := next
		next++
		labels[p] = cid
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == Noise {
				labels[q] = cid // border point
			}
			if labels[q] != -2 {
				continue
			}
			labels[q] = cid
			qnb := neighbours(q)
			if len(qnb)+1 >= minPts {
				queue = append(queue, qnb...)
			}
		}
	}
	return labels
}

// NumClusters returns the number of clusters in a label vector.
func NumClusters(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// ClusterSizes returns the member count per cluster id (noise excluded).
func ClusterSizes(labels []int) []int {
	sizes := make([]int, NumClusters(labels))
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}

// NoiseShare returns the fraction of points labelled Noise (the paper
// reports ~92% outliers).
func NoiseShare(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range labels {
		if l == Noise {
			n++
		}
	}
	return float64(n) / float64(len(labels))
}

// Members returns the point indices of one cluster.
func Members(labels []int, id int) []int {
	var out []int
	for i, l := range labels {
		if l == id {
			out = append(out, i)
		}
	}
	return out
}
