package cluster

import (
	"math"
	"math/rand"
)

// TSNEConfig tunes the embedding.
type TSNEConfig struct {
	// Perplexity balances local/global structure (the paper reports
	// stable results across perplexities).
	Perplexity float64
	// Iterations of gradient descent.
	Iterations int
	// LearningRate (eta).
	LearningRate float64
	// Seed for the initial layout.
	Seed int64
}

// DefaultTSNEConfig returns a configuration adequate for a few thousand
// points.
func DefaultTSNEConfig() TSNEConfig {
	return TSNEConfig{Perplexity: 30, Iterations: 300, LearningRate: 20, Seed: 4}
}

// Point2 is one embedded point.
type Point2 struct{ X, Y float64 }

// TSNE embeds the points of a distance matrix into 2D using exact
// t-distributed stochastic neighbour embedding: Gaussian input
// affinities calibrated per point to the target perplexity via binary
// search, Student-t output affinities, KL-divergence gradient descent
// with momentum and early exaggeration.
func TSNE(m DistanceMatrix, cfg TSNEConfig) []Point2 {
	n := m.Len()
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []Point2{{}}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Symmetrized input affinities P.
	P := inputAffinities(m, cfg.Perplexity)

	// Initial layout: small Gaussian.
	Y := make([]Point2, n)
	for i := range Y {
		Y[i] = Point2{rng.NormFloat64() * 1e-2, rng.NormFloat64() * 1e-2}
	}
	vel := make([]Point2, n)
	grad := make([]Point2, n)

	const earlyExagIters = 50
	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < earlyExagIters {
			exag = 4.0
		}
		momentum := 0.5
		if iter >= 100 {
			momentum = 0.8
		}

		// Output affinities Q (unnormalized numerators) and their sum.
		var qsum float64
		num := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := Y[i].X - Y[j].X
				dy := Y[i].Y - Y[j].Y
				q := 1 / (1 + dx*dx + dy*dy)
				num[i*n+j] = q
				num[j*n+i] = q
				qsum += 2 * q
			}
		}
		if qsum < 1e-12 {
			qsum = 1e-12
		}

		// Gradient of KL(P||Q).
		for i := 0; i < n; i++ {
			grad[i] = Point2{}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p := exag * P[i*n+j]
				q := num[i*n+j] / qsum
				mult := 4 * (p - q) * num[i*n+j]
				grad[i].X += mult * (Y[i].X - Y[j].X)
				grad[i].Y += mult * (Y[i].Y - Y[j].Y)
			}
		}
		for i := 0; i < n; i++ {
			vel[i].X = momentum*vel[i].X - cfg.LearningRate*grad[i].X
			vel[i].Y = momentum*vel[i].Y - cfg.LearningRate*grad[i].Y
			Y[i].X += vel[i].X
			Y[i].Y += vel[i].Y
		}
	}
	return Y
}

// inputAffinities computes symmetrized, normalized P from distances,
// calibrating each row's Gaussian bandwidth to the target perplexity.
func inputAffinities(m DistanceMatrix, perplexity float64) []float64 {
	n := m.Len()
	if perplexity > float64(n-1) {
		perplexity = float64(n-1) / 3
		if perplexity < 1 {
			perplexity = 1
		}
	}
	logU := math.Log(perplexity)
	P := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := m.Dist(i, j)
			row[j] = d * d
		}
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		var pi []float64
		for tries := 0; tries < 50; tries++ {
			pi = rowAffinities(row, i, beta)
			h := entropyOf(pi)
			diff := h - logU
			if math.Abs(diff) < 1e-4 {
				break
			}
			if diff > 0 { // entropy too high -> narrow the Gaussian
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		copy(P[i*n:(i+1)*n], pi)
	}
	// Symmetrize and normalize.
	total := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (P[i*n+j] + P[j*n+i]) / 2
			P[i*n+j], P[j*n+i] = v, v
			total += 2 * v
		}
		P[i*n+i] = 0
	}
	if total < 1e-12 {
		total = 1e-12
	}
	for k := range P {
		P[k] /= total
		if P[k] < 1e-12 {
			P[k] = 1e-12
		}
	}
	return P
}

// rowAffinities computes conditional probabilities p_{j|i} for one row
// under bandwidth beta (precision).
func rowAffinities(sqDist []float64, i int, beta float64) []float64 {
	n := len(sqDist)
	out := make([]float64, n)
	var sum float64
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		v := math.Exp(-sqDist[j] * beta)
		out[j] = v
		sum += v
	}
	if sum < 1e-300 {
		sum = 1e-300
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// entropyOf returns the Shannon entropy (nats) of a probability row.
func entropyOf(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 1e-300 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Spread measures the mean pairwise embedded distance of a point subset;
// used to verify that similar attacks land near each other.
func Spread(pts []Point2, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum float64
	cnt := 0
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			dx := pts[idx[a]].X - pts[idx[b]].X
			dy := pts[idx[a]].Y - pts[idx[b]].Y
			sum += math.Hypot(dx, dy)
			cnt++
		}
	}
	return sum / float64(cnt)
}

// MeanPairwise is Spread over all points.
func MeanPairwise(pts []Point2) float64 {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	return Spread(pts, idx)
}
