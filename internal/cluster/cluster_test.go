package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs builds a distance matrix with two tight groups and some far
// outliers.
func twoBlobs() (*Dense, []int, []int, []int) {
	// points 0-9: blob A (dist 0.05 within), 10-19: blob B, 20-24: noise.
	n := 25
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d float64
			switch {
			case i < 10 && j < 10:
				d = 0.05
			case i >= 10 && i < 20 && j >= 10 && j < 20:
				d = 0.08
			default:
				d = 0.9
			}
			m.Set(i, j, d)
		}
	}
	a := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	noise := []int{20, 21, 22, 23, 24}
	return m, a, b, noise
}

func TestDBSCANFindsTwoClusters(t *testing.T) {
	m, a, b, noise := twoBlobs()
	labels := DBSCAN(m, 0.2, 3)
	if got := NumClusters(labels); got != 2 {
		t.Fatalf("clusters = %d, want 2 (labels %v)", got, labels)
	}
	for _, i := range a {
		if labels[i] != labels[a[0]] {
			t.Errorf("blob A split: %v", labels)
		}
	}
	for _, i := range b {
		if labels[i] != labels[b[0]] {
			t.Errorf("blob B split: %v", labels)
		}
	}
	if labels[a[0]] == labels[b[0]] {
		t.Error("blobs merged")
	}
	for _, i := range noise {
		if labels[i] != Noise {
			t.Errorf("point %d should be noise, got %d", i, labels[i])
		}
	}
	if got := NoiseShare(labels); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("noise share = %v, want 0.2", got)
	}
	sizes := ClusterSizes(labels)
	if len(sizes) != 2 || sizes[0] != 10 || sizes[1] != 10 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	n := 10
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1.0)
		}
	}
	labels := DBSCAN(m, 0.2, 3)
	if NumClusters(labels) != 0 {
		t.Fatalf("expected no clusters, got %v", labels)
	}
	if NoiseShare(labels) != 1 {
		t.Error("all points should be noise")
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	n := 6
	m := NewDense(n)
	// All close.
	labels := DBSCAN(m, 0.5, 3)
	if NumClusters(labels) != 1 {
		t.Fatalf("expected one cluster, got %v", labels)
	}
	if len(Members(labels, 0)) != n {
		t.Error("cluster should contain all points")
	}
}

func TestDBSCANMinPtsBoundary(t *testing.T) {
	// 3 mutually close points with minPts 4: all noise.
	n := 3
	m := NewDense(n)
	labels := DBSCAN(m, 0.5, 4)
	if NumClusters(labels) != 0 {
		t.Errorf("3 points with minPts=4 should be noise: %v", labels)
	}
	// minPts 3: one cluster.
	labels = DBSCAN(m, 0.5, 3)
	if NumClusters(labels) != 1 {
		t.Errorf("3 points with minPts=3 should cluster: %v", labels)
	}
}

func TestDBSCANEmpty(t *testing.T) {
	labels := DBSCAN(NewDense(0), 0.5, 3)
	if len(labels) != 0 {
		t.Error("empty input should yield empty labels")
	}
}

func TestDBSCANLabelsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		m := NewDense(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		labels := DBSCAN(m, 0.3, 3)
		// Every point must end with a definite label.
		for _, l := range labels {
			if l < Noise {
				return false
			}
		}
		return len(labels) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDenseSymmetry(t *testing.T) {
	m := NewDense(4)
	m.Set(1, 3, 0.7)
	if m.Dist(3, 1) != 0.7 || m.Dist(1, 3) != 0.7 {
		t.Error("Dense not symmetric")
	}
	if m.Dist(2, 2) != 0 {
		t.Error("self-distance not zero")
	}
}

func TestTSNESeparatesBlobs(t *testing.T) {
	m, a, b, _ := twoBlobs()
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 200
	pts := TSNE(m, cfg)
	if len(pts) != m.Len() {
		t.Fatalf("points = %d, want %d", len(pts), m.Len())
	}
	intraA := Spread(pts, a)
	intraB := Spread(pts, b)
	// Distance between blob centroids.
	cax, cay := centroid(pts, a)
	cbx, cby := centroid(pts, b)
	inter := math.Hypot(cax-cbx, cay-cby)
	if inter < 2*intraA || inter < 2*intraB {
		t.Errorf("blobs not separated: inter=%v intraA=%v intraB=%v", inter, intraA, intraB)
	}
}

func centroid(pts []Point2, idx []int) (float64, float64) {
	var sx, sy float64
	for _, i := range idx {
		sx += pts[i].X
		sy += pts[i].Y
	}
	return sx / float64(len(idx)), sy / float64(len(idx))
}

func TestTSNEDeterministic(t *testing.T) {
	m, _, _, _ := twoBlobs()
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 50
	p1 := TSNE(m, cfg)
	p2 := TSNE(m, cfg)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("t-SNE not deterministic for equal seeds")
		}
	}
}

func TestTSNEDegenerate(t *testing.T) {
	if pts := TSNE(NewDense(0), DefaultTSNEConfig()); pts != nil {
		t.Error("empty input should yield nil")
	}
	pts := TSNE(NewDense(1), DefaultTSNEConfig())
	if len(pts) != 1 {
		t.Error("single point should embed trivially")
	}
	// Two identical points must not produce NaNs.
	m := NewDense(2)
	cfg := DefaultTSNEConfig()
	cfg.Iterations = 30
	pts = TSNE(m, cfg)
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Error("NaN in embedding")
		}
	}
}

func TestTSNEPerplexityClamp(t *testing.T) {
	// Perplexity larger than n-1 must be handled.
	m, _, _, _ := twoBlobs()
	cfg := DefaultTSNEConfig()
	cfg.Perplexity = 1000
	cfg.Iterations = 20
	pts := TSNE(m, cfg)
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatal("NaN with oversized perplexity")
		}
	}
}

func TestSpread(t *testing.T) {
	pts := []Point2{{0, 0}, {3, 4}, {6, 8}}
	if got := Spread(pts, []int{0, 1}); math.Abs(got-5) > 1e-9 {
		t.Errorf("Spread = %v, want 5", got)
	}
	if Spread(pts, []int{0}) != 0 {
		t.Error("single-point spread should be 0")
	}
	if MeanPairwise(pts) <= 0 {
		t.Error("MeanPairwise should be positive")
	}
}
