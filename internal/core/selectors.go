package core

import (
	"slices"
	"strings"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/par"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// SelectorResult is one selector's ranked name list.
type SelectorResult struct {
	// Ranked is the full ranking, best first.
	Ranked []string
}

// Top returns the first n names of the ranking.
func (r SelectorResult) Top(n int) []string {
	if n > len(r.Ranked) {
		n = len(r.Ranked)
	}
	return r.Ranked[:n]
}

// TopSet returns the first n names as a set.
func (r SelectorResult) TopSet(n int) map[string]bool {
	return stats.SetOf(r.Top(n))
}

// Selector1MaxSize ranks names by the maximum observed response size
// (§4.1, Selector 1).
func Selector1MaxSize(ag *Aggregator) SelectorResult {
	return rankNames(ag, func(ns *NameStats) int { return ns.MaxSize })
}

// Selector2ANYCount ranks names by the number of ANY packets (§4.1,
// Selector 2).
func Selector2ANYCount(ag *Aggregator) SelectorResult {
	return rankNames(ag, func(ns *NameStats) int { return ns.ANYPackets })
}

// nv is one (name, score) ranking entry; names are resolved from the
// interning table before sorting (the ranking is a once-per-run report
// boundary, not a hot path).
type nv struct {
	name string
	v    int
}

func sortRanking(list []nv) []string {
	slices.SortFunc(list, func(a, b nv) int {
		if a.v != b.v {
			return b.v - a.v
		}
		return strings.Compare(a.name, b.name)
	})
	ranked := make([]string, len(list))
	for i, e := range list {
		ranked[i] = e.name
	}
	return ranked
}

func rankNames(ag *Aggregator, score func(*NameStats) int) SelectorResult {
	list := make([]nv, 0, len(ag.names))
	for id := range ag.names {
		if s := score(&ag.names[id]); s > 0 {
			list = append(list, nv{ag.Table.Name(uint32(id)), s})
		}
	}
	return SelectorResult{Ranked: sortRanking(list)}
}

// GroundTruthAttack is a honeypot-reported attack (victim and time span)
// used by Selector 3 and for threshold validation.
type GroundTruthAttack struct {
	Victim [4]byte
	Start  simclock.Time
	End    simclock.Time
}

// Days enumerates the day keys the attack spans.
func (g GroundTruthAttack) Days() []int {
	var out []int
	for d := g.Start.Day(); d <= g.End.Day(); d++ {
		out = append(out, d)
	}
	return out
}

// Selector3GroundTruth ranks names by their packet counts in IXP traffic
// associated with honeypot attack victims at attack time (§4.1,
// Selector 3). It also returns the set of ground-truth attacks for which
// any IXP DNS traffic was found ("we find DNS attack traffic for 16% of
// all CCC DNS attack events").
func Selector3GroundTruth(ag *Aggregator, attacks []GroundTruthAttack) (SelectorResult, []GroundTruthAttack) {
	counts := make(map[uint32]int)
	var visible []GroundTruthAttack
	for _, gt := range attacks {
		found := false
		for _, d := range gt.Days() {
			ca := ag.ClientOf(ClientDay{Client: gt.Victim, Day: d})
			if ca == nil {
				continue
			}
			found = true
			for _, tc := range ca.Tracked {
				counts[tc.ID] += tc.N
			}
		}
		if found {
			visible = append(visible, gt)
		}
	}
	list := make([]nv, 0, len(counts))
	for id, v := range counts {
		list = append(list, nv{ag.Table.Name(id), v})
	}
	return SelectorResult{Ranked: sortRanking(list)}, visible
}

// ConsensusPoint computes the selector-consensus curve (Fig. 3): the
// Jaccard index of the selectors' top-N sets for N = 1..maxN, and
// returns the N with the highest consensus (ties resolved toward the
// larger N, matching the paper's choice of the knee at 29).
func ConsensusPoint(maxN int, selectors ...SelectorResult) (bestN int, curve []float64) {
	return ConsensusPointParallel(maxN, 1, selectors...)
}

// ConsensusPointParallel is ConsensusPoint with the sweep over N fanned
// out across up to concurrency goroutines. Every N is independent, so
// the curve — and the chosen consensus point — is identical for any
// concurrency level.
func ConsensusPointParallel(maxN, concurrency int, selectors ...SelectorResult) (bestN int, curve []float64) {
	curve = make([]float64, maxN+1)
	point := func(n int) float64 {
		sets := make([]map[string]bool, len(selectors))
		for i, s := range selectors {
			sets[i] = s.TopSet(n)
		}
		return stats.MultiJaccard(sets...)
	}
	par.For(maxN, concurrency, func(_, i int) {
		curve[i+1] = point(i + 1)
	})
	best := -1.0
	for n := 1; n <= maxN; n++ {
		if curve[n] >= best {
			best = curve[n]
			bestN = n
		}
	}
	return bestN, curve
}

// NameList is the final misused-name list: the union of the selectors'
// top-N sets at the consensus point.
type NameList struct {
	// N is the per-selector list size (the consensus point).
	N int
	// Names is the merged candidate set.
	Names map[string]bool
	// PerSelector records each selector's top-N set for overlap
	// reporting (§4.1's intersections).
	PerSelector []map[string]bool
}

// BuildNameList merges the selectors at size n.
func BuildNameList(n int, selectors ...SelectorResult) *NameList {
	nl := &NameList{N: n, Names: make(map[string]bool)}
	for _, s := range selectors {
		set := s.TopSet(n)
		nl.PerSelector = append(nl.PerSelector, set)
		for name := range set {
			nl.Names[name] = true
		}
	}
	return nl
}

// Sorted returns the candidate names sorted by TLD share convention
// (plain lexicographic here).
func (nl *NameList) Sorted() []string {
	out := make([]string, 0, len(nl.Names))
	for n := range nl.Names {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// MutualCount returns how many names all selectors agree on.
func (nl *NameList) MutualCount() int {
	if len(nl.PerSelector) == 0 {
		return 0
	}
	n := 0
outer:
	for name := range nl.PerSelector[0] {
		for _, s := range nl.PerSelector[1:] {
			if !s[name] {
				continue outer
			}
		}
		n++
	}
	return n
}

// GovShare returns the fraction of candidates under .gov.
func (nl *NameList) GovShare() float64 {
	if len(nl.Names) == 0 {
		return 0
	}
	gov := 0
	for n := range nl.Names {
		if dnswire.TLD(n) == "gov" {
			gov++
		}
	}
	return float64(gov) / float64(len(nl.Names))
}
