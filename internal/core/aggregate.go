// Package core implements the paper's primary contribution: passive DNS
// amplification-attack detection at an IXP (§4).
//
// The pipeline has three stages, mirroring Fig. 2:
//
//  1. Aggregation (this file): a streaming pass over sanitized DNS
//     samples building per-name statistics (for the selectors) and
//     per-(client IP, day) traffic profiles (for the thresholds).
//  2. Misused-name identification (selectors.go): three selectors — max
//     response size, ANY packet count, honeypot-correlated ground truth —
//     sized at their Jaccard consensus point and merged.
//  3. Attack detection (detect.go): the traffic-share and minimum-packet
//     thresholds, grouping packets into attack events.
package core

import (
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// ClientDay identifies one (client IP, day) pair — the paper's detection
// granularity.
type ClientDay struct {
	Client [4]byte
	Day    int // days since epoch
}

// ClientAgg is the per-(client, day) traffic profile.
type ClientAgg struct {
	// Total is the number of sampled DNS packets attributed to the
	// client (source of queries, destination of responses).
	Total int
	// Bytes sums the DNS message sizes (UDP-length derived).
	Bytes int
	// ANYPackets / ANYBytes cover the type-ANY subset.
	ANYPackets int
	ANYBytes   int
	// Tracked counts packets per tracked name (candidate universe).
	Tracked map[string]int
	// First and Last bound the observed activity.
	First, Last simclock.Time
}

// TrackedTotal sums the tracked-name packet counts.
func (a *ClientAgg) TrackedTotal() int {
	n := 0
	for _, c := range a.Tracked {
		n += c
	}
	return n
}

// NameStats is the global per-name aggregate feeding Selectors 1 and 2.
type NameStats struct {
	// MaxSize is the largest response size observed for the name (from
	// the UDP length field, §3.1).
	MaxSize int
	// ANYPackets counts packets (queries and responses) of type ANY.
	ANYPackets int
	// Packets counts all packets for the name.
	Packets int
}

// Aggregator is the streaming pass-1 state.
type Aggregator struct {
	// trackNames is the name universe tracked per client (memory
	// bound); global per-name stats cover every observed name.
	trackNames map[string]bool

	Names   map[string]*NameStats
	Clients map[ClientDay]*ClientAgg

	// Samples counts accepted DNS samples.
	Samples int
	// Requests counts query packets.
	Requests int
	// TotalBytes sums DNS message sizes across all samples.
	TotalBytes int
	// ANYPackets / ANYBytes cover the type-ANY subset globally.
	ANYPackets int
	ANYBytes   int
}

// NewAggregator creates an aggregator tracking the given per-client name
// universe (typically the explicit zone list plus the root name; the
// candidate list is always a subset).
func NewAggregator(trackNames []string) *Aggregator {
	tn := make(map[string]bool, len(trackNames))
	for _, n := range trackNames {
		tn[n] = true
	}
	return &Aggregator{
		trackNames: tn,
		Names:      make(map[string]*NameStats),
		Clients:    make(map[ClientDay]*ClientAgg),
	}
}

// Observe ingests one sanitized sample.
func (ag *Aggregator) Observe(s *ixp.DNSSample) {
	ag.Samples++
	if !s.IsResponse {
		ag.Requests++
	}
	ag.TotalBytes += s.MsgSize
	isANY := s.QType == dnswire.TypeANY
	if isANY {
		ag.ANYPackets++
		ag.ANYBytes += s.MsgSize
	}

	ns := ag.Names[s.QName]
	if ns == nil {
		ns = &NameStats{}
		ag.Names[s.QName] = ns
	}
	ns.Packets++
	if isANY {
		ns.ANYPackets++
	}
	if s.IsResponse && s.MsgSize > ns.MaxSize {
		ns.MaxSize = s.MsgSize
	}

	key := ClientDay{Client: s.ClientAddr(), Day: s.Time.Day()}
	ca := ag.Clients[key]
	if ca == nil {
		ca = &ClientAgg{First: s.Time, Last: s.Time}
		ag.Clients[key] = ca
	}
	ca.Total++
	ca.Bytes += s.MsgSize
	if isANY {
		ca.ANYPackets++
		ca.ANYBytes += s.MsgSize
	}
	if s.Time.Before(ca.First) {
		ca.First = s.Time
	}
	if s.Time.After(ca.Last) {
		ca.Last = s.Time
	}
	if ag.trackNames[s.QName] {
		if ca.Tracked == nil {
			ca.Tracked = make(map[string]int, 2)
		}
		ca.Tracked[s.QName]++
	}
}

// Merge folds another aggregator's state into ag. Aggregation is
// commutative (sums, maxima, and time bounds), so merging shards in any
// order yields the same state as a single aggregator observing every
// sample — the property the parallel pipeline relies on. The other
// aggregator's maps are not retained; other must not be used afterwards.
func (ag *Aggregator) Merge(other *Aggregator) {
	if other == nil {
		return
	}
	for n := range other.trackNames {
		ag.trackNames[n] = true
	}
	ag.Samples += other.Samples
	ag.Requests += other.Requests
	ag.TotalBytes += other.TotalBytes
	ag.ANYPackets += other.ANYPackets
	ag.ANYBytes += other.ANYBytes

	for n, ons := range other.Names {
		ns := ag.Names[n]
		if ns == nil {
			cp := *ons
			ag.Names[n] = &cp
			continue
		}
		ns.Packets += ons.Packets
		ns.ANYPackets += ons.ANYPackets
		if ons.MaxSize > ns.MaxSize {
			ns.MaxSize = ons.MaxSize
		}
	}

	for key, oca := range other.Clients {
		ca := ag.Clients[key]
		if ca == nil {
			cp := *oca
			if oca.Tracked != nil {
				cp.Tracked = make(map[string]int, len(oca.Tracked))
				for n, c := range oca.Tracked {
					cp.Tracked[n] = c
				}
			}
			ag.Clients[key] = &cp
			continue
		}
		ca.Total += oca.Total
		ca.Bytes += oca.Bytes
		ca.ANYPackets += oca.ANYPackets
		ca.ANYBytes += oca.ANYBytes
		if oca.First.Before(ca.First) {
			ca.First = oca.First
		}
		if oca.Last.After(ca.Last) {
			ca.Last = oca.Last
		}
		for n, c := range oca.Tracked {
			if ca.Tracked == nil {
				ca.Tracked = make(map[string]int, len(oca.Tracked))
			}
			ca.Tracked[n] += c
		}
	}
}

// ShareOf returns the misused-name traffic share of a client profile
// with respect to a candidate set.
func (a *ClientAgg) ShareOf(candidates map[string]bool) (share float64, candPackets int) {
	for n, c := range a.Tracked {
		if candidates[n] {
			candPackets += c
		}
	}
	if a.Total == 0 {
		return 0, 0
	}
	return float64(candPackets) / float64(a.Total), candPackets
}
