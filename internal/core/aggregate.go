// Package core implements the paper's primary contribution: passive DNS
// amplification-attack detection at an IXP (§4).
//
// The pipeline has three stages, mirroring Fig. 2:
//
//  1. Aggregation (this file): a streaming pass over sanitized DNS
//     samples building per-name statistics (for the selectors) and
//     per-(client IP, day) traffic profiles (for the thresholds).
//  2. Misused-name identification (selectors.go): three selectors — max
//     response size, ANY packet count, honeypot-correlated ground truth —
//     sized at their Jaccard consensus point and merged.
//  3. Attack detection (detect.go): the traffic-share and minimum-packet
//     thresholds, grouping packets into attack events.
//
// The hot path operates on interned name IDs (internal/names): per-name
// state is a dense ID-indexed slice, per-client tracked names are short
// sorted ID lists, and candidate membership is a bitset. Strings appear
// only at report boundaries.
package core

import (
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// ClientDay identifies one (client IP, day) pair — the paper's detection
// granularity.
type ClientDay struct {
	Client [4]byte
	Day    int // days since epoch
}

// NameCount is one (interned name, packet count) entry.
type NameCount struct {
	ID uint32
	N  int
}

// ClientAgg is the per-(client, day) traffic profile.
type ClientAgg struct {
	// Total is the number of sampled DNS packets attributed to the
	// client (source of queries, destination of responses).
	Total int
	// Bytes sums the DNS message sizes (UDP-length derived).
	Bytes int
	// ANYPackets / ANYBytes cover the type-ANY subset.
	ANYPackets int
	ANYBytes   int
	// Tracked counts packets per tracked name (candidate universe),
	// sorted by name ID. Most clients track one or two names, so a
	// short sorted slice beats a map by a wide margin.
	Tracked []NameCount
	// First and Last bound the observed activity.
	First, Last simclock.Time
}

// addTracked bumps the count of one tracked name, keeping the slice
// sorted by ID. The linear insertion is intentional: tracked lists are
// one or two entries long in the pipeline's explicit-track mode, and
// even under the monitor's trackAll mode a client contributes only a
// handful of sampled packets (1:16k sampling) per day, bounding the
// list well below where a map would win.
func (a *ClientAgg) addTracked(id uint32, n int) {
	for i := range a.Tracked {
		switch {
		case a.Tracked[i].ID == id:
			a.Tracked[i].N += n
			return
		case a.Tracked[i].ID > id:
			a.Tracked = append(a.Tracked, NameCount{})
			copy(a.Tracked[i+1:], a.Tracked[i:])
			a.Tracked[i] = NameCount{ID: id, N: n}
			return
		}
	}
	a.Tracked = append(a.Tracked, NameCount{ID: id, N: n})
}

// TrackedTotal sums the tracked-name packet counts.
func (a *ClientAgg) TrackedTotal() int {
	n := 0
	for _, c := range a.Tracked {
		n += c.N
	}
	return n
}

// TrackedCount returns the tracked packet count of one name ID.
func (a *ClientAgg) TrackedCount(id uint32) int {
	for _, c := range a.Tracked {
		if c.ID == id {
			return c.N
		}
	}
	return 0
}

// NameStats is the global per-name aggregate feeding Selectors 1 and 2.
type NameStats struct {
	// MaxSize is the largest response size observed for the name (from
	// the UDP length field, §3.1).
	MaxSize int
	// ANYPackets counts packets (queries and responses) of type ANY.
	ANYPackets int
	// Packets counts all packets for the name.
	Packets int
}

// Aggregator is the streaming pass-1 state. Per-name state is indexed
// by the interned name IDs of Table; workers run private aggregators
// over worker-local tables and fold them with Merge + Canonicalize at
// the stage barrier.
type Aggregator struct {
	// Table is the name-ID space of all per-name state. Samples
	// observed must carry Name IDs of this table (i.e. come from a
	// capture point sharing it).
	Table *names.Table

	// trackAll tracks every observed name per client (the live
	// monitor's mode; affordable because it retains one day of state).
	trackAll bool
	// tracked is the per-client name universe (memory bound), as a
	// bitset over name IDs.
	tracked []bool

	// names holds per-name stats indexed by ID; entries beyond the
	// slice are implicitly zero.
	names []NameStats

	Clients map[ClientDay]*ClientAgg

	// Samples counts accepted DNS samples.
	Samples int
	// Requests counts query packets.
	Requests int
	// TotalBytes sums DNS message sizes across all samples.
	TotalBytes int
	// ANYPackets / ANYBytes cover the type-ANY subset globally.
	ANYPackets int
	ANYBytes   int
}

// NewAggregator creates an aggregator over the given interning table (a
// fresh table when nil), tracking the given per-client name universe
// (typically the explicit zone list plus the root name; the candidate
// list is always a subset).
func NewAggregator(tab *names.Table, trackNames []string) *Aggregator {
	if tab == nil {
		tab = names.NewTable()
	}
	ag := &Aggregator{
		Table:   tab,
		Clients: make(map[ClientDay]*ClientAgg),
	}
	for _, n := range trackNames {
		ag.setTracked(tab.Intern(dnswire.CanonicalName(n)))
	}
	return ag
}

// SetTrackAll switches the aggregator to track every observed name per
// client (live-monitor mode).
func (ag *Aggregator) SetTrackAll(v bool) { ag.trackAll = v }

func (ag *Aggregator) setTracked(id uint32) {
	for len(ag.tracked) <= int(id) {
		ag.tracked = append(ag.tracked, false)
	}
	ag.tracked[id] = true
}

func (ag *Aggregator) isTracked(id uint32) bool {
	return ag.trackAll || (int(id) < len(ag.tracked) && ag.tracked[id])
}

// statsFor returns the per-name slot for id, growing the dense slice on
// first sight of a higher ID.
func (ag *Aggregator) statsFor(id uint32) *NameStats {
	if int(id) >= len(ag.names) {
		if int(id) >= cap(ag.names) {
			grown := make([]NameStats, int(id)+1, 1+cap(ag.names)*2+int(id))
			copy(grown, ag.names)
			ag.names = grown
		} else {
			ag.names = ag.names[:int(id)+1]
		}
	}
	return &ag.names[id]
}

// NameStatsOf returns the stats of a name (zero when never observed) —
// a report-boundary convenience.
func (ag *Aggregator) NameStatsOf(name string) NameStats {
	id, ok := ag.Table.Lookup(dnswire.CanonicalName(name))
	if !ok || int(id) >= len(ag.names) {
		return NameStats{}
	}
	return ag.names[id]
}

// NumNames returns the number of names with observed traffic.
func (ag *Aggregator) NumNames() int {
	n := 0
	for i := range ag.names {
		if ag.names[i].Packets > 0 {
			n++
		}
	}
	return n
}

// Observe ingests one sanitized sample. The sample's Name ID must be in
// the aggregator's table space; the hot loop performs no per-packet
// allocation in steady state.
func (ag *Aggregator) Observe(s *ixp.DNSSample) {
	ag.Samples++
	if !s.IsResponse {
		ag.Requests++
	}
	ag.TotalBytes += s.MsgSize
	isANY := s.QType == dnswire.TypeANY
	if isANY {
		ag.ANYPackets++
		ag.ANYBytes += s.MsgSize
	}

	ns := ag.statsFor(s.Name)
	ns.Packets++
	if isANY {
		ns.ANYPackets++
	}
	if s.IsResponse && s.MsgSize > ns.MaxSize {
		ns.MaxSize = s.MsgSize
	}

	key := ClientDay{Client: s.ClientAddr(), Day: s.Time.Day()}
	ca := ag.Clients[key]
	if ca == nil {
		ca = &ClientAgg{First: s.Time, Last: s.Time}
		ag.Clients[key] = ca
	}
	ca.Total++
	ca.Bytes += s.MsgSize
	if isANY {
		ca.ANYPackets++
		ca.ANYBytes += s.MsgSize
	}
	if s.Time.Before(ca.First) {
		ca.First = s.Time
	}
	if s.Time.After(ca.Last) {
		ca.Last = s.Time
	}
	if ag.isTracked(s.Name) {
		ca.addTracked(s.Name, 1)
	}
}

// Merge folds another aggregator's state into ag, translating the other
// aggregator's name IDs into ag's table. Aggregation is commutative
// (sums, maxima, and time bounds), so merging shards in any order —
// followed by Canonicalize — yields the same state as a single
// aggregator observing every sample: the property the parallel pipeline
// relies on. The other aggregator must not be used afterwards.
func (ag *Aggregator) Merge(other *Aggregator) {
	if other == nil {
		return
	}
	remap := ag.Table.Remap(other.Table) // nil = identity
	xl := func(id uint32) uint32 {
		if remap == nil {
			return id
		}
		return remap[id]
	}

	ag.trackAll = ag.trackAll || other.trackAll
	for id, t := range other.tracked {
		if t {
			ag.setTracked(xl(uint32(id)))
		}
	}
	ag.Samples += other.Samples
	ag.Requests += other.Requests
	ag.TotalBytes += other.TotalBytes
	ag.ANYPackets += other.ANYPackets
	ag.ANYBytes += other.ANYBytes

	for id := range other.names {
		ons := &other.names[id]
		if ons.Packets == 0 && ons.MaxSize == 0 && ons.ANYPackets == 0 {
			continue
		}
		ns := ag.statsFor(xl(uint32(id)))
		ns.Packets += ons.Packets
		ns.ANYPackets += ons.ANYPackets
		if ons.MaxSize > ns.MaxSize {
			ns.MaxSize = ons.MaxSize
		}
	}

	for key, oca := range other.Clients {
		ca := ag.Clients[key]
		if ca == nil {
			cp := *oca
			cp.Tracked = nil
			for _, tc := range oca.Tracked {
				cp.addTracked(xl(tc.ID), tc.N)
			}
			ag.Clients[key] = &cp
			continue
		}
		ca.Total += oca.Total
		ca.Bytes += oca.Bytes
		ca.ANYPackets += oca.ANYPackets
		ca.ANYBytes += oca.ANYBytes
		if oca.First.Before(ca.First) {
			ca.First = oca.First
		}
		if oca.Last.After(ca.Last) {
			ca.Last = oca.Last
		}
		for _, tc := range oca.Tracked {
			ca.addTracked(xl(tc.ID), tc.N)
		}
	}
}

// Canonicalize rebuilds the aggregator over the canonical
// (lexicographically ordered) table of its observed and tracked names.
// After canonicalization the aggregator's state is byte-identical for
// any sharding of the same sample stream, because canonical ID
// assignment is independent of interning order.
func (ag *Aggregator) Canonicalize() {
	keep := func(id uint32) bool {
		if int(id) < len(ag.names) {
			ns := &ag.names[id]
			if ns.Packets > 0 || ns.ANYPackets > 0 || ns.MaxSize > 0 {
				return true
			}
		}
		return int(id) < len(ag.tracked) && ag.tracked[id]
	}
	ct, remap := ag.Table.Canonicalize(keep)

	nn := make([]NameStats, ct.Len())
	for id := range ag.names {
		if nid := remap[id]; nid != names.None {
			nn[nid] = ag.names[id]
		}
	}
	nt := make([]bool, ct.Len())
	trackedAny := false
	for id, t := range ag.tracked {
		if t {
			if nid := remap[id]; nid != names.None {
				nt[nid] = true
				trackedAny = true
			}
		}
	}
	if !trackedAny {
		nt = nil
	}
	for _, ca := range ag.Clients {
		for i := range ca.Tracked {
			ca.Tracked[i].ID = remap[ca.Tracked[i].ID]
		}
		// Remap preserves no order; restore the sorted-by-ID invariant.
		for i := 1; i < len(ca.Tracked); i++ {
			for j := i; j > 0 && ca.Tracked[j-1].ID > ca.Tracked[j].ID; j-- {
				ca.Tracked[j-1], ca.Tracked[j] = ca.Tracked[j], ca.Tracked[j-1]
			}
		}
	}
	ag.Table = ct
	ag.names = nn
	ag.tracked = nt
}

// CandidateSet is the set of candidate (misused) name IDs in one
// aggregator's table space. It is a small ID set, not a table-sized
// bitset: candidate lists are tens of names while a long-lived table
// (the live monitor's) accretes hundreds of thousands, and membership
// checks only run per client-day, not per packet.
type CandidateSet struct {
	ids map[uint32]bool
}

// CandidateSet resolves a candidate name set into the aggregator's ID
// space. Names the aggregator never saw are ignored (they cannot have
// packet counts).
func (ag *Aggregator) CandidateSet(candidates map[string]bool) CandidateSet {
	cs := CandidateSet{ids: make(map[uint32]bool, len(candidates))}
	for n, ok := range candidates {
		if !ok {
			continue
		}
		if id, found := ag.Table.Lookup(dnswire.CanonicalName(n)); found {
			cs.ids[id] = true
		}
	}
	return cs
}

// Contains reports candidate membership of a name ID.
func (cs CandidateSet) Contains(id uint32) bool { return cs.ids[id] }

// Len returns the number of resolved candidate names.
func (cs CandidateSet) Len() int { return len(cs.ids) }

// ShareOf returns the misused-name traffic share of a client profile
// with respect to a candidate set.
func (a *ClientAgg) ShareOf(cs CandidateSet) (share float64, candPackets int) {
	for _, tc := range a.Tracked {
		if cs.Contains(tc.ID) {
			candPackets += tc.N
		}
	}
	if a.Total == 0 {
		return 0, 0
	}
	return float64(candPackets) / float64(a.Total), candPackets
}
