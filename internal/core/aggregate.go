// Package core implements the paper's primary contribution: passive DNS
// amplification-attack detection at an IXP (§4).
//
// The pipeline has three stages, mirroring Fig. 2:
//
//  1. Aggregation (this file): a streaming pass over sanitized DNS
//     samples building per-name statistics (for the selectors) and
//     per-(client IP, day) traffic profiles (for the thresholds).
//  2. Misused-name identification (selectors.go): three selectors — max
//     response size, ANY packet count, honeypot-correlated ground truth —
//     sized at their Jaccard consensus point and merged.
//  3. Attack detection (detect.go): the traffic-share and minimum-packet
//     thresholds, grouping packets into attack events.
//
// The hot path is batch-native and operates on interned name IDs
// (internal/names): ObserveBatch accumulates directly over the columns
// of an ixp.SampleBatch, per-name state is a dense ID-indexed slice, and
// per-client state lives in a flat client-day arena addressed through an
// open-addressed index (clientIndex) — per packet, one hash probe and an
// array write instead of a map lookup and a pointer chase. Per-client
// tracked names are short sorted ID lists, candidate membership is a
// dense column, and strings appear only at report boundaries.
package core

import (
	"slices"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// ClientDay identifies one (client IP, day) pair — the paper's detection
// granularity.
type ClientDay struct {
	Client [4]byte
	Day    int // days since epoch
}

// hashKey folds the pair into the keyspace of the client index: the
// address in the high word, the epoch day in the low word, finished with
// a splitmix64-style mixer so sequential days and adjacent addresses
// spread across the table.
func (k ClientDay) hashKey() uint32 {
	x := uint64(k.Client[0])<<56 | uint64(k.Client[1])<<48 |
		uint64(k.Client[2])<<40 | uint64(k.Client[3])<<32 |
		uint64(uint32(k.Day))
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	return uint32(x >> 32)
}

// less orders client-day keys by (day, client address) — the order
// Detect reports in and the canonical arena order.
func (k ClientDay) less(o ClientDay) int {
	if k.Day != o.Day {
		return k.Day - o.Day
	}
	return cmpAddr(k.Client, o.Client)
}

// NameCount is one (interned name, packet count) entry.
type NameCount struct {
	ID uint32
	N  int
}

// ClientAgg is the per-(client, day) traffic profile.
type ClientAgg struct {
	// Total is the number of sampled DNS packets attributed to the
	// client (source of queries, destination of responses).
	Total int
	// Bytes sums the DNS message sizes (UDP-length derived).
	Bytes int
	// ANYPackets / ANYBytes cover the type-ANY subset.
	ANYPackets int
	ANYBytes   int
	// Tracked counts packets per tracked name (candidate universe),
	// sorted by name ID. Most clients track one or two names, so a
	// short sorted slice beats a map by a wide margin.
	Tracked []NameCount
	// First and Last bound the observed activity.
	First, Last simclock.Time
}

// addTracked bumps the count of one tracked name, keeping the slice
// sorted by ID. The linear insertion is intentional: tracked lists are
// one or two entries long in the pipeline's explicit-track mode, and
// even under the monitor's trackAll mode a client contributes only a
// handful of sampled packets (1:16k sampling) per day, bounding the
// list well below where a map would win.
func (a *ClientAgg) addTracked(id uint32, n int) {
	for i := range a.Tracked {
		switch {
		case a.Tracked[i].ID == id:
			a.Tracked[i].N += n
			return
		case a.Tracked[i].ID > id:
			a.Tracked = append(a.Tracked, NameCount{})
			copy(a.Tracked[i+1:], a.Tracked[i:])
			a.Tracked[i] = NameCount{ID: id, N: n}
			return
		}
	}
	a.Tracked = append(a.Tracked, NameCount{ID: id, N: n})
}

// TrackedTotal sums the tracked-name packet counts.
func (a *ClientAgg) TrackedTotal() int {
	n := 0
	for _, c := range a.Tracked {
		n += c.N
	}
	return n
}

// TrackedCount returns the tracked packet count of one name ID.
func (a *ClientAgg) TrackedCount(id uint32) int {
	for _, c := range a.Tracked {
		if c.ID == id {
			return c.N
		}
	}
	return 0
}

// NameStats is the global per-name aggregate feeding Selectors 1 and 2.
type NameStats struct {
	// MaxSize is the largest response size observed for the name (from
	// the UDP length field, §3.1).
	MaxSize int
	// ANYPackets counts packets (queries and responses) of type ANY.
	ANYPackets int
	// Packets counts all packets for the name.
	Packets int
}

// clientIndex is the dense client-day index: an open-addressed
// (linear-probe) hash table mapping epoch-keyed ClientDay pairs to slots
// of the aggregator's flat client-day arena. ctrl holds slot+1 (0 marks
// an empty bucket); keys live once, in the aggregator's arena-parallel
// key column, so a probe costs one control load plus one key compare.
// Entries are never deleted, and the layout is a deterministic function
// of the insertion sequence (Canonicalize rebuilds it from the sorted
// arena, making it independent of sharding too).
type clientIndex struct {
	ctrl []uint32 // slot+1; 0 = empty
	mask uint32
	n    int
}

// indexSizeFor returns the deterministic table size for n entries: the
// smallest power of two (≥ 16) keeping load at or below 3/4.
func indexSizeFor(n int) int {
	size := 16
	for n*4 > size*3 {
		size <<= 1
	}
	return size
}

// Aggregator is the streaming pass-1 state. Per-name state is indexed
// by the interned name IDs of Table; workers run private aggregators
// over worker-local tables and fold them with Merge + Canonicalize at
// the stage barrier. An Aggregator is a single-writer structure; it is
// not safe for concurrent method calls.
type Aggregator struct {
	// Table is the name-ID space of all per-name state. Samples
	// observed must carry Name IDs of this table (i.e. come from a
	// capture point sharing it).
	Table *names.Table

	// trackAll tracks every observed name per client (the live
	// monitor's mode; affordable because it retains one day of state).
	trackAll bool
	// tracked is the per-client name universe (memory bound), as a
	// bitset over name IDs.
	tracked []bool

	// names holds per-name stats indexed by ID; entries beyond the
	// slice are implicitly zero. numNames counts the entries with
	// observed packets (kept incrementally; re-scanning per report was
	// measurable inside the experiments loop).
	names    []NameStats
	numNames int

	// arena is the flat client-day store: one ClientAgg per observed
	// (client, day) pair, appended in first-observation order and
	// re-sorted into (day, client) order by Canonicalize. arenaKeys is
	// the arena-parallel key column; idx maps keys to arena slots.
	arena     []ClientAgg
	arenaKeys []ClientDay
	idx       clientIndex

	// Samples counts accepted DNS samples.
	Samples int
	// Requests counts query packets.
	Requests int
	// TotalBytes sums DNS message sizes across all samples.
	TotalBytes int
	// ANYPackets / ANYBytes cover the type-ANY subset globally.
	ANYPackets int
	ANYBytes   int

	// Detect scratch columns, reused across calls so the threshold scan
	// allocates nothing in steady state (see Detect).
	detMark []bool
	detCand []uint32
	detTot  []uint32
	detHits []uint32
}

// NewAggregator creates an aggregator over the given interning table (a
// fresh table when nil), tracking the given per-client name universe
// (typically the explicit zone list plus the root name; the candidate
// list is always a subset).
func NewAggregator(tab *names.Table, trackNames []string) *Aggregator {
	if tab == nil {
		tab = names.NewTable()
	}
	ag := &Aggregator{Table: tab}
	for _, n := range trackNames {
		ag.setTracked(tab.Intern(dnswire.CanonicalName(n)))
	}
	return ag
}

// SetTrackAll switches the aggregator to track every observed name per
// client (live-monitor mode).
func (ag *Aggregator) SetTrackAll(v bool) { ag.trackAll = v }

func (ag *Aggregator) setTracked(id uint32) {
	for len(ag.tracked) <= int(id) {
		ag.tracked = append(ag.tracked, false)
	}
	ag.tracked[id] = true
}

func (ag *Aggregator) isTracked(id uint32) bool {
	return ag.trackAll || (int(id) < len(ag.tracked) && ag.tracked[id])
}

// statsFor returns the per-name slot for id, growing the dense slice on
// first sight of a higher ID.
func (ag *Aggregator) statsFor(id uint32) *NameStats {
	if int(id) >= len(ag.names) {
		if int(id) >= cap(ag.names) {
			grown := make([]NameStats, int(id)+1, 1+cap(ag.names)*2+int(id))
			copy(grown, ag.names)
			ag.names = grown
		} else {
			ag.names = ag.names[:int(id)+1]
		}
	}
	return &ag.names[id]
}

// NameStatsOf returns the stats of a name (zero when never observed) —
// a report-boundary convenience.
func (ag *Aggregator) NameStatsOf(name string) NameStats {
	id, ok := ag.Table.Lookup(dnswire.CanonicalName(name))
	if !ok || int(id) >= len(ag.names) {
		return NameStats{}
	}
	return ag.names[id]
}

// NumNames returns the number of names with observed traffic.
func (ag *Aggregator) NumNames() int { return ag.numNames }

// clientFor returns the arena profile of key, appending a zeroed slot on
// first sight (isNew true: the caller must initialize First/Last). The
// returned pointer is valid until the next arena growth.
func (ag *Aggregator) clientFor(key ClientDay) (ca *ClientAgg, isNew bool) {
	ix := &ag.idx
	if ix.ctrl == nil {
		ix.ctrl = make([]uint32, indexSizeFor(0))
		ix.mask = uint32(len(ix.ctrl) - 1)
	}
	i := key.hashKey() & ix.mask
	for {
		c := ix.ctrl[i]
		if c == 0 {
			slot := uint32(len(ag.arena))
			if len(ag.arena) == cap(ag.arena) {
				// Double explicitly: the runtime's large-slice growth
				// factor (~1.25x) would copy the arena about twice as
				// often, and this append is the hot path's only grower.
				grown := make([]ClientAgg, len(ag.arena), 2*cap(ag.arena)+16)
				copy(grown, ag.arena)
				ag.arena = grown
				gk := make([]ClientDay, len(ag.arenaKeys), 2*cap(ag.arenaKeys)+16)
				copy(gk, ag.arenaKeys)
				ag.arenaKeys = gk
			}
			ag.arena = append(ag.arena, ClientAgg{})
			ag.arenaKeys = append(ag.arenaKeys, key)
			ix.ctrl[i] = slot + 1
			ix.n++
			if ix.n*4 > len(ix.ctrl)*3 {
				ag.growIndex()
			}
			return &ag.arena[slot], true
		}
		if ag.arenaKeys[c-1] == key {
			return &ag.arena[c-1], false
		}
		i = (i + 1) & ix.mask
	}
}

// growIndex doubles the probe table and reinserts every arena key. The
// new layout depends only on the old one, so identical insertion
// sequences keep identical tables.
func (ag *Aggregator) growIndex() {
	ag.rebuildIndex(len(ag.idx.ctrl) * 2)
}

// rebuildIndex re-keys the probe table over the current arena at the
// given size (a power of two). When the current table already has that
// size its storage is reused (cleared and refilled) — the steady state
// of a sliding-window aggregator that evicts and refills roughly the
// same number of client-days each day — so periodic rebuilds stop
// allocating once the population stabilizes.
func (ag *Aggregator) rebuildIndex(size int) {
	ctrl := ag.idx.ctrl
	if len(ctrl) == size {
		clear(ctrl)
	} else {
		ctrl = make([]uint32, size)
	}
	mask := uint32(size - 1)
	for slot, key := range ag.arenaKeys {
		i := key.hashKey() & mask
		for ctrl[i] != 0 {
			i = (i + 1) & mask
		}
		ctrl[i] = uint32(slot) + 1
	}
	ag.idx.ctrl = ctrl
	ag.idx.mask = mask
}

// EvictDaysBefore removes every (client, day) profile with Day < day
// from the client-day arena and rebuilds the index over the survivors.
// It is the sliding-window primitive: a long-running consumer advances
// the window by evicting expired days instead of resetting the whole
// aggregator, so unexpired profiles — including their tracked-name
// lists and time bounds — survive untouched.
//
// The arena compacts in place, preserving the surviving entries'
// relative order, and keeps its backing storage: evicted slots are
// recycled by later growth rather than reallocated, so an aggregator
// whose eviction keeps pace with its intake reaches a steady-state
// arena capacity (the bound the eviction tests pin via ArenaCap). The
// vacated tail is zeroed so evicted profiles do not pin their Tracked
// slices through the retained array. Global and per-name statistics
// are cumulative and unaffected — eviction bounds detection state, not
// the selectors' view.
//
// Returns the number of evicted profiles.
func (ag *Aggregator) EvictDaysBefore(day int) int {
	keep := 0
	for i := range ag.arena {
		if ag.arenaKeys[i].Day >= day {
			if keep != i {
				ag.arena[keep] = ag.arena[i]
				ag.arenaKeys[keep] = ag.arenaKeys[i]
			}
			keep++
		}
	}
	evicted := len(ag.arena) - keep
	if evicted == 0 {
		return 0
	}
	clear(ag.arena[keep:])
	ag.arena = ag.arena[:keep]
	ag.arenaKeys = ag.arenaKeys[:keep]
	ag.rebuildIndex(indexSizeFor(keep))
	ag.idx.n = keep
	return evicted
}

// ArenaCap exposes the client-day arena's current capacity — an
// observability hook for eviction: a sliding-window consumer whose
// eviction keeps up reaches a steady-state capacity, which the window
// tests assert and the service's /metrics endpoint exports.
func (ag *Aggregator) ArenaCap() int { return cap(ag.arena) }

// ClientOf returns the profile of one (client, day) pair, nil when the
// pair was never observed. The pointer is valid until the aggregator
// observes more traffic.
func (ag *Aggregator) ClientOf(key ClientDay) *ClientAgg {
	ix := &ag.idx
	if ix.n == 0 {
		return nil
	}
	i := key.hashKey() & ix.mask
	for {
		c := ix.ctrl[i]
		if c == 0 {
			return nil
		}
		if ag.arenaKeys[c-1] == key {
			return &ag.arena[c-1]
		}
		i = (i + 1) & ix.mask
	}
}

// NumClients returns the number of observed (client, day) pairs.
func (ag *Aggregator) NumClients() int { return len(ag.arena) }

// EachClient invokes fn for every observed (client, day) profile, in
// arena order (canonical (day, client) order after Canonicalize). It is
// the iteration primitive for reports: a contiguous slice walk, no map
// materialization.
func (ag *Aggregator) EachClient(fn func(key ClientDay, ca *ClientAgg)) {
	for i := range ag.arena {
		fn(ag.arenaKeys[i], &ag.arena[i])
	}
}

// Clients materializes the map view of the client-day arena for report
// code that wants keyed random access. The map is rebuilt on every call
// (callers should hold on to it); the *ClientAgg values point into the
// arena and stay valid until the aggregator observes more traffic.
func (ag *Aggregator) Clients() map[ClientDay]*ClientAgg {
	m := make(map[ClientDay]*ClientAgg, len(ag.arena))
	for i := range ag.arena {
		m[ag.arenaKeys[i]] = &ag.arena[i]
	}
	return m
}

// observeName folds one packet into the per-name stats column.
func (ag *Aggregator) observeName(id uint32, size int, isANY, isResp bool) {
	ns := ag.statsFor(id)
	if ns.Packets == 0 {
		ag.numNames++
	}
	ns.Packets++
	if isANY {
		ns.ANYPackets++
	}
	if isResp && size > ns.MaxSize {
		ns.MaxSize = size
	}
}

// observeClient folds one packet into its (client, day) profile.
func (ag *Aggregator) observeClient(key ClientDay, t simclock.Time, size int, isANY bool, id uint32) {
	ca, isNew := ag.clientFor(key)
	if isNew {
		ca.First, ca.Last = t, t
	}
	ca.Total++
	ca.Bytes += size
	if isANY {
		ca.ANYPackets++
		ca.ANYBytes += size
	}
	if t.Before(ca.First) {
		ca.First = t
	}
	if t.After(ca.Last) {
		ca.Last = t
	}
	if ag.isTracked(id) {
		ca.addTracked(id, 1)
	}
}

// Observe ingests one sanitized sample. The sample's Name ID must be in
// the aggregator's table space; the hot loop performs no per-packet
// allocation in steady state. ObserveBatch is the batch-native fast
// path; Observe remains for per-sample consumers (the live monitor's
// arrival-order processing, frame-level replay).
func (ag *Aggregator) Observe(s *ixp.DNSSample) {
	ag.Samples++
	if !s.IsResponse {
		ag.Requests++
	}
	ag.TotalBytes += s.MsgSize
	isANY := s.QType == dnswire.TypeANY
	if isANY {
		ag.ANYPackets++
		ag.ANYBytes += s.MsgSize
	}
	ag.observeName(s.Name, s.MsgSize, isANY, s.IsResponse)
	key := ClientDay{Client: s.ClientAddr(), Day: s.Time.Day()}
	ag.observeClient(key, s.Time, s.MsgSize, isANY, s.Name)
}

// observeRow ingests one batch row — the row-wise twin of ObserveBatch's
// columnar loops, used for window-straddling batches.
func (ag *Aggregator) observeRow(b *ixp.SampleBatch, i int) {
	ag.Samples++
	if !b.Resp[i] {
		ag.Requests++
	}
	size := int(b.MsgSize[i])
	ag.TotalBytes += size
	isANY := b.QType[i] == dnswire.TypeANY
	if isANY {
		ag.ANYPackets++
		ag.ANYBytes += size
	}
	ag.observeName(b.Name[i], size, isANY, b.Resp[i])
	client := b.Src[i]
	if b.Resp[i] {
		client = b.Dst[i]
	}
	key := ClientDay{Client: client, Day: b.Time[i].Day()}
	ag.observeClient(key, b.Time[i], size, isANY, b.Name[i])
}

// ObserveBatch ingests a whole columnar batch: global counters as
// straight column sums, per-name stats as an ID-indexed slice walk, and
// per-client state through the dense client-day index. The batch's Name
// column must be in the aggregator's table space (feed foreign batches
// through ixp.CapturePoint.RemapBatch first). The result is exactly the
// state of calling Observe on every row in order; the batch loops
// allocate nothing in steady state.
func (ag *Aggregator) ObserveBatch(b *ixp.SampleBatch) {
	if b == nil || b.N == 0 {
		return
	}
	n := b.N

	// Global counters: independent single-column passes the compiler
	// can keep in registers (and auto-vectorize where profitable).
	ag.Samples += n
	req := 0
	for _, r := range b.Resp[:n] {
		if !r {
			req++
		}
	}
	ag.Requests += req
	var total int64
	for _, sz := range b.MsgSize[:n] {
		total += int64(sz)
	}
	ag.TotalBytes += int(total)
	anyPkts := 0
	var anyBytes int64
	for i, qt := range b.QType[:n] {
		if qt == dnswire.TypeANY {
			anyPkts++
			anyBytes += int64(b.MsgSize[i])
		}
	}
	ag.ANYPackets += anyPkts
	ag.ANYBytes += int(anyBytes)

	// Per-name stats: one walk over the ID column into the dense slice.
	for i, id := range b.Name[:n] {
		ag.observeName(id, int(b.MsgSize[i]), b.QType[i] == dnswire.TypeANY, b.Resp[i])
	}

	// Per-client profiles. Attack flows emit bursts of rows for one
	// (client, day), so a one-entry memo skips the index probe on
	// consecutive repeats; the memo pointer is refreshed on every probe,
	// which is also when the arena can grow.
	var lastKey ClientDay
	var lastCA *ClientAgg
	for i := 0; i < n; i++ {
		client := b.Src[i]
		if b.Resp[i] {
			client = b.Dst[i]
		}
		t := b.Time[i]
		key := ClientDay{Client: client, Day: t.Day()}
		ca := lastCA
		if ca == nil || key != lastKey {
			var isNew bool
			ca, isNew = ag.clientFor(key)
			if isNew {
				ca.First, ca.Last = t, t
			}
			lastKey, lastCA = key, ca
		}
		ca.Total++
		size := int(b.MsgSize[i])
		ca.Bytes += size
		if b.QType[i] == dnswire.TypeANY {
			ca.ANYPackets++
			ca.ANYBytes += size
		}
		if t.Before(ca.First) {
			ca.First = t
		}
		if t.After(ca.Last) {
			ca.Last = t
		}
		if ag.isTracked(b.Name[i]) {
			ca.addTracked(b.Name[i], 1)
		}
	}
}

// ObserveBatchWindow ingests the batch rows whose timestamps fall inside
// (inside true) or outside (inside false) the window. Batches fully on
// one side of the boundary (the common case; a time-bounds pass
// decides) take the unconditional ObserveBatch path; straddling batches
// fall back to a filtered row loop. Callers splitting one batch between
// two aggregators should use ObserveBatchSplit, which shares the
// time-bounds pass.
func (ag *Aggregator) ObserveBatchWindow(b *ixp.SampleBatch, w simclock.Window, inside bool) {
	if b == nil || b.N == 0 {
		return
	}
	minT, maxT := batchTimeBounds(b)
	ag.observeBatchBounded(b, w, inside, minT, maxT)
}

// ObserveBatchSplit splits one batch between two aggregators at the
// window boundary — rows inside w go to in, every other row to out —
// the pipeline's main/extended-window fan-out. One time-bounds pass
// classifies the batch for both sides.
func ObserveBatchSplit(in, out *Aggregator, b *ixp.SampleBatch, w simclock.Window) {
	if b == nil || b.N == 0 {
		return
	}
	minT, maxT := batchTimeBounds(b)
	in.observeBatchBounded(b, w, true, minT, maxT)
	out.observeBatchBounded(b, w, false, minT, maxT)
}

func batchTimeBounds(b *ixp.SampleBatch) (minT, maxT simclock.Time) {
	minT, maxT = b.Time[0], b.Time[0]
	for _, t := range b.Time[1:b.N] {
		if t.Before(minT) {
			minT = t
		}
		if t.After(maxT) {
			maxT = t
		}
	}
	return minT, maxT
}

func (ag *Aggregator) observeBatchBounded(b *ixp.SampleBatch, w simclock.Window, inside bool, minT, maxT simclock.Time) {
	allIn := !minT.Before(w.Start) && maxT.Before(w.End)
	noneIn := maxT.Before(w.Start) || !minT.Before(w.End)
	switch {
	case inside && allIn, !inside && noneIn:
		ag.ObserveBatch(b)
		return
	case inside && noneIn, !inside && allIn:
		return
	}
	for i := 0; i < b.N; i++ {
		if w.Contains(b.Time[i]) == inside {
			ag.observeRow(b, i)
		}
	}
}

// Merge folds another aggregator's state into ag, translating the other
// aggregator's name IDs into ag's table and folding its client-day
// arena slot-wise through ag's index. Aggregation is commutative (sums,
// maxima, and time bounds), so merging shards in any order — followed
// by Canonicalize — yields the same state as a single aggregator
// observing every sample: the property the parallel pipeline relies on.
// The other aggregator must not be used afterwards.
func (ag *Aggregator) Merge(other *Aggregator) {
	if other == nil {
		return
	}
	remap := ag.Table.Remap(other.Table) // nil = identity
	xl := func(id uint32) uint32 {
		if remap == nil {
			return id
		}
		return remap[id]
	}

	ag.trackAll = ag.trackAll || other.trackAll
	for id, t := range other.tracked {
		if t {
			ag.setTracked(xl(uint32(id)))
		}
	}
	ag.Samples += other.Samples
	ag.Requests += other.Requests
	ag.TotalBytes += other.TotalBytes
	ag.ANYPackets += other.ANYPackets
	ag.ANYBytes += other.ANYBytes

	for id := range other.names {
		ons := &other.names[id]
		if ons.Packets == 0 && ons.MaxSize == 0 && ons.ANYPackets == 0 {
			continue
		}
		ns := ag.statsFor(xl(uint32(id)))
		if ns.Packets == 0 && ons.Packets > 0 {
			ag.numNames++
		}
		ns.Packets += ons.Packets
		ns.ANYPackets += ons.ANYPackets
		if ons.MaxSize > ns.MaxSize {
			ns.MaxSize = ons.MaxSize
		}
	}

	for slot := range other.arena {
		oca := &other.arena[slot]
		ca, isNew := ag.clientFor(other.arenaKeys[slot])
		if isNew {
			ca.First, ca.Last = oca.First, oca.Last
		} else {
			if oca.First.Before(ca.First) {
				ca.First = oca.First
			}
			if oca.Last.After(ca.Last) {
				ca.Last = oca.Last
			}
		}
		ca.Total += oca.Total
		ca.Bytes += oca.Bytes
		ca.ANYPackets += oca.ANYPackets
		ca.ANYBytes += oca.ANYBytes
		for _, tc := range oca.Tracked {
			ca.addTracked(xl(tc.ID), tc.N)
		}
	}
}

// Canonicalize rebuilds the aggregator over the canonical
// (lexicographically ordered) table of its observed and tracked names,
// and re-sorts the client-day arena into (day, client) order, rebuilding
// the index from the sorted arena. After canonicalization the
// aggregator's state is byte-identical for any sharding of the same
// sample stream: canonical ID assignment is independent of interning
// order, and the arena order and index layout are functions of the key
// set alone. The sorted arena is also what lets Detect emit detections
// in report order with a near-no-op final sort.
func (ag *Aggregator) Canonicalize() {
	keep := func(id uint32) bool {
		if int(id) < len(ag.names) {
			ns := &ag.names[id]
			if ns.Packets > 0 || ns.ANYPackets > 0 || ns.MaxSize > 0 {
				return true
			}
		}
		return int(id) < len(ag.tracked) && ag.tracked[id]
	}
	ct, remap := ag.Table.Canonicalize(keep)

	nn := make([]NameStats, ct.Len())
	for id := range ag.names {
		if nid := remap[id]; nid != names.None {
			nn[nid] = ag.names[id]
		}
	}
	nt := make([]bool, ct.Len())
	trackedAny := false
	for id, t := range ag.tracked {
		if t {
			if nid := remap[id]; nid != names.None {
				nt[nid] = true
				trackedAny = true
			}
		}
	}
	if !trackedAny {
		nt = nil
	}

	for i := range ag.arena {
		ca := &ag.arena[i]
		for j := range ca.Tracked {
			ca.Tracked[j].ID = remap[ca.Tracked[j].ID]
		}
		// Remap preserves no order; restore the sorted-by-ID invariant.
		for j := 1; j < len(ca.Tracked); j++ {
			for k := j; k > 0 && ca.Tracked[k-1].ID > ca.Tracked[k].ID; k-- {
				ca.Tracked[k-1], ca.Tracked[k] = ca.Tracked[k], ca.Tracked[k-1]
			}
		}
	}
	ag.CanonicalizeClients()

	ag.Table = ct
	ag.names = nn
	ag.tracked = nt
}

// CanonicalizeClients re-sorts the client-day arena into (day, client)
// order and rebuilds the index from the sorted keys, leaving the name
// table untouched. It is the stage barrier for shards that aggregated
// in one shared table (the pipeline's steady state since the source
// table became the common ID space): name IDs are already identical for
// any sharding there, so the full Canonicalize — which re-interns every
// observed name to make IDs interning-order-independent — would spend
// its time rebuilding a table into itself. Shards over worker-local
// tables still need Canonicalize.
func (ag *Aggregator) CanonicalizeClients() {
	order := make([]uint32, len(ag.arena))
	for i := range order {
		order[i] = uint32(i)
	}
	slices.SortFunc(order, func(a, b uint32) int {
		return ag.arenaKeys[a].less(ag.arenaKeys[b])
	})
	arena := make([]ClientAgg, len(ag.arena))
	keys := make([]ClientDay, len(ag.arena))
	for ni, oi := range order {
		arena[ni] = ag.arena[oi]
		keys[ni] = ag.arenaKeys[oi]
	}
	ag.arena = arena
	ag.arenaKeys = keys
	ag.rebuildIndex(indexSizeFor(len(keys)))
	ag.idx.n = len(keys)
}

// CandidateSet is the set of candidate (misused) name IDs in one
// aggregator's table space. It is a small ID set, not a table-sized
// bitset: candidate lists are tens of names while a long-lived table
// (the live monitor's) accretes hundreds of thousands, and membership
// checks only run per client-day, not per packet.
type CandidateSet struct {
	ids map[uint32]bool
}

// CandidateSet resolves a candidate name set into the aggregator's ID
// space. Names the aggregator never saw are ignored (they cannot have
// packet counts).
func (ag *Aggregator) CandidateSet(candidates map[string]bool) CandidateSet {
	cs := CandidateSet{ids: make(map[uint32]bool, len(candidates))}
	for n, ok := range candidates {
		if !ok {
			continue
		}
		if id, found := ag.Table.Lookup(dnswire.CanonicalName(n)); found {
			cs.ids[id] = true
		}
	}
	return cs
}

// Contains reports candidate membership of a name ID.
func (cs CandidateSet) Contains(id uint32) bool { return cs.ids[id] }

// Len returns the number of resolved candidate names.
func (cs CandidateSet) Len() int { return len(cs.ids) }

// ShareOf returns the misused-name traffic share of a client profile
// with respect to a candidate set.
func (a *ClientAgg) ShareOf(cs CandidateSet) (share float64, candPackets int) {
	for _, tc := range a.Tracked {
		if cs.Contains(tc.ID) {
			candPackets += tc.N
		}
	}
	if a.Total == 0 {
		return 0, 0
	}
	return float64(candPackets) / float64(a.Total), candPackets
}
