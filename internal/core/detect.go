package core

import (
	"net/netip"
	"slices"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// Thresholds are the two detection thresholds of §4.2.
type Thresholds struct {
	// MinShare is the minimum misused-name traffic share per
	// (client, day) (paper: 0.90).
	MinShare float64
	// MinPackets is the minimum sampled packet count (paper: 10).
	MinPackets int
}

// DefaultThresholds returns the paper's configuration.
func DefaultThresholds() Thresholds { return Thresholds{MinShare: 0.90, MinPackets: 10} }

// Detection is one detected attack: a (victim IP, day) pair exceeding
// both thresholds.
type Detection struct {
	Victim [4]byte
	Day    int
	// Packets is the total sampled packet count of the pair.
	Packets int
	// CandidatePackets is the misused-name subset.
	CandidatePackets int
	// Share is CandidatePackets / Packets.
	Share       float64
	First, Last simclock.Time
}

// Duration is the observed attack span.
func (d *Detection) Duration() simclock.Duration { return d.Last.Sub(d.First) }

// Detect applies the thresholds to pass-1 aggregates. The candidate set
// is resolved once into a dense mark column over the aggregator's ID
// space; the sweep is then columnar over the flat client-day arena:
// one walk extracts each slot's candidate and total packet counts into
// contiguous uint32 columns, and the minimum-packet threshold runs as a
// branch-light integer pass over those columns (the share division only
// happens for the rare candidate-bearing survivors). On a canonicalized
// aggregator the arena is already in (day, victim) order, so the final
// deterministic sort is a near-no-op; it is kept so non-canonicalized
// aggregators (the live monitor's) report in the same order. The scan
// reuses the aggregator's scratch columns and allocates only for
// emitted detections.
func Detect(ag *Aggregator, candidates map[string]bool, th Thresholds) []*Detection {
	n := len(ag.arena)
	if n == 0 {
		return nil
	}

	// Resolve candidates into the dense mark column.
	tl := ag.Table.Len()
	if cap(ag.detMark) < tl {
		ag.detMark = make([]bool, tl)
	} else {
		ag.detMark = ag.detMark[:tl]
		clear(ag.detMark)
	}
	mark := ag.detMark
	resolved := false
	for name, ok := range candidates {
		if !ok {
			continue
		}
		if id, found := ag.Table.Lookup(dnswire.CanonicalName(name)); found {
			mark[id] = true
			resolved = true
		}
	}
	if !resolved {
		return nil
	}

	// Column pass: per-slot candidate and total packet counts.
	if cap(ag.detCand) < n {
		ag.detCand = make([]uint32, n)
		ag.detTot = make([]uint32, n)
	} else {
		ag.detCand = ag.detCand[:n]
		ag.detTot = ag.detTot[:n]
	}
	cand, tot := ag.detCand, ag.detTot
	for i := range ag.arena {
		ca := &ag.arena[i]
		c := 0
		for _, tc := range ca.Tracked {
			if int(tc.ID) < tl && mark[tc.ID] {
				c += tc.N
			}
		}
		cand[i] = uint32(c)
		tot[i] = uint32(ca.Total)
	}

	// Threshold scan: integer compares over two contiguous columns.
	minP := th.MinPackets
	if minP < 0 {
		minP = 0
	}
	minPackets := uint32(minP)
	// The nil check is not redundant: slicing nil stays nil, and the
	// hits column must end non-nil after every sweep so aggregators
	// with different Detect histories (e.g. a re-Detect after a
	// hit-bearing run vs a single no-hit run) stay reflect.DeepEqual —
	// the determinism contract the pipeline's golden tests compare by.
	hits := ag.detHits
	if hits == nil {
		hits = []uint32{}
	}
	hits = hits[:0]
	for i, c := range cand[:n] {
		if c != 0 && tot[i] >= minPackets {
			hits = append(hits, uint32(i))
		}
	}
	ag.detHits = hits

	var out []*Detection
	for _, i := range hits {
		ca := &ag.arena[i]
		share := float64(cand[i]) / float64(ca.Total)
		if share < th.MinShare {
			continue
		}
		key := ag.arenaKeys[i]
		out = append(out, &Detection{
			Victim: key.Client, Day: key.Day,
			Packets: ca.Total, CandidatePackets: int(cand[i]), Share: share,
			First: ca.First, Last: ca.Last,
		})
	}
	slices.SortFunc(out, func(a, b *Detection) int {
		if a.Day != b.Day {
			return a.Day - b.Day
		}
		return cmpAddr(a.Victim, b.Victim)
	})
	return out
}

func cmpAddr(a, b [4]byte) int {
	for i := range a {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return 0
}

// AttackRecord carries the per-attack details collected in pass 2 for
// the analyses of §5–§7.
type AttackRecord struct {
	Victim [4]byte
	Day    int

	First, Last simclock.Time

	Packets   int
	Requests  int
	Responses int

	// Names counts packets per misused name. It is materialized from
	// the collector's candidate-indexed counters when Records() is
	// called (the report boundary).
	Names map[string]int
	// nameCounts is the hot-path form: packets per candidate index (the
	// collector's sorted candidate list).
	nameCounts []int

	// ANYPackets counts type-ANY packets.
	ANYPackets int

	// TXIDs counts DNS transaction IDs (queries and responses).
	TXIDs map[uint16]int

	// Amplifiers counts response packets per amplifier address.
	Amplifiers map[[4]byte]int

	// Sizes holds observed response sizes (bytes, from UDP length).
	Sizes []int

	// ReqIngress counts request packets per ingress member AS.
	ReqIngress map[uint32]int
	// ReqTTLs counts request packets per IP TTL value.
	ReqTTLs map[uint8]int

	// VictimASN is the victim's origin AS (from routing data).
	VictimASN uint32
}

// DominantName returns the most frequent misused name of the attack.
func (r *AttackRecord) DominantName() string {
	best, name := 0, ""
	for n, c := range r.Names {
		if c > best || (c == best && n < name) {
			best, name = c, n
		}
	}
	return name
}

// Duration returns the observed attack span.
func (r *AttackRecord) Duration() simclock.Duration { return r.Last.Sub(r.First) }

// Collector is the pass-2 stage: given the detected (victim, day) pairs,
// it extracts per-attack details from a second streaming pass. It
// operates on name IDs of its table; candidate names become strings
// again only in Records().
type Collector struct {
	tab *names.Table
	// candNames is the sorted candidate list; per-record name counts
	// are indexed by position in it.
	candNames []string
	// candIdx maps a table name ID to its candidate index. Candidates
	// are few (tens), so a small map beats a table-sized dense column
	// for per-sample use; candSlot is its dense twin for the batch
	// path, sized only up to the highest candidate ID (candidates are
	// interned early, so the column stays short).
	candIdx  map[uint32]int32
	candSlot []int32 // name ID -> candidate index; -1 = not a candidate
	wanted   map[ClientDay]*AttackRecord
	// VisibleNS records the decodable NS-record count of every attack
	// response sample (the NXNS check of §4.2).
	VisibleNS []int
}

// NewCollector prepares pass 2 for the given detections over the given
// interning table (a fresh table when nil). The capture point feeding
// the collector must share the table. Collectors built from the same
// candidate set are mergeable regardless of their tables.
func NewCollector(tab *names.Table, dets []*Detection, candidates map[string]bool) *Collector {
	if tab == nil {
		tab = names.NewTable()
	}
	c := &Collector{tab: tab, wanted: make(map[ClientDay]*AttackRecord, len(dets))}
	for n := range candidates {
		if candidates[n] {
			c.candNames = append(c.candNames, dnswire.CanonicalName(n))
		}
	}
	slices.Sort(c.candNames)
	c.candNames = slices.Compact(c.candNames)
	c.candIdx = make(map[uint32]int32, len(c.candNames))
	maxID := uint32(0)
	for i, n := range c.candNames {
		// Lookup first so shared (frozen) tables are never written from
		// concurrent collector construction; interning only happens on
		// a collector-owned table that has not met the name yet.
		id, ok := tab.Lookup(n)
		if !ok {
			id = tab.Intern(n)
		}
		c.candIdx[id] = int32(i)
		if id > maxID {
			maxID = id
		}
	}
	if len(c.candNames) > 0 {
		c.candSlot = make([]int32, maxID+1)
		for i := range c.candSlot {
			c.candSlot[i] = -1
		}
		for id, ci := range c.candIdx {
			c.candSlot[id] = ci
		}
	}
	for _, d := range dets {
		c.wanted[ClientDay{Client: d.Victim, Day: d.Day}] = &AttackRecord{
			Victim: d.Victim, Day: d.Day,
			First: d.First, Last: d.Last,
			nameCounts: make([]int, len(c.candNames)),
			TXIDs:      make(map[uint16]int),
			Amplifiers: make(map[[4]byte]int),
			ReqIngress: make(map[uint32]int),
			ReqTTLs:    make(map[uint8]int),
		}
	}
	return c
}

// Table exposes the collector's interning table, for wiring up the
// capture point that feeds it.
func (c *Collector) Table() *names.Table { return c.tab }

// Observe ingests one sample during pass 2.
func (c *Collector) Observe(s *ixp.DNSSample) {
	rec := c.wanted[ClientDay{Client: s.ClientAddr(), Day: s.Time.Day()}]
	if rec == nil {
		return
	}
	ci, ok := c.candIdx[s.Name]
	if !ok {
		return
	}
	rec.Packets++
	rec.nameCounts[ci]++
	rec.TXIDs[s.TXID]++
	if s.QType == dnswire.TypeANY {
		rec.ANYPackets++
	}
	if s.IsResponse {
		rec.Responses++
		rec.Amplifiers[s.Src]++
		rec.Sizes = append(rec.Sizes, s.MsgSize)
		c.VisibleNS = append(c.VisibleNS, s.VisibleNS)
	} else {
		rec.Requests++
		rec.ReqIngress[s.PeerAS]++
		rec.ReqTTLs[s.IPTTL]++
	}
	if s.Time.Before(rec.First) {
		rec.First = s.Time
	}
	if s.Time.After(rec.Last) {
		rec.Last = s.Time
	}
}

// ObserveBatch ingests a whole columnar batch during pass 2 — the
// batch-native twin of Observe. The batch's Name column must be in the
// collector's table space. The overwhelming majority of rows reject on
// the dense candidate column (two compares and one load, no hashing);
// only accepted request rows pay a routing lookup, so the pass-2 sweep
// never annotates packets it is about to drop. topo supplies the
// ingress member AS for request packets whose batch Ingress column is
// zero (nil skips the lookup, recording ingress 0 — exactly the
// per-sample path's behaviour for an unannotated sample).
func (c *Collector) ObserveBatch(b *ixp.SampleBatch, topo *topology.Topology) {
	if b == nil || b.N == 0 || len(c.candSlot) == 0 || len(c.wanted) == 0 {
		return
	}
	slot := c.candSlot
	for i, id := range b.Name[:b.N] {
		if int(id) >= len(slot) {
			continue
		}
		ci := slot[id]
		if ci < 0 {
			continue
		}
		resp := b.Resp[i]
		client := b.Src[i]
		if resp {
			client = b.Dst[i]
		}
		t := b.Time[i]
		rec := c.wanted[ClientDay{Client: client, Day: t.Day()}]
		if rec == nil {
			continue
		}
		rec.Packets++
		rec.nameCounts[ci]++
		rec.TXIDs[b.TXID[i]]++
		if b.QType[i] == dnswire.TypeANY {
			rec.ANYPackets++
		}
		if resp {
			rec.Responses++
			rec.Amplifiers[b.Src[i]]++
			rec.Sizes = append(rec.Sizes, int(b.MsgSize[i]))
			c.VisibleNS = append(c.VisibleNS, int(b.VisibleNS[i]))
		} else {
			rec.Requests++
			peer := b.Ingress[i]
			if peer == 0 && topo != nil {
				peer = topo.PeerHopAS(netip.AddrFrom4(b.Src[i]))
			}
			rec.ReqIngress[peer]++
			rec.ReqTTLs[b.IPTTL[i]]++
		}
		if t.Before(rec.First) {
			rec.First = t
		}
		if t.After(rec.Last) {
			rec.Last = t
		}
	}
}

// merge folds another partial record for the same (victim, day) into r.
// Sizes are appended in call order, so merging partials in day order
// reproduces a serial pass's observation order. Both records must come
// from collectors over the same candidate set.
func (r *AttackRecord) merge(o *AttackRecord) {
	r.Packets += o.Packets
	r.Requests += o.Requests
	r.Responses += o.Responses
	r.ANYPackets += o.ANYPackets
	for i, c := range o.nameCounts {
		r.nameCounts[i] += c
	}
	for id, c := range o.TXIDs {
		r.TXIDs[id] += c
	}
	for a, c := range o.Amplifiers {
		r.Amplifiers[a] += c
	}
	r.Sizes = append(r.Sizes, o.Sizes...)
	for as, c := range o.ReqIngress {
		r.ReqIngress[as] += c
	}
	for ttl, c := range o.ReqTTLs {
		r.ReqTTLs[ttl] += c
	}
	if o.First.Before(r.First) {
		r.First = o.First
	}
	if o.Last.After(r.Last) {
		r.Last = o.Last
	}
}

// Merge folds another collector's observations into c. Records present
// in both are combined key-wise; VisibleNS (and per-record sizes) are
// appended in call order, so merging per-day partial collectors in day
// order yields exactly the state of one collector observing the full
// stream serially. Both collectors must share the candidate set (their
// tables may differ). The other collector must not be used afterwards.
func (c *Collector) Merge(o *Collector) {
	for key, orec := range o.wanted {
		rec := c.wanted[key]
		if rec == nil {
			c.wanted[key] = orec
			continue
		}
		rec.merge(orec)
	}
	c.VisibleNS = append(c.VisibleNS, o.VisibleNS...)
}

// SetVictimASN annotates a record's victim origin AS.
func (c *Collector) SetVictimASN(lookup func([4]byte) uint32) {
	for _, rec := range c.wanted {
		rec.VictimASN = lookup(rec.Victim)
	}
}

// Records returns the collected attack records, sorted by (day, victim),
// with per-name packet counts materialized as name strings.
func (c *Collector) Records() []*AttackRecord {
	out := make([]*AttackRecord, 0, len(c.wanted))
	for _, r := range c.wanted {
		if r.Names == nil {
			r.Names = make(map[string]int)
			for i, n := range r.nameCounts {
				if n > 0 {
					r.Names[c.candNames[i]] = n
				}
			}
		}
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b *AttackRecord) int {
		if a.Day != b.Day {
			return a.Day - b.Day
		}
		return cmpAddr(a.Victim, b.Victim)
	})
	return out
}

// ValidateDetection measures the detection rate for visible ground-truth
// attacks under a candidate list and thresholds (Fig. 6): the fraction
// of visible ground-truth (victim, day) pairs that the thresholds flag.
func ValidateDetection(ag *Aggregator, visible []GroundTruthAttack, candidates map[string]bool, th Thresholds) float64 {
	if len(visible) == 0 {
		return 0
	}
	cs := ag.CandidateSet(candidates)
	// Only ground-truth attacks that remain visible under the minimum
	// packet threshold can possibly be detected; the paper reports the
	// detection rate over visible attacks.
	detected := 0
	total := 0
	for _, gt := range visible {
		// An attack is detected if any of its days trips the
		// thresholds.
		vis := false
		hit := false
		for _, d := range gt.Days() {
			ca := ag.ClientOf(ClientDay{Client: gt.Victim, Day: d})
			if ca == nil {
				continue
			}
			if ca.Total >= th.MinPackets {
				vis = true
			}
			share, cand := ca.ShareOf(cs)
			if cand > 0 && ca.Total >= th.MinPackets && share >= th.MinShare {
				hit = true
			}
		}
		if vis {
			total++
			if hit {
				detected++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(detected) / float64(total)
}

// VisibilityCurve computes Fig. 5's curves: for each minimum packet
// threshold, the fraction of ground-truth attacks (and of all client
// days) that remain visible, plus the number of detections under the
// share threshold.
type VisibilityPoint struct {
	MinPackets       int
	GroundTruthShare float64
	AllFlowsShare    float64
	Detections       int
}

// VisibilityCurve sweeps the minimum packet threshold.
func VisibilityCurve(ag *Aggregator, visible []GroundTruthAttack, candidates map[string]bool, share float64, thresholds []int) []VisibilityPoint {
	// Pre-compute ground-truth per-attack max daily packet count.
	var gtMax []int
	for _, gt := range visible {
		best := 0
		for _, d := range gt.Days() {
			if ca := ag.ClientOf(ClientDay{Client: gt.Victim, Day: d}); ca != nil && ca.Total > best {
				best = ca.Total
			}
		}
		if best > 0 {
			gtMax = append(gtMax, best)
		}
	}
	var out []VisibilityPoint
	for _, mp := range thresholds {
		pt := VisibilityPoint{MinPackets: mp}
		vis := 0
		for _, v := range gtMax {
			if v >= mp {
				vis++
			}
		}
		if len(gtMax) > 0 {
			pt.GroundTruthShare = float64(vis) / float64(len(gtMax))
		}
		all, allVis := 0, 0
		ag.EachClient(func(_ ClientDay, ca *ClientAgg) {
			all++
			if ca.Total >= mp {
				allVis++
			}
		})
		if all > 0 {
			pt.AllFlowsShare = float64(allVis) / float64(all)
		}
		pt.Detections = len(Detect(ag, candidates, Thresholds{MinShare: share, MinPackets: mp}))
		out = append(out, pt)
	}
	return out
}
