package core

import (
	"runtime"

	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
	"dnsamp/internal/topology"
)

// Monitor is the live-monitoring prototype of §4.3: it identifies
// potentially misused names in near real-time (per update interval) and
// tracks day-over-day changes of the name list and the victim
// population.
type Monitor struct {
	// N is the per-selector list size (the consensus point from the
	// offline analysis; the paper keeps 29).
	N int
	// Interval is the update cadence (paper: at most 5 minutes delay).
	Interval simclock.Duration

	tab       *names.Table
	agg       *Aggregator
	lastFlush simclock.Time

	// CurrentNames is the latest name list.
	CurrentNames map[string]bool
	// Updates records each refresh.
	Updates []MonitorUpdate

	// dayVictims tracks distinct victim prefixes per day under the
	// current list and thresholds.
	th        Thresholds
	dayOfData int
	days      []MonitorDay
}

// MonitorUpdate is one periodic name-list refresh.
type MonitorUpdate struct {
	Time simclock.Time
	// Names is the refreshed list.
	Names map[string]bool
	// JaccardPrev compares against the previous update (the paper
	// reports a mean day-over-day Jaccard of 0.96).
	JaccardPrev float64
}

// MonitorDay summarizes one completed day.
type MonitorDay struct {
	Day simclock.Time
	// Unique victim aggregates (the paper reports means of 631 /24s,
	// 492 /16s, 121 /8s per day).
	Victims, Prefixes24, Prefixes16, Prefixes8 int
	// NameListJaccard compares the day's list with the previous day's.
	NameListJaccard float64
}

// NewMonitor creates a live monitor. Samples observed must carry name
// IDs of the monitor's interning table (Table), i.e. come from a
// capture point constructed over it.
func NewMonitor(n int, interval simclock.Duration, th Thresholds) *Monitor {
	tab := names.NewTable()
	m := &Monitor{
		N:            n,
		Interval:     interval,
		th:           th,
		tab:          tab,
		agg:          NewAggregator(tab, nil),
		CurrentNames: make(map[string]bool),
		dayOfData:    -1,
	}
	// The monitor tracks every name per client — affordable because it
	// retains only one day of state.
	m.agg.SetTrackAll(true)
	return m
}

// Table exposes the monitor's name-interning space, for wiring up the
// capture point that feeds it.
func (m *Monitor) Table() *names.Table { return m.tab }

// Observe ingests one sample in arrival order.
func (m *Monitor) Observe(s *ixp.DNSSample) {
	if m.dayOfData == -1 {
		m.dayOfData = s.Time.Day()
		m.lastFlush = s.Time
	}
	if s.Time.Day() != m.dayOfData {
		m.rollDay(s.Time)
	}
	m.agg.Observe(s)
	if s.Time.Sub(m.lastFlush) >= m.Interval {
		m.refreshNames(s.Time)
		m.lastFlush = s.Time
	}
}

// refreshNames recomputes the name list from the running day aggregate.
func (m *Monitor) refreshNames(now simclock.Time) {
	s1 := Selector1MaxSize(m.agg)
	s2 := Selector2ANYCount(m.agg)
	nl := BuildNameList(m.N, s1, s2)
	j := stats.Jaccard(m.CurrentNames, nl.Names)
	m.CurrentNames = nl.Names
	m.Updates = append(m.Updates, MonitorUpdate{Time: now, Names: nl.Names, JaccardPrev: j})
}

// rollDay finalizes the completed day and resets per-day state.
func (m *Monitor) rollDay(now simclock.Time) {
	m.refreshNames(now)
	day := simclock.Time(m.dayOfData) * simclock.Time(simclock.Day)

	md := MonitorDay{Day: day}
	dets := Detect(m.agg, m.CurrentNames, m.th)
	p24 := make(map[[3]byte]bool)
	p16 := make(map[[2]byte]bool)
	p8 := make(map[byte]bool)
	for _, d := range dets {
		md.Victims++
		p24[[3]byte{d.Victim[0], d.Victim[1], d.Victim[2]}] = true
		p16[[2]byte{d.Victim[0], d.Victim[1]}] = true
		p8[d.Victim[0]] = true
	}
	md.Prefixes24 = len(p24)
	md.Prefixes16 = len(p16)
	md.Prefixes8 = len(p8)
	if len(m.days) > 0 && len(m.Updates) >= 2 {
		md.NameListJaccard = m.Updates[len(m.Updates)-1].JaccardPrev
	}
	m.days = append(m.days, md)

	// Reset day state, keeping the current name list and the interning
	// table (IDs stay stable across days).
	m.agg = NewAggregator(m.tab, nil)
	m.agg.SetTrackAll(true)
	m.dayOfData = now.Day()
}

// DaySource is the slice of the source.Source interface the monitor
// consumes: a day list and per-day sample batches. It is declared on
// the consumer side (Go convention) so the detection core stays
// independent of the traffic-source implementations; any source.Source
// satisfies it. Day must be safe for concurrent calls — Consume
// prefetches days in parallel.
type DaySource interface {
	Days() []simclock.Time
	Day(day simclock.Time) *ixp.SampleBatch
}

// Consume streams every day of a traffic source through the monitor and
// finalizes it. The monitor is stateful and must see traffic in day
// order, so concurrency takes the form of a bounded prefetch: up to
// prefetch days (0 = all cores) materialize in parallel while the
// monitor consumes days in order. A producer holds its semaphore token
// until the consumer has processed its day, bounding resident day
// traffic (generating or generated-but-unconsumed) to the prefetch
// width. Output is identical at every width.
//
// Samples are annotated against topo through a capture point over the
// monitor's own interning table. onDay, when non-nil, is invoked after
// each day is consumed with the day's sample count (a progress hook).
func (m *Monitor) Consume(src DaySource, topo *topology.Topology, prefetch int, onDay func(day simclock.Time, samples int)) {
	days := src.Days()
	if len(days) == 0 {
		return
	}
	if prefetch <= 0 {
		prefetch = runtime.GOMAXPROCS(0)
	}
	capture := ixp.NewCapturePoint(topo, m.tab)

	slots := make([]chan *ixp.SampleBatch, len(days))
	for i := range slots {
		slots[i] = make(chan *ixp.SampleBatch, 1)
	}
	// The launcher takes tokens in day order, so the in-flight window is
	// always the next `prefetch` unconsumed days and the consumer can
	// never be starved of the day it is waiting on.
	sem := make(chan struct{}, prefetch)
	go func() {
		for i, day := range days {
			sem <- struct{}{}
			go func(i int, day simclock.Time) {
				slots[i] <- src.Day(day)
			}(i, day)
		}
	}()
	for i, day := range days {
		batch := <-slots[i]
		n := 0
		if batch != nil {
			n = batch.N
		}
		capture.ConsumeBatch(batch, m.Observe)
		if onDay != nil {
			onDay(day, n)
		}
		<-sem
	}
	m.Close(days[len(days)-1].Add(simclock.Day))
}

// Close finalizes the trailing day.
func (m *Monitor) Close(now simclock.Time) { m.rollDay(now) }

// Days returns the completed day summaries.
func (m *Monitor) Days() []MonitorDay { return m.days }

// MeanNameListJaccard is the mean day-over-day name-list similarity.
func (m *Monitor) MeanNameListJaccard() float64 {
	var sum float64
	n := 0
	for _, d := range m.days {
		if d.NameListJaccard > 0 {
			sum += d.NameListJaccard
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
