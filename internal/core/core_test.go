package core

import (
	"fmt"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// mkSample builds a minimal sanitized sample whose name is interned in
// tab (the table shared with the consuming aggregator/collector).
func mkSample(tab *names.Table, client byte, day int, name string, qtype dnswire.Type, size int, isResp bool) *ixp.DNSSample {
	cn := dnswire.CanonicalName(name)
	id := tab.Intern(cn)
	s := &ixp.DNSSample{
		Time:       simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Hour),
		Name:       id,
		QName:      tab.Name(id),
		QType:      qtype,
		MsgSize:    size,
		IsResponse: isResp,
	}
	if isResp {
		s.Dst = [4]byte{11, 0, 0, client}
		s.Src = [4]byte{203, 0, 113, 1}
	} else {
		s.Src = [4]byte{11, 0, 0, client}
		s.Dst = [4]byte{203, 0, 113, 1}
	}
	return s
}

func TestAggregatorClientAttribution(t *testing.T) {
	ag := NewAggregator(nil, []string{"doj.gov."})
	// Query from client and response to client attribute to the same
	// (client, day) pair.
	ag.Observe(mkSample(ag.Table, 1, 0, "doj.gov", dnswire.TypeANY, 40, false))
	ag.Observe(mkSample(ag.Table, 1, 0, "doj.gov", dnswire.TypeANY, 4000, true))
	if ag.NumClients() != 1 {
		t.Fatalf("client pairs = %d, want 1", ag.NumClients())
	}
	id, _ := ag.Table.Lookup("doj.gov.")
	for _, ca := range ag.Clients() {
		if ca.Total != 2 || ca.TrackedCount(id) != 2 {
			t.Errorf("agg = %+v", ca)
		}
		if ca.Bytes != 4040 {
			t.Errorf("bytes = %d", ca.Bytes)
		}
		if ca.ANYPackets != 2 {
			t.Errorf("ANY packets = %d", ca.ANYPackets)
		}
	}
	if ag.NameStatsOf("doj.gov.").MaxSize != 4000 {
		t.Errorf("max size = %d (responses only)", ag.NameStatsOf("doj.gov.").MaxSize)
	}
	if ag.NameStatsOf("doj.gov.").ANYPackets != 2 {
		t.Errorf("ANY count = %d", ag.NameStatsOf("doj.gov.").ANYPackets)
	}
}

func TestAggregatorDaySeparation(t *testing.T) {
	ag := NewAggregator(nil, nil)
	ag.Observe(mkSample(ag.Table, 1, 0, "a.test", dnswire.TypeA, 100, false))
	ag.Observe(mkSample(ag.Table, 1, 1, "a.test", dnswire.TypeA, 100, false))
	if ag.NumClients() != 2 {
		t.Errorf("pairs = %d, want 2 (separate days)", ag.NumClients())
	}
}

func TestSelector1RanksBySize(t *testing.T) {
	ag := NewAggregator(nil, nil)
	ag.Observe(mkSample(ag.Table, 1, 0, "big.test", dnswire.TypeANY, 9000, true))
	ag.Observe(mkSample(ag.Table, 2, 0, "mid.test", dnswire.TypeANY, 5000, true))
	ag.Observe(mkSample(ag.Table, 3, 0, "small.test", dnswire.TypeA, 200, true))
	r := Selector1MaxSize(ag)
	if r.Ranked[0] != "big.test." || r.Ranked[1] != "mid.test." {
		t.Errorf("ranking = %v", r.Ranked)
	}
	top := r.Top(2)
	if len(top) != 2 {
		t.Errorf("Top(2) = %v", top)
	}
	if got := r.Top(100); len(got) != 3 {
		t.Errorf("Top over-length = %v", got)
	}
}

func TestSelector2RanksByANY(t *testing.T) {
	ag := NewAggregator(nil, nil)
	for i := 0; i < 5; i++ {
		ag.Observe(mkSample(ag.Table, 1, 0, "hot.test", dnswire.TypeANY, 100, false))
	}
	ag.Observe(mkSample(ag.Table, 2, 0, "cold.test", dnswire.TypeANY, 100, false))
	ag.Observe(mkSample(ag.Table, 3, 0, "never.test", dnswire.TypeA, 100, false))
	r := Selector2ANYCount(ag)
	if r.Ranked[0] != "hot.test." {
		t.Errorf("ranking = %v", r.Ranked)
	}
	for _, n := range r.Ranked {
		if n == "never.test." {
			t.Error("zero-ANY name should not rank")
		}
	}
}

func TestSelector3GroundTruth(t *testing.T) {
	ag := NewAggregator(nil, []string{"used.test."})
	// Victim 1 under attack on day 0 with "used.test".
	for i := 0; i < 10; i++ {
		ag.Observe(mkSample(ag.Table, 1, 0, "used.test", dnswire.TypeANY, 3000, true))
	}
	// Unrelated victim 2 traffic.
	ag.Observe(mkSample(ag.Table, 2, 0, "other.test", dnswire.TypeA, 100, false))

	gts := []GroundTruthAttack{
		{Victim: [4]byte{11, 0, 0, 1}, Start: simclock.MeasurementStart, End: simclock.MeasurementStart.Add(2 * simclock.Hour)},
		{Victim: [4]byte{11, 0, 0, 99}, Start: simclock.MeasurementStart, End: simclock.MeasurementStart.Add(simclock.Hour)},
	}
	r, visible := Selector3GroundTruth(ag, gts)
	if len(visible) != 1 {
		t.Fatalf("visible = %d, want 1 (victim 99 has no IXP traffic)", len(visible))
	}
	if r.Ranked[0] != "used.test." {
		t.Errorf("ranking = %v", r.Ranked)
	}
}

func TestConsensusPoint(t *testing.T) {
	mk := func(names ...string) SelectorResult { return SelectorResult{Ranked: names} }
	s1 := mk("a", "b", "c", "x")
	s2 := mk("b", "a", "c", "y")
	s3 := mk("c", "b", "a", "z")
	n, curve := ConsensusPoint(4, s1, s2, s3)
	if n != 3 {
		t.Fatalf("consensus at %d, want 3 (curve %v)", n, curve)
	}
	if curve[3] != 1 {
		t.Errorf("curve[3] = %v, want 1", curve[3])
	}
	if curve[4] >= 1 {
		t.Errorf("curve[4] = %v, should drop below 1", curve[4])
	}
}

func TestBuildNameList(t *testing.T) {
	mk := func(names ...string) SelectorResult { return SelectorResult{Ranked: names} }
	s1 := mk("a", "b", "u1")
	s2 := mk("a", "b", "u2")
	nl := BuildNameList(3, s1, s2)
	if len(nl.Names) != 4 {
		t.Fatalf("union = %d, want 4", len(nl.Names))
	}
	if nl.MutualCount() != 2 {
		t.Errorf("mutual = %d, want 2", nl.MutualCount())
	}
	sorted := nl.Sorted()
	if sorted[0] != "a" || sorted[3] != "u2" {
		t.Errorf("sorted = %v", sorted)
	}
}

func TestGovShare(t *testing.T) {
	nl := &NameList{Names: map[string]bool{"a.gov.": true, "b.gov.": true, "c.com.": true, "d.net.": true}}
	if got := nl.GovShare(); got != 0.5 {
		t.Errorf("gov share = %v", got)
	}
}

func TestDetectThresholds(t *testing.T) {
	ag := NewAggregator(nil, []string{"bad.test."})
	cands := map[string]bool{"bad.test.": true}

	// Victim A: 20 packets, all misused -> detected.
	for i := 0; i < 20; i++ {
		ag.Observe(mkSample(ag.Table, 1, 0, "bad.test", dnswire.TypeANY, 4000, true))
	}
	// Victim B: 20 packets, half misused (share 0.5) -> not detected.
	for i := 0; i < 10; i++ {
		ag.Observe(mkSample(ag.Table, 2, 0, "bad.test", dnswire.TypeANY, 4000, true))
		ag.Observe(mkSample(ag.Table, 2, 0, "ok.test", dnswire.TypeA, 100, false))
	}
	// Victim C: 5 packets all misused -> below min packets.
	for i := 0; i < 5; i++ {
		ag.Observe(mkSample(ag.Table, 3, 0, "bad.test", dnswire.TypeANY, 4000, true))
	}
	// Victim D: 19 misused + 1 benign (share 0.95) -> detected.
	for i := 0; i < 19; i++ {
		ag.Observe(mkSample(ag.Table, 4, 0, "bad.test", dnswire.TypeANY, 4000, true))
	}
	ag.Observe(mkSample(ag.Table, 4, 0, "ok.test", dnswire.TypeA, 100, false))

	dets := Detect(ag, cands, DefaultThresholds())
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2: %+v", len(dets), dets)
	}
	victims := map[byte]bool{}
	for _, d := range dets {
		victims[d.Victim[3]] = true
		if d.Share < 0.9 {
			t.Errorf("share = %v", d.Share)
		}
	}
	if !victims[1] || !victims[4] {
		t.Errorf("wrong victims: %v", victims)
	}
}

func TestDetectDeterministicOrder(t *testing.T) {
	ag := NewAggregator(nil, []string{"bad.test."})
	cands := map[string]bool{"bad.test.": true}
	for _, c := range []byte{9, 3, 7} {
		for i := 0; i < 12; i++ {
			ag.Observe(mkSample(ag.Table, c, 0, "bad.test", dnswire.TypeANY, 4000, true))
		}
	}
	d1 := Detect(ag, cands, DefaultThresholds())
	d2 := Detect(ag, cands, DefaultThresholds())
	for i := range d1 {
		if d1[i].Victim != d2[i].Victim {
			t.Fatal("Detect order unstable")
		}
	}
	if d1[0].Victim[3] != 3 {
		t.Errorf("order = %v", d1)
	}
}

func TestCollector(t *testing.T) {
	tab := names.NewTable()
	ag := NewAggregator(tab, []string{"bad.test."})
	cands := map[string]bool{"bad.test.": true}
	var samples []*ixp.DNSSample
	for i := 0; i < 15; i++ {
		s := mkSample(tab, 1, 0, "bad.test", dnswire.TypeANY, 4000, true)
		s.TXID = uint16(i % 3)
		s.VisibleNS = 1
		samples = append(samples, s)
	}
	// Requests with ingress annotation.
	for i := 0; i < 5; i++ {
		s := mkSample(tab, 1, 0, "bad.test", dnswire.TypeANY, 40, false)
		s.PeerAS = 777
		s.IPTTL = 250
		samples = append(samples, s)
	}
	for _, s := range samples {
		ag.Observe(s)
	}
	dets := Detect(ag, cands, DefaultThresholds())
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	col := NewCollector(tab, dets, cands)
	for _, s := range samples {
		col.Observe(s)
	}
	col.Observe(mkSample(tab, 99, 0, "bad.test", dnswire.TypeANY, 4000, true)) // not wanted
	col.SetVictimASN(func([4]byte) uint32 { return 42 })
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Packets != 20 || r.Responses != 15 || r.Requests != 5 {
		t.Errorf("counts: %+v", r)
	}
	if len(r.TXIDs) != 3 {
		t.Errorf("TXIDs = %d, want 3", len(r.TXIDs))
	}
	if len(r.Amplifiers) != 1 {
		t.Errorf("amplifiers = %d", len(r.Amplifiers))
	}
	if r.ReqIngress[777] != 5 {
		t.Errorf("ingress = %v", r.ReqIngress)
	}
	if r.ReqTTLs[250] != 5 {
		t.Errorf("TTLs = %v", r.ReqTTLs)
	}
	if r.VictimASN != 42 {
		t.Errorf("victim ASN = %d", r.VictimASN)
	}
	if r.DominantName() != "bad.test." {
		t.Errorf("dominant = %q", r.DominantName())
	}
	if r.Names["bad.test."] != 20 {
		t.Errorf("name counts = %v", r.Names)
	}
	if len(col.VisibleNS) != 15 {
		t.Errorf("visibleNS = %d", len(col.VisibleNS))
	}
	if r.ANYPackets != 20 {
		t.Errorf("ANY = %d", r.ANYPackets)
	}
}

func TestValidateDetection(t *testing.T) {
	ag := NewAggregator(nil, []string{"bad.test."})
	cands := map[string]bool{"bad.test.": true}
	for i := 0; i < 20; i++ {
		ag.Observe(mkSample(ag.Table, 1, 0, "bad.test", dnswire.TypeANY, 4000, true))
	}
	gt := []GroundTruthAttack{{
		Victim: [4]byte{11, 0, 0, 1},
		Start:  simclock.MeasurementStart,
		End:    simclock.MeasurementStart.Add(2 * simclock.Hour),
	}}
	rate := ValidateDetection(ag, gt, cands, DefaultThresholds())
	if rate != 1 {
		t.Errorf("rate = %v, want 1", rate)
	}
	// With an empty candidate list the attack cannot be detected.
	rate = ValidateDetection(ag, gt, map[string]bool{}, DefaultThresholds())
	if rate != 0 {
		t.Errorf("rate without candidates = %v, want 0", rate)
	}
}

func TestVisibilityCurveMonotone(t *testing.T) {
	ag := NewAggregator(nil, []string{"bad.test."})
	cands := map[string]bool{"bad.test.": true}
	var gts []GroundTruthAttack
	for c := byte(1); c <= 20; c++ {
		n := int(c)
		for i := 0; i < n; i++ {
			ag.Observe(mkSample(ag.Table, c, 0, "bad.test", dnswire.TypeANY, 4000, true))
		}
		gts = append(gts, GroundTruthAttack{
			Victim: [4]byte{11, 0, 0, c},
			Start:  simclock.MeasurementStart,
			End:    simclock.MeasurementStart.Add(2 * simclock.Hour),
		})
	}
	pts := VisibilityCurve(ag, gts, cands, 0.9, []int{1, 5, 10, 20})
	for i := 1; i < len(pts); i++ {
		if pts[i].GroundTruthShare > pts[i-1].GroundTruthShare {
			t.Error("ground-truth visibility must be non-increasing")
		}
		if pts[i].Detections > pts[i-1].Detections {
			t.Error("detections must be non-increasing in the threshold")
		}
	}
	if pts[0].GroundTruthShare != 1 {
		t.Errorf("threshold 1 should see all: %v", pts[0].GroundTruthShare)
	}
	// Threshold 10: 11 of 20 victims have >= 10 packets.
	if got := pts[2].GroundTruthShare; got < 0.5 || got > 0.6 {
		t.Errorf("threshold-10 share = %v, want 0.55", got)
	}
}

func TestMonitorRollsDays(t *testing.T) {
	m := NewMonitor(5, 5*simclock.Minute, DefaultThresholds())
	t0 := simclock.MeasurementStart
	for day := 0; day < 3; day++ {
		for i := 0; i < 50; i++ {
			s := mkSample(m.Table(), 1, day, "bad.test", dnswire.TypeANY, 5000, true)
			s.Time = t0.Add(simclock.Days(day)).Add(simclock.Duration(i) * 10 * simclock.Minute)
			m.Observe(s)
		}
	}
	m.Close(t0.Add(simclock.Days(3)))
	days := m.Days()
	if len(days) != 3 {
		t.Fatalf("days = %d, want 3", len(days))
	}
	for _, d := range days {
		if d.Victims != 1 {
			t.Errorf("day %s victims = %d, want 1", d.Day.Date(), d.Victims)
		}
		if d.Prefixes24 != 1 {
			t.Errorf("prefixes = %d", d.Prefixes24)
		}
	}
	if len(m.Updates) == 0 {
		t.Error("no periodic updates")
	}
	if m.MeanNameListJaccard() <= 0 {
		t.Error("stable traffic should give positive day-over-day Jaccard")
	}
}

func TestThresholdsDefault(t *testing.T) {
	th := DefaultThresholds()
	if th.MinShare != 0.90 || th.MinPackets != 10 {
		t.Errorf("defaults = %+v, want paper values (90%%, 10)", th)
	}
}

func TestDetectionDuration(t *testing.T) {
	d := &Detection{First: 100, Last: 400}
	if d.Duration() != 300 {
		t.Errorf("duration = %v", d.Duration())
	}
}

func ExampleDetect() {
	ag := NewAggregator(nil, []string{"doj.gov."})
	id, _ := ag.Table.Lookup("doj.gov.")
	for i := 0; i < 12; i++ {
		s := &ixp.DNSSample{
			Time: simclock.MeasurementStart, Name: id, QName: "doj.gov.",
			QType: dnswire.TypeANY, MsgSize: 4000, IsResponse: true,
			Dst: [4]byte{11, 0, 0, 1}, Src: [4]byte{203, 0, 113, 1},
		}
		ag.Observe(s)
	}
	dets := Detect(ag, map[string]bool{"doj.gov.": true}, DefaultThresholds())
	fmt.Printf("%d attack(s), share %.2f\n", len(dets), dets[0].Share)
	// Output: 1 attack(s), share 1.00
}
