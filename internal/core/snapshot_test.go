package core

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"dnsamp/internal/binenc"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

var errSnapTest = errors.New("core test: bad snapshot")

// snapSample builds a sanitized sample interned into tab.
func snapSample(tab *names.Table, at simclock.Time, client byte, name string, qt dnswire.Type, size int, resp bool) *ixp.DNSSample {
	id := tab.Intern(dnswire.CanonicalName(name))
	s := &ixp.DNSSample{
		Time:       at,
		Src:        [4]byte{10, 0, 0, client},
		Dst:        [4]byte{203, 0, 113, 9},
		IsResponse: resp,
		Name:       id,
		QName:      tab.Name(id),
		QType:      qt,
		MsgSize:    size,
	}
	if resp {
		s.Src, s.Dst = s.Dst, s.Src
	}
	return s
}

// feedRandom drives n random samples through ag, deterministic from
// seed.
func feedRandom(ag *Aggregator, tab *names.Table, seed uint64, n int) {
	rng := rand.New(rand.NewPCG(seed, 0))
	namesPool := []string{"a.test", "b.test", "amp.example", "big.example", "x.y.z.example"}
	for i := 0; i < n; i++ {
		at := simclock.MeasurementStart.Add(simclock.Duration(rng.IntN(4 * int(simclock.Day))))
		qt := dnswire.TypeA
		if rng.IntN(3) == 0 {
			qt = dnswire.TypeANY
		}
		ag.Observe(snapSample(tab, at, byte(1+rng.IntN(20)), namesPool[rng.IntN(len(namesPool))],
			qt, 60+rng.IntN(4000), rng.IntN(2) == 0))
	}
}

// roundTrip snapshots ag and restores it into a fresh aggregator over
// the same table.
func roundTrip(t *testing.T, ag *Aggregator) *Aggregator {
	t.Helper()
	var buf bytes.Buffer
	e := binenc.NewEncoder(&buf)
	ag.WriteSnapshot(e)
	if err := e.Flush(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got := NewAggregator(ag.Table, nil)
	d := binenc.NewDecoder(buf.Bytes(), errSnapTest)
	if err := got.ReadSnapshot(d); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing snapshot bytes", d.Remaining())
	}
	return got
}

// TestAggregatorSnapshotRoundTrip: a restored aggregator is
// indistinguishable from the original — same observable state, and
// identical behaviour under further traffic and detection.
func TestAggregatorSnapshotRoundTrip(t *testing.T) {
	tab := names.NewTable()
	ag := NewAggregator(tab, nil)
	ag.SetTrackAll(true)
	feedRandom(ag, tab, 1, 5000)

	got := roundTrip(t, ag)

	if got.Samples != ag.Samples || got.Requests != ag.Requests || got.TotalBytes != ag.TotalBytes ||
		got.ANYPackets != ag.ANYPackets || got.ANYBytes != ag.ANYBytes {
		t.Fatalf("global counters differ: got %+v", got)
	}
	if got.NumNames() != ag.NumNames() || got.NumClients() != ag.NumClients() {
		t.Fatalf("counts differ: names %d/%d clients %d/%d",
			got.NumNames(), ag.NumNames(), got.NumClients(), ag.NumClients())
	}
	if !reflect.DeepEqual(got.names, ag.names) {
		t.Fatal("per-name stats differ")
	}
	if !reflect.DeepEqual(got.arenaKeys, ag.arenaKeys) || !reflect.DeepEqual(got.arena, ag.arena) {
		t.Fatal("client-day arena differs")
	}

	// Both continue identically: more traffic, then a detect sweep.
	feedRandom(ag, tab, 2, 2000)
	feedRandom(got, tab, 2, 2000)
	nl := BuildNameList(5, Selector1MaxSize(ag), Selector2ANYCount(ag))
	want := Detect(ag, nl.Names, DefaultThresholds())
	have := Detect(got, nl.Names, DefaultThresholds())
	if !reflect.DeepEqual(have, want) {
		t.Fatalf("post-restore detections differ: got %d, want %d", len(have), len(want))
	}
}

// TestAggregatorSnapshotAfterEvict: snapshotting a slid window (slots
// recycled in place) round-trips the compacted arena.
func TestAggregatorSnapshotAfterEvict(t *testing.T) {
	tab := names.NewTable()
	ag := NewAggregator(tab, nil)
	ag.SetTrackAll(true)
	feedRandom(ag, tab, 3, 3000)
	if ag.EvictDaysBefore(simclock.MeasurementStart.Day()+2) == 0 {
		t.Fatal("expected evictions")
	}

	got := roundTrip(t, ag)
	if !reflect.DeepEqual(got.arenaKeys, ag.arenaKeys) || !reflect.DeepEqual(got.arena, ag.arena) {
		t.Fatal("post-evict arena differs")
	}
	// Continued sliding behaves identically.
	feedRandom(ag, tab, 4, 1000)
	feedRandom(got, tab, 4, 1000)
	if ag.EvictDaysBefore(simclock.MeasurementStart.Day()+3) != got.EvictDaysBefore(simclock.MeasurementStart.Day()+3) {
		t.Fatal("post-restore eviction differs")
	}
}

// TestAggregatorSnapshotCorrupt: truncation and byte flips fail with an
// error, never a panic, and never a giant allocation.
func TestAggregatorSnapshotCorrupt(t *testing.T) {
	tab := names.NewTable()
	ag := NewAggregator(tab, nil)
	ag.SetTrackAll(true)
	feedRandom(ag, tab, 5, 500)

	var buf bytes.Buffer
	e := binenc.NewEncoder(&buf)
	ag.WriteSnapshot(e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		got := NewAggregator(tab, nil)
		d := binenc.NewDecoder(raw[:cut], errSnapTest)
		if err := got.ReadSnapshot(d); err == nil {
			t.Errorf("truncation at %d: no error", cut)
		}
	}

	rng := rand.New(rand.NewPCG(6, 0))
	for i := 0; i < 50; i++ {
		mut := append([]byte(nil), raw...)
		mut[rng.IntN(len(mut))] ^= byte(1 + rng.IntN(255))
		got := NewAggregator(tab, nil)
		d := binenc.NewDecoder(mut, errSnapTest)
		// A flip may land in a value field and still decode; the
		// contract is no panic and no unbounded allocation.
		_ = got.ReadSnapshot(d)
	}
}
