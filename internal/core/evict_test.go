package core

import (
	"fmt"
	"reflect"
	"testing"

	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// evictSample builds a deterministic sample for (day, client, name).
func evictSample(day, client int, name string, tab interface {
	Intern(string) uint32
	Name(uint32) string
}) *ixp.DNSSample {
	id := tab.Intern(name)
	return &ixp.DNSSample{
		Time:    simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Duration(client)),
		Src:     [4]byte{10, 0, byte(client >> 8), byte(client)},
		Dst:     [4]byte{198, 51, 100, 1},
		Name:    id,
		QName:   tab.Name(id),
		MsgSize: 100 + client%7,
	}
}

// TestEvictDaysBeforeKeepsUnexpired pins the no-loss contract: after an
// eviction, every unexpired (client, day) profile is still present and
// byte-identical to its pre-eviction state, and every expired one is
// gone.
func TestEvictDaysBeforeKeepsUnexpired(t *testing.T) {
	ag := NewAggregator(nil, nil)
	ag.SetTrackAll(true)
	const days, clients = 6, 40
	for d := 0; d < days; d++ {
		for c := 0; c < clients; c++ {
			ag.Observe(evictSample(d, c, fmt.Sprintf("zone%d.example.", c%5), ag.Table))
		}
	}
	before := make(map[ClientDay]ClientAgg, ag.NumClients())
	ag.EachClient(func(key ClientDay, ca *ClientAgg) {
		cp := *ca
		cp.Tracked = append([]NameCount(nil), ca.Tracked...)
		before[key] = cp
	})

	cutDay := simclock.MeasurementStart.Add(simclock.Days(3)).Day()
	evicted := ag.EvictDaysBefore(cutDay)
	if want := 3 * clients; evicted != want {
		t.Fatalf("evicted %d profiles, want %d", evicted, want)
	}
	if got, want := ag.NumClients(), (days-3)*clients; got != want {
		t.Fatalf("NumClients after eviction = %d, want %d", got, want)
	}
	seen := 0
	ag.EachClient(func(key ClientDay, ca *ClientAgg) {
		seen++
		if key.Day < cutDay {
			t.Fatalf("expired key %v survived eviction", key)
		}
		want := before[key]
		if !reflect.DeepEqual(*ca, want) {
			t.Fatalf("profile of %v changed across eviction:\n got %+v\nwant %+v", key, *ca, want)
		}
	})
	if seen != ag.NumClients() {
		t.Fatalf("EachClient visited %d profiles, NumClients says %d", seen, ag.NumClients())
	}
	// The index must agree with the arena: every survivor resolvable,
	// every evicted key gone.
	for key := range before {
		ca := ag.ClientOf(key)
		if key.Day < cutDay {
			if ca != nil {
				t.Fatalf("ClientOf(%v) resolved an evicted profile", key)
			}
		} else if ca == nil {
			t.Fatalf("ClientOf(%v) lost a surviving profile", key)
		}
	}
}

// TestEvictDaysBeforeNoop covers the fast path: a cutoff at or below
// the oldest day must not touch the aggregator.
func TestEvictDaysBeforeNoop(t *testing.T) {
	ag := NewAggregator(nil, nil)
	ag.SetTrackAll(true)
	for c := 0; c < 10; c++ {
		ag.Observe(evictSample(2, c, "zone.example.", ag.Table))
	}
	if n := ag.EvictDaysBefore(simclock.MeasurementStart.Day()); n != 0 {
		t.Fatalf("eviction below the oldest day removed %d profiles", n)
	}
	if got := ag.NumClients(); got != 10 {
		t.Fatalf("NumClients after no-op eviction = %d, want 10", got)
	}
}

// TestEvictRecyclesArenaSlots is the arena-size assertion: a sliding
// window that advances day by day over a steady per-day client
// population must reach a fixed arena capacity — evicted slots are
// recycled by later growth, not reallocated — and a fixed index size.
func TestEvictRecyclesArenaSlots(t *testing.T) {
	ag := NewAggregator(nil, nil)
	ag.SetTrackAll(true)
	const window, clients, totalDays = 3, 64, 40
	var steadyCap, steadyIdx int
	for d := 0; d < totalDays; d++ {
		for c := 0; c < clients; c++ {
			ag.Observe(evictSample(d, c, "zone.example.", ag.Table))
		}
		cut := simclock.MeasurementStart.Add(simclock.Days(d)).Day() - window + 1
		ag.EvictDaysBefore(cut)
		if got, want := ag.NumClients(), min(d+1, window)*clients; got != want {
			t.Fatalf("day %d: NumClients = %d, want %d", d, got, want)
		}
		if d == window+2 {
			// The population is steady from here: record the bound.
			steadyCap, steadyIdx = ag.ArenaCap(), len(ag.idx.ctrl)
		}
		if d > window+2 {
			if ag.ArenaCap() > steadyCap {
				t.Fatalf("day %d: arena capacity grew %d -> %d despite steady population (slots not recycled)",
					d, steadyCap, ag.ArenaCap())
			}
			if len(ag.idx.ctrl) != steadyIdx {
				t.Fatalf("day %d: index size changed %d -> %d despite steady population", d, steadyIdx, len(ag.idx.ctrl))
			}
		}
	}
}

// TestEvictThenDetect proves eviction composes with the columnar
// detection sweep: detections over the surviving window equal those of
// a fresh aggregator that only ever saw the surviving days.
func TestEvictThenDetect(t *testing.T) {
	names := map[string]bool{"zone0.example.": true, "zone1.example.": true}
	th := Thresholds{MinShare: 0.5, MinPackets: 3}
	feed := func(ag *Aggregator, fromDay, toDay int) {
		for d := fromDay; d < toDay; d++ {
			for c := 0; c < 20; c++ {
				for p := 0; p < 3+c%3; p++ {
					ag.Observe(evictSample(d, c, fmt.Sprintf("zone%d.example.", c%4), ag.Table))
				}
			}
		}
	}
	evicting := NewAggregator(nil, nil)
	evicting.SetTrackAll(true)
	feed(evicting, 0, 8)
	cut := simclock.MeasurementStart.Add(simclock.Days(5)).Day()
	evicting.EvictDaysBefore(cut)

	fresh := NewAggregator(nil, nil)
	fresh.SetTrackAll(true)
	feed(fresh, 5, 8)

	got := Detect(evicting, names, th)
	want := Detect(fresh, names, th)
	if len(want) == 0 {
		t.Fatal("reference detection found nothing; the fixture is too weak")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("detections diverge after eviction:\n got %d detections\nwant %d", len(got), len(want))
	}
}
