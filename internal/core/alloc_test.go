//go:build !race

// The AllocsPerRun guards are compiled out under the race detector:
// race instrumentation adds its own allocations, which is noise, not a
// hot-path regression. CI runs them in the non-race build job.

package core

import (
	"math/rand"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// TestObserveZeroAllocSteadyState guards the aggregate hot path: once a
// (client, day) profile and the name slots exist, Observe must not
// allocate — the property that keeps the parallel pass GC-quiet.
func TestObserveZeroAllocSteadyState(t *testing.T) {
	ag := NewAggregator(nil, []string{"doj.gov.", "."})
	resp := mkSample(ag.Table, 1, 0, "doj.gov", dnswire.TypeANY, 4000, true)
	req := mkSample(ag.Table, 1, 0, "doj.gov", dnswire.TypeANY, 40, false)
	other := mkSample(ag.Table, 2, 0, "bulk.test", dnswire.TypeA, 120, false)
	// Warm every slot the measured loop touches.
	ag.Observe(resp)
	ag.Observe(req)
	ag.Observe(other)

	allocs := testing.AllocsPerRun(200, func() {
		ag.Observe(resp)
		ag.Observe(req)
		ag.Observe(other)
	})
	if allocs != 0 {
		t.Errorf("Observe steady state allocates %.1f times per 3 samples, want 0", allocs)
	}
}

// TestObserveBatchZeroAllocSteadyState guards the batch-native
// aggregation path: once the name slots, client-day arena entries, and
// tracked lists exist, replaying a whole batch must not allocate — the
// column sums, the per-name walk, and the client-index probes all run
// on preexisting storage.
func TestObserveBatchZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ag := NewAggregator(nil, []string{"evil.example.", "."})
	b := randomBatch(rng, ag.Table, testNamePool(ag.Table), 600)
	// Warm pass: creates every slot the measured loop touches.
	ag.ObserveBatch(b)

	allocs := testing.AllocsPerRun(20, func() { ag.ObserveBatch(b) })
	if allocs != 0 {
		t.Errorf("ObserveBatch steady state allocates %.2f per %d-row batch, want 0", allocs, b.N)
	}
}

// TestDetectScanZeroAllocSteadyState guards the columnar threshold
// scan: with the scratch columns warmed, a Detect sweep that emits no
// detections must not allocate — the candidate marks, the cand/total
// column fill, and the integer threshold pass all reuse the
// aggregator's scratch (emitted detections are the only allocation of
// a hit-bearing sweep).
func TestDetectScanZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ag := NewAggregator(nil, []string{"evil.example.", "."})
	for i := 0; i < 3; i++ {
		ag.ObserveBatch(randomBatch(rng, ag.Table, testNamePool(ag.Table), 500))
	}
	ag.CanonicalizeClients()
	cands := map[string]bool{"evil.example.": true, ".": true}
	none := Thresholds{MinShare: 0.5, MinPackets: 1 << 30} // scan runs, nothing passes
	if dets := Detect(ag, cands, none); dets != nil {
		t.Fatalf("expected no detections, got %d", len(dets))
	}
	allocs := testing.AllocsPerRun(20, func() { Detect(ag, cands, none) })
	if allocs != 0 {
		t.Errorf("Detect scan steady state allocates %.2f per sweep over %d client-days, want 0",
			allocs, ag.NumClients())
	}
}

// TestCollectorObserveAllocBound guards pass 2's per-sample path: the
// reject path (the overwhelming majority of samples) must be
// allocation-free; accepted samples only append to amortized slices.
func TestCollectorObserveAllocBound(t *testing.T) {
	ag := NewAggregator(nil, []string{"bad.test."})
	var warm []*ixp.DNSSample
	for i := 0; i < 15; i++ {
		warm = append(warm, mkSample(ag.Table, 1, 0, "bad.test", dnswire.TypeANY, 4000, true))
	}
	for _, s := range warm {
		ag.Observe(s)
	}
	dets := Detect(ag, map[string]bool{"bad.test.": true}, DefaultThresholds())
	col := NewCollector(ag.Table, dets, map[string]bool{"bad.test.": true})
	reject := mkSample(ag.Table, 77, 0, "bulk.test", dnswire.TypeA, 100, false)
	reject.Time = simclock.MeasurementStart
	allocs := testing.AllocsPerRun(200, func() { col.Observe(reject) })
	if allocs != 0 {
		t.Errorf("Collector reject path allocates %.1f per sample, want 0", allocs)
	}
}
