package core

import (
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// mergeSample builds a minimal sanitized sample for merge tests.
func mergeSample(client byte, name string, qtype dnswire.Type, size int, t simclock.Time, response bool) *ixp.DNSSample {
	s := &ixp.DNSSample{
		Time:       t,
		QName:      name,
		QType:      qtype,
		MsgSize:    size,
		IsResponse: response,
	}
	if response {
		s.Dst = [4]byte{10, 0, 0, client}
	} else {
		s.Src = [4]byte{10, 0, 0, client}
	}
	return s
}

var mergeTrack = []string{"evil.example.", "."}

func day0(offset simclock.Duration) simclock.Time {
	return simclock.MeasurementStart.Add(offset)
}

func TestMergeEmpty(t *testing.T) {
	a := NewAggregator(mergeTrack)
	a.Observe(mergeSample(1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))
	want := NewAggregator(mergeTrack)
	want.Observe(mergeSample(1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))

	// Merging an empty shard (either direction) must not change state.
	a.Merge(NewAggregator(mergeTrack))
	if !reflect.DeepEqual(a, want) {
		t.Error("merging an empty aggregator changed state")
	}
	empty := NewAggregator(mergeTrack)
	empty.Merge(a)
	if !reflect.DeepEqual(empty, want) {
		t.Error("merging into an empty aggregator lost state")
	}
	a.Merge(nil)
	if !reflect.DeepEqual(a, want) {
		t.Error("merging nil changed state")
	}
}

func TestMergeDisjoint(t *testing.T) {
	// Shards covering different clients and names must union cleanly.
	a := NewAggregator(mergeTrack)
	a.Observe(mergeSample(1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))
	b := NewAggregator(mergeTrack)
	b.Observe(mergeSample(2, "benign.example.", dnswire.TypeA, 80, day0(20), false))

	a.Merge(b)
	if a.Samples != 2 || a.Requests != 1 || a.TotalBytes != 980 {
		t.Fatalf("global counters: samples=%d requests=%d bytes=%d", a.Samples, a.Requests, a.TotalBytes)
	}
	if len(a.Names) != 2 || len(a.Clients) != 2 {
		t.Fatalf("names=%d clients=%d, want 2 and 2", len(a.Names), len(a.Clients))
	}
	if ns := a.Names["evil.example."]; ns.MaxSize != 900 || ns.ANYPackets != 1 {
		t.Errorf("evil stats: %+v", ns)
	}
	if ns := a.Names["benign.example."]; ns.MaxSize != 0 || ns.Packets != 1 {
		t.Errorf("benign stats: %+v", ns)
	}
}

func TestMergeOverlapping(t *testing.T) {
	// Two shards observing the same client and name: sums, maxima, and
	// time bounds must match one aggregator observing everything.
	samples := []*ixp.DNSSample{
		mergeSample(1, "evil.example.", dnswire.TypeANY, 900, day0(100), true),
		mergeSample(1, "evil.example.", dnswire.TypeANY, 1400, day0(50), true),
		mergeSample(1, ".", dnswire.TypeNS, 120, day0(300), false),
		mergeSample(1, "evil.example.", dnswire.TypeANY, 700, day0(200), true),
	}
	a := NewAggregator(mergeTrack)
	b := NewAggregator(mergeTrack)
	want := NewAggregator(mergeTrack)
	for i, s := range samples {
		if i%2 == 0 {
			a.Observe(s)
		} else {
			b.Observe(s)
		}
		want.Observe(s)
	}
	a.Merge(b)
	if !reflect.DeepEqual(a, want) {
		t.Error("merged shards differ from a single aggregator over the same samples")
	}
	ca := a.Clients[ClientDay{Client: [4]byte{10, 0, 0, 1}, Day: day0(0).Day()}]
	if ca == nil || ca.Total != 4 || ca.First != day0(50) || ca.Last != day0(300) {
		t.Fatalf("client profile after merge: %+v", ca)
	}
	if got := ca.Tracked["evil.example."]; got != 3 {
		t.Errorf("tracked count = %d, want 3", got)
	}
}

func TestConsensusPointParallelMatchesSerial(t *testing.T) {
	sel := func(names ...string) SelectorResult { return SelectorResult{Ranked: names} }
	s1 := sel("a", "b", "c", "d", "e", "f")
	s2 := sel("b", "a", "c", "e", "d", "g")
	s3 := sel("a", "c", "b", "d", "f", "e")
	wantN, wantCurve := ConsensusPoint(6, s1, s2, s3)
	for _, conc := range []int{2, 4, 16} {
		gotN, gotCurve := ConsensusPointParallel(6, conc, s1, s2, s3)
		if gotN != wantN || !reflect.DeepEqual(gotCurve, wantCurve) {
			t.Errorf("concurrency %d: N=%d curve=%v, want N=%d curve=%v", conc, gotN, gotCurve, wantN, wantCurve)
		}
	}
}
