package core

import (
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// mergeSample builds a minimal sanitized sample for merge tests,
// interned in tab.
func mergeSample(tab *names.Table, client byte, name string, qtype dnswire.Type, size int, t simclock.Time, response bool) *ixp.DNSSample {
	id := tab.Intern(name)
	s := &ixp.DNSSample{
		Time:       t,
		Name:       id,
		QName:      tab.Name(id),
		QType:      qtype,
		MsgSize:    size,
		IsResponse: response,
	}
	if response {
		s.Dst = [4]byte{10, 0, 0, client}
	} else {
		s.Src = [4]byte{10, 0, 0, client}
	}
	return s
}

var mergeTrack = []string{"evil.example.", "."}

func day0(offset simclock.Duration) simclock.Time {
	return simclock.MeasurementStart.Add(offset)
}

func TestMergeEmpty(t *testing.T) {
	a := NewAggregator(nil, mergeTrack)
	a.Observe(mergeSample(a.Table, 1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))
	want := NewAggregator(nil, mergeTrack)
	want.Observe(mergeSample(want.Table, 1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))

	// Merging an empty shard (either direction) must not change state.
	a.Merge(NewAggregator(nil, mergeTrack))
	a.Canonicalize()
	want.Canonicalize()
	if !reflect.DeepEqual(a, want) {
		t.Error("merging an empty aggregator changed state")
	}
	empty := NewAggregator(nil, mergeTrack)
	full := NewAggregator(nil, mergeTrack)
	full.Observe(mergeSample(full.Table, 1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))
	empty.Merge(full)
	empty.Canonicalize()
	if !reflect.DeepEqual(empty, want) {
		t.Error("merging into an empty aggregator lost state")
	}
	a.Merge(nil)
	if !reflect.DeepEqual(a, want) {
		t.Error("merging nil changed state")
	}
}

func TestMergeDisjoint(t *testing.T) {
	// Shards covering different clients and names must union cleanly.
	a := NewAggregator(nil, mergeTrack)
	a.Observe(mergeSample(a.Table, 1, "evil.example.", dnswire.TypeANY, 900, day0(10), true))
	b := NewAggregator(nil, mergeTrack)
	b.Observe(mergeSample(b.Table, 2, "benign.example.", dnswire.TypeA, 80, day0(20), false))

	a.Merge(b)
	if a.Samples != 2 || a.Requests != 1 || a.TotalBytes != 980 {
		t.Fatalf("global counters: samples=%d requests=%d bytes=%d", a.Samples, a.Requests, a.TotalBytes)
	}
	if a.NumNames() != 2 || a.NumClients() != 2 {
		t.Fatalf("names=%d clients=%d, want 2 and 2", a.NumNames(), a.NumClients())
	}
	if ns := a.NameStatsOf("evil.example."); ns.MaxSize != 900 || ns.ANYPackets != 1 {
		t.Errorf("evil stats: %+v", ns)
	}
	if ns := a.NameStatsOf("benign.example."); ns.MaxSize != 0 || ns.Packets != 1 {
		t.Errorf("benign stats: %+v", ns)
	}
}

func TestMergeOverlapping(t *testing.T) {
	// Two shards observing the same client and name: sums, maxima, and
	// time bounds must match one aggregator observing everything.
	mk := func(tab *names.Table) []*ixp.DNSSample {
		return []*ixp.DNSSample{
			mergeSample(tab, 1, "evil.example.", dnswire.TypeANY, 900, day0(100), true),
			mergeSample(tab, 1, "evil.example.", dnswire.TypeANY, 1400, day0(50), true),
			mergeSample(tab, 1, ".", dnswire.TypeNS, 120, day0(300), false),
			mergeSample(tab, 1, "evil.example.", dnswire.TypeANY, 700, day0(200), true),
		}
	}
	a := NewAggregator(nil, mergeTrack)
	b := NewAggregator(nil, mergeTrack)
	want := NewAggregator(nil, mergeTrack)
	sa, sb, sw := mk(a.Table), mk(b.Table), mk(want.Table)
	for i := range sw {
		if i%2 == 0 {
			a.Observe(sa[i])
		} else {
			b.Observe(sb[i])
		}
		want.Observe(sw[i])
	}
	a.Merge(b)
	a.Canonicalize()
	want.Canonicalize()
	if !reflect.DeepEqual(a, want) {
		t.Error("merged shards differ from a single aggregator over the same samples")
	}
	ca := a.ClientOf(ClientDay{Client: [4]byte{10, 0, 0, 1}, Day: day0(0).Day()})
	if ca == nil || ca.Total != 4 || ca.First != day0(50) || ca.Last != day0(300) {
		t.Fatalf("client profile after merge: %+v", ca)
	}
	id, _ := a.Table.Lookup("evil.example.")
	if got := ca.TrackedCount(id); got != 3 {
		t.Errorf("tracked count = %d, want 3", got)
	}
}

// TestMergeCanonicalizeShardIndependence shards a sample stream with
// names the shards discover in different orders: after Merge +
// Canonicalize the aggregators must be byte-identical regardless of the
// sharding (the interning analogue of the parallel pipeline's
// serial/parallel equivalence).
func TestMergeCanonicalizeShardIndependence(t *testing.T) {
	type obs struct {
		client byte
		name   string
	}
	stream := []obs{
		{1, "zz.example."}, {2, "aa.example."}, {1, "mm.example."},
		{3, "aa.example."}, {2, "zz.example."}, {1, "evil.example."},
		{4, "qq.example."}, {3, "mm.example."},
	}
	build := func(shards int) *Aggregator {
		aggs := make([]*Aggregator, shards)
		for i := range aggs {
			aggs[i] = NewAggregator(nil, mergeTrack)
		}
		for i, o := range stream {
			ag := aggs[i%shards]
			ag.Observe(mergeSample(ag.Table, o.client, o.name, dnswire.TypeA, 100, day0(simclock.Duration(i)), false))
		}
		for _, other := range aggs[1:] {
			aggs[0].Merge(other)
		}
		aggs[0].Canonicalize()
		return aggs[0]
	}
	want := build(1)
	for _, shards := range []int{2, 3} {
		if got := build(shards); !reflect.DeepEqual(got, want) {
			t.Errorf("%d shards: canonicalized aggregator differs", shards)
		}
	}
}

func TestConsensusPointParallelMatchesSerial(t *testing.T) {
	sel := func(names ...string) SelectorResult { return SelectorResult{Ranked: names} }
	s1 := sel("a", "b", "c", "d", "e", "f")
	s2 := sel("b", "a", "c", "e", "d", "g")
	s3 := sel("a", "c", "b", "d", "f", "e")
	wantN, wantCurve := ConsensusPoint(6, s1, s2, s3)
	for _, conc := range []int{2, 4, 16} {
		gotN, gotCurve := ConsensusPointParallel(6, conc, s1, s2, s3)
		if gotN != wantN || !reflect.DeepEqual(gotCurve, wantCurve) {
			t.Errorf("concurrency %d: N=%d curve=%v, want N=%d curve=%v", conc, gotN, gotCurve, wantN, wantCurve)
		}
	}
}
