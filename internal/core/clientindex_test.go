package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/ixp"
	"dnsamp/internal/names"
	"dnsamp/internal/simclock"
)

// key4 builds a ClientDay from a compact test spec.
func key4(a, b, c, d byte, day int) ClientDay {
	return ClientDay{Client: [4]byte{a, b, c, d}, Day: day}
}

// TestClientIndexGrowRehash drives the index through several doublings
// and checks that every inserted pair stays findable and distinct pairs
// get distinct arena slots.
func TestClientIndexGrowRehash(t *testing.T) {
	ag := NewAggregator(nil, nil)
	const n = 5000 // well past several grow thresholds from the initial 16
	seen := map[ClientDay]*ClientAgg{}
	for i := 0; i < n; i++ {
		key := key4(byte(i>>8), byte(i), 7, 1, i%97)
		ca, isNew := ag.clientFor(key)
		if !isNew {
			t.Fatalf("key %v reported as existing on first insert", key)
		}
		ca.Total = i + 1
		seen[key] = ca
	}
	if ag.NumClients() != n {
		t.Fatalf("NumClients = %d, want %d", ag.NumClients(), n)
	}
	for i := 0; i < n; i++ {
		key := key4(byte(i>>8), byte(i), 7, 1, i%97)
		ca := ag.ClientOf(key)
		if ca == nil || ca.Total != i+1 {
			t.Fatalf("key %v lost after rehash: %+v", key, ca)
		}
	}
	if ag.ClientOf(key4(255, 255, 255, 255, 1)) != nil {
		t.Error("lookup of absent key returned a profile")
	}
}

// TestClientIndexDeterminism: identical insertion sequences must yield
// byte-identical aggregators (arena, keys, and probe-table layout), and
// different insertion orders must converge after CanonicalizeClients.
func TestClientIndexDeterminism(t *testing.T) {
	build := func(perm []int) *Aggregator {
		ag := NewAggregator(nil, nil)
		for _, i := range perm {
			ca, isNew := ag.clientFor(key4(byte(i>>8), byte(i), 3, 9, i%31))
			if isNew {
				ca.First = simclock.Time(i)
				ca.Last = simclock.Time(i)
			}
			ca.Total++
		}
		return ag
	}
	fwd := make([]int, 800)
	for i := range fwd {
		fwd[i] = i
	}
	if a, b := build(fwd), build(fwd); !reflect.DeepEqual(a, b) {
		t.Error("identical insertion sequences produced different aggregators")
	}
	rev := make([]int, len(fwd))
	for i := range rev {
		rev[i] = len(fwd) - 1 - i
	}
	a, b := build(fwd), build(rev)
	a.CanonicalizeClients()
	b.CanonicalizeClients()
	if !reflect.DeepEqual(a, b) {
		t.Error("canonicalized aggregators differ across insertion orders")
	}
	// The canonical arena must be sorted by (day, client).
	prev := ClientDay{Day: -1 << 30}
	a.EachClient(func(key ClientDay, _ *ClientAgg) {
		if prev.less(key) >= 0 {
			t.Fatalf("canonical arena out of order: %v after %v", key, prev)
		}
		prev = key
	})
}

// randomBatch synthesizes a randomized sample batch over tab: a small
// client population (to force shared (client, day) pairs), a name pool
// with tracked and untracked members, response/ANY mixes, and times
// spread across several days around the main-window start.
func randomBatch(rng *rand.Rand, tab *names.Table, pool []uint32, n int) *ixp.SampleBatch {
	b := &ixp.SampleBatch{Table: tab}
	b.Grow(n)
	for i := 0; i < n; i++ {
		day := rng.Intn(4)
		tm := simclock.MeasurementStart.Add(simclock.Days(day)).Add(simclock.Duration(rng.Int63n(int64(simclock.Day))))
		resp := rng.Intn(2) == 0
		qt := dnswire.TypeA
		if rng.Intn(3) == 0 {
			qt = dnswire.TypeANY
		}
		client := [4]byte{10, 0, 0, byte(1 + rng.Intn(12))}
		server := [4]byte{203, 0, 113, byte(1 + rng.Intn(4))}
		src, dst := client, server
		if resp {
			src, dst = server, client
		}
		ingress := uint32(0)
		if !resp && rng.Intn(3) == 0 {
			ingress = uint32(100 + rng.Intn(5))
		}
		b.Append(ixp.BatchRecord{
			Time:      tm,
			Src:       src,
			Dst:       dst,
			SrcPort:   uint16(1024 + rng.Intn(60000)),
			DstPort:   53,
			IPTTL:     uint8(32 + rng.Intn(200)),
			IPID:      uint16(rng.Intn(1 << 16)),
			Resp:      resp,
			Name:      pool[rng.Intn(len(pool))],
			QType:     qt,
			TXID:      uint16(rng.Intn(1 << 16)),
			MsgSize:   int32(40 + rng.Intn(4000)),
			ANCount:   uint16(rng.Intn(3)),
			VisibleNS: uint16(rng.Intn(4)),
			Ingress:   ingress,
		})
	}
	return b
}

// sampleFromRow materializes one batch row as the DNSSample a capture
// point (without topology) would hand to Observe, ingress override
// included.
func sampleFromRow(tab *names.Table, b *ixp.SampleBatch, i int) *ixp.DNSSample {
	return &ixp.DNSSample{
		PeerAS:     b.Ingress[i],
		Time:       b.Time[i],
		Src:        b.Src[i],
		Dst:        b.Dst[i],
		SrcPort:    b.SrcPort[i],
		DstPort:    b.DstPort[i],
		IPTTL:      b.IPTTL[i],
		IPID:       b.IPID[i],
		IsResponse: b.Resp[i],
		Name:       b.Name[i],
		QName:      tab.Name(b.Name[i]),
		QType:      b.QType[i],
		TXID:       b.TXID[i],
		MsgSize:    int(b.MsgSize[i]),
		ANCount:    b.ANCount[i],
		VisibleNS:  int(b.VisibleNS[i]),
	}
}

// testNamePool interns a mixed tracked/untracked name pool.
func testNamePool(tab *names.Table) []uint32 {
	pool := make([]uint32, 0, 8)
	for _, n := range []string{
		"evil.example.", ".", "bulk-a.test.", "bulk-b.test.",
		"bulk-c.test.", "other.example.", "doj.gov.", "cdn.test.",
	} {
		pool = append(pool, tab.Intern(n))
	}
	return pool
}

// TestObserveBatchMatchesObserve is the randomized equivalence guard:
// for generated batches, ObserveBatch must leave the aggregator in
// exactly the state of observing every row one sample at a time — the
// invariant that lets the pipeline swap per-sample callbacks for the
// columnar path. Exercised in explicit-track and track-all modes.
func TestObserveBatchMatchesObserve(t *testing.T) {
	for _, trackAll := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		batchAg := NewAggregator(nil, []string{"evil.example.", "."})
		rowAg := NewAggregator(batchAg.Table, []string{"evil.example.", "."})
		batchAg.SetTrackAll(trackAll)
		rowAg.SetTrackAll(trackAll)
		pool := testNamePool(batchAg.Table)
		for round := 0; round < 5; round++ {
			b := randomBatch(rng, batchAg.Table, pool, 400+round*150)
			batchAg.ObserveBatch(b)
			for i := 0; i < b.N; i++ {
				rowAg.Observe(sampleFromRow(rowAg.Table, b, i))
			}
			if !reflect.DeepEqual(batchAg, rowAg) {
				t.Fatalf("trackAll=%v round %d: ObserveBatch state diverged from per-sample Observe", trackAll, round)
			}
		}
	}
}

// TestObserveBatchWindowMatchesSplit checks the window-split path: the
// main/extended pair fed through ObserveBatchWindow must match a
// per-sample split on Window.Contains, for batches entirely inside,
// entirely outside, and straddling the boundary.
func TestObserveBatchWindowMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := names.NewTable()
	pool := testNamePool(tab)
	// A window covering days 0-1 of the generated 0-3 day spread, so
	// random batches straddle it; plus degenerate all-in/all-out cases.
	w := simclock.Window{Start: simclock.MeasurementStart, End: simclock.MeasurementStart.Add(simclock.Days(2))}

	mkPair := func() (*Aggregator, *Aggregator) {
		in := NewAggregator(tab, []string{"evil.example."})
		out := NewAggregator(tab, []string{"evil.example."})
		return in, out
	}
	bIn, bOut := mkPair()
	rIn, rOut := mkPair()
	sIn, sOut := mkPair()
	for round := 0; round < 4; round++ {
		b := randomBatch(rng, tab, pool, 500)
		bIn.ObserveBatchWindow(b, w, true)
		bOut.ObserveBatchWindow(b, w, false)
		ObserveBatchSplit(sIn, sOut, b, w)
		for i := 0; i < b.N; i++ {
			s := sampleFromRow(tab, b, i)
			if w.Contains(s.Time) {
				rIn.Observe(s)
			} else {
				rOut.Observe(s)
			}
		}
	}
	if !reflect.DeepEqual(bIn, rIn) {
		t.Error("inside-window batch state diverged from per-sample split")
	}
	if !reflect.DeepEqual(bOut, rOut) {
		t.Error("outside-window batch state diverged from per-sample split")
	}
	if !reflect.DeepEqual(sIn, rIn) || !reflect.DeepEqual(sOut, rOut) {
		t.Error("ObserveBatchSplit state diverged from per-sample split")
	}
	if bIn.Samples == 0 || bOut.Samples == 0 {
		t.Fatalf("window split degenerate: in=%d out=%d samples", bIn.Samples, bOut.Samples)
	}
}

// TestMergeArenasMatchesSingle shards randomized batches across
// aggregators — disjoint and overlapping client populations — and
// checks Merge + CanonicalizeClients equals one aggregator observing
// everything (the arena-level analogue of the map-era merge guarantee).
func TestMergeArenasMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := names.NewTable()
	pool := testNamePool(tab)
	track := []string{"evil.example.", "."}

	single := NewAggregator(tab, track)
	shards := []*Aggregator{NewAggregator(tab, track), NewAggregator(tab, track), NewAggregator(tab, track)}
	for round := 0; round < 6; round++ {
		b := randomBatch(rng, tab, pool, 300)
		single.ObserveBatch(b)
		shards[round%len(shards)].ObserveBatch(b)
	}
	merged := shards[0]
	merged.Merge(shards[1])
	merged.Merge(shards[2])
	merged.CanonicalizeClients()
	single.CanonicalizeClients()
	if !reflect.DeepEqual(merged, single) {
		t.Error("merged shard arenas differ from a single aggregator over the same batches")
	}
}

// TestCollectorObserveBatchMatchesObserve checks the pass-2 batch path:
// a collector fed whole batches must end byte-identical — records,
// per-name counts, and VisibleNS order included — to one observing the
// same rows sample by sample.
func TestCollectorObserveBatchMatchesObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := names.NewTable()
	pool := testNamePool(tab)
	cands := map[string]bool{"evil.example.": true, ".": true}
	var dets []*Detection
	for c := byte(1); c <= 12; c++ {
		for d := 0; d < 4; d++ {
			dets = append(dets, &Detection{
				Victim: [4]byte{10, 0, 0, c}, Day: simclock.MeasurementStart.Add(simclock.Days(d)).Day(),
				First: simclock.MeasurementStart.Add(simclock.Days(d)),
				Last:  simclock.MeasurementStart.Add(simclock.Days(d)),
			})
		}
	}
	batchCol := NewCollector(tab, dets, cands)
	rowCol := NewCollector(tab, dets, cands)
	for round := 0; round < 4; round++ {
		b := randomBatch(rng, tab, pool, 500)
		batchCol.ObserveBatch(b, nil)
		for i := 0; i < b.N; i++ {
			rowCol.Observe(sampleFromRow(tab, b, i))
		}
	}
	if !reflect.DeepEqual(batchCol, rowCol) {
		t.Error("Collector.ObserveBatch state diverged from per-sample Observe")
	}
	if len(batchCol.VisibleNS) == 0 || batchCol.Records()[0].Packets == 0 {
		t.Fatal("degenerate case: collector saw no candidate traffic")
	}
}

// TestForeignTableBatchRemap guards the invariant the batch-native
// paths rely on: a batch whose Name column lives in a foreign table
// (source.Replay's AddDay contract) must, after
// ixp.CapturePoint.RemapBatch, produce the same study-level results —
// detections and pass-2 records, which carry no IDs — as consuming the
// batch natively in its own table space.
func TestForeignTableBatchRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	foreign := names.NewTable()
	pool := testNamePool(foreign)
	b := randomBatch(rng, foreign, pool, 800)

	// Consumer table with a different interning order, so IDs differ.
	tab := names.NewTable()
	for _, n := range []string{"cdn.test.", "doj.gov.", "evil.example.", "."} {
		tab.Intern(n)
	}
	cap := ixp.NewCapturePoint(nil, tab)
	rb := cap.RemapBatch(b)
	if rb == b || rb.Table != tab {
		t.Fatal("foreign-table batch was not remapped into the capture table")
	}

	track := []string{"evil.example.", "."}
	agF := NewAggregator(foreign, track)
	agF.ObserveBatch(b)
	agN := NewAggregator(tab, track)
	agN.ObserveBatch(rb)
	if agF.Samples != agN.Samples || agF.TotalBytes != agN.TotalBytes || agF.NumClients() != agN.NumClients() {
		t.Fatalf("global counters diverged: %d/%d/%d vs %d/%d/%d",
			agF.Samples, agF.TotalBytes, agF.NumClients(), agN.Samples, agN.TotalBytes, agN.NumClients())
	}
	for _, n := range []string{"evil.example.", ".", "bulk-a.test.", "doj.gov."} {
		if agF.NameStatsOf(n) != agN.NameStatsOf(n) {
			t.Errorf("NameStatsOf(%q) diverged: %+v vs %+v", n, agF.NameStatsOf(n), agN.NameStatsOf(n))
		}
	}
	cands := map[string]bool{"evil.example.": true, ".": true}
	th := Thresholds{MinShare: 0.25, MinPackets: 2}
	detsF := Detect(agF, cands, th)
	detsN := Detect(agN, cands, th)
	if len(detsF) == 0 || !reflect.DeepEqual(detsF, detsN) {
		t.Errorf("detections diverged across table spaces: %d vs %d", len(detsF), len(detsN))
	}

	// Pass 2: a collector over each table space, fed its batch form.
	colF := NewCollector(foreign, detsF, cands)
	colF.ObserveBatch(b, nil)
	colN := NewCollector(tab, detsN, cands)
	colN.ObserveBatch(cap.RemapBatch(b), nil)
	if !reflect.DeepEqual(colF.Records(), colN.Records()) {
		t.Error("pass-2 records diverged across table spaces")
	}
	if !reflect.DeepEqual(colF.VisibleNS, colN.VisibleNS) {
		t.Error("VisibleNS diverged across table spaces")
	}
}

// TestDetectMatchesShareOf pins the columnar threshold scan to the
// reference semantics: Detect must flag exactly the (client, day) pairs
// whose ShareOf-based share and packet count pass the thresholds, in
// (day, victim) order, on canonicalized and raw arenas alike.
func TestDetectMatchesShareOf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ag := NewAggregator(nil, []string{"evil.example.", "."})
	pool := testNamePool(ag.Table)
	for round := 0; round < 4; round++ {
		ag.ObserveBatch(randomBatch(rng, ag.Table, pool, 600))
	}
	cands := map[string]bool{"evil.example.": true, ".": true, "absent.test.": false}
	th := Thresholds{MinShare: 0.30, MinPackets: 3}

	reference := func(ag *Aggregator) []*Detection {
		cs := ag.CandidateSet(cands)
		var want []*Detection
		ag.EachClient(func(key ClientDay, ca *ClientAgg) {
			share, cand := ca.ShareOf(cs)
			if cand == 0 || ca.Total < th.MinPackets || share < th.MinShare {
				return
			}
			want = append(want, &Detection{
				Victim: key.Client, Day: key.Day,
				Packets: ca.Total, CandidatePackets: cand, Share: share,
				First: ca.First, Last: ca.Last,
			})
		})
		return want
	}
	sortDet := func(ds []*Detection) {
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && (ds[j].Day < ds[j-1].Day ||
				(ds[j].Day == ds[j-1].Day && cmpAddr(ds[j].Victim, ds[j-1].Victim) < 0)); j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
	}
	for _, canonical := range []bool{false, true} {
		if canonical {
			ag.CanonicalizeClients()
		}
		want := reference(ag)
		sortDet(want)
		got := Detect(ag, cands, th)
		if len(want) == 0 {
			t.Fatal("degenerate case: no reference detections")
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("canonical=%v: Detect = %d detections, reference = %d (or contents differ)",
				canonical, len(got), len(want))
		}
	}
}
