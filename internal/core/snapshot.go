// Aggregator checkpointing: a full binary dump of the streaming pass-1
// state — global counters, the dense per-name stats column, the tracked
// universe, and the client-day arena including every profile's
// tracked-name list — so a live consumer (the service's sliding window)
// can persist its detection state and resume after a crash with
// byte-identical behaviour. The interning table is serialized by the
// caller (it is shared with the capture point), so the snapshot here is
// pure ID-space state.
package core

import (
	"fmt"

	"dnsamp/internal/binenc"
	"dnsamp/internal/simclock"
)

// WriteSnapshot serializes the aggregator's complete state (except the
// Table, which the caller owns and serializes alongside) to e. The
// rebuilt-on-load client index and the Detect scratch columns are
// derived state and not written.
func (ag *Aggregator) WriteSnapshot(e *binenc.Encoder) {
	e.Bool(ag.trackAll)
	e.U32(uint32(len(ag.tracked)))
	for _, t := range ag.tracked {
		e.Bool(t)
	}

	e.I64(int64(ag.Samples))
	e.I64(int64(ag.Requests))
	e.I64(int64(ag.TotalBytes))
	e.I64(int64(ag.ANYPackets))
	e.I64(int64(ag.ANYBytes))

	e.U32(uint32(len(ag.names)))
	for i := range ag.names {
		ns := &ag.names[i]
		e.I64(int64(ns.MaxSize))
		e.I64(int64(ns.ANYPackets))
		e.I64(int64(ns.Packets))
	}

	e.U32(uint32(len(ag.arena)))
	for i := range ag.arena {
		k := ag.arenaKeys[i]
		e.Raw(k.Client[:])
		e.I64(int64(k.Day))
		ca := &ag.arena[i]
		e.I64(int64(ca.Total))
		e.I64(int64(ca.Bytes))
		e.I64(int64(ca.ANYPackets))
		e.I64(int64(ca.ANYBytes))
		e.I64(int64(ca.First))
		e.I64(int64(ca.Last))
		e.U32(uint32(len(ca.Tracked)))
		for _, tc := range ca.Tracked {
			e.U32(tc.ID)
			e.I64(int64(tc.N))
		}
	}
}

// ReadSnapshot restores the state WriteSnapshot wrote into ag, which
// must be freshly constructed over the table the snapshot's name IDs
// live in. The client index is rebuilt deterministically from the
// restored arena, so a restored aggregator continues exactly where the
// snapshotted one stopped. Malformed input yields an error from the
// decoder's sentinel space, never a panic.
func (ag *Aggregator) ReadSnapshot(d *binenc.Decoder) error {
	ag.trackAll = d.Bool()
	if n := d.Count(1); n > 0 {
		ag.tracked = make([]bool, n)
		for i := range ag.tracked {
			ag.tracked[i] = d.Bool()
		}
	}

	ag.Samples = int(d.I64())
	ag.Requests = int(d.I64())
	ag.TotalBytes = int(d.I64())
	ag.ANYPackets = int(d.I64())
	ag.ANYBytes = int(d.I64())

	// A NameStats entry costs 24 bytes; a client-day slot at least 60
	// (4+8 key, 6×8 fields, 4 tracked count).
	nNames := d.Count(24)
	ag.names = make([]NameStats, nNames)
	ag.numNames = 0
	for i := range ag.names {
		ns := &ag.names[i]
		ns.MaxSize = int(d.I64())
		ns.ANYPackets = int(d.I64())
		ns.Packets = int(d.I64())
		if ns.Packets > 0 {
			ag.numNames++
		}
	}
	if len(ag.names) > 0 && ag.Table.Len() < len(ag.names) {
		return fmt.Errorf("core: snapshot has %d name entries but the table holds %d names", len(ag.names), ag.Table.Len())
	}

	nClients := d.Count(60)
	ag.arena = make([]ClientAgg, nClients)
	ag.arenaKeys = make([]ClientDay, nClients)
	for i := 0; i < nClients && d.Err() == nil; i++ {
		k := &ag.arenaKeys[i]
		copy(k.Client[:], d.Raw(4))
		k.Day = int(d.I64())
		ca := &ag.arena[i]
		ca.Total = int(d.I64())
		ca.Bytes = int(d.I64())
		ca.ANYPackets = int(d.I64())
		ca.ANYBytes = int(d.I64())
		ca.First = simclock.Time(d.I64())
		ca.Last = simclock.Time(d.I64())
		// A tracked entry costs 12 bytes (u32 ID + i64 count).
		nt := d.Count(12)
		if nt > 0 {
			ca.Tracked = make([]NameCount, nt)
			for j := range ca.Tracked {
				ca.Tracked[j].ID = d.U32()
				ca.Tracked[j].N = int(d.I64())
			}
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	ag.rebuildIndex(indexSizeFor(nClients))
	ag.idx.n = nClients
	return nil
}
