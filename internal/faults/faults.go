// Package faults wraps the I/O boundaries the service depends on —
// net.PacketConn, io.Reader, io.Writer — with schedule-driven fault
// injection: datagram drops, duplication, reordering, corruption,
// latency, short reads/writes, transient errors, and ENOSPC. Every
// decision comes from one seeded PCG stream, so a chaos run is
// reproducible from a single uint64: same seed + same operation
// sequence = same faults, byte for byte. The wrappers count what they
// inject, which is what lets the chaos soak close its accounting —
// every datagram the service did not consume must be explained by an
// injected fault or a deliberate shed, never silently lost.
package faults

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the transient error the wrappers return for injected
// read/write failures. It implements net.Error with Temporary() true,
// matching the class of errors a robust caller retries with backoff.
var ErrInjected error = transientError{}

type transientError struct{}

func (transientError) Error() string   { return "faults: injected transient error" }
func (transientError) Timeout() bool   { return false }
func (transientError) Temporary() bool { return true }

// Plan is a fault schedule: per-operation probabilities in [0, 1].
// The zero value injects nothing.
type Plan struct {
	Seed uint64

	// Datagram faults, applied by PacketConn on the send path.
	Drop    float64 // swallow the datagram
	Dup     float64 // send it twice
	Reorder float64 // hold it back until after the next datagram
	Corrupt float64 // flip bytes in a copy before sending

	// Latency injects a uniform [0, LatencyMax) sleep before a send.
	Latency    float64
	LatencyMax time.Duration

	// Stream faults, applied by Reader / Writer.
	ShortRead  float64 // read into a shortened buffer (legal, stresses resume paths)
	ReadErr    float64 // transient read error
	ShortWrite float64 // write a prefix, return io.ErrShortWrite
	WriteErr   float64 // transient write error
	ENOSPC     float64 // error wrapping syscall.ENOSPC
}

// Counters tallies injected faults. Fields are atomics so wrapped
// endpoints can be driven from multiple goroutines.
type Counters struct {
	Drops       atomic.Uint64
	Dups        atomic.Uint64
	Reorders    atomic.Uint64
	Corruptions atomic.Uint64
	Delays      atomic.Uint64
	ShortReads  atomic.Uint64
	ReadErrs    atomic.Uint64
	ShortWrites atomic.Uint64
	WriteErrs   atomic.Uint64
	ENOSPCs     atomic.Uint64
}

// Stats is a plain-value snapshot of Counters.
type Stats struct {
	Drops, Dups, Reorders, Corruptions, Delays   uint64
	ShortReads, ReadErrs, ShortWrites, WriteErrs uint64
	ENOSPCs                                      uint64
}

// Injector owns one seeded random stream and the fault counters. One
// injector may wrap several endpoints; they share the stream, so full
// determinism requires a deterministic operation order across them
// (one goroutine, or one endpoint per injector).
type Injector struct {
	plan Plan

	mu  sync.Mutex
	rng *rand.Rand

	c Counters
}

// New builds an injector for the plan, seeded from Plan.Seed.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewPCG(plan.Seed, 0x5fa0175))}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops: in.c.Drops.Load(), Dups: in.c.Dups.Load(), Reorders: in.c.Reorders.Load(),
		Corruptions: in.c.Corruptions.Load(), Delays: in.c.Delays.Load(),
		ShortReads: in.c.ShortReads.Load(), ReadErrs: in.c.ReadErrs.Load(),
		ShortWrites: in.c.ShortWrites.Load(), WriteErrs: in.c.WriteErrs.Load(),
		ENOSPCs: in.c.ENOSPCs.Load(),
	}
}

// roll draws one probability decision from the seeded stream. A zero
// probability still burns no draw, keeping plans with disabled faults
// aligned with the same seed's enabled ones only when the plan matches
// — determinism is per (seed, plan, op sequence).
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	ok := in.rng.Float64() < p
	in.mu.Unlock()
	return ok
}

// intn draws a uniform [0, n) int from the seeded stream.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	v := in.rng.IntN(n)
	in.mu.Unlock()
	return v
}

// PacketConn wraps c with the plan's datagram faults on the send path
// (WriteTo) and transient errors on the receive path (ReadFrom). Close
// flushes a held reordered datagram.
func (in *Injector) PacketConn(c net.PacketConn) net.PacketConn {
	return &packetConn{PacketConn: c, in: in}
}

type packetConn struct {
	net.PacketConn
	in *Injector

	mu       sync.Mutex
	held     []byte
	heldAddr net.Addr
}

func (pc *packetConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	in := pc.in
	if in.roll(in.plan.Latency) && in.plan.LatencyMax > 0 {
		in.c.Delays.Add(1)
		time.Sleep(time.Duration(in.intn(int(in.plan.LatencyMax))))
	}
	if in.roll(in.plan.Drop) {
		in.c.Drops.Add(1)
		return len(p), nil // swallowed: the caller believes it sent
	}
	buf := p
	if in.roll(in.plan.Corrupt) {
		in.c.Corruptions.Add(1)
		buf = append([]byte(nil), p...)
		for i, n := 0, 1+in.intn(3); i < n && len(buf) > 0; i++ {
			buf[in.intn(len(buf))] ^= byte(1 + in.intn(255))
		}
	}

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.held == nil && in.roll(in.plan.Reorder) {
		in.c.Reorders.Add(1)
		pc.held = append([]byte(nil), buf...)
		pc.heldAddr = addr
		return len(p), nil // delivered late, after the next datagram
	}
	if _, err := pc.PacketConn.WriteTo(buf, addr); err != nil {
		return 0, err
	}
	if in.roll(in.plan.Dup) {
		in.c.Dups.Add(1)
		if _, err := pc.PacketConn.WriteTo(buf, addr); err != nil {
			return 0, err
		}
	}
	if pc.held != nil {
		held, haddr := pc.held, pc.heldAddr
		pc.held, pc.heldAddr = nil, nil
		if _, err := pc.PacketConn.WriteTo(held, haddr); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (pc *packetConn) ReadFrom(p []byte) (int, net.Addr, error) {
	if pc.in.roll(pc.in.plan.ReadErr) {
		pc.in.c.ReadErrs.Add(1)
		return 0, nil, ErrInjected
	}
	return pc.PacketConn.ReadFrom(p)
}

// Close flushes a held reordered datagram so nothing is silently lost
// at the end of a run, then closes the underlying conn.
func (pc *packetConn) Close() error {
	pc.mu.Lock()
	held, haddr := pc.held, pc.heldAddr
	pc.held, pc.heldAddr = nil, nil
	pc.mu.Unlock()
	if held != nil {
		pc.PacketConn.WriteTo(held, haddr)
	}
	return pc.PacketConn.Close()
}

// Reader wraps r with short reads and transient read errors.
func (in *Injector) Reader(r io.Reader) io.Reader {
	return &reader{r: r, in: in}
}

type reader struct {
	r  io.Reader
	in *Injector
}

func (fr *reader) Read(p []byte) (int, error) {
	in := fr.in
	if in.roll(in.plan.ReadErr) {
		in.c.ReadErrs.Add(1)
		return 0, ErrInjected
	}
	if len(p) > 1 && in.roll(in.plan.ShortRead) {
		in.c.ShortReads.Add(1)
		p = p[:1+in.intn(len(p)-1)]
	}
	return fr.r.Read(p)
}

// Writer wraps w with short writes, transient errors, and ENOSPC. A
// short write really writes the prefix it reports, so a caller that
// resumes at the returned offset loses nothing.
func (in *Injector) Writer(w io.Writer) io.Writer {
	return &writer{w: w, in: in}
}

type writer struct {
	w  io.Writer
	in *Injector
}

func (fw *writer) Write(p []byte) (int, error) {
	in := fw.in
	if in.roll(in.plan.WriteErr) {
		in.c.WriteErrs.Add(1)
		return 0, ErrInjected
	}
	if in.roll(in.plan.ENOSPC) {
		in.c.ENOSPCs.Add(1)
		return 0, fmt.Errorf("faults: injected: %w", syscall.ENOSPC)
	}
	if len(p) > 1 && in.roll(in.plan.ShortWrite) {
		in.c.ShortWrites.Add(1)
		n, err := fw.w.Write(p[:1+in.intn(len(p)-1)])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return fw.w.Write(p)
}
