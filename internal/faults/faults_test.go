package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// memConn is a loopback-free net.PacketConn capturing writes in order.
type memConn struct {
	sent [][]byte
}

func (m *memConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	m.sent = append(m.sent, append([]byte(nil), p...))
	return len(p), nil
}
func (m *memConn) ReadFrom(p []byte) (int, net.Addr, error) { return 0, nil, io.EOF }
func (m *memConn) Close() error                             { return nil }
func (m *memConn) LocalAddr() net.Addr                      { return nil }
func (m *memConn) SetDeadline(t time.Time) error            { return nil }
func (m *memConn) SetReadDeadline(t time.Time) error        { return nil }
func (m *memConn) SetWriteDeadline(t time.Time) error       { return nil }

var plan = Plan{
	Seed: 42,
	Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1,
	ShortRead: 0.2, ReadErr: 0.1,
	ShortWrite: 0.2, WriteErr: 0.1, ENOSPC: 0.05,
}

// runConn pushes n numbered datagrams through a fresh wrapped conn and
// returns what came out the far side plus the fault stats.
func runConn(n int) ([][]byte, Stats) {
	in := New(plan)
	mem := &memConn{}
	pc := in.PacketConn(mem)
	for i := 0; i < n; i++ {
		pc.WriteTo([]byte{byte(i), byte(i >> 8), 0xaa, 0xbb}, nil)
	}
	pc.Close()
	return mem.sent, in.Stats()
}

// TestDeterministicFromSeed: the whole fault schedule — which datagrams
// drop, duplicate, reorder, corrupt, and into what bytes — replays
// identically from the seed.
func TestDeterministicFromSeed(t *testing.T) {
	sentA, statsA := runConn(500)
	sentB, statsB := runConn(500)
	if !reflect.DeepEqual(sentA, sentB) {
		t.Fatal("same seed produced different datagram streams")
	}
	if statsA != statsB {
		t.Fatalf("same seed produced different stats:\nA %+v\nB %+v", statsA, statsB)
	}
	for _, want := range []struct {
		name string
		got  uint64
	}{
		{"drops", statsA.Drops}, {"dups", statsA.Dups},
		{"reorders", statsA.Reorders}, {"corruptions", statsA.Corruptions},
	} {
		if want.got == 0 {
			t.Errorf("no %s injected over 500 datagrams at p=0.1", want.name)
		}
	}
	// Conservation: everything sent is explained by the counters.
	wantOut := 500 - statsA.Drops - statsA.Reorders + statsA.Dups + statsA.Reorders
	if uint64(len(sentA)) != wantOut {
		t.Fatalf("%d datagrams out, counters say %d", len(sentA), wantOut)
	}

	other, _ := runConnSeed(43, 500)
	if reflect.DeepEqual(sentA, other) {
		t.Fatal("different seeds produced identical streams")
	}
}

func runConnSeed(seed uint64, n int) ([][]byte, Stats) {
	p := plan
	p.Seed = seed
	in := New(p)
	mem := &memConn{}
	pc := in.PacketConn(mem)
	for i := 0; i < n; i++ {
		pc.WriteTo([]byte{byte(i), byte(i >> 8), 0xaa, 0xbb}, nil)
	}
	pc.Close()
	return mem.sent, in.Stats()
}

// TestReorderDelaysOneDatagram: a reordered datagram arrives right
// after its successor, and Close flushes one held at end of stream.
func TestReorderDelaysOneDatagram(t *testing.T) {
	in := New(Plan{Seed: 7, Reorder: 1})
	mem := &memConn{}
	pc := in.PacketConn(mem)
	pc.WriteTo([]byte{1}, nil) // held
	pc.WriteTo([]byte{2}, nil) // sent, then releases 1
	pc.WriteTo([]byte{3}, nil) // held again
	pc.Close()                 // flushes 3
	want := [][]byte{{2}, {1}, {3}}
	if !reflect.DeepEqual(mem.sent, want) {
		t.Fatalf("sent %v, want %v", mem.sent, want)
	}
	if got := in.Stats().Reorders; got != 2 {
		t.Fatalf("Reorders = %d, want 2", got)
	}
}

// TestReaderFaults: transient errors surface as ErrInjected (a
// temporary net.Error) and short reads still deliver all the bytes to
// a retrying reader.
func TestReaderFaults(t *testing.T) {
	payload := bytes.Repeat([]byte{0xc5}, 1<<14)
	in := New(Plan{Seed: 9, ShortRead: 0.5, ReadErr: 0.2})
	r := in.Reader(bytes.NewReader(payload))

	var got []byte
	buf := make([]byte, 512)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if errors.Is(err, ErrInjected) {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Temporary() {
				t.Fatal("ErrInjected is not a temporary net.Error")
			}
			continue // a robust caller retries
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %d bytes, want %d intact", len(got), len(payload))
	}
	st := in.Stats()
	if st.ShortReads == 0 || st.ReadErrs == 0 {
		t.Fatalf("expected both fault kinds, got %+v", st)
	}
}

// TestWriterFaults: a retry-at-offset loop over the faulty writer
// reconstructs the exact payload; ENOSPC is detectable via errors.Is.
func TestWriterFaults(t *testing.T) {
	payload := bytes.Repeat([]byte{0x3e, 0x17}, 1<<13)
	in := New(Plan{Seed: 11, ShortWrite: 0.4, WriteErr: 0.2, ENOSPC: 0.1})
	var sink bytes.Buffer
	w := in.Writer(&sink)

	sawENOSPC := false
	for off := 0; off < len(payload); {
		end := min(off+256, len(payload)) // chunked, so many rolls happen
		n, err := w.Write(payload[off:end])
		off += n
		switch {
		case err == nil:
		case errors.Is(err, syscall.ENOSPC):
			sawENOSPC = true
		case errors.Is(err, ErrInjected), errors.Is(err, io.ErrShortWrite):
		default:
			t.Fatalf("Write: %v", err)
		}
	}
	if !bytes.Equal(sink.Bytes(), payload) {
		t.Fatalf("sink holds %d bytes, want the %d-byte payload intact", sink.Len(), len(payload))
	}
	st := in.Stats()
	if st.ShortWrites == 0 || st.WriteErrs == 0 || !sawENOSPC || st.ENOSPCs == 0 {
		t.Fatalf("expected all write fault kinds, got %+v (ENOSPC seen: %v)", st, sawENOSPC)
	}
}

// TestZeroPlanIsTransparent: the zero plan never perturbs anything.
func TestZeroPlanIsTransparent(t *testing.T) {
	in := New(Plan{Seed: 1})
	mem := &memConn{}
	pc := in.PacketConn(mem)
	for i := 0; i < 100; i++ {
		pc.WriteTo([]byte{byte(i)}, nil)
	}
	pc.Close()
	if len(mem.sent) != 100 {
		t.Fatalf("%d datagrams out, want 100", len(mem.sent))
	}
	for i, d := range mem.sent {
		if len(d) != 1 || d[0] != byte(i) {
			t.Fatalf("datagram %d = %v, perturbed by zero plan", i, d)
		}
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("zero plan counted faults: %+v", st)
	}
}
