// Package topology models the inter-domain substrate the IXP sits in:
// autonomous systems with typed roles, IPv4 prefix allocations, a
// longest-prefix-match routing table (standing in for RIPE RIS data,
// which the paper uses to map origin ASes), IXP membership and customer
// cones (used to annotate the "peering hop" AS of every sampled frame).
//
// The generator allocates everything deterministically from a seeded
// PRNG, so a campaign is fully reproducible.
package topology

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"slices"

	"dnsamp/internal/stats"
)

// ASType classifies an autonomous system. Victim-category statistics in
// the paper (§4.2: 36% of attack traffic to ISP networks, 24% to content)
// are expressed against these classes.
type ASType int

// AS classes.
const (
	ASTransit ASType = iota
	ASAccess         // "ISP" / eyeball networks
	ASContent
	ASEnterprise
	ASEducation
	ASGovernment
	ASHosting
)

var asTypeNames = map[ASType]string{
	ASTransit: "transit", ASAccess: "access", ASContent: "content",
	ASEnterprise: "enterprise", ASEducation: "education",
	ASGovernment: "government", ASHosting: "hosting",
}

// String returns the class name.
func (t ASType) String() string { return asTypeNames[t] }

// AS is one autonomous system.
type AS struct {
	ASN      uint32
	Type     ASType
	Name     string
	Prefixes []netip.Prefix
	// Transit is the ASN of the upstream transit provider through which
	// this AS reaches the IXP (zero for IXP members themselves).
	Transit uint32
	// IXPMember marks ASes directly connected to the IXP fabric.
	IXPMember bool
}

// Topology is the full AS-level substrate.
type Topology struct {
	ASes    map[uint32]*AS
	Members []uint32 // IXP member ASNs, sorted
	rt      *routeTable
	// cone maps every ASN to the IXP member whose customer cone carries
	// its traffic onto the fabric.
	cone map[uint32]uint32
}

// Config controls topology synthesis.
type Config struct {
	Members      int // IXP member networks ("over a hundred", §3.1)
	ASesPerClass int // non-member ASes per class hanging off members
	Seed         int64
}

// DefaultConfig mirrors the paper's IXP scale at simulation size.
func DefaultConfig() Config {
	return Config{Members: 120, ASesPerClass: 220, Seed: 1}
}

// Generate synthesizes a topology.
func Generate(cfg Config) *Topology {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		ASes: make(map[uint32]*AS),
		rt:   newRouteTable(),
		cone: make(map[uint32]uint32),
	}
	alloc := newPrefixAllocator(rng)

	nextASN := uint32(100)
	newAS := func(typ ASType, member bool, prefixes int, plen int) *AS {
		a := &AS{
			ASN:       nextASN,
			Type:      typ,
			Name:      fmt.Sprintf("AS%d-%s", nextASN, typ),
			IXPMember: member,
		}
		nextASN++
		for i := 0; i < prefixes; i++ {
			p := alloc.next(plen)
			a.Prefixes = append(a.Prefixes, p)
			t.rt.insert(p, a.ASN)
		}
		t.ASes[a.ASN] = a
		return a
	}

	// IXP members: a mix of transit-heavy and access/content members.
	memberTypes := []ASType{ASTransit, ASAccess, ASContent, ASHosting}
	for i := 0; i < cfg.Members; i++ {
		typ := memberTypes[i%len(memberTypes)]
		a := newAS(typ, true, 2+rng.Intn(4), 16)
		t.Members = append(t.Members, a.ASN)
		t.cone[a.ASN] = a.ASN
	}
	slices.Sort(t.Members)

	// Transit members carry larger customer cones: weight attachment
	// toward transits.
	var transits []uint32
	for _, m := range t.Members {
		if t.ASes[m].Type == ASTransit {
			transits = append(transits, m)
		}
	}

	classes := []struct {
		typ      ASType
		prefixes int
		plen     int
	}{
		{ASAccess, 4, 18},
		{ASContent, 2, 20},
		{ASEnterprise, 1, 22},
		{ASEducation, 1, 21},
		{ASGovernment, 1, 22},
		{ASHosting, 2, 20},
	}
	for _, cl := range classes {
		for i := 0; i < cfg.ASesPerClass; i++ {
			a := newAS(cl.typ, false, cl.prefixes, cl.plen)
			// 70% attach through a transit member, the rest through any
			// member — a crude but serviceable cone model.
			var up uint32
			if len(transits) > 0 && rng.Float64() < 0.7 {
				up = stats.Pick(rng, transits)
			} else {
				up = stats.Pick(rng, t.Members)
			}
			a.Transit = up
			t.cone[a.ASN] = up
		}
	}
	return t
}

// OriginAS returns the origin AS of an address per the routing table, or
// 0 if unknown. This stands in for RIPE RIS origin mapping (99% coverage
// in the paper; unallocated space here returns 0).
func (t *Topology) OriginAS(addr netip.Addr) uint32 { return t.rt.lookup(addr) }

// PeerHopAS returns the IXP member whose port carries traffic from addr's
// origin AS, or 0 if the origin is unknown.
func (t *Topology) PeerHopAS(addr netip.Addr) uint32 {
	return t.cone[t.rt.lookup(addr)]
}

// MemberFor returns the IXP member carrying asn's traffic (identity for
// members themselves).
func (t *Topology) MemberFor(asn uint32) uint32 { return t.cone[asn] }

// ConeSize returns the number of ASNs (including the member itself) in a
// member's customer cone.
func (t *Topology) ConeSize(member uint32) int {
	n := 0
	for _, up := range t.cone {
		if up == member {
			n++
		}
	}
	return n
}

// ASesOfType returns all ASNs of the given class, sorted.
func (t *Topology) ASesOfType(typ ASType) []uint32 {
	var out []uint32
	for asn, a := range t.ASes {
		if a.Type == typ {
			out = append(out, asn)
		}
	}
	slices.Sort(out)
	return out
}

// RandomAddrIn returns a host address drawn uniformly from the AS's
// allocated prefixes.
func (t *Topology) RandomAddrIn(rng *rand.Rand, asn uint32) (netip.Addr, bool) {
	a, ok := t.ASes[asn]
	if !ok || len(a.Prefixes) == 0 {
		return netip.Addr{}, false
	}
	p := stats.Pick(rng, a.Prefixes)
	return randomAddrInPrefix(rng, p), true
}

// randomAddrInPrefix picks a uniform host address inside p, avoiding the
// network and broadcast addresses for prefixes shorter than /31.
func randomAddrInPrefix(rng *rand.Rand, p netip.Prefix) netip.Addr {
	base := binary.BigEndian.Uint32(p.Addr().AsSlice())
	hostBits := 32 - p.Bits()
	size := uint32(1) << hostBits
	var off uint32
	if size > 2 {
		off = 1 + uint32(rng.Intn(int(size-2)))
	} else {
		off = uint32(rng.Intn(int(size)))
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], base|off)
	return netip.AddrFrom4(b)
}

// Prefix24 returns the covering /24 of an address, the victim-prefix
// aggregation unit used in §4.3.
func Prefix24(addr netip.Addr) netip.Prefix {
	p, _ := addr.Prefix(24)
	return p
}

// Prefix16 returns the covering /16.
func Prefix16(addr netip.Addr) netip.Prefix {
	p, _ := addr.Prefix(16)
	return p
}

// Prefix8 returns the covering /8.
func Prefix8(addr netip.Addr) netip.Prefix {
	p, _ := addr.Prefix(8)
	return p
}

// routeTable is a longest-prefix-match table over IPv4, implemented as
// per-length exact-match maps probed from the longest populated length
// downward — simple, deterministic and fast enough for simulation scale.
type routeTable struct {
	byLen [33]map[uint32]uint32 // masked address -> ASN
	lens  []int                 // populated lengths, descending
}

func newRouteTable() *routeTable { return &routeTable{} }

func (rt *routeTable) insert(p netip.Prefix, asn uint32) {
	l := p.Bits()
	if rt.byLen[l] == nil {
		rt.byLen[l] = make(map[uint32]uint32)
		rt.lens = append(rt.lens, l)
		slices.SortFunc(rt.lens, func(a, b int) int { return b - a })
	}
	key := binary.BigEndian.Uint32(p.Masked().Addr().AsSlice())
	rt.byLen[l][key] = asn
}

func (rt *routeTable) lookup(addr netip.Addr) uint32 {
	if !addr.Is4() {
		return 0
	}
	v := binary.BigEndian.Uint32(addr.AsSlice())
	for _, l := range rt.lens {
		key := v &^ (1<<(32-l) - 1)
		if l == 0 {
			key = 0
		}
		if asn, ok := rt.byLen[l][key]; ok {
			return asn
		}
	}
	return 0
}

// prefixAllocator hands out disjoint prefixes from 10.0.0.0/8 upward
// through several private-ish /8s, enough space for simulation scale.
type prefixAllocator struct {
	rng    *rand.Rand
	next32 uint32
}

func newPrefixAllocator(rng *rand.Rand) *prefixAllocator {
	// Start at 11.0.0.0 to keep 10/8 free for honeypot sensors and
	// scanner infrastructure.
	return &prefixAllocator{rng: rng, next32: 11 << 24}
}

// next allocates the next free prefix of the given length.
func (a *prefixAllocator) next(plen int) netip.Prefix {
	size := uint32(1) << (32 - plen)
	// Align.
	if rem := a.next32 % size; rem != 0 {
		a.next32 += size - rem
	}
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], a.next32)
	a.next32 += size
	return netip.PrefixFrom(netip.AddrFrom4(b), plen)
}
