package topology

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func testTopo() *Topology {
	return Generate(Config{Members: 20, ASesPerClass: 30, Seed: 42})
}

func TestGenerateCounts(t *testing.T) {
	topo := testTopo()
	if len(topo.Members) != 20 {
		t.Fatalf("members = %d, want 20", len(topo.Members))
	}
	// 20 members + 6 classes * 30.
	if len(topo.ASes) != 20+6*30 {
		t.Fatalf("ASes = %d, want %d", len(topo.ASes), 20+6*30)
	}
	for _, m := range topo.Members {
		if !topo.ASes[m].IXPMember {
			t.Errorf("member %d not flagged", m)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Members: 10, ASesPerClass: 5, Seed: 7})
	b := Generate(Config{Members: 10, ASesPerClass: 5, Seed: 7})
	if len(a.ASes) != len(b.ASes) {
		t.Fatal("AS count differs")
	}
	for asn, as1 := range a.ASes {
		as2, ok := b.ASes[asn]
		if !ok {
			t.Fatalf("ASN %d missing in second run", asn)
		}
		if len(as1.Prefixes) != len(as2.Prefixes) || as1.Transit != as2.Transit {
			t.Fatalf("ASN %d differs between runs", asn)
		}
		for i := range as1.Prefixes {
			if as1.Prefixes[i] != as2.Prefixes[i] {
				t.Fatalf("ASN %d prefix %d differs", asn, i)
			}
		}
	}
}

func TestOriginASRoundTrip(t *testing.T) {
	topo := testTopo()
	rng := rand.New(rand.NewSource(5))
	for asn := range topo.ASes {
		addr, ok := topo.RandomAddrIn(rng, asn)
		if !ok {
			t.Fatalf("no address for AS%d", asn)
		}
		if got := topo.OriginAS(addr); got != asn {
			t.Errorf("OriginAS(%v) = %d, want %d", addr, got, asn)
		}
	}
}

func TestOriginASUnknown(t *testing.T) {
	topo := testTopo()
	if got := topo.OriginAS(netip.MustParseAddr("8.8.8.8")); got != 0 {
		t.Errorf("unallocated space mapped to AS%d", got)
	}
	if got := topo.OriginAS(netip.MustParseAddr("2001:db8::1")); got != 0 {
		t.Errorf("IPv6 mapped to AS%d", got)
	}
}

func TestPeerHop(t *testing.T) {
	topo := testTopo()
	rng := rand.New(rand.NewSource(6))
	memberSet := map[uint32]bool{}
	for _, m := range topo.Members {
		memberSet[m] = true
	}
	for asn, as := range topo.ASes {
		addr, _ := topo.RandomAddrIn(rng, asn)
		hop := topo.PeerHopAS(addr)
		if !memberSet[hop] {
			t.Fatalf("peer hop %d of AS%d is not a member", hop, asn)
		}
		if as.IXPMember && hop != asn {
			t.Errorf("member %d should be its own hop, got %d", asn, hop)
		}
		if !as.IXPMember && hop != as.Transit {
			t.Errorf("AS%d hop %d != transit %d", asn, hop, as.Transit)
		}
	}
}

func TestConeSizes(t *testing.T) {
	topo := testTopo()
	total := 0
	for _, m := range topo.Members {
		total += topo.ConeSize(m)
	}
	if total != len(topo.ASes) {
		t.Errorf("cone sizes sum to %d, want %d (every AS in exactly one cone)", total, len(topo.ASes))
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	topo := testTopo()
	var all []netip.Prefix
	for _, as := range topo.ASes {
		all = append(all, as.Prefixes...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("prefixes overlap: %v and %v", all[i], all[j])
			}
		}
	}
}

func TestASesOfType(t *testing.T) {
	topo := testTopo()
	access := topo.ASesOfType(ASAccess)
	if len(access) == 0 {
		t.Fatal("no access ASes")
	}
	for _, asn := range access {
		if topo.ASes[asn].Type != ASAccess {
			t.Errorf("AS%d wrong type", asn)
		}
	}
	// Sorted?
	for i := 1; i < len(access); i++ {
		if access[i-1] >= access[i] {
			t.Fatal("ASesOfType not sorted")
		}
	}
}

func TestRandomAddrInBounds(t *testing.T) {
	topo := testTopo()
	rng := rand.New(rand.NewSource(9))
	f := func(pick uint16) bool {
		asns := make([]uint32, 0, len(topo.ASes))
		for asn := range topo.ASes {
			asns = append(asns, asn)
		}
		asn := asns[int(pick)%len(asns)]
		addr, ok := topo.RandomAddrIn(rng, asn)
		if !ok {
			return false
		}
		for _, p := range topo.ASes[asn].Prefixes {
			if p.Contains(addr) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomAddrInMissing(t *testing.T) {
	topo := testTopo()
	rng := rand.New(rand.NewSource(1))
	if _, ok := topo.RandomAddrIn(rng, 999999); ok {
		t.Error("expected failure for unknown ASN")
	}
}

func TestPrefixHelpers(t *testing.T) {
	a := netip.MustParseAddr("11.22.33.44")
	if Prefix24(a).String() != "11.22.33.0/24" {
		t.Errorf("Prefix24 = %v", Prefix24(a))
	}
	if Prefix16(a).String() != "11.22.0.0/16" {
		t.Errorf("Prefix16 = %v", Prefix16(a))
	}
	if Prefix8(a).String() != "11.0.0.0/8" {
		t.Errorf("Prefix8 = %v", Prefix8(a))
	}
}

func TestLongestPrefixMatchPrecedence(t *testing.T) {
	rt := newRouteTable()
	rt.insert(netip.MustParsePrefix("11.0.0.0/8"), 100)
	rt.insert(netip.MustParsePrefix("11.1.0.0/16"), 200)
	rt.insert(netip.MustParsePrefix("11.1.1.0/24"), 300)
	cases := []struct {
		addr string
		want uint32
	}{
		{"11.1.1.5", 300},
		{"11.1.2.5", 200},
		{"11.2.0.1", 100},
		{"12.0.0.1", 0},
	}
	for _, c := range cases {
		if got := rt.lookup(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("lookup(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestASTypeString(t *testing.T) {
	if ASAccess.String() != "access" || ASTransit.String() != "transit" {
		t.Error("type names wrong")
	}
}
