// Package simclock provides the simulated time base of the reproduction.
//
// The paper's main measurement period runs 2019-06-01 through 2019-08-31
// (92 days); the major-attack-entity tracking extends to 2020-04-30. All
// simulation components express time as a simclock.Time so that no code
// path depends on the wall clock and campaigns are reproducible.
package simclock

import (
	"fmt"
	"time"
)

// Time is an absolute simulated instant, stored as Unix seconds.
// The zero value is the Unix epoch.
type Time int64

// Duration is a simulated span in seconds.
type Duration int64

// Common durations.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 86400
)

// MeasurementStart is 2019-06-01 00:00:00 UTC, the start of the paper's
// main three-month IXP capture.
var MeasurementStart = FromDate(2019, 6, 1)

// MeasurementEnd is 2019-09-01 00:00:00 UTC (exclusive end of the main
// period; the paper reports "June to September 2019").
var MeasurementEnd = FromDate(2019, 9, 1)

// EntityTrackingEnd is 2020-05-01 00:00:00 UTC, the exclusive end of the
// extended window used to follow the major attack entity (Fig. 8).
var EntityTrackingEnd = FromDate(2020, 5, 1)

// FromDate builds a Time from a UTC calendar date.
func FromDate(year int, month time.Month, day int) Time {
	return Time(time.Date(year, month, day, 0, 0, 0, 0, time.UTC).Unix())
}

// FromTime converts a time.Time.
func FromTime(t time.Time) Time { return Time(t.Unix()) }

// Std converts to a time.Time in UTC.
func (t Time) Std() time.Time { return time.Unix(int64(t), 0).UTC() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Day returns the number of whole days since the Unix epoch. Two instants
// share a Day value iff they fall on the same UTC calendar day.
func (t Time) Day() int { return int(int64(t) / int64(Day)) }

// StartOfDay truncates t to 00:00:00 UTC of its day.
func (t Time) StartOfDay() Time { return Time(t.Day()) * Time(Day) }

// DayIndex returns the zero-based day offset of t from origin (both
// truncated to day boundaries). Negative if t precedes origin.
func (t Time) DayIndex(origin Time) int { return t.Day() - origin.Day() }

// Date formats t as YYYY-MM-DD.
func (t Time) Date() string { return t.Std().Format("2006-01-02") }

// String formats t as an RFC 3339 UTC timestamp.
func (t Time) String() string { return t.Std().Format(time.RFC3339) }

// Days converts a whole number of days to a Duration.
func Days(n int) Duration { return Duration(n) * Day }

// Hours converts hours to a Duration.
func Hours(n int) Duration { return Duration(n) * Hour }

// Minutes converts minutes to a Duration.
func Minutes(n int) Duration { return Duration(n) * Minute }

// DurationString renders a Duration compactly, e.g. "7m", "33m", "2h5m".
func (d Duration) String() string {
	if d < 0 {
		return "-" + (-d).String()
	}
	switch {
	case d < Minute:
		return fmt.Sprintf("%ds", int64(d))
	case d < Hour:
		return fmt.Sprintf("%dm%02ds", int64(d)/60, int64(d)%60)
	case d < Day:
		return fmt.Sprintf("%dh%02dm", int64(d)/3600, int64(d)%3600/60)
	default:
		return fmt.Sprintf("%dd%02dh", int64(d)/86400, int64(d)%86400/3600)
	}
}

// Window is a half-open interval [Start, End).
type Window struct {
	Start, End Time
}

// MainPeriod returns the paper's main measurement window.
func MainPeriod() Window { return Window{MeasurementStart, MeasurementEnd} }

// EntityPeriod returns the extended entity-tracking window.
func EntityPeriod() Window { return Window{MeasurementStart, EntityTrackingEnd} }

// Contains reports whether t falls inside w.
func (w Window) Contains(t Time) bool { return t >= w.Start && t < w.End }

// Days returns the number of whole days spanned by w.
func (w Window) Days() int { return w.End.DayIndex(w.Start) }

// EachDay invokes fn with the start-of-day Time of every day in w.
func (w Window) EachDay(fn func(day Time)) {
	for d := w.Start.StartOfDay(); d.Before(w.End); d = d.Add(Day) {
		fn(d)
	}
}
