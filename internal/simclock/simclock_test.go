package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMeasurementPeriod(t *testing.T) {
	if MeasurementStart.Date() != "2019-06-01" {
		t.Errorf("start = %s", MeasurementStart.Date())
	}
	if MeasurementEnd.Date() != "2019-09-01" {
		t.Errorf("end = %s", MeasurementEnd.Date())
	}
	if got := MainPeriod().Days(); got != 92 {
		t.Errorf("main period = %d days, want 92", got)
	}
	if EntityTrackingEnd.Date() != "2020-05-01" {
		t.Errorf("entity end = %s", EntityTrackingEnd.Date())
	}
}

func TestDayAndStartOfDay(t *testing.T) {
	noon := MeasurementStart.Add(12 * Hour)
	if noon.Day() != MeasurementStart.Day() {
		t.Error("same calendar day expected")
	}
	if noon.StartOfDay() != MeasurementStart {
		t.Error("StartOfDay should truncate to midnight")
	}
	next := MeasurementStart.Add(Day)
	if next.Day() != MeasurementStart.Day()+1 {
		t.Error("next day expected")
	}
	if next.DayIndex(MeasurementStart) != 1 {
		t.Error("DayIndex wrong")
	}
}

func TestAddSub(t *testing.T) {
	a := FromDate(2019, time.July, 15)
	b := a.Add(3 * Hour)
	if b.Sub(a) != 3*Hour {
		t.Error("Sub wrong")
	}
	if !a.Before(b) || !b.After(a) {
		t.Error("ordering wrong")
	}
}

func TestWindowContains(t *testing.T) {
	w := MainPeriod()
	if !w.Contains(MeasurementStart) {
		t.Error("window should contain its start")
	}
	if w.Contains(MeasurementEnd) {
		t.Error("window should exclude its end")
	}
	if w.Contains(MeasurementEnd-1) == false {
		t.Error("window should contain end-1")
	}
}

func TestEachDay(t *testing.T) {
	w := Window{FromDate(2019, time.June, 1), FromDate(2019, time.June, 5)}
	var days []string
	w.EachDay(func(d Time) { days = append(days, d.Date()) })
	if len(days) != 4 {
		t.Fatalf("EachDay visited %d days, want 4", len(days))
	}
	if days[0] != "2019-06-01" || days[3] != "2019-06-04" {
		t.Errorf("days = %v", days)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{30, "30s"},
		{7 * Minute, "7m00s"},
		{33*Minute + 5, "33m05s"},
		{2*Hour + 5*Minute, "2h05m"},
		{3*Day + 2*Hour, "3d02h"},
		{-30, "-30s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestRoundTripStd(t *testing.T) {
	f := func(sec int64) bool {
		sec = sec % (1 << 40) // keep within sane time range
		if sec < 0 {
			sec = -sec
		}
		tt := Time(sec)
		return FromTime(tt.Std()) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDayIndexConsistentWithEachDay(t *testing.T) {
	w := MainPeriod()
	i := 0
	w.EachDay(func(d Time) {
		if d.DayIndex(w.Start) != i {
			t.Fatalf("day %s index %d, want %d", d.Date(), d.DayIndex(w.Start), i)
		}
		i++
	})
	if i != w.Days() {
		t.Fatalf("EachDay count %d != Days() %d", i, w.Days())
	}
}

func TestHelpers(t *testing.T) {
	if Days(2) != 2*Day || Hours(3) != 3*Hour || Minutes(4) != 4*Minute {
		t.Error("helper conversions wrong")
	}
}
