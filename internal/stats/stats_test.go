package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := e.P(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P(5) = %v, want 0.5", got)
	}
	if got := e.P(0); got != 0 {
		t.Errorf("P(0) = %v, want 0", got)
	}
	if got := e.P(10); got != 1 {
		t.Errorf("P(10) = %v, want 1", got)
	}
	if got := e.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := e.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := e.Max(); got != 10 {
		t.Errorf("Max = %v, want 10", got)
	}
	if got := e.Mean(); got != 5.5 {
		t.Errorf("Mean = %v, want 5.5", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.P(1) != 0 {
		t.Error("empty ECDF should return P=0")
	}
	if e.Mean() != 0 {
		t.Error("empty ECDF mean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty ECDF should panic")
		}
	}()
	e.Quantile(0.5)
}

func TestECDFAddUnsorted(t *testing.T) {
	var e ECDF
	for _, v := range []float64{9, 1, 5, 3, 7} {
		e.Add(v)
	}
	if got := e.Quantile(1); got != 9 {
		t.Errorf("max = %v, want 9", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
}

func TestECDFQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		e := NewECDF(vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := e.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	pts := e.Points(0)
	if len(pts) != 4 {
		t.Fatalf("Points(0) = %d points, want 4", len(pts))
	}
	if pts[3].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[3].Y)
	}
	if pts[0].X != 1 {
		t.Errorf("first point X = %v, want 1", pts[0].X)
	}
	// n larger than samples clamps.
	if got := len(e.Points(100)); got != 4 {
		t.Errorf("Points(100) = %d, want 4", got)
	}
}

func TestDecileRank(t *testing.T) {
	var e ECDF
	for i := 1; i <= 100; i++ {
		e.AddInt(i)
	}
	cases := []struct {
		v    float64
		want int
	}{{1, 1}, {10, 1}, {11, 2}, {55, 6}, {100, 10}, {1000, 10}}
	for _, c := range cases {
		if got := e.DecileRank(c.v); got != c.want {
			t.Errorf("DecileRank(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestJaccard(t *testing.T) {
	a := SetOf([]string{"x", "y", "z"})
	b := SetOf([]string{"y", "z", "w"})
	if got := Jaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(empty) = %v, want 1", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
	if got := Jaccard(a, SetOf([]string{"q"})); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := SetOf(xs), SetOf(ys)
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardRange(t *testing.T) {
	f := func(xs, ys []string) bool {
		j := Jaccard(SetOf(xs), SetOf(ys))
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiJaccard(t *testing.T) {
	a := SetOf([]string{"1", "2", "3"})
	b := SetOf([]string{"2", "3", "4"})
	c := SetOf([]string{"3", "4", "5"})
	// intersection {3}, union {1..5}
	if got := MultiJaccard(a, b, c); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("MultiJaccard = %v, want 0.2", got)
	}
	if got := MultiJaccard(a, a, a); got != 1 {
		t.Errorf("MultiJaccard(a,a,a) = %v, want 1", got)
	}
	if got := MultiJaccard(); got != 1 {
		t.Errorf("MultiJaccard() = %v, want 1", got)
	}
	// Two-set MultiJaccard must agree with Jaccard.
	if MultiJaccard(a, b) != Jaccard(a, b) {
		t.Error("MultiJaccard(a,b) != Jaccard(a,b)")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(map[string]int{"a": 1, "b": 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Entropy(uniform 2) = %v, want 1", got)
	}
	if got := Entropy(map[string]int{"a": 4}); got != 0 {
		t.Errorf("Entropy(single) = %v, want 0", got)
	}
	if got := Entropy(map[string]int{}); got != 0 {
		t.Errorf("Entropy(empty) = %v, want 0", got)
	}
	u4 := Entropy(map[int]int{1: 5, 2: 5, 3: 5, 4: 5})
	if math.Abs(u4-2) > 1e-9 {
		t.Errorf("Entropy(uniform 4) = %v, want 2", u4)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10)
	for _, v := range []float64{1, 5, 15, 25, 25, -3} {
		h.Observe(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d, want 6", h.N)
	}
	if h.Bins[0] != 3 { // 1, 5, clamped -3
		t.Errorf("bin0 = %d, want 3", h.Bins[0])
	}
	if h.Bins[1] != 1 || h.Bins[2] != 2 {
		t.Errorf("bins = %v", h.Bins)
	}
	if h.Mode() != 0 {
		t.Errorf("Mode = %d, want 0", h.Mode())
	}
	if h.BinCenter(1) != 15 {
		t.Errorf("BinCenter(1) = %v, want 15", h.BinCenter(1))
	}
}

func TestHistogramPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0,0) should panic")
		}
	}()
	NewHistogram(0, 0)
}

func TestLogBucket(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1, 0}, {9, 0}, {10, 1}, {99, 1}, {100, 2}, {16000, 4}}
	for _, c := range cases {
		if got := LogBucket(c.v); got != c.want {
			t.Errorf("LogBucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Inc("a")
	c.Addn("b", 5)
	c.Inc("c")
	if c.Get("a") != 2 || c.Get("b") != 5 {
		t.Fatal("counts wrong")
	}
	if c.Total() != 8 {
		t.Errorf("Total = %d, want 8", c.Total())
	}
	top := c.Top(2)
	if len(top) != 2 || top[0].Key != "b" || top[1].Key != "a" {
		t.Errorf("Top(2) = %v", top)
	}
	all := c.Top(0)
	if len(all) != 3 {
		t.Errorf("Top(0) = %v", all)
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestCounterTopDeterministicTies(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"z", "m", "a"} {
		c.Inc(k)
	}
	top := c.Top(3)
	if top[0].Key != "a" || top[1].Key != "m" || top[2].Key != "z" {
		t.Errorf("tie order not lexicographic: %v", top)
	}
}

func TestBinomialBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 100, 10000, 1000000} {
		for _, p := range []float64{0, 1e-5, 0.001, 0.5, 0.999, 1} {
			k := Binomial(rng, n, p)
			if k < 0 || k > n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", n, p, k)
			}
		}
	}
}

func TestBinomialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// 16k packets at 1:16k sampling: mean should be ~1.
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += Binomial(rng, 16000, 1.0/16384)
	}
	mean := float64(sum) / trials
	want := 16000.0 / 16384
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("empirical mean %v, want ~%v", mean, want)
	}
}

func TestBinomialLargeRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Normal-approximation regime: n*p large.
	const n, p, trials = 100000, 0.01, 5000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(Binomial(rng, n, p))
	}
	mean := sum / trials
	if math.Abs(mean-1000) > 10 {
		t.Errorf("mean %v, want ~1000", mean)
	}
}

func TestZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		r := z.Draw(rng)
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[1] <= counts[10] {
		t.Errorf("Zipf not decreasing: rank1=%d rank10=%d", counts[1], counts[10])
	}
}

func TestPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		v := Pareto(rng, 10, 1000, 1.2)
		if v < 10-1e-6 || v > 1000+1e-6 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := SampleWithoutReplacement(rng, xs, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
	}
	all := SampleWithoutReplacement(rng, xs, 99)
	if len(all) != len(xs) {
		t.Fatalf("oversample len = %d, want %d", len(all), len(xs))
	}
}

func TestPercentAndRatio(t *testing.T) {
	if got := Percent(1, 4); got != "25.0%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Errorf("Percent(1,0) = %q", got)
	}
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]int{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
	if Sum([]int{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
}
