package stats

import (
	"math"
	"math/rand"
)

// Binomial draws from Binomial(n, p) using rng. For large n it uses a
// normal approximation (with continuity correction) which is both accurate
// and O(1); for small n it sums Bernoulli trials exactly. This is the
// "binomial thinning" primitive behind the 1:16k sFlow sampler: instead of
// materialising n packets and sampling each, we draw how many of the n
// would have been sampled.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exact for small n or very small expected counts.
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 32 {
		// Poisson-like regime: inversion by sequential search on the
		// binomial pmf is exact and fast because k stays small.
		return binomialInversion(rng, n, p)
	}
	// Normal approximation with continuity correction.
	sd := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(rng.NormFloat64()*sd + mean))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// binomialInversion draws Binomial(n,p) by inverting the CDF with a
// sequential pmf recurrence. Intended for n*p < ~32 where it terminates
// quickly.
func binomialInversion(rng *rand.Rand, n int, p float64) int {
	q := 1 - p
	// pmf(0) = q^n computed in log space to avoid underflow.
	logPMF := float64(n) * math.Log(q)
	pmf := math.Exp(logPMF)
	u := rng.Float64()
	k := 0
	cdf := pmf
	for u > cdf && k < n {
		// pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q
		pmf *= float64(n-k) / float64(k+1) * p / q
		k++
		cdf += pmf
		if pmf < 1e-300 { // numerical floor; tail mass negligible
			break
		}
	}
	return k
}

// Zipf draws ranks 1..n with exponent s using a precomputed CDF. It is a
// small deterministic alternative to rand.Zipf that permits s <= 1 and
// re-seeding per draw site.
type Zipf struct {
	cdf []float64
}

// NewZipf prepares a Zipf distribution over ranks 1..n with exponent s.
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Pareto draws a bounded Pareto-distributed float in [lo, hi] with shape
// alpha. Used for heavy-tailed attack durations and intensities.
func Pareto(rng *rand.Rand, lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Pick returns a uniformly chosen element of xs.
func Pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// Shuffle permutes xs in place.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement returns k distinct elements of xs chosen
// uniformly. If k >= len(xs) a shuffled copy of xs is returned.
func SampleWithoutReplacement[T any](rng *rand.Rand, xs []T, k int) []T {
	n := len(xs)
	if k >= n {
		out := append([]T(nil), xs...)
		Shuffle(rng, out)
		return out
	}
	// Partial Fisher-Yates over a copy of indices.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, xs[idx[i]])
	}
	return out
}
