// Package stats provides the small statistical toolkit used throughout the
// reproduction: empirical CDFs, quantiles and deciles, Jaccard similarity,
// histograms, Shannon entropy, and deterministic sampling helpers.
//
// Everything here is allocation-conscious and deterministic: no global
// random state, no wall-clock reads.
package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is an empty distribution; add samples with Add
// and call Sort (or any query method, which sorts lazily) before querying.
type ECDF struct {
	samples []float64
	sorted  bool
}

// NewECDF returns an ECDF pre-loaded with the given samples.
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{samples: append([]float64(nil), samples...)}
	e.Sort()
	return e
}

// Add appends one sample.
func (e *ECDF) Add(v float64) {
	e.samples = append(e.samples, v)
	e.sorted = false
}

// AddInt appends one integer sample.
func (e *ECDF) AddInt(v int) { e.Add(float64(v)) }

// Len reports the number of samples.
func (e *ECDF) Len() int { return len(e.samples) }

// Sort orders the underlying samples; queries call it implicitly.
func (e *ECDF) Sort() {
	if !e.sorted {
		slices.Sort(e.samples)
		e.sorted = true
	}
}

// P returns the fraction of samples <= v, i.e. F(v). It returns 0 for an
// empty distribution.
func (e *ECDF) P(v float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.Sort()
	idx := sort.SearchFloat64s(e.samples, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(e.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method. It panics if the distribution is empty or q is out of range.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.samples) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	e.Sort()
	if q == 0 {
		return e.samples[0]
	}
	rank := int(math.Ceil(q*float64(len(e.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(e.samples) {
		rank = len(e.samples) - 1
	}
	return e.samples[rank]
}

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.Quantile(0) }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.Quantile(1) }

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (e *ECDF) Mean() float64 {
	if len(e.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.samples {
		sum += v
	}
	return sum / float64(len(e.samples))
}

// Points returns up to n evenly spaced (x, F(x)) pairs suitable for
// plotting the CDF. With n <= 0 every distinct sample is emitted.
func (e *ECDF) Points(n int) []Point {
	e.Sort()
	m := len(e.samples)
	if m == 0 {
		return nil
	}
	if n <= 0 || n > m {
		n = m
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * m / n
		if idx > m {
			idx = m
		}
		x := e.samples[idx-1]
		pts = append(pts, Point{X: x, Y: float64(idx) / float64(m)})
	}
	return pts
}

// Point is a generic (x, y) pair used by plotting-oriented outputs.
type Point struct {
	X, Y float64
}

// DecileRank maps a value to its decile rank 1..10 within the
// distribution: the decile of the smallest samples is 1, of the largest 10.
func (e *ECDF) DecileRank(v float64) int {
	p := e.P(v)
	d := int(math.Ceil(p * 10))
	if d < 1 {
		d = 1
	}
	if d > 10 {
		d = 10
	}
	return d
}

// Jaccard returns the Jaccard index |a∩b| / |a∪b| of two string sets.
// Two empty sets have index 1 by convention.
func Jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// JaccardSlices returns the Jaccard index of two string slices,
// deduplicating first.
func JaccardSlices(a, b []string) float64 {
	return Jaccard(SetOf(a), SetOf(b))
}

// JaccardDistance returns 1 - Jaccard(a, b).
func JaccardDistance(a, b map[string]bool) float64 { return 1 - Jaccard(a, b) }

// SetOf builds a set from a slice.
func SetOf(items []string) map[string]bool {
	s := make(map[string]bool, len(items))
	for _, it := range items {
		s[it] = true
	}
	return s
}

// MultiJaccard returns the Jaccard index of the intersection and union of
// k >= 2 sets: |∩ sets| / |∪ sets|. It is the "selector consensus" metric
// from §4.1 of the paper.
func MultiJaccard(sets ...map[string]bool) float64 {
	if len(sets) == 0 {
		return 1
	}
	union := make(map[string]bool)
	for _, s := range sets {
		for k := range s {
			union[k] = true
		}
	}
	if len(union) == 0 {
		return 1
	}
	inter := 0
outer:
	for k := range union {
		for _, s := range sets {
			if !s[k] {
				continue outer
			}
		}
		inter++
	}
	return float64(inter) / float64(len(union))
}

// Entropy returns the Shannon entropy (bits) of a discrete count
// distribution.
func Entropy[K comparable](counts map[K]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Histogram accumulates integer-valued observations into fixed-width bins
// starting at Origin. Bin i covers [Origin + i*Width, Origin + (i+1)*Width).
type Histogram struct {
	Origin float64
	Width  float64
	Bins   []int
	N      int
}

// NewHistogram returns a histogram with the given origin and bin width.
// Width must be positive.
func NewHistogram(origin, width float64) *Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return &Histogram{Origin: origin, Width: width}
}

// Observe adds one observation, growing the bin slice as needed. Values
// below Origin are clamped into the first bin.
func (h *Histogram) Observe(v float64) {
	idx := int(math.Floor((v - h.Origin) / h.Width))
	if idx < 0 {
		idx = 0
	}
	for len(h.Bins) <= idx {
		h.Bins = append(h.Bins, 0)
	}
	h.Bins[idx]++
	h.N++
}

// BinCenter returns the center x of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Origin + (float64(i)+0.5)*h.Width
}

// Mode returns the index of the fullest bin, or -1 when empty.
func (h *Histogram) Mode() int {
	best, idx := -1, -1
	for i, c := range h.Bins {
		if c > best {
			best, idx = c, i
		}
	}
	return idx
}

// LogBuckets assigns v to a logarithmic bucket: 0 for v<=1, otherwise
// floor(log10(v)). Used for the log-scale scatter summaries (Figs. 4, 10).
func LogBucket(v float64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Floor(math.Log10(v)))
}

// Counter is a string counter with deterministic ordered output.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.counts[key]++ }

// Addn increments key by n.
func (c *Counter) Addn(key string, n int) { c.counts[key] += n }

// Get returns the count for key.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Len reports the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Total returns the sum of all counts.
func (c *Counter) Total() int {
	t := 0
	for _, v := range c.counts {
		t += v
	}
	return t
}

// KV is a key/count pair.
type KV struct {
	Key   string
	Count int
}

// Top returns the n highest-count entries, ties broken lexicographically
// so output is deterministic. n <= 0 returns all entries.
func (c *Counter) Top(n int) []KV {
	kvs := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		kvs = append(kvs, KV{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Count != kvs[j].Count {
			return kvs[i].Count > kvs[j].Count
		}
		return kvs[i].Key < kvs[j].Key
	})
	if n > 0 && n < len(kvs) {
		kvs = kvs[:n]
	}
	return kvs
}

// Keys returns all keys in lexicographic order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Mean returns the arithmetic mean of ints.
func Mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Sum adds up a slice of ints.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percent formats a ratio as a percentage with one decimal.
func Percent(part, whole int) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Ratio returns part/whole as float, 0 when whole is 0.
func Ratio(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
