// Package resolver models the behaviour of the DNS infrastructure that
// amplification attacks abuse: open recursive resolvers, transparent
// forwarders (98% of open amplifiers per the paper), and authoritative
// nameservers. It implements TTL-decrementing caches (the mechanism the
// cache-snooping study of Appendix C exploits), response rate limiting
// (RRL), and RFC 8482 minimal-ANY behaviour.
package resolver

import (
	"net/netip"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

// Kind classifies a DNS endpoint.
type Kind int

// Endpoint kinds.
const (
	// Recursive is an open recursive resolver: it answers from cache or
	// resolves against authoritative data and caches the result.
	Recursive Kind = iota
	// Forwarder is a transparent forwarder (e.g. a home router): it
	// relays to an upstream recursive resolver and inherits that
	// resolver's cache state, including decremented TTLs.
	Forwarder
	// Authoritative answers only for its own zones and never
	// recursively resolves — which is why only ~2% of abused amplifiers
	// are authoritative servers (§7.1).
	Authoritative
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Recursive:
		return "recursive"
	case Forwarder:
		return "forwarder"
	default:
		return "authoritative"
	}
}

// RRLConfig is a response-rate-limiting policy.
type RRLConfig struct {
	Enabled bool
	// ResponsesPerSecond is the per-client budget before slipping.
	ResponsesPerSecond int
}

// cacheKey identifies a cached RRset.
type cacheKey struct {
	name  string
	qtype dnswire.Type
}

type cacheEntry struct {
	expires    simclock.Time
	defaultTTL uint32
	size       int
}

// Resolver is one simulated DNS endpoint.
type Resolver struct {
	Addr netip.Addr
	Kind Kind
	// Upstream is the recursive resolver a forwarder relays to.
	Upstream *Resolver
	// RRL is the rate-limiting policy, if any.
	RRL RRLConfig
	// MinimalANY makes the endpoint answer ANY queries with an RFC 8482
	// minimal response.
	MinimalANY bool
	// Zones is the authority set (Authoritative kind only).
	Zones []*zonedb.Zone

	db    *zonedb.DB
	cache map[cacheKey]cacheEntry

	// rrlWindow tracks the current one-second accounting window.
	rrlWindow simclock.Time
	rrlCount  int
}

// New creates a resolver backed by the namespace db.
func New(addr netip.Addr, kind Kind, db *zonedb.DB) *Resolver {
	return &Resolver{Addr: addr, Kind: kind, db: db, cache: make(map[cacheKey]cacheEntry)}
}

// Result describes the outcome of handling one query.
type Result struct {
	// Answered is false when the endpoint dropped the query (RRL slip,
	// authoritative REFUSED for foreign names, ...).
	Answered bool
	// Size is the response size in bytes.
	Size int
	// CacheHit reports whether the answer came from cache.
	CacheHit bool
	// TTL is the TTL the client observes (decremented on cache hits —
	// the cache-snooping signal).
	TTL uint32
	// DefaultTTL is the authoritative TTL of the RRset.
	DefaultTTL uint32
	// RCode of the response.
	RCode dnswire.RCode
	// Minimal reports an RFC 8482 minimal-ANY answer.
	Minimal bool
}

// Handle processes a query for (name, qtype) arriving at time t and
// returns the response description. The spoofed source address is
// irrelevant to the resolver; reflection happens at the transport layer.
func (r *Resolver) Handle(name string, qtype dnswire.Type, t simclock.Time) Result {
	if r.RRL.Enabled && !r.allowRRL(t) {
		return Result{}
	}
	switch r.Kind {
	case Authoritative:
		return r.handleAuthoritative(name, qtype, t)
	case Forwarder:
		if r.Upstream == nil {
			return Result{}
		}
		res := r.Upstream.Handle(name, qtype, t)
		// A transparent forwarder relays the upstream answer verbatim
		// (inheriting decremented TTLs), which is why forwarders must
		// be excluded from cache snooping (Appendix C phase 1).
		return res
	default:
		return r.handleRecursive(name, qtype, t)
	}
}

func (r *Resolver) handleAuthoritative(name string, qtype dnswire.Type, t simclock.Time) Result {
	cn := dnswire.CanonicalName(name)
	for _, z := range r.Zones {
		if z.Name == cn {
			if qtype == dnswire.TypeANY && (r.MinimalANY || !z.AllowANY) {
				return Result{Answered: true, Size: minimalANYSize(cn), TTL: z.TTL, DefaultTTL: z.TTL, Minimal: true}
			}
			size := r.db.ResponseSize(cn, qtype, t)
			return Result{Answered: true, Size: size, TTL: z.TTL, DefaultTTL: z.TTL}
		}
	}
	// Authoritative servers refuse queries outside their authority with
	// a small REFUSED response.
	return Result{Answered: true, Size: refusedSize(cn), RCode: dnswire.RCodeRefused, Minimal: true}
}

func (r *Resolver) handleRecursive(name string, qtype dnswire.Type, t simclock.Time) Result {
	cn := dnswire.CanonicalName(name)
	if qtype == dnswire.TypeANY && r.MinimalANY {
		return Result{Answered: true, Size: minimalANYSize(cn), TTL: 3600, DefaultTTL: 3600, Minimal: true}
	}
	key := cacheKey{cn, qtype}
	if e, ok := r.cache[key]; ok && t.Before(e.expires) {
		remaining := uint32(e.expires.Sub(t))
		return Result{
			Answered: true, Size: e.size, CacheHit: true,
			TTL: remaining, DefaultTTL: e.defaultTTL,
		}
	}
	// Cache miss: resolve against authoritative data.
	size := r.db.ResponseSize(cn, qtype, t)
	ttl := r.defaultTTLFor(cn)
	r.cache[key] = cacheEntry{
		expires:    t.Add(simclock.Duration(ttl)),
		defaultTTL: ttl,
		size:       size,
	}
	return Result{Answered: true, Size: size, TTL: ttl, DefaultTTL: ttl}
}

// defaultTTLFor returns the authoritative TTL of a name.
func (r *Resolver) defaultTTLFor(cn string) uint32 {
	if z, ok := r.db.Zone(cn); ok {
		return z.TTL
	}
	return 3600
}

// Warm inserts a cache entry as if the name had just been resolved at t,
// used to model organic popularity-driven cache contents.
func (r *Resolver) Warm(name string, qtype dnswire.Type, t simclock.Time) {
	if r.Kind != Recursive {
		if r.Upstream != nil {
			r.Upstream.Warm(name, qtype, t)
		}
		return
	}
	cn := dnswire.CanonicalName(name)
	ttl := r.defaultTTLFor(cn)
	r.cache[cacheKey{cn, qtype}] = cacheEntry{
		expires:    t.Add(simclock.Duration(ttl)),
		defaultTTL: ttl,
		size:       r.db.ResponseSize(cn, qtype, t),
	}
}

// Cached reports whether (name, qtype) is live in the cache at t.
func (r *Resolver) Cached(name string, qtype dnswire.Type, t simclock.Time) bool {
	if r.Kind == Forwarder && r.Upstream != nil {
		return r.Upstream.Cached(name, qtype, t)
	}
	e, ok := r.cache[cacheKey{dnswire.CanonicalName(name), qtype}]
	return ok && t.Before(e.expires)
}

// FlushExpired drops dead entries; callers may invoke it periodically to
// bound memory in long campaigns.
func (r *Resolver) FlushExpired(t simclock.Time) {
	for k, e := range r.cache {
		if !t.Before(e.expires) {
			delete(r.cache, k)
		}
	}
}

// CacheLen returns the number of live plus stale entries held.
func (r *Resolver) CacheLen() int { return len(r.cache) }

// allowRRL implements a fixed-window per-second budget.
func (r *Resolver) allowRRL(t simclock.Time) bool {
	if t != r.rrlWindow {
		r.rrlWindow = t
		r.rrlCount = 0
	}
	r.rrlCount++
	return r.rrlCount <= r.RRL.ResponsesPerSecond
}

// minimalANYSize is the wire size of an RFC 8482 HINFO-style minimal
// answer.
func minimalANYSize(cn string) int {
	return dnswire.HeaderLen + dnswire.EncodedNameLen(cn) + 4 + // question
		dnswire.EncodedNameLen(cn) + 10 + 9 + 11 // HINFO RR + OPT
}

// refusedSize is the wire size of an empty REFUSED response.
func refusedSize(cn string) int {
	return dnswire.HeaderLen + dnswire.EncodedNameLen(cn) + 4
}

// AmplificationFactor is the response/request size ratio for a query of
// qtype for name at time t via this resolver, ignoring rate limiting.
func (r *Resolver) AmplificationFactor(name string, qtype dnswire.Type, t simclock.Time) float64 {
	req := dnswire.HeaderLen + dnswire.EncodedNameLen(dnswire.CanonicalName(name)) + 4 + 11
	res := r.Handle(name, qtype, t)
	if !res.Answered || req == 0 {
		return 0
	}
	return float64(res.Size) / float64(req)
}
