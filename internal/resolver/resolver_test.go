package resolver

import (
	"net/netip"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

var testDB = zonedb.New(zonedb.Config{ProceduralNames: 10_000})

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestRecursiveCacheHitDecrementsTTL(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	t0 := simclock.MeasurementStart
	res1 := r.Handle("doj.gov", dnswire.TypeANY, t0)
	if !res1.Answered || res1.CacheHit {
		t.Fatalf("first query should miss: %+v", res1)
	}
	if res1.TTL != res1.DefaultTTL {
		t.Errorf("miss TTL %d != default %d", res1.TTL, res1.DefaultTTL)
	}
	res2 := r.Handle("doj.gov", dnswire.TypeANY, t0.Add(100))
	if !res2.CacheHit {
		t.Fatal("second query should hit")
	}
	if res2.TTL != res2.DefaultTTL-100 {
		t.Errorf("hit TTL = %d, want %d", res2.TTL, res2.DefaultTTL-100)
	}
	if res2.Size != res1.Size {
		t.Errorf("cached size %d != original %d", res2.Size, res1.Size)
	}
}

func TestCacheExpiry(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	t0 := simclock.MeasurementStart
	r.Handle("doj.gov", dnswire.TypeA, t0)
	z, _ := testDB.Zone("doj.gov")
	after := t0.Add(simclock.Duration(z.TTL) + 1)
	res := r.Handle("doj.gov", dnswire.TypeA, after)
	if res.CacheHit {
		t.Error("expired entry should miss")
	}
	if r.Cached("doj.gov", dnswire.TypeA, after.Add(simclock.Duration(z.TTL)+1)) {
		t.Error("Cached should report false after expiry")
	}
}

func TestForwarderInheritsUpstreamCache(t *testing.T) {
	up := New(addr("192.0.2.1"), Recursive, testDB)
	fw := New(addr("198.51.100.1"), Forwarder, testDB)
	fw.Upstream = up
	t0 := simclock.MeasurementStart
	up.Handle("nsf.gov", dnswire.TypeANY, t0)
	res := fw.Handle("nsf.gov", dnswire.TypeANY, t0.Add(50))
	if !res.CacheHit {
		t.Error("forwarder should relay upstream cache hit")
	}
	if res.TTL >= res.DefaultTTL {
		t.Error("forwarder should inherit decremented TTL")
	}
}

func TestForwarderWithoutUpstream(t *testing.T) {
	fw := New(addr("198.51.100.1"), Forwarder, testDB)
	if res := fw.Handle("nsf.gov", dnswire.TypeA, 0); res.Answered {
		t.Error("orphan forwarder should not answer")
	}
}

func TestAuthoritativeScope(t *testing.T) {
	z, _ := testDB.Zone("doj.gov")
	r := New(addr("192.0.2.53"), Authoritative, testDB)
	r.Zones = []*zonedb.Zone{z}
	t0 := simclock.MeasurementStart

	res := r.Handle("doj.gov", dnswire.TypeANY, t0)
	if !res.Answered || res.RCode != dnswire.RCodeNoError {
		t.Fatalf("in-zone query failed: %+v", res)
	}
	if res.Size < 3000 {
		t.Errorf("authoritative ANY size = %d, want large", res.Size)
	}
	// Out-of-zone: REFUSED, small.
	res = r.Handle("example.net", dnswire.TypeA, t0)
	if res.RCode != dnswire.RCodeRefused {
		t.Errorf("out-of-zone rcode = %v, want REFUSED", res.RCode)
	}
	if res.Size > 100 {
		t.Errorf("REFUSED size = %d, want tiny", res.Size)
	}
}

func TestMinimalANY(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	r.MinimalANY = true
	res := r.Handle("doj.gov", dnswire.TypeANY, simclock.MeasurementStart)
	if !res.Minimal {
		t.Fatal("expected minimal ANY")
	}
	if res.Size > 200 {
		t.Errorf("minimal ANY size = %d", res.Size)
	}
	// Non-ANY queries unaffected.
	res = r.Handle("doj.gov", dnswire.TypeA, simclock.MeasurementStart)
	if res.Minimal {
		t.Error("A query should not be minimal")
	}
}

func TestRRL(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	r.RRL = RRLConfig{Enabled: true, ResponsesPerSecond: 3}
	t0 := simclock.MeasurementStart
	answered := 0
	for i := 0; i < 10; i++ {
		if r.Handle("doj.gov", dnswire.TypeANY, t0).Answered {
			answered++
		}
	}
	if answered != 3 {
		t.Errorf("answered %d in one window, want 3", answered)
	}
	// Next second: budget resets.
	if !r.Handle("doj.gov", dnswire.TypeANY, t0.Add(1)).Answered {
		t.Error("budget should reset in a new window")
	}
}

func TestWarmAndSnoopSignal(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	t0 := simclock.MeasurementStart
	r.Warm("peacecorps.gov", dnswire.TypeANY, t0.Add(-600))
	res := r.Handle("peacecorps.gov", dnswire.TypeANY, t0)
	if !res.CacheHit {
		t.Fatal("warmed entry should hit")
	}
	if res.TTL >= res.DefaultTTL {
		t.Error("snooping signal lost: TTL not decremented")
	}
}

func TestWarmThroughForwarder(t *testing.T) {
	up := New(addr("192.0.2.1"), Recursive, testDB)
	fw := New(addr("198.51.100.1"), Forwarder, testDB)
	fw.Upstream = up
	fw.Warm("doj.gov", dnswire.TypeA, 0)
	if !up.Cached("doj.gov", dnswire.TypeA, 1) {
		t.Error("Warm via forwarder should populate the upstream")
	}
}

func TestFlushExpired(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	t0 := simclock.MeasurementStart
	r.Handle("doj.gov", dnswire.TypeA, t0)
	r.Handle("nsf.gov", dnswire.TypeA, t0)
	if r.CacheLen() != 2 {
		t.Fatalf("cache len = %d", r.CacheLen())
	}
	r.FlushExpired(t0.Add(simclock.Days(2)))
	if r.CacheLen() != 0 {
		t.Errorf("cache len after flush = %d", r.CacheLen())
	}
}

func TestAmplificationFactor(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	af := r.AmplificationFactor("bigcorp.com", dnswire.TypeANY, simclock.MeasurementStart)
	// bigcorp.com ANY is ~10 kB; the query is ~40 B: expect > 100x.
	if af < 50 {
		t.Errorf("amplification factor = %v, want large", af)
	}
	small := r.AmplificationFactor("facebook.com", dnswire.TypeANY, simclock.MeasurementStart)
	if small >= af {
		t.Errorf("RFC 8482 zone amplification %v should be below %v", small, af)
	}
}

func TestProceduralNamesResolve(t *testing.T) {
	r := New(addr("192.0.2.1"), Recursive, testDB)
	res := r.Handle(testDB.ProceduralName(42), dnswire.TypeA, simclock.MeasurementStart)
	if !res.Answered || res.Size < 40 {
		t.Errorf("procedural lookup failed: %+v", res)
	}
}

func TestKindString(t *testing.T) {
	if Recursive.String() != "recursive" || Forwarder.String() != "forwarder" || Authoritative.String() != "authoritative" {
		t.Error("kind names wrong")
	}
}
