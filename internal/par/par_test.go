package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		For(n, workers, func(worker, i int) {
			if worker < 0 || (workers > 1 && worker >= workers) {
				t.Errorf("workers=%d: worker id %d out of range", workers, worker)
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroLength(t *testing.T) {
	For(0, 4, func(worker, i int) { t.Error("fn called for n=0") })
}
