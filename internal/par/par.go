// Package par provides the indexed parallel-for shared by the
// worker-pooled pipeline stages.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(worker, i) for every i in [0, n) across up to workers
// goroutines. Indices are handed out through an atomic counter, so
// assignment is load-balanced and each worker's index sequence is
// increasing. Determinism is the caller's contract: fn must write only
// to per-index or per-worker slots (worker is in [0, workers) and
// identifies the calling goroutine). With workers <= 1 it degenerates
// to a plain loop.
func For(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
