package binenc

import (
	"bytes"
	"errors"
	"math"
	"net/netip"
	"testing"
)

var errTest = errors.New("test: bad input")

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(math.Pi)
	e.Str("hello")
	e.Str("")
	e.Addr(netip.MustParseAddr("192.0.2.1"))
	e.Addr(netip.MustParseAddr("2001:db8::1"))
	e.Addr(netip.Addr{})
	e.Raw([]byte{1, 2, 3})
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	d := NewDecoder(buf.Bytes(), errTest)
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if got := d.Addr(); got != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("Addr v4 = %v", got)
	}
	if got := d.Addr(); got != netip.MustParseAddr("2001:db8::1") {
		t.Errorf("Addr v6 = %v", got)
	}
	if got := d.Addr(); got.IsValid() {
		t.Errorf("zero Addr = %v", got)
	}
	if got := d.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

// TestDecoderPoisons: a truncated read latches an error wrapping the
// sentinel, and every later read returns zero values without panics.
func TestDecoderPoisons(t *testing.T) {
	d := NewDecoder([]byte{1, 2}, errTest)
	if got := d.U64(); got != 0 {
		t.Errorf("truncated U64 = %d", got)
	}
	if !errors.Is(d.Err(), errTest) {
		t.Fatalf("err = %v, want wrapping sentinel", d.Err())
	}
	if got := d.U32(); got != 0 {
		t.Errorf("post-poison U32 = %d", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("post-poison Str = %q", got)
	}
}

// TestCountRejectsOversize: a count that cannot fit the remaining
// input fails instead of driving a huge allocation.
func TestCountRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.U32(1 << 30)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(buf.Bytes(), errTest)
	if got := d.Count(8); got != 0 {
		t.Errorf("oversize Count = %d", got)
	}
	if !errors.Is(d.Err(), errTest) {
		t.Fatalf("err = %v", d.Err())
	}
}
