// Package binenc is the shared little-endian binary codec behind the
// repo's persisted artifacts: the columnar batch snapshots
// (internal/source) and the service checkpoints (internal/server,
// internal/core) serialize through the same Encoder/Decoder pair, so
// every on-disk format inherits the same properties — deterministic
// byte layout, error latching on the first failed write, and
// saturating bounds checks on read (corrupt counts fail cleanly
// instead of allocating unbounded memory or panicking).
package binenc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/netip"
)

// Encoder writes fixed-layout little-endian values, latching the first
// write error. Construct with NewEncoder; call Flush once after the
// last value.
type Encoder struct {
	w   *bufio.Writer
	err error
	tmp [8]byte
}

// NewEncoder wraps w in a buffered little-endian value writer.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 1<<16)}
}

// Err returns the latched write error, nil while healthy.
func (e *Encoder) Err() error { return e.err }

// Flush drains the buffer and returns the latched error, if any.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Raw writes b verbatim.
func (e *Encoder) Raw(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) {
	if e.err == nil {
		e.err = e.w.WriteByte(v)
	}
}

// Bool writes a bool as one byte (1 true, 0 false).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 writes a little-endian uint16.
func (e *Encoder) U16(v uint16) {
	binary.LittleEndian.PutUint16(e.tmp[:2], v)
	e.Raw(e.tmp[:2])
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	binary.LittleEndian.PutUint32(e.tmp[:4], v)
	e.Raw(e.tmp[:4])
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], v)
	e.Raw(e.tmp[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes a float64 as its IEEE 754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str writes a u32 length prefix followed by the string bytes.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// Addr writes a netip.Addr as a length-prefixed byte form (0 for the
// zero Addr, 4 for IPv4, 16 for IPv6).
func (e *Encoder) Addr(a netip.Addr) {
	switch {
	case !a.IsValid():
		e.U8(0)
	case a.Is4():
		b := a.As4()
		e.U8(4)
		e.Raw(b[:])
	default:
		b := a.As16()
		e.U8(16)
		e.Raw(b[:])
	}
}

// Decoder reads the Encoder's layout back out of one in-memory buffer
// with saturating bounds checks: the first short read poisons the
// decoder, and every later read returns zero values. Errors wrap the
// sentinel the decoder was constructed with (so each file format keeps
// its own errors.Is identity).
type Decoder struct {
	b        []byte
	off      int
	err      error
	sentinel error
}

// NewDecoder returns a decoder over b whose errors wrap sentinel.
func NewDecoder(b []byte, sentinel error) *Decoder {
	return &Decoder{b: b, sentinel: sentinel}
}

// Err returns the latched decode error, nil while healthy.
func (d *Decoder) Err() error { return d.err }

// Offset returns the number of bytes consumed so far.
func (d *Decoder) Offset() int { return d.off }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Fail latches a decode error (wrapping the sentinel) unless one is
// already set.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", d.sentinel, fmt.Sprintf(format, args...), d.off)
	}
}

// Raw returns the next n bytes (a view into the buffer), nil on
// exhaustion.
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < 0 {
		d.Fail("truncated (want %d bytes)", n)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if v := d.Raw(1); v != nil {
		return v[0]
	}
	return 0
}

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	if v := d.Raw(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if v := d.Raw(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if v := d.Raw(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a u32-length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	if d.err == nil && n > len(d.b)-d.off {
		d.Fail("%d-byte string exceeds input", n)
		return ""
	}
	return string(d.Raw(n))
}

// Count reads a u32 element count and validates it against the bytes
// remaining at minBytes per element, so corrupt counts fail instead of
// allocating unbounded memory.
func (d *Decoder) Count(minBytes int) int {
	return d.CountAt(int(d.U32()), minBytes)
}

// CountAt validates an already-read element count the same way.
func (d *Decoder) CountAt(n, minBytes int) int {
	if d.err != nil {
		return 0
	}
	if n < 0 || n > (len(d.b)-d.off)/minBytes {
		d.Fail("count %d exceeds remaining input", n)
		return 0
	}
	return n
}

// Addr reads the length-prefixed netip.Addr form.
func (d *Decoder) Addr() netip.Addr {
	switch n := d.U8(); n {
	case 0:
		return netip.Addr{}
	case 4:
		var b [4]byte
		copy(b[:], d.Raw(4))
		return netip.AddrFrom4(b)
	case 16:
		var b [16]byte
		copy(b[:], d.Raw(16))
		return netip.AddrFrom16(b)
	default:
		d.Fail("address length %d", n)
		return netip.Addr{}
	}
}
