package binenc

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
)

// StreamDecoder is the Decoder's incremental twin: it reads the same
// little-endian layout directly from an io.Reader instead of requiring
// the whole artifact in memory first. Semantics match Decoder — the
// first short read latches an error wrapping the construction sentinel,
// every later read returns zero values — but bounds checks necessarily
// differ: a stream has no known remaining length, so corrupt counts are
// caught by *incremental* consumption (callers grow result slices as
// elements actually arrive; an absurd count runs the stream into EOF
// and latches a truncation error, with memory bounded by the bytes
// genuinely read).
type StreamDecoder struct {
	r        *bufio.Reader
	off      int
	err      error
	sentinel error
	tmp      [16]byte
}

// NewStreamDecoder returns a streaming decoder over r whose errors wrap
// sentinel.
func NewStreamDecoder(r io.Reader, sentinel error) *StreamDecoder {
	return &StreamDecoder{r: bufio.NewReaderSize(r, 1<<16), sentinel: sentinel}
}

// Err returns the latched decode error, nil while healthy.
func (d *StreamDecoder) Err() error { return d.err }

// Offset returns the number of bytes consumed so far.
func (d *StreamDecoder) Offset() int { return d.off }

// Fail latches a decode error (wrapping the sentinel) unless one is
// already set.
func (d *StreamDecoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", d.sentinel, fmt.Sprintf(format, args...), d.off)
	}
}

// read fills dst from the stream, latching a truncation error on any
// short read.
func (d *StreamDecoder) read(dst []byte) bool {
	if d.err != nil {
		return false
	}
	n, err := io.ReadFull(d.r, dst)
	d.off += n
	if err != nil {
		d.Fail("truncated (want %d bytes): %v", len(dst), err)
		return false
	}
	return true
}

// Raw reads the next n bytes into a fresh slice, nil on exhaustion.
// Unlike Decoder.Raw this allocates (there is no backing buffer to
// view); prefer RawInto on hot paths.
func (d *StreamDecoder) Raw(n int) []byte {
	if d.err != nil || n < 0 {
		if n < 0 {
			d.Fail("negative length %d", n)
		}
		return nil
	}
	b := make([]byte, n)
	if !d.read(b) {
		return nil
	}
	return b
}

// RawInto fills dst from the stream without allocating.
func (d *StreamDecoder) RawInto(dst []byte) { d.read(dst) }

// U8 reads one byte.
func (d *StreamDecoder) U8() uint8 {
	if d.read(d.tmp[:1]) {
		return d.tmp[0]
	}
	return 0
}

// Bool reads one byte as a bool.
func (d *StreamDecoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *StreamDecoder) U16() uint16 {
	if d.read(d.tmp[:2]) {
		return uint16(d.tmp[0]) | uint16(d.tmp[1])<<8
	}
	return 0
}

// U32 reads a little-endian uint32.
func (d *StreamDecoder) U32() uint32 {
	if d.read(d.tmp[:4]) {
		return uint32(d.tmp[0]) | uint32(d.tmp[1])<<8 | uint32(d.tmp[2])<<16 | uint32(d.tmp[3])<<24
	}
	return 0
}

// U64 reads a little-endian uint64.
func (d *StreamDecoder) U64() uint64 {
	if d.read(d.tmp[:8]) {
		lo := uint32(d.tmp[0]) | uint32(d.tmp[1])<<8 | uint32(d.tmp[2])<<16 | uint32(d.tmp[3])<<24
		hi := uint32(d.tmp[4]) | uint32(d.tmp[5])<<8 | uint32(d.tmp[6])<<16 | uint32(d.tmp[7])<<24
		return uint64(lo) | uint64(hi)<<32
	}
	return 0
}

// I64 reads a little-endian int64.
func (d *StreamDecoder) I64() int64 { return int64(d.U64()) }

// strChunk bounds a single allocation while draining a length-prefixed
// string: a corrupt length claims gigabytes, so the string is read in
// capped chunks and the claim fails at EOF having allocated only what
// the stream actually contained.
const strChunk = 1 << 16

// Str reads a u32-length-prefixed string. Memory use is bounded by the
// stream's real content, not the claimed length.
func (d *StreamDecoder) Str() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	if n <= strChunk {
		b := make([]byte, n)
		if !d.read(b) {
			return ""
		}
		return string(b)
	}
	var out []byte
	for n > 0 && d.err == nil {
		c := n
		if c > strChunk {
			c = strChunk
		}
		chunk := make([]byte, c)
		if !d.read(chunk) {
			return ""
		}
		out = append(out, chunk...)
		n -= c
	}
	return string(out)
}

// Count reads a u32 element count. A stream cannot pre-validate the
// count against remaining input the way Decoder.Count does; minBytes is
// kept for call-site symmetry and only guards arithmetic sanity.
// Callers must consume elements incrementally (append under an Err
// guard) so an absurd count terminates at EOF with bounded memory.
func (d *StreamDecoder) Count(minBytes int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || minBytes > 0 && n > (1<<31)/minBytes {
		d.Fail("count %d implausible", n)
		return 0
	}
	return n
}

// Addr reads the length-prefixed netip.Addr form.
func (d *StreamDecoder) Addr() netip.Addr {
	switch n := d.U8(); n {
	case 0:
		return netip.Addr{}
	case 4:
		var b [4]byte
		if d.read(b[:]) {
			return netip.AddrFrom4(b)
		}
		return netip.Addr{}
	case 16:
		var b [16]byte
		if d.read(b[:]) {
			return netip.AddrFrom16(b)
		}
		return netip.Addr{}
	default:
		d.Fail("address length %d", n)
		return netip.Addr{}
	}
}

// ExpectEOF latches an error unless the stream is exhausted — the
// trailing-garbage check of file formats with no explicit terminator.
func (d *StreamDecoder) ExpectEOF() {
	if d.err != nil {
		return
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		d.Fail("trailing bytes after snapshot end")
	}
}
