package binenc

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
)

var errStream = errors.New("stream test sentinel")

// TestStreamRoundTrip decodes every encoder primitive back off a
// stream and checks values and the byte offset.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Raw([]byte{0xde, 0xad})
	e.U8(7)
	e.Bool(true)
	e.U16(0xbeef)
	e.U32(0xcafebabe)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Str("amplifier")
	e.Addr(netip.MustParseAddr("192.0.2.9"))
	e.Addr(netip.MustParseAddr("2001:db8::1"))
	e.Addr(netip.Addr{})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	d := NewStreamDecoder(bytes.NewReader(buf.Bytes()), errStream)
	if got := d.Raw(2); !bytes.Equal(got, []byte{0xde, 0xad}) {
		t.Errorf("Raw = %x", got)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xcafebabe {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Str(); got != "amplifier" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Addr(); got != netip.MustParseAddr("192.0.2.9") {
		t.Errorf("Addr v4 = %v", got)
	}
	if got := d.Addr(); got != netip.MustParseAddr("2001:db8::1") {
		t.Errorf("Addr v6 = %v", got)
	}
	if got := d.Addr(); got.IsValid() {
		t.Errorf("Addr zero = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("healthy decode errored: %v", d.Err())
	}
	if d.Offset() != buf.Len() {
		t.Errorf("Offset = %d, want %d", d.Offset(), buf.Len())
	}
	d.ExpectEOF()
	if d.Err() != nil {
		t.Errorf("ExpectEOF at end errored: %v", d.Err())
	}
}

// TestStreamTruncation checks that a short read latches a sentinel-
// wrapped error and every later read returns zero values.
func TestStreamTruncation(t *testing.T) {
	d := NewStreamDecoder(strings.NewReader("\x01\x02"), errStream)
	if got := d.U32(); got != 0 {
		t.Errorf("truncated U32 = %d, want 0", got)
	}
	if !errors.Is(d.Err(), errStream) {
		t.Fatalf("err = %v, want wrap of sentinel", d.Err())
	}
	if got := d.U64(); got != 0 || d.Str() != "" {
		t.Error("reads after latched error returned non-zero values")
	}
}

// TestStreamStrBoundedAllocation feeds a string whose length prefix
// claims far more than the stream holds: the decode must fail at EOF
// with memory bounded by the real content, not the claim.
func TestStreamStrBoundedAllocation(t *testing.T) {
	// Claim 0x7fffffff bytes, deliver 5.
	in := append([]byte{0xff, 0xff, 0xff, 0x7f}, "hello"...)
	d := NewStreamDecoder(bytes.NewReader(in), errStream)
	if got := d.Str(); got != "" {
		t.Errorf("Str on truncated claim = %q, want empty", got)
	}
	if !errors.Is(d.Err(), errStream) {
		t.Fatalf("err = %v, want wrap of sentinel", d.Err())
	}
}

// TestStreamCountPlausibility checks the arithmetic guard on element
// counts.
func TestStreamCountPlausibility(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.U32(0xffffffff)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	d := NewStreamDecoder(bytes.NewReader(buf.Bytes()), errStream)
	if got := d.Count(44); got != 0 {
		t.Errorf("implausible Count = %d, want 0", got)
	}
	if !errors.Is(d.Err(), errStream) {
		t.Fatalf("err = %v, want wrap of sentinel", d.Err())
	}
}

// TestStreamExpectEOFTrailing checks the trailing-garbage gate.
func TestStreamExpectEOFTrailing(t *testing.T) {
	d := NewStreamDecoder(strings.NewReader("\x05extra"), errStream)
	if got := d.U8(); got != 5 {
		t.Fatalf("U8 = %d", got)
	}
	d.ExpectEOF()
	if !errors.Is(d.Err(), errStream) {
		t.Fatalf("trailing bytes not flagged: %v", d.Err())
	}
}
