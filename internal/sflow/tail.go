// Tailer: a file-backed LogReader that survives what happens to real
// log files — growth (tail), truncation (the file shrank below what
// was already read), and rotation (the path now names a different
// file). LogReader alone resumes cleanly when a file grows; Tailer
// adds the stat-based staleness checks and transparent reopen that
// `ixpmon -follow` and the service's tail-ingest mode need to keep
// following across logrotate instead of waiting forever at a stale
// offset. It also tracks the byte offset of the last fully consumed
// entry — the resume cursor service checkpoints persist.
package sflow

import (
	"errors"
	"fmt"
	"io"
	"os"

	"dnsamp/internal/simclock"
)

// countingReader counts bytes read through it — the offset source for
// resume cursors.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

// Tailer follows a datagram log file. Construct with NewTailer; it is
// not safe for concurrent use.
type Tailer struct {
	path string
	f    *os.File
	info os.FileInfo // identity at open, for rotation detection
	cr   countingReader
	lr   *LogReader

	off     int64  // offset just past the last fully consumed entry
	reopens uint64 // truncation/rotation reopens
}

// logHeaderLen is the byte length of the log file header.
const logHeaderLen = 12

// NewTailer opens path and validates the log header. resumeAt, when
// past the header, is a byte offset previously returned by Offset: the
// tailer seeks there and continues with the entry that starts at it.
// A resumeAt beyond the current file size means the file was truncated
// or rotated since the cursor was taken; the tailer starts over from
// the top (the new file's content is new data).
func NewTailer(path string, resumeAt int64) (*Tailer, error) {
	t := &Tailer{path: path}
	if err := t.open(); err != nil {
		return nil, err
	}
	if resumeAt > logHeaderLen && resumeAt <= t.info.Size() {
		if _, err := t.f.Seek(resumeAt, io.SeekStart); err != nil {
			t.f.Close()
			return nil, fmt.Errorf("sflow: seeking to resume offset %d: %w", resumeAt, err)
		}
		t.cr.n = resumeAt
		t.off = resumeAt
	}
	return t, nil
}

// open (re)opens the path from the top and validates the header.
func (t *Tailer) open() error {
	f, err := os.Open(t.path)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	t.cr = countingReader{r: f}
	lr, err := NewLogReader(&t.cr)
	if err != nil {
		f.Close()
		return err
	}
	t.f, t.info, t.lr = f, info, lr
	t.off = t.cr.n
	return nil
}

// stale reports whether the open file no longer matches the path: the
// path names a different file now (rotation) or the file shrank below
// what was already read (truncation). A stat error — e.g. the moment
// between rotation steps when the path is missing — is not staleness;
// the caller retries later.
func (t *Tailer) stale() bool {
	pi, err := os.Stat(t.path)
	if err != nil {
		return false
	}
	return !os.SameFile(t.info, pi) || pi.Size() < t.cr.n
}

// reopen abandons the open file and starts over from the top of
// whatever the path names now.
func (t *Tailer) reopen() error {
	t.f.Close()
	if err := t.open(); err != nil {
		return err
	}
	t.reopens++
	return nil
}

// NextEntry returns the next whole datagram entry. At end of input it
// returns io.EOF (clean) or io.ErrUnexpectedEOF (mid-entry); both mean
// "nothing more right now" — call again after a backoff. When the file
// was truncated or rotated away, the tailer transparently reopens and
// continues with the new file's first entry.
func (t *Tailer) NextEntry() (simclock.Time, *Datagram, error) {
	for reopened := false; ; {
		at, dg, err := t.lr.NextEntry()
		if err == nil {
			t.off = t.cr.n
			return at, dg, nil
		}
		if (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) && !reopened && t.stale() {
			if rerr := t.reopen(); rerr != nil {
				return 0, nil, rerr
			}
			reopened = true
			continue
		}
		return 0, nil, err
	}
}

// Next returns the next sampled record and its flow-sample input field,
// iterating sample by sample the way LogReader.Next does, with the same
// staleness handling as NextEntry.
func (t *Tailer) Next() (Record, uint32, error) {
	for reopened := false; ; {
		rec, input, err := t.lr.Next()
		if err == nil {
			if t.lr.dg == nil || t.lr.next >= len(t.lr.dg.Samples) {
				t.off = t.cr.n // entry fully consumed
			}
			return rec, input, nil
		}
		if (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) && !reopened && t.stale() {
			if rerr := t.reopen(); rerr != nil {
				return Record{}, 0, rerr
			}
			reopened = true
			continue
		}
		return Record{}, 0, err
	}
}

// Offset returns the byte offset just past the last fully consumed
// entry — the resume cursor to persist. Right after open it sits past
// the file header.
func (t *Tailer) Offset() int64 { return t.off }

// Reopens counts truncation/rotation reopens so far.
func (t *Tailer) Reopens() uint64 { return t.reopens }

// Close releases the underlying file.
func (t *Tailer) Close() error { return t.f.Close() }
