// Datagram log: the on-disk form of a collector's sFlow feed. Real
// collectors timestamp datagrams on arrival (the datagram itself only
// carries agent uptime), so the log is a sequence of entries
//
//	[int64 arrival time, unix seconds][uint32 length][sFlow v5 datagram]
//
// after an 8-byte magic + version header, every integer little-endian.
// Records sharing one arrival second are batched into one datagram
// (bounded by maxLogSamples), mirroring how an agent packs samples
// until the MTU or a timeout flushes.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dnsamp/internal/simclock"
)

// Log file framing.
var logMagic = [8]byte{'s', 'F', 'l', 'o', 'w', 'L', 'o', 'g'}

const (
	logVersion = 1
	// maxLogSamples bounds samples per datagram on write.
	maxLogSamples = 64
	// maxLogDatagram bounds the datagram length accepted on read.
	maxLogDatagram = 1 << 20
)

// ErrLog is wrapped by log framing failures (a bad magic, an oversized
// entry). Truncation mid-entry surfaces as io.ErrUnexpectedEOF.
var ErrLog = errors.New("sflow: malformed datagram log")

// LogWriter serializes sampled records as a timestamped sFlow v5
// datagram log. Records must be added in non-decreasing time order to
// get the canonical one-datagram-per-second batching; out-of-order
// times still round-trip (each time change flushes a datagram).
type LogWriter struct {
	w     io.Writer
	agent [4]byte
	rate  uint32

	cur     Datagram
	curTime simclock.Time
	dgSeq   uint32
	err     error
}

// NewLogWriter writes the log header and returns a writer attributing
// datagrams to the given agent address. rate is the sampling
// denominator recorded in every flow sample (<= 0 means DefaultRate).
func NewLogWriter(w io.Writer, agent [4]byte, rate int) (*LogWriter, error) {
	if rate <= 0 {
		rate = DefaultRate
	}
	var hdr [12]byte
	copy(hdr[:8], logMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], logVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &LogWriter{w: w, agent: agent, rate: uint32(rate)}, nil
}

// Add appends one sampled record. input is the ingress interface
// attribution carried in the flow sample's input field (the simulation
// stores the ingress member ASN there; 0 = derive from the source
// address), matching ecosystem.TaggedRecord.Ingress.
//
// rec.Frame is retained (not copied) until its datagram is flushed —
// at the next time change, every maxLogSamples records, or Flush —
// so callers must not reuse the frame buffer before then. Records
// from Sampler own their bytes already.
func (lw *LogWriter) Add(rec Record, input uint32) error {
	if lw.err != nil {
		return lw.err
	}
	if len(lw.cur.Samples) > 0 && (rec.Time != lw.curTime || len(lw.cur.Samples) >= maxLogSamples) {
		lw.flush()
	}
	lw.curTime = rec.Time
	lw.cur.Samples = append(lw.cur.Samples, FlowSample{
		Seq:      uint32(rec.Seq),
		SourceID: 1,
		Rate:     lw.rate,
		Pool:     uint32(rec.Seq) * lw.rate,
		Input:    input,
		FrameLen: uint32(rec.FrameLen),
		Header:   rec.Frame,
	})
	return lw.err
}

// Flush writes any buffered samples as a final datagram. Call once
// after the last Add.
func (lw *LogWriter) Flush() error {
	if len(lw.cur.Samples) > 0 {
		lw.flush()
	}
	return lw.err
}

func (lw *LogWriter) flush() {
	if lw.err != nil {
		return
	}
	lw.dgSeq++
	lw.cur.Agent = lw.agent
	lw.cur.Seq = lw.dgSeq
	body := EncodeDatagram(&lw.cur)
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(lw.curTime))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(body)))
	if _, err := lw.w.Write(hdr[:]); err != nil {
		lw.err = err
	} else if _, err := lw.w.Write(body); err != nil {
		lw.err = err
	}
	lw.cur.Samples = lw.cur.Samples[:0]
}

// LogReader streams records back out of a datagram log. It reads
// entries into one reused buffer — safe because ParseDatagram copies
// header bytes out — and is tail-capable: a Next that hits end of
// input mid-entry returns io.ErrUnexpectedEOF but keeps its partial
// state, so calling Next again after the underlying file has grown
// resumes exactly where it stopped (cmd/ixpmon's -follow mode).
type LogReader struct {
	r io.Reader

	// entry accumulates the current partially read entry; have is how
	// many bytes of it have been read so far.
	entry []byte
	have  int
	want  int // 0 = header not complete yet

	dg    *Datagram
	next  int
	dgT   simclock.Time
	atEOF bool
}

// NewLogReader validates the log header and returns a streaming
// reader.
func NewLogReader(r io.Reader) (*LogReader, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: short header (%v)", ErrLog, err)
	}
	if [8]byte(hdr[:8]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrLog)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != logVersion {
		return nil, fmt.Errorf("%w: version %d", ErrLog, v)
	}
	return &LogReader{r: r}, nil
}

// fill grows the current entry to n bytes, returning io.EOF (have ==
// 0) or io.ErrUnexpectedEOF (mid-entry) when the input runs dry. Both
// leave the reader resumable.
func (lr *LogReader) fill(n int) error {
	if cap(lr.entry) < n {
		lr.entry = append(make([]byte, 0, n), lr.entry[:lr.have]...)
	}
	lr.entry = lr.entry[:n]
	for lr.have < n {
		m, err := lr.r.Read(lr.entry[lr.have:n])
		lr.have += m
		if lr.have >= n {
			return nil
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				if lr.have == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Next returns the next sampled record and its flow-sample input field
// (the ingress attribution). It returns io.EOF at a clean end of log
// and io.ErrUnexpectedEOF when the log stops mid-entry; after either,
// Next may be called again once the underlying reader has more data.
func (lr *LogReader) Next() (Record, uint32, error) {
	for lr.dg == nil || lr.next >= len(lr.dg.Samples) {
		if err := lr.readEntry(); err != nil {
			return Record{}, 0, err
		}
	}
	s := &lr.dg.Samples[lr.next]
	lr.next++
	return Record{
		Time:     lr.dgT,
		Frame:    s.Header,
		FrameLen: int(s.FrameLen),
		Seq:      uint64(s.Seq),
	}, s.Input, nil
}

// NextEntry returns the next whole datagram entry: its collector
// arrival time and the parsed datagram. It is the replay-grade view of
// the log — one network datagram per call, the unit a UDP re-sender
// transmits — while Next iterates sample by sample. The two share the
// reader's position: NextEntry skips any samples of the current
// datagram that Next has not yielded yet, so callers should pick one
// access style per reader. End-of-input behaves exactly like Next
// (io.EOF clean, io.ErrUnexpectedEOF mid-entry and resumable).
func (lr *LogReader) NextEntry() (simclock.Time, *Datagram, error) {
	if err := lr.readEntry(); err != nil {
		return 0, nil, err
	}
	lr.next = len(lr.dg.Samples) // consumed wholesale; Next moves on
	return lr.dgT, lr.dg, nil
}

// readEntry reads and parses the next timestamped datagram entry.
func (lr *LogReader) readEntry() error {
	lr.dg, lr.next = nil, 0
	if err := lr.fill(12); err != nil {
		return err
	}
	ln := int(binary.LittleEndian.Uint32(lr.entry[8:12]))
	if ln > maxLogDatagram {
		return fmt.Errorf("%w: %d-byte datagram entry", ErrLog, ln)
	}
	if err := lr.fill(12 + ln); err != nil {
		return err
	}
	t := simclock.Time(int64(binary.LittleEndian.Uint64(lr.entry[:8])))
	dg, err := ParseDatagram(lr.entry[12 : 12+ln])
	if err != nil {
		// The framing was intact, only the datagram body is bad:
		// consume the entry so the next call resyncs at the following
		// entry boundary instead of re-parsing the same bytes forever —
		// one corrupt datagram costs one error, not the whole tail.
		lr.have = 0
		return err
	}
	lr.dg, lr.dgT = dg, t
	lr.have = 0 // entry consumed; reuse the buffer
	return nil
}
