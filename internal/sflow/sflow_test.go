package sflow

import (
	"bytes"
	"math"
	"testing"

	"dnsamp/internal/simclock"
)

func TestSamplePacketRate(t *testing.T) {
	s := NewSampler(1)
	s.Rate = 100 // faster test; semantics identical
	frame := make([]byte, 200)
	const n = 200_000
	sampled := 0
	for i := 0; i < n; i++ {
		if _, ok := s.SamplePacket(simclock.MeasurementStart, frame); ok {
			sampled++
		}
	}
	want := float64(n) / 100
	if math.Abs(float64(sampled)-want) > 4*math.Sqrt(want) {
		t.Errorf("sampled %d of %d, want ~%.0f", sampled, n, want)
	}
}

func TestSampleTruncates(t *testing.T) {
	s := NewSampler(2)
	frame := make([]byte, 1500)
	rec := s.Take(simclock.MeasurementStart, frame)
	if len(rec.Frame) != DefaultSnaplen {
		t.Errorf("frame len = %d, want %d", len(rec.Frame), DefaultSnaplen)
	}
	if rec.FrameLen != 1500 {
		t.Errorf("FrameLen = %d, want 1500", rec.FrameLen)
	}
	small := s.Take(simclock.MeasurementStart, make([]byte, 60))
	if len(small.Frame) != 60 {
		t.Errorf("small frame truncated: %d", len(small.Frame))
	}
}

func TestSequenceNumbers(t *testing.T) {
	s := NewSampler(3)
	a := s.Take(0, []byte{1})
	b := s.Take(0, []byte{2})
	if b.Seq != a.Seq+1 {
		t.Errorf("sequence numbers not monotonic: %d, %d", a.Seq, b.Seq)
	}
}

func TestThinFlowStatistics(t *testing.T) {
	s := NewSampler(4)
	// 16384 * 64 packets at 1:16384 => mean 64.
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += s.ThinFlow(16384 * 64)
	}
	mean := float64(total) / trials
	if math.Abs(mean-64) > 3 {
		t.Errorf("ThinFlow mean = %.1f, want ~64", mean)
	}
	if s.ThinFlow(0) != 0 {
		t.Error("empty flow should thin to 0")
	}
}

func TestThinFlowMatchesPerPacket(t *testing.T) {
	// Binomial thinning and per-packet sampling must agree in
	// distribution; compare means over many flows (the ablation claim).
	a := NewSampler(5)
	a.Rate = 50
	b := NewSampler(6)
	b.Rate = 50
	const flow, trials = 5000, 300
	frame := []byte{0}
	sumThin, sumPkt := 0, 0
	for i := 0; i < trials; i++ {
		sumThin += a.ThinFlow(flow)
		for j := 0; j < flow; j++ {
			if _, ok := b.SamplePacket(0, frame); ok {
				sumPkt++
			}
		}
	}
	mThin := float64(sumThin) / trials
	mPkt := float64(sumPkt) / trials
	if math.Abs(mThin-mPkt) > 8 {
		t.Errorf("thinning mean %.1f vs per-packet mean %.1f", mThin, mPkt)
	}
}

// TestTakeOwnsFrame is the frame-aliasing regression test: a reader
// that reuses its read buffer between packets must not corrupt
// previously sampled records. Before the fix, Record.Frame aliased the
// caller's buffer through netmodel.Truncate.
func TestTakeOwnsFrame(t *testing.T) {
	s := NewSampler(9)
	buf := make([]byte, 300)
	var recs []Record
	var want [][]byte
	for i := 0; i < 4; i++ {
		for j := range buf {
			buf[j] = byte(i*31 + j)
		}
		frame := buf[:60+i*80] // varying lengths, same backing array
		want = append(want, append([]byte(nil), truncRef(frame, s.Snaplen)...))
		recs = append(recs, s.Take(simclock.MeasurementStart, frame))
	}
	for j := range buf {
		buf[j] = 0xee // reader reuses its buffer
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Frame, want[i]) {
			t.Fatalf("record %d corrupted by buffer reuse:\nwant %x\ngot  %x", i, want[i], rec.Frame)
		}
	}
}

// truncRef mirrors the capture clip for the expectation
// (kept local so the test states the intended bytes independently).
func truncRef(frame []byte, snaplen int) []byte {
	if len(frame) <= snaplen {
		return frame
	}
	return frame[:snaplen]
}

// TestZeroValueSampler pins the validated defaults: a zero-value
// Sampler must sample and thin without panicking (SamplePacket used to
// call rng.Intn(0) and ThinFlow divided by a zero rate).
func TestZeroValueSampler(t *testing.T) {
	var s Sampler
	frame := make([]byte, 200)
	for i := 0; i < 5_000; i++ {
		if rec, ok := s.SamplePacket(simclock.MeasurementStart, frame); ok {
			if len(rec.Frame) != DefaultSnaplen {
				t.Fatalf("zero-value snaplen = %d, want %d", len(rec.Frame), DefaultSnaplen)
			}
		}
	}
	var s2 Sampler
	total := 0
	for i := 0; i < 50; i++ {
		k := s2.ThinFlow(DefaultRate * 4)
		if k < 0 || k > DefaultRate*4 {
			t.Fatalf("ThinFlow out of range: %d", k)
		}
		total += k
	}
	if mean := float64(total) / 50; math.Abs(mean-4) > 3 {
		t.Errorf("zero-value ThinFlow mean = %.1f, want ~4 (1:%d default)", mean, DefaultRate)
	}
	var s3 Sampler
	rec := s3.Take(0, make([]byte, 500))
	if len(rec.Frame) != DefaultSnaplen || rec.FrameLen != 500 {
		t.Errorf("zero-value Take = %d-byte frame (orig %d), want %d/500",
			len(rec.Frame), rec.FrameLen, DefaultSnaplen)
	}
	if s3.RNG() == nil {
		t.Error("zero-value RNG() must lazily seed, not return nil")
	}
}

func TestDefaults(t *testing.T) {
	s := NewSampler(7)
	if s.Rate != 16384 || s.Snaplen != 128 {
		t.Errorf("defaults = 1:%d snaplen %d, want 1:16384/128 (§3.1)", s.Rate, s.Snaplen)
	}
	if s.RNG() == nil {
		t.Error("RNG accessor nil")
	}
}
