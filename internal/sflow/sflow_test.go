package sflow

import (
	"math"
	"testing"

	"dnsamp/internal/simclock"
)

func TestSamplePacketRate(t *testing.T) {
	s := NewSampler(1)
	s.Rate = 100 // faster test; semantics identical
	frame := make([]byte, 200)
	const n = 200_000
	sampled := 0
	for i := 0; i < n; i++ {
		if _, ok := s.SamplePacket(simclock.MeasurementStart, frame); ok {
			sampled++
		}
	}
	want := float64(n) / 100
	if math.Abs(float64(sampled)-want) > 4*math.Sqrt(want) {
		t.Errorf("sampled %d of %d, want ~%.0f", sampled, n, want)
	}
}

func TestSampleTruncates(t *testing.T) {
	s := NewSampler(2)
	frame := make([]byte, 1500)
	rec := s.Take(simclock.MeasurementStart, frame)
	if len(rec.Frame) != DefaultSnaplen {
		t.Errorf("frame len = %d, want %d", len(rec.Frame), DefaultSnaplen)
	}
	if rec.FrameLen != 1500 {
		t.Errorf("FrameLen = %d, want 1500", rec.FrameLen)
	}
	small := s.Take(simclock.MeasurementStart, make([]byte, 60))
	if len(small.Frame) != 60 {
		t.Errorf("small frame truncated: %d", len(small.Frame))
	}
}

func TestSequenceNumbers(t *testing.T) {
	s := NewSampler(3)
	a := s.Take(0, []byte{1})
	b := s.Take(0, []byte{2})
	if b.Seq != a.Seq+1 {
		t.Errorf("sequence numbers not monotonic: %d, %d", a.Seq, b.Seq)
	}
}

func TestThinFlowStatistics(t *testing.T) {
	s := NewSampler(4)
	// 16384 * 64 packets at 1:16384 => mean 64.
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += s.ThinFlow(16384 * 64)
	}
	mean := float64(total) / trials
	if math.Abs(mean-64) > 3 {
		t.Errorf("ThinFlow mean = %.1f, want ~64", mean)
	}
	if s.ThinFlow(0) != 0 {
		t.Error("empty flow should thin to 0")
	}
}

func TestThinFlowMatchesPerPacket(t *testing.T) {
	// Binomial thinning and per-packet sampling must agree in
	// distribution; compare means over many flows (the ablation claim).
	a := NewSampler(5)
	a.Rate = 50
	b := NewSampler(6)
	b.Rate = 50
	const flow, trials = 5000, 300
	frame := []byte{0}
	sumThin, sumPkt := 0, 0
	for i := 0; i < trials; i++ {
		sumThin += a.ThinFlow(flow)
		for j := 0; j < flow; j++ {
			if _, ok := b.SamplePacket(0, frame); ok {
				sumPkt++
			}
		}
	}
	mThin := float64(sumThin) / trials
	mPkt := float64(sumPkt) / trials
	if math.Abs(mThin-mPkt) > 8 {
		t.Errorf("thinning mean %.1f vs per-packet mean %.1f", mThin, mPkt)
	}
}

func TestDefaults(t *testing.T) {
	s := NewSampler(7)
	if s.Rate != 16384 || s.Snaplen != 128 {
		t.Errorf("defaults = 1:%d snaplen %d, want 1:16384/128 (§3.1)", s.Rate, s.Snaplen)
	}
	if s.RNG() == nil {
		t.Error("RNG accessor nil")
	}
}
