package sflow

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dnsamp/internal/simclock"
)

var update = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

func sampleDatagram() *Datagram {
	return &Datagram{
		Agent:    [4]byte{192, 0, 2, 1},
		SubAgent: 3,
		Seq:      41,
		Uptime:   123456,
		Samples: []FlowSample{
			{Seq: 7, SourceID: 1, Rate: 16384, Pool: 7 * 16384, Input: 64496,
				FrameLen: 1398, Header: bytes.Repeat([]byte{0xab, 0xcd}, 64)},
			{Seq: 8, SourceID: 1, Rate: 16384, Pool: 8 * 16384, Drops: 2, Output: 9,
				FrameLen: 90, Header: []byte{1, 2, 3}}, // odd length: exercises padding
		},
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	want := sampleDatagram()
	enc := EncodeDatagram(want)
	got, err := ParseDatagram(enc)
	if err != nil {
		t.Fatalf("ParseDatagram: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	// Parsed samples must own their bytes: zeroing the encoded buffer
	// must leave the headers intact (the read-buffer-reuse contract).
	for i := range enc {
		enc[i] = 0
	}
	if !bytes.Equal(got.Samples[0].Header, want.Samples[0].Header) {
		t.Fatal("parsed header aliases the input buffer")
	}
}

func TestParseDatagramRejects(t *testing.T) {
	valid := EncodeDatagram(sampleDatagram())
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:20],
		"truncated body": valid[:len(valid)-5],
		"trailing bytes": append(append([]byte{}, valid...), 0, 0, 0, 0),
	}
	wrongVersion := append([]byte{}, valid...)
	wrongVersion[3] = 4
	cases["version 4"] = wrongVersion
	for name, b := range cases {
		if _, err := ParseDatagram(b); !errors.Is(err, ErrDatagram) {
			t.Errorf("%s: err = %v, want ErrDatagram", name, err)
		}
	}
}

func TestParseDatagramSkipsUnknownSamples(t *testing.T) {
	// A counter sample (type 2) followed by a flow sample: the parser
	// must skip the former via its length field and keep the latter.
	d := sampleDatagram()
	d.Samples = d.Samples[:1]
	enc := EncodeDatagram(d)
	var spliced []byte
	spliced = append(spliced, enc[:28]...)
	spliced[27] = 2                                                           // sample count: counter sample + flow sample
	spliced = append(spliced, 0, 0, 0, 2, 0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef) // type 2, len 4
	spliced = append(spliced, enc[28:]...)
	got, err := ParseDatagram(spliced)
	if err != nil {
		t.Fatalf("ParseDatagram: %v", err)
	}
	if len(got.Samples) != 1 || !reflect.DeepEqual(got.Samples[0], d.Samples[0]) {
		t.Fatalf("spliced parse = %+v, want the one flow sample", got.Samples)
	}
}

func FuzzParseDatagram(f *testing.F) {
	f.Add(EncodeDatagram(sampleDatagram()))
	f.Add(EncodeDatagram(&Datagram{}))
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := ParseDatagram(b)
		if err != nil {
			return
		}
		// Whatever parses must re-encode canonically: a second parse of
		// the re-encoding yields the same datagram (unknown sample and
		// record types do not survive, so equality is on the parsed form).
		enc := EncodeDatagram(d)
		d2, err := ParseDatagram(enc)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("re-encode not canonical:\nfirst  %+v\nsecond %+v", d, d2)
		}
	})
}

// logRecords is the deterministic record set used by the log tests and
// the committed golden fixture.
func logRecords() ([]Record, []uint32) {
	base := simclock.MeasurementStart
	var recs []Record
	var inputs []uint32
	for i := 0; i < 130; i++ {
		frame := make([]byte, 40+i%64)
		for j := range frame {
			frame[j] = byte(i + j)
		}
		recs = append(recs, Record{
			Time:     base.Add(simclock.Duration(i / 70)), // two arrival seconds
			Frame:    frame,
			FrameLen: 1200 + i,
			Seq:      uint64(i + 1),
		})
		inputs = append(inputs, uint32(i%3)*64500)
	}
	return recs, inputs
}

func writeLog(t *testing.T, w io.Writer) ([]Record, []uint32) {
	t.Helper()
	recs, inputs := logRecords()
	lw, err := NewLogWriter(w, [4]byte{198, 51, 100, 7}, DefaultRate)
	if err != nil {
		t.Fatalf("NewLogWriter: %v", err)
	}
	for i, rec := range recs {
		if err := lw.Add(rec, inputs[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return recs, inputs
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs, inputs := writeLog(t, &buf)

	lr, err := NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	for i := range recs {
		rec, input, err := lr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(rec, recs[i]) {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, recs[i], rec)
		}
		if input != inputs[i] {
			t.Fatalf("record %d input = %d, want %d", i, input, inputs[i])
		}
	}
	if _, _, err := lr.Next(); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
}

// TestLogReaderNextEntry checks the whole-datagram view of the log:
// entries come back one network datagram at a time with their arrival
// timestamps, and the samples of all entries concatenated equal what
// the per-record Next iteration yields.
func TestLogReaderNextEntry(t *testing.T) {
	var buf bytes.Buffer
	recs, inputs := writeLog(t, &buf)

	lr, err := NewLogReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	i := 0
	entries := 0
	lastT := simclock.Time(-1)
	for {
		at, dg, err := lr.NextEntry()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("entry %d: %v", entries, err)
		}
		entries++
		if at.Before(lastT) {
			t.Fatalf("entry %d: arrival time went backwards (%v after %v)", entries, at, lastT)
		}
		lastT = at
		if len(dg.Samples) == 0 || len(dg.Samples) > 64 {
			t.Fatalf("entry %d: %d samples, want 1..64", entries, len(dg.Samples))
		}
		for s := range dg.Samples {
			fs := &dg.Samples[s]
			if i >= len(recs) {
				t.Fatalf("more samples than records written (at %d)", i)
			}
			if at != recs[i].Time {
				t.Fatalf("sample %d: arrival %v, want %v", i, at, recs[i].Time)
			}
			if !bytes.Equal(fs.Header, recs[i].Frame) || fs.Input != inputs[i] || uint64(fs.Seq) != recs[i].Seq {
				t.Fatalf("sample %d diverges from the Next view", i)
			}
			i++
		}
	}
	if i != len(recs) {
		t.Fatalf("NextEntry yielded %d samples, want %d", i, len(recs))
	}
	if entries < 2 {
		t.Fatalf("fixture produced %d entries; want several", entries)
	}
	// The entry just consumed is not re-served sample-wise.
	if _, _, err := lr.Next(); err != io.EOF {
		t.Fatalf("Next after NextEntry drain: err = %v, want io.EOF", err)
	}
}

// TestLogReaderResumes drives the tail path: a reader that hits a
// mid-entry end of input must report io.ErrUnexpectedEOF and pick up
// exactly where it stopped once more bytes arrive.
func TestLogReaderResumes(t *testing.T) {
	var buf bytes.Buffer
	recs, _ := writeLog(t, &buf)
	full := buf.Bytes()

	cut := len(full) - 37 // mid-entry
	grow := &growingReader{data: full[:cut]}
	lr, err := NewLogReader(grow)
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	var got []Record
	for {
		rec, _, err := lr.Next()
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			break
		}
		if err != nil {
			t.Fatalf("first pass: %v", err)
		}
		got = append(got, rec)
	}
	if len(got) == 0 || len(got) >= len(recs) {
		t.Fatalf("first pass read %d of %d records; cut point did not split the log", len(got), len(recs))
	}
	grow.data = full // the "file" grew
	for {
		rec, _, err := lr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resumed pass: %v", err)
		}
		got = append(got, rec)
	}
	if len(got) != len(recs) {
		t.Fatalf("resumed read ended at %d of %d records", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d differs after resume", i)
		}
	}
}

// growingReader serves from a byte slice that the test may extend
// between reads, emulating tail -f on a growing file.
type growingReader struct {
	data []byte
	off  int
}

func (g *growingReader) Read(p []byte) (int, error) {
	if g.off >= len(g.data) {
		return 0, io.EOF
	}
	n := copy(p, g.data[g.off:])
	g.off += n
	return n, nil
}

func TestLogReaderRejects(t *testing.T) {
	var buf bytes.Buffer
	writeLog(t, &buf)
	full := buf.Bytes()

	if _, err := NewLogReader(bytes.NewReader([]byte("notSFlow....more"))); !errors.Is(err, ErrLog) {
		t.Errorf("bad magic: err = %v, want ErrLog", err)
	}
	if _, err := NewLogReader(bytes.NewReader(full[:5])); !errors.Is(err, ErrLog) {
		t.Errorf("short header: err = %v, want ErrLog", err)
	}
	// Oversized entry length must fail cleanly, not allocate.
	huge := append([]byte{}, full[:12]...)
	huge = append(huge, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f)
	lr, err := NewLogReader(bytes.NewReader(huge))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	if _, _, err := lr.Next(); !errors.Is(err, ErrLog) {
		t.Errorf("oversized entry: err = %v, want ErrLog", err)
	}
}

// TestGoldenLog pins the on-disk format: the committed fixture must
// both re-read to the canonical record set and be byte-identical to
// what today's writer produces (format drift breaks replayability of
// previously captured logs).
func TestGoldenLog(t *testing.T) {
	path := filepath.Join("testdata", "golden.sflowlog")
	var buf bytes.Buffer
	recs, inputs := writeLog(t, &buf)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("writer output drifted from the committed fixture (%d vs %d bytes); run with -update only if the format version changed", len(buf.Bytes()), len(disk))
	}
	lr, err := NewLogReader(bytes.NewReader(disk))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		rec, input, err := lr.Next()
		if err != nil {
			t.Fatalf("fixture record %d: %v", i, err)
		}
		if !reflect.DeepEqual(rec, recs[i]) || input != inputs[i] {
			t.Fatalf("fixture record %d differs", i)
		}
	}
	if _, _, err := lr.Next(); err != io.EOF {
		t.Fatalf("fixture trailer: %v", err)
	}
}
