// sFlow v5 datagram codec: the wire form a real collector would see.
//
// A datagram carries a header (agent address, sub-agent, sequence
// number, uptime) followed by samples; the only sample kind the capture
// pipeline produces is the flow sample (enterprise 0, format 1) whose
// single record is the raw packet header (format 1): sampling rate,
// original frame length, and the truncated header bytes — exactly the
// metadata Sampler.Record carries. Encode/Parse round-trip those
// fields, so a Sampler's output can be serialized and re-ingested
// byte-for-byte.
//
// The parser is tolerant the way collectors are: unknown sample and
// record types are skipped via their length fields (they do not
// survive re-encoding), and every length is validated against the
// remaining input so corrupt datagrams fail with ErrDatagram instead
// of panicking or over-allocating.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only sFlow datagram version the codec speaks.
const Version = 5

// ErrDatagram is wrapped by every ParseDatagram failure.
var ErrDatagram = errors.New("sflow: malformed datagram")

// Wire constants of the sFlow v5 spec.
const (
	addrTypeIPv4 = 1

	sampleTypeFlow  = 1 // enterprise 0, format 1
	recordRawPacket = 1 // raw packet header flow record
	headerProtoEth  = 1 // header_protocol: ETHERNET-ISO8023
)

// maxSamples bounds the per-datagram sample count accepted by the
// parser; real agents stay near MTU-sized datagrams, far below it.
const maxSamples = 1 << 12

// FlowSample is one packet flow sample (enterprise 0, format 1) with a
// raw-packet-header record.
type FlowSample struct {
	// Seq is the sample sequence number of the data source.
	Seq uint32
	// SourceID identifies the sampling data source (type<<24 | index).
	SourceID uint32
	// Rate is the sampling denominator N (1 in N).
	Rate uint32
	// Pool is the total number of packets that could have been sampled.
	Pool uint32
	// Drops counts samples dropped due to lack of resources.
	Drops uint32
	// Input and Output are interface identifiers. The simulation maps
	// the ingress member ASN onto Input (0 = unknown), the convention
	// ecosystem.TaggedRecord uses for spoofed-packet attribution.
	Input, Output uint32
	// FrameLen is the original frame length before truncation.
	FrameLen uint32
	// Stripped counts bytes removed from the frame before the header
	// was captured (e.g. FCS).
	Stripped uint32
	// Header is the truncated frame (at most the capture snaplen).
	// ParseDatagram copies it out of the input buffer, so the sample
	// owns its bytes.
	Header []byte
}

// Datagram is one sFlow v5 datagram from an IPv4 agent.
type Datagram struct {
	// Agent is the IPv4 address of the sampling agent.
	Agent [4]byte
	// SubAgent distinguishes sampling processes within one agent.
	SubAgent uint32
	// Seq is the datagram sequence number of this (agent, sub-agent).
	Seq uint32
	// Uptime is the agent uptime in milliseconds.
	Uptime uint32
	// Samples are the flow samples in datagram order.
	Samples []FlowSample
}

// AppendDatagram appends the encoded datagram to dst and returns the
// extended slice.
func AppendDatagram(dst []byte, d *Datagram) []byte {
	be := binary.BigEndian
	dst = be.AppendUint32(dst, Version)
	dst = be.AppendUint32(dst, addrTypeIPv4)
	dst = append(dst, d.Agent[:]...)
	dst = be.AppendUint32(dst, d.SubAgent)
	dst = be.AppendUint32(dst, d.Seq)
	dst = be.AppendUint32(dst, d.Uptime)
	dst = be.AppendUint32(dst, uint32(len(d.Samples)))
	for i := range d.Samples {
		dst = appendFlowSample(dst, &d.Samples[i])
	}
	return dst
}

// EncodeDatagram encodes the datagram into a fresh buffer.
func EncodeDatagram(d *Datagram) []byte {
	size := 28
	for i := range d.Samples {
		size += 8 + flowSampleLen(&d.Samples[i])
	}
	return AppendDatagram(make([]byte, 0, size), d)
}

// flowSampleLen is the encoded length of the sample body (after the
// type/length words).
func flowSampleLen(s *FlowSample) int {
	return 32 + 8 + 16 + pad4(len(s.Header))
}

func pad4(n int) int { return (n + 3) &^ 3 }

func appendFlowSample(dst []byte, s *FlowSample) []byte {
	be := binary.BigEndian
	dst = be.AppendUint32(dst, sampleTypeFlow)
	dst = be.AppendUint32(dst, uint32(flowSampleLen(s)))
	dst = be.AppendUint32(dst, s.Seq)
	dst = be.AppendUint32(dst, s.SourceID)
	dst = be.AppendUint32(dst, s.Rate)
	dst = be.AppendUint32(dst, s.Pool)
	dst = be.AppendUint32(dst, s.Drops)
	dst = be.AppendUint32(dst, s.Input)
	dst = be.AppendUint32(dst, s.Output)
	dst = be.AppendUint32(dst, 1) // one flow record
	// Raw packet header record.
	dst = be.AppendUint32(dst, recordRawPacket)
	dst = be.AppendUint32(dst, uint32(16+pad4(len(s.Header))))
	dst = be.AppendUint32(dst, headerProtoEth)
	dst = be.AppendUint32(dst, s.FrameLen)
	dst = be.AppendUint32(dst, s.Stripped)
	dst = be.AppendUint32(dst, uint32(len(s.Header)))
	dst = append(dst, s.Header...)
	for i := len(s.Header); i%4 != 0; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// dgCursor walks a datagram buffer with saturating error handling: the
// first out-of-bounds read poisons the cursor and every later read
// returns zeros, so parse code checks err once per structure.
type dgCursor struct {
	b   []byte
	off int
	err error
}

func (c *dgCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrDatagram, fmt.Sprintf(format, args...))
	}
}

func (c *dgCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.fail("truncated at offset %d", c.off)
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

// take returns the next n raw bytes (aliasing the buffer).
func (c *dgCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.fail("truncated at offset %d (want %d bytes)", c.off, n)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// ParseDatagram decodes one sFlow v5 datagram. Flow samples with a raw
// Ethernet packet header record are returned; other sample and record
// types are skipped. Header bytes are copied out of b: the datagram
// owns its bytes, so callers may reuse the read buffer (the ingestion
// contract that keeps previously parsed samples intact).
func ParseDatagram(b []byte) (*Datagram, error) {
	c := &dgCursor{b: b}
	if v := c.u32(); c.err == nil && v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrDatagram, v)
	}
	if at := c.u32(); c.err == nil && at != addrTypeIPv4 {
		// IPv6 agents (type 2) are not produced by the simulation.
		return nil, fmt.Errorf("%w: unsupported agent address type %d", ErrDatagram, at)
	}
	var d Datagram
	copy(d.Agent[:], c.take(4))
	d.SubAgent = c.u32()
	d.Seq = c.u32()
	d.Uptime = c.u32()
	n := c.u32()
	if c.err != nil {
		return nil, c.err
	}
	if n > maxSamples {
		return nil, fmt.Errorf("%w: %d samples", ErrDatagram, n)
	}
	for i := uint32(0); i < n; i++ {
		typ := c.u32()
		ln := int(c.u32())
		body := c.take(ln)
		if c.err != nil {
			return nil, c.err
		}
		if typ != sampleTypeFlow {
			continue // counter samples etc.: skip via the length field
		}
		s, err := parseFlowSample(body)
		if err != nil {
			return nil, err
		}
		d.Samples = append(d.Samples, s)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDatagram, len(b)-c.off)
	}
	return &d, nil
}

func parseFlowSample(b []byte) (FlowSample, error) {
	c := &dgCursor{b: b}
	var s FlowSample
	s.Seq = c.u32()
	s.SourceID = c.u32()
	s.Rate = c.u32()
	s.Pool = c.u32()
	s.Drops = c.u32()
	s.Input = c.u32()
	s.Output = c.u32()
	nrec := c.u32()
	if c.err != nil {
		return s, c.err
	}
	if nrec > maxSamples {
		return s, fmt.Errorf("%w: %d flow records", ErrDatagram, nrec)
	}
	got := false
	for i := uint32(0); i < nrec; i++ {
		fmtID := c.u32()
		ln := int(c.u32())
		body := c.take(ln)
		if c.err != nil {
			return s, c.err
		}
		if fmtID != recordRawPacket || got {
			continue // extended data records: skip
		}
		rc := &dgCursor{b: body}
		proto := rc.u32()
		s.FrameLen = rc.u32()
		s.Stripped = rc.u32()
		hlen := int(rc.u32())
		hdr := rc.take(hlen)
		if rc.err != nil {
			return s, rc.err
		}
		if rem := len(rc.b) - rc.off; rem != pad4(hlen)-hlen {
			return s, fmt.Errorf("%w: raw header record padding %d", ErrDatagram, rem)
		}
		if proto != headerProtoEth {
			continue // non-Ethernet header: not ours
		}
		s.Header = append([]byte(nil), hdr...) // own the bytes
		got = true
	}
	if !got {
		return s, fmt.Errorf("%w: flow sample without raw Ethernet header record", ErrDatagram)
	}
	if c.off != len(b) {
		return s, fmt.Errorf("%w: %d trailing bytes in flow sample", ErrDatagram, len(b)-c.off)
	}
	return s, nil
}
