package sflow

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dnsamp/internal/simclock"
)

// logEntries decodes every entry of an in-memory log image — the
// reference a Tailer's output is compared against.
func logEntries(t *testing.T, raw []byte) []*Datagram {
	t.Helper()
	lr, err := NewLogReader(newSliceReader(raw))
	if err != nil {
		t.Fatalf("NewLogReader: %v", err)
	}
	var out []*Datagram
	for {
		_, dg, err := lr.NextEntry()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return out
		}
		if err != nil {
			t.Fatalf("NextEntry: %v", err)
		}
		out = append(out, dg)
	}
}

// newSliceReader wraps a byte slice in a plain io.Reader (bytes.Reader
// would also work; this keeps imports flat).
func newSliceReader(b []byte) io.Reader {
	return &sliceReader{b: b}
}

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// writeLogFile writes the canonical test log to path and returns its
// raw bytes.
func writeLogFile(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	writeLog(t, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// drainTailer reads entries until end of input, appending to got.
func drainTailer(t *testing.T, tl *Tailer, got []*Datagram) []*Datagram {
	t.Helper()
	for {
		_, dg, err := tl.NextEntry()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return got
		}
		if err != nil {
			t.Fatalf("NextEntry: %v", err)
		}
		got = append(got, dg)
	}
}

// cloneDatagrams deep-copies parsed datagrams: the reader reuses its
// entry buffer, and parsed samples own their headers but the Datagram
// struct itself is reallocated per entry, so a shallow collect is
// already safe — this helper just documents that and snapshots values.
func cloneDatagrams(dgs []*Datagram) []Datagram {
	out := make([]Datagram, len(dgs))
	for i, d := range dgs {
		out[i] = *d
	}
	return out
}

// TestTailerFollowsGrowth: a tailer drains a partial log, reports end
// of input, and continues with the appended remainder — including when
// the cut lands mid-entry.
func TestTailerFollowsGrowth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.sflowlog")
	raw := writeLogFile(t, path)
	want := logEntries(t, raw)
	if len(want) < 3 {
		t.Fatalf("test log has only %d entries", len(want))
	}

	// Start with a prefix that ends mid-entry.
	cut := len(raw) - len(raw)/3
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(path, 0)
	if err != nil {
		t.Fatalf("NewTailer: %v", err)
	}
	defer tl.Close()

	got := drainTailer(t, tl, nil)
	if len(got) == 0 || len(got) >= len(want) {
		t.Fatalf("drained %d entries from the prefix, want 1..%d", len(got), len(want)-1)
	}

	// Append the rest; the tailer resumes mid-entry without reopening.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got = drainTailer(t, tl, got)
	if !reflect.DeepEqual(cloneDatagrams(got), cloneDatagrams(want)) {
		t.Fatalf("tail read %d entries, want %d identical to straight read", len(got), len(want))
	}
	if tl.Reopens() != 0 {
		t.Fatalf("growth caused %d reopens, want 0", tl.Reopens())
	}
	if tl.Offset() != int64(len(raw)) {
		t.Fatalf("Offset = %d, want %d", tl.Offset(), len(raw))
	}
}

// TestTailerResumeAt: a second tailer constructed from a persisted
// Offset yields exactly the entries the first one had not consumed.
func TestTailerResumeAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.sflowlog")
	raw := writeLogFile(t, path)
	want := logEntries(t, raw)

	tl, err := NewTailer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.NextEntry(); err != nil {
		t.Fatal(err)
	}
	cursor := tl.Offset()
	tl.Close()

	tl2, err := NewTailer(path, cursor)
	if err != nil {
		t.Fatalf("NewTailer(resume): %v", err)
	}
	defer tl2.Close()
	got := drainTailer(t, tl2, nil)
	if !reflect.DeepEqual(cloneDatagrams(got), cloneDatagrams(want[1:])) {
		t.Fatalf("resumed read = %d entries, want the %d unconsumed ones", len(got), len(want)-1)
	}

	// A cursor beyond the file (log rotated since the checkpoint) falls
	// back to the top of the current file.
	tl3, err := NewTailer(path, int64(len(raw))+1000)
	if err != nil {
		t.Fatalf("NewTailer(stale cursor): %v", err)
	}
	defer tl3.Close()
	if got := drainTailer(t, tl3, nil); len(got) != len(want) {
		t.Fatalf("stale-cursor read = %d entries, want all %d", len(got), len(want))
	}
}

// TestTailerDetectsTruncation: when the file shrinks below the read
// position (copytruncate-style rotation), the tailer reopens and reads
// the new content instead of waiting forever for the old offset.
func TestTailerDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.sflowlog")
	raw := writeLogFile(t, path)
	want := logEntries(t, raw)

	tl, err := NewTailer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := drainTailer(t, tl, nil); len(got) != len(want) {
		t.Fatalf("initial drain = %d entries, want %d", len(got), len(want))
	}

	// Truncate and rewrite a shorter log in place: same inode, smaller
	// size. Keep just the header plus the first entry's bytes.
	short := raw[:len(raw)/2]
	shortWant := logEntries(t, append([]byte(nil), short...))
	if len(shortWant) == 0 || len(shortWant) >= len(want) {
		t.Fatalf("short log has %d entries, want a strict non-empty subset", len(shortWant))
	}
	if err := os.WriteFile(path, short, 0o644); err != nil {
		t.Fatal(err)
	}

	got := drainTailer(t, tl, nil)
	if !reflect.DeepEqual(cloneDatagrams(got), cloneDatagrams(shortWant)) {
		t.Fatalf("post-truncation read = %d entries, want %d from the new content", len(got), len(shortWant))
	}
	if tl.Reopens() != 1 {
		t.Fatalf("Reopens = %d, want 1", tl.Reopens())
	}
}

// TestTailerDetectsRotation: when the path is renamed away and a new
// file appears under it (classic logrotate), the tailer notices the
// inode change and follows the new file.
func TestTailerDetectsRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.sflowlog")
	raw := writeLogFile(t, path)
	want := logEntries(t, raw)

	tl, err := NewTailer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := drainTailer(t, tl, nil); len(got) != len(want) {
		t.Fatalf("initial drain = %d entries, want %d", len(got), len(want))
	}

	// Rotate: move the file aside, create a fresh log at the path.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	// While the path is missing, end-of-input is not an error and must
	// not kill the tailer.
	if _, _, err := tl.NextEntry(); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("NextEntry with path missing = %v, want end-of-input", err)
	}
	writeLogFile(t, path)

	got := drainTailer(t, tl, nil)
	if !reflect.DeepEqual(cloneDatagrams(got), cloneDatagrams(want)) {
		t.Fatalf("post-rotation read = %d entries, want the new file's %d", len(got), len(want))
	}
	if tl.Reopens() != 1 {
		t.Fatalf("Reopens = %d, want 1", tl.Reopens())
	}
}

// TestTailerSampleIteration: the sample-level Next sees every record
// across a growth boundary and keeps the offset on entry boundaries.
func TestTailerSampleIteration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.sflowlog")
	raw := writeLogFile(t, path)
	recs, _ := logRecords()

	cut := len(raw) / 2
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	var seen int
	var lastTime simclock.Time
	drain := func() {
		for {
			rec, _, err := tl.Next()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			seen++
			lastTime = rec.Time
		}
	}
	drain()
	if seen == 0 || seen >= len(recs) {
		t.Fatalf("prefix yielded %d samples, want 1..%d", seen, len(recs)-1)
	}
	mid := tl.Offset()
	if mid <= logHeaderLen || mid > int64(cut) {
		t.Fatalf("mid-log Offset = %d, want in (%d, %d]", mid, logHeaderLen, cut)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	drain()
	if seen != len(recs) {
		t.Fatalf("saw %d samples, want %d", seen, len(recs))
	}
	if lastTime != recs[len(recs)-1].Time {
		t.Fatalf("last sample time = %v, want %v", lastTime, recs[len(recs)-1].Time)
	}
	if tl.Offset() != int64(len(raw)) {
		t.Fatalf("final Offset = %d, want %d", tl.Offset(), len(raw))
	}
}
