// Package sflow implements the sampled-capture semantics of the paper's
// IXP vantage point: 1-in-16k packet sampling with 128-byte header
// truncation, in the style of sFlow v5 packet samples.
//
// Two sampling modes are provided:
//
//   - Per-packet sampling (Sampler.SamplePacket), faithful to the wire
//     behaviour, used by the live-monitoring example.
//   - Binomial flow thinning (Sampler.ThinFlow): given a flow of n
//     identically shaped packets, draw how many would have been sampled.
//     This is statistically identical for independent 1/N sampling and
//     lets the campaign generator skip materialising the ~10^4× larger
//     unsampled traffic (ablation: BenchmarkAblationSampling).
package sflow

import (
	"math/rand"

	"dnsamp/internal/netmodel"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// Defaults matching the paper's capture configuration (§3.1).
const (
	DefaultRate    = 16384 // 1:16k packet sampling
	DefaultSnaplen = 128   // bytes kept per sampled packet
)

// Sampler draws packet samples.
type Sampler struct {
	// Rate is the sampling denominator N (1 in N).
	Rate int
	// Snaplen is the truncation length.
	Snaplen int

	rng *rand.Rand
	seq uint64
}

// NewSampler creates a sampler with the paper's defaults.
func NewSampler(seed int64) *Sampler {
	return &Sampler{Rate: DefaultRate, Snaplen: DefaultSnaplen, rng: rand.New(rand.NewSource(seed))}
}

// Record is one sampled, truncated frame with capture metadata.
type Record struct {
	Time simclock.Time
	// Frame is the truncated wire frame (at most Snaplen bytes).
	Frame []byte
	// FrameLen is the original frame length before truncation.
	FrameLen int
	// Seq is the capture sequence number.
	Seq uint64
}

// SamplePacket decides whether a single packet is sampled; if so it
// returns the truncated record. This mirrors per-packet 1/N sampling:
// each packet is chosen independently with probability 1/Rate ("sampling
// selects 1 out of 16k and not every 16kth packet", §6.1).
func (s *Sampler) SamplePacket(t simclock.Time, frame []byte) (Record, bool) {
	if s.rng.Intn(s.Rate) != 0 {
		return Record{}, false
	}
	return s.take(t, frame), true
}

// ThinFlow returns how many packets of an n-packet flow are sampled.
func (s *Sampler) ThinFlow(n int) int {
	return stats.Binomial(s.rng, n, 1/float64(s.Rate))
}

// Take records a frame unconditionally (used after ThinFlow has already
// decided the sampled count).
func (s *Sampler) Take(t simclock.Time, frame []byte) Record {
	return s.take(t, frame)
}

func (s *Sampler) take(t simclock.Time, frame []byte) Record {
	s.seq++
	return Record{
		Time:     t,
		Frame:    netmodel.Truncate(frame, s.Snaplen),
		FrameLen: len(frame),
		Seq:      s.seq,
	}
}

// RNG exposes the sampler's random source so traffic generators can draw
// correlated decisions (e.g. timestamps of sampled packets) without
// maintaining a second seed.
func (s *Sampler) RNG() *rand.Rand { return s.rng }
