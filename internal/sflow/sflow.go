// Package sflow implements the sampled-capture semantics of the paper's
// IXP vantage point: 1-in-16k packet sampling with 128-byte header
// truncation, in the style of sFlow v5 packet samples.
//
// Two sampling modes are provided:
//
//   - Per-packet sampling (Sampler.SamplePacket), faithful to the wire
//     behaviour, used by the live-monitoring example.
//   - Binomial flow thinning (Sampler.ThinFlow): given a flow of n
//     identically shaped packets, draw how many would have been sampled.
//     This is statistically identical for independent 1/N sampling and
//     lets the campaign generator skip materialising the ~10^4× larger
//     unsampled traffic (ablation: BenchmarkAblationSampling).
package sflow

import (
	"math/rand"

	"dnsamp/internal/netmodel"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// Defaults matching the paper's capture configuration (§3.1).
const (
	DefaultRate    = 16384 // 1:16k packet sampling
	DefaultSnaplen = 128   // bytes kept per sampled packet
)

// Sampler draws packet samples. The zero value is usable: Rate and
// Snaplen default to the paper's capture configuration and the random
// source to a fixed seed, so a zero-value Sampler samples
// deterministically instead of panicking in rng.Intn / dividing by
// zero in ThinFlow.
type Sampler struct {
	// Rate is the sampling denominator N (1 in N). Zero or negative
	// means DefaultRate.
	Rate int
	// Snaplen is the truncation length. Zero or negative means
	// DefaultSnaplen.
	Snaplen int

	rng *rand.Rand
	seq uint64
}

// NewSampler creates a sampler with the paper's defaults.
func NewSampler(seed int64) *Sampler {
	return &Sampler{Rate: DefaultRate, Snaplen: DefaultSnaplen, rng: rand.New(rand.NewSource(seed))}
}

// rate returns the effective sampling denominator.
func (s *Sampler) rate() int {
	if s.Rate <= 0 {
		return DefaultRate
	}
	return s.Rate
}

// snaplen returns the effective truncation length.
func (s *Sampler) snaplen() int {
	if s.Snaplen <= 0 {
		return DefaultSnaplen
	}
	return s.Snaplen
}

// random returns the sampler's random source, lazily seeding a
// zero-value Sampler.
func (s *Sampler) random() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(0))
	}
	return s.rng
}

// Record is one sampled, truncated frame with capture metadata.
type Record struct {
	Time simclock.Time
	// Frame is the truncated wire frame (at most Snaplen bytes). It is
	// owned by the record: take copies out of the caller's buffer, so
	// readers may reuse theirs between packets.
	Frame []byte
	// FrameLen is the original frame length before truncation.
	FrameLen int
	// Seq is the capture sequence number.
	Seq uint64
}

// SamplePacket decides whether a single packet is sampled; if so it
// returns the truncated record. This mirrors per-packet 1/N sampling:
// each packet is chosen independently with probability 1/Rate ("sampling
// selects 1 out of 16k and not every 16kth packet", §6.1).
func (s *Sampler) SamplePacket(t simclock.Time, frame []byte) (Record, bool) {
	if s.random().Intn(s.rate()) != 0 {
		return Record{}, false
	}
	return s.take(t, frame), true
}

// ThinFlow returns how many packets of an n-packet flow are sampled.
func (s *Sampler) ThinFlow(n int) int {
	return stats.Binomial(s.random(), n, 1/float64(s.rate()))
}

// Take records a frame unconditionally (used after ThinFlow has already
// decided the sampled count).
func (s *Sampler) Take(t simclock.Time, frame []byte) Record {
	return s.take(t, frame)
}

func (s *Sampler) take(t simclock.Time, frame []byte) Record {
	s.seq++
	// netmodel.Truncate returns a view into the caller's frame; copy so
	// the record owns its bytes. Readers (the pcap and sFlow-datagram
	// ingestion paths) legitimately reuse one read buffer between
	// packets — an aliased Frame would silently corrupt every
	// previously sampled record.
	return Record{
		Time:     t,
		Frame:    append([]byte(nil), netmodel.Truncate(frame, s.snaplen())...),
		FrameLen: len(frame),
		Seq:      s.seq,
	}
}

// RNG exposes the sampler's random source so traffic generators can draw
// correlated decisions (e.g. timestamps of sampled packets) without
// maintaining a second seed.
func (s *Sampler) RNG() *rand.Rand { return s.random() }
